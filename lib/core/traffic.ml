module Engine = Mvpn_sim.Engine
module Rng = Mvpn_sim.Rng
module Flow = Mvpn_net.Flow
module Packet = Mvpn_net.Packet
module Dscp = Mvpn_net.Dscp
module Sla = Mvpn_qos.Sla
module Cbq = Mvpn_qos.Cbq

(* Dispatch-ledger kind for every source-generator firing. *)
let k_src = Mvpn_sim.Profile.register_kind "traffic.src"

type registry = {
  engine : Engine.t;
  flows : (Flow.t, Sla.collector) Hashtbl.t;
  named : (string, Sla.collector) Hashtbl.t;
  mutable label_order : string list;  (* reverse creation order *)
}

let registry engine =
  { engine; flows = Hashtbl.create 64; named = Hashtbl.create 16;
    label_order = [] }

let sink r packet =
  match Hashtbl.find r.flows packet.Packet.flow with
  | c -> Sla.on_receive c ~now:(Engine.now r.engine) packet
  | exception Not_found -> ()

let register_flow r flow c = Hashtbl.replace r.flows flow c

let collector r label =
  match Hashtbl.find_opt r.named label with
  | Some c -> c
  | None ->
    let c = Sla.collector () in
    Hashtbl.replace r.named label c;
    r.label_order <- label :: r.label_order;
    c

let report r label =
  match Hashtbl.find_opt r.named label with
  | Some c -> Sla.report c
  | None -> Sla.report (Sla.collector ())

let labels r = List.rev r.label_order

type emit = int -> unit

let sender r ~net ~src_node ~flow ~dscp ?vpn ?cbq ~collector:c () =
  register_flow r flow c;
  let seq = ref 0 in
  fun size ->
    let now = Engine.now (Network.engine net) in
    incr seq;
    let packet = Packet.make ?vpn ~seq:!seq ~dscp ~size ~now flow in
    Sla.on_send c ~now ~bytes:size;
    match cbq with
    | None -> Network.inject net src_node packet
    | Some cbq ->
      (match Cbq.process cbq ~now packet with
       | Cbq.Marked _ -> Network.inject net src_node packet
       | Cbq.Dropped _ -> ())

let repeat_until engine ~stop f =
  (* f returns the delay until its next firing, or None to end. One
     event closure serves every firing — re-arming passes the same
     closure back to the engine instead of building a fresh one. *)
  let rec fire () =
    if Engine.now engine <= stop then
      match f () with
      | Some next -> Engine.schedule_kind engine ~kind:k_src ~delay:next fire
      | None -> ()
  in
  fun delay -> Engine.schedule_kind engine ~kind:k_src ~delay fire

let cbr engine ~start ~stop ~rate_bps ~packet_bytes emit =
  if rate_bps <= 0.0 then invalid_arg "Traffic.cbr: rate must be positive";
  let interval = float_of_int packet_bytes *. 8.0 /. rate_bps in
  (* Index-based departure times: no floating-point drift across long
     runs, so packet counts are exactly rate × duration. The index
     advances through a mutable cell so a single closure serves the
     whole flow — no per-packet closure allocation. *)
  let i = ref 0 in
  let rec fire () =
    emit packet_bytes;
    incr i;
    let time = start +. (float_of_int !i *. interval) in
    if time <= stop then Engine.schedule_kind_at engine ~kind:k_src ~time fire
  in
  if start <= stop then Engine.schedule_kind_at engine ~kind:k_src ~time:start fire

let poisson engine rng ~start ~stop ~rate_pps ~packet_bytes emit =
  if rate_pps <= 0.0 then invalid_arg "Traffic.poisson: rate must be positive";
  let fire () =
    emit packet_bytes;
    Some (Rng.exponential rng ~rate:rate_pps)
  in
  repeat_until engine ~stop fire
    (Float.max 0.0 start +. Rng.exponential rng ~rate:rate_pps)

let onoff engine rng ~start ~stop ~on_mean ~off_mean ~rate_bps ~packet_bytes
    emit =
  if rate_bps <= 0.0 then invalid_arg "Traffic.onoff: rate must be positive";
  let interval = float_of_int packet_bytes *. 8.0 /. rate_bps in
  (* State machine: during a talkspurt send CBR packets; when it ends,
     sleep the silence period and start another. *)
  let rec start_burst () =
    if Engine.now engine <= stop then begin
      let burst_len = Rng.exponential rng ~rate:(1.0 /. on_mean) in
      let burst_end = Engine.now engine +. burst_len in
      let rec tick () =
        if Engine.now engine <= stop then begin
          emit packet_bytes;
          if Engine.now engine +. interval <= burst_end then
            Engine.schedule_kind engine ~kind:k_src ~delay:interval tick
          else
            Engine.schedule_kind engine ~kind:k_src
              ~delay:(Rng.exponential rng ~rate:(1.0 /. off_mean))
              start_burst
        end
      in
      tick ()
    end
  in
  Engine.schedule_kind engine ~kind:k_src ~delay:(Float.max 0.0 start)
    start_burst

let pareto_bursts engine rng ~start ~stop ~burst_rate ~mean_burst_bytes
    ?(shape = 1.5) ?(mtu = 1500) emit =
  if burst_rate <= 0.0 then
    invalid_arg "Traffic.pareto_bursts: rate must be positive";
  if shape <= 1.0 then
    invalid_arg "Traffic.pareto_bursts: shape must exceed 1 for a finite mean";
  (* Pareto mean = shape*scale/(shape-1); solve scale for the requested
     mean burst size. *)
  let scale = mean_burst_bytes *. (shape -. 1.0) /. shape in
  let fire () =
    let burst = int_of_float (Rng.pareto rng ~shape ~scale) in
    let rec blast remaining =
      if remaining > 0 then begin
        emit (min remaining mtu);
        blast (remaining - mtu)
      end
    in
    blast burst;
    Some (Rng.exponential rng ~rate:burst_rate)
  in
  repeat_until engine ~stop fire
    (Float.max 0.0 start +. Rng.exponential rng ~rate:burst_rate)
