(* Group communication inside a VPN (the abstract's motivating user
   need): one site announces to every other member site, with the EF
   marking honoured end to end.

   Run with:  dune exec examples/group_communication.exe *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow

let () =
  Printf.printf "== Group communication over the MPLS VPN ==\n\n";
  let bb = Backbone.build ~pops:8 () in
  let sites =
    List.init 5 (fun i ->
        Backbone.attach_site bb ~id:(i + 1)
          ~name:(Printf.sprintf "office-%d" (i + 1)) ~vpn:1
          ~prefix:(Prefix.make (Ipv4.of_octets 10 i 0 0) 16)
          ~pop:(i * 3 mod 8))
  in
  let rival =
    Backbone.attach_site bb ~id:99 ~name:"rival-corp" ~vpn:2
      ~prefix:(Prefix.make (Ipv4.of_octets 10 0 0 0) 16) ~pop:1
  in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let _vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites:(rival :: sites) () in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (fun p ->
           Printf.printf "  t=%6.2fms  %-10s received the announcement (%s)\n"
             (Engine.now engine *. 1e3) s.Site.name
             (Format.asprintf "%a" Mvpn_net.Dscp.pp (Packet.visible_dscp p))))
    (rival :: sites);
  let hq = List.hd sites in
  Printf.printf "%s sends one EF announcement to group 239.1.1.1:\n\n"
    hq.Site.name;
  Network.inject net hq.Site.ce_node
    (Packet.make ~vpn:1 ~dscp:Mvpn_net.Dscp.ef ~size:400 ~now:0.0
       (Flow.make (Site.host hq 1) (Ipv4.of_string_exn "239.1.1.1")));
  Engine.run engine;
  Printf.printf
    "\nFour copies, one per member office, each still marked EF; the\n\
     rival's VPN (which even shares the 10.0/16 plan) saw nothing.\n"
