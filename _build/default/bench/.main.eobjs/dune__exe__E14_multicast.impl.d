bench/e14_multicast.ml: Backbone List Mpls_vpn Mvpn_core Mvpn_net Mvpn_qos Mvpn_sim Network Printf Site Tables
