lib/routing/spf.mli: Mvpn_sim
