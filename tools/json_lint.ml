(* Dependency-free JSON well-formedness check for CI: reads stdin,
   exits 0 if the input is exactly one valid JSON value (plus trailing
   whitespace), exits 1 with a position-tagged message otherwise.

   With --require-schema the input must additionally be an object whose
   first member is a numeric "schema" version — the contract every
   machine-readable mvpn dump (stats/slo/chaos/par/timeline, and the
   registry snapshots inside them) now carries, so downstream consumers
   can dispatch on format before parsing the rest.

   Used by tools/check.sh on `mvpn * --json` output and on
   BENCH_telemetry.json — a malformed dump should fail the gate, not
   whatever downstream tool reads the file next. *)

let require_schema = Array.exists (( = ) "--require-schema") Sys.argv

let buf =
  let b = Buffer.create 65536 in
  (try
     while true do
       Buffer.add_channel b stdin 4096
     done
   with End_of_file -> ());
  Buffer.contents b

let pos = ref 0

let fail msg =
  (* Report 1-based line:column of the current position. *)
  let line = ref 1 and col = ref 1 in
  for i = 0 to min !pos (String.length buf) - 1 do
    if buf.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  Printf.eprintf "json_lint: %d:%d: %s\n" !line !col msg;
  exit 1

let peek () = if !pos < String.length buf then Some buf.[!pos] else None

let advance () = incr pos

let skip_ws () =
  while
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      true
    | _ -> false
  do
    ()
  done

let expect c =
  match peek () with
  | Some d when d = c -> advance ()
  | Some d -> fail (Printf.sprintf "expected %c, found %c" c d)
  | None -> fail (Printf.sprintf "expected %c, found end of input" c)

let literal word =
  let n = String.length word in
  if !pos + n <= String.length buf && String.sub buf !pos n = word then
    pos := !pos + n
  else fail (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string () =
  expect '"';
  let rec go () =
    match peek () with
    | None -> fail "unterminated string"
    | Some '"' -> advance ()
    | Some '\\' ->
      advance ();
      (match peek () with
       | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
         advance ();
         go ()
       | Some 'u' ->
         advance ();
         for _ = 1 to 4 do
           match peek () with
           | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
           | _ -> fail "invalid \\u escape"
         done;
         go ()
       | _ -> fail "invalid escape")
    | Some c when Char.code c < 0x20 -> fail "control character in string"
    | Some _ ->
      advance ();
      go ()
  in
  go ()

let parse_number () =
  let digits () =
    match peek () with
    | Some '0' .. '9' ->
      while match peek () with Some '0' .. '9' -> true | _ -> false do
        advance ()
      done
    | _ -> fail "expected digit"
  in
  if peek () = Some '-' then advance ();
  (match peek () with
   | Some '0' -> advance ()
   | Some '1' .. '9' -> digits ()
   | _ -> fail "malformed number");
  if peek () = Some '.' then begin
    advance ();
    digits ()
  end;
  (match peek () with
   | Some ('e' | 'E') ->
     advance ();
     (match peek () with Some ('+' | '-') -> advance () | _ -> ());
     digits ()
   | _ -> ())

let rec parse_value () =
  skip_ws ();
  match peek () with
  | Some '"' -> parse_string ()
  | Some '{' -> parse_object ()
  | Some '[' -> parse_array ()
  | Some 't' -> literal "true"
  | Some 'f' -> literal "false"
  | Some 'n' -> literal "null"
  | Some ('-' | '0' .. '9') -> parse_number ()
  | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  | None -> fail "empty input"

and parse_object () =
  expect '{';
  skip_ws ();
  if peek () = Some '}' then advance ()
  else begin
    let rec members () =
      skip_ws ();
      parse_string ();
      skip_ws ();
      expect ':';
      parse_value ();
      skip_ws ();
      match peek () with
      | Some ',' ->
        advance ();
        members ()
      | Some '}' -> advance ()
      | _ -> fail "expected , or } in object"
    in
    members ()
  end

and parse_array () =
  expect '[';
  skip_ws ();
  if peek () = Some ']' then advance ()
  else begin
    let rec elements () =
      parse_value ();
      skip_ws ();
      match peek () with
      | Some ',' ->
        advance ();
        elements ()
      | Some ']' -> advance ()
      | _ -> fail "expected , or ] in array"
    in
    elements ()
  end

let () =
  parse_value ();
  skip_ws ();
  if !pos <> String.length buf then fail "trailing garbage after JSON value";
  if require_schema then begin
    (* Every versioned dump leads with its schema member, so a prefix
       check is exact, not heuristic. *)
    pos := 0;
    skip_ws ();
    (match peek () with
     | Some '{' -> advance ()
     | _ -> fail "--require-schema: top-level value is not an object");
    skip_ws ();
    if
      !pos + 9 > String.length buf
      || String.sub buf !pos 9 <> "\"schema\":"
    then fail "--require-schema: first member is not \"schema\"";
    pos := !pos + 9;
    skip_ws ();
    (match peek () with
     | Some '0' .. '9' -> ()
     | _ -> fail "--require-schema: \"schema\" is not a number")
  end
