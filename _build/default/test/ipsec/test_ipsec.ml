open Mvpn_ipsec
module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow
module Dscp = Mvpn_net.Dscp
module Ipv4 = Mvpn_net.Ipv4

let ip = Ipv4.of_string_exn

(* --- Crypto ------------------------------------------------------------- *)

let test_crypto_cost_ratio () =
  let des = Crypto.processing_delay Crypto.Des ~bytes:100_000 in
  let des3 = Crypto.processing_delay Crypto.Des3 ~bytes:100_000 in
  let ratio = des3 /. des in
  Alcotest.(check bool) "3des is about 3x des" true
    (ratio > 2.7 && ratio < 3.3);
  Alcotest.(check (float 1e-12)) "null is free" 0.0
    (Crypto.processing_delay Crypto.Null ~bytes:100_000)

let test_crypto_cost_monotone () =
  let small = Crypto.processing_delay Crypto.Des ~bytes:100 in
  let large = Crypto.processing_delay Crypto.Des ~bytes:10_000 in
  Alcotest.(check bool) "more bytes, more time" true (large > small);
  Alcotest.(check bool) "per-packet floor" true (small > 0.0)

let test_crypto_block_roundtrip () =
  let key = 0xDEADBEEFCAFEBABEL in
  List.iter
    (fun block ->
       Alcotest.(check int64) "roundtrip" block
         (Crypto.decrypt_block ~key (Crypto.encrypt_block ~key block)))
    [0L; 1L; -1L; 0x0123456789ABCDEFL; Int64.min_int; Int64.max_int]

let test_crypto_block_scrambles () =
  let key = 42L in
  let c0 = Crypto.encrypt_block ~key 0L in
  let c1 = Crypto.encrypt_block ~key 1L in
  Alcotest.(check bool) "ciphertext differs from plaintext" true (c0 <> 0L);
  Alcotest.(check bool) "nearby plaintexts diverge" true (c0 <> c1);
  let other = Crypto.encrypt_block ~key:43L 0L in
  Alcotest.(check bool) "key matters" true (c0 <> other)

let test_crypto_bytes_roundtrip () =
  let key = 7L in
  let plain = Bytes.of_string "the inner IP header: EF dscp 10.0.0.1" in
  let cipher = Crypto.encrypt_bytes ~key plain in
  Alcotest.(check bool) "unreadable" true
    (not (String.equal (Bytes.to_string plain)
            (String.sub (Bytes.to_string cipher) 0 (Bytes.length plain))));
  let back = Crypto.decrypt_bytes ~key cipher in
  Alcotest.(check string) "roundtrip up to padding"
    (Bytes.to_string plain)
    (String.sub (Bytes.to_string back) 0 (Bytes.length plain))

let test_crypto_bytes_bad_length () =
  Alcotest.check_raises "not a block multiple"
    (Invalid_argument "Crypto.decrypt_bytes: length not a block multiple")
    (fun () -> ignore (Crypto.decrypt_bytes ~key:1L (Bytes.create 7)))

let test_crypto_throughput_ordering () =
  Alcotest.(check bool) "null unbounded" true
    (Crypto.throughput_bps Crypto.Null = infinity);
  Alcotest.(check bool) "des 3x 3des" true
    (Crypto.throughput_bps Crypto.Des
     > 2.9 *. Crypto.throughput_bps Crypto.Des3)

let crypto_roundtrip_prop =
  QCheck.Test.make ~name:"feistel roundtrips any block" ~count:500
    QCheck.(pair int64 int64)
    (fun (key, block) ->
       Crypto.decrypt_block ~key (Crypto.encrypt_block ~key block) = block)

(* --- Esp ----------------------------------------------------------------- *)

let test_esp_overhead_null () =
  (* Null cipher: outer 20 + esp 8 + iv 0 + pad 0..? + trailer 2 + auth 12. *)
  let o = Esp.overhead Crypto.Null ~payload:100 in
  Alcotest.(check int) "null overhead" (20 + 8 + 0 + 0 + 2 + 12) o

let test_esp_overhead_des_padding () =
  (* payload 100 + trailer 2 = 102; pad to 104 -> 2 bytes of pad. *)
  let o = Esp.overhead Crypto.Des ~payload:100 in
  Alcotest.(check int) "des overhead" (20 + 8 + 8 + 2 + 2 + 12) o;
  (* payload 102 + 2 = 104 already a multiple -> no pad. *)
  Alcotest.(check int) "no pad case" (20 + 8 + 8 + 0 + 2 + 12)
    (Esp.overhead Crypto.Des ~payload:102)

let esp_padding_aligns =
  QCheck.Test.make ~name:"esp padded body is block aligned" ~count:300
    QCheck.(int_range 1 9000)
    (fun payload ->
       let pad = Esp.pad_bytes Crypto.Des3 ~payload in
       (payload + Esp.trailer_bytes + pad) mod 8 = 0 && pad >= 0 && pad < 8)

(* --- Replay -------------------------------------------------------------- *)

let test_replay_in_order () =
  let w = Replay.create () in
  for seq = 1 to 100 do
    match Replay.check w seq with
    | Replay.Accepted -> ()
    | _ -> Alcotest.failf "rejected fresh seq %d" seq
  done;
  Alcotest.(check int) "highest" 100 (Replay.highest_seen w)

let test_replay_duplicate () =
  let w = Replay.create () in
  ignore (Replay.check w 5);
  Alcotest.(check bool) "duplicate rejected" true
    (Replay.check w 5 = Replay.Duplicate)

let test_replay_out_of_order_within_window () =
  let w = Replay.create () in
  ignore (Replay.check w 10);
  Alcotest.(check bool) "late but fresh" true
    (Replay.check w 7 = Replay.Accepted);
  Alcotest.(check bool) "then duplicate" true
    (Replay.check w 7 = Replay.Duplicate)

let test_replay_too_old () =
  let w = Replay.create ~window:32 () in
  ignore (Replay.check w 100);
  Alcotest.(check bool) "beyond window" true
    (Replay.check w 60 = Replay.Too_old);
  Alcotest.(check bool) "just inside" true
    (Replay.check w 69 = Replay.Accepted)

let replay_never_accepts_twice =
  QCheck.Test.make ~name:"window never accepts a seq twice" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 1 100))
    (fun seqs ->
       let w = Replay.create () in
       let accepted = Hashtbl.create 16 in
       List.for_all
         (fun seq ->
            match Replay.check w seq with
            | Replay.Accepted ->
              if Hashtbl.mem accepted seq then false
              else begin
                Hashtbl.add accepted seq ();
                true
              end
            | Replay.Duplicate | Replay.Too_old -> true)
         seqs)

(* --- Ike ----------------------------------------------------------------- *)

let test_ike_delays () =
  let p = Ike.default_params ~rtt:0.040 in
  Alcotest.(check (float 1e-9)) "phase1" ((3.0 *. 0.040) +. 0.040)
    (Ike.phase1_delay p);
  Alcotest.(check (float 1e-9)) "phase2" ((1.5 *. 0.040) +. 0.020)
    (Ike.phase2_delay p);
  Alcotest.(check bool) "setup dominated by handshakes" true
    (Ike.initial_setup_delay p > 4.0 *. 0.040)

let test_ike_rekey_changes_key () =
  let p = { (Ike.default_params ~rtt:0.01) with Ike.sa_lifetime = 100.0 } in
  let ike = Ike.create p ~now:0.0 in
  let ready = Ike.ready_at ike in
  let k0 = Ike.key_at ike ~now:(ready +. 1.0) in
  let k1 = Ike.key_at ike ~now:(ready +. 150.0) in
  Alcotest.(check bool) "rekeyed" true (k0 <> k1);
  Alcotest.(check int) "one rekey" 1
    (Ike.rekeys_before ike ~now:(ready +. 150.0));
  Alcotest.check_raises "too early"
    (Invalid_argument "Ike.key_at: tunnel not yet established") (fun () ->
      ignore (Ike.key_at ike ~now:0.0))

(* --- Sa ------------------------------------------------------------------ *)

let test_sa_seq_and_accounting () =
  let sa = Sa.create ~spi:0x99 ~cipher:Crypto.Des ~key:1L in
  Alcotest.(check int) "seq 1" 1 (Sa.next_seq sa);
  Alcotest.(check int) "seq 2" 2 (Sa.next_seq sa);
  Sa.account sa ~bytes:500;
  Sa.account sa ~bytes:300;
  Alcotest.(check int) "bytes" 800 (Sa.bytes_processed sa);
  Alcotest.(check int) "packets" 2 (Sa.packets_processed sa);
  Alcotest.(check int) "spi" 0x99 (Sa.spi sa)

(* --- Tunnel -------------------------------------------------------------- *)

let fresh_packet ?(dscp = Dscp.ef) () =
  Packet.make ~dscp ~size:512 ~now:0.0
    (Flow.make ~proto:Flow.Udp ~dst_port:5060 (ip "10.1.0.5")
       (ip "10.2.0.9"))

let gateway_pair ?copy_tos cipher =
  Tunnel.create ?copy_tos ~cipher ~local:(ip "198.51.100.1")
    ~remote:(ip "198.51.100.2") ~key:0xFEEDL ()

let test_tunnel_roundtrip () =
  let t = gateway_pair Crypto.Des in
  let p = fresh_packet () in
  let original_size = p.Packet.size in
  let enc_delay = Tunnel.encapsulate t p in
  Alcotest.(check bool) "encryption costs time" true (enc_delay > 0.0);
  Alcotest.(check bool) "bigger on the wire" true
    (p.Packet.size > original_size);
  Alcotest.(check bool) "encrypted" true p.Packet.encrypted;
  (match Tunnel.decapsulate t p with
   | Tunnel.Decapsulated d -> Alcotest.(check bool) "decrypt cost" true (d > 0.0)
   | _ -> Alcotest.fail "decap failed");
  Alcotest.(check int) "size restored" original_size p.Packet.size;
  Alcotest.(check bool) "readable again" false p.Packet.encrypted

let test_tunnel_tos_erasure () =
  let t = gateway_pair Crypto.Des in
  let p = fresh_packet ~dscp:Dscp.ef () in
  ignore (Tunnel.encapsulate t p);
  Alcotest.(check bool) "EF invisible in transit" true
    (Dscp.equal (Packet.visible_dscp p) Dscp.best_effort);
  Alcotest.(check bool) "5-tuple invisible" true
    (Packet.classifiable_flow p = None)

let test_tunnel_tos_copy_preserves_class () =
  let t = gateway_pair ~copy_tos:true Crypto.Des in
  let p = fresh_packet ~dscp:Dscp.ef () in
  ignore (Tunnel.encapsulate t p);
  Alcotest.(check bool) "EF visible on outer header" true
    (Dscp.equal (Packet.visible_dscp p) Dscp.ef);
  (* The flow details remain hidden either way: only the class leaks. *)
  Alcotest.(check bool) "5-tuple still hidden" true
    (Packet.classifiable_flow p = None)

let test_tunnel_replay_rejected () =
  let t = gateway_pair Crypto.Des in
  let p = fresh_packet () in
  ignore (Tunnel.encapsulate t p);
  (match Tunnel.decapsulate t p with
   | Tunnel.Decapsulated _ -> ()
   | _ -> Alcotest.fail "first copy should pass");
  (* Attacker re-injects the same ESP packet. *)
  let replayed = fresh_packet () in
  ignore (Tunnel.encapsulate t replayed);
  (* Forge: give the copy the original's sequence number by replaying
     the original uid→seq entry. Simplest faithful model: decapsulate
     the original packet again. *)
  Packet.encapsulate p ~src:(ip "198.51.100.1") ~dst:(ip "198.51.100.2")
    ~proto:Flow.Esp ~overhead:57 ~copy_tos:false;
  (match Tunnel.decapsulate t p with
   | Tunnel.Replayed -> ()
   | _ -> Alcotest.fail "replayed packet must be dropped");
  Alcotest.(check int) "replay counted" 1 (Tunnel.replay_drops t)

let test_tunnel_wrong_destination () =
  let t = gateway_pair Crypto.Des in
  let other =
    Tunnel.create ~cipher:Crypto.Des ~local:(ip "198.51.100.1")
      ~remote:(ip "203.0.113.9") ~key:1L ()
  in
  let p = fresh_packet () in
  ignore (Tunnel.encapsulate other p);
  match Tunnel.decapsulate t p with
  | Tunnel.Not_ours -> ()
  | _ -> Alcotest.fail "should not decapsulate someone else's traffic"

let test_tunnel_null_cipher_keeps_headers_visible () =
  let t = gateway_pair Crypto.Null in
  let p = fresh_packet ~dscp:Dscp.ef () in
  let d = Tunnel.encapsulate t p in
  Alcotest.(check (float 1e-12)) "free" 0.0 d;
  Alcotest.(check bool) "not encrypted" false p.Packet.encrypted;
  (* Outer header still governs what classifiers see, but the inner
     5-tuple is readable because nothing is encrypted. *)
  Alcotest.(check bool) "flow classifiable" true
    (Packet.classifiable_flow p <> None)

let test_tunnel_3des_slower_than_des () =
  let t3 = gateway_pair Crypto.Des3 and t1 = gateway_pair Crypto.Des in
  let p3 = fresh_packet () and p1 = fresh_packet () in
  let d3 = Tunnel.encapsulate t3 p3 and d1 = Tunnel.encapsulate t1 p1 in
  Alcotest.(check bool) "3des costlier" true (d3 > d1)

let test_tunnel_counters () =
  let t = gateway_pair Crypto.Des in
  Alcotest.(check int) "fresh" 0 (Tunnel.packets_sent t);
  let p = fresh_packet () in
  ignore (Tunnel.encapsulate t p);
  ignore (Tunnel.encapsulate t (fresh_packet ()));
  Alcotest.(check int) "two sent" 2 (Tunnel.packets_sent t);
  Alcotest.(check int) "no replays yet" 0 (Tunnel.replay_drops t);
  Alcotest.(check bool) "accessors" true
    (Tunnel.cipher t = Crypto.Des && not (Tunnel.copy_tos t))

let test_ike_no_rekey_within_lifetime () =
  let p = Ike.default_params ~rtt:0.01 in
  let ike = Ike.create p ~now:0.0 in
  let ready = Ike.ready_at ike in
  Alcotest.(check int) "zero rekeys early" 0
    (Ike.rekeys_before ike ~now:(ready +. 10.0));
  Alcotest.(check bool) "key stable within lifetime" true
    (Ike.key_at ike ~now:(ready +. 1.0)
     = Ike.key_at ike ~now:(ready +. 3000.0))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ipsec"
    [ ("crypto",
       [ Alcotest.test_case "cost ratio" `Quick test_crypto_cost_ratio;
         Alcotest.test_case "cost monotone" `Quick test_crypto_cost_monotone;
         Alcotest.test_case "block roundtrip" `Quick
           test_crypto_block_roundtrip;
         Alcotest.test_case "block scrambles" `Quick
           test_crypto_block_scrambles;
         Alcotest.test_case "bytes roundtrip" `Quick
           test_crypto_bytes_roundtrip;
         Alcotest.test_case "bad length" `Quick test_crypto_bytes_bad_length;
         Alcotest.test_case "throughput ordering" `Quick
           test_crypto_throughput_ordering;
         qt crypto_roundtrip_prop ]);
      ("esp",
       [ Alcotest.test_case "null overhead" `Quick test_esp_overhead_null;
         Alcotest.test_case "des padding" `Quick
           test_esp_overhead_des_padding;
         qt esp_padding_aligns ]);
      ("replay",
       [ Alcotest.test_case "in order" `Quick test_replay_in_order;
         Alcotest.test_case "duplicate" `Quick test_replay_duplicate;
         Alcotest.test_case "out of order" `Quick
           test_replay_out_of_order_within_window;
         Alcotest.test_case "too old" `Quick test_replay_too_old;
         qt replay_never_accepts_twice ]);
      ("ike",
       [ Alcotest.test_case "delays" `Quick test_ike_delays;
         Alcotest.test_case "rekey" `Quick test_ike_rekey_changes_key;
         Alcotest.test_case "stable within lifetime" `Quick
           test_ike_no_rekey_within_lifetime ]);
      ("sa",
       [ Alcotest.test_case "seq and accounting" `Quick
           test_sa_seq_and_accounting ]);
      ("tunnel",
       [ Alcotest.test_case "roundtrip" `Quick test_tunnel_roundtrip;
         Alcotest.test_case "tos erasure" `Quick test_tunnel_tos_erasure;
         Alcotest.test_case "tos copy" `Quick
           test_tunnel_tos_copy_preserves_class;
         Alcotest.test_case "replay rejected" `Quick
           test_tunnel_replay_rejected;
         Alcotest.test_case "wrong destination" `Quick
           test_tunnel_wrong_destination;
         Alcotest.test_case "null cipher visibility" `Quick
           test_tunnel_null_cipher_keeps_headers_visible;
         Alcotest.test_case "3des slower" `Quick
           test_tunnel_3des_slower_than_des;
         Alcotest.test_case "counters" `Quick test_tunnel_counters ]) ]
