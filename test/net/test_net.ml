open Mvpn_net

(* --- Ipv4 ------------------------------------------------------------- *)

let ip = Ipv4.of_string_exn

let test_ipv4_octets () =
  let a = Ipv4.of_octets 10 1 2 3 in
  Alcotest.(check string) "render" "10.1.2.3" (Ipv4.to_string a);
  Alcotest.(check (pair (pair int int) (pair int int))) "octets"
    ((10, 1), (2, 3))
    (let a, b, c, d = Ipv4.to_octets a in ((a, b), (c, d)))

let test_ipv4_parse_valid () =
  Alcotest.(check int) "value" ((192 lsl 24) lor (168 lsl 16) lor 257)
    (Ipv4.to_int (ip "192.168.1.1"))

let test_ipv4_parse_invalid () =
  let bad s =
    match Ipv4.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  List.iter bad
    [""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "-1.2.3.4"; "a.b.c.d";
     "1..2.3"; "1000.2.3.4"]

let test_ipv4_bounds () =
  Alcotest.check_raises "negative" (Invalid_argument
    "Ipv4.of_int32_exn: -1 out of range") (fun () ->
    ignore (Ipv4.of_int32_exn (-1)));
  Alcotest.(check string) "broadcast" "255.255.255.255"
    (Ipv4.to_string Ipv4.broadcast)

let test_ipv4_arith () =
  Alcotest.(check string) "succ" "10.0.0.1"
    (Ipv4.to_string (Ipv4.succ (ip "10.0.0.0")));
  Alcotest.(check string) "wrap" "0.0.0.0"
    (Ipv4.to_string (Ipv4.succ Ipv4.broadcast));
  Alcotest.(check string) "add" "10.0.1.0"
    (Ipv4.to_string (Ipv4.add (ip "10.0.0.0") 256))

let ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 string roundtrip" ~count:500
    (QCheck.int_bound 0xFFFF_FFF)
    (fun seed ->
       let a = Ipv4.of_int32_exn (seed * 16) in
       Ipv4.equal a (Ipv4.of_string_exn (Ipv4.to_string a)))

(* --- Prefix ----------------------------------------------------------- *)

let pfx = Prefix.of_string_exn

let test_prefix_canonical () =
  let p = Prefix.make (ip "10.1.2.3") 16 in
  Alcotest.(check string) "canonical" "10.1.0.0/16" (Prefix.to_string p);
  Alcotest.(check bool) "equal" true (Prefix.equal p (pfx "10.1.255.255/16"))

let test_prefix_parse () =
  Alcotest.(check string) "bare address is /32" "10.0.0.1/32"
    (Prefix.to_string (pfx "10.0.0.1"));
  (match Prefix.of_string "10.0.0.0/33" with
   | Ok _ -> Alcotest.fail "accepted /33"
   | Error _ -> ());
  match Prefix.of_string "10.0.0/8" with
  | Ok _ -> Alcotest.fail "accepted bad address"
  | Error _ -> ()

let test_prefix_mem () =
  let p = pfx "172.16.0.0/12" in
  Alcotest.(check bool) "inside" true (Prefix.mem (ip "172.20.1.1") p);
  Alcotest.(check bool) "outside" false (Prefix.mem (ip "172.32.0.0") p);
  Alcotest.(check bool) "first" true (Prefix.mem (Prefix.first p) p);
  Alcotest.(check bool) "last" true (Prefix.mem (Prefix.last p) p)

let test_prefix_subsumes () =
  Alcotest.(check bool) "wider subsumes narrower" true
    (Prefix.subsumes (pfx "10.0.0.0/8") (pfx "10.1.0.0/16"));
  Alcotest.(check bool) "narrower does not" false
    (Prefix.subsumes (pfx "10.1.0.0/16") (pfx "10.0.0.0/8"));
  Alcotest.(check bool) "self" true
    (Prefix.subsumes (pfx "10.0.0.0/8") (pfx "10.0.0.0/8"));
  Alcotest.(check bool) "disjoint" false
    (Prefix.subsumes (pfx "10.0.0.0/8") (pfx "11.0.0.0/8"));
  Alcotest.(check bool) "default subsumes all" true
    (Prefix.subsumes Prefix.default (pfx "203.0.113.0/24"))

let test_prefix_split () =
  (match Prefix.split (pfx "10.0.0.0/8") with
   | Some (lo, hi) ->
     Alcotest.(check string) "lo" "10.0.0.0/9" (Prefix.to_string lo);
     Alcotest.(check string) "hi" "10.128.0.0/9" (Prefix.to_string hi)
   | None -> Alcotest.fail "split failed");
  Alcotest.(check bool) "/32 unsplittable" true
    (Prefix.split (pfx "1.2.3.4/32") = None)

let test_prefix_subnets () =
  let subs = Prefix.subnets (pfx "192.168.0.0/16") 18 in
  Alcotest.(check int) "count" 4 (List.length subs);
  Alcotest.(check (list string)) "order"
    ["192.168.0.0/18"; "192.168.64.0/18"; "192.168.128.0/18";
     "192.168.192.0/18"]
    (List.map Prefix.to_string subs)

let test_prefix_hosts () =
  let p = pfx "10.0.0.0/30" in
  Alcotest.(check int) "size" 4 (Prefix.size p);
  Alcotest.(check string) "nth" "10.0.0.2"
    (Ipv4.to_string (Prefix.nth_host p 2));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Prefix.nth_host: index 4 outside 10.0.0.0/30")
    (fun () -> ignore (Prefix.nth_host p 4))

let prefix_split_partition =
  QCheck.Test.make ~name:"split partitions the prefix" ~count:300
    QCheck.(pair (int_bound 0xFFFF_FFF) (int_bound 31))
    (fun (seed, len) ->
       let p = Prefix.make (Ipv4.of_int32_exn (seed * 16)) len in
       match Prefix.split p with
       | None -> false
       | Some (lo, hi) ->
         Prefix.subsumes p lo && Prefix.subsumes p hi
         && (not (Prefix.overlaps lo hi))
         && Prefix.size lo + Prefix.size hi = Prefix.size p)

let prefix_mem_bounds =
  QCheck.Test.make ~name:"mem agrees with first/last bounds" ~count:300
    QCheck.(triple (int_bound 0xFFFF_FFF) (int_bound 32) (int_bound 0xFFFF))
    (fun (seed, len, probe) ->
       let p = Prefix.make (Ipv4.of_int32_exn (seed * 16)) len in
       let a = Ipv4.add (Prefix.first p) (probe mod Prefix.size p) in
       Prefix.mem a p)

(* --- Dscp ------------------------------------------------------------- *)

let test_dscp_codepoints () =
  Alcotest.(check int) "EF" 46 (Dscp.to_int Dscp.ef);
  Alcotest.(check int) "AF11" 10 (Dscp.to_int (Dscp.af 1 1));
  Alcotest.(check int) "AF31" 26 (Dscp.to_int (Dscp.af 3 1));
  Alcotest.(check int) "AF43" 38 (Dscp.to_int (Dscp.af 4 3));
  Alcotest.(check int) "CS6" 48 (Dscp.to_int (Dscp.cs 6));
  Alcotest.(check int) "BE" 0 (Dscp.to_int Dscp.best_effort)

let test_dscp_phb_roundtrip () =
  let phbs =
    [Dscp.Default; Dscp.Ef; Dscp.Af (1, 1); Dscp.Af (2, 3); Dscp.Af (4, 2);
     Dscp.Cs 3; Dscp.Cs 7]
  in
  List.iter
    (fun phb ->
       Alcotest.(check bool) "roundtrip" true
         (Dscp.to_phb (Dscp.of_phb phb) = phb))
    phbs

let test_dscp_exp_mapping () =
  Alcotest.(check int) "EF->5" 5 (Dscp.to_exp Dscp.ef);
  Alcotest.(check int) "AF3->3" 3 (Dscp.to_exp (Dscp.af 3 2));
  Alcotest.(check int) "BE->0" 0 (Dscp.to_exp Dscp.best_effort);
  Alcotest.(check int) "CS6->6" 6 (Dscp.to_exp (Dscp.cs 6));
  (* of_exp inverts the class even if drop precedence is coarsened *)
  Alcotest.(check int) "exp roundtrip keeps class" 3
    (Dscp.to_exp (Dscp.of_exp (Dscp.to_exp (Dscp.af 3 3))))

let test_dscp_drop_precedence () =
  Alcotest.(check int) "AF13" 3 (Dscp.drop_precedence (Dscp.af 1 3));
  Alcotest.(check int) "EF" 1 (Dscp.drop_precedence Dscp.ef);
  Alcotest.(check int) "BE" 1 (Dscp.drop_precedence Dscp.best_effort)

let test_dscp_invalid () =
  Alcotest.check_raises "64" (Invalid_argument
    "Dscp.of_int_exn: 64 out of range") (fun () ->
    ignore (Dscp.of_int_exn 64));
  Alcotest.check_raises "AF53"
    (Invalid_argument "Dscp.of_phb: AF53 out of range") (fun () ->
      ignore (Dscp.af 5 3))

(* --- Flow ------------------------------------------------------------- *)

let test_flow_reverse () =
  let f =
    Flow.make ~proto:Flow.Tcp ~src_port:1234 ~dst_port:80 (ip "10.0.0.1")
      (ip "10.0.0.2")
  in
  let r = Flow.reverse f in
  Alcotest.(check bool) "src" true (Ipv4.equal r.Flow.src f.Flow.dst);
  Alcotest.(check int) "port" 80 r.Flow.src_port;
  Alcotest.(check bool) "involutive" true (Flow.equal f (Flow.reverse r))

let test_flow_compare () =
  let a = Flow.make (ip "10.0.0.1") (ip "10.0.0.2") in
  let b = Flow.make (ip "10.0.0.1") (ip "10.0.0.3") in
  Alcotest.(check bool) "lt" true (Flow.compare a b < 0);
  Alcotest.(check bool) "eq" true (Flow.equal a a);
  Alcotest.(check bool) "hash eq" true (Flow.hash a = Flow.hash a)

(* --- Packet ----------------------------------------------------------- *)

let fresh_packet ?dscp () =
  let flow = Flow.make (ip "10.1.0.1") (ip "10.2.0.1") in
  Packet.make ?dscp ~now:0.0 flow

let test_packet_labels () =
  let p = fresh_packet () in
  let size0 = p.Packet.size in
  Packet.push_label p ~label:100 ~exp:5 ~ttl:64;
  Packet.push_label p ~label:200 ~exp:5 ~ttl:64;
  Alcotest.(check int) "size grows" (size0 + 8) p.Packet.size;
  (match Packet.top_label p with
   | Some s -> Alcotest.(check int) "top" 200 s.Packet.label
   | None -> Alcotest.fail "no label");
  Packet.swap_label p ~label:300;
  (match Packet.top_label p with
   | Some s ->
     Alcotest.(check int) "swapped" 300 s.Packet.label;
     Alcotest.(check int) "ttl decremented" 63 s.Packet.ttl
   | None -> Alcotest.fail "no label");
  (match Packet.pop_label p with
   | Some s -> Alcotest.(check int) "popped" 300 s.Packet.label
   | None -> Alcotest.fail "pop failed");
  ignore (Packet.pop_label p);
  Alcotest.(check int) "size restored" size0 p.Packet.size;
  Alcotest.(check bool) "empty pop" true (Packet.pop_label p = None)

let test_packet_swap_empty () =
  let p = fresh_packet () in
  Alcotest.check_raises "swap on empty"
    (Invalid_argument "Packet.swap_label: empty label stack") (fun () ->
      Packet.swap_label p ~label:1)

let test_packet_encap_tos_copy () =
  let p = fresh_packet ~dscp:Dscp.ef () in
  let size0 = p.Packet.size in
  Packet.encapsulate p ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
    ~proto:Flow.Esp ~overhead:57 ~copy_tos:true;
  Alcotest.(check int) "overhead" (size0 + 57) p.Packet.size;
  Alcotest.(check bool) "visible dscp preserved" true
    (Dscp.equal (Packet.visible_dscp p) Dscp.ef);
  Packet.decapsulate p;
  Alcotest.(check int) "size restored" size0 p.Packet.size

let test_packet_encap_no_tos_copy () =
  let p = fresh_packet ~dscp:Dscp.ef () in
  Packet.encapsulate p ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
    ~proto:Flow.Esp ~overhead:57 ~copy_tos:false;
  p.Packet.encrypted <- true;
  Alcotest.(check bool) "service class erased" true
    (Dscp.equal (Packet.visible_dscp p) Dscp.best_effort);
  Alcotest.(check bool) "flow unreadable" true
    (Packet.classifiable_flow p = None);
  Packet.decapsulate p;
  Alcotest.(check bool) "restored after decap" true
    (Dscp.equal (Packet.visible_dscp p) Dscp.ef);
  Alcotest.(check bool) "flow readable again" true
    (Packet.classifiable_flow p <> None)

let test_packet_double_encap () =
  let p = fresh_packet () in
  Packet.encapsulate p ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
    ~proto:Flow.Gre ~overhead:24 ~copy_tos:true;
  Alcotest.check_raises "double encap"
    (Invalid_argument "Packet.encapsulate: already encapsulated") (fun () ->
      Packet.encapsulate p ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
        ~proto:Flow.Gre ~overhead:24 ~copy_tos:true)

let test_packet_uids_unique () =
  let a = fresh_packet () and b = fresh_packet () in
  Alcotest.(check bool) "distinct" true (a.Packet.uid <> b.Packet.uid)

let test_packet_swap_in_place () =
  let p = fresh_packet () in
  Packet.push_label p ~label:100 ~exp:5 ~ttl:64;
  Packet.push_label p ~label:200 ~exp:3 ~ttl:4;
  let size0 = p.Packet.size and depth0 = Packet.label_depth p in
  (* A swap is one integer store into the packed stack: steady-state
     swaps must allocate nothing. [Gc.minor_words] samples the counter
     before boxing its result, so the delta of the loop alone is exact. *)
  Packet.swap_label p ~label:300;
  let w0 = Gc.minor_words () in
  for i = 0 to 999 do
    Packet.swap_label p ~label:(301 + (i land 7))
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check (float 0.0)) "zero alloc across 1000 swaps" 0.0 dw;
  Alcotest.(check int) "size unchanged" size0 p.Packet.size;
  Alcotest.(check int) "depth unchanged" depth0 (Packet.label_depth p);
  (match Packet.top_label p with
   | Some s ->
     Alcotest.(check int) "last swap visible" (301 + (999 land 7))
       s.Packet.label;
     Alcotest.(check int) "exp preserved" 3 s.Packet.exp;
     (* uniform TTL model: one decrement per swap, clamped at 0 *)
     Alcotest.(check int) "ttl clamped at 0" 0 s.Packet.ttl
   | None -> Alcotest.fail "no label");
  (match Packet.label_stack p with
   | [ _; bottom ] ->
     Alcotest.(check int) "bottom entry untouched" 100 bottom.Packet.label
   | _ -> Alcotest.fail "depth changed")

let test_packet_pool_recycle () =
  Packet.set_pooling true;
  Fun.protect ~finally:(fun () -> Packet.set_pooling false) @@ fun () ->
  let p = fresh_packet () in
  Packet.push_label p ~label:77 ~exp:2 ~ttl:9;
  Packet.encapsulate p ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
    ~proto:Flow.Gre ~overhead:24 ~copy_tos:true;
  let uid0 = p.Packet.uid in
  Packet.release p;
  let parked = Packet.pool_size () in
  Alcotest.(check bool) "parked" true (parked >= 1);
  Packet.release p;
  Alcotest.(check int) "release idempotent" parked (Packet.pool_size ());
  let q = fresh_packet () in
  Alcotest.(check bool) "storage recycled" true (p == q);
  Alcotest.(check bool) "uid fresh" true (q.Packet.uid <> uid0);
  Alcotest.(check bool) "stack cleared" false (Packet.labelled q);
  Alcotest.(check bool) "outer disarmed" false (Packet.has_outer q);
  Alcotest.(check int) "pool drained" (parked - 1) (Packet.pool_size ())

let test_packet_pool_off_noop () =
  Alcotest.(check bool) "pooling off by default" false (Packet.pooling ());
  let p = fresh_packet () in
  let before = Packet.pool_size () in
  Packet.release p;
  Alcotest.(check int) "release is a no-op" before (Packet.pool_size ());
  let q = fresh_packet () in
  Alcotest.(check bool) "make allocates fresh" true (p != q)

(* --- Packet vs boxed reference model ---------------------------------- *)

(* A deliberately naive boxed model of the label stack: a list of
   (label, exp, ttl) tuples, top at the head, with the packed
   representation's clamping rules (label masked to 20 bits, exp to
   3 bits, ttl clamped into [0, 255]; swap decrements TTL clamping at
   0). Random op sequences run against a real packet and the model;
   every observable decode must agree after every op. *)
type stack_model = { mutable stk : (int * int * int) list; mutable msz : int }

let model_agrees p m =
  let flat =
    List.map
      (fun (s : Packet.shim) -> (s.Packet.label, s.Packet.exp, s.Packet.ttl))
      (Packet.label_stack p)
  in
  flat = m.stk
  && p.Packet.size = m.msz
  && Packet.label_depth p = List.length m.stk
  && Packet.labelled p = (m.stk <> [])
  && (match m.stk with
      | [] -> Packet.top_packed p = Packet.Shim.none
      | (l, e, t) :: _ ->
        let pk = Packet.top_packed p in
        Packet.Shim.label pk = l && Packet.Shim.exp pk = e
        && Packet.Shim.ttl pk = t
        && Packet.top_exp p = Some e)

let stack_op_gen =
  QCheck.Gen.(
    frequency
      [ (4,
         map3
           (fun l e t -> `Push (l, e, t))
           (int_bound 0x3F_FFFF) (int_bound 7) (int_bound 300));
        (3, return `Pop);
        (3, map (fun l -> `Swap l) (int_bound 0x3F_FFFF));
        (1, map (fun e -> `Set_exp_all e) (int_bound 7)) ])

let pp_stack_op op =
  match op with
  | `Push (l, e, t) -> Printf.sprintf "push(%d,%d,%d)" l e t
  | `Pop -> "pop"
  | `Swap l -> Printf.sprintf "swap(%d)" l
  | `Set_exp_all e -> Printf.sprintf "set_exp_all(%d)" e

let packet_matches_model =
  QCheck.Test.make ~name:"flat label stack = boxed reference model"
    ~count:300
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map pp_stack_op ops))
       QCheck.Gen.(list_size (int_bound 40) stack_op_gen))
    (fun ops ->
      let p = fresh_packet () in
      let m = { stk = []; msz = p.Packet.size } in
      List.for_all
        (fun op ->
           (match op with
            | `Push (label, exp, ttl) ->
              if List.length m.stk < Packet.max_depth then begin
                Packet.push_label p ~label ~exp ~ttl;
                m.stk <-
                  (label land 0xF_FFFF, exp land 7, max 0 (min 255 ttl))
                  :: m.stk;
                m.msz <- m.msz + 4
              end
            | `Pop ->
              let got = Packet.pop_label p in
              (match m.stk with
               | [] -> assert (got = None)
               | (l, e, t) :: rest ->
                 (match got with
                  | Some s ->
                    assert
                      (s.Packet.label = l && s.Packet.exp = e
                       && s.Packet.ttl = t)
                  | None -> assert false);
                 m.stk <- rest;
                 m.msz <- m.msz - 4)
            | `Swap label ->
              (match m.stk with
               | [] -> ()  (* raising path covered by swap-on-empty test *)
               | (_, e, t) :: rest ->
                 Packet.swap_label p ~label;
                 m.stk <- (label land 0xF_FFFF, e, max 0 (t - 1)) :: rest)
            | `Set_exp_all exp ->
              Packet.set_exp_all p ~exp;
              m.stk <-
                List.map (fun (l, _, t) -> (l, exp land 7, t)) m.stk);
           model_agrees p m)
        ops)

(* --- Radix ------------------------------------------------------------ *)

let route_testable = Alcotest.(option (pair string int))

let lookup_str t a =
  Option.map (fun (p, v) -> (Prefix.to_string p, v)) (Radix.lookup t a)

let test_radix_basic () =
  let t = Radix.create () in
  Alcotest.(check bool) "empty" true (Radix.is_empty t);
  Radix.add t (pfx "10.0.0.0/8") 1;
  Radix.add t (pfx "10.1.0.0/16") 2;
  Radix.add t (pfx "10.1.2.0/24") 3;
  Radix.add t (pfx "192.168.0.0/16") 4;
  Alcotest.(check int) "cardinal" 4 (Radix.cardinal t);
  Alcotest.check route_testable "lpm /24" (Some ("10.1.2.0/24", 3))
    (lookup_str t (ip "10.1.2.99"));
  Alcotest.check route_testable "lpm /16" (Some ("10.1.0.0/16", 2))
    (lookup_str t (ip "10.1.3.1"));
  Alcotest.check route_testable "lpm /8" (Some ("10.0.0.0/8", 1))
    (lookup_str t (ip "10.9.9.9"));
  Alcotest.check route_testable "other branch" (Some ("192.168.0.0/16", 4))
    (lookup_str t (ip "192.168.44.1"));
  Alcotest.check route_testable "miss" None (lookup_str t (ip "8.8.8.8"))

let test_radix_default_route () =
  let t = Radix.create () in
  Radix.add t Prefix.default 0;
  Radix.add t (pfx "10.0.0.0/8") 1;
  Alcotest.check route_testable "default catches" (Some ("0.0.0.0/0", 0))
    (lookup_str t (ip "8.8.8.8"));
  Alcotest.check route_testable "specific wins" (Some ("10.0.0.0/8", 1))
    (lookup_str t (ip "10.0.0.1"))

let test_radix_replace () =
  let t = Radix.create () in
  Radix.add t (pfx "10.0.0.0/8") 1;
  Radix.add t (pfx "10.0.0.0/8") 9;
  Alcotest.(check int) "no duplicate" 1 (Radix.cardinal t);
  Alcotest.(check (option int)) "replaced" (Some 9)
    (Radix.find t (pfx "10.0.0.0/8"))

let test_radix_remove () =
  let t = Radix.create () in
  Radix.add t (pfx "10.0.0.0/8") 1;
  Radix.add t (pfx "10.1.0.0/16") 2;
  Radix.add t (pfx "10.1.2.0/24") 3;
  Alcotest.(check bool) "removed" true (Radix.remove t (pfx "10.1.0.0/16"));
  Alcotest.(check bool) "absent now" false (Radix.remove t (pfx "10.1.0.0/16"));
  Alcotest.(check int) "cardinal" 2 (Radix.cardinal t);
  Alcotest.check route_testable "falls back to /8"
    (Some ("10.0.0.0/8", 1))
    (lookup_str t (ip "10.1.3.1"));
  Alcotest.check route_testable "/24 intact" (Some ("10.1.2.0/24", 3))
    (lookup_str t (ip "10.1.2.1"));
  Alcotest.(check bool) "remove root-subsumed miss" false
    (Radix.remove t (pfx "11.0.0.0/8"))

let test_radix_remove_all () =
  let t = Radix.create () in
  let prefixes =
    [pfx "10.0.0.0/8"; pfx "10.128.0.0/9"; pfx "10.64.0.0/10";
     pfx "0.0.0.0/0"; pfx "1.2.3.4/32"]
  in
  List.iteri (fun i p -> Radix.add t p i) prefixes;
  List.iter (fun p -> ignore (Radix.remove t p)) prefixes;
  Alcotest.(check bool) "empty again" true (Radix.is_empty t);
  Alcotest.check route_testable "no matches" None (lookup_str t (ip "10.0.0.1"))

let test_radix_order () =
  let t = Radix.create () in
  Radix.add t (pfx "10.1.0.0/16") 2;
  Radix.add t (pfx "10.0.0.0/8") 1;
  Radix.add t (pfx "9.0.0.0/8") 0;
  Radix.add t (pfx "10.1.0.0/24") 3;
  Alcotest.(check (list string)) "sorted"
    ["9.0.0.0/8"; "10.0.0.0/8"; "10.1.0.0/16"; "10.1.0.0/24"]
    (List.map (fun (p, _) -> Prefix.to_string p) (Radix.to_list t))

(* Model-based property: radix LPM agrees with a linear scan over the
   same bindings. *)
let radix_vs_linear =
  let gen =
    QCheck.make
      QCheck.Gen.(
        pair
          (list_size (int_bound 60)
             (pair (int_bound 0xFFFF) (int_range 4 32)))
          (small_list (int_bound 0xFFFF)))
  in
  QCheck.Test.make ~name:"radix lpm = linear scan" ~count:200 gen
    (fun (bindings, probes) ->
       let t = Radix.create () in
       let model = Hashtbl.create 16 in
       List.iteri
         (fun i (seed, len) ->
            let p = Prefix.make (Ipv4.of_int32_exn (seed * 65536)) len in
            Radix.add t p i;
            Hashtbl.replace model p i)
         bindings;
       List.for_all
         (fun seed ->
            let a = Ipv4.of_int32_exn (seed * 65536 + seed) in
            let expected =
              Hashtbl.fold
                (fun p v best ->
                   if Prefix.mem a p then
                     match best with
                     | Some (bp, _) when Prefix.length bp >= Prefix.length p ->
                       best
                     | Some _ | None -> Some (p, v)
                   else best)
                model None
            in
            match Radix.lookup t a, expected with
            | None, None -> true
            | Some (p, _), Some (q, _) ->
              (* Values can differ when two prefixes tie; length cannot. *)
              Prefix.length p = Prefix.length q
            | Some _, None | None, Some _ -> false)
         probes)

let radix_add_remove_roundtrip =
  let gen =
    QCheck.make
      QCheck.Gen.(
        list_size (int_bound 80) (pair (int_bound 0xFFFF) (int_range 1 32)))
  in
  QCheck.Test.make ~name:"add then remove leaves trie empty" ~count:200 gen
    (fun bindings ->
       let t = Radix.create () in
       let prefixes =
         List.map
           (fun (seed, len) ->
              Prefix.make (Ipv4.of_int32_exn (seed * 65536)) len)
           bindings
       in
       List.iteri (fun i p -> Radix.add t p i) prefixes;
       let distinct = List.sort_uniq Prefix.compare prefixes in
       Radix.cardinal t = List.length distinct
       && (List.iter (fun p -> ignore (Radix.remove t p)) distinct;
           Radix.is_empty t))

(* Churn property driven by the simulator's deterministic RNG:
   interleave adds and removes against a naive assoc-list model, then
   compare LPM answers. Removal is biased toward present prefixes so
   glue-node splicing and re-rooting actually run, and addresses
   cluster inside a few /8s so prefixes nest deeply. *)
let test_radix_churn_matches_model () =
  let rng = Mvpn_sim.Rng.create 0xce11 in
  let random_addr () =
    Ipv4.of_octets
      (10 + Mvpn_sim.Rng.int rng 3)
      (Mvpn_sim.Rng.int rng 4)
      (Mvpn_sim.Rng.int rng 4)
      (Mvpn_sim.Rng.int rng 256)
  in
  let random_prefix () =
    Prefix.make (random_addr ()) (Mvpn_sim.Rng.int rng 33)
  in
  let naive model a =
    List.fold_left
      (fun best (p, v) ->
         if Prefix.mem a p then
           match best with
           | Some (bp, _) when Prefix.length bp >= Prefix.length p -> best
           | Some _ | None -> Some (p, v)
         else best)
      None model
  in
  for trial = 0 to 299 do
    let t = Radix.create () in
    let model = ref [] in
    let drop p = List.filter (fun (q, _) -> not (Prefix.equal q p)) in
    let ops = 20 + Mvpn_sim.Rng.int rng 60 in
    for i = 0 to ops - 1 do
      if !model <> [] && Mvpn_sim.Rng.bool rng 0.35 then begin
        let victim =
          if Mvpn_sim.Rng.bool rng 0.8 then
            fst
              (List.nth !model
                 (Mvpn_sim.Rng.int rng (List.length !model)))
          else random_prefix ()
        in
        let present =
          List.exists (fun (q, _) -> Prefix.equal q victim) !model
        in
        if Radix.remove t victim <> present then
          Alcotest.failf "trial %d: remove %s returned %b" trial
            (Prefix.to_string victim) (not present);
        model := drop victim !model
      end
      else begin
        let p = random_prefix () in
        Radix.add t p i;
        model := (p, i) :: drop p !model
      end
    done;
    if Radix.cardinal t <> List.length !model then
      Alcotest.failf "trial %d: cardinal %d, model has %d" trial
        (Radix.cardinal t) (List.length !model);
    let check_addr a =
      match Radix.lookup t a, naive !model a with
      | None, None -> ()
      | Some (p, v), Some (q, w) ->
        if not (Prefix.equal p q && v = w) then
          Alcotest.failf "trial %d: %s -> %s=%d, model says %s=%d" trial
            (Ipv4.to_string a) (Prefix.to_string p) v (Prefix.to_string q)
            w
      | Some (p, v), None ->
        Alcotest.failf "trial %d: %s -> %s=%d, model says none" trial
          (Ipv4.to_string a) (Prefix.to_string p) v
      | None, Some (q, w) ->
        Alcotest.failf "trial %d: %s -> none, model says %s=%d" trial
          (Ipv4.to_string a) (Prefix.to_string q) w
    in
    for _ = 1 to 25 do
      check_addr (random_addr ())
    done;
    List.iter (fun (p, _) -> check_addr (Prefix.network p)) !model
  done

let test_radix_default_only () =
  let t = Radix.create () in
  Radix.add t Prefix.default "everything";
  Alcotest.(check (option string)) "any address matches" (Some "everything")
    (Radix.lookup_value t (ip "203.0.113.9"));
  Alcotest.(check bool) "remove default" true (Radix.remove t Prefix.default);
  Alcotest.(check bool) "now empty" true (Radix.is_empty t)

let test_radix_of_list_roundtrip () =
  let bindings =
    [ (pfx "10.0.0.0/8", 1); (pfx "10.1.0.0/16", 2); (pfx "0.0.0.0/0", 0) ]
  in
  let t = Radix.of_list bindings in
  Alcotest.(check int) "cardinal" 3 (Radix.cardinal t);
  Alcotest.(check (list string)) "ordered"
    ["0.0.0.0/0"; "10.0.0.0/8"; "10.1.0.0/16"]
    (List.map (fun (p, _) -> Prefix.to_string p) (Radix.to_list t));
  Radix.clear t;
  Alcotest.(check int) "cleared" 0 (Radix.cardinal t)

let test_dscp_of_exp_bounds () =
  Alcotest.check_raises "exp 8" (Invalid_argument "Dscp.of_exp: 8 out of range")
    (fun () -> ignore (Dscp.of_exp 8));
  Alcotest.check_raises "exp -1"
    (Invalid_argument "Dscp.of_exp: -1 out of range") (fun () ->
      ignore (Dscp.of_exp (-1)))

let test_dscp_pp_names () =
  let show d = Format.asprintf "%a" Dscp.pp d in
  Alcotest.(check string) "EF" "EF" (show Dscp.ef);
  Alcotest.(check string) "AF22" "AF22" (show (Dscp.af 2 2));
  Alcotest.(check string) "CS5" "CS5" (show (Dscp.cs 5));
  Alcotest.(check string) "BE" "BE" (show Dscp.best_effort)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_packet_pp_renders () =
  let p =
    Packet.make ~dscp:Dscp.ef ~now:0.0
      (Flow.make (ip "10.0.0.1") (ip "10.1.0.1"))
  in
  Packet.push_label p ~label:42 ~exp:5 ~ttl:64;
  let s = Format.asprintf "%a" Packet.pp p in
  Alcotest.(check bool) "mentions the label" true
    (contains ~needle:"42(exp=5)" s);
  Alcotest.(check bool) "mentions EF" true (contains ~needle:"EF" s)

let test_flow_proto_names () =
  Alcotest.(check (list string)) "all protos"
    ["tcp"; "udp"; "icmp"; "esp"; "gre"]
    (List.map Flow.proto_to_string
       [Flow.Tcp; Flow.Udp; Flow.Icmp; Flow.Esp; Flow.Gre])

(* --- Fib -------------------------------------------------------------- *)

let test_fib_basic () =
  let fib = Fib.create () in
  Fib.add fib (pfx "10.1.0.0/16")
    { Fib.next_hop = 3; cost = 10; source = Fib.Igp };
  Fib.add fib (pfx "10.0.0.0/8")
    { Fib.next_hop = 2; cost = 20; source = Fib.Bgp };
  Alcotest.(check (option int)) "lpm" (Some 3)
    (Fib.next_hop fib (ip "10.1.2.3"));
  Alcotest.(check (option int)) "fallback" (Some 2)
    (Fib.next_hop fib (ip "10.9.9.9"));
  Alcotest.(check (option int)) "miss" None
    (Fib.next_hop fib (ip "192.0.2.1"))

let test_fib_clear_source () =
  let fib = Fib.create () in
  Fib.add fib (pfx "10.0.0.0/8")
    { Fib.next_hop = 1; cost = 1; source = Fib.Igp };
  Fib.add fib (pfx "10.1.0.0/16")
    { Fib.next_hop = 2; cost = 1; source = Fib.Igp };
  Fib.add fib (pfx "172.16.0.0/12")
    { Fib.next_hop = 3; cost = 1; source = Fib.Static };
  Alcotest.(check int) "cleared" 2 (Fib.clear_source fib Fib.Igp);
  Alcotest.(check int) "static survives" 1 (Fib.size fib);
  Alcotest.(check (option int)) "static route" (Some 3)
    (Fib.next_hop fib (ip "172.16.1.1"))

(* Generation counters: every mutation that can change a lookup answer
   must bump; no-op mutations must not (route caches key on this). *)
let test_radix_generation () =
  let t = Radix.create () in
  let g0 = Radix.generation t in
  Radix.add t (pfx "10.0.0.0/8") 1;
  let g1 = Radix.generation t in
  Alcotest.(check bool) "add bumps" true (g1 > g0);
  Radix.add t (pfx "10.0.0.0/8") 2;
  let g2 = Radix.generation t in
  Alcotest.(check bool) "replace bumps" true (g2 > g1);
  Alcotest.(check bool) "remove miss" false (Radix.remove t (pfx "10.1.0.0/16"));
  Alcotest.(check int) "no-op remove does not bump" g2 (Radix.generation t);
  Alcotest.(check bool) "remove hit" true (Radix.remove t (pfx "10.0.0.0/8"));
  Alcotest.(check bool) "remove bumps" true (Radix.generation t > g2)

let test_fib_generation () =
  let fib = Fib.create () in
  let g0 = Fib.generation fib in
  Fib.add fib (pfx "10.0.0.0/8")
    { Fib.next_hop = 1; cost = 1; source = Fib.Igp };
  Fib.add fib (pfx "172.16.0.0/12")
    { Fib.next_hop = 2; cost = 1; source = Fib.Static };
  let g1 = Fib.generation fib in
  Alcotest.(check bool) "adds bump" true (g1 > g0);
  Alcotest.(check int) "reconvergence clear" 1 (Fib.clear_source fib Fib.Igp);
  Alcotest.(check bool) "clear_source bumps" true (Fib.generation fib > g1)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "net"
    [ ("ipv4",
       [ Alcotest.test_case "octets" `Quick test_ipv4_octets;
         Alcotest.test_case "parse valid" `Quick test_ipv4_parse_valid;
         Alcotest.test_case "parse invalid" `Quick test_ipv4_parse_invalid;
         Alcotest.test_case "bounds" `Quick test_ipv4_bounds;
         Alcotest.test_case "arithmetic" `Quick test_ipv4_arith;
         qt ipv4_roundtrip ]);
      ("prefix",
       [ Alcotest.test_case "canonical" `Quick test_prefix_canonical;
         Alcotest.test_case "parse" `Quick test_prefix_parse;
         Alcotest.test_case "mem" `Quick test_prefix_mem;
         Alcotest.test_case "subsumes" `Quick test_prefix_subsumes;
         Alcotest.test_case "split" `Quick test_prefix_split;
         Alcotest.test_case "subnets" `Quick test_prefix_subnets;
         Alcotest.test_case "hosts" `Quick test_prefix_hosts;
         qt prefix_split_partition;
         qt prefix_mem_bounds ]);
      ("dscp",
       [ Alcotest.test_case "codepoints" `Quick test_dscp_codepoints;
         Alcotest.test_case "phb roundtrip" `Quick test_dscp_phb_roundtrip;
         Alcotest.test_case "exp mapping" `Quick test_dscp_exp_mapping;
         Alcotest.test_case "drop precedence" `Quick
           test_dscp_drop_precedence;
         Alcotest.test_case "of_exp bounds" `Quick test_dscp_of_exp_bounds;
         Alcotest.test_case "pp names" `Quick test_dscp_pp_names;
         Alcotest.test_case "invalid" `Quick test_dscp_invalid ]);
      ("flow",
       [ Alcotest.test_case "reverse" `Quick test_flow_reverse;
         Alcotest.test_case "compare" `Quick test_flow_compare;
         Alcotest.test_case "proto names" `Quick test_flow_proto_names ]);
      ("packet",
       [ Alcotest.test_case "label stack" `Quick test_packet_labels;
         Alcotest.test_case "swap on empty" `Quick test_packet_swap_empty;
         Alcotest.test_case "encap tos copy" `Quick
           test_packet_encap_tos_copy;
         Alcotest.test_case "encap no tos copy" `Quick
           test_packet_encap_no_tos_copy;
         Alcotest.test_case "double encap" `Quick test_packet_double_encap;
         Alcotest.test_case "pp renders" `Quick test_packet_pp_renders;
         Alcotest.test_case "uids unique" `Quick test_packet_uids_unique;
         Alcotest.test_case "swap in place" `Quick test_packet_swap_in_place;
         Alcotest.test_case "pool recycle" `Quick test_packet_pool_recycle;
         Alcotest.test_case "pool off no-op" `Quick
           test_packet_pool_off_noop;
         qt packet_matches_model ]);
      ("radix",
       [ Alcotest.test_case "basic lpm" `Quick test_radix_basic;
         Alcotest.test_case "default route" `Quick test_radix_default_route;
         Alcotest.test_case "replace" `Quick test_radix_replace;
         Alcotest.test_case "remove" `Quick test_radix_remove;
         Alcotest.test_case "remove all" `Quick test_radix_remove_all;
         Alcotest.test_case "iteration order" `Quick test_radix_order;
         Alcotest.test_case "default only" `Quick test_radix_default_only;
         Alcotest.test_case "of_list roundtrip" `Quick
           test_radix_of_list_roundtrip;
         Alcotest.test_case "churn matches model" `Quick
           test_radix_churn_matches_model;
         qt radix_vs_linear;
         qt radix_add_remove_roundtrip;
         Alcotest.test_case "generation" `Quick test_radix_generation ]);
      ("fib",
       [ Alcotest.test_case "basic" `Quick test_fib_basic;
         Alcotest.test_case "clear source" `Quick test_fib_clear_source;
         Alcotest.test_case "generation" `Quick test_fib_generation ]) ]
