(** MPLS labels and per-LSR label allocation.

    Labels are 20-bit values. Values 0–15 are reserved; the two that
    matter to this model are explicit null (0) and implicit null (3,
    which signals penultimate-hop popping: the upstream neighbor pops
    the label instead of swapping, so the egress router never sees it). *)

val max_label : int
(** 2^20 - 1. *)

val explicit_null : int
(** Label 0: keep a label header to the egress but with no lookup. *)

val implicit_null : int
(** Label 3: "pop at the penultimate hop" — never appears on the wire. *)

val first_unreserved : int
(** 16 — the first allocatable label. *)

val is_reserved : int -> bool

val valid : int -> bool
(** In [0, 2^20). *)

(** Per-LSR label space. *)
module Allocator : sig
  type t

  val create : unit -> t

  val alloc : t -> int
  (** A fresh, never-before-returned label ≥ {!first_unreserved}.
      @raise Failure if the 20-bit space is exhausted. *)

  val allocated : t -> int
  (** Number of labels handed out — the per-LSR state metric of E1. *)
end
