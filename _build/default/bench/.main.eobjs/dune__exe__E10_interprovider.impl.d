bench/e10_interprovider.ml: Interprovider List Mvpn_core Mvpn_net Mvpn_qos Mvpn_sim Network Qos_mapping Site Tables Traffic
