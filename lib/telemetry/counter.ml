(* The handle is shared across domains; the count lives in domain-local
   storage, so concurrent domains bump private cells and never lose
   increments to a read-modify-write race. Each domain therefore holds a
   partial count: [value] reads the calling domain's partial, and a
   harness combines partials with [Registry.snapshot] (taken inside the
   domain) + [Registry.absorb] (counters add). *)
type t = { name : string; cell : int ref Domain.DLS.key }

let make name = { name; cell = Domain.DLS.new_key (fun () -> ref 0) }

let name t = t.name

let cell t = Domain.DLS.get t.cell

let incr t =
  if !Control.enabled then begin
    let c = cell t in
    c := !c + 1
  end

let add t n =
  if !Control.enabled then begin
    let c = cell t in
    c := !c + n
  end

let set t n = if !Control.enabled then cell t := n

let value t = !(cell t)

let reset t = cell t := 0

let pp ppf t = Format.fprintf ppf "%s = %d" t.name (value t)
