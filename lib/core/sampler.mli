(** Streaming timeline sampler: a self-rescheduling engine event that
    records bounded {!Mvpn_telemetry.Timeseries} points every
    [interval] sim-seconds — per-core-link utilization
    ([ts.link.<id>.util]), per-band queue depth and drop deltas
    ([ts.band.<b>.depth_pkts] / [.drops]), per-(vpn, band) good/bad
    delivery deltas for SLO burn derivation ([ts.slo.v<v>.b<b>.good] /
    [.bad]) and, host-scope, this domain's GC minor words
    ([ts.gc.minor_words]).

    Deltas are read from the always-on plain port/qdisc counters, not
    the batch-coalesced telemetry counters, so a mid-window sample is
    exact. In a partitioned run every shard starts its own sampler on
    its replica: non-owner replicas contribute exact zeros at every
    sample, so the absorbed merge equals the sequential series
    byte-for-byte (sim-scope series only — the GC series is host-scope
    and excluded from determinism-gated exports). *)

type t

val default_interval : float
(** 1 s of simulated time. *)

val start : ?interval:float -> ?until:float -> Scenario.t -> t
(** Register the series (idempotent) and schedule the first tick at
    [interval]; each tick re-schedules the next until [until] (default
    unbounded) or {!stop}. Arm before the run starts.
    @raise Invalid_argument on a non-finite or non-positive interval
    (a silent runaway self-reschedule otherwise) or a negative/NaN
    [until]. *)

val observe_fate :
  t ->
  time:float -> vpn:int -> band:int -> dropped:bool -> latency:float ->
  unit
(** Feed one packet fate (the stream the runner's fate hook already
    produces). A fate is bad when dropped or later than the stock
    per-band objective's latency bound — the same classification
    {!Mvpn_telemetry.Slo.observe_delivery} applies — so the sampled
    good/bad deltas sum to the replayed SLO totals. *)

val stop : t -> unit
(** Stop after the current tick; pending tick events become no-ops. *)

val interval : t -> float

val slo_target : band:int -> float
(** The stock objective's good-fraction target for [band] — what a
    timeline exporter needs to derive burn rate from merged good/bad
    sums. *)
