lib/core/mpls_vpn.ml: Array Backbone Hashtbl Int List Membership Mvpn_mpls Mvpn_net Mvpn_routing Mvpn_sim Network Site Vrf
