type t = { name : string; mutable value : float }

let make name = { name; value = 0.0 }

let name t = t.name

let set t v = if !Control.enabled then t.value <- v

let value t = t.value

let reset t = t.value <- 0.0

let pp ppf t = Format.fprintf ppf "%s = %.6g" t.name t.value
