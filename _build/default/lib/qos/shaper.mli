(** Token-bucket traffic shaping.

    The CPE's alternative to being policed: instead of letting excess
    traffic reach the provider's meter (where it is remarked or
    dropped), a shaper delays it in a local queue until the contracted
    rate allows it out. Shaping trades delay for loss — ablation A6
    measures the trade against the {!Cbq} policer. *)

type t

val create :
  Mvpn_sim.Engine.t ->
  rate_bps:float -> burst_bytes:float -> queue_bytes:int ->
  release:(Mvpn_net.Packet.t -> unit) -> t
(** Packets leave through [release] no faster than [rate_bps] (with the
    given burst); at most [queue_bytes] may wait. *)

val offer : t -> Mvpn_net.Packet.t -> bool
(** Submit a packet: released immediately if tokens allow, queued if
    the buffer has room, else refused ([false]). *)

val backlog_bytes : t -> int

val shaped : t -> int
(** Packets that had to wait (vs passing straight through). *)

val dropped : t -> int
(** Packets refused because the shaping buffer was full. *)
