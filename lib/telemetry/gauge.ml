(* Shared handle, per-domain value cell — see counter.ml for the
   storage discipline. *)
type t = { name : string; cell : float ref Domain.DLS.key }

let make name = { name; cell = Domain.DLS.new_key (fun () -> ref 0.0) }

let name t = t.name

let cell t = Domain.DLS.get t.cell

let set t v = if !Control.enabled then cell t := v

let value t = !(cell t)

let reset t = cell t := 0.0

let pp ppf t = Format.fprintf ppf "%s = %.6g" t.name (value t)
