module Topology = Mvpn_sim.Topology
module Spf = Mvpn_routing.Spf

type constraints = {
  bandwidth : float;
  avoid_nodes : int list;
  avoid_links : (int * int) list;
  max_hops : int option;
}

let no_constraints =
  { bandwidth = 0.0; avoid_nodes = []; avoid_links = []; max_hops = None }

let with_bandwidth bandwidth = { no_constraints with bandwidth }

let usable ~src ~dst c (l : Topology.link) =
  l.Topology.up
  && Topology.available l >= c.bandwidth
  && (not (List.mem (l.Topology.src, l.Topology.dst) c.avoid_links))
  && (let transit v = v <> src && v <> dst in
      not
        (List.exists
           (fun v ->
              (v = l.Topology.src || v = l.Topology.dst) && transit v)
           c.avoid_nodes))

let path topo ~src ~dst c =
  match Spf.shortest_path ~usable:(usable ~src ~dst c) topo ~src ~dst with
  | None -> None
  | Some p ->
    (match c.max_hops with
     | Some h when List.length p - 1 > h -> None
     | Some _ | None -> Some p)

let igp_path topo ~src ~dst = Spf.shortest_path topo ~src ~dst
