(** Simulated packets, flat representation.

    A packet carries an (inner) IP header, optionally an outer IP header
    added by tunnel encapsulation (IPSec tunnel mode or GRE, §2.3), and
    optionally an MPLS shim stack pushed by the ingress LSR (§3). Header
    fields are mutable because routers rewrite them in place as the packet
    traverses the simulated backbone — exactly the per-hop mutations the
    architecture relies on (TTL decrement, DSCP remark, label swap).

    The representation is allocation-free on the forwarding path:

    - The label stack is a fixed-depth array of {e packed} shim entries —
      label (20 bits), EXP (3 bits) and TTL (8 bits) folded into one
      immediate [int] (see {!Shim}) — so push/pop/swap are plain integer
      stores. The legacy {!shim} record survives as a {e decoded view}:
      accessors returning it allocate a fresh snapshot, and mutating that
      snapshot does {b not} write back into the packet.
    - The outer header is pre-allocated in every packet and armed by a
      [has_outer] flag, so {!encapsulate}/{!decapsulate}/{!visible_header}
      never allocate.
    - Packets can be recycled through a per-domain pool (see
      {!set_pooling}): {!make} then reinitialises a retired packet
      in place — always minting a {e fresh} uid, so uid-keyed machinery
      (chaos fault verdicts, hop traces, replay detection) observes
      exactly the same identities as with fresh allocation.

    The packet also carries provenance (flow identity, VPN id, sequence
    number, creation time) used by the measurement plane; data forwarding
    must never consult it, and the isolation tests check that delivery is
    explained by headers and labels alone. Provenance fields are
    [mutable] only so the pool can reinitialise them — within one
    incarnation (between {!make} and {!release}) they are logically
    immutable. *)

(** One MPLS shim entry, decoded. [exp] is the 3-bit class-of-service
    field the provider edge writes from the DSCP (§5); [ttl] is the
    label TTL. This is a {e snapshot}: mutating it does not affect the
    packet it was decoded from. *)
type shim = { mutable label : int; mutable exp : int; mutable ttl : int }

(** Packed shim entries: [label (20 bits) | exp (3 bits) | ttl (8 bits)]
    in one immediate, non-negative [int]. The unboxed currency of the
    forwarding hot path ({!Mvpn_mpls.Lfib.step}, EXP classification). *)
module Shim : sig
  type packed = int

  val none : packed
  (** [-1]: the absence of a shim (empty stack). All real packed shims
      are [>= 0]. *)

  val pack : label:int -> exp:int -> ttl:int -> packed
  (** Fields are masked/clamped into range: label to 20 bits, exp to
      3 bits, ttl clamped into [0, 255]. *)

  val label : packed -> int
  val exp : packed -> int
  val ttl : packed -> int

  val with_label : packed -> int -> packed
  (** Replace the label, keeping EXP and TTL. *)

  val with_exp : packed -> int -> packed
  val with_ttl : packed -> int -> packed
  (** Replace one field, clamped/masked as in {!pack}. *)

  val to_shim : packed -> shim
  (** Allocate a decoded snapshot. *)
end

type header = {
  mutable src : Ipv4.t;
  mutable dst : Ipv4.t;
  mutable proto : Flow.proto;
  mutable src_port : int;
  mutable dst_port : int;
  mutable dscp : Dscp.t;
  mutable ttl : int;
}

type t = {
  mutable uid : int;  (** unique per incarnation, fresh from every {!make} *)
  mutable flow : Flow.t;  (** original flow identity (measurement only) *)
  mutable vpn : int option;  (** originating VPN id (measurement only) *)
  mutable seq : int;  (** per-flow sequence number (loss/reorder) *)
  mutable created_at : float;  (** simulation time of creation *)
  mutable size : int;  (** total on-wire bytes, including encapsulation *)
  inner : header;
  mutable encrypted : bool;
      (** when [true] the inner header is unreadable (ESP), so per-hop
          classification can only use the outer header — the paper's
          "erasing any hope one may have to control QoS" problem *)
  outer : header;
      (** pre-allocated; meaningful only when [has_outer]. Use
          {!outer_header} / {!has_outer} rather than reading directly. *)
  mutable has_outer : bool;
  stack : int array;
      (** packed label stack, bottom at index 0, top at [depth - 1].
          Use the label accessors rather than indexing directly. *)
  mutable depth : int;  (** live entries in [stack] *)
  mutable encap_bytes : int;  (** wire overhead of the current tunnel *)
  mutable in_pool : bool;  (** [true] between {!release} and {!make} *)
  mutable fated : bool;
      (** [true] once the packet has met a terminal fate (delivery or
          drop) this incarnation. Owned by {!Mvpn_core.Network}'s
          conservation accounting — services must not touch it. Reset by
          {!make} and left [false] on {!copy} results. *)
}

val default_ttl : int
(** Initial IP TTL (64). *)

val max_depth : int
(** Capacity of the label stack (8 — the deployments here stack at most
    transport over VPN over one FRR bypass). *)

val null : t
(** A distinguished inert packet for use as a physical-equality sentinel
    in pooled data structures (its uid is 0, which {!make} never
    assigns). Never inject it into a network and never {!release} it. *)

val make :
  ?vpn:int -> ?seq:int -> ?dscp:Dscp.t -> ?size:int -> now:float ->
  Flow.t -> t
(** [make ~now flow] builds a fresh unencapsulated packet for [flow].
    [size] defaults to 512 bytes, [dscp] to best effort. Assigns a fresh
    [uid] from a global counter. When pooling is on and a retired packet
    is available, reinitialises it in place instead of allocating. *)

val header_of_flow : ?dscp:Dscp.t -> Flow.t -> header
(** A fresh header populated from a flow's 5-tuple. *)

val copy : t -> t
(** A replication copy: fresh uid, deep-copied headers and label stack,
    same provenance (flow, vpn, seq, creation time). The ingress-
    replication primitive for group delivery. Pool-aware like {!make}. *)

(** {2 Pooling}

    A per-domain free list of retired packets. Disabled by default:
    {!release} is then a no-op and every {!make} allocates, so tests and
    tools that retain delivered packets are unaffected. The scenario
    runners switch it on for long soaks. The flag is read at {!make} and
    {!release} time; set it before the run (and before spawning domains —
    each domain recycles through its own pool). *)

val set_pooling : bool -> unit
val pooling : unit -> bool

val release : t -> unit
(** Retire [p] into the current domain's pool. Safe to call on an
    already-released packet (idempotent per incarnation) and a no-op
    when pooling is off. The caller must not touch [p] afterwards —
    the next {!make} may reincarnate it with a fresh uid. *)

val pool_size : unit -> int
(** Retired packets available in the calling domain's pool (tests). *)

val allocated : unit -> int
(** Fresh packet-record allocations so far, process-wide (pool reuse is
    not counted). With pooling on, [allocated () - live - pool_size ()]
    is a leak witness the invariant auditor holds constant. *)

(** {2 Headers} *)

val visible_header : t -> header
(** The header a router may inspect: the outer header when the packet is
    encapsulated, the inner header otherwise. Never allocates. *)

val visible_dscp : t -> Dscp.t
(** DSCP of {!visible_header} — what a DiffServ classifier sees. When the
    packet is labelled, forwarding hops should use {!top_exp} instead. *)

val classifiable_flow : t -> Flow.t option
(** The 5-tuple a multifield classifier can extract: [None] when the
    packet is encrypted and only the (address-only) outer header shows. *)

val has_outer : t -> bool
(** [true] when the packet is encapsulated in an outer header. *)

val outer_header : t -> header
(** The outer header.
    @raise Invalid_argument when the packet has no outer header. *)

(** {2 Label stack}

    The packed accessors ([labelled], [top_packed], [pop_packed],
    [set_top]) are the hot-path interface: no allocation, shims as
    immediate ints. The [shim option] accessors are decoded views kept
    for call sites where a boxed snapshot is fine. *)

val labelled : t -> bool
(** [true] when the label stack is non-empty. Allocation-free
    replacement for [top_label p <> None]. *)

val label_depth : t -> int

val top_packed : t -> Shim.packed
(** Top of the stack as a packed shim, or {!Shim.none} when empty. *)

val top_label : t -> shim option
(** Top of the label stack, decoded, if any. The returned record is a
    snapshot — mutating it does not rewrite the packet. *)

val top_exp : t -> int option
(** EXP bits of the top label, if the packet is labelled. *)

val push_label : t -> label:int -> exp:int -> ttl:int -> unit
(** Push a shim entry (4 bytes of wire size). Fields are masked/clamped
    as by {!Shim.pack}.
    @raise Invalid_argument when the stack is full ({!max_depth}). *)

val pop_label : t -> shim option
(** Pop the top shim entry (reclaims 4 bytes); [None] on empty stack.
    The returned record is a decoded snapshot. *)

val pop_packed : t -> Shim.packed
(** Pop the top shim entry as a packed shim (reclaims 4 bytes);
    {!Shim.none} on empty stack. Never allocates. *)

val set_top : t -> Shim.packed -> unit
(** Overwrite the top entry in place (label rewrite, TTL propagation).
    @raise Invalid_argument on an unlabelled packet. *)

val swap_label : t -> label:int -> unit
(** Rewrite the top label {e in place}, decrementing its TTL (clamped at
    0): one integer store, no allocation, no new stack cells.
    @raise Invalid_argument on an unlabelled packet. *)

val set_exp_all : t -> exp:int -> unit
(** Write [exp] into every entry of the label stack (the PE marks the
    whole stack so EXP survives pops, §5). *)

val label_stack : t -> shim list
(** The whole stack, decoded, top first. Snapshot semantics. *)

val label_values : t -> int list
(** Just the label fields, top first (tracing). *)

(** {2 Encapsulation} *)

val encapsulate :
  t -> src:Ipv4.t -> dst:Ipv4.t -> proto:Flow.proto -> overhead:int ->
  copy_tos:bool -> unit
(** [encapsulate p ~src ~dst ~proto ~overhead ~copy_tos] wraps [p] in an
    outer header between tunnel endpoints, growing the wire size by
    [overhead]. When [copy_tos] the inner DSCP is copied to the outer
    header; otherwise the outer header carries best effort and the
    service class is invisible (claim C4). Writes the pre-allocated
    outer header in place — no allocation.
    @raise Invalid_argument if the packet is already encapsulated. *)

val decapsulate : t -> unit
(** Remove the outer header and its size overhead, restoring the inner
    header as visible.
    @raise Invalid_argument if the packet has no outer header. *)

val pp : Format.formatter -> t -> unit

val reset_uid_counter : unit -> unit
(** Reset the global uid counter (test isolation only). *)
