examples/trace_path.ml: Backbone List Mpls_vpn Mvpn_core Mvpn_net Mvpn_sim Network Printf Site String
