lib/core/l2vpn.mli: Backbone Mvpn_net Network
