let trailer_bytes = 8

let cells_for ~payload =
  if payload <= 0 then invalid_arg "Aal5.cells_for: payload must be positive";
  (payload + trailer_bytes + Cell.payload_bytes - 1) / Cell.payload_bytes

let wire_bytes ~payload = cells_for ~payload * Cell.cell_bytes

let overhead_fraction ~payload =
  1.0 -. (float_of_int payload /. float_of_int (wire_bytes ~payload))

let segment ~vpi ~vci ~frame_id ~payload =
  let n = cells_for ~payload in
  List.init n (fun index ->
      Cell.make ~vpi ~vci ~frame_id ~index ~last_of_frame:(index = n - 1) ())

module Reassembler = struct
  type t = {
    mutable current_frame : int;  (* -1 = idle *)
    mutable expected_index : int;
    mutable damaged : bool;
    mutable ok : int;
    mutable corrupt : int;
  }

  let create () =
    { current_frame = -1; expected_index = 0; damaged = false; ok = 0;
      corrupt = 0 }

  type event =
    | Incomplete
    | Frame of { frame_id : int; cells : int }
    | Corrupt of { frame_id : int }

  let finish t frame_id cells_seen =
    let result =
      if t.damaged then begin
        t.corrupt <- t.corrupt + 1;
        Corrupt { frame_id }
      end
      else begin
        t.ok <- t.ok + 1;
        Frame { frame_id; cells = cells_seen }
      end
    in
    t.current_frame <- -1;
    t.expected_index <- 0;
    t.damaged <- false;
    result

  let push t (c : Cell.t) =
    (* A new frame id while one is open means the previous frame's tail
       was lost entirely: count it corrupt and restart. *)
    if t.current_frame >= 0 && c.Cell.frame_id <> t.current_frame then begin
      t.corrupt <- t.corrupt + 1;
      t.current_frame <- -1;
      t.expected_index <- 0;
      t.damaged <- false
    end;
    if t.current_frame < 0 then begin
      t.current_frame <- c.Cell.frame_id;
      (* Joining mid-frame (first cells lost) damages the frame. *)
      t.damaged <- c.Cell.index <> 0;
      t.expected_index <- c.Cell.index + 1
    end
    else begin
      if c.Cell.index <> t.expected_index then t.damaged <- true;
      t.expected_index <- c.Cell.index + 1
    end;
    if c.Cell.last_of_frame then
      finish t c.Cell.frame_id t.expected_index
    else Incomplete

  let frames_ok t = t.ok

  let frames_corrupt t = t.corrupt
end
