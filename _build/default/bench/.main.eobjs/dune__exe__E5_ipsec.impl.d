bench/e5_ipsec.ml: Backbone List Mvpn_core Mvpn_ipsec Mvpn_net Mvpn_qos Mvpn_sim Network Overlay Printf Qos_mapping Site Tables Traffic
