bench/e13_restoration.ml: Array Backbone List Mpls_vpn Mvpn_core Mvpn_net Mvpn_qos Mvpn_sim Network Site Tables Traffic
