type source = Static | Connected | Igp | Bgp

type route = { next_hop : int; cost : int; source : source }

type t = route Radix.t

let create () = Radix.create ()

let local_delivery = -1

let add t p r = Radix.add t p r

let remove t p = Radix.remove t p

let lookup t a = Radix.lookup t a

let generation t = Radix.generation t

let next_hop t a = Option.map (fun (_, r) -> r.next_hop) (Radix.lookup t a)

let find t p = Radix.find t p

let size t = Radix.cardinal t

let clear_source t src =
  let victims =
    Radix.fold
      (fun p r acc -> if r.source = src then p :: acc else acc)
      t []
  in
  List.iter (fun p -> ignore (Radix.remove t p)) victims;
  List.length victims

let iter f t = Radix.iter f t

let to_list t = Radix.to_list t

let source_to_string = function
  | Static -> "static"
  | Connected -> "connected"
  | Igp -> "igp"
  | Bgp -> "bgp"

let pp ppf t =
  Radix.iter
    (fun p r ->
       Format.fprintf ppf "%a via %d cost %d (%s)@." Prefix.pp p r.next_hop
         r.cost (source_to_string r.source))
    t
