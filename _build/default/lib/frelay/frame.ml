let header_bytes = 2

let flag_and_fcs_bytes = 4

let overhead_bytes = header_bytes + flag_and_fcs_bytes

type t = {
  dlci : int;
  payload : int;
  mutable de : bool;
  mutable fecn : bool;
  mutable becn : bool;
}

let make ~dlci ~payload =
  if dlci < 16 || dlci > 1007 then
    invalid_arg (Printf.sprintf "Frame.make: dlci %d outside 16-1007" dlci);
  if payload <= 0 then invalid_arg "Frame.make: payload must be positive";
  { dlci; payload; de = false; fecn = false; becn = false }

let wire_bytes t = t.payload + overhead_bytes

let pp ppf t =
  Format.fprintf ppf "frame dlci=%d %dB%s%s%s" t.dlci t.payload
    (if t.de then " DE" else "")
    (if t.fecn then " FECN" else "")
    (if t.becn then " BECN" else "")
