lib/core/backbone.mli: Mvpn_net Mvpn_sim Site
