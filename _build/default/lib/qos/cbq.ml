module Dscp = Mvpn_net.Dscp
module Packet = Mvpn_net.Packet

type exceed_action =
  | Remark of Dscp.t
  | Demote_best_effort
  | Police_drop

type class_cfg = {
  name : string;
  rate_bps : float;
  burst_bytes : float;
  dscp : Dscp.t;
  exceed : exceed_action;
  borrow : bool;
}

type class_state = { cfg : class_cfg; bucket : Token_bucket.t }

type t = {
  classifier : int Classifier.t;
  classes : class_state array;
  parent : Token_bucket.t option;  (* the borrowable shared allocation *)
}

let create ?parent_rate_bps ~classes ~rules () =
  let states =
    Array.map
      (fun cfg ->
         { cfg;
           bucket =
             Token_bucket.create ~rate_bps:cfg.rate_bps
               ~burst_bytes:cfg.burst_bytes })
      classes
  in
  let classifier = Classifier.create rules in
  if Array.length classes = 0 && rules <> [] then
    invalid_arg "Cbq.create: rules but no classes";
  let parent =
    let rate =
      match parent_rate_bps with
      | Some r -> r
      | None ->
        Array.fold_left (fun acc c -> acc +. c.rate_bps) 0.0 classes
    in
    if rate > 0.0 && Array.exists (fun c -> c.borrow) classes then
      Some
        (Token_bucket.create ~rate_bps:rate
           ~burst_bytes:(Float.max 1500.0 (rate /. 8.0)))
    else None
  in
  { classifier; classes = states; parent }

type verdict =
  | Marked of { dscp : Dscp.t; class_name : string }
  | Dropped of { class_name : string }

let mark packet dscp =
  packet.Packet.inner.Packet.dscp <- dscp

let process t ~now packet =
  match Classifier.classify t.classifier packet with
  | None ->
    mark packet Dscp.best_effort;
    Marked { dscp = Dscp.best_effort; class_name = "default" }
  | Some idx ->
    if idx < 0 || idx >= Array.length t.classes then
      invalid_arg (Printf.sprintf "Cbq.process: rule action %d out of range" idx);
    let cls = t.classes.(idx) in
    let conform =
      Token_bucket.take cls.bucket ~now ~bytes:packet.Packet.size
    in
    (* Parent accounting: conforming traffic always draws the shared
       allocation down (that's what makes it unavailable to borrow);
       over-limit traffic of a borrowing class may take what is left. *)
    let borrowed =
      match t.parent with
      | None -> false
      | Some parent ->
        if conform then begin
          Token_bucket.drain parent ~now ~bytes:packet.Packet.size;
          false
        end
        else
          cls.cfg.borrow
          && Token_bucket.take parent ~now ~bytes:packet.Packet.size
    in
    if conform || borrowed then begin
      mark packet cls.cfg.dscp;
      Marked { dscp = cls.cfg.dscp; class_name = cls.cfg.name }
    end
    else begin
      match cls.cfg.exceed with
      | Remark d ->
        mark packet d;
        Marked { dscp = d; class_name = cls.cfg.name }
      | Demote_best_effort ->
        mark packet Dscp.best_effort;
        Marked { dscp = Dscp.best_effort; class_name = cls.cfg.name }
      | Police_drop -> Dropped { class_name = cls.cfg.name }
    end

let class_names t = Array.map (fun c -> c.cfg.name) t.classes
