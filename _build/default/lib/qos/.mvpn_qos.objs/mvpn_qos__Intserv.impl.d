lib/qos/intserv.ml: Hashtbl List Mvpn_net Mvpn_routing Mvpn_sim Option
