type proto = Tcp | Udp | Icmp | Esp | Gre

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  proto : proto;
  src_port : int;
  dst_port : int;
}

let make ?(proto = Udp) ?(src_port = 0) ?(dst_port = 0) src dst =
  { src; dst; proto; src_port; dst_port }

let proto_rank = function Tcp -> 0 | Udp -> 1 | Icmp -> 2 | Esp -> 3 | Gre -> 4

let compare a b =
  let c = Ipv4.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Ipv4.compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = Int.compare (proto_rank a.proto) (proto_rank b.proto) in
      if c <> 0 then c
      else
        let c = Int.compare a.src_port b.src_port in
        if c <> 0 then c else Int.compare a.dst_port b.dst_port

let equal a b = compare a b = 0

let hash a =
  Hashtbl.hash
    (Ipv4.to_int a.src, Ipv4.to_int a.dst, proto_rank a.proto, a.src_port,
     a.dst_port)

let proto_to_string = function
  | Tcp -> "tcp"
  | Udp -> "udp"
  | Icmp -> "icmp"
  | Esp -> "esp"
  | Gre -> "gre"

let pp ppf f =
  Format.fprintf ppf "%a:%d -> %a:%d/%s" Ipv4.pp f.src f.src_port Ipv4.pp
    f.dst f.dst_port (proto_to_string f.proto)

let reverse f =
  { f with src = f.dst; dst = f.src; src_port = f.dst_port;
    dst_port = f.src_port }
