(** DiffServ codepoints and per-hop behaviours.

    The paper's end-to-end QoS story rides on the 6-bit DSCP field of the
    IP header: the CPE marks it (via CBQ classification), the provider
    edge maps it into the 3-bit MPLS EXP field, and every hop selects a
    per-hop behaviour (PHB) from it. *)

type t = private int
(** A 6-bit DiffServ codepoint, in [0, 63]. *)

(** The standard PHB groups (RFC 2474/2597/3246). *)
type phb =
  | Default  (** best effort (DSCP 0) *)
  | Ef  (** expedited forwarding — low loss, low latency (DSCP 46) *)
  | Af of int * int
      (** assured forwarding class [1..4] with drop precedence [1..3] *)
  | Cs of int  (** class selector [0..7] (IP-precedence compatibility) *)

val of_int_exn : int -> t
(** @raise Invalid_argument if outside [0, 63]. *)

val to_int : t -> int

val of_phb : phb -> t
(** The standard codepoint for a PHB.
    @raise Invalid_argument on an out-of-range AF class/precedence or CS. *)

val to_phb : t -> phb
(** The PHB a codepoint selects. Codepoints that are not standard EF/AF/CS
    values map to [Cs (c lsr 3)] per the class-selector compatibility rule,
    and 0 maps to [Default]. *)

val best_effort : t
val ef : t
val af : int -> int -> t
(** [af cls prec] is AF[cls][prec]. @raise Invalid_argument if out of range. *)

val cs : int -> t
(** [cs n] is class selector [n]. @raise Invalid_argument if out of range. *)

val to_exp : t -> int
(** [to_exp d] is the provider-edge DSCP→EXP mapping the paper describes
    (§5): the 3-bit MPLS EXP value that preserves the service class across
    the label-switched backbone. EF → 5, AFx → x + 1 (so AF4 → 5 is
    reserved for EF; AF classes map to 2..4 with AF4 sharing 5), CS6/7 →
    6/7 (network control), best effort → 0. Concretely: EF→5, AF1→1,
    AF2→2, AF3→3, AF4→4, CSn→n, Default→0. *)

val of_exp : int -> t
(** [of_exp e] inverts {!to_exp} at the egress edge: 5→EF, 1..4→AFx1,
    0→best effort, 6..7→CS6/7.
    @raise Invalid_argument if [e] is outside [0, 7]. *)

val drop_precedence : t -> int
(** [drop_precedence d] is the WRED drop precedence of [d]: 1 (protect)
    to 3 (drop first). AF codepoints carry it explicitly; everything else
    is 1. *)

val pp : Format.formatter -> t -> unit
(** Prints the symbolic name ([EF], [AF31], [CS6], [BE], or the raw
    number for non-standard codepoints). *)

val compare : t -> t -> int
val equal : t -> t -> bool
