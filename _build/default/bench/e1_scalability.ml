(* E1 — scalability (§2.1, claim C1).

   "A network with N points of service would create N(N-1)/2 virtual
   circuits [...] In a network with 10 service points, this is
   manageable for 45 virtual circuits. In a network with 200 service
   points (a medium-sized VPN), about 20,000 virtual circuits would be
   required."

   Provision one VPN with N sites both ways and count the state each
   model actually creates. *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4

let pops = 12

let build_sites bb n =
  List.init n (fun i ->
      Backbone.attach_site bb ~id:i ~name:(Printf.sprintf "s%d" i) ~vpn:1
        ~prefix:(Prefix.make (Ipv4.of_octets 10 (i lsr 8) (i land 0xFF) 0) 24)
        ~pop:(i mod pops))

let overlay_metrics n =
  let bb = Backbone.build ~pops () in
  let sites = build_sites bb n in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let o = Overlay.deploy ~net ~sites () in
  Overlay.metrics o

let mpls_metrics ?session_mode n =
  let bb = Backbone.build ~pops () in
  let sites = build_sites bb n in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let m = Mpls_vpn.deploy ?session_mode ~net ~backbone:bb ~sites () in
  Mpls_vpn.metrics m

let run () =
  Tables.heading
    "E1: provisioning state, overlay full mesh vs MPLS VPN (12-POP backbone)";
  let widths = [6; 10; 12; 12; 12; 12; 12; 12] in
  Tables.row widths
    [ "sites"; "paper"; "overlay"; "overlay"; "overlay"; "mpls"; "mpls";
      "mpls" ];
  Tables.row widths
    [ "N"; "N(N-1)/2"; "VCs"; "IKE msgs"; "touches"; "VPNv4 rts";
      "ctrl msgs"; "touches" ];
  Tables.rule widths;
  List.iter
    (fun n ->
       let o = overlay_metrics n in
       let m = mpls_metrics n in
       Tables.row widths
         [ string_of_int n;
           string_of_int (n * (n - 1) / 2);
           string_of_int o.Overlay.vcs;
           string_of_int o.Overlay.control_messages;
           string_of_int o.Overlay.provisioning_touches;
           string_of_int m.Mpls_vpn.vpnv4_routes;
           string_of_int m.Mpls_vpn.control_messages;
           string_of_int m.Mpls_vpn.provisioning_touches ])
    [10; 50; 100; 200; 300];
  Tables.note
    "\nPaper anchors: 45 circuits at N=10 and ~20,000 at N=200 — the\n\
     overlay VC column must reproduce them exactly. MPLS VPN state\n\
     (one VPNv4 route and one provisioning touch per site) grows\n\
     linearly; its control messages grow ~N x PEs, not N^2.";

  Tables.heading
    "E1b: session topology — circuits vs BGP sessions (independent of N)";
  let widths = [8; 18; 18; 20] in
  Tables.row widths
    ["sites"; "overlay circuits"; "iBGP full mesh"; "route reflector"];
  Tables.rule widths;
  List.iter
    (fun n ->
       let mesh = mpls_metrics n in
       let rr =
         mpls_metrics
           ~session_mode:(Mvpn_routing.Mpbgp.Route_reflector 0) n
       in
       Tables.row widths
         [ string_of_int n;
           string_of_int (n * (n - 1) / 2);
           string_of_int mesh.Mpls_vpn.bgp_sessions;
           string_of_int rr.Mpls_vpn.bgp_sessions ])
    [10; 100; 300];
  Tables.note
    "\nThe session count is a property of the PE set (12 POPs: 66 mesh\n\
     sessions, 11 via a reflector) no matter how many sites join —\n\
     against the overlay's per-site-pair circuits. This is the control-\n\
     plane face of the same N(N-1)/2 argument."
