(** Per-packet hop-trace ring buffer.

    Every instrumented forwarding action (receive, transmit, deliver,
    drop) records an event keyed on the packet uid; the ring keeps the
    most recent [capacity] events, so the recent forwarding history of
    any packet can be reconstructed after the fact without unbounded
    memory. Recording is a no-op while {!Control} is disabled. *)

type event = {
  uid : int;  (** {!Mvpn_net.Packet.t} uid (-1 for none) *)
  time : float;  (** simulation time *)
  node : int;
  label : string;  (** action, e.g. ["rx"], ["tx"], ["drop:no-route"] *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val recorded : t -> int
(** Total events ever recorded (>= live entries once wrapped). *)

val record : t -> uid:int -> time:float -> node:int -> string -> unit

val trace : t -> uid:int -> event list
(** Chronological events still in the ring for one packet. *)

val recent : t -> int -> event list
(** The last [n] events, oldest first. *)

val fold : ('a -> event -> 'a) -> t -> 'a -> 'a
(** Oldest-first fold over live entries. *)

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
