module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Rng = Mvpn_sim.Rng
module Packet = Mvpn_net.Packet
module Fib = Mvpn_net.Fib
module Prefix = Mvpn_net.Prefix
module Plane = Mvpn_mpls.Plane
module Lfib = Mvpn_mpls.Lfib
module Fec = Mvpn_mpls.Fec
module Port = Mvpn_qos.Port
module Telemetry = Mvpn_telemetry

let m_drops = Telemetry.Registry.counter "net.drops"
let m_delivered = Telemetry.Registry.counter "net.delivered"
let m_frr_switched = Telemetry.Registry.counter "resilience.frr.switched"
let m_frr_unprotected = Telemetry.Registry.counter "resilience.frr.unprotected"

(* Per-class sojourn histograms, created on first delivery of each
   codepoint ("net.sojourn.EF", "net.sojourn.AF31", "net.sojourn.BE").
   The dscp→handle memo is process-wide and lazily grown from whichever
   domain first delivers that codepoint, hence the mutex; the histogram
   values themselves are per-domain (see Mvpn_telemetry.Histogram). *)
let sojourn_hists : (int, Telemetry.Histogram.t) Hashtbl.t = Hashtbl.create 8

let sojourn_mutex = Mutex.create ()

let sojourn_hist dscp =
  let key = Mvpn_net.Dscp.to_int dscp in
  Mutex.lock sojourn_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sojourn_mutex)
    (fun () ->
       match Hashtbl.find_opt sojourn_hists key with
       | Some h -> h
       | None ->
         let name = Format.asprintf "net.sojourn.%a" Mvpn_net.Dscp.pp dscp in
         let h = Telemetry.Registry.histogram ~lo:1e-6 name in
         Hashtbl.add sojourn_hists key h;
         h)

type verdict = Dataplane.verdict = Consumed | Continue

type trace_action =
  | Trace_receive of int option
  | Trace_transmit of int
  | Trace_deliver
  | Trace_drop of string

type trace_event = {
  trace_time : float;
  trace_node : int;
  trace_uid : int;
  trace_labels : int list;
  trace_action : trace_action;
}

(* A reason's authoritative count lives in [n] (always on, per
   network); [metric] mirrors it into the registry so telemetry cannot
   drift from the table when the global switch toggles mid-run. *)
type drop_entry = { mutable n : int; metric : Telemetry.Counter.t }

(* Conservation ledger (always on, plain int stores): every packet the
   network has ever been handed is injected, imported from another
   shard, or forked (multicast replication); every packet it no longer
   holds was delivered, dropped (table or port), exported to another
   shard, or consumed (a replicated original absorbed at the PE). The
   difference is [live] — packets in queues, in flight on links, or
   waiting in scheduled events. The invariant auditor checks the books
   balance every tick; [live] is maintained independently of the fate
   counters through the per-packet [fated] flag, so a miscounted fate
   genuinely unbalances the equation instead of cancelling out. *)
type flow_totals = {
  injected : int;
  imported : int;
  exported : int;
  forked : int;
  consumed : int;
  delivered : int;
  table_drops : int;
  unattributed : int;
  live : int;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  plane : Plane.t;
  policy : Qos_mapping.policy;
  fibs : Fib.t array;
  dp : Dataplane.t;
  ports : Port.t option array;  (* indexed by link id *)
  sinks : (Packet.t -> unit) array;
  drop_table : (string, drop_entry) Hashtbl.t;
  (* (plr, protected next hop) pairs currently detoured over a bypass:
     the switchover event fires once per failure episode, not once per
     packet; entries clear when the protected link comes back up. *)
  frr_engaged : (int * int, unit) Hashtbl.t;
  mutable total_drops : int;
  mutable injected_n : int;
  mutable imported_n : int;
  mutable exported_n : int;
  mutable forked_n : int;
  mutable consumed_n : int;
  mutable delivered_n : int;
  mutable unattributed_n : int;
  mutable live_n : int;
  (* Test-only sabotage: while positive, [drop] skips the authoritative
     table increment (but still releases the packet and retires it from
     [live]) — the injected conservation bug the auditor must catch. *)
  mutable drop_leak : int;
  link_tx_bytes : Telemetry.Counter.t array;  (* indexed by link id *)
  (* Hot-path telemetry coalescing: while the engine is inside a batch
     window (Engine.in_batch), per-packet counter writes accumulate in
     the plain fields below and flush once per window via the engine's
     on_flush hook. Outside a window every write stays immediate, so
     hand-driven tests observe exact counters. *)
  mutable pending_delivered : int;
  pending_tx : int array;  (* indexed by link id *)
  link_dirty : bool array;  (* indexed by link id *)
  dirty_links : int array;  (* stack of dirty link ids *)
  mutable dirty_n : int;
  mutable drops_dirty : bool;
  (* Per-dscp memo of the global sojourn-histogram handles, and the
     builder domain's hop-trace ring: both replace a mutex / DLS lookup
     per delivered packet. A network is built and driven by exactly one
     domain (shards construct theirs inside Domain.spawn), so caching
     the domain-local ring in the record is safe. *)
  sojourn_cache : Telemetry.Histogram.t option array;
  mutable trace_ring : Telemetry.Hop_trace.t option;
  mutable tracer : (trace_event -> unit) option;
  mutable slo : Telemetry.Slo.t option;
  mutable span_sampler : Telemetry.Span.sampler option;
  mutable fate_hook :
    (time:float -> vpn:int -> band:int -> dropped:bool -> latency:float ->
     unit)
      option;
}

let trace_ring t =
  match t.trace_ring with
  | Some r -> r
  | None ->
    let r = Telemetry.Registry.trace () in
    t.trace_ring <- Some r;
    r

let record_hop t ~node ?packet label =
  if !Telemetry.Control.enabled then
    match packet with
    | Some (p : Packet.t) ->
      Telemetry.Hop_trace.record (trace_ring t)
        ~uid:p.Packet.uid ~time:(Engine.now t.engine) ~node label
    | None -> ()

(* Non-optional twin of [record_hop] for the per-hop fast path: the
   caller always has a packet, so no [Some] box rides along. *)
let record_hop_p t ~node (p : Packet.t) label =
  if !Telemetry.Control.enabled then
    Telemetry.Hop_trace.record (trace_ring t)
      ~uid:p.Packet.uid ~time:(Engine.now t.engine) ~node label

(* Flush every coalesced counter. Accumulation only happens while
   telemetry is enabled, so the flush writes are forced on — the switch
   may have been toggled between accumulation and window exit, and
   counts observed while enabled must not be lost. *)
let flush_pending t =
  if t.pending_delivered <> 0 then begin
    Telemetry.Control.with_enabled (fun () ->
        Telemetry.Counter.add m_delivered t.pending_delivered);
    t.pending_delivered <- 0
  end;
  if t.dirty_n > 0 then begin
    Telemetry.Control.with_enabled (fun () ->
        for i = 0 to t.dirty_n - 1 do
          let id = t.dirty_links.(i) in
          Telemetry.Counter.add t.link_tx_bytes.(id) t.pending_tx.(id);
          t.pending_tx.(id) <- 0;
          t.link_dirty.(id) <- false
        done);
    t.dirty_n <- 0
  end;
  if t.drops_dirty then begin
    Telemetry.Control.with_enabled (fun () ->
        Hashtbl.iter
          (fun _ e -> Telemetry.Counter.set e.metric e.n)
          t.drop_table;
        Telemetry.Counter.set m_drops t.total_drops);
    t.drops_dirty <- false
  end

let set_tracer t tracer = t.tracer <- tracer

let set_slo t slo = t.slo <- slo
let slo t = t.slo
let set_span_sampler t sampler = t.span_sampler <- sampler
let span_sampler t = t.span_sampler
let set_fate_hook t hook = t.fate_hook <- hook

(* Feed the conformance engine a terminal packet fate. Call only with
   telemetry enabled, after the terminal hop event is recorded so a
   sampled span sees it. SLO/span keying: the tenant and its
   inner-header class — the same (vpn, band) view {!Accounting}
   invoices by; un-tenanted traffic books under vpn 0. *)
let observe_fate t (p : Packet.t) ~dropped =
  let vpn = match p.Packet.vpn with Some v -> v | None -> 0 in
  let band = Qos_mapping.band_of_dscp p.Packet.inner.Packet.dscp in
  (match t.fate_hook with
   | Some hook ->
     let time = Engine.now t.engine in
     hook ~time ~vpn ~band ~dropped
       ~latency:(if dropped then 0.0 else time -. p.Packet.created_at)
   | None -> ());
  (match t.slo with
   | Some slo ->
     let time = Engine.now t.engine in
     if dropped then Telemetry.Slo.observe_drop slo ~vpn ~band ~time
     else
       Telemetry.Slo.observe_delivery slo ~vpn ~band ~time
         ~latency:(time -. p.Packet.created_at)
   | None -> ());
  match t.span_sampler with
  | Some s ->
    Telemetry.Span.offer s (Telemetry.Registry.trace ()) ~uid:p.Packet.uid
      ~vpn ~band ~dropped
  | None -> ()

let labels_of packet = Packet.label_values packet

(* Specialized tracer emitters for the per-hop fast path: the generic
   [emit] makes its caller build the action (and box the packet in
   [Some]) before the [tracer = None] test, which is an allocation per
   hop with tracing off. These variants test first and build only for
   an attached tracer. *)
let emit_transmit t ~node ~to_ (p : Packet.t) =
  match t.tracer with
  | None -> ()
  | Some f ->
    f
      { trace_time = Engine.now t.engine; trace_node = node;
        trace_uid = p.Packet.uid; trace_labels = labels_of p;
        trace_action = Trace_transmit to_ }

let emit_deliver t ~node (p : Packet.t) =
  match t.tracer with
  | None -> ()
  | Some f ->
    f
      { trace_time = Engine.now t.engine; trace_node = node;
        trace_uid = p.Packet.uid; trace_labels = labels_of p;
        trace_action = Trace_deliver }

let emit_receive t ~node ~from (p : Packet.t) =
  match t.tracer with
  | None -> ()
  | Some f ->
    f
      { trace_time = Engine.now t.engine; trace_node = node;
        trace_uid = p.Packet.uid; trace_labels = labels_of p;
        trace_action = Trace_receive from }

let emit t ~node ?packet action =
  match t.tracer with
  | None -> ()
  | Some f ->
    f
      { trace_time = Engine.now t.engine;
        trace_node = node;
        trace_uid =
          (match packet with Some p -> p.Packet.uid | None -> -1);
        trace_labels =
          (match packet with Some p -> labels_of p | None -> []);
        trace_action = action }

(* Single-source drop accounting: the per-network table is the
   authority; the [net.drop.<reason>] and [net.drops] telemetry
   counters are set from it (never independently incremented), so they
   agree with {!drop_counts} whenever telemetry is on. *)
(* Retire a packet from the live count, exactly once per incarnation:
   [fated] guards against terminal paths that compose (the default
   no-sink sink routes a delivery back through [drop]). *)
let account_terminal t (p : Packet.t) =
  if not p.Packet.fated then begin
    p.Packet.fated <- true;
    t.live_n <- t.live_n - 1
  end

let drop ?(node = -1) ?packet t reason =
  emit t ~node ?packet (Trace_drop reason);
  (match packet with
   | Some p -> account_terminal t p
   | None ->
     (* The caller abandoned a packet it never handed over; the ledger
        retires one live packet against the table row below. *)
     t.unattributed_n <- t.unattributed_n + 1;
     t.live_n <- t.live_n - 1);
  if t.drop_leak > 0 then t.drop_leak <- t.drop_leak - 1
  else begin
    let e =
      match Hashtbl.find_opt t.drop_table reason with
      | Some e -> e
      | None ->
        let e =
          { n = 0; metric = Telemetry.Registry.counter ("net.drop." ^ reason) }
        in
        Hashtbl.add t.drop_table reason e;
        e
    in
    e.n <- e.n + 1;
    t.total_drops <- t.total_drops + 1;
    (* The authoritative table row just advanced; mirror it into the
       registry now, or (inside a batch window) once at the flush. *)
    if Engine.in_batch t.engine then begin
      if !Telemetry.Control.enabled then t.drops_dirty <- true
    end
    else begin
      Telemetry.Counter.set e.metric e.n;
      Telemetry.Counter.set m_drops t.total_drops
    end
  end;
  record_hop t ~node ?packet ("drop:" ^ reason);
  (if !Telemetry.Control.enabled then
     match packet with
     | Some p -> observe_fate t p ~dropped:true
     | None -> ());
  (* Terminal fate: the packet is past every sample point, so its
     storage can be recycled. Idempotent — the default no-sink sink
     routes through here before [deliver] also releases. *)
  match packet with Some p -> Packet.release p | None -> ()

(* Port discards (queue refusal, link down mid-queue) stay out of the
   drop table by contract — read those from the port counters — but
   they are packet fates all the same: trace, span-sample and charge
   them against the tenant's SLO. *)
let port_drop t ~node packet reason =
  emit t ~node ~packet (Trace_drop reason);
  account_terminal t packet;
  if !Telemetry.Control.enabled then begin
    record_hop t ~node ~packet ("drop:" ^ reason);
    observe_fate t packet ~dropped:true
  end;
  Packet.release packet

let engine t = t.engine
let topology t = t.topo
let plane t = t.plane
let policy t = t.policy

let fib t node = t.fibs.(node)

let dataplane t = t.dp

let set_auto_ftn t flag = Dataplane.set_auto_ftn t.dp flag

let set_route_cache t flag = Dataplane.set_cache t.dp flag

let route_cache t = Dataplane.cache_enabled t.dp

let set_interceptor t node f = Dataplane.set_interceptor t.dp node f

let add_interceptor t node f = Dataplane.add_interceptor t.dp node f

let clear_interceptor t node = Dataplane.clear_interceptor t.dp node

let set_sink t node f = t.sinks.(node) <- f

let port t ~link_id =
  if link_id < 0 || link_id >= Array.length t.ports then
    invalid_arg (Printf.sprintf "Network.port: unknown link %d" link_id);
  match t.ports.(link_id) with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Network.port: unknown link %d" link_id)

(* Facility-backup fast reroute happens here, at the universal egress
   choke point: when the link toward [to_] is down and this node holds
   a usable {!Lfib.protection} for that next hop, push the bypass label
   over whatever the packet already carries and hand it to the bypass
   neighbor instead. The bypass LSP merges at [to_], whose PHP
   penultimate hop pops the bypass label, so [to_] receives exactly the
   packet the dead link would have delivered — labelled or plain IP.
   Because the check reads live link state, the switch is effective the
   same tick the link dies: no recompile, no re-signalling in the hot
   path. Down links without a usable bypass count
   [resilience.frr.unprotected] and fall through to the port, whose
   link-down accounting names the loss. *)
let transmit t ~from ~to_ packet =
  let lid = Topology.find_link_id t.topo from to_ in
  if lid < 0 then drop ~node:from ~packet t "no-link"
  else begin
    let l = Topology.link t.topo lid in
    let l, to_ =
      if l.Topology.up then (l, to_)
      else
        match Lfib.protection (Plane.lfib t.plane from) ~next_hop:to_ with
        | Some pr when pr.Lfib.usable () ->
          (match Topology.find_link t.topo from pr.Lfib.via with
           | Some bypass ->
             let top = Packet.top_packed packet in
             let exp, ttl =
               if top >= 0 then (Packet.Shim.exp top, Packet.Shim.ttl top)
               else (0, (Packet.visible_header packet).Packet.ttl)
             in
             Packet.push_label packet ~label:pr.Lfib.push ~exp ~ttl;
             Telemetry.Counter.incr m_frr_switched;
             if not (Hashtbl.mem t.frr_engaged (from, to_)) then begin
               Hashtbl.replace t.frr_engaged (from, to_) ();
               if !Telemetry.Control.enabled then
                 Telemetry.Event_log.record
                   (Telemetry.Registry.events ())
                   (Telemetry.Event_log.Frr_switchover
                      { src = from; dst = to_ })
             end;
             record_hop_p t ~node:from packet "frr";
             (bypass, pr.Lfib.via)
           | None -> (l, to_))
        | Some _ | None ->
          Telemetry.Counter.incr m_frr_unprotected;
          (l, to_)
    in
    (match t.ports.(l.Topology.id) with
     | Some p ->
       emit_transmit t ~node:from ~to_ packet;
       if !Telemetry.Control.enabled then begin
         let id = l.Topology.id in
         if Engine.in_batch t.engine then begin
           if not t.link_dirty.(id) then begin
             t.link_dirty.(id) <- true;
             t.dirty_links.(t.dirty_n) <- id;
             t.dirty_n <- t.dirty_n + 1
           end;
           t.pending_tx.(id) <- t.pending_tx.(id) + packet.Packet.size
         end
         else Telemetry.Counter.add t.link_tx_bytes.(id) packet.Packet.size;
         record_hop_p t ~node:from packet "tx"
       end;
       Port.send p packet
     | None -> drop ~node:from ~packet t "no-link")
  end

(* Per-network memo in front of the mutex-guarded global table: after
   the first delivery of a codepoint, the handle comes from a plain
   array read. *)
let sojourn_for t dscp =
  let key = Mvpn_net.Dscp.to_int dscp in
  if key >= 0 && key < Array.length t.sojourn_cache then
    match t.sojourn_cache.(key) with
    | Some h -> h
    | None ->
      let h = sojourn_hist dscp in
      t.sojourn_cache.(key) <- Some h;
      h
  else sojourn_hist dscp

let deliver t node packet =
  emit_deliver t ~node packet;
  (* Book the delivery before the sink runs: if the sink is the
     drop-counting default, the drop path sees the packet already fated
     and only the table row moves (which the auditor then flags — a
     delivery nobody claimed is an accounting anomaly). *)
  if not packet.Packet.fated then begin
    packet.Packet.fated <- true;
    t.live_n <- t.live_n - 1;
    t.delivered_n <- t.delivered_n + 1
  end;
  if !Telemetry.Control.enabled then begin
    if Engine.in_batch t.engine then
      t.pending_delivered <- t.pending_delivered + 1
    else Telemetry.Counter.incr m_delivered;
    record_hop_p t ~node packet "deliver";
    Telemetry.Histogram.observe
      (sojourn_for t (Packet.visible_dscp packet))
      (Engine.now t.engine -. packet.Packet.created_at);
    observe_fate t packet ~dropped:false
  end;
  t.sinks.(node) packet;
  (* Past the sink (the last consumer: SLA bookkeeping reads scalars
     and never retains the packet). Safe even when the sink was the
     drop-counting default — release is idempotent. *)
  Packet.release packet

let forward_ip t node packet = Dataplane.forward_ip t.dp node packet

let receive t node ~from packet = Dataplane.receive t.dp node ~from packet

let inject t node packet =
  t.injected_n <- t.injected_n + 1;
  t.live_n <- t.live_n + 1;
  receive t node ~from:None packet

(* Shard-boundary and replication hand-offs: the runner's exchange and
   the PE multicast path move packets into and out of a network without
   going through [inject]/[deliver]; these keep the ledger balanced. *)
let note_import t =
  t.imported_n <- t.imported_n + 1;
  t.live_n <- t.live_n + 1

let note_export t =
  t.exported_n <- t.exported_n + 1;
  t.live_n <- t.live_n - 1

let note_fork t =
  t.forked_n <- t.forked_n + 1;
  t.live_n <- t.live_n + 1

let note_consume t (p : Packet.t) =
  if not p.Packet.fated then begin
    p.Packet.fated <- true;
    t.live_n <- t.live_n - 1;
    t.consumed_n <- t.consumed_n + 1
  end

let flow_totals t =
  { injected = t.injected_n; imported = t.imported_n;
    exported = t.exported_n; forked = t.forked_n; consumed = t.consumed_n;
    delivered = t.delivered_n; table_drops = t.total_drops;
    unattributed = t.unattributed_n; live = t.live_n }

let port_drop_total t =
  Array.fold_left
    (fun acc slot ->
       match slot with
       | None -> acc
       | Some p ->
         let c = Port.counters p in
         acc + c.Port.dropped_queue + c.Port.dropped_link_down
         + c.Port.dropped_fault)
    0 t.ports

let iter_ports t f =
  Array.iteri
    (fun link_id slot -> match slot with Some p -> f ~link_id p | None -> ())
    t.ports

let set_drop_leak t n =
  if n < 0 then invalid_arg "Network.set_drop_leak: negative count";
  t.drop_leak <- n

let inject_after t ~delay node packet =
  Engine.schedule t.engine ~delay (fun () -> inject t node packet)

let create ?(policy = Qos_mapping.Best_effort) ?buffer_bytes ?wred
    ?(route_cache = true) ?(seed = 7) engine topo =
  let nodes = Topology.node_count topo in
  let master_rng = Rng.create seed in
  let links = Topology.links topo in
  let n_links = Topology.link_count topo in
  let plane = Plane.create ~nodes in
  let fibs = Array.init nodes (fun _ -> Fib.create ()) in
  let dp = Dataplane.create ~cache:route_cache ~nodes ~plane ~fibs () in
  (* Ports and the dataplane hooks capture the network record in their
     callbacks, so the record is built first with empty port slots and
     the hooks wired afterwards. *)
  let net =
    { engine; topo; plane; policy; fibs; dp;
      ports = Array.make (max 1 n_links) None;
      sinks = Array.make nodes (fun _ -> ());
      drop_table = Hashtbl.create 16;
      frr_engaged = Hashtbl.create 8;
      total_drops = 0;
      injected_n = 0; imported_n = 0; exported_n = 0; forked_n = 0;
      consumed_n = 0; delivered_n = 0; unattributed_n = 0; live_n = 0;
      drop_leak = 0;
      link_tx_bytes =
        Array.init (max 1 n_links) (fun i ->
            Telemetry.Registry.counter
              (Printf.sprintf "net.link%d.tx_bytes" i));
      pending_delivered = 0;
      pending_tx = Array.make (max 1 n_links) 0;
      link_dirty = Array.make (max 1 n_links) false;
      dirty_links = Array.make (max 1 n_links) 0;
      dirty_n = 0;
      drops_dirty = false;
      sojourn_cache = Array.make 64 None;
      trace_ring = None;
      tracer = None;
      slo = None;
      span_sampler = None;
      fate_hook = None }
  in
  Engine.on_flush engine (fun () -> flush_pending net);
  (* Give the global event log a clock so producers without an engine
     handle (topology flaps, dataplane recompiles) stamp sim time. *)
  Telemetry.Event_log.set_clock
    (Telemetry.Registry.events ())
    (fun () -> Engine.now engine);
  (* A repaired link ends its fast-reroute episode: the next failure of
     the same link announces a fresh switchover. *)
  Topology.on_duplex_change topo (fun ~a ~b ~up ->
      if up then begin
        Hashtbl.remove net.frr_engaged (a, b);
        Hashtbl.remove net.frr_engaged (b, a)
      end);
  Dataplane.set_hooks dp
    { Dataplane.transmit = (fun ~from ~to_ p -> transmit net ~from ~to_ p);
      deliver = (fun ~node p -> deliver net node p);
      drop = (fun ~node p reason -> drop ~node ~packet:p net reason);
      notify_receive =
        (fun ~node ~from p ->
           emit_receive net ~node ~from p;
           record_hop_p net ~node p "rx") };
  (* Default sinks count unclaimed deliveries. *)
  for v = 0 to nodes - 1 do
    net.sinks.(v) <- (fun packet -> drop ~node:v ~packet net "no-sink")
  done;
  List.iter
    (fun (l : Topology.link) ->
       let qdisc =
         Qos_mapping.make_qdisc ~rng:(Rng.fork master_rng) ?buffer_bytes
           ?wred policy
       in
       let p =
         Port.create engine ~link:l ~qdisc
           ~classify:(Qos_mapping.classify policy)
           ~on_txstart:(fun packet ->
               record_hop_p net ~node:l.Topology.src packet "txstart")
           ~on_drop:(fun ~reason packet ->
               port_drop net ~node:l.Topology.src packet reason)
           ~on_deliver:
             (* [Some src] hoisted: one box per port, not per packet. *)
             (let from = Some l.Topology.src in
              fun packet -> receive net l.Topology.dst ~from packet)
       in
       net.ports.(l.Topology.id) <- Some p)
    links;
  net

let drop_packet ?node ?packet t reason = drop ?node ?packet t reason

let install_fib t node source =
  Fib.iter (fun p r -> Fib.add t.fibs.(node) p r) source

let drop_counts t =
  Hashtbl.fold (fun k e acc -> (k, e.n) :: acc) t.drop_table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let drops t = t.total_drops
