let cell_bytes = 53

let header_bytes = 5

let payload_bytes = 48

type t = {
  vpi : int;
  vci : int;
  last_of_frame : bool;
  clp : bool;
  frame_id : int;
  index : int;
}

let make ~vpi ~vci ?(clp = false) ~frame_id ~index ~last_of_frame () =
  if vpi < 0 || vpi > 255 then
    invalid_arg (Printf.sprintf "Cell.make: vpi %d out of range" vpi);
  if vci < 0 || vci > 65535 then
    invalid_arg (Printf.sprintf "Cell.make: vci %d out of range" vci);
  { vpi; vci; last_of_frame; clp; frame_id; index }

let pp ppf c =
  Format.fprintf ppf "cell %d/%d frame %d #%d%s" c.vpi c.vci c.frame_id
    c.index
    (if c.last_of_frame then " (eom)" else "")
