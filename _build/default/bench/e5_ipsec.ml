(* E5 — IPSec cost and the QoS-erasure problem (§2.3, §3, claim C4).

   Two measurements over the overlay VPN:
   (a) voice protection with and without copying the inner ToS to the
       ESP outer header, per cipher, under access-link congestion;
   (b) goodput through a fast access when the CE's single crypto engine
       is the bottleneck (3DES ≈ 1/3 of DES throughput). *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Flow = Mvpn_net.Flow
module Crypto = Mvpn_ipsec.Crypto
module Sla = Mvpn_qos.Sla

let build ?core_bandwidth ~access_bandwidth ~cipher ~copy_tos () =
  let bb = Backbone.build ~pops:6 ?core_bandwidth () in
  let sites =
    List.init 2 (fun i ->
        Backbone.attach_site ~access_bandwidth bb ~id:(i + 1)
          ~name:(Printf.sprintf "s%d" (i + 1)) ~vpn:1
          ~prefix:(Prefix.make (Ipv4.of_octets 10 i 0 0) 16)
          ~pop:(i * 3))
  in
  let engine = Engine.create () in
  let net =
    Network.create
      ~policy:(Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched)
      engine (Backbone.topology bb)
  in
  let _ = Overlay.deploy ~cipher ~copy_tos ~net ~sites () in
  let registry = Traffic.registry engine in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (Traffic.sink registry))
    sites;
  (engine, net, registry, List.nth sites 0, List.nth sites 1)

let voice_cell ~cipher ~copy_tos =
  let engine, net, registry, a, b =
    build ~access_bandwidth:2e6 ~cipher ~copy_tos ()
  in
  let mk label dscp port rate size =
    let emit =
      Traffic.sender registry ~net ~src_node:a.Site.ce_node
        ~flow:(Flow.make ~proto:Flow.Udp ~dst_port:port (Site.host a 1)
                 (Site.host b 1))
        ~dscp ~vpn:1
        ~collector:(Traffic.collector registry label)
        ()
    in
    Traffic.cbr engine ~start:0.0 ~stop:20.0 ~rate_bps:rate
      ~packet_bytes:size emit
  in
  mk "voice" Mvpn_net.Dscp.ef 5060 64_000.0 200;
  mk "bulk" Mvpn_net.Dscp.best_effort 20 2_400_000.0 1500;
  Engine.run engine;
  Traffic.report registry "voice"

let goodput_cell ~cipher =
  (* 100 Mb/s access and an OC-3 core so the crypto engine, not the
     wire, is the limit: DES ≈ 160 Mb/s (no limit), 3DES ≈ 53 Mb/s
     (binds). *)
  let engine, net, registry, a, b =
    build ~core_bandwidth:155e6 ~access_bandwidth:100e6 ~cipher
      ~copy_tos:true ()
  in
  let emit =
    Traffic.sender registry ~net ~src_node:a.Site.ce_node
      ~flow:(Flow.make ~proto:Flow.Udp ~dst_port:20 (Site.host a 1)
               (Site.host b 1))
      ~dscp:Mvpn_net.Dscp.best_effort ~vpn:1
      ~collector:(Traffic.collector registry "bulk")
      ()
  in
  Traffic.cbr engine ~start:0.0 ~stop:10.0 ~rate_bps:80e6 ~packet_bytes:1500
    emit;
  Engine.run engine;
  Traffic.report registry "bulk"

let run () =
  Tables.heading "E5a: voice SLA through the IPSec overlay (2 Mb/s access, congested)";
  let widths = [8; 9; 10; 10; 8; 6] in
  Tables.row widths ["cipher"; "tos-copy"; "mean ms"; "p99 ms"; "loss"; "SLA"];
  Tables.rule widths;
  List.iter
    (fun (cipher, copy_tos) ->
       let r = voice_cell ~cipher ~copy_tos in
       Tables.row widths
         [ Crypto.cipher_to_string cipher;
           string_of_bool copy_tos;
           Tables.ms r.Sla.mean_delay;
           Tables.ms r.Sla.p99_delay;
           Tables.pct r.Sla.loss;
           (if Sla.complies Sla.voice_spec r then "ok" else "VIOL") ])
    [ (Crypto.Null, true); (Crypto.Des, false); (Crypto.Des, true);
      (Crypto.Des3, false); (Crypto.Des3, true) ];
  Tables.note
    "\nPaper C4: once ESP encrypts the inner header, 'all information\n\
     including the IP addresses are encrypted thus erasing any hope one\n\
     may have to control QoS' — unless the ToS byte is copied to the\n\
     outer header. Expected shape: tos-copy=false rows violate the\n\
     voice SLA; tos-copy=true rows match the null-cipher baseline.";

  Tables.heading "E5b: crypto engine as the throughput bottleneck (80 Mb/s offered)";
  let widths = [8; 14; 14] in
  Tables.row widths ["cipher"; "goodput Mb/s"; "added delay ms"];
  Tables.rule widths;
  let base = goodput_cell ~cipher:Crypto.Null in
  List.iter
    (fun cipher ->
       let r = goodput_cell ~cipher in
       Tables.row widths
         [ Crypto.cipher_to_string cipher;
           Tables.mbps r.Sla.throughput_bps;
           Tables.ms (r.Sla.mean_delay -. base.Sla.mean_delay) ])
    [Crypto.Null; Crypto.Des; Crypto.Des3];
  Tables.note
    "\nExpected shape: null and DES pass the offered 80 Mb/s; 3DES caps\n\
     near its ~53 Mb/s software ceiling (3x the per-byte cost of DES),\n\
     reproducing the 'security gear will slow connections' concern."
