module Prefix = Mvpn_net.Prefix
module Radix = Mvpn_net.Radix

type route = {
  prefix : Prefix.t;
  as_path : int list;
  learned_from : int;
  local_pref : int;
}

type speaker = {
  id : int;
  asn : int;
  mutable peers : int list;
  (* Candidate routes per prefix, keyed by the advertising peer
     (or -1 for local origination). *)
  rib_in : (int * int * int, route) Hashtbl.t;
  (* key: (advertising peer, prefix network, prefix length) *)
  loc_rib : route Radix.t;
  pref_overrides : (int, int) Hashtbl.t;  (* neighbor -> local_pref *)
  mutable dirty : bool;
}

type t = {
  mutable speakers : speaker array;
  mutable n : int;
  mutable messages : int;
}

let create () = { speakers = [||]; n = 0; messages = 0 }

let add_speaker t ~asn =
  let id = t.n in
  let s =
    { id; asn; peers = []; rib_in = Hashtbl.create 32;
      loc_rib = Radix.create (); pref_overrides = Hashtbl.create 4;
      dirty = false }
  in
  let cap = Array.length t.speakers in
  if t.n = cap then begin
    let arr = Array.make (max 8 (2 * cap)) s in
    Array.blit t.speakers 0 arr 0 cap;
    t.speakers <- arr
  end;
  t.speakers.(id) <- s;
  t.n <- id + 1;
  id

let speaker_count t = t.n

let check t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Bgp: unknown speaker %d" v)

let asn_of t v =
  check t v;
  t.speakers.(v).asn

let peer t a b =
  check t a;
  check t b;
  if a = b then invalid_arg "Bgp.peer: self-peering";
  let sa = t.speakers.(a) and sb = t.speakers.(b) in
  if List.mem b sa.peers then invalid_arg "Bgp.peer: duplicate session";
  sa.peers <- b :: sa.peers;
  sb.peers <- a :: sb.peers

let rib_key peer prefix =
  (peer, Mvpn_net.Ipv4.to_int (Prefix.network prefix), Prefix.length prefix)

let default_local_pref = 100

let originate t v prefix =
  check t v;
  let s = t.speakers.(v) in
  Hashtbl.replace s.rib_in (rib_key (-1) prefix)
    { prefix; as_path = []; learned_from = -1;
      local_pref = default_local_pref };
  s.dirty <- true

let better a b =
  (* true when a beats b *)
  if a.local_pref <> b.local_pref then a.local_pref > b.local_pref
  else if List.length a.as_path <> List.length b.as_path then
    List.length a.as_path < List.length b.as_path
  else a.learned_from < b.learned_from

(* Recompute a speaker's loc-RIB from rib_in; true if it changed. *)
let decide s =
  let best : (Prefix.t, route) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ r ->
       match Hashtbl.find_opt best r.prefix with
       | Some cur when better cur r -> ()
       | Some _ | None -> Hashtbl.replace best r.prefix r)
    s.rib_in;
  let changed = ref (Hashtbl.length best <> Radix.cardinal s.loc_rib) in
  if not !changed then
    Hashtbl.iter
      (fun p r ->
         match Radix.find s.loc_rib p with
         | Some cur
           when cur.as_path = r.as_path
             && cur.learned_from = r.learned_from -> ()
         | Some _ | None -> changed := true)
      best;
  if !changed then begin
    Radix.clear s.loc_rib;
    Hashtbl.iter (fun p r -> Radix.add s.loc_rib p r) best
  end;
  !changed

let run t =
  (* Initial decision for any originations. *)
  for v = 0 to t.n - 1 do
    let s = t.speakers.(v) in
    if s.dirty then begin
      ignore (decide s);
      s.dirty <- false
    end
  done;
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    (* Each speaker advertises its loc-RIB to each peer, applying the
       iBGP non-transit rule and the eBGP AS-path loop check. Staged so
       the round is order-independent. *)
    let staged = ref [] in
    for v = 0 to t.n - 1 do
      let s = t.speakers.(v) in
      List.iter
        (fun pid ->
           let p = t.speakers.(pid) in
           let ibgp_session = p.asn = s.asn in
           Radix.iter
             (fun prefix r ->
                let learned_ibgp =
                  r.learned_from >= 0
                  && t.speakers.(r.learned_from).asn = s.asn
                in
                (* iBGP rule: do not re-advertise iBGP-learned routes to
                   iBGP peers. *)
                if not (ibgp_session && learned_ibgp) then begin
                  let as_path =
                    if ibgp_session then r.as_path else s.asn :: r.as_path
                  in
                  (* Loop check at the receiver. *)
                  if not (List.mem p.asn as_path) then
                    staged :=
                      (pid, v,
                       { prefix; as_path; learned_from = v;
                         local_pref =
                           (match Hashtbl.find_opt p.pref_overrides v with
                            | Some lp -> lp
                            | None -> default_local_pref) })
                      :: !staged
                end)
             s.loc_rib)
        s.peers
    done;
    let changed = ref false in
    List.iter
      (fun (pid, from, r) ->
         let p = t.speakers.(pid) in
         let key = rib_key from r.prefix in
         (match Hashtbl.find_opt p.rib_in key with
          | Some old
            when old.as_path = r.as_path && old.local_pref = r.local_pref ->
            ()
          | Some _ | None ->
            t.messages <- t.messages + 1;
            Hashtbl.replace p.rib_in key r;
            p.dirty <- true);
         ())
      !staged;
    for v = 0 to t.n - 1 do
      let s = t.speakers.(v) in
      if s.dirty then begin
        if decide s then changed := true;
        s.dirty <- false
      end
    done;
    if !changed then incr rounds else continue_ := false
  done;
  !rounds

let messages_sent t = t.messages

let best_routes t v =
  check t v;
  List.map snd (Radix.to_list t.speakers.(v).loc_rib)

let lookup t v addr =
  check t v;
  Radix.lookup_value t.speakers.(v).loc_rib addr

let set_local_pref t v ~neighbor lp =
  check t v;
  Hashtbl.replace t.speakers.(v).pref_overrides neighbor lp
