lib/qos/shaper.ml: Float Mvpn_net Mvpn_sim Queue Token_bucket
