(** Streaming SLO engine: per-(vpn, band) objectives with sliding
    windows, error budgets and multi-window burn-rate alerts.

    Declare an objective per (vpn, class band), then feed it deliveries
    and drops from the forwarding path. Time is bucketed (default 1 s
    of simulation time); closing a bucket re-evaluates conformance:

    - {b latency}: p99 over the fast window vs the objective's bound;
    - {b loss}: drop ratio over the fast window vs the bound;
    - {b availability}: fraction of traffic-carrying seconds in the
      slow window that were not total blackouts, vs the bound.

    Dimension transitions fire [Slo_violation] / [Slo_recovered]
    events; the burn-rate alert fires when {e both} the fast (default
    5 s) and slow (default 60 s) windows consume error budget faster
    than [burn_threshold] times the sustainable rate, and clears when
    the fast window cools — the standard multi-window, multi-burn-rate
    recipe, on simulation time.

    A packet is {e good} when delivered within the latency bound;
    drops and late deliveries spend error budget. All observation
    entry points are no-ops while {!Control} is disabled. *)

type t

type spec = {
  target : float;  (** required good fraction, e.g. [0.99] *)
  latency_p99 : float option;
      (** seconds; doubles as the per-packet goodness bound *)
  loss_ratio : float option;
  availability : float option;  (** min fraction of available seconds *)
}

val spec :
  ?latency_p99:float -> ?loss_ratio:float -> ?availability:float ->
  float -> spec
(** [spec target] with optional dimension bounds.
    @raise Invalid_argument unless [0 < target < 1]. *)

val create :
  ?bucket_width:float -> ?fast_buckets:int -> ?slow_buckets:int ->
  ?burn_threshold:float -> ?min_samples:int -> ?events:Event_log.t ->
  unit -> t
(** Defaults: 1 s buckets, 5-bucket fast window, 60-bucket slow window,
    burn threshold 2.0, 5 samples minimum before a window judges
    latency or loss. Events go to [events] (default: the global
    {!Registry.events} log).
    @raise Invalid_argument on a non-positive width or bad window
    sizes. *)

val declare : t -> vpn:int -> band:int -> spec -> unit
(** Register an objective; re-declaring an existing (vpn, band) is
    ignored. *)

val observe_delivery :
  t -> vpn:int -> band:int -> time:float -> latency:float -> unit
(** Record a delivery for the objective (no-op when none is declared
    for the key). Advances window time as a side effect. *)

val observe_drop : t -> vpn:int -> band:int -> time:float -> unit

val advance : t -> time:float -> unit
(** Close out buckets up to [time] on every objective — call at end of
    run so the final seconds are evaluated (observations only advance
    their own objective). *)

(** {2 Reporting} *)

type report = {
  vpn : int;
  band : int;
  target : float;
  total : int;  (** cumulative packets observed *)
  bad : int;  (** cumulative drops + late deliveries *)
  drops : int;
  budget_allowed : float;  (** [(1 - target) * total] *)
  budget_spent : float;
  budget_remaining : float;  (** fraction of budget left, in [0, 1] *)
  latency_p99 : float;  (** last evaluated fast-window p99 *)
  loss_ratio : float;
  availability : float;
  burn_fast : float;
  burn_slow : float;
  violations : string list;  (** currently-violated dimensions *)
  alerting : bool;
  in_budget : bool;
}

val reports : t -> report list
(** Sorted by (vpn, band). *)

val in_budget : t -> bool
(** All objectives within cumulative error budget. *)

val violation_count : t -> int
(** [slo_violation] entries still live in the engine's event log. *)

val report_to_json : report -> string

val to_json : t -> string
(** JSON array of reports. *)

val publish_gauges : ?prefix:string -> t -> unit
(** Mirror each report into registry gauges
    [<prefix>.vpn<V>.band<B>.{budget_remaining,burn_fast,burn_slow,
    in_budget}] (prefix default ["slo"]). *)

val pp : Format.formatter -> t -> unit
