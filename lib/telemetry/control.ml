(* The single global switch every metric checks before recording. A
   plain bool ref keeps the disabled path to one load and one branch so
   instrumented hot loops (LFIB step, radix walk, qdisc) cost nothing
   measurable when telemetry is off. *)

let enabled = ref false

let enable () = enabled := true

let disable () = enabled := false

let is_enabled () = !enabled

let with_enabled f =
  let saved = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := saved) f

let with_disabled f =
  let saved = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := saved) f
