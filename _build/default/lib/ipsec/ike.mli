(** IKE handshake and rekeying model.

    "IKE simplifies the process of assigning keys to devices that need
    to communicate via encrypted connections" (§2.3). The model prices
    what the architecture pays for it: main-mode phase 1 is six messages
    (3 RTT) plus two Diffie-Hellman computations per side; quick-mode
    phase 2 is three messages (1.5 RTT). SAs expire and rekey with a
    fresh phase 2. *)

type params = {
  rtt : float;  (** round-trip time between the tunnel endpoints, seconds *)
  dh_compute : float;  (** one modular exponentiation, seconds *)
  sa_lifetime : float;  (** seconds before a phase-2 SA must rekey *)
}

val default_params : rtt:float -> params
(** 20 ms per DH exponentiation (era-typical CPE), 1-hour SA lifetime. *)

val phase1_delay : params -> float
(** 3·RTT + 2·DH. *)

val phase2_delay : params -> float
(** 1.5·RTT + DH (PFS). *)

val initial_setup_delay : params -> float
(** Phase 1 followed by phase 2 — what the first packet of a fresh
    tunnel waits for. *)

type t

val create : params -> now:float -> t
(** Completes the initial exchange conceptually at
    [now + initial_setup_delay]. *)

val ready_at : t -> float

val key_at : t -> now:float -> int64
(** The session key in force at [now] — changes on every rekey.
    @raise Invalid_argument before the tunnel is ready. *)

val rekeys_before : t -> now:float -> int
(** How many phase-2 rekeys have happened by [now]. *)
