lib/core/planning.mli: Mvpn_sim
