lib/qos/token_bucket.mli:
