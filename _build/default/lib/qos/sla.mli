(** Service level agreements: specification, measurement, compliance.

    "By combining diffserv and MPLS, IP providers will be able to offer
    users granular Service Level Agreements with assured performance"
    (§3.1). A {!spec} states the promise; a {!collector} accumulates
    what one traffic aggregate actually experienced; {!check} compares
    the two. *)

type spec = {
  name : string;
  max_mean_delay : float option;  (** seconds *)
  max_p99_delay : float option;
  max_jitter : float option;  (** mean |Δ consecutive delays|, seconds *)
  max_loss : float option;  (** fraction in [0, 1] *)
  min_throughput_bps : float option;
}

val best_effort_spec : spec
(** No commitments — everything passes. *)

val voice_spec : spec
(** EF-class telephony: 150 ms mean, 200 ms p99, 30 ms jitter, 1% loss. *)

val transactional_spec : spec
(** AF-class business data: 300 ms mean, 500 ms p99, 5% loss. *)

type collector

val collector : unit -> collector

val on_send : collector -> now:float -> bytes:int -> unit

val on_receive : collector -> now:float -> Mvpn_net.Packet.t -> unit
(** Records delay ([now] − creation time), jitter and goodput. *)

type report = {
  sent : int;
  received : int;
  reordered : int;
      (** arrivals overtaken in flight, per the per-flow sequence
          numbers — zero on a single LSP ("flows... typically take the
          same path", §5) *)
  bytes_received : int;
  duration : float;  (** first send to last receive *)
  mean_delay : float;
  p99_delay : float;
  max_delay : float;
  jitter : float;
  loss : float;  (** 1 − received/sent; 0 when nothing sent *)
  throughput_bps : float;
}

val report : collector -> report

val delay_samples : collector -> float array
(** The raw one-way delays recorded so far, sorted — for histograms and
    custom percentiles beyond what {!report} precomputes. *)

val pp_report : Format.formatter -> report -> unit

val check : spec -> report -> string list
(** Human-readable violations; empty means the SLA held. *)

val complies : spec -> report -> bool
