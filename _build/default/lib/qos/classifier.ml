module Prefix = Mvpn_net.Prefix
module Flow = Mvpn_net.Flow
module Packet = Mvpn_net.Packet
module Dscp = Mvpn_net.Dscp

type 'a rule = {
  src : Prefix.t option;
  dst : Prefix.t option;
  proto : Flow.proto option;
  src_port : (int * int) option;
  dst_port : (int * int) option;
  dscp : Dscp.t option;
  action : 'a;
}

let rule ?src ?dst ?proto ?src_port ?dst_port ?dscp action =
  { src; dst; proto; src_port; dst_port; dscp; action }

type 'a t = 'a rule list

let create rules = rules

let length = List.length

let needs_flow r =
  r.src <> None || r.dst <> None || r.proto <> None || r.src_port <> None
  || r.dst_port <> None

let in_range (lo, hi) v = v >= lo && v <= hi

let flow_matches r (f : Flow.t) =
  (match r.src with Some p -> Prefix.mem f.Flow.src p | None -> true)
  && (match r.dst with Some p -> Prefix.mem f.Flow.dst p | None -> true)
  && (match r.proto with Some pr -> pr = f.Flow.proto | None -> true)
  && (match r.src_port with
      | Some range -> in_range range f.Flow.src_port
      | None -> true)
  && (match r.dst_port with
      | Some range -> in_range range f.Flow.dst_port
      | None -> true)

let matches r ~flow ~dscp =
  (match r.dscp with Some d -> Dscp.equal d dscp | None -> true)
  &&
  if needs_flow r then
    match flow with Some f -> flow_matches r f | None -> false
  else true

let classify t packet =
  let flow = Packet.classifiable_flow packet in
  let dscp = Packet.visible_dscp packet in
  List.find_map
    (fun r -> if matches r ~flow ~dscp then Some r.action else None)
    t

let classify_flow t ?(dscp = Dscp.best_effort) flow =
  List.find_map
    (fun r -> if matches r ~flow:(Some flow) ~dscp then Some r.action else None)
    t
