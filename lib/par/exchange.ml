type msg = {
  arrival : float;
  sent : float;
  src_shard : int;
  seq : int;
  src_node : int;
  dst_node : int;
  packet : Mvpn_net.Packet.t;
}

type channel = {
  mutex : Mutex.t;
  mutable buf : msg list;  (* newest first; reversed on drain *)
  mutable next_seq : int;
  mutable len : int;
}

type t = {
  shards : int;
  capacity : int;
  chans : channel option array;  (* src * shards + dst *)
  overflow : int Atomic.t;
}

let create ?(capacity = 65536) ~shards () =
  if shards < 1 then invalid_arg "Exchange.create: shards < 1";
  if capacity < 1 then invalid_arg "Exchange.create: capacity < 1";
  { shards; capacity;
    chans = Array.make (shards * shards) None;
    overflow = Atomic.make 0 }

let index t ~src ~dst =
  if src < 0 || src >= t.shards || dst < 0 || dst >= t.shards || src = dst
  then invalid_arg "Exchange: bad shard pair";
  (src * t.shards) + dst

let open_channel t ~src ~dst =
  let i = index t ~src ~dst in
  match t.chans.(i) with
  | Some _ -> ()
  | None ->
    t.chans.(i) <-
      Some { mutex = Mutex.create (); buf = []; next_seq = 0; len = 0 }

let channels t =
  let acc = ref [] in
  for src = t.shards - 1 downto 0 do
    for dst = t.shards - 1 downto 0 do
      if src <> dst && t.chans.((src * t.shards) + dst) <> None then
        acc := (src, dst) :: !acc
    done
  done;
  !acc

let send t ~src ~dst ~arrival ~sent ~src_node ~dst_node packet =
  match t.chans.(index t ~src ~dst) with
  | None ->
    invalid_arg
      (Printf.sprintf "Exchange.send: no channel %d -> %d" src dst)
  | Some ch ->
    Mutex.lock ch.mutex;
    let m =
      { arrival; sent; src_shard = src; seq = ch.next_seq; src_node;
        dst_node; packet }
    in
    ch.next_seq <- ch.next_seq + 1;
    ch.buf <- m :: ch.buf;
    ch.len <- ch.len + 1;
    let over = ch.len > t.capacity in
    Mutex.unlock ch.mutex;
    if over then Atomic.incr t.overflow

let drain t ~dst =
  let acc = ref [] in
  for src = t.shards - 1 downto 0 do
    if src <> dst then
      match t.chans.((src * t.shards) + dst) with
      | None -> ()
      | Some ch ->
        Mutex.lock ch.mutex;
        let got = ch.buf in
        ch.buf <- [];
        ch.len <- 0;
        Mutex.unlock ch.mutex;
        (* [got] is newest-first; rev_append onto the higher-src groups
           already in [acc] yields oldest-first within each group,
           groups in ascending source-shard order. *)
        acc := List.rev_append got !acc
  done;
  !acc

let overflows t = Atomic.get t.overflow
