(** ATM cells.

    The paper's MPLS argument leans on ATM twice: MPLS "brings the same
    kind of label swapping based forwarding used in frame relay and ATM
    to the handling of IP traffic", and "makes use of the guaranteed QoS
    features of ATM, which underlies many ISP networks". This library
    models the ATM data plane faithfully enough to quantify what MPLS
    keeps (per-VC switching, QoS categories) and what it sheds (the
    cell tax, frame-loss amplification). *)

val cell_bytes : int
(** 53 — total cell size on the wire. *)

val header_bytes : int
(** 5 — VPI/VCI, PTI, CLP, HEC. *)

val payload_bytes : int
(** 48. *)

type t = {
  vpi : int;  (** virtual path identifier, 0–255 *)
  vci : int;  (** virtual channel identifier, 0–65535 *)
  last_of_frame : bool;  (** the AAL5 end-of-message PTI bit *)
  clp : bool;  (** cell loss priority: [true] = drop first *)
  frame_id : int;  (** which AAL5 frame this cell belongs to (model) *)
  index : int;  (** position within the frame *)
}

val make :
  vpi:int -> vci:int -> ?clp:bool -> frame_id:int -> index:int ->
  last_of_frame:bool -> unit -> t
(** @raise Invalid_argument if VPI/VCI are out of range. *)

val pp : Format.formatter -> t -> unit
