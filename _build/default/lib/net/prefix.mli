(** CIDR prefixes (an IPv4 network address plus a mask length).

    A prefix is always stored in canonical form: the host bits below the
    mask are zero. Prefixes are the unit of routing state throughout the
    library — FIB entries, OSPF reachability, VPNv4 NLRI and VRF routes
    are all keyed on them. *)

type t
(** A canonical CIDR prefix. *)

val make : Ipv4.t -> int -> t
(** [make addr len] is the prefix [addr/len], with host bits cleared.
    @raise Invalid_argument if [len] is outside [0, 32]. *)

val network : t -> Ipv4.t
(** [network p] is the (canonical) network address of [p]. *)

val length : t -> int
(** [length p] is the mask length of [p]. *)

val of_string : string -> (t, string) result
(** [of_string s] parses ["a.b.c.d/len"]; a bare address means a /32. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse error. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Orders by network address, then by mask length (shorter first). *)

val equal : t -> t -> bool

val hash : t -> int

val mem : Ipv4.t -> t -> bool
(** [mem a p] is [true] iff address [a] falls inside prefix [p]. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is [true] iff every address of [q] is inside [p]
    (i.e. [p] is a shorter-or-equal prefix of the same network). *)

val overlaps : t -> t -> bool
(** [overlaps p q] is [true] iff [p] and [q] share at least one address,
    which for prefixes means one subsumes the other. *)

val first : t -> Ipv4.t
(** First address of the prefix (the network address itself). *)

val last : t -> Ipv4.t
(** Last address of the prefix (the broadcast address for the block). *)

val size : t -> int
(** Number of addresses covered: [2^(32 - length)]. *)

val bit : t -> int -> bool
(** [bit p i] is bit [i] of the network address counting from the most
    significant bit ([i = 0] is the top bit). Only meaningful for
    [i < length p], but defined for all [i] in [0, 31].
    @raise Invalid_argument if [i] is outside [0, 31]. *)

val split : t -> (t * t) option
(** [split p] is the two half-length children of [p], or [None] when
    [p] is a /32 and cannot be split. *)

val subnets : t -> int -> t list
(** [subnets p len] enumerates the subnets of [p] with mask length
    [len], in address order.
    @raise Invalid_argument if [len < length p] or [len > 32] or the
    enumeration would exceed 2^20 prefixes. *)

val nth_host : t -> int -> Ipv4.t
(** [nth_host p i] is the [i]-th address inside [p] (0-based).
    @raise Invalid_argument if [i] is outside the prefix. *)

val default : t
(** 0.0.0.0/0 — the default route. *)
