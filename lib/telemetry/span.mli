(** End-to-end spans reconstructed from the {!Hop_trace} ring.

    A span folds one packet's chronological hop events into contiguous
    segments, attributing the packet's total latency to queueing,
    transmission, processing and delivery per node — the "where did
    VPN 7's 20 ms go" view. Because segments pair consecutive events,
    their dwells sum exactly to the span's end-to-end time.

    Hop labels understood: ["rx"] (node received), ["tx"] (queued on
    the egress port), ["txstart"] (serialization began, i.e. left the
    queue), ["deliver"], and terminal ["drop:<reason>"]. *)

type kind =
  | Processing  (** rx -> tx: the node's forwarding decision path *)
  | Queueing  (** tx -> txstart: waiting in the egress qdisc *)
  | Transmission  (** txstart -> rx: serialization + propagation *)
  | Delivery  (** rx -> deliver: hand-off to the local sink *)
  | Other  (** unexpected label sequence *)

type segment = {
  node : int;  (** where the segment starts *)
  next_node : int;  (** where it ends ([= node] unless on the wire) *)
  kind : kind;
  start_time : float;
  dwell : float;  (** seconds spent in this stage *)
  from_label : string;
  to_label : string;
}

type outcome = Delivered | Dropped of string | In_flight

type t = {
  uid : int;
  vpn : int;  (** -1 when unknown *)
  band : int;  (** -1 when unknown *)
  start_time : float;
  end_time : float;
  outcome : outcome;
  segments : segment list;  (** chronological; dwells sum to {!total} *)
}

val of_trace : ?vpn:int -> ?band:int -> Hop_trace.event list -> t option
(** Build a span from one packet's chronological events (as returned by
    {!Hop_trace.trace}); [None] on an empty list. Events evicted from
    the ring are simply absent — the span covers what survived. *)

val total : t -> float
(** [end_time -. start_time]; equals the sum of segment dwells. *)

val by_kind : t -> (kind * float) list
(** Total dwell per stage, in first-appearance order. *)

val dwell_of_kind : t -> kind -> float

val kind_name : kind -> string

val outcome_name : outcome -> string

(** {2 Sampling}

    Keeping every span would re-walk the trace ring per packet; the
    sampler reconstructs 1-in-[every] deliveries per (vpn, band) — the
    first delivery of each key always — and every drop, retaining a
    bounded newest-first ring of each. All entry points are no-ops
    while {!Control} is disabled. *)

type sampler

val sampler : ?every:int -> ?keep:int -> unit -> sampler
(** Defaults: [every = 64], [keep = 32] spans per ring.
    @raise Invalid_argument if either is [< 1]. *)

val offer :
  sampler -> Hop_trace.t -> uid:int -> vpn:int -> band:int ->
  dropped:bool -> unit
(** Consider the packet just delivered (or dropped) for sampling; when
    chosen, its span is reconstructed from the trace ring and retained.
    Call after the terminal hop event is recorded so the span includes
    it. *)

val delivered_spans : sampler -> t list
(** Retained delivery spans, oldest first. *)

val dropped_spans : sampler -> t list

val offered : sampler -> int

val kept : sampler -> int

val clear : sampler -> unit

val to_json : t -> string

val sampler_to_json : sampler -> string
(** JSON array: retained delivery spans then drop spans. *)

val pp : Format.formatter -> t -> unit

val pp_segment : Format.formatter -> segment -> unit
