bench/e3_procedures.ml: Array Backbone List Membership Mpls_vpn Mvpn_core Mvpn_net Mvpn_routing Mvpn_sim Network Printf Tables
