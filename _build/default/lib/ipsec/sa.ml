type t = {
  spi : int;
  cipher : Crypto.cipher;
  key : int64;
  mutable seq : int;
  window : Replay.t;
  mutable bytes : int;
  mutable packets : int;
}

let create ~spi ~cipher ~key =
  { spi; cipher; key; seq = 0; window = Replay.create (); bytes = 0;
    packets = 0 }

let spi t = t.spi
let cipher t = t.cipher
let key t = t.key

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

let check_replay t seq = Replay.check t.window seq

let account t ~bytes =
  t.bytes <- t.bytes + bytes;
  t.packets <- t.packets + 1

let bytes_processed t = t.bytes
let packets_processed t = t.packets
