module Topology = Mvpn_sim.Topology
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Bgp = Mvpn_routing.Bgp

type t = {
  topo : Topology.t;
  bb_a : Backbone.t;
  bb_b : Backbone.t;
  net : Network.t;
  border_a : int;
  border_b : int;
  mutable vpn_a : Mpls_vpn.t option;
  mutable vpn_b : Mpls_vpn.t option;
  mutable ebgp_messages : int;
}

let backbone_a t = t.bb_a
let backbone_b t = t.bb_b
let network t = t.net

let get_vpn = function
  | Some v -> v
  | None -> invalid_arg "Interprovider: VPN service not deployed yet"

let vpn_a t = get_vpn t.vpn_a
let vpn_b t = get_vpn t.vpn_b

let border t = (t.border_a, t.border_b)

let ebgp_messages t = t.ebgp_messages

let build ?(pops_per_provider = 6) ?(core_bandwidth = 45e6)
    ?(border_bandwidth = 45e6) ?(attach = fun _ _ -> ()) ~net_of () =
  let topo = Topology.create () in
  let bb_a =
    Backbone.build ~pops:pops_per_provider ~core_bandwidth ~into:topo
      ~loopback_octet:255 ()
  in
  let bb_b =
    Backbone.build ~pops:pops_per_provider ~core_bandwidth ~into:topo
      ~loopback_octet:254 ()
  in
  let border_a = (Backbone.pops bb_a).(0) in
  let border_b = (Backbone.pops bb_b).(0) in
  ignore
    (Topology.connect topo border_a border_b ~bandwidth:border_bandwidth
       ~delay:0.002);
  attach bb_a bb_b;
  let net = net_of topo in
  { topo; bb_a; bb_b; net; border_a; border_b; vpn_a = None; vpn_b = None;
    ebgp_messages = 0 }

(* Per-VRF eBGP between the border PEs: each provider originates its
   VPN's prefixes; what the peer learns becomes Option-A external
   routes pointing across the border link. *)
let exchange_vpn_routes t ~vpn ~(sites_a : Site.t list)
    ~(sites_b : Site.t list) =
  let bgp = Bgp.create () in
  let speaker_a = Bgp.add_speaker bgp ~asn:65001 in
  let speaker_b = Bgp.add_speaker bgp ~asn:65002 in
  Bgp.peer bgp speaker_a speaker_b;
  List.iter
    (fun (s : Site.t) -> Bgp.originate bgp speaker_a s.Site.prefix)
    sites_a;
  List.iter
    (fun (s : Site.t) -> Bgp.originate bgp speaker_b s.Site.prefix)
    sites_b;
  ignore (Bgp.run bgp);
  t.ebgp_messages <- t.ebgp_messages + Bgp.messages_sent bgp;
  let external_site_id prefix =
    900_000 + (Hashtbl.hash (Prefix.to_string prefix) land 0xFFFF)
  in
  List.iter
    (fun (r : Bgp.route) ->
       if r.Bgp.learned_from = speaker_b then
         Mpls_vpn.add_external_route (vpn_a t) ~pe:t.border_a ~vpn
           ~prefix:r.Bgp.prefix ~via:t.border_b
           ~site_id:(external_site_id r.Bgp.prefix))
    (Bgp.best_routes bgp speaker_a);
  List.iter
    (fun (r : Bgp.route) ->
       if r.Bgp.learned_from = speaker_a then
         Mpls_vpn.add_external_route (vpn_b t) ~pe:t.border_b ~vpn
           ~prefix:r.Bgp.prefix ~via:t.border_a
           ~site_id:(external_site_id r.Bgp.prefix))
    (Bgp.best_routes bgp speaker_b)

let deploy_vpn ?pops_per_provider ?core_bandwidth ?(access_bandwidth = 2e6)
    ?(policy = Qos_mapping.Best_effort) ~vpn ~sites_a ~sites_b () =
  let engine = Engine.create () in
  let made_a = ref [] and made_b = ref [] in
  let attach bb_a bb_b =
    let attach_list bb made base specs =
      List.iteri
        (fun i (pop, prefix) ->
           let s =
             Backbone.attach_site ~access_bandwidth bb ~id:(base + i)
               ~name:(Printf.sprintf "s%d" (base + i)) ~vpn ~prefix ~pop
           in
           made := s :: !made)
        specs
    in
    attach_list bb_a made_a 1000 sites_a;
    attach_list bb_b made_b 2000 sites_b
  in
  let t =
    build ?pops_per_provider ?core_bandwidth ~attach
      ~net_of:(fun topo -> Network.create ~policy engine topo)
      ()
  in
  let sites_a = List.rev !made_a and sites_b = List.rev !made_b in
  let in_provider bb node =
    Array.exists (fun p -> p = node) (Backbone.pops bb)
    || List.exists (fun (s : Site.t) -> s.Site.ce_node = node)
         (Backbone.sites bb)
  in
  t.vpn_a <-
    Some
      (Mpls_vpn.deploy ~domain:(in_provider t.bb_a) ~net:t.net
         ~backbone:t.bb_a ~sites:sites_a ());
  t.vpn_b <-
    Some
      (Mpls_vpn.deploy ~domain:(in_provider t.bb_b) ~net:t.net
         ~backbone:t.bb_b ~sites:sites_b ());
  exchange_vpn_routes t ~vpn ~sites_a ~sites_b;
  (t, engine, sites_a, sites_b)
