lib/sim/heap.mli:
