module Prefix = Mvpn_net.Prefix
module Radix = Mvpn_net.Radix
module Mpbgp = Mvpn_routing.Mpbgp

type next_hop =
  | Local_site of Site.t
  | Remote_pe of { pe : int; vpn_label : int }
  | Via_neighbor of int

type t = {
  pe : int;
  vpn : int;
  rd : Mpbgp.rd;
  import_rts : Mpbgp.rt list;
  export_rts : Mpbgp.rt list;
  routes : next_hop Radix.t;
}

let create ~pe ~vpn ~rd ~import_rts ~export_rts =
  { pe; vpn; rd; import_rts; export_rts; routes = Radix.create () }

let pe t = t.pe
let vpn t = t.vpn
let rd t = t.rd
let import_rts t = t.import_rts
let export_rts t = t.export_rts

let add_local t site = Radix.add t.routes site.Site.prefix (Local_site site)

let install_remote t ~prefix ~pe ~vpn_label =
  Radix.add t.routes prefix (Remote_pe { pe; vpn_label })

let install_via t ~prefix ~neighbor =
  Radix.add t.routes prefix (Via_neighbor neighbor)

let remove t prefix = Radix.remove t.routes prefix

let lookup t addr = Radix.lookup_value t.routes addr

let route_count t = Radix.cardinal t.routes

let iter_routes t f = Radix.iter f t.routes

let local_sites t =
  Radix.fold
    (fun _ nh acc ->
       match nh with
       | Local_site s -> s :: acc
       | Remote_pe _ | Via_neighbor _ -> acc)
    t.routes []
  |> List.rev

let clear_remote t =
  let victims =
    Radix.fold
      (fun p nh acc ->
         match nh with
         | Remote_pe _ -> p :: acc
         | Local_site _ | Via_neighbor _ -> acc)
      t.routes []
  in
  List.iter (fun p -> ignore (Radix.remove t.routes p)) victims;
  List.length victims
