(** Discrete-event simulation engine.

    Time is a [float] in seconds. Events are thunks scheduled at absolute
    or relative times; the engine pops them in time order (FIFO among
    simultaneous events) and runs them, each of which may schedule more.
    All network behaviour — transmission, propagation, queue service,
    protocol timers — is expressed as events over one engine. *)

type t

type backend =
  | Binary_heap  (** {!Heap}: the original scheduler, kept as oracle. *)
  | Calendar  (** {!Calendar}: O(1) bucketed ring, the default. *)

val create : ?backend:backend -> unit -> t
(** [create ()] uses the {!Calendar} backend. Both backends implement
    the same [(time, insertion)] total order, so a simulation's event
    sequence — and every derived fingerprint — is identical under
    either; [Binary_heap] exists as the reference oracle for tests and
    for the seq-heap vs seq-calendar bench race. *)

val now : t -> float
(** Current simulation time, in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule e ~delay f] runs [f] at [now e +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** [schedule_at e ~time f] runs [f] at absolute [time].
    @raise Invalid_argument if [time] is in the past or not finite. *)

val schedule_kind :
  t -> kind:Profile.kind -> delay:float -> (unit -> unit) -> unit
(** {!schedule}, tagged for the dispatch-cost ledger: while the
    engine's profiler is enabled, the per-kind scheduled count is
    bumped. One predictable branch otherwise. *)

val schedule_kind_at :
  t -> kind:Profile.kind -> time:float -> (unit -> unit) -> unit
(** {!schedule_at}, tagged like {!schedule_kind}. *)

val profiler : t -> Profile.t
(** The engine's dispatch-cost ledger (see {!Profile}). Disabled at
    {!create}; enabling takes effect at the next run-window entry,
    which swaps the run loop for a profiled twin — the plain loop
    never tests the profiler. *)

val run : ?until:float -> t -> unit
(** Drain the event queue. With [until], stop once the next event would
    be strictly after [until] and advance the clock to [until]. Events
    scheduled exactly at [until] do run. *)

val step : t -> bool
(** Run exactly one event; [false] when the queue is empty. *)

val peek_time : t -> float option
(** Timestamp of the next pending event, without running it. *)

val run_before : t -> before:float -> unit
(** Process every pending event with time strictly below [before],
    leaving events at or after [before] queued and [now] at the last
    processed event. The conservative parallel runner uses this to
    advance a shard through a safe window without claiming the window
    bound itself. *)

val pending : t -> int
(** Number of scheduled events not yet run. *)

val processed : t -> int
(** Number of events run since creation. *)

val stop : t -> unit
(** Make the current {!run} return after the event in progress; pending
    events stay queued. *)

(** {2 Batched telemetry}

    Inside a {!run}/{!run_before} window the engine's [sim.events] and
    [sim.scheduled] counters accumulate in plain fields and flush once
    at window exit, so the per-event cost is an int bump instead of a
    domain-local counter write. Outside a window, counter writes stay
    immediate. Hot-path instrumentation elsewhere (e.g. the network's
    per-packet counters) can join the same rhythm: check {!in_batch}
    to defer, and register the flush with {!on_flush}. *)

val in_batch : t -> bool
(** [true] while the engine is inside a [run]/[run_before] window. *)

val on_flush : t -> (unit -> unit) -> unit
(** [on_flush e f] registers [f] to run at every batch-window exit
    (including on exception escape), before the engine flushes its own
    counters. Hooks run in reverse registration order. *)
