open Mvpn_core
module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Flow = Mvpn_net.Flow
module Packet = Mvpn_net.Packet
module Dscp = Mvpn_net.Dscp
module Fib = Mvpn_net.Fib
module Sla = Mvpn_qos.Sla
module Crypto = Mvpn_ipsec.Crypto

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let mk_site ~id ~vpn ~prefix ~ce ~pe =
  Site.make ~id ~name:(Printf.sprintf "s%d" id) ~vpn
    ~prefix:(pfx prefix) ~ce_node:ce ~pe_node:pe

(* --- Membership --------------------------------------------------------- *)

let test_membership_isolation () =
  let m = Membership.create ~pe_count:4 () in
  let s1 = mk_site ~id:1 ~vpn:1 ~prefix:"10.0.0.0/16" ~ce:10 ~pe:0 in
  let s2 = mk_site ~id:2 ~vpn:1 ~prefix:"10.1.0.0/16" ~ce:11 ~pe:1 in
  let s3 = mk_site ~id:3 ~vpn:2 ~prefix:"10.0.0.0/16" ~ce:12 ~pe:0 in
  List.iter (Membership.join m) [s1; s2; s3];
  let found = Membership.discover m ~asking:s1 in
  Alcotest.(check int) "only own vpn" 1 (List.length found);
  Alcotest.(check int) "the right site" 2 (List.hd found).Site.id;
  Alcotest.(check (list int)) "vpn ids" [1; 2] (Membership.vpn_ids m)

let test_membership_join_leave () =
  let m = Membership.create ~pe_count:4 () in
  let s1 = mk_site ~id:1 ~vpn:1 ~prefix:"10.0.0.0/16" ~ce:10 ~pe:0 in
  Membership.join m s1;
  Alcotest.check_raises "double join"
    (Invalid_argument "Membership.join: site 1 already a member") (fun () ->
      Membership.join m s1);
  Alcotest.(check bool) "leave" true (Membership.leave m ~site_id:1);
  Alcotest.(check bool) "gone" false (Membership.leave m ~site_id:1);
  Alcotest.(check int) "empty" 0 (Membership.site_count m)

let test_membership_mechanism_costs () =
  let build mechanism =
    let m = Membership.create ~mechanism ~pe_count:10 () in
    for i = 1 to 5 do
      Membership.join m
        (mk_site ~id:i ~vpn:1 ~prefix:"10.0.0.0/16" ~ce:(10 + i) ~pe:0)
    done;
    Membership.messages m
  in
  let directory = build Membership.Directory in
  let flooded = build Membership.Flooded in
  (* Directory: 1+0, 1+1 ... 1+4 = 15. Flooded: 10 per join = 50. *)
  Alcotest.(check int) "directory" 15 directory;
  Alcotest.(check int) "flooded" 50 flooded

let test_membership_join_all_message_parity () =
  let sites pe_count =
    List.init 8 (fun i ->
        mk_site ~id:(i + 1) ~vpn:(1 + (i mod 3)) ~prefix:"10.0.0.0/16"
          ~ce:(20 + i) ~pe:(i mod pe_count))
  in
  List.iter
    (fun mechanism ->
       let one = Membership.create ~mechanism ~pe_count:6 () in
       List.iter (Membership.join one) (sites 6);
       let bulk = Membership.create ~mechanism ~pe_count:6 () in
       Membership.join_all bulk (sites 6);
       Alcotest.(check int) "messages equal the per-join sum"
         (Membership.messages one) (Membership.messages bulk);
       Alcotest.(check int) "same members" (Membership.site_count one)
         (Membership.site_count bulk))
    [ Membership.Directory; Membership.Flooded ];
  (* A bad batch — here a duplicate inside the batch itself — is
     rejected atomically, before any join lands or any message is
     billed. *)
  let m = Membership.create ~pe_count:4 () in
  let dup = mk_site ~id:7 ~vpn:1 ~prefix:"10.0.0.0/16" ~ce:1 ~pe:0 in
  Alcotest.check_raises "duplicate within batch"
    (Invalid_argument "Membership.join: site 7 already a member") (fun () ->
      Membership.join_all m
        [ mk_site ~id:6 ~vpn:1 ~prefix:"10.0.0.0/16" ~ce:0 ~pe:0; dup; dup ]);
  Alcotest.(check int) "nothing joined" 0 (Membership.site_count m);
  Alcotest.(check int) "nothing billed" 0 (Membership.messages m)

(* --- Vrf ------------------------------------------------------------------ *)

let test_vrf_overlapping_isolation () =
  let rd1 = { Mvpn_routing.Mpbgp.rd_asn = 65000; rd_assigned = 1 } in
  let rt1 = { Mvpn_routing.Mpbgp.rt_asn = 65000; rt_value = 1 } in
  let v1 =
    Vrf.create ~pe:0 ~vpn:1 ~rd:rd1 ~import_rts:[rt1] ~export_rts:[rt1]
  in
  let v2 =
    Vrf.create ~pe:0 ~vpn:2
      ~rd:{ Mvpn_routing.Mpbgp.rd_asn = 65000; rd_assigned = 2 }
      ~import_rts:[] ~export_rts:[]
  in
  (* Same prefix in both VRFs, different answers. *)
  let s1 = mk_site ~id:1 ~vpn:1 ~prefix:"10.0.0.0/16" ~ce:100 ~pe:0 in
  Vrf.add_local v1 s1;
  Vrf.install_remote v2 ~prefix:(pfx "10.0.0.0/16") ~pe:7 ~vpn_label:77;
  (match Vrf.lookup v1 (ip "10.0.1.1") with
   | Some (Vrf.Local_site s) -> Alcotest.(check int) "vrf1 local" 1 s.Site.id
   | _ -> Alcotest.fail "vrf1 wrong");
  (match Vrf.lookup v2 (ip "10.0.1.1") with
   | Some (Vrf.Remote_pe { pe; vpn_label }) ->
     Alcotest.(check int) "vrf2 pe" 7 pe;
     Alcotest.(check int) "vrf2 label" 77 vpn_label
   | _ -> Alcotest.fail "vrf2 wrong");
  Alcotest.(check int) "clear remote" 1 (Vrf.clear_remote v2);
  Alcotest.(check bool) "vrf2 now empty" true
    (Vrf.lookup v2 (ip "10.0.1.1") = None)

(* --- Qos_mapping --------------------------------------------------------- *)

let test_qos_bands () =
  Alcotest.(check int) "ef" 0 (Qos_mapping.band_of_dscp Dscp.ef);
  Alcotest.(check int) "af31" 1 (Qos_mapping.band_of_dscp (Dscp.af 3 1));
  Alcotest.(check int) "af11" 2 (Qos_mapping.band_of_dscp (Dscp.af 1 1));
  Alcotest.(check int) "be" 3 (Qos_mapping.band_of_dscp Dscp.best_effort);
  Alcotest.(check int) "cs6" 0 (Qos_mapping.band_of_dscp (Dscp.cs 6))

let test_qos_band_of_packet_prefers_exp () =
  let p =
    Packet.make ~dscp:Dscp.best_effort ~now:0.0
      (Flow.make (ip "10.0.0.1") (ip "10.1.0.1"))
  in
  Alcotest.(check int) "unlabelled uses dscp" 3 (Qos_mapping.band_of_packet p);
  Packet.push_label p ~label:100 ~exp:5 ~ttl:64;
  Alcotest.(check int) "labelled uses exp" 0 (Qos_mapping.band_of_packet p)

let test_qos_mark_exp () =
  let p =
    Packet.make ~dscp:(Dscp.af 3 1) ~now:0.0
      (Flow.make (ip "10.0.0.1") (ip "10.1.0.1"))
  in
  Packet.push_label p ~label:100 ~exp:0 ~ttl:64;
  Packet.push_label p ~label:200 ~exp:0 ~ttl:64;
  Qos_mapping.mark_exp_from_dscp p;
  List.iter
    (fun (s : Packet.shim) -> Alcotest.(check int) "exp set" 3 s.Packet.exp)
    (Packet.label_stack p)

let test_qos_encrypted_tunnel_lands_in_be () =
  let p =
    Packet.make ~dscp:Dscp.ef ~now:0.0
      (Flow.make (ip "10.0.0.1") (ip "10.1.0.1"))
  in
  Packet.encapsulate p ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
    ~proto:Flow.Esp ~overhead:57 ~copy_tos:false;
  Alcotest.(check int) "no tos copy: best effort band" 3
    (Qos_mapping.band_of_packet p)

(* --- Network -------------------------------------------------------------- *)

let line_net () =
  let topo = Topology.create () in
  let ids = Topology.line topo 3 ~bandwidth:1e6 ~delay:0.001 in
  let engine = Engine.create () in
  let net = Network.create engine topo in
  (engine, topo, net, ids)

let test_network_ip_forwarding () =
  let engine, _topo, net, ids = line_net () in
  Fib.add (Network.fib net ids.(0)) (pfx "10.9.0.0/16")
    { Fib.next_hop = ids.(1); cost = 1; source = Fib.Static };
  Fib.add (Network.fib net ids.(1)) (pfx "10.9.0.0/16")
    { Fib.next_hop = ids.(2); cost = 1; source = Fib.Static };
  Fib.add (Network.fib net ids.(2)) (pfx "10.9.0.0/16")
    { Fib.next_hop = Fib.local_delivery; cost = 0; source = Fib.Connected };
  let got = ref None in
  Network.set_sink net ids.(2) (fun p -> got := Some p);
  let p =
    Packet.make ~now:0.0 (Flow.make (ip "10.1.0.1") (ip "10.9.0.1"))
  in
  Network.inject net ids.(0) p;
  Engine.run engine;
  (match !got with
   | Some d ->
     Alcotest.(check int) "same packet" p.Packet.uid d.Packet.uid;
     Alcotest.(check int) "ttl decremented twice" (Packet.default_ttl - 2)
       d.Packet.inner.Packet.ttl
   | None -> Alcotest.fail "not delivered");
  Alcotest.(check int) "no drops" 0 (Network.drops net)

let test_network_no_route_drop () =
  let engine, _topo, net, ids = line_net () in
  let p =
    Packet.make ~now:0.0 (Flow.make (ip "10.1.0.1") (ip "10.9.0.1"))
  in
  Network.inject net ids.(0) p;
  Engine.run engine;
  Alcotest.(check (list (pair string int))) "counted" [("no-route", 1)]
    (Network.drop_counts net)

let test_network_ttl_drop () =
  let engine, _topo, net, ids = line_net () in
  Fib.add (Network.fib net ids.(0)) Prefix.default
    { Fib.next_hop = ids.(1); cost = 1; source = Fib.Static };
  let p =
    Packet.make ~now:0.0 (Flow.make (ip "10.1.0.1") (ip "10.9.0.1"))
  in
  p.Packet.inner.Packet.ttl <- 1;
  Network.inject net ids.(0) p;
  Engine.run engine;
  Alcotest.(check (list (pair string int))) "ttl drop" [("ip-ttl", 1)]
    (Network.drop_counts net)

let test_network_interceptor_consumes () =
  let engine, _topo, net, ids = line_net () in
  let seen = ref 0 in
  Network.set_interceptor net ids.(0) (fun ~from:_ _ ->
      incr seen;
      Network.Consumed);
  let p =
    Packet.make ~now:0.0 (Flow.make (ip "10.1.0.1") (ip "10.9.0.1"))
  in
  Network.inject net ids.(0) p;
  Engine.run engine;
  Alcotest.(check int) "intercepted" 1 !seen;
  Alcotest.(check int) "nothing dropped" 0 (Network.drops net)

let test_network_label_forwarding () =
  let engine, _topo, net, ids = line_net () in
  let plane = Network.plane net in
  Mvpn_mpls.Lfib.install
    (Mvpn_mpls.Plane.lfib plane ids.(1))
    ~in_label:100
    { Mvpn_mpls.Lfib.op = Mvpn_mpls.Lfib.Pop; next_hop = ids.(2) };
  Fib.add (Network.fib net ids.(2)) (pfx "10.9.0.0/16")
    { Fib.next_hop = Fib.local_delivery; cost = 0; source = Fib.Connected };
  let got = ref false in
  Network.set_sink net ids.(2) (fun _ -> got := true);
  let p =
    Packet.make ~now:0.0 (Flow.make (ip "10.1.0.1") (ip "10.9.0.1"))
  in
  Packet.push_label p ~label:100 ~exp:0 ~ttl:64;
  Network.transmit net ~from:ids.(0) ~to_:ids.(1) p;
  Engine.run engine;
  Alcotest.(check bool) "delivered over lsp" true !got

(* --- Backbone ------------------------------------------------------------- *)

let test_backbone_shape () =
  let bb = Backbone.build () in
  Alcotest.(check int) "pops" 12 (Backbone.pop_count bb);
  (* 12 ring + 3 chords = 15 duplex = 30 links. *)
  Alcotest.(check int) "links" 30 (Topology.link_count (Backbone.topology bb));
  Alcotest.(check bool) "loopbacks distinct" true
    (not
       (Prefix.equal (Backbone.loopback bb ~pop:0) (Backbone.loopback bb ~pop:1)));
  let s =
    Backbone.attach_site bb ~id:1 ~name:"x" ~vpn:1 ~prefix:(pfx "10.0.0.0/16")
      ~pop:3
  in
  Alcotest.(check (option int)) "pe is the pop" (Some 3)
    (Backbone.pop_of_node bb s.Site.pe_node);
  Alcotest.(check (option int)) "ce is not a pop" None
    (Backbone.pop_of_node bb s.Site.ce_node)

(* --- Mpls_vpn end to end --------------------------------------------------- *)

(* Small backbone: 4 pops, 2 VPNs with identical prefixes, one site pair
   each on pops 0 and 2. *)
type e2e = {
  engine : Engine.t;
  net : Network.t;
  bb : Backbone.t;
  vpn : Mpls_vpn.t;
  sites : Site.t list;
}

let build_e2e ?(use_te = false) ?(policy = Qos_mapping.Best_effort) () =
  let bb = Backbone.build ~pops:4 ~chords:[] () in
  let attach id vpn prefix pop =
    Backbone.attach_site bb ~id ~name:(Printf.sprintf "s%d" id) ~vpn
      ~prefix:(pfx prefix) ~pop
  in
  let s11 = attach 11 1 "10.0.0.0/16" 0 in
  let s12 = attach 12 1 "10.1.0.0/16" 2 in
  let s21 = attach 21 2 "10.0.0.0/16" 0 in
  let s22 = attach 22 2 "10.1.0.0/16" 2 in
  let engine = Engine.create () in
  let net = Network.create ~policy engine (Backbone.topology bb) in
  let sites = [s11; s12; s21; s22] in
  let vpn = Mpls_vpn.deploy ~use_te ~net ~backbone:bb ~sites () in
  { engine; net; bb; vpn; sites }

let site_by_id e id =
  List.find (fun (s : Site.t) -> s.Site.id = id) e.sites

let send_between e ~(src : Site.t) ~(dst : Site.t) =
  let p =
    Packet.make ~vpn:src.Site.vpn ~now:(Engine.now e.engine)
      (Flow.make
         (Prefix.nth_host src.Site.prefix 1)
         (Prefix.nth_host dst.Site.prefix 1))
  in
  Network.inject e.net src.Site.ce_node p;
  p

let test_mvpn_end_to_end_delivery () =
  let e = build_e2e () in
  let s11 = site_by_id e 11 and s12 = site_by_id e 12 in
  let delivered = ref [] in
  Network.set_sink e.net s12.Site.ce_node (fun p ->
      delivered := p :: !delivered);
  let p = send_between e ~src:s11 ~dst:s12 in
  Engine.run e.engine;
  (match !delivered with
   | [d] ->
     Alcotest.(check int) "the packet" p.Packet.uid d.Packet.uid;
     Alcotest.(check bool) "labels all popped" true
       (Packet.top_label d = None)
   | _ -> Alcotest.failf "expected 1 delivery, got %d (drops: %d)"
            (List.length !delivered) (Network.drops e.net));
  Alcotest.(check int) "no drops" 0 (Network.drops e.net)

let test_mvpn_isolation_with_overlapping_prefixes () =
  let e = build_e2e () in
  let s11 = site_by_id e 11 and s12 = site_by_id e 12 in
  let s21 = site_by_id e 21 and s22 = site_by_id e 22 in
  (* Both VPNs' destination sites share the address plan. *)
  Alcotest.(check bool) "prefixes overlap" true
    (Prefix.equal s12.Site.prefix s22.Site.prefix);
  let vpn1_got = ref 0 and vpn2_got = ref 0 in
  Network.set_sink e.net s12.Site.ce_node (fun p ->
      Alcotest.(check (option int)) "vpn1 sink gets vpn1 traffic" (Some 1)
        p.Packet.vpn;
      incr vpn1_got);
  Network.set_sink e.net s22.Site.ce_node (fun p ->
      Alcotest.(check (option int)) "vpn2 sink gets vpn2 traffic" (Some 2)
        p.Packet.vpn;
      incr vpn2_got);
  for _ = 1 to 5 do
    ignore (send_between e ~src:s11 ~dst:s12);
    ignore (send_between e ~src:s21 ~dst:s22)
  done;
  Engine.run e.engine;
  Alcotest.(check int) "vpn1 deliveries" 5 !vpn1_got;
  Alcotest.(check int) "vpn2 deliveries" 5 !vpn2_got;
  Alcotest.(check int) "no leaks or losses" 0 (Network.drops e.net)

let test_mvpn_no_cross_vpn_route () =
  let e = build_e2e () in
  let s11 = site_by_id e 11 in
  (* VPN 1's site sends to an address that only exists in VPN 2's
     address plan... which is the same plan; but send to a prefix only
     VPN 2 announced: give VPN 2 an extra site prefix. Simpler: send to
     an address in no VRF route. *)
  let p =
    Packet.make ~vpn:1 ~now:0.0
      (Flow.make (Prefix.nth_host s11.Site.prefix 1) (ip "172.20.0.1"))
  in
  Network.inject e.net s11.Site.ce_node p;
  Engine.run e.engine;
  Alcotest.(check (list (pair string int))) "vrf refuses"
    [("vrf-no-route", 1)]
    (Network.drop_counts e.net)

let test_mvpn_hairpin_same_pe () =
  (* Two VPN-1 sites on the same pop: traffic hairpins at the shared PE
     without entering the core. *)
  let bb = Backbone.build ~pops:4 ~chords:[] () in
  let attach id prefix pop =
    Backbone.attach_site bb ~id ~name:(Printf.sprintf "s%d" id) ~vpn:1
      ~prefix:(pfx prefix) ~pop
  in
  let a = attach 1 "10.0.0.0/16" 0 in
  let b = attach 2 "10.3.0.0/16" 0 in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites:[a; b] () in
  ignore vpn;
  let delivered = ref 0 in
  Network.set_sink net b.Site.ce_node (fun p ->
      Alcotest.(check bool) "no labels on hairpin" true
        (Packet.top_label p = None);
      incr delivered);
  let p =
    Packet.make ~vpn:1 ~now:0.0
      (Flow.make (Prefix.nth_host a.Site.prefix 1)
         (Prefix.nth_host b.Site.prefix 1))
  in
  Network.inject net a.Site.ce_node p;
  Engine.run engine;
  Alcotest.(check int) "hairpinned" 1 !delivered;
  Alcotest.(check int) "no drops" 0 (Network.drops net)

let test_mvpn_uses_label_switching () =
  let e = build_e2e () in
  let s11 = site_by_id e 11 and s12 = site_by_id e 12 in
  Network.set_sink e.net s12.Site.ce_node (fun _ -> ());
  (* Snoop on the PE's core-facing port: packets leaving pop0 toward
     the core must be labelled. *)
  ignore (send_between e ~src:s11 ~dst:s12);
  (* Inspect while queued: inject, then check before running. *)
  let topo = Network.topology e.net in
  let labelled = ref false in
  (* Intercept at the first core hop instead. *)
  let pops = Backbone.pops e.bb in
  Array.iter
    (fun pop ->
       if pop <> s11.Site.pe_node then
         Network.set_interceptor e.net pop (fun ~from:_ p ->
             if Packet.top_label p <> None then labelled := true;
             Network.Continue))
    pops;
  ignore (send_between e ~src:s11 ~dst:s12);
  Engine.run e.engine;
  ignore topo;
  Alcotest.(check bool) "transit saw labels" true !labelled

let test_mvpn_metrics_linear_growth () =
  (* MPLS VPN state grows linearly with sites; overlay VCs grow
     quadratically. Compare 4 vs 8 sites in one VPN. *)
  let build n =
    let bb = Backbone.build ~pops:4 ~chords:[] () in
    let sites =
      List.init n (fun i ->
          Backbone.attach_site bb ~id:i ~name:(Printf.sprintf "s%d" i)
            ~vpn:1
            ~prefix:(Prefix.make (Ipv4.of_octets 10 i 0 0) 16)
            ~pop:(i mod 4))
    in
    let engine = Engine.create () in
    let net = Network.create engine (Backbone.topology bb) in
    let vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites () in
    (Mpls_vpn.metrics vpn, Overlay.deploy ~net ~sites ())
  in
  let m4, _ = build 4 in
  let m8, o8 = build 8 in
  Alcotest.(check int) "vpnv4 routes = sites (n=4)" 4
    m4.Mpls_vpn.vpnv4_routes;
  Alcotest.(check int) "vpnv4 routes = sites (n=8)" 8
    m8.Mpls_vpn.vpnv4_routes;
  Alcotest.(check int) "overlay vcs quadratic" (8 * 7 / 2)
    (Overlay.vc_count o8)

let test_mvpn_remove_site () =
  let e = build_e2e () in
  let s12 = site_by_id e 12 in
  Alcotest.(check bool) "removed" true
    (Mpls_vpn.remove_site e.vpn ~site_id:12);
  (* VPN 1's other site can no longer reach it. *)
  let s11 = site_by_id e 11 in
  ignore (send_between e ~src:s11 ~dst:s12);
  Engine.run e.engine;
  Alcotest.(check bool) "route is gone" true
    (List.mem_assoc "vrf-no-route" (Network.drop_counts e.net))

let test_mvpn_reconverge_after_failure () =
  (* 4-pop ring: kill one ring link on the s11->s12 path; traffic must
     re-route the other way around the ring. *)
  let e = build_e2e () in
  let s11 = site_by_id e 11 and s12 = site_by_id e 12 in
  let delivered = ref 0 in
  Network.set_sink e.net s12.Site.ce_node (fun _ -> incr delivered);
  ignore (send_between e ~src:s11 ~dst:s12);
  Engine.run e.engine;
  Alcotest.(check int) "before failure" 1 !delivered;
  let pops = Backbone.pops e.bb in
  Topology.set_duplex_state (Network.topology e.net) pops.(0) pops.(1) false;
  let rounds = Mpls_vpn.reconverge e.vpn in
  Alcotest.(check bool) "reflooded" true (rounds > 0);
  ignore (send_between e ~src:s11 ~dst:s12);
  Engine.run e.engine;
  Alcotest.(check int) "after failure" 2 !delivered

let test_mvpn_te_tunnels () =
  let e = build_e2e ~use_te:true () in
  let s11 = site_by_id e 11 and s12 = site_by_id e 12 in
  let delivered = ref 0 in
  Network.set_sink e.net s12.Site.ce_node (fun _ -> incr delivered);
  ignore (send_between e ~src:s11 ~dst:s12);
  Engine.run e.engine;
  Alcotest.(check int) "delivered over te" 1 !delivered;
  match Mpls_vpn.te e.vpn with
  | Some te ->
    Alcotest.(check bool) "tunnels exist" true
      (List.length (Mvpn_mpls.Rsvp_te.tunnels te) > 0)
  | None -> Alcotest.fail "te expected"

let test_mvpn_dscp_to_exp_mapping () =
  let e = build_e2e ~policy:(Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched) () in
  let s11 = site_by_id e 11 and s12 = site_by_id e 12 in
  Network.set_sink e.net s12.Site.ce_node (fun _ -> ());
  let exp_seen = ref (-1) in
  let pops = Backbone.pops e.bb in
  Array.iter
    (fun pop ->
       if pop <> s11.Site.pe_node then
         Network.set_interceptor e.net pop (fun ~from:_ p ->
             (match Packet.top_exp p with
              | Some exp -> exp_seen := exp
              | None -> ());
             Network.Continue))
    pops;
  let p =
    Packet.make ~vpn:1 ~dscp:Dscp.ef ~now:0.0
      (Flow.make
         (Prefix.nth_host s11.Site.prefix 1)
         (Prefix.nth_host s12.Site.prefix 1))
  in
  Network.inject e.net s11.Site.ce_node p;
  Engine.run e.engine;
  Alcotest.(check int) "EF mapped to exp 5" 5 !exp_seen

let test_mvpn_multicast_reaches_group () =
  (* Four VPN-1 sites (two sharing a PE) plus one VPN-2 site: a group
     send from s11 must reach every other VPN-1 site exactly once and
     VPN 2 never. *)
  let bb = Backbone.build ~pops:4 ~chords:[] () in
  let attach id vpn prefix pop =
    Backbone.attach_site bb ~id ~name:(Printf.sprintf "s%d" id) ~vpn
      ~prefix:(pfx prefix) ~pop
  in
  let s11 = attach 11 1 "10.0.0.0/16" 0 in
  let s12 = attach 12 1 "10.1.0.0/16" 2 in
  let s13 = attach 13 1 "10.2.0.0/16" 2 in
  let s14 = attach 14 1 "10.3.0.0/16" 0 in
  let s21 = attach 21 2 "10.0.0.0/16" 1 in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let _vpn =
    Mpls_vpn.deploy ~net ~backbone:bb ~sites:[s11; s12; s13; s14; s21] ()
  in
  let copies = Hashtbl.create 8 in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (fun _ ->
           Hashtbl.replace copies s.Site.id
             (1 + Option.value ~default:0 (Hashtbl.find_opt copies s.Site.id))))
    [s11; s12; s13; s14; s21];
  let group =
    Packet.make ~vpn:1 ~dscp:Dscp.ef ~now:0.0
      (Flow.make (Prefix.nth_host s11.Site.prefix 1) (ip "239.1.2.3"))
  in
  Network.inject net s11.Site.ce_node group;
  Engine.run engine;
  let got id = Option.value ~default:0 (Hashtbl.find_opt copies id) in
  Alcotest.(check int) "s12 one copy" 1 (got 12);
  Alcotest.(check int) "s13 one copy" 1 (got 13);
  Alcotest.(check int) "s14 one copy (same-PE hairpin)" 1 (got 14);
  Alcotest.(check int) "sender gets nothing back" 0 (got 11);
  Alcotest.(check int) "other vpn untouched" 0 (got 21);
  Alcotest.(check int) "no drops" 0 (Network.drops net)

let test_mvpn_multicast_keeps_marking () =
  (* Replicas carry the sender's DSCP: group voice stays EF. *)
  let e = build_e2e () in
  let s11 = site_by_id e 11 and s12 = site_by_id e 12 in
  let seen_dscp = ref None in
  Network.set_sink e.net s12.Site.ce_node (fun p ->
      seen_dscp := Some (Packet.visible_dscp p));
  let group =
    Packet.make ~vpn:1 ~dscp:Dscp.ef ~now:0.0
      (Flow.make (Prefix.nth_host s11.Site.prefix 1) (ip "239.9.9.9"))
  in
  Network.inject e.net s11.Site.ce_node group;
  Engine.run e.engine;
  match !seen_dscp with
  | Some d -> Alcotest.(check bool) "EF preserved" true (Dscp.equal d Dscp.ef)
  | None -> Alcotest.fail "no replica delivered"

(* --- Overlay end to end ----------------------------------------------------- *)

type oe2e = {
  oengine : Engine.t;
  onet : Network.t;
  osites : Site.t list;
  odeploy : Overlay.t;
}

let build_overlay ?(cipher = Crypto.Des) ?(copy_tos = false) () =
  let bb = Backbone.build ~pops:4 ~chords:[] () in
  let attach id vpn prefix pop =
    Backbone.attach_site bb ~id ~name:(Printf.sprintf "s%d" id) ~vpn
      ~prefix:(pfx prefix) ~pop
  in
  let s1 = attach 1 1 "10.0.0.0/16" 0 in
  let s2 = attach 2 1 "10.1.0.0/16" 2 in
  let s3 = attach 3 2 "10.0.0.0/16" 1 in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let sites = [s1; s2; s3] in
  let odeploy = Overlay.deploy ~cipher ~copy_tos ~net ~sites () in
  { oengine = engine; onet = net; osites = sites; odeploy }

let osite e id = List.find (fun (s : Site.t) -> s.Site.id = id) e.osites

let test_overlay_end_to_end () =
  let e = build_overlay () in
  let s1 = osite e 1 and s2 = osite e 2 in
  let delivered = ref [] in
  Network.set_sink e.onet s2.Site.ce_node (fun p -> delivered := p :: !delivered);
  let p =
    Packet.make ~vpn:1 ~now:0.0
      (Flow.make (Prefix.nth_host s1.Site.prefix 1)
         (Prefix.nth_host s2.Site.prefix 1))
  in
  Network.inject e.onet s1.Site.ce_node p;
  Engine.run e.oengine;
  (match !delivered with
   | [d] ->
     Alcotest.(check int) "delivered" p.Packet.uid d.Packet.uid;
     Alcotest.(check bool) "decapsulated" true (not (Packet.has_outer d));
     Alcotest.(check bool) "decrypted" false d.Packet.encrypted
   | _ -> Alcotest.failf "expected 1 delivery (drops: %d)" (Network.drops e.onet))

let test_overlay_tunnel_counts () =
  let e = build_overlay () in
  (* VPN 1 has 2 sites -> 1 VC (2 directional); VPN 2 has 1 site -> 0. *)
  Alcotest.(check int) "vcs" 1 (Overlay.vc_count e.odeploy);
  Alcotest.(check int) "tunnels" 2 (Overlay.tunnel_count e.odeploy)

let test_overlay_replay_dropped () =
  let e = build_overlay () in
  let s1 = osite e 1 and s2 = osite e 2 in
  let delivered = ref [] in
  Network.set_sink e.onet s2.Site.ce_node (fun p -> delivered := p :: !delivered);
  let p =
    Packet.make ~vpn:1 ~now:0.0
      (Flow.make (Prefix.nth_host s1.Site.prefix 1)
         (Prefix.nth_host s2.Site.prefix 1))
  in
  Network.inject e.onet s1.Site.ce_node p;
  Engine.run e.oengine;
  Alcotest.(check int) "one delivery" 1 (List.length !delivered);
  (* Attacker re-presents the delivered packet. *)
  let replica = List.hd !delivered in
  Alcotest.(check bool) "tunnel exists" true
    (Overlay.inject_replayed_copy e.odeploy s1 s2 replica);
  Engine.run e.oengine;
  Alcotest.(check int) "still one delivery" 1 (List.length !delivered);
  Alcotest.(check int) "replay counted" 1 (Overlay.replay_drops e.odeploy)

let test_overlay_crypto_delays_delivery () =
  let run cipher =
    let e = build_overlay ~cipher () in
    let s1 = osite e 1 and s2 = osite e 2 in
    let at = ref 0.0 in
    Network.set_sink e.onet s2.Site.ce_node (fun _ ->
        at := Engine.now e.oengine);
    let p =
      Packet.make ~vpn:1 ~size:4096 ~now:0.0
        (Flow.make (Prefix.nth_host s1.Site.prefix 1)
           (Prefix.nth_host s2.Site.prefix 1))
    in
    Network.inject e.onet s1.Site.ce_node p;
    Engine.run e.oengine;
    !at
  in
  let null_at = run Crypto.Null in
  let des_at = run Crypto.Des in
  let des3_at = run Crypto.Des3 in
  Alcotest.(check bool) "des slower than null" true (des_at > null_at);
  Alcotest.(check bool) "3des slower than des" true (des3_at > des_at)

let test_overlay_ike_gates_traffic () =
  let bb = Backbone.build ~pops:4 ~chords:[] () in
  let s1 =
    Backbone.attach_site bb ~id:1 ~name:"s1" ~vpn:1
      ~prefix:(pfx "10.0.0.0/16") ~pop:0
  in
  let s2 =
    Backbone.attach_site bb ~id:2 ~name:"s2" ~vpn:1
      ~prefix:(pfx "10.1.0.0/16") ~pop:2
  in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let ike = Mvpn_ipsec.Ike.default_params ~rtt:0.1 in
  let ov = Overlay.deploy ~ike ~net ~sites:[s1; s2] () in
  let ready = Overlay.tunnel_ready_at ov in
  Alcotest.(check bool) "keying takes time" true (ready > 0.3);
  let delivered = ref 0 in
  Network.set_sink net s2.Site.ce_node (fun _ -> incr delivered);
  let send () =
    Network.inject net s1.Site.ce_node
      (Packet.make ~vpn:1 ~now:(Engine.now engine)
         (Flow.make (Prefix.nth_host s1.Site.prefix 1)
            (Prefix.nth_host s2.Site.prefix 1)))
  in
  (* Before keying completes: dropped as pending. *)
  send ();
  Engine.run engine;
  Alcotest.(check int) "early packet dropped" 0 !delivered;
  Alcotest.(check bool) "reason recorded" true
    (List.mem_assoc "ike-pending" (Network.drop_counts net));
  (* After keying: flows. *)
  Engine.schedule_at engine ~time:(ready +. 0.01) send;
  Engine.run engine;
  Alcotest.(check int) "late packet delivered" 1 !delivered

let test_overlay_cross_vpn_has_no_tunnel () =
  let e = build_overlay () in
  let s1 = osite e 1 and s3 = osite e 3 in
  (* s3 is in VPN 2: no tunnel from s1; and s3's prefix overlaps s1's
     own (10.0/16), so the packet stays local — never crosses VPNs. *)
  let p =
    Packet.make ~vpn:1 ~now:0.0
      (Flow.make
         (Prefix.nth_host s1.Site.prefix 1)
         (Prefix.nth_host s3.Site.prefix 200))
  in
  let leaked = ref false in
  Network.set_sink e.onet s3.Site.ce_node (fun _ -> leaked := true);
  let own = ref 0 in
  Network.set_sink e.onet s1.Site.ce_node (fun _ -> incr own);
  Network.inject e.onet s1.Site.ce_node p;
  Engine.run e.oengine;
  Alcotest.(check bool) "no leak to vpn 2" false !leaked

(* --- Tracing ----------------------------------------------------------------- *)

let test_trace_sequence () =
  let e = build_e2e () in
  let s11 = site_by_id e 11 and s12 = site_by_id e 12 in
  Network.set_sink e.net s12.Site.ce_node (fun _ -> ());
  let events = ref [] in
  Network.set_tracer e.net (Some (fun ev -> events := ev :: !events));
  let p = send_between e ~src:s11 ~dst:s12 in
  Engine.run e.engine;
  let events = List.rev !events in
  Alcotest.(check bool) "events flowed" true (List.length events >= 4);
  (* All events concern our packet. *)
  Alcotest.(check bool) "uid consistent" true
    (List.for_all (fun ev -> ev.Network.trace_uid = p.Packet.uid) events);
  (* Times never decrease. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Network.trace_time <= b.Network.trace_time && monotone rest
    | [_] | [] -> true
  in
  Alcotest.(check bool) "time monotone" true (monotone events);
  (* The journey ends in exactly one delivery... *)
  Alcotest.(check int) "one delivery" 1
    (List.length
       (List.filter
          (fun ev -> ev.Network.trace_action = Network.Trace_deliver)
          events));
  (* ...and somewhere in the middle the packet was labelled. *)
  Alcotest.(check bool) "labels observed" true
    (List.exists (fun ev -> ev.Network.trace_labels <> []) events);
  (* Turning the tracer off stops events. *)
  Network.set_tracer e.net None;
  let before = List.length events in
  ignore (send_between e ~src:s11 ~dst:s12);
  Engine.run e.engine;
  Alcotest.(check int) "tracer off" before (List.length (List.rev events))

let test_trace_drop_reported () =
  let e = build_e2e () in
  let s11 = site_by_id e 11 in
  let drops = ref [] in
  Network.set_tracer e.net
    (Some
       (fun ev ->
          match ev.Network.trace_action with
          | Network.Trace_drop reason -> drops := reason :: !drops
          | _ -> ()));
  let p =
    Packet.make ~vpn:1 ~now:0.0
      (Flow.make (Prefix.nth_host s11.Site.prefix 1) (ip "172.29.0.1"))
  in
  Network.inject e.net s11.Site.ce_node p;
  Engine.run e.engine;
  Alcotest.(check (list string)) "drop traced" ["vrf-no-route"] !drops

(* Property: random multi-VPN deployments never leak across VPNs, and
   every intra-VPN pair delivers. *)
let isolation_property =
  QCheck.Test.make ~name:"random deployments: total isolation, full delivery"
    ~count:15
    QCheck.(pair (int_range 2 4) (int_range 2 4))
    (fun (vpns, sites_per_vpn) ->
       let sc =
         Scenario.build ~pops:6 ~vpns ~sites_per_vpn
           ~seed:(vpns * 100 + sites_per_vpn)
           (Scenario.Mpls_deployment
              { policy = Qos_mapping.Best_effort; use_te = false })
       in
       let net = Scenario.network sc in
       let engine = Scenario.engine sc in
       let ok = ref 0 and leak = ref 0 and expected = ref 0 in
       let sites = Array.to_list (Scenario.sites sc) in
       List.iter
         (fun (s : Site.t) ->
            Network.set_sink net s.Site.ce_node (fun p ->
                if p.Packet.vpn = Some s.Site.vpn then incr ok
                else incr leak))
         sites;
       List.iter
         (fun (a : Site.t) ->
            List.iter
              (fun (b : Site.t) ->
                 if a.Site.vpn = b.Site.vpn && a.Site.id <> b.Site.id then begin
                   incr expected;
                   Network.inject net a.Site.ce_node
                     (Packet.make ~vpn:a.Site.vpn ~now:(Engine.now engine)
                        (Flow.make
                           (Prefix.nth_host a.Site.prefix 1)
                           (Prefix.nth_host b.Site.prefix 1)))
                 end)
              sites)
         sites;
       Engine.run engine;
       !leak = 0 && !ok = !expected)

(* --- Interprovider ---------------------------------------------------------- *)

let deploy_two_carriers () =
  Interprovider.deploy_vpn ~pops_per_provider:4 ~vpn:7
    ~sites_a:[(1, pfx "10.0.0.0/16"); (2, pfx "10.1.0.0/16")]
    ~sites_b:[(1, pfx "10.2.0.0/16"); (3, pfx "10.3.0.0/16")]
    ()

let test_interprovider_cross_carrier_delivery () =
  let ip2, engine, sites_a, sites_b = deploy_two_carriers () in
  let net = Interprovider.network ip2 in
  let a = List.hd sites_a and b = List.hd sites_b in
  let delivered = ref [] in
  Network.set_sink net b.Site.ce_node (fun p -> delivered := p :: !delivered);
  let p =
    Packet.make ~vpn:7 ~now:0.0
      (Flow.make (Site.host a 1) (Site.host b 1))
  in
  Network.inject net a.Site.ce_node p;
  Engine.run engine;
  (match !delivered with
   | [d] -> Alcotest.(check int) "across both carriers" p.Packet.uid d.Packet.uid
   | _ ->
     Alcotest.failf "expected 1 delivery, got %d (drops: %s)"
       (List.length !delivered)
       (String.concat ", "
          (List.map (fun (r, n) -> Printf.sprintf "%s=%d" r n)
             (Network.drop_counts net))));
  Alcotest.(check bool) "ebgp exchanged routes" true
    (Interprovider.ebgp_messages ip2 > 0)

let test_interprovider_reverse_direction () =
  let ip2, engine, sites_a, sites_b = deploy_two_carriers () in
  let net = Interprovider.network ip2 in
  let a = List.nth sites_a 1 and b = List.nth sites_b 1 in
  let delivered = ref 0 in
  Network.set_sink net a.Site.ce_node (fun _ -> incr delivered);
  let p =
    Packet.make ~vpn:7 ~now:0.0
      (Flow.make (Site.host b 1) (Site.host a 1))
  in
  Network.inject net b.Site.ce_node p;
  Engine.run engine;
  Alcotest.(check int) "b -> a delivered" 1 !delivered

let test_interprovider_igp_isolation () =
  let ip2, _engine, _sa, _sb = deploy_two_carriers () in
  (* Provider A's IGP must not have learned provider B's loopbacks. *)
  let vpn_a = Interprovider.vpn_a ip2 in
  let bb_b = Interprovider.backbone_b ip2 in
  let a_border, _ = Interprovider.border ip2 in
  let a_fib = Mvpn_routing.Ospf.fib (Mpls_vpn.ospf vpn_a) a_border in
  let b_loopback = Backbone.loopback bb_b ~pop:1 in
  Alcotest.(check (option int)) "no route to the other carrier's core"
    None
    (Fib.next_hop a_fib (Prefix.network b_loopback))

let test_interprovider_unknown_prefix_refused () =
  let ip2, engine, sites_a, _ = deploy_two_carriers () in
  let net = Interprovider.network ip2 in
  let a = List.hd sites_a in
  let p =
    Packet.make ~vpn:7 ~now:0.0
      (Flow.make (Site.host a 1) (ip "172.20.0.1"))
  in
  Network.inject net a.Site.ce_node p;
  Engine.run engine;
  Alcotest.(check bool) "refused at the vrf" true
    (List.mem_assoc "vrf-no-route" (Network.drop_counts net))

let test_interprovider_multicast_stays_home () =
  (* Group replication is intra-provider: A's other sites hear the
     announcement; B's sites do not, and nothing loops. *)
  let ip2, engine, sites_a, sites_b = deploy_two_carriers () in
  let net = Interprovider.network ip2 in
  let copies = Hashtbl.create 8 in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (fun _ ->
           Hashtbl.replace copies s.Site.id
             (1 + Option.value ~default:0 (Hashtbl.find_opt copies s.Site.id))))
    (sites_a @ sites_b);
  let sender = List.hd sites_a in
  Network.inject net sender.Site.ce_node
    (Packet.make ~vpn:7 ~now:0.0
       (Flow.make (Site.host sender 1) (ip "239.7.7.7")));
  Engine.run engine;
  let got (s : Site.t) =
    Option.value ~default:0 (Hashtbl.find_opt copies s.Site.id)
  in
  Alcotest.(check int) "a2 hears it" 1 (got (List.nth sites_a 1));
  List.iter
    (fun s -> Alcotest.(check int) "b silent" 0 (got s))
    sites_b;
  Alcotest.(check int) "sender silent" 0 (got sender)

let test_interprovider_intra_carrier_still_native () =
  (* Sites within one carrier must not detour via the border. *)
  let ip2, engine, sites_a, _ = deploy_two_carriers () in
  let net = Interprovider.network ip2 in
  let a0 = List.nth sites_a 0 and a1 = List.nth sites_a 1 in
  let delivered = ref 0 in
  Network.set_sink net a1.Site.ce_node (fun _ -> incr delivered);
  (* The border link must carry nothing for intra-carrier traffic. *)
  let border_a, border_b = Interprovider.border ip2 in
  let border_link =
    match
      Mvpn_sim.Topology.find_link (Network.topology net) border_a border_b
    with
    | Some l -> l
    | None -> Alcotest.fail "border link missing"
  in
  let p =
    Packet.make ~vpn:7 ~now:0.0
      (Flow.make (Site.host a0 1) (Site.host a1 1))
  in
  Network.inject net a0.Site.ce_node p;
  Engine.run engine;
  Alcotest.(check int) "intra-carrier delivered" 1 !delivered;
  let border_port = Network.port net ~link_id:border_link.Mvpn_sim.Topology.id in
  Alcotest.(check int) "nothing crossed the border" 0
    (Mvpn_qos.Port.counters border_port).Mvpn_qos.Port.offered

(* --- Traffic ---------------------------------------------------------------- *)

let test_traffic_cbr_count () =
  let engine = Engine.create () in
  let count = ref 0 in
  (* 80 kb/s at 1000-byte packets = 10 packets/s for 2 s. *)
  Traffic.cbr engine ~start:0.0 ~stop:2.0 ~rate_bps:80_000.0
    ~packet_bytes:1000 (fun size ->
        Alcotest.(check int) "size" 1000 size;
        incr count);
  Engine.run engine;
  (* First at t=0, then every 0.1 s through t=2.0 inclusive. *)
  Alcotest.(check int) "packet count" 21 !count

let test_traffic_poisson_mean () =
  let engine = Engine.create () in
  let rng = Mvpn_sim.Rng.create 5 in
  let count = ref 0 in
  Traffic.poisson engine rng ~start:0.0 ~stop:100.0 ~rate_pps:50.0
    ~packet_bytes:512 (fun _ -> incr count);
  Engine.run engine;
  let expected = 5000 in
  Alcotest.(check bool) "within 10%" true
    (abs (!count - expected) < expected / 10)

let test_traffic_onoff_duty_cycle () =
  let engine = Engine.create () in
  let rng = Mvpn_sim.Rng.create 9 in
  let count = ref 0 in
  Traffic.onoff engine rng ~start:0.0 ~stop:200.0 ~on_mean:1.0 ~off_mean:1.0
    ~rate_bps:80_000.0 ~packet_bytes:1000 (fun _ -> incr count);
  Engine.run engine;
  (* 50% duty cycle of 10 pps over 200 s ~ 1000 packets. *)
  Alcotest.(check bool) "roughly half duty" true
    (!count > 600 && !count < 1400)

let test_traffic_pareto_bursts () =
  let engine = Engine.create () in
  let rng = Mvpn_sim.Rng.create 13 in
  let bytes = ref 0 in
  Traffic.pareto_bursts engine rng ~start:0.0 ~stop:50.0 ~burst_rate:2.0
    ~mean_burst_bytes:30_000.0 (fun size -> bytes := !bytes + size);
  Engine.run engine;
  (* ~100 bursts of ~30 kB each; heavy tail makes this loose. *)
  Alcotest.(check bool) "volume plausible" true
    (!bytes > 1_000_000 && !bytes < 30_000_000)

let test_traffic_sender_and_sink () =
  let engine, _topo, net, ids =
    let topo = Topology.create () in
    let ids = Topology.line topo 2 ~bandwidth:1e6 ~delay:0.001 in
    let engine = Engine.create () in
    (engine, topo, Network.create engine topo, ids)
  in
  Fib.add (Network.fib net ids.(0)) Prefix.default
    { Fib.next_hop = ids.(1); cost = 1; source = Fib.Static };
  Fib.add (Network.fib net ids.(1)) Prefix.default
    { Fib.next_hop = Fib.local_delivery; cost = 0; source = Fib.Connected };
  let registry = Traffic.registry engine in
  Network.set_sink net ids.(1) (Traffic.sink registry);
  let c = Traffic.collector registry "test" in
  let flow = Flow.make (ip "10.0.0.1") (ip "10.1.0.1") in
  let emit =
    Traffic.sender registry ~net ~src_node:ids.(0) ~flow ~dscp:Dscp.ef
      ~collector:c ()
  in
  Traffic.cbr engine ~start:0.0 ~stop:1.0 ~rate_bps:80_000.0
    ~packet_bytes:1000 emit;
  Engine.run engine;
  let r = Traffic.report registry "test" in
  Alcotest.(check int) "all sent" 11 r.Sla.sent;
  Alcotest.(check int) "all received" 11 r.Sla.received;
  Alcotest.(check bool) "delay includes serialization" true
    (r.Sla.mean_delay > 0.001)

(* --- Scenario ---------------------------------------------------------------- *)

let test_scenario_mpls_qos_protects_voice () =
  let build policy =
    let sc =
      Scenario.build ~pops:6 ~vpns:1 ~sites_per_vpn:4
        (Scenario.Mpls_deployment { policy; use_te = false })
    in
    let a = Scenario.site sc ~vpn:1 ~idx:0 in
    let b = Scenario.site sc ~vpn:1 ~idx:1 in
    Scenario.add_mixed_workload ~load:1.2 sc ~pairs:[(a, b)] ~duration:20.0;
    Scenario.run sc ~duration:25.0;
    Scenario.class_report sc "voice"
  in
  let be = build Qos_mapping.Best_effort in
  let ds = build (Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched) in
  Alcotest.(check bool) "voice sent under both" true
    (be.Sla.sent > 50 && ds.Sla.sent > 50);
  (* Under overload, DiffServ must beat best effort for EF delay. *)
  Alcotest.(check bool)
    (Printf.sprintf "diffserv delay %.4f < best effort %.4f" ds.Sla.mean_delay
       be.Sla.mean_delay)
    true
    (ds.Sla.mean_delay < be.Sla.mean_delay)

let test_scenario_overlay_deployment_runs () =
  let sc =
    Scenario.build ~pops:6 ~vpns:1 ~sites_per_vpn:2
      (Scenario.Overlay_deployment
         { policy = Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched;
           cipher = Crypto.Des; copy_tos = true })
  in
  let a = Scenario.site sc ~vpn:1 ~idx:0 in
  let b = Scenario.site sc ~vpn:1 ~idx:1 in
  Scenario.add_mixed_workload ~load:0.5 sc ~pairs:[(a, b)] ~duration:10.0;
  Scenario.run sc ~duration:12.0;
  List.iter
    (fun (label, (r : Sla.report)) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s delivered through the overlay" label)
         true
         (r.Sla.sent > 0 && r.Sla.received > 0))
    (Scenario.class_reports sc);
  (match Scenario.overlay sc with
   | Some o ->
     Alcotest.(check int) "one circuit" 1 (Overlay.vc_count o)
   | None -> Alcotest.fail "overlay expected")

let test_scenario_isolation_under_load () =
  let sc =
    Scenario.build ~pops:6 ~vpns:2 ~sites_per_vpn:2
      (Scenario.Mpls_deployment
         { policy = Qos_mapping.Best_effort; use_te = false })
  in
  let a1 = Scenario.site sc ~vpn:1 ~idx:0 in
  let b1 = Scenario.site sc ~vpn:1 ~idx:1 in
  let a2 = Scenario.site sc ~vpn:2 ~idx:0 in
  let b2 = Scenario.site sc ~vpn:2 ~idx:1 in
  Scenario.add_mixed_workload ~load:0.5 sc
    ~pairs:[(a1, b1); (a2, b2)] ~duration:10.0;
  Scenario.run sc ~duration:15.0;
  (* Every class delivered most traffic; nothing leaked (leaks would
     show as vrf-no-route drops or misdelivery, and sinks check vpn). *)
  List.iter
    (fun (label, r) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s mostly delivered (loss %.3f)" label r.Sla.loss)
         true
         (r.Sla.sent > 0 && r.Sla.loss < 0.2))
    (Scenario.class_reports sc)

(* --- L2vpn (pseudowires) -------------------------------------------------------- *)

let l2_setup () =
  let bb = Backbone.build ~pops:6 ~chords:[] () in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let l2 = L2vpn.deploy ~net ~backbone:bb in
  (bb, engine, net, l2)

let test_l2vpn_pw_end_to_end () =
  let bb, engine, _net, l2 = l2_setup () in
  let pops = Backbone.pops bb in
  let got_b = ref [] and got_a = ref [] in
  let pw =
    match
      L2vpn.create_pw l2
        ~a:{ L2vpn.pe = pops.(0); on_deliver = (fun p -> got_a := p :: !got_a) }
        ~b:{ L2vpn.pe = pops.(3); on_deliver = (fun p -> got_b := p :: !got_b) }
    with
    | Ok id -> id
    | Error e -> Alcotest.fail e
  in
  let payload () =
    Packet.make ~size:500 ~now:(Engine.now engine)
      (Flow.make (ip "192.168.0.1") (ip "192.168.0.2"))
  in
  let p1 = payload () in
  let original_size = p1.Packet.size in
  L2vpn.send l2 ~pw ~from_a:true p1;
  L2vpn.send l2 ~pw ~from_a:true (payload ());
  L2vpn.send l2 ~pw ~from_a:false (payload ());
  Engine.run engine;
  Alcotest.(check int) "a->b frames" 2 (List.length !got_b);
  Alcotest.(check int) "b->a frames" 1 (List.length !got_a);
  Alcotest.(check int) "delivered counter" 3 (L2vpn.delivered l2 ~pw);
  Alcotest.(check int) "no misorder" 0 (L2vpn.misordered l2 ~pw);
  (* Payload is opaque and restored: size and addresses untouched. *)
  let d = List.nth (List.rev !got_b) 0 in
  Alcotest.(check int) "size restored" original_size d.Packet.size;
  Alcotest.(check bool) "no labels left" true (Packet.top_label d = None)

let test_l2vpn_local_switching () =
  let bb, engine, _net, l2 = l2_setup () in
  let pops = Backbone.pops bb in
  let got = ref 0 in
  let pw =
    match
      L2vpn.create_pw l2
        ~a:{ L2vpn.pe = pops.(1); on_deliver = (fun _ -> ()) }
        ~b:{ L2vpn.pe = pops.(1); on_deliver = (fun _ -> incr got) }
    with
    | Ok id -> id
    | Error e -> Alcotest.fail e
  in
  L2vpn.send l2 ~pw ~from_a:true
    (Packet.make ~size:100 ~now:0.0
       (Flow.make (ip "192.168.0.1") (ip "192.168.0.2")));
  Engine.run engine;
  Alcotest.(check int) "locally switched" 1 !got

let test_l2vpn_coexists_with_l3vpn () =
  (* An L3 VPN and a pseudowire share the same backbone, PEs and label
     space; both must work. *)
  let bb = Backbone.build ~pops:4 ~chords:[] () in
  let s1 =
    Backbone.attach_site bb ~id:1 ~name:"s1" ~vpn:1
      ~prefix:(pfx "10.0.0.0/16") ~pop:0
  in
  let s2 =
    Backbone.attach_site bb ~id:2 ~name:"s2" ~vpn:1
      ~prefix:(pfx "10.1.0.0/16") ~pop:2
  in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let _l3 = Mpls_vpn.deploy ~net ~backbone:bb ~sites:[s1; s2] () in
  let l2 = L2vpn.deploy ~net ~backbone:bb in
  let pops = Backbone.pops bb in
  let l3_got = ref 0 and l2_got = ref 0 in
  Network.set_sink net s2.Site.ce_node (fun _ -> incr l3_got);
  let pw =
    match
      L2vpn.create_pw l2
        ~a:{ L2vpn.pe = pops.(1); on_deliver = (fun _ -> ()) }
        ~b:{ L2vpn.pe = pops.(3); on_deliver = (fun _ -> incr l2_got) }
    with
    | Ok id -> id
    | Error e -> Alcotest.fail e
  in
  Network.inject net s1.Site.ce_node
    (Packet.make ~vpn:1 ~now:0.0
       (Flow.make (Prefix.nth_host s1.Site.prefix 1)
          (Prefix.nth_host s2.Site.prefix 1)));
  L2vpn.send l2 ~pw ~from_a:true
    (Packet.make ~size:400 ~now:0.0
       (Flow.make (ip "192.168.9.1") (ip "192.168.9.2")));
  Engine.run engine;
  Alcotest.(check int) "l3 delivery" 1 !l3_got;
  Alcotest.(check int) "l2 delivery" 1 !l2_got;
  Alcotest.(check int) "no drops" 0 (Network.drops net)

let test_l2vpn_frame_relay_interworking () =
  (* A frame relay PVC carried across the MPLS backbone: the frame's
     DLCI and DE bit survive untouched. *)
  let bb, engine, _net, l2 = l2_setup () in
  let pops = Backbone.pops bb in
  let module Frame = Mvpn_frelay.Frame in
  let carried : (int, Frame.t) Hashtbl.t = Hashtbl.create 8 in
  let received = ref [] in
  let pw =
    match
      L2vpn.create_pw l2
        ~a:{ L2vpn.pe = pops.(0); on_deliver = (fun _ -> ()) }
        ~b:
          { L2vpn.pe = pops.(2);
            on_deliver =
              (fun p ->
                 match Hashtbl.find_opt carried p.Packet.uid with
                 | Some frame -> received := frame :: !received
                 | None -> Alcotest.fail "unknown payload") }
    with
    | Ok id -> id
    | Error e -> Alcotest.fail e
  in
  let frame = Frame.make ~dlci:100 ~payload:800 in
  frame.Frame.de <- true;
  let p =
    Packet.make ~size:(Frame.wire_bytes frame) ~now:0.0
      (Flow.make (ip "192.168.0.1") (ip "192.168.0.2"))
  in
  Hashtbl.replace carried p.Packet.uid frame;
  L2vpn.send l2 ~pw ~from_a:true p;
  Engine.run engine;
  (match !received with
   | [f] ->
     Alcotest.(check int) "dlci preserved" 100 f.Frame.dlci;
     Alcotest.(check bool) "de bit preserved" true f.Frame.de
   | _ -> Alcotest.fail "frame did not cross the backbone")

(* --- Accounting --------------------------------------------------------------- *)

let test_accounting_usage_and_invoice () =
  let acct = Accounting.create () in
  let record vpn dscp size =
    Accounting.observe acct
      (Packet.make ~vpn ~dscp ~size ~now:0.0
         (Flow.make (ip "10.0.0.1") (ip "10.1.0.1")))
  in
  (* VPN 1: 2 EF packets and 1 bulk; VPN 2: 1 AF-hi. *)
  record 1 Dscp.ef 200;
  record 1 Dscp.ef 200;
  record 1 Dscp.best_effort 1500;
  record 2 (Dscp.af 3 1) 512;
  let u = Accounting.usage acct in
  Alcotest.(check int) "three usage cells" 3 (List.length u);
  let ef1 = List.hd u in
  Alcotest.(check int) "vpn" 1 ef1.Accounting.vpn;
  Alcotest.(check int) "band" 0 ef1.Accounting.band;
  Alcotest.(check int) "packets" 2 ef1.Accounting.packets;
  Alcotest.(check int) "bytes" 400 ef1.Accounting.bytes;
  let lines1, total1 = Accounting.invoice acct ~vpn:1 in
  Alcotest.(check int) "vpn1 lines" 2 (List.length lines1);
  (* 400 B of EF at 8/GB + 1500 B of BE at 0.5/GB. *)
  let expected = (400.0 /. 1e9 *. 8.0) +. (1500.0 /. 1e9 *. 0.5) in
  Alcotest.(check (float 1e-12)) "vpn1 total" expected total1;
  let _, total2 = Accounting.invoice acct ~vpn:2 in
  Alcotest.(check (float 1e-12)) "vpn2 total" (512.0 /. 1e9 *. 4.0) total2;
  let _, total3 = Accounting.invoice acct ~vpn:3 in
  Alcotest.(check (float 1e-12)) "unknown vpn bills zero" 0.0 total3

let test_accounting_wrapped_sink () =
  let acct = Accounting.create () in
  let inner_hits = ref 0 in
  let sink = Accounting.sink acct (fun _ -> incr inner_hits) in
  sink
    (Packet.make ~vpn:5 ~size:100 ~now:0.0
       (Flow.make (ip "10.0.0.1") (ip "10.1.0.1")));
  Alcotest.(check int) "inner sink still runs" 1 !inner_hits;
  Alcotest.(check int) "accounted" 1 (List.length (Accounting.usage acct))

(* --- Planning ------------------------------------------------------------------ *)

let planning_topo () =
  (* Diamond: 0-1-3 short, 0-2-3 long, all 10 Mb/s. *)
  let t = Topology.create () in
  let n = Array.init 4 (fun _ -> Topology.add_node t) in
  ignore (Topology.connect t n.(0) n.(1) ~bandwidth:10e6 ~delay:0.001);
  ignore (Topology.connect t n.(1) n.(3) ~bandwidth:10e6 ~delay:0.001);
  ignore (Topology.connect ~cost:2 t n.(0) n.(2) ~bandwidth:10e6 ~delay:0.001);
  ignore (Topology.connect ~cost:2 t n.(2) n.(3) ~bandwidth:10e6 ~delay:0.001);
  (t, n)

let test_planning_spf_overload () =
  let t, n = planning_topo () in
  let demands =
    List.init 3 (fun _ -> { Planning.src = n.(0); dst = n.(3); bandwidth = 6e6 })
  in
  let p = Planning.route_spf t demands in
  Alcotest.(check int) "all routed" 3 (Planning.routed p);
  (* All 18 Mb/s pile on the 10 Mb/s short path. *)
  Alcotest.(check (float 1e-9)) "max util 180%" 1.8 (Planning.max_utilization p);
  Alcotest.(check int) "two hot links" 2
    (List.length (Planning.hot_links p));
  match Planning.upgrades_needed p with
  | (_, excess) :: _ ->
    Alcotest.(check (float 1e-9)) "upgrade size" 8e6 excess
  | [] -> Alcotest.fail "expected upgrades"

let test_planning_capacity_aware_spreads () =
  let t, n = planning_topo () in
  let demands =
    List.init 3 (fun _ -> { Planning.src = n.(0); dst = n.(3); bandwidth = 6e6 })
  in
  let p = Planning.route_capacity_aware t demands in
  (* First takes the short path; second must detour; third fits nowhere. *)
  Alcotest.(check int) "routed" 2 (Planning.routed p);
  Alcotest.(check int) "unrouted" 1 (Planning.unrouted p);
  Alcotest.(check bool) "nothing overloaded" true
    (Planning.max_utilization p <= 1.0);
  Alcotest.(check int) "no upgrades" 0
    (List.length (Planning.upgrades_needed p))

let test_planning_ecmp_splits_ties () =
  (* Diamond with equal costs both ways: ECMP halves the demand. *)
  let t = Topology.create () in
  let n = Array.init 4 (fun _ -> Topology.add_node t) in
  ignore (Topology.connect t n.(0) n.(1) ~bandwidth:10e6 ~delay:0.001);
  ignore (Topology.connect t n.(1) n.(3) ~bandwidth:10e6 ~delay:0.001);
  ignore (Topology.connect t n.(0) n.(2) ~bandwidth:10e6 ~delay:0.001);
  ignore (Topology.connect t n.(2) n.(3) ~bandwidth:10e6 ~delay:0.001);
  let p =
    Planning.route_ecmp t
      [{ Planning.src = n.(0); dst = n.(3); bandwidth = 8e6 }]
  in
  Alcotest.(check int) "routed" 1 (Planning.routed p);
  (match Topology.find_link t n.(0) n.(1) with
   | Some l ->
     Alcotest.(check (float 1e-6)) "half on the top path" 4e6
       (Planning.link_load p l)
   | None -> Alcotest.fail "link missing");
  (match Topology.find_link t n.(0) n.(2) with
   | Some l ->
     Alcotest.(check (float 1e-6)) "half on the bottom path" 4e6
       (Planning.link_load p l)
   | None -> Alcotest.fail "link missing");
  (* Against the single-path SPF placement, max utilization halves. *)
  let spf =
    Planning.route_spf t
      [{ Planning.src = n.(0); dst = n.(3); bandwidth = 8e6 }]
  in
  Alcotest.(check bool) "ecmp flattens the peak" true
    (Planning.max_utilization p < Planning.max_utilization spf)

let test_planning_ecmp_conserves_flow () =
  (* On an asymmetric diamond (one side longer), ECMP degenerates to
     the single shortest path and carries the full demand. *)
  let t, n = planning_topo () in
  let p =
    Planning.route_ecmp t
      [{ Planning.src = n.(0); dst = n.(3); bandwidth = 6e6 }]
  in
  match Topology.find_link t n.(0) n.(1), Topology.find_link t n.(0) n.(2) with
  | Some short, Some long ->
    Alcotest.(check (float 1e-6)) "all on the short path" 6e6
      (Planning.link_load p short);
    Alcotest.(check (float 1e-6)) "nothing on the long path" 0.0
      (Planning.link_load p long)
  | _ -> Alcotest.fail "links missing"

let test_monitor_sampling () =
  let topo = Topology.create () in
  let ids = Topology.line topo 2 ~bandwidth:1e6 ~delay:0.001 in
  let engine = Engine.create () in
  let net = Network.create engine topo in
  Fib.add (Network.fib net ids.(0)) Prefix.default
    { Fib.next_hop = ids.(1); cost = 1; source = Fib.Static };
  Fib.add (Network.fib net ids.(1)) Prefix.default
    { Fib.next_hop = Fib.local_delivery; cost = 0; source = Fib.Connected };
  Network.set_sink net ids.(1) (fun _ -> ());
  let link =
    match Topology.find_link topo ids.(0) ids.(1) with
    | Some l -> l
    | None -> Alcotest.fail "link missing"
  in
  let mon =
    Monitor.start ~interval:1.0 net ~link_ids:[link.Topology.id]
  in
  (* 0.5 Mb/s over a 1 Mb/s link for 10 s: utilization ~50%. *)
  let registry = Traffic.registry engine in
  let emit =
    Traffic.sender registry ~net ~src_node:ids.(0)
      ~flow:(Flow.make (ip "10.0.0.1") (ip "10.1.0.1"))
      ~dscp:Dscp.best_effort
      ~collector:(Traffic.collector registry "x")
      ()
  in
  Traffic.cbr engine ~start:0.0 ~stop:10.0 ~rate_bps:500_000.0
    ~packet_bytes:1000 emit;
  Engine.run ~until:10.0 engine;
  Monitor.stop mon;
  let series = Monitor.utilization_series mon ~link_id:link.Topology.id in
  Alcotest.(check int) "ten samples" 10
    (Mvpn_sim.Stats.Timeseries.length series);
  let peak =
    match Monitor.peak_utilization mon with
    | (_, u) :: _ -> u
    | [] -> 0.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "peak near 50%% (got %.3f)" peak)
    true
    (peak > 0.4 && peak < 0.6)

let test_planning_unreachable_demand () =
  let t = Topology.create () in
  let a = Topology.add_node t and b = Topology.add_node t in
  let p =
    Planning.route_spf t [{ Planning.src = a; dst = b; bandwidth = 1e6 }]
  in
  Alcotest.(check int) "unrouted" 1 (Planning.unrouted p)

(* Failure churn: fail any single ring link of a 2-connected backbone,
   reconverge, and every intra-VPN pair must still deliver. *)
let failure_churn_property =
  QCheck.Test.make ~name:"any single core failure survives reconvergence"
    ~count:12 QCheck.(int_range 0 5)
    (fun failed_ring_link ->
       let bb = Backbone.build ~pops:6 ~chords:[(0, 3)] () in
       let sites =
         List.init 4 (fun i ->
             Backbone.attach_site bb ~id:i ~name:(Printf.sprintf "s%d" i)
               ~vpn:1
               ~prefix:(Prefix.make (Ipv4.of_octets 10 i 0 0) 16)
               ~pop:(i + 1))
       in
       let engine = Engine.create () in
       let net = Network.create engine (Backbone.topology bb) in
       let vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites () in
       let delivered = ref 0 in
       List.iter
         (fun (s : Site.t) ->
            Network.set_sink net s.Site.ce_node (fun _ -> incr delivered))
         sites;
       (* Fail one ring link, reconverge, probe all ordered pairs. *)
       let pops = Backbone.pops bb in
       Topology.set_duplex_state (Backbone.topology bb)
         pops.(failed_ring_link)
         pops.((failed_ring_link + 1) mod 6)
         false;
       ignore (Mpls_vpn.reconverge vpn);
       let expected = ref 0 in
       List.iter
         (fun (a : Site.t) ->
            List.iter
              (fun (b : Site.t) ->
                 if a.Site.id <> b.Site.id then begin
                   incr expected;
                   Network.inject net a.Site.ce_node
                     (Packet.make ~vpn:1 ~now:(Engine.now engine)
                        (Flow.make
                           (Prefix.nth_host a.Site.prefix 1)
                           (Prefix.nth_host b.Site.prefix 1)))
                 end)
              sites)
         sites;
       Engine.run engine;
       !delivered = !expected)

(* --- Determinism ------------------------------------------------------------ *)

let test_simulation_determinism () =
  (* Two identically seeded runs must agree bit for bit — the property
     every experiment's reproducibility rests on. *)
  let run () =
    let sc =
      Scenario.build ~pops:6 ~vpns:1 ~sites_per_vpn:4 ~seed:99
        (Scenario.Mpls_deployment
           { policy = Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched;
             use_te = false })
    in
    let pairs =
      [ (Scenario.site sc ~vpn:1 ~idx:0, Scenario.site sc ~vpn:1 ~idx:1) ]
    in
    Scenario.add_mixed_workload ~load:1.0 ~rng_seed:5 sc ~pairs
      ~duration:10.0;
    Scenario.run sc ~duration:12.0;
    List.map
      (fun (label, (r : Sla.report)) ->
         (label, r.Sla.sent, r.Sla.received, r.Sla.mean_delay,
          r.Sla.p99_delay))
      (Scenario.class_reports sc)
  in
  Packet.reset_uid_counter ();
  let first = run () in
  Packet.reset_uid_counter ();
  let second = run () in
  Alcotest.(check int) "same class count" (List.length first)
    (List.length second);
  List.iter2
    (fun (l1, s1, r1, m1, p1) (l2, s2, r2, m2, p2) ->
       Alcotest.(check string) "label" l1 l2;
       Alcotest.(check int) "sent" s1 s2;
       Alcotest.(check int) "received" r1 r2;
       Alcotest.(check (float 0.0)) "mean delay bitwise" m1 m2;
       Alcotest.(check (float 0.0)) "p99 bitwise" p1 p2)
    first second

(* --- SLA conformance (spans, SLOs, events) ------------------------------ *)

module T = Mvpn_telemetry

(* Every conformance test runs against the process-global registry. *)
let wrap_telemetry f () =
  T.Registry.reset ();
  T.Control.disable ();
  Fun.protect ~finally:(fun () ->
      T.Registry.reset ();
      T.Control.disable ())
    f

let test_monitor_until_horizon () =
  let topo = Topology.create () in
  let ids = Topology.line topo 2 ~bandwidth:1e6 ~delay:0.001 in
  let engine = Engine.create () in
  let net = Network.create engine topo in
  Fib.add (Network.fib net ids.(0)) Prefix.default
    { Fib.next_hop = ids.(1); cost = 1; source = Fib.Static };
  Fib.add (Network.fib net ids.(1)) Prefix.default
    { Fib.next_hop = Fib.local_delivery; cost = 0; source = Fib.Connected };
  Network.set_sink net ids.(1) (fun _ -> ());
  let link =
    match Topology.find_link topo ids.(0) ids.(1) with
    | Some l -> l
    | None -> Alcotest.fail "link missing"
  in
  Alcotest.check_raises "negative horizon refused"
    (Invalid_argument "Monitor.start: until must be non-negative")
    (fun () ->
       ignore (Monitor.start ~until:(-1.0) net ~link_ids:[link.Topology.id]));
  let mon =
    Monitor.start ~interval:1.0 ~until:5.0 net
      ~link_ids:[link.Topology.id]
  in
  let registry = Traffic.registry engine in
  let emit =
    Traffic.sender registry ~net ~src_node:ids.(0)
      ~flow:(Flow.make (ip "10.0.0.1") (ip "10.1.0.1"))
      ~dscp:Dscp.best_effort
      ~collector:(Traffic.collector registry "x")
      ()
  in
  Traffic.cbr engine ~start:0.0 ~stop:3.0 ~rate_bps:100_000.0
    ~packet_bytes:1000 emit;
  (* The regression: a bare run (no [~until], no [stop]) must drain —
     the sampler used to re-arm itself forever. *)
  Engine.run engine;
  let series = Monitor.utilization_series mon ~link_id:link.Topology.id in
  let n = Mvpn_sim.Stats.Timeseries.length series in
  Alcotest.(check bool)
    (Printf.sprintf "sampling stopped at the horizon (%d samples)" n)
    true
    (n >= 4 && n <= 6)

let test_accounting_gauges_match_usage () =
  let acct = Accounting.create () in
  let record vpn dscp size =
    Accounting.observe acct
      (Packet.make ~vpn ~dscp ~size ~now:0.0
         (Flow.make (ip "10.0.0.1") (ip "10.1.0.1")))
  in
  T.Control.with_enabled (fun () ->
      record 1 Dscp.ef 200;
      record 1 Dscp.ef 200;
      record 1 Dscp.best_effort 1500;
      record 2 (Dscp.af 3 1) 512);
  (* The registry view and the usage view must agree cell by cell. *)
  let usage = Accounting.usage acct in
  Alcotest.(check int) "three cells" 3 (List.length usage);
  List.iter
    (fun (u : Accounting.usage) ->
       let gauge suffix =
         T.Gauge.value
           (T.Registry.gauge
              (Printf.sprintf "acct.vpn%d.band%d.%s" u.Accounting.vpn
                 u.Accounting.band suffix))
       in
       Alcotest.(check (float 1e-9))
         (Printf.sprintf "vpn%d band%d packets" u.Accounting.vpn
            u.Accounting.band)
         (float_of_int u.Accounting.packets)
         (gauge "packets");
       Alcotest.(check (float 1e-9))
         (Printf.sprintf "vpn%d band%d bytes" u.Accounting.vpn
            u.Accounting.band)
         (float_of_int u.Accounting.bytes)
         (gauge "bytes"))
    usage

let test_span_attributes_delivery () =
  let e = build_e2e () in
  let s11 = site_by_id e 11 and s12 = site_by_id e 12 in
  let delivered_at = ref nan in
  Network.set_sink e.net s12.Site.ce_node (fun _ ->
      delivered_at := Engine.now e.engine);
  let p =
    Packet.make ~vpn:1 ~dscp:Dscp.ef ~now:(Engine.now e.engine)
      (Flow.make
         (Prefix.nth_host s11.Site.prefix 1)
         (Prefix.nth_host s12.Site.prefix 1))
  in
  T.Control.with_enabled (fun () ->
      Network.inject e.net s11.Site.ce_node p;
      Engine.run e.engine);
  Alcotest.(check bool) "delivered" true (Float.is_finite !delivered_at);
  let events =
    T.Hop_trace.trace (T.Registry.trace ()) ~uid:p.Packet.uid
  in
  match T.Span.of_trace ~vpn:1 ~band:0 events with
  | None -> Alcotest.fail "span expected"
  | Some s ->
    Alcotest.(check string) "delivered outcome" "delivered"
      (T.Span.outcome_name s.T.Span.outcome);
    (* CE -> PE -> P -> PE -> CE: well more than three stages. *)
    Alcotest.(check bool)
      (Printf.sprintf "spans %d segments" (List.length s.T.Span.segments))
      true
      (List.length s.T.Span.segments >= 3);
    (* Contiguous segments attribute the packet's whole life: their
       dwells must sum to the independently-measured end-to-end delay
       (sink time minus creation time) within a microsecond. *)
    let e2e = !delivered_at -. p.Packet.created_at in
    let dwell_sum =
      List.fold_left
        (fun a (g : T.Span.segment) -> a +. g.T.Span.dwell)
        0.0 s.T.Span.segments
    in
    Alcotest.(check bool)
      (Printf.sprintf "dwells %.9f vs e2e %.9f" dwell_sum e2e)
      true
      (Float.abs (dwell_sum -. e2e) < 1e-6);
    Alcotest.(check bool) "transmission time attributed" true
      (T.Span.dwell_of_kind s T.Span.Transmission > 0.0)

let test_slo_sees_failure_and_repair () =
  let bb = Backbone.build ~pops:6 ~chords:[] () in
  let a =
    Backbone.attach_site bb ~id:1 ~name:"a" ~vpn:1
      ~prefix:(pfx "10.0.0.0/16") ~pop:0
  in
  let b =
    Backbone.attach_site bb ~id:2 ~name:"b" ~vpn:1
      ~prefix:(pfx "10.1.0.0/16") ~pop:2
  in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites:[a; b] () in
  let slo = T.Slo.create () in
  T.Slo.declare slo ~vpn:1 ~band:0 (Qos_mapping.default_objective 0);
  Network.set_slo net (Some slo);
  let registry = Traffic.registry engine in
  Network.set_sink net b.Site.ce_node (Traffic.sink registry);
  let emit =
    Traffic.sender registry ~net ~src_node:a.Site.ce_node
      ~flow:(Flow.make ~proto:Flow.Udp ~dst_port:5060 (Site.host a 1)
               (Site.host b 1))
      ~dscp:Dscp.ef ~vpn:1
      ~collector:(Traffic.collector registry "voice")
      ()
  in
  Traffic.cbr engine ~start:0.0 ~stop:30.0 ~rate_bps:80_000.0
    ~packet_bytes:200 emit;
  let pops = Backbone.pops bb in
  Engine.schedule_at engine ~time:5.0 (fun () ->
      Topology.set_duplex_state (Backbone.topology bb) pops.(0) pops.(1)
        false);
  Engine.schedule_at engine ~time:8.0 (fun () ->
      Topology.set_duplex_state (Backbone.topology bb) pops.(0) pops.(1)
        true;
      ignore (Mpls_vpn.reconverge vpn));
  T.Control.with_enabled (fun () ->
      Engine.run ~until:32.0 engine;
      T.Slo.advance slo ~time:(Engine.now engine));
  let events = T.Registry.events () in
  (* The outage must show up as at least one violation with a matching
     recovery on the same (vpn, band, dimension) after the repair. *)
  let violated = Hashtbl.create 8 and matched = ref 0 in
  T.Event_log.fold
    (fun () (entry : T.Event_log.entry) ->
       match entry.T.Event_log.event with
       | T.Event_log.Slo_violation { vpn; band; dimension; _ } ->
         Hashtbl.replace violated (vpn, band, dimension) ()
       | T.Event_log.Slo_recovered { vpn; band; dimension; _ } ->
         if Hashtbl.mem violated (vpn, band, dimension) then incr matched
       | _ -> ())
    events ();
  Alcotest.(check bool) "a violation fired" true
    (T.Event_log.count_kind events "slo_violation" >= 1);
  Alcotest.(check bool) "a matching recovery followed" true (!matched >= 1);
  (* Link events bracketed the outage. *)
  Alcotest.(check int) "link_down logged" 1
    (T.Event_log.count_kind events "link_down");
  Alcotest.(check int) "link_up logged" 1
    (T.Event_log.count_kind events "link_up")

(* Bounded residency: a million-event run with every observability
   channel armed — spans, hop trace, SLO windows and the timeline
   sampler's decimating rings — must leave the live heap bounded by the
   ring capacities, not the event count. An O(events) buffer anywhere
   in the telemetry path (the pre-ring Stats.Timeseries sampler had
   exactly that shape) blows the margin by an order of magnitude. *)
let test_bounded_residency () =
  T.Control.enable ();
  let sc =
    Scenario.build ~pops:16 ~vpns:4 ~sites_per_vpn:8 ~seed:11
      (Scenario.Mpls_deployment
         { policy = Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched;
           use_te = false })
  in
  ignore (Scenario.attach_slo sc);
  let _sampler = Sampler.start ~interval:1.0 ~until:45.0 sc in
  Scenario.add_mixed_workload ~load:0.9 sc ~pairs:(Scenario.default_pairs sc)
    ~duration:40.0;
  Gc.full_major ();
  let live0 = (Gc.stat ()).Gc.live_words in
  Scenario.run sc ~duration:45.0;
  let events = T.Registry.counter_value "sim.events" in
  Alcotest.(check bool)
    (Printf.sprintf "at least a million events (%d)" events)
    true
    (events >= 1_000_000);
  Gc.full_major ();
  let live1 = (Gc.stat ()).Gc.live_words in
  let delta = live1 - live0 in
  Alcotest.(check bool)
    (Printf.sprintf "live-heap growth bounded (%d words for %d events)"
       delta events)
    true
    (delta < 2_000_000)

(* Misconfigured observability must fail at config time, not silently
   schedule a tick at t = nan that never fires (nan <= 0.0 is false, so
   the old guard let it through). *)
let test_sampler_interval_validation () =
  let sc =
    Scenario.build ~pops:6 ~vpns:1 ~sites_per_vpn:2 ~seed:1
      (Scenario.Mpls_deployment
         { policy = Qos_mapping.Best_effort; use_te = false })
  in
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
    | exception Invalid_argument _ -> ()
  in
  List.iter
    (fun (name, bad) ->
       expect_invalid name (fun () ->
           ignore (Sampler.start ~interval:bad sc)))
    [ ("nan interval", Float.nan); ("zero interval", 0.0);
      ("negative interval", -0.5); ("infinite interval", infinity) ];
  expect_invalid "nan until" (fun () ->
      ignore (Sampler.start ~interval:1.0 ~until:Float.nan sc));
  expect_invalid "negative until" (fun () ->
      ignore (Sampler.start ~interval:1.0 ~until:(-3.0) sc));
  (* the boundary cases that must keep working *)
  ignore (Sampler.start ~interval:0.25 ~until:0.0 sc)

let test_diurnal_workload_validation () =
  let sc =
    Scenario.build ~pops:6 ~vpns:1 ~sites_per_vpn:2 ~seed:1
      (Scenario.Mpls_deployment
         { policy = Qos_mapping.Best_effort; use_te = false })
  in
  let pairs = Scenario.default_pairs sc in
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "zero segments" (fun () ->
      Scenario.add_diurnal_workload ~segments:0 sc ~pairs ~duration:10.0);
  expect_invalid "nan duration" (fun () ->
      Scenario.add_diurnal_workload sc ~pairs ~duration:Float.nan);
  expect_invalid "zero duration" (fun () ->
      Scenario.add_diurnal_workload sc ~pairs ~duration:0.0)

(* The diurnal envelope really modulates offered load: the off-peak
   half of the day must carry measurably less traffic than the peak
   half. *)
let test_diurnal_workload_modulates () =
  T.Control.enable ();
  Fun.protect ~finally:T.Control.disable @@ fun () ->
  T.Registry.reset ();
  let sc =
    Scenario.build ~pops:6 ~vpns:1 ~sites_per_vpn:2 ~seed:7
      (Scenario.Mpls_deployment
         { policy = Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched;
           use_te = false })
  in
  let sampler = Sampler.start ~interval:1.0 ~until:41.0 sc in
  ignore sampler;
  Scenario.add_diurnal_workload ~peak_load:0.9 ~floor_load:0.2 ~segments:4
    sc ~pairs:(Scenario.default_pairs sc) ~duration:40.0;
  Scenario.run sc ~duration:45.0;
  (* The raised cosine peaks mid-run (segments 1-2) and bottoms out at
     the edges (segments 0 and 3): total sampled link utilization in
     the peak half must clearly outweigh the off-peak half. *)
  let sum lo hi =
    List.fold_left
      (fun acc name ->
         if String.length name > 8 && String.sub name 0 8 = "ts.link." then
           match T.Registry.find_series name with
           | Some s ->
             Array.fold_left
               (fun acc (t, v) ->
                  if t >= lo && t < hi then acc +. v else acc)
               acc (T.Timeseries.samples s)
           | None -> acc
         else acc)
      0.0
      (T.Registry.names ())
  in
  let edges = sum 0.0 10.0 +. sum 30.0 40.0 in
  let core = sum 10.0 30.0 in
  Alcotest.(check bool)
    (Printf.sprintf "peak half outpaces off-peak (%.2f vs %.2f)" core edges)
    true
    (core > edges *. 1.5)

let () =
  Alcotest.run "core"
    [ ("membership",
       [ Alcotest.test_case "isolation" `Quick test_membership_isolation;
         Alcotest.test_case "join/leave" `Quick test_membership_join_leave;
         Alcotest.test_case "mechanism costs" `Quick
           test_membership_mechanism_costs;
         Alcotest.test_case "join_all message parity" `Quick
           test_membership_join_all_message_parity ]);
      ("vrf",
       [ Alcotest.test_case "overlapping isolation" `Quick
           test_vrf_overlapping_isolation ]);
      ("qos-mapping",
       [ Alcotest.test_case "bands" `Quick test_qos_bands;
         Alcotest.test_case "exp preferred" `Quick
           test_qos_band_of_packet_prefers_exp;
         Alcotest.test_case "mark exp" `Quick test_qos_mark_exp;
         Alcotest.test_case "encrypted lands in BE" `Quick
           test_qos_encrypted_tunnel_lands_in_be ]);
      ("network",
       [ Alcotest.test_case "ip forwarding" `Quick
           test_network_ip_forwarding;
         Alcotest.test_case "no route" `Quick test_network_no_route_drop;
         Alcotest.test_case "ttl" `Quick test_network_ttl_drop;
         Alcotest.test_case "interceptor" `Quick
           test_network_interceptor_consumes;
         Alcotest.test_case "label forwarding" `Quick
           test_network_label_forwarding ]);
      ("backbone",
       [ Alcotest.test_case "shape" `Quick test_backbone_shape ]);
      ("mpls-vpn",
       [ Alcotest.test_case "end to end" `Quick
           test_mvpn_end_to_end_delivery;
         Alcotest.test_case "isolation overlapping prefixes" `Quick
           test_mvpn_isolation_with_overlapping_prefixes;
         Alcotest.test_case "no cross-vpn route" `Quick
           test_mvpn_no_cross_vpn_route;
         Alcotest.test_case "hairpin same pe" `Quick
           test_mvpn_hairpin_same_pe;
         Alcotest.test_case "uses label switching" `Quick
           test_mvpn_uses_label_switching;
         Alcotest.test_case "linear growth" `Quick
           test_mvpn_metrics_linear_growth;
         Alcotest.test_case "remove site" `Quick test_mvpn_remove_site;
         Alcotest.test_case "reconverge after failure" `Quick
           test_mvpn_reconverge_after_failure;
         Alcotest.test_case "te tunnels" `Quick test_mvpn_te_tunnels;
         Alcotest.test_case "dscp to exp" `Quick
           test_mvpn_dscp_to_exp_mapping;
         Alcotest.test_case "multicast reaches group" `Quick
           test_mvpn_multicast_reaches_group;
         Alcotest.test_case "multicast keeps marking" `Quick
           test_mvpn_multicast_keeps_marking ]);
      ("overlay",
       [ Alcotest.test_case "end to end" `Quick test_overlay_end_to_end;
         Alcotest.test_case "tunnel counts" `Quick
           test_overlay_tunnel_counts;
         Alcotest.test_case "replay dropped" `Quick
           test_overlay_replay_dropped;
         Alcotest.test_case "crypto delays" `Quick
           test_overlay_crypto_delays_delivery;
         Alcotest.test_case "ike gates traffic" `Quick
           test_overlay_ike_gates_traffic;
         Alcotest.test_case "no cross-vpn tunnel" `Quick
           test_overlay_cross_vpn_has_no_tunnel ]);
      ("tracing",
       [ Alcotest.test_case "sequence" `Quick test_trace_sequence;
         Alcotest.test_case "drop reported" `Quick test_trace_drop_reported;
         QCheck_alcotest.to_alcotest isolation_property ]);
      ("interprovider",
       [ Alcotest.test_case "cross-carrier delivery" `Quick
           test_interprovider_cross_carrier_delivery;
         Alcotest.test_case "reverse direction" `Quick
           test_interprovider_reverse_direction;
         Alcotest.test_case "igp isolation" `Quick
           test_interprovider_igp_isolation;
         Alcotest.test_case "unknown prefix refused" `Quick
           test_interprovider_unknown_prefix_refused;
         Alcotest.test_case "intra-carrier stays native" `Quick
           test_interprovider_intra_carrier_still_native;
         Alcotest.test_case "multicast stays home" `Quick
           test_interprovider_multicast_stays_home ]);
      ("traffic",
       [ Alcotest.test_case "cbr count" `Quick test_traffic_cbr_count;
         Alcotest.test_case "poisson mean" `Quick test_traffic_poisson_mean;
         Alcotest.test_case "onoff duty" `Quick
           test_traffic_onoff_duty_cycle;
         Alcotest.test_case "pareto bursts" `Quick
           test_traffic_pareto_bursts;
         Alcotest.test_case "sender and sink" `Quick
           test_traffic_sender_and_sink ]);
      ("l2vpn",
       [ Alcotest.test_case "pseudowire end to end" `Quick
           test_l2vpn_pw_end_to_end;
         Alcotest.test_case "local switching" `Quick
           test_l2vpn_local_switching;
         Alcotest.test_case "coexists with l3 vpn" `Quick
           test_l2vpn_coexists_with_l3vpn;
         Alcotest.test_case "frame relay interworking" `Quick
           test_l2vpn_frame_relay_interworking ]);
      ("accounting",
       [ Alcotest.test_case "usage and invoice" `Quick
           test_accounting_usage_and_invoice;
         Alcotest.test_case "wrapped sink" `Quick
           test_accounting_wrapped_sink ]);
      ("planning",
       [ Alcotest.test_case "spf overload" `Quick test_planning_spf_overload;
         Alcotest.test_case "capacity aware spreads" `Quick
           test_planning_capacity_aware_spreads;
         Alcotest.test_case "ecmp splits ties" `Quick
           test_planning_ecmp_splits_ties;
         Alcotest.test_case "ecmp conserves flow" `Quick
           test_planning_ecmp_conserves_flow;
         Alcotest.test_case "unreachable demand" `Quick
           test_planning_unreachable_demand ]);
      ("monitor",
       [ Alcotest.test_case "sampling" `Quick test_monitor_sampling;
         Alcotest.test_case "until horizon" `Quick
           (wrap_telemetry test_monitor_until_horizon) ]);
      ("conformance",
       [ Alcotest.test_case "accounting gauges match usage" `Quick
           (wrap_telemetry test_accounting_gauges_match_usage);
         Alcotest.test_case "span attributes delivery" `Quick
           (wrap_telemetry test_span_attributes_delivery);
         Alcotest.test_case "slo sees failure and repair" `Quick
           (wrap_telemetry test_slo_sees_failure_and_repair) ]);
      ("scenario",
       [ Alcotest.test_case "qos protects voice" `Slow
           test_scenario_mpls_qos_protects_voice;
         Alcotest.test_case "isolation under load" `Slow
           test_scenario_isolation_under_load;
         Alcotest.test_case "overlay deployment" `Quick
           test_scenario_overlay_deployment_runs;
         Alcotest.test_case "bitwise determinism" `Quick
           test_simulation_determinism;
         Alcotest.test_case "bounded residency" `Slow
           (wrap_telemetry test_bounded_residency);
         Alcotest.test_case "sampler validates intervals" `Quick
           test_sampler_interval_validation;
         Alcotest.test_case "diurnal workload validates" `Quick
           test_diurnal_workload_validation;
         Alcotest.test_case "diurnal envelope modulates load" `Quick
           test_diurnal_workload_modulates;
         QCheck_alcotest.to_alcotest failure_churn_property ]) ]
