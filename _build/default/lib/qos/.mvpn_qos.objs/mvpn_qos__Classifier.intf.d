lib/qos/classifier.mli: Mvpn_net
