lib/qos/sla.mli: Format Mvpn_net
