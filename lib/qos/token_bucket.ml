let m_conform = Mvpn_telemetry.Registry.counter "token_bucket.conform"
let m_exceed = Mvpn_telemetry.Registry.counter "token_bucket.exceed"

type t = {
  rate_bytes_per_s : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let create ~rate_bps ~burst_bytes =
  if rate_bps <= 0.0 then invalid_arg "Token_bucket.create: rate must be positive";
  if burst_bytes <= 0.0 then
    invalid_arg "Token_bucket.create: burst must be positive";
  { rate_bytes_per_s = rate_bps /. 8.0; burst = burst_bytes;
    tokens = burst_bytes; last = 0.0 }

let rate_bps t = t.rate_bytes_per_s *. 8.0

let refill t ~now =
  if now > t.last then begin
    t.tokens <-
      Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate_bytes_per_s));
    t.last <- now
  end

let take t ~now ~bytes =
  refill t ~now;
  let need = float_of_int bytes in
  if t.tokens >= need then begin
    t.tokens <- t.tokens -. need;
    Mvpn_telemetry.Counter.incr m_conform;
    true
  end else begin
    Mvpn_telemetry.Counter.incr m_exceed;
    false
  end

let available t ~now =
  refill t ~now;
  t.tokens

let drain t ~now ~bytes =
  refill t ~now;
  t.tokens <- t.tokens -. float_of_int bytes
