lib/core/mpls_vpn.mli: Backbone Membership Mvpn_mpls Mvpn_net Mvpn_routing Network Site Vrf
