(** The overlay VPN baseline (§2): a full mesh of point-to-point
    tunnels between customer sites over plain IP routing.

    This is what the paper argues against: every pair of communicating
    sites needs its own virtual circuit — N(N−1)/2 of them — and when
    the tunnels are IPSec, encryption hides the inner headers from the
    provider's QoS machinery unless the ToS byte is copied out (§2.3).

    Each CE gets a globally routable /32 loopback which OSPF floods
    through the provider network; site-to-site traffic is encapsulated
    at the source CE (ESP with the configured cipher; [Null] models a
    frame-relay/GRE-style PVC with 24 bytes of overhead), carried by
    ordinary IP forwarding, and decapsulated at the destination CE. A
    single crypto engine per CE serializes encryption work, so DES/3DES
    processing is a genuine throughput bottleneck. *)

type t

val deploy :
  ?cipher:Mvpn_ipsec.Crypto.cipher ->
  ?copy_tos:bool ->
  ?ike:Mvpn_ipsec.Ike.params ->
  net:Network.t -> sites:Site.t list -> unit -> t
(** Builds the full tunnel mesh per VPN. [cipher] defaults to [Des],
    [copy_tos] to [false] (the paper's problem case). With [ike], each
    tunnel only carries traffic once its IKE exchange completes
    (phase 1 + phase 2 from deployment time); earlier packets are
    dropped as ["ike-pending"] — the turn-up cost §2.3's key-management
    machinery implies. *)

val tunnel_ready_at : t -> float
(** When the mesh finished keying (0 when deployed without [ike]). *)

val loopback_of_site : Site.t -> Mvpn_net.Prefix.t
(** The CE's provider-routable /32. *)

val add_site : t -> Site.t -> unit
(** Join: floods the new loopback and provisions tunnels to and from
    every existing member of the VPN — the O(N) per-join cost that
    makes overlay growth quadratic. *)

val tunnel_count : t -> int
(** Directional tunnels provisioned. *)

val vc_count : t -> int
(** Site-pair circuits (the paper's N(N−1)/2 count). *)

val replay_drops : t -> int
(** Packets the anti-replay windows rejected. *)

val ike_messages : t -> int
(** Handshake messages implied by the mesh (9 per directional-pair
    setup: 6 phase 1 + 3 phase 2). *)

(** Provisioning metrics, mirror of {!Mpls_vpn.state_metrics} where it
    makes sense. *)
type state_metrics = {
  sites : int;
  vpns : int;
  tunnels : int;
  vcs : int;
  control_messages : int;
  provisioning_touches : int;
      (** per-tunnel endpoint configurations: 2 per circuit *)
}

val metrics : t -> state_metrics

val inject_replayed_copy : t -> Site.t -> Site.t -> Mvpn_net.Packet.t -> bool
(** Test hook: re-present an already-delivered packet to the
    destination CE as an attacker would; [true] if a tunnel between the
    sites exists (the packet is then re-encapsulated with its original
    sequence and injected). *)
