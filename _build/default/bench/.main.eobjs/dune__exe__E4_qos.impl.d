bench/e4_qos.ml: Array List Mvpn_core Mvpn_qos Mvpn_sim Printf Qos_mapping Scenario Tables
