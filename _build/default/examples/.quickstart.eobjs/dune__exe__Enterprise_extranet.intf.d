examples/enterprise_extranet.mli:
