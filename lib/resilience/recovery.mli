(** Control-plane retry with exponential backoff and flap damping.

    Subscribes to {!Mvpn_sim.Topology.on_duplex_change}. Every link
    failure (and every repair) schedules one coalesced re-signal burst
    — the [repair] callback, typically {!Mvpn_core.Mpls_vpn.reconverge}
    plus an {!Frr.rearm} — after an exponential backoff
    ([base_delay ·2ᵃᵗᵗᵉᵐᵖᵗ], capped at [max_delay]) with deterministic
    seeded jitter, so repeated failures do not synchronize into
    re-signal storms. A burst whose [repair] reports everything
    restored resets the backoff; otherwise the next burst backs off
    further.

    Flap damping: a link that goes down [damp_threshold] times within
    [damp_window] seconds is damped — it stops triggering repair
    bursts, and while {e every} down link is damped, pending bursts are
    suppressed outright ([resilience.recovery.suppressed]). A damped
    link is released after holding up for [reuse_after] seconds, which
    re-arms repair. Typed events ([Flap_damped], [Flap_released],
    [Resignal]) and the [resilience.recovery.*] counters trace every
    decision. *)

type config = {
  base_delay : float;  (** first-retry delay, seconds (default 0.2) *)
  max_delay : float;  (** backoff ceiling (default 5.0) *)
  jitter : float;  (** ± fraction of the delay, in [0, 1) (default 0.25) *)
  damp_threshold : int;  (** flaps within the window that damp (5) *)
  damp_window : float;  (** seconds (default 2.0) *)
  reuse_after : float;  (** hold-up time before release (default 3.0) *)
}

val default_config : config

type t

val arm :
  ?config:config ->
  seed:int ->
  Mvpn_core.Network.t ->
  repair:(unit -> int * int) ->
  t
(** Subscribe to the network's topology. [repair] performs one
    re-signal burst and reports [(restored, still_down)]; a burst with
    [still_down = 0] resets the backoff. [seed] drives the jitter —
    equal seeds give equal retry timelines.
    @raise Invalid_argument on a nonsensical config. *)

val request : t -> unit
(** Ask for a repair burst outside any link transition — e.g. an LDP
    or BGP session loss that needs a refresh. Coalesces into a pending
    burst and obeys the backoff like any other trigger. *)

val damped : t -> int -> int -> bool
(** Is the duplex link (in either order) currently damped? *)

val damped_links : t -> (int * int) list
(** Currently damped duplex links, sorted. *)
