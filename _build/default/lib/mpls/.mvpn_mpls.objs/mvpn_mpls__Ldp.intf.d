lib/mpls/ldp.mli: Mvpn_net Mvpn_sim Plane
