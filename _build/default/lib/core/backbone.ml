module Topology = Mvpn_sim.Topology
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4

type t = {
  topo : Topology.t;
  pops : int array;
  loopback_octet : int;
  mutable sites_rev : Site.t list;
}

(* Express chords scale with the ring: one diameter plus two quarter
   offsets when the ring is big enough. *)
let default_chords pops =
  if pops < 5 then []
  else begin
    let candidates =
      [ (0, pops / 2);
        (pops / 4, (pops / 4) + (pops / 2));
        (pops / 6, (pops / 6) + (pops / 2)) ]
    in
    List.sort_uniq compare
      (List.filter
         (fun (a, b) ->
            a <> b && b < pops
            && abs (a - b) > 1
            && abs (a - b) < pops - 1)
         candidates)
  end

let build ?(pops = 12) ?(core_bandwidth = 45e6) ?(core_delay = 0.004)
    ?chords ?into ?(loopback_octet = 255) () =
  if loopback_octet < 0 || loopback_octet > 255 then
    invalid_arg "Backbone.build: loopback_octet outside 0-255";
  let chords =
    match chords with Some c -> c | None -> default_chords pops
  in
  let topo = match into with Some t -> t | None -> Topology.create () in
  let pop_ids =
    Topology.ring_with_chords topo pops ~chords ~bandwidth:core_bandwidth
      ~delay:core_delay
  in
  { topo; pops = pop_ids; loopback_octet; sites_rev = [] }

let topology t = t.topo

let pops t = t.pops

let pop_count t = Array.length t.pops

let check_pop t pop =
  if pop < 0 || pop >= Array.length t.pops then
    invalid_arg (Printf.sprintf "Backbone: unknown pop %d" pop)

let loopback t ~pop =
  check_pop t pop;
  Prefix.make (Ipv4.of_octets 172 31 t.loopback_octet pop) 32

let pop_of_node t node =
  let rec go i =
    if i >= Array.length t.pops then None
    else if t.pops.(i) = node then Some i
    else go (i + 1)
  in
  go 0

let attach_site ?(access_bandwidth = 2e6) ?(access_delay = 0.001) t ~id
    ~name ~vpn ~prefix ~pop =
  check_pop t pop;
  let ce = Topology.add_node ~name:(Printf.sprintf "ce-%s" name) t.topo in
  ignore
    (Topology.connect t.topo ce t.pops.(pop) ~bandwidth:access_bandwidth
       ~delay:access_delay);
  let site =
    Site.make ~id ~name ~vpn ~prefix ~ce_node:ce ~pe_node:t.pops.(pop)
  in
  t.sites_rev <- site :: t.sites_rev;
  site

let sites t = List.rev t.sites_rev
