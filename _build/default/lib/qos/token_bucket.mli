(** Token bucket: the primitive under every rate limiter, meter and
    shaper in the QoS plane.

    Tokens are bytes; they refill continuously at [rate_bps / 8] bytes
    per second up to [burst_bytes]. Time is supplied by the caller (the
    simulation clock), so buckets are deterministic. *)

type t

val create : rate_bps:float -> burst_bytes:float -> t
(** A full bucket. @raise Invalid_argument on non-positive rate or burst. *)

val rate_bps : t -> float

val take : t -> now:float -> bytes:int -> bool
(** [take b ~now ~bytes] refills to [now] then consumes [bytes] tokens
    if available, returning whether the packet conformed. Non-conforming
    packets consume nothing. *)

val available : t -> now:float -> float
(** Token balance (bytes) after refilling to [now]. *)

val drain : t -> now:float -> bytes:int -> unit
(** Consume unconditionally, allowing the balance to go negative — used
    by meters that overdraw a secondary bucket. *)
