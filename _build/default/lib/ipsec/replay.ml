type t = {
  window : int;
  mutable top : int;  (* highest accepted sequence number *)
  mutable bitmap : int;  (* bit i set = (top - i) seen; bit 0 is top *)
}

let create ?(window = 62) () =
  if window <= 0 || window > 62 then
    invalid_arg "Replay.create: window must be in 1..62";
  { window; top = 0; bitmap = 0 }

type verdict = Accepted | Duplicate | Too_old

let check t seq =
  if seq < 1 then invalid_arg "Replay.check: sequence numbers start at 1";
  if seq > t.top then begin
    let shift = seq - t.top in
    t.bitmap <- (if shift >= 63 then 0 else t.bitmap lsl shift) lor 1;
    t.top <- seq;
    Accepted
  end
  else begin
    let offset = t.top - seq in
    if offset >= t.window then Too_old
    else if t.bitmap land (1 lsl offset) <> 0 then Duplicate
    else begin
      t.bitmap <- t.bitmap lor (1 lsl offset);
      Accepted
    end
  end

let highest_seen t = t.top
