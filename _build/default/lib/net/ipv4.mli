(** IPv4 addresses.

    An address is an immutable 32-bit value carried in an OCaml [int]
    (always positive on 64-bit platforms, which this library assumes).
    Addresses order and compare as unsigned 32-bit integers. *)

type t = private int
(** An IPv4 address. The [private] row lets callers pattern-match and
    compare addresses cheaply while forcing construction through the
    smart constructors below, which guarantee the 32-bit range. *)

val of_int32_exn : int -> t
(** [of_int32_exn v] is the address with numeric value [v].
    @raise Invalid_argument if [v] is outside [0, 2^32-1]. *)

val to_int : t -> int
(** [to_int a] is the numeric value of [a] in [0, 2^32-1]. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d].
    @raise Invalid_argument if any octet is outside [0, 255]. *)

val to_octets : t -> int * int * int * int
(** [to_octets a] is the four dotted-quad octets of [a]. *)

val of_string : string -> (t, string) result
(** [of_string s] parses dotted-quad notation ["a.b.c.d"]. *)

val of_string_exn : string -> t
(** [of_string_exn s] is [of_string s].
    @raise Invalid_argument on a parse error. *)

val to_string : t -> string
(** [to_string a] is the dotted-quad rendering of [a]. *)

val pp : Format.formatter -> t -> unit
(** [pp ppf a] prints [a] in dotted-quad notation. *)

val compare : t -> t -> int
(** Unsigned 32-bit order. *)

val equal : t -> t -> bool

val hash : t -> int

val succ : t -> t
(** [succ a] is the next address, wrapping from 255.255.255.255 to 0.0.0.0. *)

val add : t -> int -> t
(** [add a n] offsets [a] by [n], modulo 2^32. *)

val is_multicast : t -> bool
(** [true] for class-D addresses (224.0.0.0/4) — group destinations. *)

val any : t
(** 0.0.0.0 *)

val broadcast : t
(** 255.255.255.255 *)

val localhost : t
(** 127.0.0.1 *)
