module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Rng = Mvpn_sim.Rng
module Network = Mvpn_core.Network
module Scenario = Mvpn_core.Scenario
module Backbone = Mvpn_core.Backbone
module Mpls_vpn = Mvpn_core.Mpls_vpn
module Site = Mvpn_core.Site
module Qos_mapping = Mvpn_core.Qos_mapping
module Port = Mvpn_qos.Port
module Telemetry = Mvpn_telemetry

type t = {
  sc : Scenario.t;
  vpn : Mpls_vpn.t;
  frr : Frr.t option;
  recovery : Recovery.t;
  plan : Chaos.plan;
  seed : int;
  duration : float;
}

let scenario t = t.sc
let plan t = t.plan
let frr t = t.frr
let recovery t = t.recovery

let down_duplex net =
  List.length
    (List.filter
       (fun (l : Topology.link) ->
          (not l.Topology.up) && l.Topology.src < l.Topology.dst)
       (Topology.links (Network.topology net)))

(* Arm the full resilience stack plus a seeded fault plan on an
   existing scenario. The repair burst is the real one: reconverge the
   whole control plane, then re-plumb bypasses against the surviving
   graph. [restored] is the number of duplex links that came back
   since the previous burst; [still_down] drives the backoff. *)
let arm ?(events = 12) ?plan:plan_override ?recovery_config ~frr:frr_on
    ~fallback ~seed ~duration sc =
  let net = Scenario.network sc in
  let vpn =
    match Scenario.mpls sc with
    | Some v -> v
    | None -> invalid_arg "Harness.arm: scenario has no MPLS deployment"
  in
  Mpls_vpn.set_ip_fallback vpn fallback;
  let core = Scenario.core_links sc in
  let directed = core @ List.map (fun (a, b) -> (b, a)) core in
  let frr = if frr_on then Some (Frr.arm ~links:directed net) else None in
  let prev_down = ref 0 in
  let repair () =
    ignore (Mpls_vpn.reconverge vpn);
    (match frr with Some f -> Frr.rearm f | None -> ());
    let d = down_duplex net in
    let restored = max 0 (!prev_down - d) in
    prev_down := d;
    (restored, d)
  in
  let recovery =
    Recovery.arm ?config:recovery_config ~seed:((seed * 7) + 1) net ~repair
  in
  let plan =
    match plan_override with
    | Some p -> p
    | None ->
      let rng = Rng.create seed in
      let nodes = Array.to_list (Backbone.pops (Scenario.backbone sc)) in
      Chaos.random_plan ~events ~nodes ~rng ~links:core ~duration ()
  in
  Chaos.schedule net plan;
  (* A session drop flips no link, so the duplex hook never sees it:
     arm the LDP refresh explicitly. Scheduled after the wipe (same
     time, later insertion), it coalesces into the normal backoff. *)
  List.iter
    (function
      | Chaos.Session_drop { at; _ } ->
        Engine.schedule_at
          (Network.engine net)
          ~time:at
          (fun () -> Recovery.request recovery)
      | _ -> ())
    plan;
  { sc; vpn; frr; recovery; plan; seed; duration }

let default_pairs sc =
  let sites = Scenario.sites sc in
  let pairs = ref [] in
  Array.iteri
    (fun i a ->
       if i mod 2 = 0 && i + 1 < Array.length sites then
         pairs := (a, sites.(i + 1)) :: !pairs)
    sites;
  !pairs

let build ?(pops = 12) ?(vpns = 2) ?(sites_per_vpn = 4) ?events
    ?recovery_config ?(load = 0.5) ~frr ~fallback ~seed ~duration () =
  let sc =
    Scenario.build ~pops ~vpns ~sites_per_vpn ~seed
      (Scenario.Mpls_deployment
         { policy = Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched;
           use_te = false })
  in
  let t = arm ?events ?recovery_config ~frr ~fallback ~seed ~duration sc in
  Scenario.add_mixed_workload ~load sc ~pairs:(default_pairs sc) ~duration;
  t

let run t = Scenario.run t.sc ~duration:(t.duration +. 5.0)

(* --- summary ------------------------------------------------------------ *)

type port_totals = {
  port_offered : int;
  port_queue : int;
  port_link_down : int;
  port_fault : int;
}

let port_totals t =
  let net = Scenario.network t.sc in
  List.fold_left
    (fun acc (l : Topology.link) ->
       let c = Port.counters (Network.port net ~link_id:l.Topology.id) in
       { port_offered = acc.port_offered + c.Port.offered;
         port_queue = acc.port_queue + c.Port.dropped_queue;
         port_link_down = acc.port_link_down + c.Port.dropped_link_down;
         port_fault = acc.port_fault + c.Port.dropped_fault })
    { port_offered = 0; port_queue = 0; port_link_down = 0; port_fault = 0 }
    (Topology.links (Network.topology (Scenario.network t.sc)))

let resilience_counters =
  [ "resilience.chaos.faults"; "resilience.frr.switched";
    "resilience.frr.unprotected"; "resilience.frr.protected_links";
    "resilience.frr.unprotected_links"; "resilience.fallback.packets";
    "resilience.fallback.engaged"; "resilience.fallback.restored";
    "resilience.recovery.resignal"; "resilience.recovery.suppressed";
    "resilience.recovery.damped"; "resilience.recovery.released";
    "rsvp.reroute.attempt"; "rsvp.reroute.skipped" ]

let event_kinds =
  [ "fault_injected"; "link_down"; "link_up"; "frr_switchover";
    "fallback_engaged"; "lsp_restored"; "flap_damped"; "flap_released";
    "resignal" ]

let summary_json t =
  let b = Buffer.create 4096 in
  let net = Scenario.network t.sc in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%d,\"seed\":%d,\"duration\":%.6f,\"frr\":%b,"
       Telemetry.Registry.schema_version t.seed
       t.duration (t.frr <> None));
  Buffer.add_string b
    (Printf.sprintf "\"fallback\":%b," (Mpls_vpn.ip_fallback t.vpn));
  Buffer.add_string b "\"plan\":[";
  Buffer.add_string b
    (String.concat "," (List.map Chaos.fault_json t.plan));
  Buffer.add_string b "],";
  Buffer.add_string b
    (Printf.sprintf "\"delivered\":%d,"
       (Telemetry.Registry.counter_value "net.delivered"));
  let p = port_totals t in
  Buffer.add_string b
    (Printf.sprintf
       "\"port\":{\"offered\":%d,\"queue_drops\":%d,\
        \"link_down_drops\":%d,\"fault_drops\":%d},"
       p.port_offered p.port_queue p.port_link_down p.port_fault);
  Buffer.add_string b "\"drops\":{";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun (reason, n) -> Printf.sprintf "%S:%d" reason n)
          (Network.drop_counts net)));
  Buffer.add_string b "},\"counters\":{";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun name ->
             Printf.sprintf "%S:%d" name
               (Telemetry.Registry.counter_value name))
          resilience_counters));
  Buffer.add_string b "},\"events\":{";
  let events = Telemetry.Registry.events () in
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun kind ->
             Printf.sprintf "%S:%d" kind
               (Telemetry.Event_log.count_kind events kind))
          event_kinds));
  Buffer.add_string b "}}";
  Buffer.contents b

let pp_summary ppf t =
  let p = port_totals t in
  let net = Scenario.network t.sc in
  Format.fprintf ppf "chaos plan (seed %d, %d faults):@." t.seed
    (List.length t.plan);
  List.iter (fun f -> Format.fprintf ppf "  %a@." Chaos.pp_fault f) t.plan;
  Format.fprintf ppf "@.fates:@.";
  Format.fprintf ppf "  delivered        %d@."
    (Telemetry.Registry.counter_value "net.delivered");
  List.iter
    (fun (reason, n) -> Format.fprintf ppf "  drop %-12s %d@." reason n)
    (Network.drop_counts net);
  Format.fprintf ppf
    "  port: queue %d, link-down %d, fault %d (of %d offered)@."
    p.port_queue p.port_link_down p.port_fault p.port_offered;
  Format.fprintf ppf "@.resilience:@.";
  List.iter
    (fun name ->
       Format.fprintf ppf "  %-36s %d@." name
         (Telemetry.Registry.counter_value name))
    resilience_counters;
  (match t.frr with
   | Some f ->
     let s = Frr.stats f in
     Format.fprintf ppf "  bypasses: %d protected, %d unprotected@."
       s.Frr.protected_links s.Frr.unprotected_links
   | None -> Format.fprintf ppf "  fast reroute disarmed@.");
  Format.fprintf ppf "  damped links now: %s@."
    (match Recovery.damped_links t.recovery with
     | [] -> "none"
     | l ->
       String.concat ", "
         (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) l))
