examples/multi_carrier.mli:
