module Topology = Mvpn_sim.Topology

type t = {
  shards : int;
  owner : int array;
  cut : Mvpn_sim.Topology.link list;
}

(* The unit of assignment is a *cluster*: a hint group (all nodes
   sharing one hint value) or a single hintless node. Clusters get
   dense ids in order of their lowest member node, so the whole
   procedure is a pure function of (topology, hint, shards). *)

let compute ?hint topo ~shards =
  if shards < 1 then invalid_arg "Partition.compute: shards < 1";
  let n = Topology.node_count topo in
  if n = 0 then { shards = 1; owner = [||]; cut = [] }
  else begin
    let hint = match hint with Some h -> h | None -> fun _ -> None in
    (* Cluster nodes. *)
    let by_hint : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let cluster = Array.make n (-1) in
    let n_clusters = ref 0 in
    for v = 0 to n - 1 do
      match hint v with
      | None ->
        cluster.(v) <- !n_clusters;
        incr n_clusters
      | Some r ->
        (match Hashtbl.find_opt by_hint r with
         | Some c -> cluster.(v) <- c
         | None ->
           Hashtbl.add by_hint r !n_clusters;
           cluster.(v) <- !n_clusters;
           incr n_clusters)
    done;
    let nc = !n_clusters in
    (* Cluster weights (node counts) and adjacency (link multiplicity
       between distinct clusters). *)
    let weight = Array.make nc 0 in
    for v = 0 to n - 1 do
      weight.(cluster.(v)) <- weight.(cluster.(v)) + 1
    done;
    let adj : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (l : Topology.link) ->
         let a = cluster.(l.Topology.src) and b = cluster.(l.Topology.dst) in
         if a <> b then
           Hashtbl.replace adj (a, b)
             (1 + Option.value ~default:0 (Hashtbl.find_opt adj (a, b))))
      (Topology.links topo);
    let neighbors = Array.make nc [] in
    Hashtbl.iter (fun (a, b) w -> neighbors.(a) <- (b, w) :: neighbors.(a)) adj;
    Array.iteri
      (fun c l ->
         neighbors.(c) <- List.sort (fun (a, _) (b, _) -> compare a b) l)
      neighbors;
    let k = max 1 (min shards nc) in
    let assign = Array.make nc (-1) in
    if k >= nc then
      (* One shard per cluster — nothing to grow. *)
      for c = 0 to nc - 1 do assign.(c) <- c done
    else begin
      (* Farthest-first seeds over the cluster graph (hop distance).
         Unreachable clusters sort first, so every component gets a
         seed before any component gets two. *)
      let seeds = Array.make k 0 in
      let dist = Array.make nc max_int in
      let bfs_from src =
        let q = Queue.create () in
        if dist.(src) > 0 then begin
          dist.(src) <- 0;
          Queue.push src q
        end;
        while not (Queue.is_empty q) do
          let c = Queue.pop q in
          List.iter
            (fun (d, _) ->
               if dist.(d) > dist.(c) + 1 then begin
                 dist.(d) <- dist.(c) + 1;
                 Queue.push d q
               end)
            neighbors.(c)
        done
      in
      seeds.(0) <- 0;
      bfs_from 0;
      for s = 1 to k - 1 do
        let best = ref 0 and best_d = ref (-1) in
        for c = 0 to nc - 1 do
          if dist.(c) > !best_d then begin
            best := c;
            best_d := dist.(c)
          end
        done;
        seeds.(s) <- !best;
        bfs_from !best
      done;
      (* Balanced multi-source growth: the lightest shard extends its
         BFS frontier first, so shards end up weight-balanced while
         staying connected within each component. *)
      let frontier = Array.init k (fun _ -> Queue.create ()) in
      let load = Array.make k 0 in
      Array.iteri (fun s c -> Queue.push c frontier.(s)) seeds;
      let rec grow () =
        let pick = ref (-1) in
        for s = k - 1 downto 0 do
          if not (Queue.is_empty frontier.(s))
          && (!pick < 0 || load.(s) <= load.(!pick)) then
            pick := s
        done;
        if !pick >= 0 then begin
          let s = !pick in
          let c = Queue.pop frontier.(s) in
          if assign.(c) < 0 then begin
            assign.(c) <- s;
            load.(s) <- load.(s) + weight.(c);
            List.iter
              (fun (d, _) -> if assign.(d) < 0 then Queue.push d frontier.(s))
              neighbors.(c)
          end;
          grow ()
        end
      in
      grow ();
      (* Clusters no frontier reached (isolated nodes, stray
         components beyond the seed count) join the lightest shard. *)
      for c = 0 to nc - 1 do
        if assign.(c) < 0 then begin
          let s = ref 0 in
          for t = 1 to k - 1 do
            if load.(t) < load.(!s) then s := t
          done;
          assign.(c) <- !s;
          load.(!s) <- load.(!s) + weight.(c)
        end
      done;
      (* Boundary refinement: move a cluster to a neighboring shard
         when that strictly reduces the number of cut links, without
         emptying its shard or overloading the target. *)
      let max_load = max 1 ((n * 13) / (10 * k) + 1) in
      let members = Array.make k 0 in
      Array.iter (fun s -> members.(s) <- members.(s) + 1) assign;
      for _pass = 1 to 2 do
        for c = 0 to nc - 1 do
          let a = assign.(c) in
          if members.(a) > 1 then begin
            let gain_to = Array.make k 0 in
            List.iter
              (fun (d, w) -> gain_to.(assign.(d)) <- gain_to.(assign.(d)) + w)
              neighbors.(c);
            let best = ref a in
            for s = 0 to k - 1 do
              if s <> a
              && gain_to.(s) > gain_to.(!best)
              && load.(s) + weight.(c) <= max_load then
                best := s
            done;
            if !best <> a then begin
              assign.(c) <- !best;
              load.(a) <- load.(a) - weight.(c);
              load.(!best) <- load.(!best) + weight.(c);
              members.(a) <- members.(a) - 1;
              members.(!best) <- members.(!best) + 1
            end
          end
        done
      done
    end;
    let owner = Array.init n (fun v -> assign.(cluster.(v))) in
    let cut =
      List.filter
        (fun (l : Topology.link) ->
           owner.(l.Topology.src) <> owner.(l.Topology.dst))
        (List.sort
           (fun (a : Topology.link) (b : Topology.link) ->
              compare a.Topology.id b.Topology.id)
           (Topology.links topo))
    in
    { shards = k; owner; cut }
  end

let sizes t =
  let s = Array.make t.shards 0 in
  Array.iter (fun o -> s.(o) <- s.(o) + 1) t.owner;
  s

let owner_of t v =
  if v < 0 || v >= Array.length t.owner then
    invalid_arg (Printf.sprintf "Partition.owner_of: unknown node %d" v);
  t.owner.(v)
