(** Process-wide metric registry.

    Instrumented modules create metrics by name at load time
    ([Registry.counter "lfib.swap"]) and keep the returned handle;
    look-ups after creation are never on the hot path. Exports render
    every registered metric sorted by name, as JSON or pretty text,
    together with the tail of the global {!Hop_trace} ring.

    Domain-safety: the name→handle table is shared (mutex-guarded
    registration), metric values are per-domain cells, and the trace /
    event rings are per-domain. Every read or reset acts on the calling
    domain's partials; a parallel harness takes {!snapshot} inside each
    worker domain and folds the results into the coordinating domain
    with {!absorb}. *)

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t
  | Series of Timeseries.t

val schema_version : int
(** Version of the JSON export layout, emitted as a top-level
    ["schema"] member by {!to_json} (and by the CLI JSON envelopes
    built around it). Bumped on incompatible shape changes so
    downstream consumers can detect format drift. *)

val counter : string -> Counter.t
(** Get or create. @raise Invalid_argument if the name is registered
    with a different metric kind. *)

val gauge : string -> Gauge.t

val histogram : ?lo:float -> ?buckets:int -> string -> Histogram.t
(** [lo]/[buckets] apply only on first creation. *)

val series :
  ?capacity:int -> ?scope:Timeseries.scope -> string -> Timeseries.t
(** Bounded time series (see {!Timeseries}); [capacity]/[scope] apply
    only on first creation. *)

val trace : unit -> Hop_trace.t
(** The calling domain's hop-trace ring buffer. *)

val events : unit -> Event_log.t
(** The calling domain's structured event log (SLO transitions, link
    flaps, recompiles). Cleared by {!reset}; exported by {!to_json}. *)

val find : string -> metric option

val find_counter : string -> Counter.t option

val find_gauge : string -> Gauge.t option

val find_histogram : string -> Histogram.t option

val find_series : string -> Timeseries.t option

val counter_value : string -> int
(** 0 when absent — convenient for report code. *)

val names : unit -> string list
(** Sorted metric names. *)

val cardinal : unit -> int

val reset : unit -> unit
(** Zero every metric and clear the hop trace and event log, keeping
    registrations (instrumented modules hold direct handles). *)

type snapshot

val snapshot : unit -> snapshot
(** Capture every registered metric's current value. The hop trace and
    event log are forensic rings tied to one run and are not captured. *)

val restore : snapshot -> unit
(** Write the captured values back, unconditionally (a harness
    operation like {!reset}, regardless of {!Control}). Metrics
    registered after the snapshot keep their current values — so
    [snapshot]/[reset]/work/[restore] brackets let a harness run an
    isolated section without losing metrics accumulated before it. *)

val absorb : snapshot -> unit
(** Merge the snapshot into the calling domain's cells: counters and
    gauges add, histograms merge bucket-wise (associative and
    commutative, so shard partials fold in any order into one
    deterministic total). Unconditional, like {!restore}. *)

val snapshot_counter : snapshot -> string -> int
(** The counter value captured in the snapshot; 0 when absent. *)

val to_json : ?trace_events:int -> ?event_entries:int -> unit -> string
(** One JSON object: [{"schema":1,"counters":{...},"gauges":{...},
    "histograms":{...},"series":{...},"trace":[...],"events":[...]}].
    Each series renders as [{"scope":"sim"|"host","level":L,
    "samples":[[time,value],...]}]. [trace_events] bounds the trace
    tail (default 64); [event_entries] bounds the event tail
    (default 256). *)

val pp : ?trace_events:int -> Format.formatter -> unit -> unit
(** Pretty-printed dump; [trace_events] > 0 appends the trace tail. *)
