bench/main.mli:
