bench/e11_intserv.ml: Array Backbone List Mvpn_core Mvpn_net Mvpn_qos Mvpn_sim Qos_mapping Tables
