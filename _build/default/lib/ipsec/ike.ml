type params = {
  rtt : float;
  dh_compute : float;
  sa_lifetime : float;
}

let default_params ~rtt = { rtt; dh_compute = 0.020; sa_lifetime = 3600.0 }

let phase1_delay p = (3.0 *. p.rtt) +. (2.0 *. p.dh_compute)

let phase2_delay p = (1.5 *. p.rtt) +. p.dh_compute

let initial_setup_delay p = phase1_delay p +. phase2_delay p

type t = {
  params : params;
  established : float;  (* completion of the initial phase 2 *)
  base_key : int64;
}

let create params ~now =
  { params;
    established = now +. initial_setup_delay params;
    base_key = 0x0123456789ABCDEFL }

let ready_at t = t.established

let rekeys_before t ~now =
  if now <= t.established then 0
  else int_of_float ((now -. t.established) /. t.params.sa_lifetime)

let key_at t ~now =
  if now < t.established then
    invalid_arg "Ike.key_at: tunnel not yet established";
  let epoch = rekeys_before t ~now in
  Int64.add t.base_key (Int64.mul (Int64.of_int epoch) 0x2545F4914F6CDD1DL)
