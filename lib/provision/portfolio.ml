module Rng = Mvpn_sim.Rng

type dist = Pareto | Uniform

let dist_name = function Pareto -> "pareto" | Uniform -> "uniform"

type t = {
  seed : int;
  pe_count : int;
  dist : dist;
  customers : Service.customer array;
}

let tiers = [| Service.Gold; Service.Silver; Service.Bronze |]

(* Customer [id] is a pure function of (seed, id): one indexed
   substream per customer, parent never advanced — iteration order
   cannot perturb any draw. *)
let generate_customer ?(dist = Pareto) ?(pe_count = 12) ?(max_sites = 512)
    ~seed ~id () =
  let rng = Rng.split (Rng.create seed) id in
  let topology =
    let x = Rng.uniform rng in
    if x < 0.60 then Service.Any_to_any
    else if x < 0.90 then Service.Hub_spoke
    else
      (* Extranets are small partnerships: the group id is an id
         neighborhood, so expected partners per group stay O(1) no
         matter how large the portfolio grows — C1 linearity is a
         property of the service mix, not just the protocol. *)
      Service.Extranet (id / 16)
  in
  let tier = tiers.(Rng.int rng 3) in
  let n =
    match dist with
    | Pareto ->
      (* Mean ~11 sites after the cap: most customers are tiny, the
         tail is fat. *)
      max 3 (min max_sites (int_of_float (Rng.pareto rng ~shape:1.4 ~scale:4.0)))
    | Uniform -> Rng.int_in rng 2 8
  in
  let sites =
    List.init n (fun sid ->
        { Service.sid; pe = Rng.int rng pe_count;
          role = Service.default_role topology ~sid })
  in
  { Service.id; name = Printf.sprintf "cust-%04d" id; topology; tier; sites }

let generate ?(dist = Pareto) ?(pe_count = 12) ?(max_sites = 512) ~seed
    ~customers () =
  if customers < 1 then
    invalid_arg "Portfolio.generate: need at least one customer";
  if pe_count < 1 || pe_count > 64 then
    invalid_arg "Portfolio.generate: pe_count must be in [1, 64]";
  { seed; pe_count; dist;
    customers =
      Array.init customers (fun i ->
          generate_customer ~dist ~pe_count ~max_sites ~seed ~id:(i + 1) ()) }

let of_customers ?(dist = Pareto) ~pe_count ~seed customers =
  List.iteri
    (fun i (c : Service.customer) ->
       if c.Service.id <> i + 1 then
         invalid_arg
           (Printf.sprintf
              "Portfolio.of_customers: customer at index %d has id %d" i
              c.Service.id))
    customers;
  { seed; pe_count; dist; customers = Array.of_list customers }

let site_count t =
  Array.fold_left
    (fun acc (c : Service.customer) -> acc + List.length c.Service.sites)
    0 t.customers

let customer t id =
  if id < 1 || id > Array.length t.customers then
    invalid_arg (Printf.sprintf "Portfolio.customer: unknown customer %d" id);
  t.customers.(id - 1)

let overlay_circuits t =
  Array.fold_left
    (fun acc (c : Service.customer) ->
       let s = List.length c.Service.sites in
       acc + (s * (s - 1) / 2))
    0 t.customers

type op =
  | Add_site of { customer : int; sid : int; pe : int }
  | Remove_site of { customer : int; sid : int }
  | Change_tier of { customer : int; tier : Service.tier }

let op_name = function
  | Add_site _ -> "add-site"
  | Remove_site _ -> "remove-site"
  | Change_tier _ -> "change-tier"

let apply t op =
  let customers = Array.copy t.customers in
  let patch id f =
    if id < 1 || id > Array.length customers then
      invalid_arg (Printf.sprintf "Portfolio.apply: unknown customer %d" id);
    customers.(id - 1) <- f customers.(id - 1)
  in
  (match op with
   | Change_tier { customer; tier } ->
     patch customer (fun c -> { c with Service.tier })
   | Add_site { customer; sid; pe } ->
     patch customer (fun c ->
         if List.exists (fun s -> s.Service.sid = sid) c.Service.sites then
           invalid_arg
             (Printf.sprintf "Portfolio.apply: duplicate site %d.%d" customer
                sid);
         let role = Service.default_role c.Service.topology ~sid in
         { c with
           Service.sites = c.Service.sites @ [{ Service.sid; pe; role }] })
   | Remove_site { customer; sid } ->
     patch customer (fun c ->
         if not (List.exists (fun s -> s.Service.sid = sid) c.Service.sites)
         then
           invalid_arg
             (Printf.sprintf "Portfolio.apply: no site %d.%d" customer sid);
         { c with
           Service.sites =
             List.filter (fun s -> s.Service.sid <> sid) c.Service.sites }));
  { t with customers }

let apply_all t ops = List.fold_left apply t ops

(* Op [k] draws only from substream [k]; the evolving portfolio it
   validates against is itself a pure replay — so the whole sequence
   is a function of (portfolio, seed, ops), nothing else. *)
let churn t ~seed ~ops =
  let root = Rng.create seed in
  let cur = ref t in
  List.init ops (fun k ->
      let rng = Rng.split root (k + 1) in
      let p = !cur in
      let c = p.customers.(Rng.int rng (Array.length p.customers)) in
      let n = List.length c.Service.sites in
      let x = Rng.uniform rng in
      let op =
        if x < 0.25 then
          Change_tier { customer = c.Service.id; tier = tiers.(Rng.int rng 3) }
        else if x < 0.55 && n > 1 then
          let victim = List.nth c.Service.sites (Rng.int rng n) in
          Remove_site { customer = c.Service.id; sid = victim.Service.sid }
        else
          let sid =
            1
            + List.fold_left
                (fun m s -> max m s.Service.sid)
                (-1) c.Service.sites
          in
          Add_site { customer = c.Service.id; sid; pe = Rng.int rng p.pe_count }
      in
      cur := apply p op;
      op)
