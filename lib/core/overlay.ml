module Topology = Mvpn_sim.Topology
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Fib = Mvpn_net.Fib
module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow
module Radix = Mvpn_net.Radix
module Ospf = Mvpn_routing.Ospf
module Crypto = Mvpn_ipsec.Crypto
module Tunnel = Mvpn_ipsec.Tunnel

type t = {
  net : Network.t;
  cipher : Crypto.cipher;
  copy_tos : bool;
  ready_at : float;  (* IKE completion time; 0 = pre-keyed *)
  ospf : Ospf.t;
  mutable sites : Site.t list;  (* reverse join order *)
  (* Per-CE overlay routing: remote site prefix -> outbound tunnel. *)
  overlay_routes : (int, (Site.t * Tunnel.t) Radix.t) Hashtbl.t;
  (* Inbound demux at a CE: (outer src, outer dst) -> tunnel. *)
  rx_tunnels : (int * int, Tunnel.t) Hashtbl.t;
  (* (src site, dst site) -> tunnel, for tests and accounting. *)
  tunnels : (int * int, Tunnel.t) Hashtbl.t;
  (* One crypto engine per CE: time it next becomes free. *)
  crypto_free : (int, float ref) Hashtbl.t;
  mutable touches : int;
}

let loopback_of_site (site : Site.t) =
  Prefix.make
    (Ipv4.of_octets 198 18 (site.Site.id lsr 8) (site.Site.id land 0xFF))
    32

let loopback_addr site = Prefix.network (loopback_of_site site)

let refresh_fibs t =
  let topo = Network.topology t.net in
  for node = 0 to Topology.node_count topo - 1 do
    ignore (Fib.clear_source (Network.fib t.net node) Fib.Igp);
    Network.install_fib t.net node (Ospf.fib t.ospf node)
  done

(* Occupy the CE's crypto engine for [cost] seconds starting no earlier
   than now; run [k] when the work completes. *)
let with_crypto t ce ~cost k =
  let engine = Network.engine t.net in
  let free =
    match Hashtbl.find_opt t.crypto_free ce with
    | Some r -> r
    | None ->
      let r = ref 0.0 in
      Hashtbl.replace t.crypto_free ce r;
      r
  in
  let now = Engine.now engine in
  let start = Float.max now !free in
  let done_at = start +. cost in
  free := done_at;
  Engine.schedule engine ~delay:(done_at -. now) k

let ce_interceptor t (site : Site.t) ~from packet =
  ignore from;
  let me = loopback_addr site in
  if Packet.has_outer packet then begin
    let outer = Packet.outer_header packet in
    if Ipv4.equal outer.Packet.dst me then
      (* Inbound tunnel endpoint. *)
      match
        Hashtbl.find_opt t.rx_tunnels
          (Ipv4.to_int outer.Packet.src, Ipv4.to_int outer.Packet.dst)
      with
      | None ->
        Network.drop_packet t.net "unknown-tunnel";
        Network.Consumed
      | Some tunnel ->
        (match Tunnel.decapsulate tunnel packet with
         | Tunnel.Decapsulated cost ->
           with_crypto t site.Site.ce_node ~cost (fun () ->
               Network.forward_ip t.net site.Site.ce_node packet);
           Network.Consumed
         | Tunnel.Replayed ->
           Network.drop_packet t.net "replay";
           Network.Consumed
         | Tunnel.Not_ours ->
           Network.drop_packet t.net "unknown-tunnel";
           Network.Consumed)
    else Network.Continue
  end
  else
    (* Outbound: does the destination live behind a tunnel? *)
    let dst = packet.Packet.inner.Packet.dst in
    if Prefix.mem dst site.Site.prefix then Network.Continue
    else begin
      match Hashtbl.find_opt t.overlay_routes site.Site.ce_node with
      | None -> Network.Continue
      | Some table ->
        (match Radix.lookup_value table dst with
         | None -> Network.Continue
         | Some (_, tunnel) ->
           if Engine.now (Network.engine t.net) < t.ready_at then begin
             Network.drop_packet t.net "ike-pending";
             Network.Consumed
           end
           else begin
             let cost = Tunnel.encapsulate tunnel packet in
             with_crypto t site.Site.ce_node ~cost (fun () ->
                 Network.forward_ip t.net site.Site.ce_node packet);
             Network.Consumed
           end)
    end

let overlay_table t ce =
  match Hashtbl.find_opt t.overlay_routes ce with
  | Some table -> table
  | None ->
    let table = Radix.create () in
    Hashtbl.replace t.overlay_routes ce table;
    table

let connect_pair t (a : Site.t) (b : Site.t) =
  if not (Hashtbl.mem t.tunnels (a.Site.id, b.Site.id)) then begin
    let tunnel =
      Tunnel.create ~copy_tos:t.copy_tos ~cipher:t.cipher
        ~local:(loopback_addr a) ~remote:(loopback_addr b)
        ~key:(Int64.of_int ((a.Site.id * 65536) + b.Site.id))
        ()
    in
    Hashtbl.replace t.tunnels (a.Site.id, b.Site.id) tunnel;
    Radix.add (overlay_table t a.Site.ce_node) b.Site.prefix (b, tunnel);
    Hashtbl.replace t.rx_tunnels
      (Ipv4.to_int (loopback_addr a), Ipv4.to_int (loopback_addr b))
      tunnel;
    t.touches <- t.touches + 1
  end

let provision_ce t (site : Site.t) =
  Ospf.attach_prefix t.ospf site.Site.ce_node (loopback_of_site site);
  let ce_fib = Network.fib t.net site.Site.ce_node in
  Fib.add ce_fib site.Site.prefix
    { Fib.next_hop = Fib.local_delivery; cost = 0; source = Fib.Connected };
  Fib.add ce_fib (loopback_of_site site)
    { Fib.next_hop = Fib.local_delivery; cost = 0; source = Fib.Connected };
  Dataplane.set_interceptor (Network.dataplane t.net) site.Site.ce_node
    (ce_interceptor t site)

let add_site t site =
  provision_ce t site;
  ignore (Ospf.converge t.ospf);
  refresh_fibs t;
  let peers =
    List.filter (fun (s : Site.t) -> s.Site.vpn = site.Site.vpn) t.sites
  in
  List.iter
    (fun peer ->
       connect_pair t site peer;
       connect_pair t peer site)
    peers;
  t.sites <- site :: t.sites

let deploy ?(cipher = Crypto.Des) ?(copy_tos = false) ?ike ~net ~sites () =
  let ready_at =
    match ike with
    | Some params ->
      Engine.now (Network.engine net)
      +. Mvpn_ipsec.Ike.initial_setup_delay params
    | None -> 0.0
  in
  let t =
    { net; cipher; copy_tos; ready_at;
      ospf = Ospf.create (Network.topology net);
      sites = []; overlay_routes = Hashtbl.create 16;
      rx_tunnels = Hashtbl.create 64; tunnels = Hashtbl.create 64;
      crypto_free = Hashtbl.create 16; touches = 0 }
  in
  (* Provision all CEs first, then converge the IGP once. *)
  List.iter (fun site -> provision_ce t site) sites;
  ignore (Ospf.converge t.ospf);
  refresh_fibs t;
  List.iter
    (fun site ->
       let peers =
         List.filter (fun (s : Site.t) -> s.Site.vpn = site.Site.vpn) t.sites
       in
       List.iter
         (fun peer ->
            connect_pair t site peer;
            connect_pair t peer site)
         peers;
       t.sites <- site :: t.sites)
    sites;
  t

let tunnel_ready_at t = t.ready_at

let tunnel_count t = Hashtbl.length t.tunnels

let vc_count t = Hashtbl.length t.tunnels / 2

let replay_drops t =
  Hashtbl.fold (fun _ tn acc -> acc + Tunnel.replay_drops tn) t.tunnels 0

let ike_messages t = 9 * Hashtbl.length t.tunnels / 2
(* One IKE exchange (6 phase-1 + 3 phase-2 messages) secures both
   directions of a pair. *)

type state_metrics = {
  sites : int;
  vpns : int;
  tunnels : int;
  vcs : int;
  control_messages : int;
  provisioning_touches : int;
}

let metrics (t : t) =
  { sites = List.length t.sites;
    vpns =
      List.length
        (List.sort_uniq Int.compare
           (List.map (fun (s : Site.t) -> s.Site.vpn) t.sites));
    tunnels = tunnel_count t;
    vcs = vc_count t;
    control_messages = ike_messages t;
    provisioning_touches = t.touches }

let inject_replayed_copy (t : t) (a : Site.t) (b : Site.t) packet =
  match Hashtbl.find_opt t.tunnels (a.Site.id, b.Site.id) with
  | None -> false
  | Some _ ->
    (* Re-wrap the packet exactly as the original tunnel did; the
       uid→seq table still holds its old sequence number, so the
       replica presents a replayed sequence. *)
    Packet.encapsulate packet ~src:(loopback_addr a) ~dst:(loopback_addr b)
      ~proto:Flow.Esp
      ~overhead:(Mvpn_ipsec.Esp.overhead t.cipher ~payload:packet.Packet.size)
      ~copy_tos:t.copy_tos;
    packet.Packet.encrypted <- t.cipher <> Crypto.Null;
    Network.inject t.net b.Site.ce_node packet;
    true
