module Mpbgp = Mvpn_routing.Mpbgp
module Membership = Mvpn_core.Membership
module Site = Mvpn_core.Site
module Backbone = Mvpn_core.Backbone
module Prefix = Mvpn_net.Prefix

(* --- small sorted-collection helpers ------------------------------------ *)

let rec ins_sorted x = function
  | [] -> [x]
  | y :: _ as l when x < y -> x :: l
  | y :: rest when x = y -> y :: rest
  | y :: rest -> y :: ins_sorted x rest

let rm_sorted x l = List.filter (fun y -> y <> x) l

let arr_mem (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = x then begin lo := mid; hi := mid end
    else if a.(mid) < x then lo := mid + 1
    else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = x

let arr_insert (a : int array) x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  let i = ref 0 in
  while !i < n && a.(!i) < x do b.(!i) <- a.(!i); incr i done;
  Array.blit a !i b (!i + 1) (n - !i);
  b

let arr_remove (a : int array) x =
  let n = Array.length a in
  let b = Array.make (n - 1) 0 in
  let j = ref 0 in
  Array.iter (fun y -> if y <> x then begin b.(!j) <- y; incr j end) a;
  b

(* --- state -------------------------------------------------------------- *)

(* A group is one shared immutable route table: all VRFs with the same
   import signature (same VPN, same role-derived RT imports) reference
   the same sorted id array. Arrays are replaced, never mutated, so a
   reader can hold a snapshot across updates. *)
type group = {
  g_key : int;
  g_import : Mpbgp.rt list;
  mutable g_pes : int list;  (* member VRF PEs, sorted *)
  mutable g_routes : int array;  (* interned route ids, sorted *)
}

type vrf = {
  v_pe : int;
  v_vpn : int;
  v_role : Service.role;
  v_rd : Mpbgp.rd;
  v_export : Mpbgp.rt list;
  v_group : group;
  mutable v_locals : int list;  (* global site ids, sorted *)
}

type cust = {
  c_id : int;
  c_name : string;
  c_topology : Service.topology;
  mutable c_tier : Service.tier;
}

type t = {
  pe_count : int;
  pool : Service.Pool.t;
  membership : Membership.t;
  bgp : Mpbgp.t;
  customers : (int, cust) Hashtbl.t;
  vrfs : (int, vrf) Hashtbl.t;  (* vrf_key -> vrf *)
  groups : (int, group) Hashtbl.t;  (* group_key -> group *)
  rt_groups : (int, int list) Hashtbl.t;  (* rt_value -> importing groups *)
  site_route : (int, int) Hashtbl.t;  (* gsid -> interned route id *)
  site_info : (int, Site.t * Service.role) Hashtbl.t;
  lsps : (int, int) Hashtbl.t;  (* (ingress lsl 8) lor egress -> refcount *)
}

let role_bit = function Service.Hub -> 1 | Service.Spoke -> 0

let group_key vpn role = (vpn lsl 1) lor role_bit role

let vrf_key pe vpn role = (group_key vpn role lsl 8) lor pe

let lsp_key ~ingress ~egress = (ingress lsl 8) lor egress

let pe_count t = t.pe_count
let membership t = t.membership
let mpbgp t = t.bgp

let find_customer t id =
  match Hashtbl.find_opt t.customers id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Compile: unknown customer %d" id)

let route_exn t id =
  match Mpbgp.find_route t.bgp id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Compile: dead route id %d" id)

let lsp_incr t ~ingress ~egress =
  let k = lsp_key ~ingress ~egress in
  Hashtbl.replace t.lsps k
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.lsps k))

let lsp_decr t ~ingress ~egress =
  let k = lsp_key ~ingress ~egress in
  match Hashtbl.find_opt t.lsps k with
  | None | Some 0 ->
    invalid_arg
      (Printf.sprintf "Compile: LSP refcount underflow %d->%d" ingress egress)
  | Some 1 -> Hashtbl.remove t.lsps k
  | Some n -> Hashtbl.replace t.lsps k (n - 1)

let groups_importing t (rt : Mpbgp.rt) =
  Option.value ~default:[] (Hashtbl.find_opt t.rt_groups rt.Mpbgp.rt_value)

let ensure_group t (c : cust) role =
  let k = group_key c.c_id role in
  match Hashtbl.find_opt t.groups k with
  | Some g -> g
  | None ->
    let imports =
      Service.import_rts t.pool ~topology:c.c_topology ~customer:c.c_id ~role
    in
    let g = { g_key = k; g_import = imports; g_pes = []; g_routes = [||] } in
    Hashtbl.replace t.groups k g;
    List.iter
      (fun (rt : Mpbgp.rt) ->
         Hashtbl.replace t.rt_groups rt.Mpbgp.rt_value
           (k :: groups_importing t rt))
      imports;
    g

(* [wire] arms the LSP refcounts for the routes already in the group —
   the incremental path; the bulk compile passes [false] and fills LSPs
   in one sweep at the end. *)
let ensure_vrf t (c : cust) role pe ~wire =
  let k = vrf_key pe c.c_id role in
  match Hashtbl.find_opt t.vrfs k with
  | Some v -> v
  | None ->
    let g = ensure_group t c role in
    g.g_pes <- ins_sorted pe g.g_pes;
    let v =
      { v_pe = pe; v_vpn = c.c_id; v_role = role;
        v_rd = Service.Pool.rd t.pool ~customer:c.c_id;
        v_export =
          Service.export_rts t.pool ~topology:c.c_topology ~customer:c.c_id
            ~role;
        v_group = g; v_locals = [] }
    in
    Hashtbl.replace t.vrfs k v;
    if wire then
      Array.iter
        (fun id ->
           let r = route_exn t id in
           if r.Mpbgp.next_hop_pe <> pe then
             lsp_incr t ~ingress:pe ~egress:r.Mpbgp.next_hop_pe)
        g.g_routes;
    v

(* Design a site into existence: VRF (created if first on this PE),
   route exported with the pool's RD/RTs and the pure-function label.
   Membership joining is the caller's business (bulk vs one-by-one). *)
let design_site t (c : cust) (spec : Service.site_spec) ~wire =
  let gsid = Service.global_site_id ~customer:c.c_id ~sid:spec.Service.sid in
  if Hashtbl.mem t.site_info gsid then
    invalid_arg
      (Printf.sprintf "Compile: site %d.%d already provisioned" c.c_id
         spec.Service.sid);
  let prefix = Service.site_prefix ~sid:spec.Service.sid in
  let site =
    Site.make ~id:gsid
      ~name:(Service.site_name ~customer:c.c_id ~sid:spec.Service.sid)
      ~vpn:c.c_id ~prefix ~ce_node:gsid ~pe_node:spec.Service.pe
  in
  let v = ensure_vrf t c spec.Service.role spec.Service.pe ~wire in
  let id =
    Mpbgp.export t.bgp
      { Mpbgp.rd = v.v_rd; prefix; next_hop_pe = spec.Service.pe;
        vpn_label = Service.vpn_label_of_site gsid; export_rts = v.v_export;
        site = gsid }
  in
  v.v_locals <- ins_sorted gsid v.v_locals;
  Hashtbl.replace t.site_route gsid id;
  Hashtbl.replace t.site_info gsid (site, spec.Service.role);
  (site, id)

let create ?(mode = Mpbgp.Full_mesh) (p : Portfolio.t) =
  let t =
    { pe_count = p.Portfolio.pe_count;
      pool = Service.Pool.create ();
      membership = Membership.create ~pe_count:p.Portfolio.pe_count ();
      bgp = Mpbgp.create ~mode ();
      customers = Hashtbl.create 256;
      vrfs = Hashtbl.create 1024;
      groups = Hashtbl.create 512;
      rt_groups = Hashtbl.create 512;
      site_route = Hashtbl.create 1024;
      site_info = Hashtbl.create 1024;
      lsps = Hashtbl.create 256 }
  in
  for pe = 0 to t.pe_count - 1 do Mpbgp.add_pe t.bgp pe done;
  Array.iter
    (fun (c : Service.customer) ->
       Hashtbl.replace t.customers c.Service.id
         { c_id = c.Service.id; c_name = c.Service.name;
           c_topology = c.Service.topology; c_tier = c.Service.tier })
    p.Portfolio.customers;
  t

let compile ?mode (p : Portfolio.t) =
  let t = create ?mode p in
  (* Design every site, then one membership batch and one propagation
     round — no per-site full scans anywhere in the bulk path. *)
  let sites = ref [] in
  Array.iter
    (fun (c : Service.customer) ->
       let cust = find_customer t c.Service.id in
       List.iter
         (fun spec ->
            let site, _ = design_site t cust spec ~wire:false in
            sites := site :: !sites)
         c.Service.sites)
    p.Portfolio.customers;
  Membership.join_all t.membership (List.rev !sites);
  ignore (Mpbgp.run t.bgp);
  (* Fill the shared group tables in one pass over the interned store:
     a route lands in every group importing one of its export RTs. *)
  let buckets : (int, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  Mpbgp.iter_exported t.bgp (fun id (r : Mpbgp.vpnv4_route) ->
      List.iter
        (fun rt ->
           List.iter
             (fun gk ->
                match Hashtbl.find_opt buckets gk with
                | Some l -> l := id :: !l
                | None -> Hashtbl.replace buckets gk (ref [id]))
             (groups_importing t rt))
        r.Mpbgp.export_rts);
  Hashtbl.iter
    (fun gk l ->
       let g = Hashtbl.find t.groups gk in
       g.g_routes <- Array.of_list (List.sort_uniq Int.compare !l))
    buckets;
  (* Transport LSPs: one refcount per (member VRF, remote route). *)
  Hashtbl.iter
    (fun _ g ->
       List.iter
         (fun pe ->
            Array.iter
              (fun id ->
                 let r = route_exn t id in
                 if r.Mpbgp.next_hop_pe <> pe then
                   lsp_incr t ~ingress:pe ~egress:r.Mpbgp.next_hop_pe)
              g.g_routes)
         g.g_pes)
    t.groups;
  t

(* --- incremental primitives --------------------------------------------- *)

let provision_site t ~customer ~sid ~pe =
  if pe < 0 || pe >= t.pe_count then
    invalid_arg (Printf.sprintf "Compile.provision_site: bad PE %d" pe);
  let c = find_customer t customer in
  let role = Service.default_role c.c_topology ~sid in
  let site, id = design_site t c { Service.sid; pe; role } ~wire:true in
  Membership.join t.membership site;
  ignore (Mpbgp.run t.bgp);
  let r = route_exn t id in
  let touched = ref 1 in
  List.iter
    (fun rt ->
       List.iter
         (fun gk ->
            let g = Hashtbl.find t.groups gk in
            if not (arr_mem g.g_routes id) then begin
              g.g_routes <- arr_insert g.g_routes id;
              touched := !touched + List.length g.g_pes;
              List.iter
                (fun pe' ->
                   if pe' <> r.Mpbgp.next_hop_pe then
                     lsp_incr t ~ingress:pe' ~egress:r.Mpbgp.next_hop_pe)
                g.g_pes
            end)
         (groups_importing t rt))
    r.Mpbgp.export_rts;
  !touched

let decommission_site t ~customer ~sid =
  let c = find_customer t customer in
  let gsid = Service.global_site_id ~customer ~sid in
  let site, role =
    match Hashtbl.find_opt t.site_info gsid with
    | Some si -> si
    | None ->
      invalid_arg
        (Printf.sprintf "Compile.decommission_site: no site %d.%d" customer
           sid)
  in
  let id = Hashtbl.find t.site_route gsid in
  let r = route_exn t id in
  ignore (Membership.leave t.membership ~site_id:gsid);
  ignore (Mpbgp.withdraw_site t.bgp ~pe:site.Site.pe_node ~site:gsid);
  ignore (Mpbgp.run t.bgp);
  let touched = ref 1 in
  (* Prune the route from every group that imported it, dropping the
     LSP references its readers held. *)
  List.iter
    (fun rt ->
       List.iter
         (fun gk ->
            let g = Hashtbl.find t.groups gk in
            if arr_mem g.g_routes id then begin
              g.g_routes <- arr_remove g.g_routes id;
              touched := !touched + List.length g.g_pes;
              List.iter
                (fun pe' ->
                   if pe' <> r.Mpbgp.next_hop_pe then
                     lsp_decr t ~ingress:pe' ~egress:r.Mpbgp.next_hop_pe)
                g.g_pes
            end)
         (groups_importing t rt))
    r.Mpbgp.export_rts;
  (* Shrink the VRF; tear it down when its last local site leaves, and
     the group when its last member VRF goes — a from-scratch compile
     of the shrunken portfolio would not have them. *)
  let vk = vrf_key site.Site.pe_node c.c_id role in
  let v = Hashtbl.find t.vrfs vk in
  v.v_locals <- rm_sorted gsid v.v_locals;
  if v.v_locals = [] then begin
    let g = v.v_group in
    g.g_pes <- rm_sorted v.v_pe g.g_pes;
    Array.iter
      (fun id' ->
         let r' = route_exn t id' in
         if r'.Mpbgp.next_hop_pe <> v.v_pe then
           lsp_decr t ~ingress:v.v_pe ~egress:r'.Mpbgp.next_hop_pe)
      g.g_routes;
    Hashtbl.remove t.vrfs vk;
    if g.g_pes = [] then begin
      Hashtbl.remove t.groups g.g_key;
      List.iter
        (fun (rt : Mpbgp.rt) ->
           match rm_sorted g.g_key (groups_importing t rt) with
           | [] -> Hashtbl.remove t.rt_groups rt.Mpbgp.rt_value
           | rest -> Hashtbl.replace t.rt_groups rt.Mpbgp.rt_value rest)
        g.g_import
    end
  end;
  Hashtbl.remove t.site_route gsid;
  Hashtbl.remove t.site_info gsid;
  !touched

let retier t ~customer ~tier =
  (find_customer t customer).c_tier <- tier;
  1

(* --- reporting ---------------------------------------------------------- *)

type metrics = {
  customers : int;
  sites : int;
  vrfs : int;
  groups : int;
  routes : int;
  table_entries : int;
  shared_entries : int;
  lsps : int;
  control_messages : int;
  rds : int;
  rts : int;
  bands : int array;
}

(* Remote view size: group entries minus the ones this PE originated. *)
let remote_count t (v : vrf) =
  Array.fold_left
    (fun acc id ->
       if (route_exn t id).Mpbgp.next_hop_pe <> v.v_pe then acc + 1 else acc)
    0 v.v_group.g_routes

let metrics (t : t) =
  let table = ref 0 and shared_locals = ref 0 in
  Hashtbl.iter
    (fun _ v ->
       table := !table + List.length v.v_locals + remote_count t v;
       shared_locals := !shared_locals + List.length v.v_locals)
    t.vrfs;
  let shared_groups =
    Hashtbl.fold (fun _ g acc -> acc + Array.length g.g_routes) t.groups 0
  in
  let bands = Array.make Mvpn_core.Qos_mapping.band_count 0 in
  Hashtbl.iter
    (fun _ c ->
       let b = Service.band_of_tier c.c_tier in
       bands.(b) <- bands.(b) + 1)
    t.customers;
  { customers = Hashtbl.length t.customers;
    sites = Membership.site_count t.membership;
    vrfs = Hashtbl.length t.vrfs;
    groups = Hashtbl.length t.groups;
    routes = Mpbgp.total_routes t.bgp;
    table_entries = !table;
    shared_entries = shared_groups + !shared_locals;
    lsps = Hashtbl.length t.lsps;
    control_messages = Membership.messages t.membership
                       + Mpbgp.messages_sent t.bgp;
    rds = Service.Pool.rds_allocated t.pool;
    rts = Service.Pool.rts_allocated t.pool;
    bands }

let per_pe (t : t) =
  let sites = Array.make t.pe_count 0 in
  let routes = Array.make t.pe_count 0 in
  Hashtbl.iter
    (fun _ v ->
       sites.(v.v_pe) <- sites.(v.v_pe) + List.length v.v_locals;
       routes.(v.v_pe) <-
         routes.(v.v_pe) + List.length v.v_locals + remote_count t v)
    t.vrfs;
  Array.init t.pe_count (fun pe -> (sites.(pe), routes.(pe)))

let qos_policy t ~customer =
  let c = find_customer t customer in
  (Service.band_of_tier c.c_tier, Service.objective_of_tier c.c_tier)

let vrf_locals (t : t) ~pe ~customer ~role =
  match Hashtbl.find_opt t.vrfs (vrf_key pe customer role) with
  | Some v -> v.v_locals
  | None -> []

let vrf_table (t : t) ~pe ~customer ~role =
  match Hashtbl.find_opt t.vrfs (vrf_key pe customer role) with
  | None -> []
  | Some v ->
    Array.fold_left
      (fun acc id ->
         let r = route_exn t id in
         if r.Mpbgp.next_hop_pe <> pe then r :: acc else acc)
      [] v.v_group.g_routes
    |> List.rev

(* Canonical by content, never by intern id or insertion order: an
   incremental history and a from-scratch compile of the same design
   must digest identically. *)
let fingerprint (t : t) =
  let b = Buffer.create 65536 in
  let sorted_by f tbl =
    List.sort (fun a b -> compare (f a) (f b))
      (Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])
  in
  List.iter
    (fun c ->
       Printf.bprintf b "C%d:%s:%s:%s;" c.c_id c.c_name
         (Service.topology_name c.c_topology)
         (Service.tier_name c.c_tier))
    (sorted_by (fun c -> c.c_id) t.customers);
  (* One canonical entry array per group, shared by its member VRFs. *)
  let canon = Hashtbl.create 64 in
  let group_entries (g : group) =
    match Hashtbl.find_opt canon g.g_key with
    | Some e -> e
    | None ->
      let e =
        Array.map
          (fun id ->
             let r = route_exn t id in
             ( r.Mpbgp.next_hop_pe,
               Printf.sprintf "%s|%s|%d|%d"
                 (Mpbgp.rd_to_string r.Mpbgp.rd)
                 (Prefix.to_string r.Mpbgp.prefix)
                 r.Mpbgp.next_hop_pe r.Mpbgp.vpn_label ))
          g.g_routes
      in
      Array.sort (fun (_, x) (_, y) -> String.compare x y) e;
      Hashtbl.replace canon g.g_key e;
      e
  in
  let rt_values rts =
    String.concat ","
      (List.map string_of_int
         (List.sort Int.compare
            (List.map (fun (rt : Mpbgp.rt) -> rt.Mpbgp.rt_value) rts)))
  in
  List.iter
    (fun v ->
       Printf.bprintf b "V%d.%d.%s@%d:%s:e[%s]:i[%s]:l[%s];" v.v_vpn
         (role_bit v.v_role)
         (Service.role_name v.v_role)
         v.v_pe
         (Mpbgp.rd_to_string v.v_rd)
         (rt_values v.v_export)
         (rt_values v.v_group.g_import)
         (String.concat "," (List.map string_of_int v.v_locals));
       Array.iter
         (fun (nh, s) ->
            if nh <> v.v_pe then begin
              Buffer.add_string b s;
              Buffer.add_char b ';'
            end)
         (group_entries v.v_group))
    (sorted_by (fun v -> vrf_key v.v_pe v.v_vpn v.v_role) t.vrfs);
  List.iter
    (fun (k, n) -> Printf.bprintf b "L%d:%d;" k n)
    (List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.lsps []));
  Digest.to_hex (Digest.string (Buffer.contents b))

let equal a b = String.equal (fingerprint a) (fingerprint b)

(* --- materialization ---------------------------------------------------- *)

type deployment = {
  backbone : Mvpn_core.Backbone.t;
  engine : Mvpn_sim.Engine.t;
  network : Mvpn_core.Network.t;
  mpls : Mvpn_core.Mpls_vpn.t;
}

let materialize ?(policy = Mvpn_core.Qos_mapping.Best_effort)
    (p : Portfolio.t) =
  let backbone = Backbone.build ~pops:p.Portfolio.pe_count () in
  let sites =
    Array.to_list p.Portfolio.customers
    |> List.concat_map (fun (c : Service.customer) ->
        List.map
          (fun (spec : Service.site_spec) ->
             Backbone.attach_site backbone
               ~id:
                 (Service.global_site_id ~customer:c.Service.id
                    ~sid:spec.Service.sid)
               ~name:
                 (Service.site_name ~customer:c.Service.id
                    ~sid:spec.Service.sid)
               ~vpn:c.Service.id
               ~prefix:(Service.site_prefix ~sid:spec.Service.sid)
               ~pop:spec.Service.pe)
          c.Service.sites)
  in
  let engine = Mvpn_sim.Engine.create () in
  let network =
    Mvpn_core.Network.create ~policy engine (Backbone.topology backbone)
  in
  let mpls =
    Mvpn_core.Mpls_vpn.deploy ~net:network ~backbone ~sites ()
  in
  { backbone; engine; network; mpls }
