(** Forwarding information base: the per-router table that maps a
    destination address, via longest-prefix match, to a next-hop node.

    Next hops are simulator node identifiers (plain [int]s); the
    simulation layer resolves them to links. A route remembers where it
    came from so reconvergence can replace protocol routes without
    touching static configuration. *)

type source =
  | Static  (** operator-configured *)
  | Connected  (** directly attached subnet *)
  | Igp  (** learned from the link-state protocol (OSPF) *)
  | Bgp  (** learned from BGP / MP-BGP *)

type route = {
  next_hop : int;  (** node id of the next hop ([-1] for local delivery) *)
  cost : int;  (** path metric, for display and tie-breaking *)
  source : source;
}

type t

val create : unit -> t

val local_delivery : int
(** The pseudo next-hop ([-1]) meaning "this router owns the prefix". *)

val add : t -> Prefix.t -> route -> unit
(** Insert or replace the route for a prefix. *)

val remove : t -> Prefix.t -> bool

val lookup : t -> Ipv4.t -> (Prefix.t * route) option
(** Longest-prefix match. *)

val generation : t -> int
(** Monotonic mutation counter, bumped by {!add}, {!remove} and
    {!clear_source}. Route caches compiled over this table (the
    dataplane's dst → route cache) compare generations to detect that
    their entries may be stale — reconvergence invalidates by bumping,
    never by notifying. *)

val next_hop : t -> Ipv4.t -> int option
(** Next-hop node for an address, if any route matches. *)

val find : t -> Prefix.t -> route option
(** Exact-match lookup. *)

val size : t -> int

val clear_source : t -> source -> int
(** [clear_source t src] removes every route learned from [src],
    returning how many were removed — the reconvergence primitive. *)

val iter : (Prefix.t -> route -> unit) -> t -> unit

val to_list : t -> (Prefix.t * route) list

val pp : Format.formatter -> t -> unit

val source_to_string : source -> string
