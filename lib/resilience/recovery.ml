module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Rng = Mvpn_sim.Rng
module Network = Mvpn_core.Network
module Telemetry = Mvpn_telemetry

let m_resignal = Telemetry.Registry.counter "resilience.recovery.resignal"
let m_suppressed = Telemetry.Registry.counter "resilience.recovery.suppressed"
let m_damped = Telemetry.Registry.counter "resilience.recovery.damped"
let m_released = Telemetry.Registry.counter "resilience.recovery.released"

type config = {
  base_delay : float;
  max_delay : float;
  jitter : float;
  damp_threshold : int;
  damp_window : float;
  reuse_after : float;
}

let default_config =
  { base_delay = 0.2; max_delay = 5.0; jitter = 0.25; damp_threshold = 5;
    damp_window = 2.0; reuse_after = 3.0 }

type link_state = {
  mutable downs : float list;  (* down transitions inside the window *)
  mutable damped : bool;
  mutable last_down : float;
}

type t = {
  net : Network.t;
  config : config;
  rng : Rng.t;
  repair : unit -> int * int;
  states : (int * int, link_state) Hashtbl.t;
  mutable pending : bool;  (* a repair burst is already scheduled *)
  mutable attempt : int;  (* consecutive failed bursts, drives backoff *)
}

let key a b = (min a b, max a b)

let state t a b =
  let k = key a b in
  match Hashtbl.find_opt t.states k with
  | Some s -> s
  | None ->
    let s = { downs = []; damped = false; last_down = neg_infinity } in
    Hashtbl.add t.states k s;
    s

let damped t a b =
  match Hashtbl.find_opt t.states (key a b) with
  | Some s -> s.damped
  | None -> false

let now t = Engine.now (Network.engine t.net)

(* One duplex link per down pair: count each (a, b) with a < b once. *)
let down_links t =
  List.filter_map
    (fun (l : Topology.link) ->
       if (not l.Topology.up) && l.Topology.src < l.Topology.dst then
         Some (l.Topology.src, l.Topology.dst)
       else None)
    (Topology.links (Network.topology t.net))

(* Fire one repair burst. While every down link is damped the burst is
   suppressed — re-signalling cannot succeed and would only thrash;
   the release path re-arms repair when a damped link holds up. *)
let rec fire t =
  t.pending <- false;
  let down = down_links t in
  let undamped = List.filter (fun (a, b) -> not (damped t a b)) down in
  if down <> [] && undamped = [] then
    Telemetry.Counter.incr m_suppressed
  else begin
    t.attempt <- t.attempt + 1;
    Telemetry.Counter.incr m_resignal;
    let restored, still_down = t.repair () in
    if !Telemetry.Control.enabled then
      Telemetry.Event_log.record
        (Telemetry.Registry.events ())
        (Telemetry.Event_log.Resignal
           { attempt = t.attempt; restored; still_down });
    if still_down = 0 then t.attempt <- 0
    else if List.exists (fun (a, b) -> not (damped t a b)) (down_links t)
    then schedule_repair t
  end

(* Exponential backoff with deterministic jitter: coalesced — while a
   burst is pending, further failures fold into it. *)
and schedule_repair t =
  if not t.pending then begin
    t.pending <- true;
    let backoff =
      Float.min t.config.max_delay
        (t.config.base_delay *. (2.0 ** float_of_int t.attempt))
    in
    let jit = 1.0 +. (t.config.jitter *. ((2.0 *. Rng.uniform t.rng) -. 1.0)) in
    Engine.schedule (Network.engine t.net) ~delay:(backoff *. jit) (fun () ->
        fire t)
  end

(* A damped link earns release by holding up for [reuse_after]. *)
let schedule_release t (a, b) s =
  let check_at = now t +. t.config.reuse_after in
  Engine.schedule_at (Network.engine t.net) ~time:check_at (fun () ->
      if s.damped && s.last_down < check_at -. t.config.reuse_after +. 1e-9
      then begin
        let still_up =
          match Topology.find_link (Network.topology t.net) a b with
          | Some l -> l.Topology.up
          | None -> false
        in
        if still_up then begin
          s.damped <- false;
          s.downs <- [];
          Telemetry.Counter.incr m_released;
          if !Telemetry.Control.enabled then
            Telemetry.Event_log.record
              (Telemetry.Registry.events ())
              (Telemetry.Event_log.Flap_released { src = a; dst = b });
          schedule_repair t
        end
      end)

let on_change t ~a ~b ~up =
  let s = state t a b in
  let time = now t in
  if not up then begin
    s.last_down <- time;
    s.downs <-
      time
      :: List.filter (fun d -> time -. d <= t.config.damp_window) s.downs;
    if (not s.damped) && List.length s.downs >= t.config.damp_threshold
    then begin
      s.damped <- true;
      Telemetry.Counter.incr m_damped;
      let ka, kb = key a b in
      if !Telemetry.Control.enabled then
        Telemetry.Event_log.record
          (Telemetry.Registry.events ())
          (Telemetry.Event_log.Flap_damped
             { src = ka; dst = kb; flaps = List.length s.downs })
    end;
    if not s.damped then schedule_repair t
  end
  else if s.damped then schedule_release t (key a b) s
  else schedule_repair t

let request t = schedule_repair t

let arm ?(config = default_config) ~seed net ~repair =
  if config.base_delay <= 0.0 || config.max_delay < config.base_delay then
    invalid_arg "Recovery.arm: bad delays";
  if config.jitter < 0.0 || config.jitter >= 1.0 then
    invalid_arg "Recovery.arm: jitter outside [0, 1)";
  if config.damp_threshold < 2 then
    invalid_arg "Recovery.arm: damp threshold below 2";
  let t =
    { net; config; rng = Rng.create seed; repair;
      states = Hashtbl.create 16; pending = false; attempt = 0 }
  in
  Topology.on_duplex_change (Network.topology net) (fun ~a ~b ~up ->
      on_change t ~a ~b ~up);
  t

let damped_links t =
  Hashtbl.fold (fun k s acc -> if s.damped then k :: acc else acc) t.states []
  |> List.sort compare
