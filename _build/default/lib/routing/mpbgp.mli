(** MP-BGP VPNv4: the route-distribution plane of RFC 2547 VPNs.

    PE routers exchange VPN-IPv4 routes — a customer prefix made
    globally unique by an 8-byte route distinguisher — with a VPN label
    piggybacked on each route (the paper's "piggybacking labels in the
    routing protocol updates", §4). Export/import is governed by route
    targets: a PE exports a site's routes tagged with the VPN's RT and
    imports into a VRF only routes carrying an RT the VRF lists. This is
    what lets one routing system serve many VPNs whose private address
    spaces overlap.

    Sessions are either a full iBGP mesh among the PEs or a route
    reflector — the state-growth knob of experiment E1/E3. *)

type rd = { rd_asn : int; rd_assigned : int }
(** Route distinguisher [asn:assigned]. *)

type rt = { rt_asn : int; rt_value : int }
(** Route target extended community. *)

val rd_to_string : rd -> string
val rt_to_string : rt -> string
val rt_equal : rt -> rt -> bool

type vpnv4_route = {
  rd : rd;
  prefix : Mvpn_net.Prefix.t;
  next_hop_pe : int;  (** egress PE node id *)
  vpn_label : int;  (** inner label the egress PE allocated *)
  export_rts : rt list;
  site : int;  (** originating site id, for diagnostics *)
}

type session_mode =
  | Full_mesh
  | Route_reflector of int  (** the reflecting PE *)

type t

val create : ?mode:session_mode -> unit -> t

val add_pe : t -> int -> unit
(** Register a PE by node id.
    @raise Invalid_argument on duplicates. *)

val pe_count : t -> int

val session_count : t -> int
(** Number of BGP sessions the mode implies for the current PEs. *)

val export_route : t -> vpnv4_route -> unit
(** The egress PE announces a customer route. Replaces any previous
    announcement with the same (RD, prefix, PE). *)

val withdraw_site : t -> pe:int -> site:int -> int
(** Withdraw every route a PE exported for a site (a site leaving the
    VPN); returns how many were withdrawn. *)

val run : t -> int
(** Propagate announcements/withdrawals to every PE; returns the number
    of UPDATE messages sent (full mesh: one per route per remote PE;
    route reflector: to the RR then reflected). *)

val routes_at : t -> int -> vpnv4_route list
(** All VPNv4 routes a PE has received (plus its own exports). *)

val import : t -> pe:int -> import_rts:rt list -> vpnv4_route list
(** The routes a VRF with the given import list would install at a PE:
    received routes whose export RTs intersect [import_rts]. Routes the
    PE itself exported are excluded (a VRF already holds its local
    routes). *)

val total_routes : t -> int
(** Distinct (RD, prefix, PE) announcements in the system. *)

val messages_sent : t -> int
(** Cumulative UPDATEs across {!run} calls. *)
