lib/qos/token_bucket.ml: Float
