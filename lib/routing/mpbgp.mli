(** MP-BGP VPNv4: the route-distribution plane of RFC 2547 VPNs.

    PE routers exchange VPN-IPv4 routes — a customer prefix made
    globally unique by an 8-byte route distinguisher — with a VPN label
    piggybacked on each route (the paper's "piggybacking labels in the
    routing protocol updates", §4). Export/import is governed by route
    targets: a PE exports a site's routes tagged with the VPN's RT and
    imports into a VRF only routes carrying an RT the VRF lists. This is
    what lets one routing system serve many VPNs whose private address
    spaces overlap.

    Sessions are either a full iBGP mesh among the PEs or a route
    reflector — the state-growth knob of experiment E1/E3.

    Internally every route record is interned once in a shared store
    and all tables (the owner's exports, each remote PE's Adj-RIB-In,
    any VRF groups built on top by {!Mvpn_provision}) hold only integer
    ids — at provisioning scale (E19: 10k VPNs, 100k+ routes) this is
    what keeps per-PE memory a constant factor of the route count.
    Propagation is incremental: exports and withdrawals land in a dirty
    journal and {!run} touches only journaled routes (plus any PE added
    since the last run, which is back-filled), never the full table. *)

type rd = { rd_asn : int; rd_assigned : int }
(** Route distinguisher [asn:assigned]. *)

type rt = { rt_asn : int; rt_value : int }
(** Route target extended community. *)

val rd_to_string : rd -> string
val rt_to_string : rt -> string
val rt_equal : rt -> rt -> bool

type vpnv4_route = {
  rd : rd;
  prefix : Mvpn_net.Prefix.t;
  next_hop_pe : int;  (** egress PE node id *)
  vpn_label : int;  (** inner label the egress PE allocated *)
  export_rts : rt list;
  site : int;  (** originating site id, for diagnostics *)
}

type session_mode =
  | Full_mesh
  | Route_reflector of int  (** the reflecting PE *)

type t

val create : ?mode:session_mode -> unit -> t

val add_pe : t -> int -> unit
(** Register a PE by node id.
    @raise Invalid_argument on duplicates. *)

val pe_count : t -> int

val session_count : t -> int
(** Number of BGP sessions the mode implies for the current PEs. *)

val export_route : t -> vpnv4_route -> unit
(** The egress PE announces a customer route. Replaces any previous
    announcement with the same (RD, prefix, PE). *)

val export : t -> vpnv4_route -> int
(** Like {!export_route} but returns the interned route id — stable for
    the announcement's lifetime, reusable as a compact handle in
    share-by-reference tables ({!find_route} resolves it back).
    Re-exporting the same (RD, prefix, PE) with new content patches the
    shared record in place and returns the same id. *)

val find_route : t -> int -> vpnv4_route option
(** Resolve an interned id; [None] once the announcement has been
    withdrawn and flushed by {!run} (or if the id was never issued). *)

val iter_exported : t -> (int -> vpnv4_route -> unit) -> unit
(** Every live announcement in the system with its interned id, in no
    particular order. *)

val withdraw_site : t -> pe:int -> site:int -> int
(** Withdraw every route a PE exported for a site (a site leaving the
    VPN); returns how many were withdrawn. *)

val run : t -> int
(** Propagate announcements/withdrawals to every PE; returns the number
    of UPDATE messages sent (full mesh: one per route per remote PE;
    route reflector: to the RR then reflected). Incremental: only
    routes dirtied since the last call are touched, so a no-op call
    returns 0 and a single-site change costs O(PEs), not O(routes). *)

val routes_at : t -> int -> vpnv4_route list
(** All VPNv4 routes a PE has received (plus its own exports). *)

val import : t -> pe:int -> import_rts:rt list -> vpnv4_route list
(** The routes a VRF with the given import list would install at a PE:
    received routes whose export RTs intersect [import_rts]. Routes the
    PE itself exported are excluded (a VRF already holds its local
    routes). *)

val import_ids : t -> pe:int -> import_rts:rt list -> int list
(** {!import}, but as interned ids — what a compact VRF table stores. *)

val total_routes : t -> int
(** Distinct (RD, prefix, PE) announcements in the system. *)

val store_size : t -> int
(** Interned-store slots ever allocated (live + tombstoned) — a
    diagnostic for the churn bound of the share-by-id scheme. *)

val messages_sent : t -> int
(** Cumulative UPDATEs across {!run} calls. *)
