lib/mpls/lfib.ml: Array Label Mvpn_net Printf
