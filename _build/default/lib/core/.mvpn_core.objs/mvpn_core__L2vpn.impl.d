lib/core/l2vpn.ml: Array Backbone Hashtbl Mvpn_mpls Mvpn_net Mvpn_routing Mvpn_sim Network Printf
