lib/mpls/cspf.mli: Mvpn_sim
