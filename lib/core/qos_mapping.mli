(** End-to-end QoS mapping (§5).

    "The network edge will then map the CPE-specified DiffServ/ToS
    service level specification into the QoS field of the MPLS header,
    providing a way to protect the service level definition on an
    end-to-end basis."

    This module fixes the class structure every hop agrees on:

    - 4 forwarding bands: 0 = EF + network control, 1 = AF3/AF4
      (business-critical), 2 = AF1/AF2 (assured bulk), 3 = best effort;
    - the packet→band function, which reads the MPLS EXP bits when the
      packet is labelled and the visible DSCP otherwise — so a router
      treats labelled and unlabelled traffic consistently, and an
      encrypted tunnel without ToS copy lands in band 3 by construction;
    - per-link queue-discipline factories for the three policies the
      experiments compare. *)

type policy =
  | Best_effort  (** one FIFO; the §2.2 status quo *)
  | Diffserv of Mvpn_qos.Queue_disc.sched
      (** classful PHBs with the given scheduler across the 4 bands *)

val band_count : int
(** 4. *)

val band_of_exp : int -> int
val band_of_dscp : Mvpn_net.Dscp.t -> int

val band_of_packet : Mvpn_net.Packet.t -> int
(** EXP bits if labelled, visible DSCP otherwise. *)

val band_name : int -> string

val default_diffserv_sched : Mvpn_qos.Queue_disc.sched
(** Strict priority for band 0 is approximated by a heavily weighted
    WFQ (LLQ-like without starvation): weights 8 : 4 : 2 : 1. *)

val strict_sched : Mvpn_qos.Queue_disc.sched
(** True strict priority — the starvation ablation. *)

val make_qdisc :
  ?rng:Mvpn_sim.Rng.t -> ?buffer_bytes:int -> ?wred:bool -> policy ->
  Mvpn_qos.Queue_disc.t
(** A fresh discipline for one egress port. [buffer_bytes] (default
    ~256 KB total) is split across bands under [Diffserv]; [wred]
    (default true) arms WRED on the AF bands. *)

val default_objective : int -> Mvpn_telemetry.Slo.spec
(** The stock SLO for a band, aligned with {!Mvpn_qos.Sla}'s templates:
    EF 200 ms p99 / 1% loss at target 0.99; AF-hi 500 ms / 5% at 0.98;
    AF-lo 1 s / 10% at 0.95; BE only loss 50% / availability 0.5 at
    target 0.5. *)

val classify : policy -> Mvpn_net.Packet.t -> int
(** The port classifier for a policy: always band 0 under
    [Best_effort]. *)

val mark_exp_from_dscp : Mvpn_net.Packet.t -> unit
(** Ingress-PE marking: copy the DSCP-derived class into the EXP bits
    of every label on the stack (no-op on unlabelled packets). *)
