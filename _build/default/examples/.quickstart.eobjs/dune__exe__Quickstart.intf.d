examples/quickstart.mli:
