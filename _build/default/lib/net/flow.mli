(** Transport-level flow identity (the classic 5-tuple).

    Flows are the unit the CPE classifier and the SLA accounting work on:
    a flow is marked into a service class at the customer edge, and
    per-flow delay/jitter/loss statistics are what the SLA compliance
    checks measure. *)

type proto = Tcp | Udp | Icmp | Esp | Gre

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  proto : proto;
  src_port : int;
  dst_port : int;
}

val make :
  ?proto:proto -> ?src_port:int -> ?dst_port:int -> Ipv4.t -> Ipv4.t -> t
(** [make src dst] builds a flow; [proto] defaults to [Udp], ports to 0. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val proto_to_string : proto -> string
val pp : Format.formatter -> t -> unit

val reverse : t -> t
(** [reverse f] swaps source and destination address and port. *)
