lib/mpls/rsvp_te.ml: Array Cspf Fec Hashtbl Int Label Lfib List Mvpn_routing Mvpn_sim Option Plane Printf
