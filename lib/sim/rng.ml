type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 r =
  r.state <- Int64.add r.state golden_gamma;
  mix r.state

let fork r = { state = bits64 r }

(* Indexed substream: derived from the parent's *current* position and
   the index only, without advancing the parent — so shard k of a
   partitioned run gets the same stream no matter how many sibling
   substreams exist or in what order they are taken. Double-mixing with
   a distinct xor constant decorrelates adjacent indices. *)
let split r i =
  let z = Int64.add r.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
  { state = mix (Int64.logxor (mix z) 0x632BE59BD9B4E019L) }

let int r bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Top bits have the best statistical quality. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 r) 2) in
  v mod bound

let int_in r lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int r (hi - lo + 1)

let uniform r =
  (* 53 significand bits, uniform in [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 r) 11) in
  float_of_int v /. 9007199254740992.0

let float r x = uniform r *. x

let bool r p = uniform r < p

let exponential r ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -. log1p (-. uniform r) /. rate

let pareto r ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Rng.pareto: shape and scale must be positive";
  scale /. ((1.0 -. uniform r) ** (1.0 /. shape))

let normal r ~mean ~stddev =
  let u1 = 1.0 -. uniform r and u2 = uniform r in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choose r a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int r (Array.length a))

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
