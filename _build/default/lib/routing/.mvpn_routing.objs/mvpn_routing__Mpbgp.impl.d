lib/routing/mpbgp.ml: Hashtbl List Mvpn_net Printf
