lib/ipsec/crypto.ml: Bytes Char Int32 Int64
