lib/core/accounting.ml: Array Format Hashtbl Int List Mvpn_net Option Qos_mapping
