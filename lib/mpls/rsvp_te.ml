module Topology = Mvpn_sim.Topology

let m_reroute_attempt = Mvpn_telemetry.Registry.counter "rsvp.reroute.attempt"
let m_reroute_skipped = Mvpn_telemetry.Registry.counter "rsvp.reroute.skipped"

type admission = Cspf | Igp_only

type class_type = Global_pool | Subpool

type tunnel = {
  id : int;
  src : int;
  dst : int;
  bandwidth : float;
  setup_priority : int;
  hold_priority : int;
  class_type : class_type;
  mutable path : int list;
  mutable up : bool;
}

type t = {
  topo : Topology.t;
  plane : Plane.t;
  php : bool;
  subpool_fraction : float;
  subpool : (int, float) Hashtbl.t;  (* link id -> premium bps reserved *)
  (* tunnel id -> topology generation at its last failed re-signal
     attempt; reroute_down skips the tunnel until the topology moves. *)
  reroute_failed : (int, int) Hashtbl.t;
  mutable tunnels : tunnel list;
  mutable next_id : int;
}

let create ?(php = true) ?(subpool_fraction = 0.4) topo plane =
  if subpool_fraction <= 0.0 || subpool_fraction > 1.0 then
    invalid_arg "Rsvp_te.create: subpool fraction outside (0, 1]";
  { topo; plane; php; subpool_fraction; subpool = Hashtbl.create 32;
    reroute_failed = Hashtbl.create 8; tunnels = []; next_id = 1 }

let subpool_reserved t (l : Topology.link) =
  Option.value ~default:0.0 (Hashtbl.find_opt t.subpool l.Topology.id)

let subpool_room t (l : Topology.link) =
  (l.Topology.bandwidth *. t.subpool_fraction) -. subpool_reserved t l

let bump_subpool t (l : Topology.link) delta =
  let v = subpool_reserved t l +. delta in
  if v <= 0.0 then Hashtbl.remove t.subpool l.Topology.id
  else Hashtbl.replace t.subpool l.Topology.id v

let links_of_path topo path =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      (match Topology.find_link topo a b with
       | Some l -> go (l :: acc) rest
       | None ->
         invalid_arg
           (Printf.sprintf "Rsvp_te: no link %d->%d on path" a b))
    | [_] | [] -> List.rev acc
  in
  go [] path

let ingress_fec tn = Fec.Tunnel_fec tn.id

(* Install the label-switched path: allocate one label per downstream
   hop, FTN at the ingress, swap at transits, pop at the end (PHP: the
   penultimate router pops; otherwise the egress pops). *)
let install_labels t tn =
  match tn.path with
  | [] | [_] -> ()
  | ingress :: rest ->
    (* Downstream routers allocate the labels they expect to receive. *)
    let hops = Array.of_list rest in
    let nhops = Array.length hops in
    let labels =
      Array.init nhops (fun i ->
          let router = hops.(i) in
          let egress = i = nhops - 1 in
          if egress && t.php then Label.implicit_null
          else Label.Allocator.alloc (Plane.allocator t.plane router))
    in
    (* Ingress FTN. *)
    (if labels.(0) = Label.implicit_null then
       (* Single-hop tunnel with PHP: traffic goes unlabelled. Keep an
          FTN entry with explicit null so the data path still has a
          steering entry for the tunnel. *)
       Plane.install_ftn t.plane ingress (ingress_fec tn)
         { Plane.push = Label.explicit_null; next_hop = hops.(0) }
     else
       Plane.install_ftn t.plane ingress (ingress_fec tn)
         { Plane.push = labels.(0); next_hop = hops.(0) });
    (* Transit and egress LFIB entries. *)
    for i = 0 to nhops - 1 do
      let router = hops.(i) in
      let in_label = labels.(i) in
      if in_label <> Label.implicit_null && in_label <> Label.explicit_null
      then begin
        let entry =
          if i = nhops - 1 then
            { Lfib.op = Lfib.Pop_and_ip; next_hop = Lfib.local }
          else if labels.(i + 1) = Label.implicit_null then
            { Lfib.op = Lfib.Pop; next_hop = hops.(i + 1) }
          else { Lfib.op = Lfib.Swap labels.(i + 1); next_hop = hops.(i + 1) }
        in
        Lfib.install (Plane.lfib t.plane router) ~in_label entry
      end
    done

let release_tunnel t tn =
  if tn.path <> [] then begin
    List.iter
      (fun l ->
         Topology.release l tn.bandwidth;
         if tn.class_type = Subpool then bump_subpool t l (-.tn.bandwidth))
      (links_of_path t.topo tn.path);
    ignore (Plane.remove_ftn t.plane (List.hd tn.path) (ingress_fec tn));
    tn.path <- []
  end;
  tn.up <- false

(* Reserve bandwidth along a path; all-or-nothing. *)
let reserve_path topo path bw =
  let links = links_of_path topo path in
  let rec go done_ = function
    | [] -> true
    | l :: rest ->
      if Topology.reserve l bw then go (l :: done_) rest
      else begin
        List.iter (fun d -> Topology.release d bw) done_;
        false
      end
  in
  go [] links

let force_reserve_path topo path bw =
  List.iter
    (fun (l : Topology.link) -> l.Topology.reserved <- l.Topology.reserved +. bw)
    (links_of_path topo path)

let preemptable_on t (l : Topology.link) ~setup_priority =
  List.fold_left
    (fun acc tn ->
       if tn.up && tn.hold_priority > setup_priority
       && List.exists
            (fun (pl : Topology.link) -> pl.Topology.id = l.Topology.id)
            (links_of_path t.topo tn.path)
       then acc +. tn.bandwidth
       else acc)
    0.0 t.tunnels

let signal ?explicit_path ?(setup_priority = 7) ?(hold_priority = 7)
    ?(admission = Cspf) ?(allow_preempt = false)
    ?(class_type = Global_pool) t ~src ~dst ~bandwidth =
  if setup_priority < 0 || setup_priority > 7
  || hold_priority < 0 || hold_priority > 7 then
    Error "priority outside 0-7"
  else if bandwidth < 0.0 then Error "negative bandwidth"
  else begin
    let subpool_ok l =
      class_type = Global_pool || subpool_room t l >= bandwidth
    in
    let find_path () =
      match explicit_path with
      | Some p ->
        if List.length p < 2 then None
        else if List.hd p <> src || List.nth p (List.length p - 1) <> dst
        then None
        else Some p
      | None ->
        (match admission with
         | Cspf ->
           let usable (l : Topology.link) =
             l.Topology.up
             && Topology.available l >= bandwidth
             && subpool_ok l
           in
           Mvpn_routing.Spf.shortest_path ~usable t.topo ~src ~dst
         | Igp_only -> Cspf.igp_path t.topo ~src ~dst)
    in
    let finish path forced =
      let tn =
        { id = t.next_id; src; dst; bandwidth; setup_priority;
          hold_priority; class_type; path; up = true }
      in
      t.next_id <- t.next_id + 1;
      if forced then force_reserve_path t.topo path bandwidth
      else if not (reserve_path t.topo path bandwidth) then
        (* Only possible for explicit paths that no longer fit. *)
        force_reserve_path t.topo path bandwidth;
      if class_type = Subpool then
        List.iter
          (fun l -> bump_subpool t l bandwidth)
          (links_of_path t.topo path);
      install_labels t tn;
      t.tunnels <- tn :: t.tunnels;
      Ok tn
    in
    match admission, find_path () with
    | Igp_only, Some path ->
      (* Blind commitment: reserve even past capacity. *)
      finish path true
    | Igp_only, None -> Error "no IGP path"
    | Cspf, Some path -> finish path false
    | Cspf, None ->
      if not allow_preempt then Error "no path satisfies constraints"
      else begin
        (* Retry treating worse-priority reservations as free. *)
        let usable (l : Topology.link) =
          l.Topology.up
          && Topology.available l +. preemptable_on t l ~setup_priority
             >= bandwidth
        in
        match Mvpn_routing.Spf.shortest_path ~usable t.topo ~src ~dst with
        | None -> Error "no path even with preemption"
        | Some path ->
          let path_links = links_of_path t.topo path in
          let on_path (tn : tunnel) =
            tn.up
            && List.exists
                 (fun (pl : Topology.link) ->
                    List.exists
                      (fun (l : Topology.link) ->
                         l.Topology.id = pl.Topology.id)
                      path_links)
                 (links_of_path t.topo tn.path)
          in
          (* Tear down victims, worst hold priority first, until the
             path fits. *)
          let victims =
            List.sort
              (fun a b -> Int.compare b.hold_priority a.hold_priority)
              (List.filter
                 (fun tn -> tn.hold_priority > setup_priority && on_path tn)
                 t.tunnels)
          in
          let fits () =
            List.for_all
              (fun l -> Topology.available l >= bandwidth)
              path_links
          in
          let rec evict = function
            | [] -> ()
            | v :: rest ->
              if not (fits ()) then begin
                release_tunnel t v;
                evict rest
              end
          in
          evict victims;
          if fits () then finish path false
          else Error "preemption could not free enough bandwidth"
      end
  end

let tunnel t id = List.find_opt (fun tn -> tn.id = id) t.tunnels

let teardown t id =
  match tunnel t id with
  | Some tn when tn.up ->
    release_tunnel t tn;
    true
  | Some _ | None -> false

let tunnels t = t.tunnels

let handle_link_failure t =
  let victims =
    List.filter
      (fun tn ->
         tn.up
         && List.exists
              (fun (l : Topology.link) -> not l.Topology.up)
              (links_of_path t.topo tn.path))
      t.tunnels
  in
  List.iter (release_tunnel t) victims;
  List.length victims

(* Re-signal down tunnels. A tunnel whose last attempt failed against
   the current topology generation is skipped outright — CSPF over an
   unchanged graph cannot succeed where it just failed, so retry
   storms (backoff loops, flap bursts) cost nothing until the topology
   actually moves. *)
let reroute_down t =
  let gen = Topology.generation t.topo in
  let down = List.filter (fun tn -> not tn.up) t.tunnels in
  let restored = ref 0 in
  List.iter
    (fun tn ->
       match Hashtbl.find_opt t.reroute_failed tn.id with
       | Some g when g = gen -> Mvpn_telemetry.Counter.incr m_reroute_skipped
       | Some _ | None ->
         Mvpn_telemetry.Counter.incr m_reroute_attempt;
         let usable (l : Topology.link) =
           l.Topology.up
           && Topology.available l >= tn.bandwidth
           && (tn.class_type = Global_pool
               || subpool_room t l >= tn.bandwidth)
         in
         match
           Mvpn_routing.Spf.shortest_path ~usable t.topo ~src:tn.src
             ~dst:tn.dst
         with
         | Some path when reserve_path t.topo path tn.bandwidth ->
           tn.path <- path;
           tn.up <- true;
           Hashtbl.remove t.reroute_failed tn.id;
           if tn.class_type = Subpool then
             List.iter
               (fun l -> bump_subpool t l tn.bandwidth)
               (links_of_path t.topo path);
           install_labels t tn;
           incr restored
         | Some _ | None -> Hashtbl.replace t.reroute_failed tn.id gen)
    down;
  (!restored, List.length down - !restored)

let overcommitted_links t =
  List.filter_map
    (fun (l : Topology.link) ->
       let excess = l.Topology.reserved -. l.Topology.bandwidth in
       if excess > 0.0 then Some (l, excess) else None)
    (Topology.links t.topo)

let reserved_fraction _t (l : Topology.link) =
  if l.Topology.bandwidth <= 0.0 then 0.0
  else l.Topology.reserved /. l.Topology.bandwidth
