lib/qos/meter.ml: Float Token_bucket
