lib/atm/switch.ml: Cell Float Hashtbl Printf
