lib/core/accounting.mli: Format Mvpn_net
