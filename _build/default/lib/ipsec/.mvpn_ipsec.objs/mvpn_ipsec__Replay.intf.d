lib/ipsec/replay.mli:
