(** ESP encapsulation arithmetic (tunnel mode).

    ESP wraps the whole inner IP packet: outer IP header, ESP header
    (SPI + sequence), IV, the encrypted payload padded to the cipher
    block, pad-length/next-header trailer, and an authentication tag.
    The per-packet byte overhead is what shrinks goodput in E5. *)

val outer_ip_bytes : int
(** 20 — the tunnel-mode outer IPv4 header. *)

val esp_header_bytes : int
(** 8 — SPI and sequence number. *)

val iv_bytes : Crypto.cipher -> int
(** 8 for DES/3DES, 0 for null encryption. *)

val trailer_bytes : int
(** 2 — pad length + next header. *)

val auth_bytes : int
(** 12 — HMAC-96 integrity check value. *)

val pad_bytes : Crypto.cipher -> payload:int -> int
(** Padding to reach the cipher block size (8 for DES/3DES; none for
    null). The padded region covers payload + trailer. *)

val overhead : Crypto.cipher -> payload:int -> int
(** Total extra wire bytes for a tunnel-mode ESP packet of the given
    inner payload size. *)
