open Mvpn_qos
module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow
module Dscp = Mvpn_net.Dscp
module Ipv4 = Mvpn_net.Ipv4
module Prefix = Mvpn_net.Prefix
module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let packet ?(size = 1000) ?dscp ?(src = "10.0.0.1") ?(dst = "10.1.0.1")
    ?(proto = Flow.Udp) ?(dst_port = 0) () =
  Packet.make ?dscp ~size ~now:0.0
    (Flow.make ~proto ~dst_port (ip src) (ip dst))

(* --- Token bucket ------------------------------------------------------ *)

let test_bucket_burst_then_refill () =
  let b = Token_bucket.create ~rate_bps:8000.0 ~burst_bytes:2000.0 in
  (* 8000 bps = 1000 bytes/s; burst 2000 bytes. *)
  Alcotest.(check bool) "burst ok" true (Token_bucket.take b ~now:0.0 ~bytes:2000);
  Alcotest.(check bool) "empty now" false (Token_bucket.take b ~now:0.0 ~bytes:1);
  Alcotest.(check bool) "after 1s, 1000 bytes" true
    (Token_bucket.take b ~now:1.0 ~bytes:1000);
  Alcotest.(check bool) "but not more" false
    (Token_bucket.take b ~now:1.0 ~bytes:1)

let test_bucket_cap () =
  let b = Token_bucket.create ~rate_bps:8000.0 ~burst_bytes:1000.0 in
  ignore (Token_bucket.take b ~now:0.0 ~bytes:1000);
  (* After a long idle period the bucket holds at most the burst. *)
  Alcotest.(check (float 1e-9)) "capped" 1000.0
    (Token_bucket.available b ~now:100.0)

let test_bucket_nonconforming_consumes_nothing () =
  let b = Token_bucket.create ~rate_bps:8000.0 ~burst_bytes:1000.0 in
  Alcotest.(check bool) "too big" false
    (Token_bucket.take b ~now:0.0 ~bytes:1500);
  Alcotest.(check (float 1e-9)) "balance intact" 1000.0
    (Token_bucket.available b ~now:0.0)

let bucket_conservation =
  QCheck.Test.make ~name:"bucket never grants more than rate*t + burst"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (int_range 1 500))
    (fun sizes ->
       let rate = 80_000.0 and burst = 1_000.0 in
       let b = Token_bucket.create ~rate_bps:rate ~burst_bytes:burst in
       let step = 0.01 in
       let granted = ref 0 in
       List.iteri
         (fun i bytes ->
            let now = float_of_int i *. step in
            if Token_bucket.take b ~now ~bytes then granted := !granted + bytes)
         sizes;
       let elapsed = float_of_int (List.length sizes - 1) *. step in
       float_of_int !granted <= (rate /. 8.0 *. elapsed) +. burst +. 1e-6)

(* --- Meter -------------------------------------------------------------- *)

let test_srtcm_colors () =
  let m = Meter.srtcm ~cir_bps:8000.0 ~cbs_bytes:1000.0 ~ebs_bytes:500.0 in
  Alcotest.(check string) "within cbs" "green"
    (Meter.color_to_string (Meter.meter m ~now:0.0 ~bytes:1000));
  Alcotest.(check string) "within ebs" "yellow"
    (Meter.color_to_string (Meter.meter m ~now:0.0 ~bytes:400));
  Alcotest.(check string) "beyond" "red"
    (Meter.color_to_string (Meter.meter m ~now:0.0 ~bytes:400))

let test_trtcm_colors () =
  let m =
    Meter.trtcm ~cir_bps:8000.0 ~cbs_bytes:500.0 ~pir_bps:16000.0
      ~pbs_bytes:1000.0
  in
  Alcotest.(check string) "conforming" "green"
    (Meter.color_to_string (Meter.meter m ~now:0.0 ~bytes:400));
  Alcotest.(check string) "above cir" "yellow"
    (Meter.color_to_string (Meter.meter m ~now:0.0 ~bytes:400));
  Alcotest.(check string) "above pir" "red"
    (Meter.color_to_string (Meter.meter m ~now:0.0 ~bytes:400))

let test_trtcm_validation () =
  Alcotest.check_raises "pir < cir"
    (Invalid_argument "Meter.trtcm: peak rate below committed rate")
    (fun () ->
       ignore
         (Meter.trtcm ~cir_bps:1000.0 ~cbs_bytes:1.0 ~pir_bps:500.0
            ~pbs_bytes:1.0))

let test_meter_drop_precedence () =
  Alcotest.(check int) "green" 1 (Meter.color_to_drop_precedence Meter.Green);
  Alcotest.(check int) "red" 3 (Meter.color_to_drop_precedence Meter.Red)

(* --- Classifier --------------------------------------------------------- *)

let test_classifier_first_match () =
  let c =
    Classifier.create
      [ Classifier.rule ~proto:Flow.Udp ~dst_port:(5060, 5061) "voice";
        Classifier.rule ~dst:(pfx "10.1.0.0/16") "to-branch";
        Classifier.rule "default" ]
  in
  Alcotest.(check (option string)) "voice" (Some "voice")
    (Classifier.classify c (packet ~proto:Flow.Udp ~dst_port:5060 ()));
  Alcotest.(check (option string)) "branch" (Some "to-branch")
    (Classifier.classify c (packet ~dst:"10.1.2.3" ()));
  Alcotest.(check (option string)) "fallthrough" (Some "default")
    (Classifier.classify c (packet ~dst:"192.0.2.1" ()))

let test_classifier_no_default () =
  let c =
    Classifier.create [Classifier.rule ~proto:Flow.Tcp "tcp-only"]
  in
  Alcotest.(check (option string)) "no match" None
    (Classifier.classify c (packet ~proto:Flow.Udp ()))

let test_classifier_encrypted_hides_flow () =
  let c =
    Classifier.create
      [ Classifier.rule ~proto:Flow.Udp ~dst_port:(5060, 5060) "voice";
        Classifier.rule ~dscp:Dscp.ef "by-dscp" ]
  in
  let p = packet ~proto:Flow.Udp ~dst_port:5060 ~dscp:Dscp.ef () in
  Alcotest.(check (option string)) "cleartext matches 5-tuple" (Some "voice")
    (Classifier.classify c p);
  (* ESP tunnel without ToS copy: nothing matches. *)
  Packet.encapsulate p ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
    ~proto:Flow.Esp ~overhead:57 ~copy_tos:false;
  p.Packet.encrypted <- true;
  Alcotest.(check (option string)) "encrypted matches nothing" None
    (Classifier.classify c p);
  Packet.decapsulate p;
  (* ESP tunnel with ToS copy: the DSCP rule still works. *)
  Packet.encapsulate p ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
    ~proto:Flow.Esp ~overhead:57 ~copy_tos:true;
  p.Packet.encrypted <- true;
  Alcotest.(check (option string)) "tos copy preserves dscp class"
    (Some "by-dscp")
    (Classifier.classify c p)

let test_classifier_flow_interface () =
  let c =
    Classifier.create [Classifier.rule ~src:(pfx "10.0.0.0/8") "internal"]
  in
  Alcotest.(check (option string)) "flow" (Some "internal")
    (Classifier.classify_flow c (Flow.make (ip "10.5.5.5") (ip "192.0.2.1")))

(* --- Queue discipline --------------------------------------------------- *)

let test_fifo_tail_drop () =
  let q = Queue_disc.fifo ~capacity_bytes:2500 in
  let ok1 = Queue_disc.enqueue q ~cls:0 (packet ()) in
  let ok2 = Queue_disc.enqueue q ~cls:0 (packet ()) in
  let full = Queue_disc.enqueue q ~cls:0 (packet ()) in
  Alcotest.(check bool) "first fits" true (ok1 = Ok ());
  Alcotest.(check bool) "second fits" true (ok2 = Ok ());
  Alcotest.(check bool) "third tail-dropped" true
    (full = Error Queue_disc.Tail_drop);
  Alcotest.(check int) "backlog" 2000 (Queue_disc.backlog_bytes q);
  let s = (Queue_disc.stats q).(0) in
  Alcotest.(check int) "drop counted" 1 s.Queue_disc.tail_dropped

let test_fifo_order () =
  let q = Queue_disc.fifo ~capacity_bytes:100_000 in
  let p1 = packet () and p2 = packet () in
  ignore (Queue_disc.enqueue q ~cls:0 p1);
  ignore (Queue_disc.enqueue q ~cls:0 p2);
  (match Queue_disc.dequeue q with
   | Some p -> Alcotest.(check int) "fifo" p1.Packet.uid p.Packet.uid
   | None -> Alcotest.fail "empty");
  match Queue_disc.dequeue q with
  | Some p -> Alcotest.(check int) "fifo 2" p2.Packet.uid p.Packet.uid
  | None -> Alcotest.fail "empty"

let test_priority_scheduler () =
  let q =
    Queue_disc.create ~sched:Queue_disc.Strict
      [| Queue_disc.plain_band 100_000; Queue_disc.plain_band 100_000 |]
  in
  let low = packet () and high = packet () in
  ignore (Queue_disc.enqueue q ~cls:1 low);
  ignore (Queue_disc.enqueue q ~cls:0 high);
  match Queue_disc.dequeue q with
  | Some p ->
    Alcotest.(check int) "band 0 first despite arriving later"
      high.Packet.uid p.Packet.uid
  | None -> Alcotest.fail "empty"

let test_priority_starvation () =
  (* The known EF-priority failure mode: band 1 never serves while band
     0 has traffic. *)
  let q =
    Queue_disc.create ~sched:Queue_disc.Strict
      [| Queue_disc.plain_band 1_000_000; Queue_disc.plain_band 1_000_000 |]
  in
  for _ = 1 to 10 do
    ignore (Queue_disc.enqueue q ~cls:0 (packet ()));
    ignore (Queue_disc.enqueue q ~cls:1 (packet ()))
  done;
  let served_band1 = ref 0 in
  for _ = 1 to 10 do
    match Queue_disc.dequeue q with
    | Some _ -> ()
    | None -> ()
  done;
  let s = Queue_disc.stats q in
  Alcotest.(check int) "band 0 served all ten" 10 s.(0).Queue_disc.dequeued;
  Alcotest.(check int) "band 1 starved" 0 s.(1).Queue_disc.dequeued;
  ignore !served_band1

let test_wrr_shares () =
  let q =
    Queue_disc.create ~sched:(Queue_disc.Wrr [| 3; 1 |])
      [| Queue_disc.plain_band 1_000_000; Queue_disc.plain_band 1_000_000 |]
  in
  for _ = 1 to 40 do
    ignore (Queue_disc.enqueue q ~cls:0 (packet ()));
    ignore (Queue_disc.enqueue q ~cls:1 (packet ()))
  done;
  for _ = 1 to 40 do
    ignore (Queue_disc.dequeue q)
  done;
  let s = Queue_disc.stats q in
  let d0 = s.(0).Queue_disc.dequeued and d1 = s.(1).Queue_disc.dequeued in
  Alcotest.(check int) "total" 40 (d0 + d1);
  (* 3:1 share. *)
  Alcotest.(check bool) "ratio near 3"
    true
    (abs (d0 - (3 * d1)) <= 4)

let test_drr_byte_fairness () =
  (* Band 0 sends big packets, band 1 small; DRR equalizes bytes, not
     packets. *)
  let q =
    Queue_disc.create ~sched:(Queue_disc.Drr [| 1500; 1500 |])
      [| Queue_disc.plain_band 10_000_000; Queue_disc.plain_band 10_000_000 |]
  in
  for _ = 1 to 100 do
    ignore (Queue_disc.enqueue q ~cls:0 (packet ~size:1500 ()));
    ignore (Queue_disc.enqueue q ~cls:1 (packet ~size:100 ()))
  done;
  for _ = 1 to 100 do
    ignore (Queue_disc.dequeue q)
  done;
  let s = Queue_disc.stats q in
  let b0 = s.(0).Queue_disc.bytes_sent and b1 = s.(1).Queue_disc.bytes_sent in
  Alcotest.(check bool) "bytes roughly equal" true
    (float_of_int (abs (b0 - b1)) /. float_of_int (max b0 b1) < 0.25)

let test_wfq_weighted_bytes () =
  let q =
    Queue_disc.create ~sched:(Queue_disc.Wfq [| 3.0; 1.0 |])
      [| Queue_disc.plain_band 10_000_000; Queue_disc.plain_band 10_000_000 |]
  in
  for _ = 1 to 200 do
    ignore (Queue_disc.enqueue q ~cls:0 (packet ~size:500 ()));
    ignore (Queue_disc.enqueue q ~cls:1 (packet ~size:500 ()))
  done;
  for _ = 1 to 200 do
    ignore (Queue_disc.dequeue q)
  done;
  let s = Queue_disc.stats q in
  let b0 = s.(0).Queue_disc.bytes_sent and b1 = s.(1).Queue_disc.bytes_sent in
  let ratio = float_of_int b0 /. float_of_int (max 1 b1) in
  Alcotest.(check bool) "near 3:1" true (ratio > 2.0 && ratio < 4.0)

let test_wfq_work_conserving () =
  let q =
    Queue_disc.create ~sched:(Queue_disc.Wfq [| 10.0; 1.0 |])
      [| Queue_disc.plain_band 1_000_000; Queue_disc.plain_band 1_000_000 |]
  in
  (* Only the low-weight band has traffic: it must still be served. *)
  for _ = 1 to 5 do
    ignore (Queue_disc.enqueue q ~cls:1 (packet ()))
  done;
  let served = ref 0 in
  let rec drain () =
    match Queue_disc.dequeue q with
    | Some _ -> incr served; drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all served" 5 !served

let test_wred_drops_worse_precedence_first () =
  let red = Queue_disc.default_wred ~avg_capacity:50_000.0 in
  let q =
    Queue_disc.create
      ~rng:(Mvpn_sim.Rng.create 42)
      ~sched:Queue_disc.Strict
      [| { Queue_disc.capacity_bytes = 50_000; red = Some red } |]
  in
  (* Push the average queue depth into the drop region, alternating
     in-profile (AF11) and out-of-profile (AF13) packets. *)
  let af11_drops = ref 0 and af13_drops = ref 0 in
  for _ = 1 to 600 do
    (match Queue_disc.enqueue q ~cls:0 (packet ~dscp:(Dscp.af 1 1) ()) with
     | Error Queue_disc.Red_drop -> incr af11_drops
     | Error Queue_disc.Tail_drop | Ok () -> ());
    (match Queue_disc.enqueue q ~cls:0 (packet ~dscp:(Dscp.af 1 3) ()) with
     | Error Queue_disc.Red_drop -> incr af13_drops
     | Error Queue_disc.Tail_drop | Ok () -> ());
    (* Keep the queue hovering: drain a bit. *)
    ignore (Queue_disc.dequeue q)
  done;
  Alcotest.(check bool) "red fired" true (!af13_drops > 0);
  Alcotest.(check bool) "out-of-profile dropped more" true
    (!af13_drops > !af11_drops)

let test_qdisc_validation () =
  Alcotest.check_raises "no bands"
    (Invalid_argument "Queue_disc.create: need at least one band")
    (fun () -> ignore (Queue_disc.create ~sched:Queue_disc.Strict [||]));
  Alcotest.check_raises "bad weights"
    (Invalid_argument "Queue_disc.create: wrr needs 2 weights") (fun () ->
      ignore
        (Queue_disc.create ~sched:(Queue_disc.Wrr [| 1 |])
           [| Queue_disc.plain_band 1; Queue_disc.plain_band 1 |]))

(* Work conservation: any non-strict discipline drains completely and
   dequeues exactly what it accepted, for random enqueue patterns. *)
let qdisc_work_conservation =
  QCheck.Test.make ~name:"qdisc dequeues exactly what it accepts" ~count:100
    QCheck.(pair (int_bound 2)
              (list_of_size (QCheck.Gen.int_range 1 80)
                 (pair (int_bound 3) (int_range 64 1500))))
    (fun (sched_idx, items) ->
       let sched =
         match sched_idx with
         | 0 -> Queue_disc.Strict
         | 1 -> Queue_disc.Wrr [| 4; 3; 2; 1 |]
         | _ -> Queue_disc.Wfq [| 4.0; 3.0; 2.0; 1.0 |]
       in
       let q =
         Queue_disc.create ~sched
           (Array.init 4 (fun _ -> Queue_disc.plain_band 20_000))
       in
       let accepted = ref 0 in
       List.iter
         (fun (cls, size) ->
            match Queue_disc.enqueue q ~cls (packet ~size ()) with
            | Ok () -> incr accepted
            | Error _ -> ())
         items;
       let rec drain n =
         match Queue_disc.dequeue q with
         | Some _ -> drain (n + 1)
         | None -> n
       in
       let dequeued = drain 0 in
       dequeued = !accepted
       && Queue_disc.is_empty q
       && Queue_disc.backlog_bytes q = 0)

let test_qdisc_empty_dequeue () =
  let q = Queue_disc.fifo ~capacity_bytes:1000 in
  Alcotest.(check bool) "none" true (Queue_disc.dequeue q = None);
  Alcotest.(check bool) "empty" true (Queue_disc.is_empty q)

(* --- Cbq ---------------------------------------------------------------- *)

let cpe () =
  Cbq.create
    ~classes:
      [| { Cbq.name = "voice"; rate_bps = 64_000.0; burst_bytes = 2_000.0;
           dscp = Dscp.ef; exceed = Cbq.Police_drop; borrow = false };
         { Cbq.name = "business"; rate_bps = 1e6; burst_bytes = 10_000.0;
           dscp = Dscp.af 3 1; exceed = Cbq.Remark (Dscp.af 3 3);
           borrow = false } |]
    ~rules:
      [ Classifier.rule ~proto:Flow.Udp ~dst_port:(5060, 5061) 0;
        Classifier.rule ~proto:Flow.Tcp 1 ]
    ()

let test_cbq_marks_in_profile () =
  let c = cpe () in
  let p = packet ~size:200 ~proto:Flow.Udp ~dst_port:5060 () in
  (match Cbq.process c ~now:0.0 p with
   | Cbq.Marked { dscp; class_name } ->
     Alcotest.(check string) "class" "voice" class_name;
     Alcotest.(check bool) "ef" true (Dscp.equal dscp Dscp.ef);
     Alcotest.(check bool) "written to header" true
       (Dscp.equal p.Packet.inner.Packet.dscp Dscp.ef)
   | Cbq.Dropped _ -> Alcotest.fail "dropped")

let test_cbq_polices_voice () =
  let c = cpe () in
  (* Voice bucket: 2000 bytes burst; two 1500-byte packets exceed it. *)
  let p1 = packet ~size:1500 ~proto:Flow.Udp ~dst_port:5060 () in
  let p2 = packet ~size:1500 ~proto:Flow.Udp ~dst_port:5060 () in
  (match Cbq.process c ~now:0.0 p1 with
   | Cbq.Marked _ -> ()
   | Cbq.Dropped _ -> Alcotest.fail "first should pass");
  match Cbq.process c ~now:0.0 p2 with
  | Cbq.Dropped { class_name } ->
    Alcotest.(check string) "policed" "voice" class_name
  | Cbq.Marked _ -> Alcotest.fail "second should be policed"

let test_cbq_remarks_business_excess () =
  let c = cpe () in
  let send size =
    let p = packet ~size ~proto:Flow.Tcp () in
    Cbq.process c ~now:0.0 p
  in
  (match send 10_000 with
   | Cbq.Marked { dscp; _ } ->
     Alcotest.(check bool) "in profile af31" true
       (Dscp.equal dscp (Dscp.af 3 1))
   | Cbq.Dropped _ -> Alcotest.fail "dropped");
  match send 5_000 with
  | Cbq.Marked { dscp; _ } ->
    Alcotest.(check bool) "excess remarked af33" true
      (Dscp.equal dscp (Dscp.af 3 3))
  | Cbq.Dropped _ -> Alcotest.fail "should remark, not drop"

let borrowing_cpe () =
  (* Business may borrow from the shared 1 Mb/s parent; voice may not. *)
  Cbq.create ~parent_rate_bps:1e6
    ~classes:
      [| { Cbq.name = "voice"; rate_bps = 64_000.0; burst_bytes = 2_000.0;
           dscp = Dscp.ef; exceed = Cbq.Police_drop; borrow = false };
         { Cbq.name = "business"; rate_bps = 200_000.0;
           burst_bytes = 5_000.0; dscp = Dscp.af 3 1;
           exceed = Cbq.Police_drop; borrow = true } |]
    ~rules:
      [ Classifier.rule ~proto:Flow.Udp ~dst_port:(5060, 5061) 0;
        Classifier.rule ~proto:Flow.Tcp 1 ]
    ()

let test_cbq_borrowing_uses_idle_share () =
  let c = borrowing_cpe () in
  (* Business exhausts its own 5 kB burst, then keeps borrowing from
     the idle parent allocation instead of being policed. *)
  let send_business size =
    Cbq.process c ~now:0.0 (packet ~size ~proto:Flow.Tcp ())
  in
  (match send_business 5_000 with
   | Cbq.Marked _ -> ()
   | Cbq.Dropped _ -> Alcotest.fail "in-profile dropped");
  (match send_business 5_000 with
   | Cbq.Marked { dscp; _ } ->
     Alcotest.(check bool) "borrowed traffic keeps its class" true
       (Dscp.equal dscp (Dscp.af 3 1))
   | Cbq.Dropped _ -> Alcotest.fail "should borrow, siblings are idle");
  (* The parent is finite: ~125 kB at time 0; drain it and the class
     is finally policed. *)
  let rec drain n =
    if n > 200 then Alcotest.fail "parent never exhausted"
    else
      match send_business 5_000 with
      | Cbq.Marked _ -> drain (n + 1)
      | Cbq.Dropped _ -> ()
  in
  drain 0

let test_cbq_no_borrow_still_policed () =
  let c = borrowing_cpe () in
  (* Voice (borrow = false) is policed at its own burst even though the
     parent is full. *)
  let send_voice size =
    Cbq.process c ~now:0.0
      (packet ~size ~proto:Flow.Udp ~dst_port:5060 ())
  in
  (match send_voice 2_000 with
   | Cbq.Marked _ -> ()
   | Cbq.Dropped _ -> Alcotest.fail "in-profile voice dropped");
  match send_voice 2_000 with
  | Cbq.Dropped _ -> ()
  | Cbq.Marked _ -> Alcotest.fail "non-borrowing class must be policed"

let test_cbq_default_class () =
  let c = cpe () in
  let p = packet ~proto:Flow.Icmp () in
  match Cbq.process c ~now:0.0 p with
  | Cbq.Marked { dscp; class_name } ->
    Alcotest.(check string) "default" "default" class_name;
    Alcotest.(check bool) "best effort" true
      (Dscp.equal dscp Dscp.best_effort)
  | Cbq.Dropped _ -> Alcotest.fail "default must not drop"

(* --- Port ---------------------------------------------------------------- *)

let test_port_serialization_and_delay () =
  let e = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_node topo and b = Topology.add_node topo in
  (* 8 kbps: a 1000-byte packet takes 1 s to serialize; delay 0.5 s. *)
  let l, _ = Topology.connect topo a b ~bandwidth:8000.0 ~delay:0.5 in
  let arrivals = ref [] in
  let port =
    Port.create e ~link:l ~qdisc:(Queue_disc.fifo ~capacity_bytes:1_000_000)
      ~classify:(fun _ -> 0)
      ~on_deliver:(fun p -> arrivals := (Engine.now e, p) :: !arrivals)
  in
  Port.send port (packet ~size:1000 ());
  Port.send port (packet ~size:1000 ());
  Engine.run e;
  let times = List.rev_map fst !arrivals in
  Alcotest.(check (list (float 1e-6))) "pipelined delivery" [1.5; 2.5] times;
  let c = Port.counters port in
  Alcotest.(check int) "delivered" 2 c.Port.delivered;
  Alcotest.(check (float 1e-9)) "busy 2s" 2.0 c.Port.busy_seconds

let test_port_down_link_drops () =
  let e = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_node topo and b = Topology.add_node topo in
  let l, _ = Topology.connect topo a b ~bandwidth:8000.0 ~delay:0.1 in
  Topology.set_duplex_state topo a b false;
  let port =
    Port.create e ~link:l ~qdisc:(Queue_disc.fifo ~capacity_bytes:1_000_000)
      ~classify:(fun _ -> 0)
      ~on_deliver:(fun _ -> Alcotest.fail "must not deliver")
  in
  Port.send port (packet ());
  Engine.run e;
  Alcotest.(check int) "dropped" 1 (Port.counters port).Port.dropped_link_down

let test_port_queue_drop_counted () =
  let e = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_node topo and b = Topology.add_node topo in
  let l, _ = Topology.connect topo a b ~bandwidth:8000.0 ~delay:0.1 in
  let port =
    Port.create e ~link:l ~qdisc:(Queue_disc.fifo ~capacity_bytes:1500)
      ~classify:(fun _ -> 0)
      ~on_deliver:(fun _ -> ())
  in
  (* First starts transmitting immediately (leaves the queue); then one
     queues; the third overflows. *)
  Port.send port (packet ~size:1000 ());
  Port.send port (packet ~size:1000 ());
  Port.send port (packet ~size:1000 ());
  Engine.run e;
  let c = Port.counters port in
  Alcotest.(check int) "one dropped" 1 c.Port.dropped_queue;
  Alcotest.(check int) "two through" 2 c.Port.delivered

let test_port_utilization () =
  let e = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_node topo and b = Topology.add_node topo in
  let l, _ = Topology.connect topo a b ~bandwidth:8000.0 ~delay:0.0 in
  let port =
    Port.create e ~link:l ~qdisc:(Queue_disc.fifo ~capacity_bytes:1_000_000)
      ~classify:(fun _ -> 0)
      ~on_deliver:(fun _ -> ())
  in
  Port.send port (packet ~size:1000 ());
  Engine.run ~until:2.0 e;
  Alcotest.(check (float 1e-9)) "50% busy" 0.5
    (Port.utilization port ~now:2.0)

(* --- Sla ----------------------------------------------------------------- *)

let test_sla_report () =
  let c = Sla.collector () in
  Sla.on_send c ~now:0.0 ~bytes:1000;
  Sla.on_send c ~now:0.1 ~bytes:1000;
  Sla.on_send c ~now:0.2 ~bytes:1000;
  let recv at created =
    let p =
      Packet.make ~size:1000 ~now:created
        (Flow.make (ip "10.0.0.1") (ip "10.1.0.1"))
    in
    Sla.on_receive c ~now:at p
  in
  recv 0.05 0.0;
  recv 0.16 0.1;
  let r = Sla.report c in
  Alcotest.(check int) "sent" 3 r.Sla.sent;
  Alcotest.(check int) "received" 2 r.Sla.received;
  Alcotest.(check (float 1e-9)) "loss 1/3" (1.0 /. 3.0) r.Sla.loss;
  Alcotest.(check (float 1e-9)) "mean delay" 0.055 r.Sla.mean_delay;
  Alcotest.(check (float 1e-9)) "jitter" 0.01 r.Sla.jitter;
  Alcotest.(check (float 1e-9)) "duration" 0.16 r.Sla.duration

let test_sla_check_violations () =
  let c = Sla.collector () in
  for i = 0 to 99 do
    let now = float_of_int i *. 0.02 in
    Sla.on_send c ~now ~bytes:200;
    (* 300 ms delay: violates the voice spec. *)
    let p =
      Packet.make ~size:200 ~now (Flow.make (ip "10.0.0.1") (ip "10.1.0.1"))
    in
    Sla.on_receive c ~now:(now +. 0.3) p
  done;
  let r = Sla.report c in
  let violations = Sla.check Sla.voice_spec r in
  Alcotest.(check bool) "violations found" true (List.length violations >= 2);
  Alcotest.(check bool) "not compliant" false (Sla.complies Sla.voice_spec r);
  Alcotest.(check bool) "best effort always passes" true
    (Sla.complies Sla.best_effort_spec r)

let test_sla_reorder_detection () =
  let c = Sla.collector () in
  let flow = Flow.make (ip "10.0.0.1") (ip "10.1.0.1") in
  let recv seq =
    Sla.on_send c ~now:0.0 ~bytes:100;
    Sla.on_receive c ~now:0.1
      (Packet.make ~seq ~size:100 ~now:0.0 flow)
  in
  recv 1;
  recv 2;
  recv 4;  (* gap: loss, not reorder *)
  recv 3;  (* overtaken: reorder *)
  recv 5;
  let r = Sla.report c in
  Alcotest.(check int) "one reordered" 1 r.Sla.reordered;
  (* Different flows do not interfere. *)
  let other = Flow.make (ip "10.0.0.2") (ip "10.1.0.1") in
  Sla.on_receive c ~now:0.2 (Packet.make ~seq:1 ~size:100 ~now:0.0 other);
  Alcotest.(check int) "per-flow tracking" 1 (Sla.report c).Sla.reordered

let test_sla_empty_collector () =
  let r = Sla.report (Sla.collector ()) in
  Alcotest.(check (float 1e-9)) "no loss when nothing sent" 0.0 r.Sla.loss;
  Alcotest.(check bool) "voice passes vacuously" true
    (Sla.complies Sla.voice_spec r)

(* --- Shaper -------------------------------------------------------------- *)

let test_shaper_passes_conforming () =
  let e = Engine.create () in
  let out = ref 0 in
  let sh =
    Shaper.create e ~rate_bps:80_000.0 ~burst_bytes:2_000.0
      ~queue_bytes:100_000 ~release:(fun _ -> incr out)
  in
  Alcotest.(check bool) "in-burst passes now" true
    (Shaper.offer sh (packet ~size:1000 ()));
  Alcotest.(check int) "released immediately" 1 !out;
  Alcotest.(check int) "not counted as shaped" 0 (Shaper.shaped sh)

let test_shaper_delays_excess () =
  let e = Engine.create () in
  let releases = ref [] in
  let sh =
    (* 80 kb/s = 10 kB/s, burst 1 kB. *)
    Shaper.create e ~rate_bps:80_000.0 ~burst_bytes:1_000.0
      ~queue_bytes:100_000
      ~release:(fun p -> releases := (Engine.now e, p) :: !releases)
  in
  (* Three 1000-byte packets at t=0: first passes, the others drain at
     0.1 s spacing. *)
  for _ = 1 to 3 do
    ignore (Shaper.offer sh (packet ~size:1000 ()))
  done;
  Engine.run e;
  let times = List.rev_map fst !releases in
  (match times with
   | [t1; t2; t3] ->
     Alcotest.(check (float 1e-6)) "first immediate" 0.0 t1;
     Alcotest.(check (float 1e-3)) "second after refill" 0.1 t2;
     Alcotest.(check (float 1e-3)) "third a period later" 0.2 t3
   | _ -> Alcotest.failf "expected 3 releases, got %d" (List.length times));
  Alcotest.(check int) "two shaped" 2 (Shaper.shaped sh);
  Alcotest.(check int) "none dropped" 0 (Shaper.dropped sh)

let test_shaper_buffer_overflow () =
  let e = Engine.create () in
  let sh =
    Shaper.create e ~rate_bps:8_000.0 ~burst_bytes:1_000.0
      ~queue_bytes:2_000 ~release:(fun _ -> ())
  in
  ignore (Shaper.offer sh (packet ~size:1000 ()));  (* passes *)
  ignore (Shaper.offer sh (packet ~size:1000 ()));  (* queued *)
  ignore (Shaper.offer sh (packet ~size:1000 ()));  (* queued *)
  Alcotest.(check bool) "fourth refused" false
    (Shaper.offer sh (packet ~size:1000 ()));
  Alcotest.(check int) "dropped" 1 (Shaper.dropped sh)

(* The shaper's defining property: output never exceeds rate*t + burst,
   regardless of the arrival pattern. *)
let shaper_conformance =
  QCheck.Test.make ~name:"shaper output conforms to the contract" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60)
              (pair (int_range 100 1500) (int_range 0 50)))
    (fun arrivals ->
       let e = Engine.create () in
       let rate = 400_000.0 and burst = 3_000.0 in
       let released_bytes = ref 0 in
       let last = ref 0.0 in
       let sh =
         Shaper.create e ~rate_bps:rate ~burst_bytes:burst
           ~queue_bytes:1_000_000
           ~release:(fun p ->
               released_bytes := !released_bytes + p.Packet.size;
               last := Engine.now e)
       in
       let now = ref 0.0 in
       List.iter
         (fun (size, gap_ms) ->
            now := !now +. (float_of_int gap_ms /. 1000.0);
            Engine.schedule_at e ~time:!now (fun () ->
                ignore (Shaper.offer sh (packet ~size ()))))
         arrivals;
       Engine.run e;
       float_of_int !released_bytes
       <= (rate /. 8.0 *. !last) +. burst +. 1500.0 +. 1e-6)

(* --- Intserv ------------------------------------------------------------- *)

let intserv_topo () =
  let topo = Topology.create () in
  let ids = Topology.line topo 4 ~bandwidth:10e6 ~delay:0.001 in
  (topo, ids)

let test_intserv_reserve_and_state () =
  let topo, ids = intserv_topo () in
  let is = Intserv.create topo in
  let flow i =
    Flow.make ~src_port:i (ip "10.0.0.1") (ip "10.3.0.1")
  in
  let spec = { Intserv.rate_bps = 1e6; bucket_bytes = 10_000.0 } in
  (match Intserv.reserve is ~src:ids.(0) ~dst:ids.(3) (flow 1) spec with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "reserve: %s" e);
  Alcotest.(check int) "one reservation" 1 (Intserv.reservation_count is);
  (* Per-flow state on all 4 routers of the path. *)
  Array.iter
    (fun node ->
       Alcotest.(check int) "flow state" 1 (Intserv.flow_state_at is node))
    ids;
  Alcotest.(check int) "total" 4 (Intserv.total_flow_state is)

let test_intserv_admission_limit () =
  let topo, ids = intserv_topo () in
  (* 10 Mb/s links, 75% reservable = 7.5 Mb/s; 1 Mb/s flows: 7 fit. *)
  let is = Intserv.create topo in
  let spec = { Intserv.rate_bps = 1e6; bucket_bytes = 10_000.0 } in
  let admitted = ref 0 in
  for i = 1 to 10 do
    match
      Intserv.reserve is ~src:ids.(0) ~dst:ids.(3)
        (Flow.make ~src_port:i (ip "10.0.0.1") (ip "10.3.0.1"))
        spec
    with
    | Ok _ -> incr admitted
    | Error _ -> ()
  done;
  Alcotest.(check int) "seven admitted" 7 !admitted

let test_intserv_release_returns_capacity () =
  let topo, ids = intserv_topo () in
  let is = Intserv.create topo in
  let spec = { Intserv.rate_bps = 7e6; bucket_bytes = 10_000.0 } in
  let flow1 = Flow.make ~src_port:1 (ip "10.0.0.1") (ip "10.3.0.1") in
  let flow2 = Flow.make ~src_port:2 (ip "10.0.0.1") (ip "10.3.0.1") in
  let id1 =
    match Intserv.reserve is ~src:ids.(0) ~dst:ids.(3) flow1 spec with
    | Ok id -> id
    | Error e -> Alcotest.failf "first: %s" e
  in
  (match Intserv.reserve is ~src:ids.(0) ~dst:ids.(3) flow2 spec with
   | Ok _ -> Alcotest.fail "second should not fit"
   | Error _ -> ());
  Alcotest.(check bool) "released" true (Intserv.release is id1);
  (match Intserv.reserve is ~src:ids.(0) ~dst:ids.(3) flow2 spec with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "after release: %s" e);
  Alcotest.(check int) "state follows" 4 (Intserv.total_flow_state is)

let test_intserv_duplicate_flow_rejected () =
  let topo, ids = intserv_topo () in
  let is = Intserv.create topo in
  let spec = { Intserv.rate_bps = 1e5; bucket_bytes = 1_000.0 } in
  let flow = Flow.make (ip "10.0.0.1") (ip "10.3.0.1") in
  (match Intserv.reserve is ~src:ids.(0) ~dst:ids.(3) flow spec with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "first: %s" e);
  match Intserv.reserve is ~src:ids.(0) ~dst:ids.(3) flow spec with
  | Ok _ -> Alcotest.fail "duplicate admitted"
  | Error _ -> ()

let test_intserv_unreachable () =
  let topo = Topology.create () in
  let a = Topology.add_node topo and b = Topology.add_node topo in
  let is = Intserv.create topo in
  match
    Intserv.reserve is ~src:a ~dst:b
      (Flow.make (ip "10.0.0.1") (ip "10.1.0.1"))
      { Intserv.rate_bps = 1e5; bucket_bytes = 1_000.0 }
  with
  | Ok _ -> Alcotest.fail "reserved across a partition"
  | Error _ -> ()

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "qos"
    [ ("token-bucket",
       [ Alcotest.test_case "burst then refill" `Quick
           test_bucket_burst_then_refill;
         Alcotest.test_case "cap" `Quick test_bucket_cap;
         Alcotest.test_case "non-conforming" `Quick
           test_bucket_nonconforming_consumes_nothing;
         qt bucket_conservation ]);
      ("meter",
       [ Alcotest.test_case "srtcm colors" `Quick test_srtcm_colors;
         Alcotest.test_case "trtcm colors" `Quick test_trtcm_colors;
         Alcotest.test_case "trtcm validation" `Quick test_trtcm_validation;
         Alcotest.test_case "drop precedence" `Quick
           test_meter_drop_precedence ]);
      ("classifier",
       [ Alcotest.test_case "first match" `Quick test_classifier_first_match;
         Alcotest.test_case "no default" `Quick test_classifier_no_default;
         Alcotest.test_case "encryption hides flow" `Quick
           test_classifier_encrypted_hides_flow;
         Alcotest.test_case "flow interface" `Quick
           test_classifier_flow_interface ]);
      ("queue-disc",
       [ Alcotest.test_case "fifo tail drop" `Quick test_fifo_tail_drop;
         Alcotest.test_case "fifo order" `Quick test_fifo_order;
         Alcotest.test_case "strict priority" `Quick test_priority_scheduler;
         Alcotest.test_case "priority starvation" `Quick
           test_priority_starvation;
         Alcotest.test_case "wrr shares" `Quick test_wrr_shares;
         Alcotest.test_case "drr byte fairness" `Quick
           test_drr_byte_fairness;
         Alcotest.test_case "wfq weighted bytes" `Quick
           test_wfq_weighted_bytes;
         Alcotest.test_case "wfq work conserving" `Quick
           test_wfq_work_conserving;
         Alcotest.test_case "wred precedence" `Quick
           test_wred_drops_worse_precedence_first;
         Alcotest.test_case "validation" `Quick test_qdisc_validation;
         qt qdisc_work_conservation;
         Alcotest.test_case "empty dequeue" `Quick test_qdisc_empty_dequeue ]);
      ("cbq",
       [ Alcotest.test_case "marks in profile" `Quick
           test_cbq_marks_in_profile;
         Alcotest.test_case "polices voice" `Quick test_cbq_polices_voice;
         Alcotest.test_case "remarks business excess" `Quick
           test_cbq_remarks_business_excess;
         Alcotest.test_case "borrowing uses idle share" `Quick
           test_cbq_borrowing_uses_idle_share;
         Alcotest.test_case "non-borrowing still policed" `Quick
           test_cbq_no_borrow_still_policed;
         Alcotest.test_case "default class" `Quick test_cbq_default_class ]);
      ("port",
       [ Alcotest.test_case "serialization and delay" `Quick
           test_port_serialization_and_delay;
         Alcotest.test_case "down link drops" `Quick
           test_port_down_link_drops;
         Alcotest.test_case "queue drop counted" `Quick
           test_port_queue_drop_counted;
         Alcotest.test_case "utilization" `Quick test_port_utilization ]);
      ("shaper",
       [ Alcotest.test_case "passes conforming" `Quick
           test_shaper_passes_conforming;
         Alcotest.test_case "delays excess" `Quick test_shaper_delays_excess;
         Alcotest.test_case "buffer overflow" `Quick
           test_shaper_buffer_overflow;
         qt shaper_conformance ]);
      ("intserv",
       [ Alcotest.test_case "reserve and state" `Quick
           test_intserv_reserve_and_state;
         Alcotest.test_case "admission limit" `Quick
           test_intserv_admission_limit;
         Alcotest.test_case "release returns capacity" `Quick
           test_intserv_release_returns_capacity;
         Alcotest.test_case "duplicate rejected" `Quick
           test_intserv_duplicate_flow_rejected;
         Alcotest.test_case "unreachable" `Quick test_intserv_unreachable ]);
      ("sla",
       [ Alcotest.test_case "report" `Quick test_sla_report;
         Alcotest.test_case "check violations" `Quick
           test_sla_check_violations;
         Alcotest.test_case "reorder detection" `Quick
           test_sla_reorder_detection;
         Alcotest.test_case "empty collector" `Quick
           test_sla_empty_collector ]) ]
