(** Customer sites.

    A site is one customer location: a private prefix behind a CE
    router, attached to a PE router of the provider backbone (Figure 2's
    "VPN sites connection interface"). Private prefixes may overlap
    freely across VPNs — making that work is the whole point of the RD
    machinery. *)

type t = {
  id : int;  (** globally unique site id *)
  name : string;
  vpn : int;  (** the VPN this site belongs to *)
  prefix : Mvpn_net.Prefix.t;  (** the site's private address space *)
  ce_node : int;  (** topology node of the site's CE router *)
  pe_node : int;  (** the provider edge it attaches to *)
}

val make :
  id:int -> name:string -> vpn:int -> prefix:Mvpn_net.Prefix.t ->
  ce_node:int -> pe_node:int -> t

val host : t -> int -> Mvpn_net.Ipv4.t
(** [host site i] is the [i]-th usable address inside the site, for
    generating traffic endpoints.
    @raise Invalid_argument if outside the prefix. *)

val pp : Format.formatter -> t -> unit
