examples/group_communication.ml: Backbone Format List Mpls_vpn Mvpn_core Mvpn_net Mvpn_sim Network Printf Site
