(** Engine self-profiler: the dispatch-cost ledger.

    Splits per-event wall time into pop / handler / telemetry-flush
    buckets and counts scheduled events per handler kind. Every
    {!Engine.t} owns one ledger, disabled by default; while disabled
    the engine's run loops carry no profiling branch or clock read, so
    the profiler is allocation- and cost-free when off. Enable it with
    [Profile.enable (Engine.profiler e)] before the run.

    Wall-time numbers are host-dependent, so {!publish} exports gauges
    only (never counters — counter totals are gated byte-identical
    across shard counts). *)

type t

(** {2 Handler kinds}

    A kind tags a family of event closures (["port.tx"],
    ["traffic.src"], ...). Register once at module-init time, then
    schedule through {!Engine.schedule_kind}. Counting happens at
    schedule time — a drained run executes exactly what it schedules,
    so scheduled-per-kind equals executed-per-kind for whole-run
    profiles without storing tags in the queue or wrapping closures. *)

type kind

val register_kind : string -> kind
(** Get or create the process-wide kind for [name]. *)

val kind_names : unit -> (string * kind) list
(** All registered kinds, in registration order. *)

(** {2 Ledger} *)

val create : unit -> t
(** A fresh, disabled ledger. {!Engine.create} makes one per engine. *)

val enabled : t -> bool

val enable : t -> unit
(** Takes effect at the next run-window entry. *)

val disable : t -> unit

val reset : t -> unit
(** Zero every bucket and kind count. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds as a native int. No allocation. *)

val note_event : t -> pop_ns:int -> handler_ns:int -> unit
(** Engine hook: account one executed event. *)

val note_pop : t -> int -> unit
(** Engine hook: account pop time with no executed event (the
    unproductive final pop of a drained window). *)

val note_flush : t -> int -> unit
(** Engine hook: account one batch-window telemetry flush. *)

val note_kind : t -> kind -> unit
(** Engine hook: account one scheduled event of [kind]. *)

val pop_seconds : t -> float
(** Wall time spent popping events off the queue. *)

val handler_seconds : t -> float
(** Wall time spent inside event closures. *)

val flush_seconds : t -> float
(** Wall time spent in batch-window telemetry flushes. *)

val events : t -> int
(** Events accounted by {!note_event}. *)

val kind_count : t -> kind -> int

val publish : t -> unit
(** Export the ledger as [sim.profile.*] gauges: [pop_s], [handler_s],
    [flush_s], [events] and [kind.<name>] per registered kind. Forces
    telemetry on for the writes (harness operation). *)

val pp : Format.formatter -> t -> unit
