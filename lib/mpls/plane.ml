type ftn_entry = { push : int; next_hop : int }

type node_state = {
  allocator : Label.Allocator.t;
  lfib : Lfib.t;
  ftn : (Fec.t, ftn_entry) Hashtbl.t;
  (* Monotonic FTN mutation counter: bumped by install_ftn and
     successful remove_ftn (so LDP refresh, which reinstalls bindings,
     bumps it many times). FEC → FTN caches compare it to detect
     staleness. *)
  mutable ftn_gen : int;
}

type t = node_state array

let create ~nodes =
  Array.init nodes (fun _ ->
      { allocator = Label.Allocator.create (); lfib = Lfib.create ();
        ftn = Hashtbl.create 16; ftn_gen = 0 })

let node_count t = Array.length t

let get (t : t) node =
  if node < 0 || node >= Array.length t then
    invalid_arg (Printf.sprintf "Plane: unknown node %d" node);
  t.(node)

let allocator t node = (get t node).allocator

let lfib t node = (get t node).lfib

let install_ftn t node fec entry =
  let s = get t node in
  Hashtbl.replace s.ftn fec entry;
  s.ftn_gen <- s.ftn_gen + 1

let remove_ftn t node fec =
  let s = get t node in
  if Hashtbl.mem s.ftn fec then begin
    Hashtbl.remove s.ftn fec;
    s.ftn_gen <- s.ftn_gen + 1;
    true
  end else false

let find_ftn t node fec = Hashtbl.find_opt (get t node).ftn fec

let clear_ftn t node =
  let s = get t node in
  if Hashtbl.length s.ftn > 0 then begin
    Hashtbl.reset s.ftn;
    s.ftn_gen <- s.ftn_gen + 1
  end

let ftn_generation t node = (get t node).ftn_gen

let ftn_size t node = Hashtbl.length (get t node).ftn

let total_lfib_entries t =
  Array.fold_left (fun acc s -> acc + Lfib.size s.lfib) 0 t

let total_labels_allocated t =
  Array.fold_left (fun acc s -> acc + Label.Allocator.allocated s.allocator) 0 t
