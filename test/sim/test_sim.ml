open Mvpn_sim

(* --- Rng -------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.fork parent in
  let c1 = Rng.bits64 child in
  (* Re-deriving from the same parent state gives a different child. *)
  let child2 = Rng.fork parent in
  Alcotest.(check bool) "children differ" true (Rng.bits64 child2 <> c1)

let test_rng_split_indexed () =
  (* split derives from the parent's current position and the index
     only: it never advances the parent, so substream i is the same
     stream regardless of how many siblings are taken or in what
     order. *)
  let parent = Rng.create 7 in
  let before = Rng.split parent 0 in
  let again = Rng.split parent 0 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same substream" (Rng.bits64 before)
      (Rng.bits64 again)
  done;
  let backwards = List.rev_map (Rng.split parent) [ 2; 1; 0 ] in
  let forwards = List.map (Rng.split parent) [ 0; 1; 2 ] in
  List.iter2
    (fun a b ->
       Alcotest.(check int64) "order independent" (Rng.bits64 a)
         (Rng.bits64 b))
    backwards forwards;
  let untouched = Rng.create 7 in
  Alcotest.(check int64) "parent unmoved" (Rng.bits64 untouched)
    (Rng.bits64 parent)

let test_rng_split_distinct () =
  let parent = Rng.create 23 in
  let seen = Hashtbl.create 64 in
  for i = 0 to 63 do
    let v = Rng.bits64 (Rng.split parent i) in
    if Hashtbl.mem seen v then
      Alcotest.failf "substreams %d and %d collide" (Hashtbl.find seen v) i;
    Hashtbl.add seen v i
  done;
  (* splitting after the parent advances gives fresh substreams *)
  let first = Rng.bits64 (Rng.split parent 0) in
  ignore (Rng.bits64 parent);
  Alcotest.(check bool) "substreams track parent position" true
    (Rng.bits64 (Rng.split parent 0) <> first)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_int_in () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_rng_uniform_mean () =
  let r = Rng.create 11 in
  let s = Stats.Summary.create () in
  for _ = 1 to 20_000 do
    Stats.Summary.add s (Rng.uniform r)
  done;
  let m = Stats.Summary.mean s in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (m -. 0.5) < 0.01)

let test_rng_exponential_mean () =
  let r = Rng.create 13 in
  let s = Stats.Summary.create () in
  for _ = 1 to 20_000 do
    Stats.Summary.add s (Rng.exponential r ~rate:4.0)
  done;
  let m = Stats.Summary.mean s in
  Alcotest.(check bool) "mean near 1/4" true (abs_float (m -. 0.25) < 0.01)

let test_rng_pareto_min () =
  let r = Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Rng.pareto r ~shape:1.5 ~scale:100.0 in
    if v < 100.0 then Alcotest.failf "below scale: %f" v
  done

let test_rng_normal_moments () =
  let r = Rng.create 19 in
  let s = Stats.Summary.create () in
  for _ = 1 to 20_000 do
    Stats.Summary.add s (Rng.normal r ~mean:10.0 ~stddev:2.0)
  done;
  Alcotest.(check bool) "mean" true
    (abs_float (Stats.Summary.mean s -. 10.0) < 0.1);
  Alcotest.(check bool) "stddev" true
    (abs_float (Stats.Summary.stddev s -. 2.0) < 0.1)

let test_rng_shuffle_permutes () =
  let r = Rng.create 23 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

(* --- Heap ------------------------------------------------------------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (k, v) -> Heap.push h k v)
    [(3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z")];
  let drain () =
    let rec go acc =
      match Heap.pop h with
      | None -> List.rev acc
      | Some (_, v) -> go (v :: acc)
    in
    go []
  in
  Alcotest.(check (list string)) "sorted" ["z"; "a"; "b"; "c"] (drain ())

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) ["first"; "second"; "third"];
  let pops =
    List.filter_map (fun _ -> Option.map snd (Heap.pop h)) [(); (); ()]
  in
  Alcotest.(check (list string)) "insertion order"
    ["first"; "second"; "third"] pops

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty pop" true (Heap.pop h = None);
  Alcotest.(check bool) "empty peek" true (Heap.peek h = None);
  Alcotest.(check int) "size" 0 (Heap.size h)

let heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun keys ->
       let h = Heap.create () in
       List.iteri (fun i k -> Heap.push h k i) keys;
       let rec drain acc =
         match Heap.pop h with
         | None -> List.rev acc
         | Some (k, _) -> drain (k :: acc)
       in
       let popped = drain [] in
       popped = List.sort Float.compare keys)

(* --- Scheduler contract (Heap and Calendar through one harness) ------- *)

(* Both event queues must implement the same total order: ascending key,
   FIFO among equal keys. The property drives random interleaved
   push/pop sequences (keys drawn from a small set so ties are common)
   against a brute-force reference model; Heap is the original oracle,
   Calendar must be indistinguishable from it. *)
module Scheduler_contract (Q : sig
    type 'a t

    val create : unit -> 'a t
    val push : 'a t -> float -> 'a -> unit
    val pop : 'a t -> (float * 'a) option
    val size : 'a t -> int
  end) =
struct
  (* Reference pop: minimum (key, insertion id) over a plain list. *)
  let ref_pop model =
    match !model with
    | [] -> None
    | first :: rest ->
      let ((_, bi) as best) =
        List.fold_left
          (fun ((bk, bi) as b) ((k, i) as c) ->
             if k < bk || (k = bk && i < bi) then c else b)
          first rest
      in
      model := List.filter (fun (_, i) -> i <> bi) !model;
      Some best

  (* An op is [None] (pop) or [Some key_choice] (push). *)
  let agrees ops =
    let q = Q.create () in
    let model = ref [] in
    let next_id = ref 0 in
    let ok = ref true in
    let check_pop () =
      match (Q.pop q, ref_pop model) with
      | Some (k, v), Some (rk, ri) -> if k <> rk || v <> ri then ok := false
      | None, None -> ()
      | _ -> ok := false
    in
    List.iter
      (fun op ->
         match op with
         | None -> check_pop ()
         | Some kc ->
           let k = float_of_int (kc : int) *. 0.5 in
           let id = !next_id in
           incr next_id;
           Q.push q k id;
           model := (k, id) :: !model)
      ops;
    while Q.size q > 0 || !model <> [] do
      check_pop ()
    done;
    !ok

  let fifo_contract name =
    QCheck.Test.make ~name ~count:150
      QCheck.(list_of_size (QCheck.Gen.int_range 0 120)
                (option (int_bound 7)))
      agrees
end

module Heap_contract = Scheduler_contract (Heap)
module Calendar_contract = Scheduler_contract (Calendar)

let heap_fifo_contract =
  Heap_contract.fifo_contract "heap matches the (key, seq) reference"

let calendar_fifo_contract =
  Calendar_contract.fifo_contract "calendar matches the (key, seq) reference"

(* --- Calendar --------------------------------------------------------- *)

let test_calendar_order () =
  let c = Calendar.create () in
  List.iter (fun (k, v) -> Calendar.push c k v)
    [(3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z")];
  let rec drain acc =
    match Calendar.pop c with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list string)) "sorted" ["z"; "a"; "b"; "c"] (drain [])

let test_calendar_fifo_ties () =
  let c = Calendar.create () in
  List.iter (fun v -> Calendar.push c 1.0 v) ["first"; "second"; "third"];
  let pops =
    List.filter_map (fun _ -> Option.map snd (Calendar.pop c)) [(); (); ()]
  in
  Alcotest.(check (list string)) "insertion order"
    ["first"; "second"; "third"] pops

let test_calendar_empty () =
  let c : int Calendar.t = Calendar.create () in
  Alcotest.(check bool) "empty pop" true (Calendar.pop c = None);
  Alcotest.(check bool) "empty peek" true (Calendar.peek c = None);
  Alcotest.(check int) "size" 0 (Calendar.size c)

let test_calendar_clear () =
  let c = Calendar.create () in
  Calendar.push c 1.0 "x";
  Calendar.push c 2.0 "y";
  Calendar.clear c;
  Alcotest.(check int) "cleared" 0 (Calendar.size c);
  Alcotest.(check bool) "pop after clear" true (Calendar.pop c = None);
  Calendar.push c 5.0 "z";
  Alcotest.(check bool) "usable after clear" true
    (Calendar.pop c = Some (5.0, "z"))

(* Population growth must widen the ring and re-derive the width, and
   neither resize may perturb the pop order. *)
let test_calendar_resize () =
  let c = Calendar.create () in
  let b0 = Calendar.bucket_count c in
  for i = 0 to 999 do
    Calendar.push c (float_of_int ((i * 7919) mod 1000) /. 100.0) i
  done;
  Alcotest.(check bool) "buckets grew" true (Calendar.bucket_count c > b0);
  Alcotest.(check bool) "width positive" true (Calendar.width c > 0.0);
  let rec drain last n =
    match Calendar.pop c with
    | None -> n
    | Some (k, _) ->
      Alcotest.(check bool) "non-decreasing" true (k >= last);
      drain k (n + 1)
  in
  Alcotest.(check int) "all popped" 1000 (drain neg_infinity 0);
  Alcotest.(check bool) "buckets shrank back" true
    (Calendar.bucket_count c <= b0 * 2)

(* A far-future outlier must not stall dequeue of the near cluster (the
   direct-search fallback covers sparse years). *)
let test_calendar_sparse_outlier () =
  let c = Calendar.create () in
  Calendar.push c 1e6 "far";
  for i = 0 to 9 do
    Calendar.push c (float_of_int i *. 1e-6) (Printf.sprintf "near%d" i)
  done;
  for i = 0 to 9 do
    Alcotest.(check bool) "near first" true
      (Calendar.pop c = Some (float_of_int i *. 1e-6, Printf.sprintf "near%d" i))
  done;
  Alcotest.(check bool) "outlier last" true (Calendar.pop c = Some (1e6, "far"));
  Alcotest.(check bool) "drained" true (Calendar.pop c = None)

let test_calendar_rejects_nonfinite () =
  let c = Calendar.create () in
  Alcotest.check_raises "nan key"
    (Invalid_argument "Calendar.push: key not finite") (fun () ->
        Calendar.push c Float.nan "x");
  Alcotest.check_raises "inf key"
    (Invalid_argument "Calendar.push: key not finite") (fun () ->
        Calendar.push c infinity "x")

(* --- Engine ----------------------------------------------------------- *)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "order" ["a"; "b"; "c"] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 3.0 (Engine.now e)

let test_engine_cascading () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 5 then Engine.schedule e ~delay:1.0 tick
  in
  Engine.schedule e ~delay:1.0 tick;
  Engine.run e;
  Alcotest.(check int) "five ticks" 5 !count;
  Alcotest.(check (float 1e-9)) "final time" 5.0 (Engine.now e)

let test_engine_until () =
  let e = Engine.create () in
  let ran = ref [] in
  List.iter
    (fun t -> Engine.schedule e ~delay:t (fun () -> ran := t :: !ran))
    [1.0; 2.0; 3.0; 4.0];
  Engine.run ~until:2.5 e;
  Alcotest.(check (list (float 1e-9))) "only early events" [1.0; 2.0]
    (List.rev !ran);
  Alcotest.(check (float 1e-9)) "clock at horizon" 2.5 (Engine.now e);
  Alcotest.(check int) "pending" 2 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

let test_engine_until_inclusive () =
  let e = Engine.create () in
  let ran = ref false in
  Engine.schedule e ~delay:2.0 (fun () -> ran := true);
  Engine.run ~until:2.0 e;
  Alcotest.(check bool) "event at horizon runs" true !ran

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1.0 (fun () ->
        incr count;
        if !count = 3 then Engine.stop e)
  done;
  Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !count;
  Alcotest.(check int) "rest pending" 7 (Engine.pending e)

let test_engine_invalid () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) ignore);
  Engine.schedule e ~delay:5.0 ignore;
  Engine.run e;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      Engine.schedule_at e ~time:1.0 ignore)

let test_engine_simultaneous_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo among ties" [1; 2; 3; 4; 5]
    (List.rev !log)

(* Both backends must execute an identical, tie-heavy, self-scheduling
   workload in exactly the same order — the property every cross-K
   fingerprint rests on. *)
let test_engine_backend_parity () =
  let trace backend =
    let e = Engine.create ~backend () in
    let log = ref [] in
    let rec spawn depth tag =
      log := tag :: !log;
      if depth < 3 then begin
        (* Equal delays on purpose: ties across sibling events. *)
        Engine.schedule e ~delay:0.25 (fun () -> spawn (depth + 1) (tag * 2));
        Engine.schedule e ~delay:0.25 (fun () -> spawn (depth + 1) ((tag * 2) + 1))
      end
    in
    for i = 1 to 4 do
      Engine.schedule e ~delay:(float_of_int (i mod 2)) (fun () -> spawn 0 i)
    done;
    Engine.run e;
    (List.rev !log, Engine.processed e, Engine.now e)
  in
  let lh, ph, nh = trace Engine.Binary_heap in
  let lc, pc, nc = trace Engine.Calendar in
  Alcotest.(check (list int)) "same execution order" lh lc;
  Alcotest.(check int) "same processed count" ph pc;
  Alcotest.(check (float 1e-12)) "same final clock" nh nc

(* --- Stats ------------------------------------------------------------ *)

let test_summary_moments () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0];
  (* m2 = 32 over 8 samples: sample variance 32/7, not 32/8. *)
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0)
    (Stats.Summary.variance s);
  Alcotest.(check (float 1e-9)) "stddev"
    (sqrt (32.0 /. 7.0))
    (Stats.Summary.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Summary.max s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 1e-9)) "mean" 0.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance" 0.0 (Stats.Summary.variance s);
  (* The internal +/-infinity sentinels must not leak out of an empty
     summary — they end up as invalid literals in bench JSON. *)
  Alcotest.(check (float 1e-9)) "min" 0.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 0.0 (Stats.Summary.max s)

(* Pin the n-1 estimator on a known dataset, and pin that a merged
   summary agrees exactly with the single-stream one: merge's parallel
   m2 combination is exact, so both report sum((x - 5.5)^2) / 9. *)
let test_summary_sample_variance_merged () =
  let xs = [1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 10.0] in
  let single = Stats.Summary.create () in
  List.iter (Stats.Summary.add single) xs;
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  List.iteri
    (fun i x -> Stats.Summary.add (if i < 5 then a else b) x)
    xs;
  let merged = Stats.Summary.merge a b in
  Alcotest.(check (float 1e-9)) "single variance" (82.5 /. 9.0)
    (Stats.Summary.variance single);
  Alcotest.(check (float 1e-9)) "merged variance" (82.5 /. 9.0)
    (Stats.Summary.variance merged);
  Alcotest.(check (float 1e-9)) "merged mean" 5.5 (Stats.Summary.mean merged)

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let all = Stats.Summary.create () in
  List.iter
    (fun x -> Stats.Summary.add a x; Stats.Summary.add all x)
    [1.0; 2.0; 3.0];
  List.iter
    (fun x -> Stats.Summary.add b x; Stats.Summary.add all x)
    [10.0; 20.0];
  let m = Stats.Summary.merge a b in
  Alcotest.(check (float 1e-9)) "mean" (Stats.Summary.mean all)
    (Stats.Summary.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Stats.Summary.variance all)
    (Stats.Summary.variance m);
  Alcotest.(check int) "count" 5 (Stats.Summary.count m)

let summary_matches_naive =
  QCheck.Test.make ~name:"welford matches naive moments" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 50)
              (float_bound_exclusive 1000.0))
    (fun xs ->
       let s = Stats.Summary.create () in
       List.iter (Stats.Summary.add s) xs;
       let n = float_of_int (List.length xs) in
       let mean = List.fold_left ( +. ) 0.0 xs /. n in
       let var =
         List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
         /. (n -. 1.0)
       in
       abs_float (Stats.Summary.mean s -. mean) < 1e-6
       && abs_float (Stats.Summary.variance s -. var) < 1e-4)

let test_samples_percentiles () =
  let s = Stats.Samples.create () in
  for i = 1 to 100 do
    Stats.Samples.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "median" 50.5 (Stats.Samples.median s);
  Alcotest.(check (float 1e-6)) "p99" 99.01 (Stats.Samples.percentile s 0.99);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.Samples.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.Samples.percentile s 1.0);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Stats.Samples.mean s)

let test_samples_interleaved_sorting () =
  let s = Stats.Samples.create () in
  Stats.Samples.add s 5.0;
  Stats.Samples.add s 1.0;
  ignore (Stats.Samples.median s);
  Stats.Samples.add s 3.0;
  Alcotest.(check (float 1e-9)) "median after resort" 3.0
    (Stats.Samples.median s);
  Alcotest.(check (array (float 1e-9))) "sorted" [|1.0; 3.0; 5.0|]
    (Stats.Samples.to_array s)

let test_hist_buckets () =
  let h = Stats.Hist.create [|1.0; 2.0; 4.0|] in
  List.iter (Stats.Hist.add h) [0.5; 1.0; 1.5; 3.0; 10.0];
  Alcotest.(check (array int)) "counts" [|2; 1; 1; 1|] (Stats.Hist.counts h);
  Alcotest.(check int) "total" 5 (Stats.Hist.total h)

let test_hist_bad_edges () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Hist.create: edges must be strictly increasing")
    (fun () -> ignore (Stats.Hist.create [|1.0; 1.0|]))

let test_timeseries () =
  let ts = Stats.Timeseries.create () in
  Stats.Timeseries.add ts 0.0 1.0;
  Stats.Timeseries.add ts 1.0 3.0;
  Stats.Timeseries.add ts 2.0 2.0;
  Alcotest.(check int) "length" 3 (Stats.Timeseries.length ts);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.Timeseries.mean_value ts);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Stats.Timeseries.max_value ts);
  Alcotest.check_raises "backwards"
    (Invalid_argument "Timeseries.add: time going backwards") (fun () ->
      Stats.Timeseries.add ts 1.5 0.0)

(* Push payloads while registering them in a weak array, without
   leaving strong references on this frame's stack.  [@inline never]
   keeps the payload roots confined to the callee. *)
let[@inline never] heap_fill_weak h (w : int ref Weak.t) n =
  for i = 0 to n - 1 do
    let payload = ref i in
    Weak.set w i (Some payload);
    Heap.push h (float_of_int i) payload
  done

let test_heap_pop_releases_payload () =
  let h : int ref Heap.t = Heap.create () in
  let w = Weak.create 4 in
  heap_fill_weak h w 4;
  (* Pop the two smallest; their payloads must become collectable even
     though the heap itself stays live with the other two. *)
  ignore (Sys.opaque_identity (Heap.pop h));
  ignore (Sys.opaque_identity (Heap.pop h));
  Gc.full_major ();
  Alcotest.(check bool) "popped payloads reclaimed" true
    (Weak.get w 0 = None && Weak.get w 1 = None);
  Alcotest.(check bool) "live payloads retained" true
    (Weak.get w 2 <> None && Weak.get w 3 <> None);
  Alcotest.(check int) "heap still holds the rest" 2 (Heap.size h)

let test_heap_drain_releases_all () =
  (* Enough pushes to force at least one grow; after draining, nothing
     may be pinned by vacated or freshly grown slots. *)
  let n = 40 in
  let h : int ref Heap.t = Heap.create () in
  let w = Weak.create n in
  heap_fill_weak h w n;
  while Heap.pop h <> None do () done;
  Gc.full_major ();
  for i = 0 to n - 1 do
    if Weak.get w i <> None then
      Alcotest.failf "payload %d still reachable after drain" i
  done;
  (* Keep the drained heap (and its backing array) live across the GC
     above, so reclamation is due to cleared slots, not a dead heap. *)
  Alcotest.(check int) "drained" 0 (Heap.size h)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 "x";
  Heap.push h 2.0 "y";
  Heap.clear h;
  Alcotest.(check int) "emptied" 0 (Heap.size h);
  Heap.push h 3.0 "z";
  Alcotest.(check bool) "usable after clear" true
    (match Heap.pop h with Some (_, "z") -> true | _ -> false)

let test_engine_processed_counter () =
  let e = Engine.create () in
  for _ = 1 to 5 do
    Engine.schedule e ~delay:1.0 ignore
  done;
  Engine.run e;
  Alcotest.(check int) "five processed" 5 (Engine.processed e);
  Alcotest.(check bool) "step on empty" false (Engine.step e)

let test_engine_schedule_at_now () =
  let e = Engine.create () in
  let ran = ref false in
  Engine.schedule e ~delay:1.0 (fun () ->
      (* Scheduling at exactly the current time is allowed. *)
      Engine.schedule_at e ~time:(Engine.now e) (fun () -> ran := true));
  Engine.run e;
  Alcotest.(check bool) "ran" true !ran

let test_engine_run_before () =
  (* run_before is strict: events at exactly the bound stay queued, so
     a conservative window [completed, bound) never executes an event a
     later cross-shard arrival at [bound] could precede. *)
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule_at e ~time:t (fun () -> fired := t :: !fired))
    [ 1.0; 2.0; 3.0 ];
  Engine.run_before e ~before:2.0;
  Alcotest.(check (list (float 0.0))) "strictly before" [ 1.0 ]
    (List.rev !fired);
  Alcotest.(check (option (float 0.0))) "bound event still queued"
    (Some 2.0) (Engine.peek_time e);
  Engine.run_before e ~before:10.0;
  Alcotest.(check (list (float 0.0))) "rest drained" [ 1.0; 2.0; 3.0 ]
    (List.rev !fired);
  Alcotest.(check (option (float 0.0))) "empty" None (Engine.peek_time e)

let test_engine_profiler () =
  (* The dispatch-cost ledger: off by default (the plain drain loop
     never touches the clock), and when enabled it buckets every
     executed event's wall time into pop + handler and counts
     dispatches per registered kind. *)
  let e = Engine.create () in
  let p = Engine.profiler e in
  Alcotest.(check bool) "off by default" false (Profile.enabled p);
  let k = Profile.register_kind "test.tick" in
  Profile.enable p;
  let fired = ref 0 in
  let rec tick n =
    if n > 0 then
      Engine.schedule_kind e ~kind:k ~delay:1.0 (fun () ->
          incr fired;
          tick (n - 1))
  in
  tick 50;
  Engine.run e;
  Alcotest.(check int) "all fired" 50 !fired;
  Alcotest.(check int) "every event bucketed" 50 (Profile.events p);
  Alcotest.(check int) "kind dispatches counted" 50 (Profile.kind_count p k);
  Alcotest.(check bool) "pop bucket non-negative" true
    (Profile.pop_seconds p >= 0.0);
  Alcotest.(check bool) "handler bucket non-negative" true
    (Profile.handler_seconds p >= 0.0);
  Profile.disable p;
  Profile.reset p;
  Alcotest.(check int) "reset clears the ledger" 0 (Profile.events p);
  (* Off again: further events leave the ledger untouched. *)
  Engine.schedule e ~delay:1.0 ignore;
  Engine.run e;
  Alcotest.(check int) "plain drain does not record" 0 (Profile.events p)

let test_summary_single_sample () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 5.0;
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance zero" 0.0
    (Stats.Summary.variance s);
  Alcotest.(check (float 1e-9)) "min=max" (Stats.Summary.min s)
    (Stats.Summary.max s)

let test_timeseries_equal_times_allowed () =
  let ts = Stats.Timeseries.create () in
  Stats.Timeseries.add ts 1.0 1.0;
  Stats.Timeseries.add ts 1.0 2.0;
  Alcotest.(check int) "both kept" 2 (Stats.Timeseries.length ts);
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9)))) "last"
    (Some (1.0, 2.0))
    (Stats.Timeseries.last ts)

(* --- Topology --------------------------------------------------------- *)

let test_topology_accessor_errors () =
  let t = Topology.create () in
  let a = Topology.add_node ~name:"alpha" t in
  Alcotest.(check string) "name" "alpha" (Topology.node_name t a);
  Alcotest.check_raises "bad node" (Invalid_argument "Topology: unknown node 9")
    (fun () -> ignore (Topology.node_name t 9));
  Alcotest.check_raises "bad link"
    (Invalid_argument "Topology.link: unknown link 3") (fun () ->
      ignore (Topology.link t 3));
  Alcotest.(check (option int)) "find_node miss" None
    (Topology.find_node t "beta")

let test_topology_connect () =
  let t = Topology.create () in
  let a = Topology.add_node ~name:"a" t in
  let b = Topology.add_node ~name:"b" t in
  let ab, ba = Topology.connect t a b ~bandwidth:1e9 ~delay:0.001 in
  Alcotest.(check int) "nodes" 2 (Topology.node_count t);
  Alcotest.(check int) "links" 2 (Topology.link_count t);
  Alcotest.(check int) "ab src" a ab.Topology.src;
  Alcotest.(check int) "ba src" b ba.Topology.src;
  Alcotest.(check (option int)) "find by name" (Some b)
    (Topology.find_node t "b");
  Alcotest.(check bool) "find link" true
    (Topology.find_link t a b <> None);
  Alcotest.(check int) "neighbors of a" 1
    (List.length (Topology.neighbors t a))

let test_topology_duplicate_rejected () =
  let t = Topology.create () in
  let a = Topology.add_node t and b = Topology.add_node t in
  ignore (Topology.connect t a b ~bandwidth:1e9 ~delay:0.001);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Topology.connect: duplicate link 0->1") (fun () ->
      ignore (Topology.connect t a b ~bandwidth:1e9 ~delay:0.001));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Topology.connect: self-loop") (fun () ->
      ignore (Topology.connect t a a ~bandwidth:1e9 ~delay:0.001))

let test_topology_failure () =
  let t = Topology.create () in
  let a = Topology.add_node t and b = Topology.add_node t in
  ignore (Topology.connect t a b ~bandwidth:1e9 ~delay:0.001);
  Alcotest.(check int) "up neighbors" 1
    (List.length (Topology.up_neighbors t a));
  Topology.set_duplex_state t a b false;
  Alcotest.(check int) "after failure" 0
    (List.length (Topology.up_neighbors t a));
  Alcotest.(check int) "reverse down too" 0
    (List.length (Topology.up_neighbors t b));
  Topology.set_duplex_state t a b true;
  Alcotest.(check int) "restored" 1
    (List.length (Topology.up_neighbors t a))

(* A redundant set_duplex_state is a no-op: no hook firings, no
   generation bump — chaos replays and retry loops must be free to
   re-assert the state they already believe in. *)
let test_topology_duplex_idempotent () =
  let t = Topology.create () in
  let a = Topology.add_node t and b = Topology.add_node t in
  ignore (Topology.connect t a b ~bandwidth:1e9 ~delay:0.001);
  let fired = ref 0 in
  Topology.on_duplex_change t (fun ~a:_ ~b:_ ~up:_ -> incr fired);
  Topology.set_duplex_state t a b false;
  let gen = Topology.generation t in
  Alcotest.(check int) "one transition, one firing" 1 !fired;
  Topology.set_duplex_state t a b false;
  Topology.set_duplex_state t a b false;
  Alcotest.(check int) "redundant sets fire nothing" 1 !fired;
  Alcotest.(check int) "generation untouched" gen (Topology.generation t);
  Topology.set_duplex_state t a b true;
  Alcotest.(check int) "restore fires once" 2 !fired;
  Alcotest.(check bool) "generation bumped" true
    (Topology.generation t > gen);
  Topology.set_duplex_state t a b true;
  Alcotest.(check int) "redundant restore is silent" 2 !fired

let test_topology_reserve () =
  let t = Topology.create () in
  let a = Topology.add_node t and b = Topology.add_node t in
  let ab, _ = Topology.connect t a b ~bandwidth:100.0 ~delay:0.001 in
  Alcotest.(check bool) "reserve ok" true (Topology.reserve ab 60.0);
  Alcotest.(check (float 1e-9)) "available" 40.0 (Topology.available ab);
  Alcotest.(check bool) "over-reserve refused" false
    (Topology.reserve ab 50.0);
  Alcotest.(check (float 1e-9)) "unchanged" 40.0 (Topology.available ab);
  Topology.release ab 60.0;
  Alcotest.(check (float 1e-9)) "released" 100.0 (Topology.available ab)

let test_topology_builders () =
  let t = Topology.create () in
  let ring = Topology.ring t 5 ~bandwidth:1e9 ~delay:0.001 in
  Alcotest.(check int) "ring nodes" 5 (Array.length ring);
  Alcotest.(check int) "ring links" 10 (Topology.link_count t);
  let t2 = Topology.create () in
  let mesh = Topology.full_mesh t2 4 ~bandwidth:1e9 ~delay:0.001 in
  Alcotest.(check int) "mesh links" 12 (Topology.link_count t2);
  ignore mesh;
  let t3 = Topology.create () in
  let hub, leaves = Topology.star t3 6 ~bandwidth:1e9 ~delay:0.001 in
  Alcotest.(check int) "star nodes" 7 (Topology.node_count t3);
  Alcotest.(check int) "hub degree" 6
    (List.length (Topology.neighbors t3 hub));
  ignore leaves

let test_topology_ring_with_chords () =
  let t = Topology.create () in
  let ids =
    Topology.ring_with_chords t 6 ~chords:[(0, 3); (1, 4)] ~bandwidth:1e9
      ~delay:0.001
  in
  Alcotest.(check int) "links" ((6 + 2) * 2) (Topology.link_count t);
  Alcotest.(check bool) "chord exists" true
    (Topology.find_link t ids.(0) ids.(3) <> None)

let random_connected_is_connected =
  QCheck.Test.make ~name:"random topology is connected" ~count:50
    QCheck.(pair (int_range 2 30) (int_bound 20))
    (fun (n, extra) ->
       let t = Topology.create () in
       let rng = Rng.create (n * 1000 + extra) in
       let ids =
         Topology.random_connected t rng ~n ~extra_links:extra
           ~bandwidth:1e9 ~delay:0.001
       in
       (* BFS from the first node must reach all. *)
       let visited = Array.make (Topology.node_count t) false in
       let queue = Queue.create () in
       Queue.add ids.(0) queue;
       visited.(ids.(0)) <- true;
       while not (Queue.is_empty queue) do
         let v = Queue.pop queue in
         List.iter
           (fun (nbr, _) ->
              if not visited.(nbr) then begin
                visited.(nbr) <- true;
                Queue.add nbr queue
              end)
           (Topology.neighbors t v)
       done;
       Array.for_all (fun id -> visited.(id)) ids)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [ ("rng",
       [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
         Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
         Alcotest.test_case "split" `Quick test_rng_split_independent;
         Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
         Alcotest.test_case "int_in" `Quick test_rng_int_in;
         Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
         Alcotest.test_case "exponential mean" `Quick
           test_rng_exponential_mean;
         Alcotest.test_case "pareto min" `Quick test_rng_pareto_min;
         Alcotest.test_case "split indexed" `Quick test_rng_split_indexed;
         Alcotest.test_case "split distinct" `Quick test_rng_split_distinct;
         Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
         Alcotest.test_case "shuffle permutes" `Quick
           test_rng_shuffle_permutes ]);
      ("heap",
       [ Alcotest.test_case "order" `Quick test_heap_order;
         Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
         Alcotest.test_case "empty" `Quick test_heap_empty;
         Alcotest.test_case "clear" `Quick test_heap_clear;
         qt heap_fifo_contract;
         Alcotest.test_case "pop releases payload" `Quick
           test_heap_pop_releases_payload;
         Alcotest.test_case "drain releases all" `Quick
           test_heap_drain_releases_all;
         qt heap_sorts ]);
      ("calendar",
       [ Alcotest.test_case "order" `Quick test_calendar_order;
         Alcotest.test_case "fifo ties" `Quick test_calendar_fifo_ties;
         Alcotest.test_case "empty" `Quick test_calendar_empty;
         Alcotest.test_case "clear" `Quick test_calendar_clear;
         Alcotest.test_case "resize" `Quick test_calendar_resize;
         Alcotest.test_case "sparse outlier" `Quick
           test_calendar_sparse_outlier;
         Alcotest.test_case "rejects non-finite keys" `Quick
           test_calendar_rejects_nonfinite;
         qt calendar_fifo_contract ]);
      ("engine",
       [ Alcotest.test_case "time order" `Quick test_engine_time_order;
         Alcotest.test_case "cascading" `Quick test_engine_cascading;
         Alcotest.test_case "until" `Quick test_engine_until;
         Alcotest.test_case "until inclusive" `Quick
           test_engine_until_inclusive;
         Alcotest.test_case "stop" `Quick test_engine_stop;
         Alcotest.test_case "invalid times" `Quick test_engine_invalid;
         Alcotest.test_case "backend parity" `Quick
           test_engine_backend_parity;
         Alcotest.test_case "simultaneous fifo" `Quick
           test_engine_simultaneous_fifo;
         Alcotest.test_case "processed counter" `Quick
           test_engine_processed_counter;
         Alcotest.test_case "schedule_at now" `Quick
           test_engine_schedule_at_now;
         Alcotest.test_case "run_before strict" `Quick
           test_engine_run_before;
         Alcotest.test_case "profiler ledger" `Quick
           test_engine_profiler ]);
      ("stats",
       [ Alcotest.test_case "summary moments" `Quick test_summary_moments;
         Alcotest.test_case "summary empty" `Quick test_summary_empty;
         Alcotest.test_case "summary merge" `Quick test_summary_merge;
         Alcotest.test_case "summary sample variance merged" `Quick
           test_summary_sample_variance_merged;
         qt summary_matches_naive;
         Alcotest.test_case "percentiles" `Quick test_samples_percentiles;
         Alcotest.test_case "interleaved sorting" `Quick
           test_samples_interleaved_sorting;
         Alcotest.test_case "hist buckets" `Quick test_hist_buckets;
         Alcotest.test_case "hist bad edges" `Quick test_hist_bad_edges;
         Alcotest.test_case "timeseries" `Quick test_timeseries;
         Alcotest.test_case "summary single sample" `Quick
           test_summary_single_sample;
         Alcotest.test_case "timeseries equal times" `Quick
           test_timeseries_equal_times_allowed ]);
      ("topology",
       [ Alcotest.test_case "connect" `Quick test_topology_connect;
         Alcotest.test_case "duplicates rejected" `Quick
           test_topology_duplicate_rejected;
         Alcotest.test_case "failure injection" `Quick test_topology_failure;
         Alcotest.test_case "duplex state idempotent" `Quick
           test_topology_duplex_idempotent;
         Alcotest.test_case "reservation" `Quick test_topology_reserve;
         Alcotest.test_case "builders" `Quick test_topology_builders;
         Alcotest.test_case "ring with chords" `Quick
           test_topology_ring_with_chords;
         Alcotest.test_case "accessor errors" `Quick
           test_topology_accessor_errors;
         qt random_connected_is_connected ]) ]
