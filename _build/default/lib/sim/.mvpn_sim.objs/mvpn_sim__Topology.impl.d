lib/sim/topology.ml: Array Float List Printf Rng String
