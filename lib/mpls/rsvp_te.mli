(** RSVP-TE tunnel signaling: bandwidth-reserving, label-installing,
    preemptable traffic-engineered LSPs.

    A tunnel is signalled along a CSPF path (or an operator-supplied
    explicit route), reserves its bandwidth on every link, and installs
    a label-switched path into the {!Plane}: an FTN entry at the
    ingress ([Tunnel_fec id]) and swap/pop entries downstream. Tunnels
    carry setup/hold priorities; a tunnel that cannot fit may preempt
    reservations with worse hold priority. Link failures tear affected
    tunnels down; {!reroute_down} re-signals them on what remains —
    "users can also control QoS and general traffic flow more precisely
    to avoid congested, constrained or disabled links" (§3). *)

type admission =
  | Cspf  (** resource-aware: refuse rather than over-commit *)
  | Igp_only
      (** the §2.2 baseline: route on plain SPF and commit blindly;
          reservations may exceed capacity (tracked as over-commitment) *)

(** DiffServ-aware TE (DS-TE): premium (EF-carrying) tunnels draw from
    a bandwidth sub-pool capped at a fraction of each link, so the EF
    class can never occupy a link completely and its per-hop delay
    bound survives TE placement. *)
type class_type =
  | Global_pool
  | Subpool  (** premium; capped at the sub-pool fraction per link *)

type tunnel = private {
  id : int;
  src : int;
  dst : int;
  bandwidth : float;
  setup_priority : int;  (** 0 (best) – 7 *)
  hold_priority : int;
  class_type : class_type;
  mutable path : int list;  (** empty when down *)
  mutable up : bool;
}

type t

val create :
  ?php:bool -> ?subpool_fraction:float -> Mvpn_sim.Topology.t -> Plane.t ->
  t
(** [subpool_fraction] (default 0.4) caps the premium sub-pool per
    link. @raise Invalid_argument if outside (0, 1]. *)

val signal :
  ?explicit_path:int list ->
  ?setup_priority:int -> ?hold_priority:int ->
  ?admission:admission -> ?allow_preempt:bool ->
  ?class_type:class_type ->
  t -> src:int -> dst:int -> bandwidth:float ->
  (tunnel, string) result
(** Establish a tunnel. Priorities default to 7 (preemptable, cannot
    preempt anything at default). With [allow_preempt] (default false),
    on CSPF failure the call may tear down tunnels whose hold priority
    is strictly worse than this tunnel's setup priority and retry once;
    victims are left down (re-signal with {!reroute_down}). *)

val teardown : t -> int -> bool
(** Tear a tunnel down by id and release its reservations; [false] if
    unknown or already down. *)

val tunnel : t -> int -> tunnel option

val tunnels : t -> tunnel list

val ingress_fec : tunnel -> Fec.t
(** The FTN key steering traffic into the tunnel at its ingress. *)

val handle_link_failure : t -> int
(** Tear down every up tunnel whose path crosses a down link, releasing
    reservations; returns how many went down. *)

val reroute_down : t -> int * int
(** Try to re-signal every down tunnel (CSPF, no preemption); returns
    [(restored, still_down)]. A tunnel whose previous attempt failed
    against the current {!Mvpn_sim.Topology.generation} is skipped
    (counted in [still_down]) until the topology changes — retry
    loops are free while nothing moved. Telemetry: the
    [rsvp.reroute.attempt] / [rsvp.reroute.skipped] counters. *)

val overcommitted_links : t -> (Mvpn_sim.Topology.link * float) list
(** Links whose reservations exceed capacity, with the excess — only
    possible via [Igp_only] admission. *)

val reserved_fraction : t -> Mvpn_sim.Topology.link -> float
(** reserved / capacity for a link. *)

val subpool_reserved : t -> Mvpn_sim.Topology.link -> float
(** Bits per second of premium (sub-pool) reservations on a link. *)
