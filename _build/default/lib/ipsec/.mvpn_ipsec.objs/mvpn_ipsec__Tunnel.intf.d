lib/ipsec/tunnel.mli: Crypto Mvpn_net
