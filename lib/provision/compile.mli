(** The provisioning compiler: customer intent → concrete VPN state.

    [compile] drives the existing control-plane modules — every site
    joins {!Mvpn_core.Membership} (one bulk batch), every site route is
    exported through {!Mvpn_routing.Mpbgp} with the RD/RT/label the
    {!Service.Pool} allocators assign, QoS policy comes from the SLA
    tier via {!Mvpn_core.Qos_mapping}, and the PE–PE transport LSP set
    is derived from who imports whose routes.

    State is compact by construction, which is what makes E19's memory
    numbers honest at 10k VPNs / 100k+ routes:

    - routes are interned once in {!Mvpn_routing.Mpbgp}'s store; every
      table here holds integer ids;
    - VRFs with the same import signature share one immutable sorted
      route table (a {e group}) — the per-VRF view is "the group table
      minus routes whose next hop is my own PE", computed at query
      time, never copied. Per-PE state is Σ attached-site VRF locals
      plus shared group references: linear in sites, the C1 claim.

    The incremental half ({!provision_site} / {!decommission_site} /
    {!retier}, driven by {!Delta}) maintains exactly the same canonical
    state: {!fingerprint} is content-addressed (RD, prefix, next hop,
    label — never intern ids or arrival order), so incremental
    convergence is checkable against a from-scratch oracle with string
    equality. *)

type t

val compile : ?mode:Mvpn_routing.Mpbgp.session_mode -> Portfolio.t -> t
(** Bulk compile of a whole portfolio: one membership batch, one BGP
    propagation round, group tables and LSP refcounts filled in a
    single pass over the interned store. *)

val pe_count : t -> int
val membership : t -> Mvpn_core.Membership.t
val mpbgp : t -> Mvpn_routing.Mpbgp.t

type metrics = {
  customers : int;
  sites : int;
  vrfs : int;
  groups : int;  (** shared route tables (distinct import signatures in use) *)
  routes : int;  (** live VPNv4 announcements *)
  table_entries : int;
      (** logical per-VRF entries: locals + remote view, summed — what a
          router would hold *)
  shared_entries : int;
      (** entries actually stored: group tables + locals — the dedup
          denominator *)
  lsps : int;  (** distinct (ingress, egress) transport LSP pairs *)
  control_messages : int;  (** membership + BGP UPDATEs, cumulative *)
  rds : int;
  rts : int;
  bands : int array;  (** customers per QoS band *)
}

val metrics : t -> metrics

val per_pe : t -> (int * int) array
(** Per PE index: (attached sites, logical table entries) — the C1
    linearity measurement. *)

val qos_policy : t -> customer:int -> int * Mvpn_telemetry.Slo.spec
(** The forwarding band and SLO objective the customer's current tier
    buys. @raise Invalid_argument on an unknown customer. *)

val vrf_locals : t -> pe:int -> customer:int -> role:Service.role -> int list
(** Global site ids homed in one VRF, sorted; [[]] if the VRF does not
    exist. *)

val vrf_table :
  t -> pe:int -> customer:int -> role:Service.role ->
  Mvpn_routing.Mpbgp.vpnv4_route list
(** The VRF's remote view: its group's shared table minus routes whose
    next hop is the VRF's own PE. *)

val fingerprint : t -> string
(** Content-addressed digest of the full provisioned state: customers
    (tier/topology), VRFs (RD, RTs, locals, remote view by route
    content), LSP pairs with refcounts. Equal fingerprints mean equal
    state regardless of how it was reached. *)

val equal : t -> t -> bool

(** {1 Incremental primitives}

    Used by {!Delta}; each returns the number of VRFs it touched. *)

val provision_site : t -> customer:int -> sid:int -> pe:int -> int
(** Join + export + propagate + splice into every importing group and
    the LSP refcounts — O(affected VRFs + PEs), no recompute. *)

val decommission_site : t -> customer:int -> sid:int -> int
(** The exact inverse, including VRF teardown when the last local site
    leaves and group teardown when the last member VRF goes. *)

val retier : t -> customer:int -> tier:Service.tier -> int
(** SLA change: flips the customer's QoS band/objective; routes and RTs
    are untouched. *)

(** {1 Materialization} *)

type deployment = {
  backbone : Mvpn_core.Backbone.t;
  engine : Mvpn_sim.Engine.t;
  network : Mvpn_core.Network.t;
  mpls : Mvpn_core.Mpls_vpn.t;
}

val materialize :
  ?policy:Mvpn_core.Qos_mapping.policy -> Portfolio.t -> deployment
(** Deploy the portfolio for real on a simulated backbone via
    {!Mvpn_core.Mpls_vpn.deploy} — CE nodes, VRFs, label stacks, the
    works. {!Mvpn_core.Mpls_vpn} provisions one any-to-any RT per VPN,
    so this is the deployable reference for any-to-any portfolios
    (tests pin its route/VRF counts against {!metrics}); hub-spoke and
    extranet RT policy lives in the design layer above. *)
