(* E4 — end-to-end QoS under congestion (§2.2, §3.1, claim C3).

   Voice (EF), transactional (AF31) and bulk (BE) flows share the VPN.
   Sweep offered load across three forwarding policies; the paper's
   claim is that best-effort IP cannot honour the premium SLAs while
   DiffServ over the MPLS backbone can. *)

open Mvpn_core
module Sla = Mvpn_qos.Sla

let duration = 30.0

let policies =
  [ ("best-effort", Qos_mapping.Best_effort, false);
    ("diffserv", Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched,
     false);
    ("diffserv+te", Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched,
     true) ]

let run_cell ~policy ~use_te ~load =
  let sc =
    Scenario.build ~pops:8 ~vpns:1 ~sites_per_vpn:4
      (Scenario.Mpls_deployment { policy; use_te })
  in
  let pairs =
    [ (Scenario.site sc ~vpn:1 ~idx:0, Scenario.site sc ~vpn:1 ~idx:1);
      (Scenario.site sc ~vpn:1 ~idx:2, Scenario.site sc ~vpn:1 ~idx:3) ]
  in
  Scenario.add_mixed_workload ~load sc ~pairs ~duration;
  Scenario.run sc ~duration:(duration +. 5.0);
  Scenario.class_reports sc

let spec_of cls =
  match
    List.find_opt (fun (n, _, _) -> n = cls) Scenario.service_classes
  with
  | Some (_, _, spec) -> spec
  | None -> Sla.best_effort_spec

(* Voice delay distribution at overload: where the SLA dies. *)
let delay_histogram () =
  Tables.heading
    "E4b: voice one-way delay distribution at load 1.2 (packet counts)";
  let edges = [| 0.025; 0.05; 0.1; 0.2; 0.4; 0.8 |] in
  let label_of i =
    if i = 0 then "<=25ms"
    else if i = Array.length edges then ">800ms"
    else
      Printf.sprintf "(%g,%g]ms" (edges.(i - 1) *. 1e3) (edges.(i) *. 1e3)
  in
  let per_policy =
    List.map
      (fun (name, policy, use_te) ->
         let sc =
           Scenario.build ~pops:8 ~vpns:1 ~sites_per_vpn:4
             (Scenario.Mpls_deployment { policy; use_te })
         in
         let pairs =
           [ (Scenario.site sc ~vpn:1 ~idx:0, Scenario.site sc ~vpn:1 ~idx:1) ]
         in
         Scenario.add_mixed_workload ~load:1.2 sc ~pairs ~duration;
         Scenario.run sc ~duration:(duration +. 5.0);
         let hist = Mvpn_sim.Stats.Hist.create edges in
         Array.iter
           (Mvpn_sim.Stats.Hist.add hist)
           (Mvpn_qos.Sla.delay_samples
              (Mvpn_core.Traffic.collector (Scenario.registry sc) "voice"));
         (name, Mvpn_sim.Stats.Hist.counts hist))
      [ ("best-effort", Qos_mapping.Best_effort, false);
        ("diffserv", Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched,
         false) ]
  in
  let widths = [14; 10; 10; 10; 10; 10; 10; 10] in
  Tables.row widths
    ("policy" :: List.init 7 label_of);
  Tables.rule widths;
  List.iter
    (fun (name, counts) ->
       Tables.row widths
         (name :: Array.to_list (Array.map string_of_int counts)))
    per_policy;
  Tables.note
    "\nDiffServ concentrates the EF distribution entirely in the lowest\n\
     bucket; best effort smears it across hundreds of milliseconds —\n\
     the same facts as E4's means, seen as the whole distribution."

let run () =
  Tables.heading "E4: per-class SLA vs offered load and forwarding policy";
  let widths = [6; 14; 15; 10; 10; 9; 8; 6] in
  Tables.row widths
    ["load"; "policy"; "class"; "mean ms"; "p99 ms"; "jit ms"; "loss"; "SLA"];
  Tables.rule widths;
  List.iter
    (fun load ->
       List.iter
         (fun (pname, policy, use_te) ->
            let reports = run_cell ~policy ~use_te ~load in
            List.iter
              (fun (cls, (r : Sla.report)) ->
                 Tables.row widths
                   [ Tables.f2 load; pname; cls;
                     Tables.ms r.Sla.mean_delay;
                     Tables.ms r.Sla.p99_delay;
                     Tables.ms r.Sla.jitter;
                     Tables.pct r.Sla.loss;
                     (if Sla.complies (spec_of cls) r then "ok" else "VIOL") ])
              reports)
         policies;
       Tables.rule widths)
    [0.6; 0.9; 1.2];
  Tables.note
    "\nExpected shape (paper C3): best-effort cannot honour the premium\n\
     SLAs — Pareto-bursty bulk transiently saturates the access even at\n\
     0.6 mean load, queueing voice behind megabyte bursts — and it only\n\
     worsens with load. DiffServ over the MPLS backbone keeps voice and\n\
     transactional within SLA at every load, pushing the damage onto\n\
     the bulk class that caused it. TE does not change this picture\n\
     while the core is uncongested (its effect is E7).";
  delay_histogram ();
  Telemetry_report.section
    ~title:
      "E4c: queue verdicts per band and per-class sojourn \
       (diffserv, load 1.2)"
    (fun () ->
       ignore
         (run_cell
            ~policy:(Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched)
            ~use_te:false ~load:1.2));
  Tables.note
    "\nThe drop columns name the mechanism: WRED acts on the AF bands\n\
     before the queue fills, tail drop catches best effort. Sojourn\n\
     quantiles are measured at delivery, per DSCP."
