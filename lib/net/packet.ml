type shim = { mutable label : int; mutable exp : int; mutable ttl : int }

(* label (20 bits) | exp (3 bits) | ttl (8 bits), one immediate int.
   [none] is -1 so every valid packed shim tests [>= 0]. *)
module Shim = struct
  type packed = int

  let none = -1

  let clamp_ttl ttl = if ttl < 0 then 0 else if ttl > 255 then 255 else ttl

  let pack ~label ~exp ~ttl =
    ((label land 0xFFFFF) lsl 11) lor ((exp land 0x7) lsl 8)
    lor clamp_ttl ttl

  let label packed = packed lsr 11
  let exp packed = (packed lsr 8) land 0x7
  let ttl packed = packed land 0xFF

  let with_label packed label =
    ((label land 0xFFFFF) lsl 11) lor (packed land 0x7FF)

  let with_exp packed exp =
    (packed land (lnot 0x700)) lor ((exp land 0x7) lsl 8)

  let with_ttl packed ttl =
    (packed land (lnot 0xFF)) lor clamp_ttl ttl

  let to_shim packed =
    { label = label packed; exp = exp packed; ttl = ttl packed }
end

type header = {
  mutable src : Ipv4.t;
  mutable dst : Ipv4.t;
  mutable proto : Flow.proto;
  mutable src_port : int;
  mutable dst_port : int;
  mutable dscp : Dscp.t;
  mutable ttl : int;
}

type t = {
  mutable uid : int;
  mutable flow : Flow.t;
  mutable vpn : int option;
  mutable seq : int;
  mutable created_at : float;
  mutable size : int;
  inner : header;
  mutable encrypted : bool;
  outer : header;
  mutable has_outer : bool;
  stack : int array;
  mutable depth : int;
  mutable encap_bytes : int;
  mutable in_pool : bool;
  mutable fated : bool;
}

let default_ttl = 64

let max_depth = 8

(* Atomic so packet construction is safe from any domain. Uids stay
   unique process-wide but their allocation order across domains is not
   deterministic — nothing semantic may depend on uid values beyond
   uniqueness (per-packet fault verdicts key on uid, which is why
   seeded chaos runs are single-domain). Pool reuse mints a fresh uid
   on every incarnation, so the uid sequence a run observes is the same
   with pooling on or off. *)
let uid_counter = Atomic.make 0

let reset_uid_counter () = Atomic.set uid_counter 0

let next_uid () = 1 + Atomic.fetch_and_add uid_counter 1

(* Fresh record allocations (pool reuse excluded), process-wide. The
   invariant auditor uses [allocated - live - pool_size] as a leak
   witness: with pooling on it must stay constant between audit ticks. *)
let alloc_counter = Atomic.make 0

let allocated () = Atomic.get alloc_counter

let header_of_flow ?(dscp = Dscp.best_effort) (flow : Flow.t) =
  { src = flow.src; dst = flow.dst; proto = flow.proto;
    src_port = flow.src_port; dst_port = flow.dst_port; dscp;
    ttl = default_ttl }

let blank_header () =
  { src = Ipv4.any; dst = Ipv4.any; proto = Flow.Udp; src_port = 0;
    dst_port = 0; dscp = Dscp.best_effort; ttl = default_ttl }

let null =
  let flow = Flow.make Ipv4.any Ipv4.any in
  { uid = 0; flow; vpn = None; seq = 0; created_at = 0.; size = 0;
    inner = header_of_flow flow; encrypted = false;
    outer = blank_header (); has_outer = false;
    stack = Array.make max_depth 0; depth = 0; encap_bytes = 0;
    in_pool = false; fated = false }

(* One free list per domain (no locking, no cross-domain races): a
   packet released on a domain is reincarnated by that same domain's
   next [make]. The global flag is plain (not atomic) — the runners set
   it once before spawning domains and never mid-run. *)
type pool = { mutable slots : t array; mutable len : int }

let pooling_flag = ref false

let set_pooling on = pooling_flag := on
let pooling () = !pooling_flag

let pool_key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { slots = [||]; len = 0 })

let pool_size () = (Domain.DLS.get pool_key).len

let release p =
  if !pooling_flag && not p.in_pool && p != null then begin
    p.in_pool <- true;
    let pool = Domain.DLS.get pool_key in
    let cap = Array.length pool.slots in
    if pool.len = cap then begin
      let slots = Array.make (max 64 (2 * cap)) null in
      Array.blit pool.slots 0 slots 0 cap;
      pool.slots <- slots
    end;
    pool.slots.(pool.len) <- p;
    pool.len <- pool.len + 1
  end

(* A retired packet if one is available, else a fresh allocation. The
   caller must reinitialise every mutable field. *)
let obtain () =
  let pool = Domain.DLS.get pool_key in
  if !pooling_flag && pool.len > 0 then begin
    pool.len <- pool.len - 1;
    let p = pool.slots.(pool.len) in
    pool.slots.(pool.len) <- null;
    p.in_pool <- false;
    p
  end
  else begin
    Atomic.incr alloc_counter;
    { uid = 0; flow = null.flow; vpn = None; seq = 0; created_at = 0.;
      size = 0; inner = blank_header (); encrypted = false;
      outer = blank_header (); has_outer = false;
      stack = Array.make max_depth 0; depth = 0; encap_bytes = 0;
      in_pool = false; fated = false }
  end

let set_header (h : header) ~src ~dst ~proto ~src_port ~dst_port ~dscp ~ttl =
  h.src <- src; h.dst <- dst; h.proto <- proto; h.src_port <- src_port;
  h.dst_port <- dst_port; h.dscp <- dscp; h.ttl <- ttl

let make ?vpn ?(seq = 0) ?(dscp = Dscp.best_effort) ?(size = 512) ~now
    (flow : Flow.t) =
  let p = obtain () in
  p.uid <- next_uid ();
  p.flow <- flow;
  p.vpn <- vpn;
  p.seq <- seq;
  p.created_at <- now;
  p.size <- size;
  set_header p.inner ~src:flow.src ~dst:flow.dst ~proto:flow.proto
    ~src_port:flow.src_port ~dst_port:flow.dst_port ~dscp
    ~ttl:default_ttl;
  p.encrypted <- false;
  p.has_outer <- false;
  p.depth <- 0;
  p.encap_bytes <- 0;
  p.fated <- false;
  p

let assign_header (dst : header) (src : header) =
  set_header dst ~src:src.src ~dst:src.dst ~proto:src.proto
    ~src_port:src.src_port ~dst_port:src.dst_port ~dscp:src.dscp
    ~ttl:src.ttl

let copy p =
  let q = obtain () in
  q.uid <- next_uid ();
  q.flow <- p.flow;
  q.vpn <- p.vpn;
  q.seq <- p.seq;
  q.created_at <- p.created_at;
  q.size <- p.size;
  assign_header q.inner p.inner;
  q.encrypted <- p.encrypted;
  assign_header q.outer p.outer;
  q.has_outer <- p.has_outer;
  Array.blit p.stack 0 q.stack 0 p.depth;
  q.depth <- p.depth;
  q.encap_bytes <- p.encap_bytes;
  q.fated <- false;
  q

let visible_header p = if p.has_outer then p.outer else p.inner

let visible_dscp p = (visible_header p).dscp

let classifiable_flow p =
  if not p.has_outer then
    Some
      { Flow.src = p.inner.src; dst = p.inner.dst; proto = p.inner.proto;
        src_port = p.inner.src_port; dst_port = p.inner.dst_port }
  else if p.encrypted then None
  else
    Some
      { Flow.src = p.outer.src; dst = p.outer.dst; proto = p.outer.proto;
        src_port = p.outer.src_port; dst_port = p.outer.dst_port }

let has_outer p = p.has_outer

let outer_header p =
  if p.has_outer then p.outer
  else invalid_arg "Packet.outer_header: no outer header"

let labelled p = p.depth > 0

let label_depth p = p.depth

let top_packed p = if p.depth = 0 then Shim.none else p.stack.(p.depth - 1)

let top_label p =
  if p.depth = 0 then None else Some (Shim.to_shim p.stack.(p.depth - 1))

let top_exp p =
  if p.depth = 0 then None else Some (Shim.exp p.stack.(p.depth - 1))

let shim_bytes = 4

let push_label p ~label ~exp ~ttl =
  if p.depth = max_depth then
    invalid_arg "Packet.push_label: label stack overflow";
  p.stack.(p.depth) <- Shim.pack ~label ~exp ~ttl;
  p.depth <- p.depth + 1;
  p.size <- p.size + shim_bytes

let pop_packed p =
  if p.depth = 0 then Shim.none
  else begin
    p.depth <- p.depth - 1;
    p.size <- p.size - shim_bytes;
    p.stack.(p.depth)
  end

let pop_label p =
  if p.depth = 0 then None
  else begin
    p.depth <- p.depth - 1;
    p.size <- p.size - shim_bytes;
    Some (Shim.to_shim p.stack.(p.depth))
  end

let set_top p packed =
  if p.depth = 0 then invalid_arg "Packet.set_top: empty label stack";
  p.stack.(p.depth - 1) <- packed

let swap_label p ~label =
  if p.depth = 0 then invalid_arg "Packet.swap_label: empty label stack";
  let i = p.depth - 1 in
  let s = p.stack.(i) in
  p.stack.(i) <- Shim.with_ttl (Shim.with_label s label) (Shim.ttl s - 1)

let set_exp_all p ~exp =
  for i = 0 to p.depth - 1 do
    p.stack.(i) <- Shim.with_exp p.stack.(i) exp
  done

let label_stack p =
  let rec loop i acc =
    if i >= p.depth then acc
    else loop (i + 1) (Shim.to_shim p.stack.(i) :: acc)
  in
  loop 0 []

let label_values p =
  let rec loop i acc =
    if i >= p.depth then acc
    else loop (i + 1) (Shim.label p.stack.(i) :: acc)
  in
  loop 0 []

let encapsulate p ~src ~dst ~proto ~overhead ~copy_tos =
  if p.has_outer then invalid_arg "Packet.encapsulate: already encapsulated";
  let dscp = if copy_tos then p.inner.dscp else Dscp.best_effort in
  set_header p.outer ~src ~dst ~proto ~src_port:0 ~dst_port:0 ~dscp
    ~ttl:default_ttl;
  p.has_outer <- true;
  p.size <- p.size + overhead;
  p.encap_bytes <- overhead

let decapsulate p =
  if not p.has_outer then invalid_arg "Packet.decapsulate: no outer header";
  p.has_outer <- false;
  p.encrypted <- false;
  p.size <- p.size - p.encap_bytes;
  p.encap_bytes <- 0

let pp ppf p =
  let labels =
    if p.depth = 0 then ""
    else begin
      let buf = Buffer.create 32 in
      Buffer.add_string buf " [";
      for i = p.depth - 1 downto 0 do
        let s = p.stack.(i) in
        Buffer.add_string buf
          (Printf.sprintf "%d(exp=%d)" (Shim.label s) (Shim.exp s));
        if i > 0 then Buffer.add_char buf ';'
      done;
      Buffer.add_char buf ']';
      Buffer.contents buf
    end
  in
  Format.fprintf ppf "#%d %a -> %a %a %dB%s%s" p.uid Ipv4.pp p.inner.src
    Ipv4.pp p.inner.dst Dscp.pp (visible_dscp p) p.size labels
    (if p.encrypted then " enc" else "")
