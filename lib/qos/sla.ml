module Stats = Mvpn_sim.Stats
module Packet = Mvpn_net.Packet

type spec = {
  name : string;
  max_mean_delay : float option;
  max_p99_delay : float option;
  max_jitter : float option;
  max_loss : float option;
  min_throughput_bps : float option;
}

let best_effort_spec =
  { name = "best-effort"; max_mean_delay = None; max_p99_delay = None;
    max_jitter = None; max_loss = None; min_throughput_bps = None }

let voice_spec =
  { name = "voice"; max_mean_delay = Some 0.150; max_p99_delay = Some 0.200;
    max_jitter = Some 0.030; max_loss = Some 0.01;
    min_throughput_bps = None }

let transactional_spec =
  { name = "transactional"; max_mean_delay = Some 0.300;
    max_p99_delay = Some 0.500; max_jitter = None; max_loss = Some 0.05;
    min_throughput_bps = None }

type collector = {
  delays : Stats.Samples.t;
  jitter_acc : Stats.Summary.t;
  last_seq : (Mvpn_net.Flow.t, int ref) Hashtbl.t;
  mutable reordered : int;
  mutable sent : int;
  mutable received : int;
  mutable bytes_received : int;
  mutable first_send : float;
  mutable last_receive : float;
  (* Previous delay for the jitter accumulator, in a floatarray cell
     (nan = no packet yet) so the per-packet update is an unboxed
     store, not a [Some] box. *)
  last_delay : floatarray;
}

let collector () =
  { delays = Stats.Samples.create (); jitter_acc = Stats.Summary.create ();
    last_seq = Hashtbl.create 8; reordered = 0;
    sent = 0; received = 0; bytes_received = 0; first_send = infinity;
    last_receive = neg_infinity; last_delay = Float.Array.make 1 Float.nan }

let on_send c ~now ~bytes =
  ignore bytes;
  c.sent <- c.sent + 1;
  if now < c.first_send then c.first_send <- now

let on_receive c ~now packet =
  let delay = now -. packet.Packet.created_at in
  (* Per-flow sequence tracking: an arrival below the high-water mark
     was overtaken in flight. Exception-style lookup keeps the [Some]
     box out of the per-delivery path. *)
  (match Hashtbl.find c.last_seq packet.Packet.flow with
   | high ->
     if packet.Packet.seq < !high then c.reordered <- c.reordered + 1
     else high := packet.Packet.seq
   | exception Not_found ->
     Hashtbl.add c.last_seq packet.Packet.flow (ref packet.Packet.seq));
  c.received <- c.received + 1;
  c.bytes_received <- c.bytes_received + packet.Packet.size;
  if now > c.last_receive then c.last_receive <- now;
  Stats.Samples.add c.delays delay;
  let prev = Float.Array.get c.last_delay 0 in
  if not (Float.is_nan prev) then
    Stats.Summary.add c.jitter_acc (Float.abs (delay -. prev));
  Float.Array.set c.last_delay 0 delay

type report = {
  sent : int;
  received : int;
  reordered : int;
  bytes_received : int;
  duration : float;
  mean_delay : float;
  p99_delay : float;
  max_delay : float;
  jitter : float;
  loss : float;
  throughput_bps : float;
}

let report (c : collector) =
  let duration =
    if c.received = 0 || c.sent = 0 then 0.0
    else Float.max 0.0 (c.last_receive -. c.first_send)
  in
  { sent = c.sent;
    received = c.received;
    reordered = c.reordered;
    bytes_received = c.bytes_received;
    duration;
    mean_delay = Stats.Samples.mean c.delays;
    p99_delay = Stats.Samples.percentile c.delays 0.99;
    max_delay =
      (if Stats.Samples.count c.delays = 0 then 0.0
       else Stats.Samples.percentile c.delays 1.0);
    jitter = Stats.Summary.mean c.jitter_acc;
    loss =
      (if c.sent = 0 then 0.0
       else 1.0 -. (float_of_int c.received /. float_of_int c.sent));
    throughput_bps =
      (if duration <= 0.0 then 0.0
       else float_of_int c.bytes_received *. 8.0 /. duration) }

let delay_samples c = Stats.Samples.to_array c.delays

let pp_report ppf r =
  Format.fprintf ppf
    "sent=%d recv=%d loss=%.4f mean=%.4gms p99=%.4gms jitter=%.4gms tput=%.4gMbps"
    r.sent r.received r.loss (r.mean_delay *. 1e3) (r.p99_delay *. 1e3)
    (r.jitter *. 1e3)
    (r.throughput_bps /. 1e6)

let check spec r =
  let violations = ref [] in
  let violated fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (match spec.max_mean_delay with
   | Some limit when r.mean_delay > limit ->
     violated "mean delay %.1fms exceeds %.1fms" (r.mean_delay *. 1e3)
       (limit *. 1e3)
   | Some _ | None -> ());
  (match spec.max_p99_delay with
   | Some limit when r.p99_delay > limit ->
     violated "p99 delay %.1fms exceeds %.1fms" (r.p99_delay *. 1e3)
       (limit *. 1e3)
   | Some _ | None -> ());
  (match spec.max_jitter with
   | Some limit when r.jitter > limit ->
     violated "jitter %.1fms exceeds %.1fms" (r.jitter *. 1e3) (limit *. 1e3)
   | Some _ | None -> ());
  (match spec.max_loss with
   | Some limit when r.loss > limit ->
     violated "loss %.2f%% exceeds %.2f%%" (r.loss *. 100.0) (limit *. 100.0)
   | Some _ | None -> ());
  (match spec.min_throughput_bps with
   | Some limit when r.throughput_bps < limit ->
     violated "throughput %.3gbps below %.3gbps" r.throughput_bps limit
   | Some _ | None -> ());
  List.rev !violations

let complies spec r = check spec r = []
