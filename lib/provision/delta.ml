module T = Mvpn_telemetry
module Membership = Mvpn_core.Membership
module Mpbgp = Mvpn_routing.Mpbgp

type stats = { ops : int; touched_vrfs : int; messages : int }

let apply t op =
  let touched =
    match op with
    | Portfolio.Add_site { customer; sid; pe } ->
      Compile.provision_site t ~customer ~sid ~pe
    | Portfolio.Remove_site { customer; sid } ->
      Compile.decommission_site t ~customer ~sid
    | Portfolio.Change_tier { customer; tier } ->
      Compile.retier t ~customer ~tier
  in
  T.Counter.incr (T.Registry.counter "provision.delta.ops");
  T.Counter.add (T.Registry.counter "provision.delta.touched_vrfs") touched;
  touched

let control_messages t =
  Membership.messages (Compile.membership t)
  + Mpbgp.messages_sent (Compile.mpbgp t)

let apply_all t ops =
  let m0 = control_messages t in
  let touched = List.fold_left (fun acc op -> acc + apply t op) 0 ops in
  { ops = List.length ops; touched_vrfs = touched;
    messages = control_messages t - m0 }

let oracle ?mode p ops = Compile.compile ?mode (Portfolio.apply_all p ops)

let validate = Compile.equal
