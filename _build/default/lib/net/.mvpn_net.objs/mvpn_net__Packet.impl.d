lib/net/packet.ml: Dscp Flow Format Ipv4 List Option Printf String
