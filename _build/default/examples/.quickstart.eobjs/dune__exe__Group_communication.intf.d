examples/group_communication.mli:
