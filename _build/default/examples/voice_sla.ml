(* Voice SLA: the paper's end-to-end QoS story, §3.1/§5.

   Voice (EF), transactional (AF31) and bulk (best-effort) traffic
   share a congested VPN. Under plain best-effort forwarding the voice
   SLA collapses; with CPE marking, DSCP-to-EXP mapping at the edge and
   per-hop DiffServ behaviours across the label-switched backbone, it
   holds.

   Run with:  dune exec examples/voice_sla.exe *)

open Mvpn_core
module Sla = Mvpn_qos.Sla

let policies =
  [ ("best-effort IP", Qos_mapping.Best_effort);
    ("DiffServ+MPLS (WFQ)", Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched);
    ("DiffServ+MPLS (strict)", Qos_mapping.Diffserv Qos_mapping.strict_sched) ]

let run_policy policy =
  let sc =
    Scenario.build ~pops:8 ~vpns:1 ~sites_per_vpn:4
      (Scenario.Mpls_deployment { policy; use_te = false })
  in
  let pairs =
    [ (Scenario.site sc ~vpn:1 ~idx:0, Scenario.site sc ~vpn:1 ~idx:1);
      (Scenario.site sc ~vpn:1 ~idx:2, Scenario.site sc ~vpn:1 ~idx:3) ]
  in
  Scenario.add_mixed_workload ~load:1.15 sc ~pairs ~duration:30.0;
  Scenario.run sc ~duration:35.0;
  Scenario.class_reports sc

let () =
  Printf.printf "== Voice SLA under congestion (offered load 115%%) ==\n\n";
  Printf.printf "%-24s %-14s %9s %9s %9s %8s  %s\n" "policy" "class"
    "mean(ms)" "p99(ms)" "jit(ms)" "loss%" "SLA";
  List.iter
    (fun (name, policy) ->
       let reports = run_policy policy in
       List.iter
         (fun (cls, r) ->
            let spec =
              match
                List.find_opt (fun (n, _, _) -> n = cls)
                  Scenario.service_classes
              with
              | Some (_, _, spec) -> spec
              | None -> Sla.best_effort_spec
            in
            let verdict =
              if Sla.complies spec r then "PASS"
              else
                Printf.sprintf "FAIL (%s)"
                  (String.concat "; " (Sla.check spec r))
            in
            Printf.printf "%-24s %-14s %9.2f %9.2f %9.2f %8.2f  %s\n" name
              cls (r.Sla.mean_delay *. 1e3) (r.Sla.p99_delay *. 1e3)
              (r.Sla.jitter *. 1e3) (r.Sla.loss *. 100.0) verdict)
         reports;
       Printf.printf "\n")
    policies;
  Printf.printf
    "Reading: best-effort lets bulk bursts queue in front of voice;\n\
     the DiffServ schedulers keep the EF band's delay bounded at the\n\
     cost of the class that caused the congestion.\n"
