module Packet = Mvpn_net.Packet
module Dscp = Mvpn_net.Dscp
module Rng = Mvpn_sim.Rng
module Telemetry = Mvpn_telemetry

(* Global per-band counters, aggregated across every qdisc instance
   (bands beyond the last tracked index share its counters). *)
let max_tracked_bands = 8

let band_counter stem =
  Array.init max_tracked_bands (fun i ->
      Telemetry.Registry.counter (Printf.sprintf "qdisc.band%d.%s" i stem))

let m_enqueued = band_counter "enqueued"
let m_dequeued = band_counter "dequeued"
let m_tail_drop = band_counter "tail_drop"
let m_red_drop = band_counter "red_drop"

let tracked i = min i (max_tracked_bands - 1)

type sched =
  | Strict
  | Wrr of int array
  | Drr of int array
  | Wfq of float array

type red_params = {
  ewma_weight : float;
  thresholds : (float * float * float) array;
}

let default_wred ~avg_capacity =
  { ewma_weight = 0.1;
    thresholds =
      [| (0.5 *. avg_capacity, 0.9 *. avg_capacity, 0.05);
         (0.3 *. avg_capacity, 0.7 *. avg_capacity, 0.2);
         (0.2 *. avg_capacity, 0.5 *. avg_capacity, 0.5) |] }

type band_cfg = { capacity_bytes : int; red : red_params option }

let plain_band capacity_bytes = { capacity_bytes; red = None }

type drop_reason = Tail_drop | Red_drop

type band_stats = {
  enqueued : int;
  dequeued : int;
  tail_dropped : int;
  red_dropped : int;
  bytes_sent : int;
}

(* Intrusive FIFO cell: the queued packet plus its WFQ finish tag,
   linked through [c_next] and terminated by the [nil_qcell] sentinel.
   Vacated cells park on the qdisc's free list with the packet slot
   cleared, so a steady-state enqueue recycles storage instead of
   allocating a tuple + Queue cell per packet. The tag lives in a
   one-slot floatarray owned by the cell (allocated once, recycled
   with it) so tag writes and the WFQ head-tag comparisons never box. *)
type qcell = {
  mutable c_pkt : Packet.t;
  c_tag : floatarray;
  mutable c_next : qcell;
}

let rec nil_qcell =
  { c_pkt = Packet.null; c_tag = Float.Array.make 1 0.0; c_next = nil_qcell }

type band = {
  cfg : band_cfg;
  idx : int;  (* position in the qdisc, for per-band telemetry *)
  mutable q_head : qcell;  (* == nil_qcell when empty *)
  mutable q_tail : qcell;
  mutable q_len : int;
  mutable bytes : int;
  (* RED EWMA of backlog bytes ([0]) and the WFQ last-finish tag ([1])
     in unboxed cells: both are written once per enqueue, and a boxed
     mutable-float store costs an allocation plus a write barrier. *)
  bf : floatarray;
  mutable red_count : int;  (* packets since the last RED drop *)
  mutable deficit : int;  (* DRR *)
  mutable s_enqueued : int;
  mutable s_dequeued : int;
  mutable s_tail_dropped : int;
  mutable s_red_dropped : int;
  mutable s_bytes_sent : int;
}

type t = {
  sched : sched;
  bands : band array;
  rng : Rng.t;
  (* The WFQ weight array ([||] otherwise): the per-packet finish-tag
     computation indexes it directly instead of re-matching the
     scheduler constructor. *)
  wts : float array;
  vt : floatarray;  (* WFQ virtual time, unboxed (slot 0) *)
  mutable rr_pos : int;  (* WRR / DRR cursor *)
  mutable wrr_credit : int;  (* packets left for the current WRR band *)
  mutable q_free : qcell;  (* parked cells, shared across bands *)
}

let check_weights name n arr pos =
  if Array.length arr <> n then
    invalid_arg
      (Printf.sprintf "Queue_disc.create: %s needs %d weights" name n);
  Array.iter
    (fun w ->
       if w <= pos then
         invalid_arg
           (Printf.sprintf "Queue_disc.create: %s weights must be positive"
              name))
    arr

let create ?rng ~sched cfgs =
  let n = Array.length cfgs in
  if n = 0 then invalid_arg "Queue_disc.create: need at least one band";
  (match sched with
   | Strict -> ()
   | Wrr w -> check_weights "wrr" n w 0
   | Drr q -> check_weights "drr" n q 0
   | Wfq w ->
     if Array.length w <> n then
       invalid_arg (Printf.sprintf "Queue_disc.create: wfq needs %d weights" n);
     Array.iter
       (fun x ->
          if x <= 0.0 then
            invalid_arg "Queue_disc.create: wfq weights must be positive")
       w);
  Array.iter
    (fun c ->
       if c.capacity_bytes <= 0 then
         invalid_arg "Queue_disc.create: band capacity must be positive")
    cfgs;
  { sched;
    bands =
      Array.mapi
        (fun idx cfg ->
           { cfg; idx; q_head = nil_qcell; q_tail = nil_qcell; q_len = 0;
             bytes = 0; bf = Float.Array.make 2 0.0;
             red_count = 0; deficit = 0; s_enqueued = 0;
             s_dequeued = 0; s_tail_dropped = 0; s_red_dropped = 0;
             s_bytes_sent = 0 })
        cfgs;
    rng = (match rng with Some r -> r | None -> Rng.create 0x52ED);
    wts =
      (match sched with
       | Wfq w -> w
       | Strict | Wrr _ | Drr _ -> [||]);
    vt = Float.Array.make 1 0.0; rr_pos = 0; wrr_credit = 0;
    q_free = nil_qcell }

let fifo ~capacity_bytes =
  create ~sched:Strict [| plain_band capacity_bytes |]

let band_count t = Array.length t.bands

(* RED drop test for one arriving packet. *)
let red_drops t band (p : Packet.t) =
  match band.cfg.red with
  | None -> false
  | Some red ->
    let avg =
      ((1.0 -. red.ewma_weight) *. Float.Array.get band.bf 0)
      +. (red.ewma_weight *. float_of_int band.bytes)
    in
    Float.Array.set band.bf 0 avg;
    let prec = Dscp.drop_precedence (Packet.visible_dscp p) in
    let idx = min (max (prec - 1) 0) (Array.length red.thresholds - 1) in
    let min_th, max_th, max_p = red.thresholds.(idx) in
    if avg < min_th then begin
      band.red_count <- 0;
      false
    end
    else if avg >= max_th then begin
      band.red_count <- 0;
      true
    end
    else begin
      let pb = max_p *. ((avg -. min_th) /. (max_th -. min_th)) in
      (* Count-based spacing (RFC 2309 style): probability grows with
         packets accepted since the last drop. *)
      let pa =
        let denom = 1.0 -. (float_of_int band.red_count *. pb) in
        if denom <= 0.0 then 1.0 else pb /. denom
      in
      if Rng.bool t.rng pa then begin
        band.red_count <- 0;
        true
      end else begin
        band.red_count <- band.red_count + 1;
        false
      end
    end

let enqueue t ~cls packet =
  let cls = min (max cls 0) (Array.length t.bands - 1) in
  let band = t.bands.(cls) in
  if red_drops t band packet then begin
    band.s_red_dropped <- band.s_red_dropped + 1;
    Telemetry.Counter.incr m_red_drop.(tracked cls);
    Error Red_drop
  end
  else if band.bytes + packet.Packet.size > band.cfg.capacity_bytes then begin
    band.s_tail_dropped <- band.s_tail_dropped + 1;
    Telemetry.Counter.incr m_tail_drop.(tracked cls);
    Error Tail_drop
  end
  else begin
    let tag =
      match t.sched with
      | Wfq _ ->
        let lf = Float.Array.get band.bf 1 in
        let vtime = Float.Array.get t.vt 0 in
        let start = if vtime > lf then vtime else lf in
        let finish =
          start +. (float_of_int packet.Packet.size /. t.wts.(cls))
        in
        Float.Array.set band.bf 1 finish;
        finish
      | Strict | Wrr _ | Drr _ -> 0.0
    in
    let cell =
      if t.q_free != nil_qcell then begin
        let c = t.q_free in
        t.q_free <- c.c_next;
        c.c_next <- nil_qcell;
        c
      end
      else
        { c_pkt = Packet.null; c_tag = Float.Array.make 1 0.0;
          c_next = nil_qcell }
    in
    cell.c_pkt <- packet;
    Float.Array.set cell.c_tag 0 tag;
    if band.q_head == nil_qcell then band.q_head <- cell
    else band.q_tail.c_next <- cell;
    band.q_tail <- cell;
    band.q_len <- band.q_len + 1;
    band.bytes <- band.bytes + packet.Packet.size;
    band.s_enqueued <- band.s_enqueued + 1;
    Telemetry.Counter.incr m_enqueued.(tracked cls);
    Ok ()
  end

let take_from t band =
  let cell = band.q_head in
  band.q_head <- cell.c_next;
  if band.q_head == nil_qcell then band.q_tail <- nil_qcell;
  band.q_len <- band.q_len - 1;
  let packet = cell.c_pkt in
  cell.c_pkt <- Packet.null;
  cell.c_next <- t.q_free;
  t.q_free <- cell;
  band.bytes <- band.bytes - packet.Packet.size;
  band.s_dequeued <- band.s_dequeued + 1;
  band.s_bytes_sent <- band.s_bytes_sent + packet.Packet.size;
  Telemetry.Counter.incr m_dequeued.(tracked band.idx);
  packet

let is_empty t = Array.for_all (fun b -> b.q_head == nil_qcell) t.bands

let dequeue_strict t =
  let n = Array.length t.bands in
  let rec go i =
    if i >= n then Packet.null
    else if t.bands.(i).q_head == nil_qcell then go (i + 1)
    else take_from t t.bands.(i)
  in
  go 0

let dequeue_wrr t weights =
  if is_empty t then Packet.null
  else begin
    let n = Array.length t.bands in
    (* Spend remaining credit on the current band, else rotate. *)
    let rec go guard =
      if guard > 2 * n then Packet.null
      else begin
        let band = t.bands.(t.rr_pos) in
        if t.wrr_credit > 0 && band.q_head != nil_qcell then begin
          t.wrr_credit <- t.wrr_credit - 1;
          take_from t band
        end else begin
          t.rr_pos <- (t.rr_pos + 1) mod n;
          t.wrr_credit <- weights.(t.rr_pos);
          go (guard + 1)
        end
      end
    in
    go 0
  end

let dequeue_drr t quanta =
  if is_empty t then Packet.null
  else begin
    let n = Array.length t.bands in
    let rec go () =
      let band = t.bands.(t.rr_pos) in
      if band.q_head == nil_qcell then begin
        band.deficit <- 0;
        t.rr_pos <- (t.rr_pos + 1) mod n;
        go ()
      end else begin
        let head = band.q_head.c_pkt in
        if band.deficit >= head.Packet.size then begin
          band.deficit <- band.deficit - head.Packet.size;
          take_from t band
        end else begin
          band.deficit <- band.deficit + quanta.(t.rr_pos);
          t.rr_pos <- (t.rr_pos + 1) mod n;
          go ()
        end
      end
    in
    go ()
  end

(* Lowest finish tag wins; on ties the lowest band index (the scan
   visits bands in order and replaces only on a strictly smaller
   tag — the same tie-break the option-based scan implemented). *)
let dequeue_wfq t =
  let n = Array.length t.bands in
  let best = ref (-1) in
  for i = 0 to n - 1 do
    let band = t.bands.(i) in
    if band.q_head != nil_qcell
    && (!best < 0
        || Float.Array.get band.q_head.c_tag 0
           < Float.Array.get t.bands.(!best).q_head.c_tag 0)
    then best := i
  done;
  if !best < 0 then Packet.null
  else begin
    let band = t.bands.(!best) in
    let tag = Float.Array.get band.q_head.c_tag 0 in
    if tag > Float.Array.get t.vt 0 then Float.Array.set t.vt 0 tag;
    take_from t band
  end

(* Sentinel-returning fast path ({!Packet.null} when every band is
   empty): the port's service loop runs once per transmitted packet
   and skips the [option] box. *)
let dequeue_null t =
  match t.sched with
  | Strict -> dequeue_strict t
  | Wrr w -> dequeue_wrr t w
  | Drr q -> dequeue_drr t q
  | Wfq _ -> dequeue_wfq t

let dequeue t =
  let p = dequeue_null t in
  if p == Packet.null then None else Some p

let backlog_bytes t = Array.fold_left (fun acc b -> acc + b.bytes) 0 t.bands

let backlog_packets t =
  Array.fold_left (fun acc b -> acc + b.q_len) 0 t.bands

let stats t =
  Array.map
    (fun b ->
       { enqueued = b.s_enqueued; dequeued = b.s_dequeued;
         tail_dropped = b.s_tail_dropped; red_dropped = b.s_red_dropped;
         bytes_sent = b.s_bytes_sent })
    t.bands
