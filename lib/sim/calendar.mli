(** Calendar queue keyed on float priorities, with FIFO tie-breaking.

    The fast event queue of the discrete-event engine (Brown 1988): a
    ring of time buckets of width [w] covering one "year" of [n]
    buckets; an event at time [k] lives in bucket [floor (k / w) mod n].
    Enqueue is O(1) (buckets are kept sorted and are short on average);
    dequeue scans forward from the current bucket and is O(1) in the
    common case. The bucket count doubles/halves with the population
    and the width is re-derived from the observed inter-event gap, so
    the structure tracks density shifts automatically.

    Equal-priority elements pop in insertion order — the exact
    [(key, seq)] total order {!Heap} implements, which keeps the two
    structures byte-interchangeable under the engine. {!Heap} stays as
    the reference oracle; the scheduler-contract property test drives
    both through one harness. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q k v] inserts [v] with priority [k]. Keys must be finite. *)

val push_at : 'a t -> floatarray -> 'a -> unit
(** {!push} with the key read from slot 0 of the caller's one-slot
    staging cell: the key crosses the call unboxed, so a steady-state
    push (cells recycled) allocates nothing. The cell is copied from,
    never retained. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element; among equal
    priorities, the earliest pushed. *)

val pop_due :
  'a t -> bound:float -> strict:bool -> default:'a -> key_out:floatarray -> 'a
(** Allocation-free pop for hot loops. Removes and returns the
    minimum-priority element if it is due — key [<= bound], or
    [< bound] when [strict] — writing its key into [key_out.{0}];
    otherwise returns [default] (compare physically) and touches
    nothing. Never allocates, unlike the option/tuple of
    [peek]+[pop]. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit

val bucket_count : 'a t -> int
(** Current number of buckets (introspection for tests). *)

val width : 'a t -> float
(** Current bucket width in key units (introspection for tests). *)
