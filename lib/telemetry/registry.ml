type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t
  | Series of Timeseries.t

(* Version of the JSON export layout: bumped whenever the shape of
   [to_json] (or the CLI envelopes built around it) changes
   incompatibly. Exported at the top level of every JSON object so
   downstream consumers can detect format drift; tools/json_lint
   enforces its presence. *)
let schema_version = 1

(* One process-wide registry: instrumented modules create their metrics
   at load time and hold direct references, so the table only ever
   grows. [reset] zeroes values without dropping registrations.

   The name→handle table is shared across domains and guarded by a
   mutex (registration is rare — handles are cached by callers — so
   the lock is never on the per-packet path). Metric *values* live in
   per-domain cells inside the handles (see counter.ml), and the
   forensic rings below are fully domain-local. *)
let table : (string, metric) Hashtbl.t = Hashtbl.create 64

let table_mutex = Mutex.create ()

let locked f =
  Mutex.lock table_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_mutex) f

(* Hop trace and event log are per-domain rings: each domain records
   its own forensic tail. They are not merged across domains — exports
   read the calling domain's rings. *)
let trace_key = Domain.DLS.new_key (fun () -> Hop_trace.create ())

let trace () = Domain.DLS.get trace_key

let event_key = Domain.DLS.new_key (fun () -> Event_log.create ())

let events () = Domain.DLS.get event_key

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Series _ -> "series"

let register name wrap make select =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some m ->
        (match select m with
         | Some v -> v
         | None ->
           invalid_arg
             (Printf.sprintf "Registry: %s already registered as a %s" name
                (kind_name m)))
      | None ->
        let v = make name in
        Hashtbl.replace table name (wrap v);
        v)

let counter name =
  register name (fun c -> Counter c) Counter.make (function
    | Counter c -> Some c
    | Gauge _ | Histogram _ | Series _ -> None)

let gauge name =
  register name (fun g -> Gauge g) Gauge.make (function
    | Gauge g -> Some g
    | Counter _ | Histogram _ | Series _ -> None)

let histogram ?lo ?buckets name =
  register name
    (fun h -> Histogram h)
    (fun name -> Histogram.make ?lo ?buckets name)
    (function
      | Histogram h -> Some h
      | Counter _ | Gauge _ | Series _ -> None)

let series ?capacity ?scope name =
  register name
    (fun s -> Series s)
    (fun name -> Timeseries.make ?capacity ?scope name)
    (function
      | Series s -> Some s
      | Counter _ | Gauge _ | Histogram _ -> None)

let find name = locked (fun () -> Hashtbl.find_opt table name)

let find_counter name =
  match find name with Some (Counter c) -> Some c | Some _ | None -> None

let find_gauge name =
  match find name with Some (Gauge g) -> Some g | Some _ | None -> None

let find_histogram name =
  match find name with Some (Histogram h) -> Some h | Some _ | None -> None

let find_series name =
  match find name with Some (Series s) -> Some s | Some _ | None -> None

let counter_value name =
  match find_counter name with Some c -> Counter.value c | None -> 0

let names () =
  locked (fun () ->
      List.sort String.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) table []))

let cardinal () = locked (fun () -> Hashtbl.length table)

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
           | Counter c -> Counter.reset c
           | Gauge g -> Gauge.reset g
           | Histogram h -> Histogram.reset h
           | Series s -> Timeseries.reset s)
        table);
  Hop_trace.clear (trace ());
  Event_log.clear (events ())

(* --- snapshot / restore ------------------------------------------------ *)

(* Captures metric values only — the hop trace and event log are
   forensic rings tied to one run and are not snapshotted. Restoring
   writes values back unconditionally (a harness operation, like
   [reset]); metrics registered after the snapshot are left alone. *)
type saved =
  | Saved_counter of int
  | Saved_gauge of float
  | Saved_histogram of Histogram.snapshot
  | Saved_series of Timeseries.snapshot

type snapshot = (string * saved) list

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun name m acc ->
           let v =
             match m with
             | Counter c -> Saved_counter (Counter.value c)
             | Gauge g -> Saved_gauge (Gauge.value g)
             | Histogram h -> Saved_histogram (Histogram.snapshot h)
             | Series s -> Saved_series (Timeseries.snapshot s)
           in
           (name, v) :: acc)
        table [])

let restore snap =
  Control.with_enabled (fun () ->
      List.iter
        (fun (name, v) ->
           match (find name, v) with
           | Some (Counter c), Saved_counter n -> Counter.set c n
           | Some (Gauge g), Saved_gauge x -> Gauge.set g x
           | Some (Histogram h), Saved_histogram s -> Histogram.restore h s
           | Some (Series ts), Saved_series s -> Timeseries.restore ts s
           | _ -> ())
        snap)

(* Merge a snapshot taken in another domain into this domain's cells:
   counters and gauges add, histograms merge bucket-wise. Associative
   and commutative, so shard partials fold in any order into one
   deterministic total. Handles are process-wide, so every name in a
   same-process snapshot already resolves; the [None] arms only guard
   against snapshots outliving a changed registry. *)
let absorb snap =
  Control.with_enabled (fun () ->
      List.iter
        (fun (name, v) ->
           match (find name, v) with
           | Some (Counter c), Saved_counter n -> Counter.add c n
           | Some (Gauge g), Saved_gauge x -> Gauge.set g (Gauge.value g +. x)
           | Some (Histogram h), Saved_histogram s -> Histogram.absorb h s
           | Some (Series ts), Saved_series s -> Timeseries.absorb ts s
           | _ -> ())
        snap)

let snapshot_counter snap name =
  match List.assoc_opt name snap with
  | Some (Saved_counter n) -> n
  | Some (Saved_gauge _ | Saved_histogram _ | Saved_series _) | None -> 0

(* --- export ------------------------------------------------------------ *)

let sorted_metrics pick =
  List.filter_map (fun n -> Option.map (fun m -> (n, m)) (pick n)) (names ())

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v else "0"

let buf_object b entries render =
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape name));
       render b v)
    entries;
  Buffer.add_char b '}'

let buf_series b s =
  Buffer.add_string b
    (Printf.sprintf "{\"scope\":\"%s\",\"level\":%d,\"samples\":["
       (match Timeseries.scope s with
        | Timeseries.Sim -> "sim"
        | Timeseries.Host -> "host")
       (Timeseries.level s));
  let first = ref true in
  Timeseries.iter s (fun time v ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "[%s,%s]" (json_float time) (json_float v)));
  Buffer.add_string b "]}"

let to_json ?(trace_events = 64) ?(event_entries = 256) () =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%d,\"counters\":" schema_version);
  buf_object b
    (sorted_metrics find_counter)
    (fun b c -> Buffer.add_string b (string_of_int (Counter.value c)));
  Buffer.add_string b ",\"gauges\":";
  buf_object b
    (sorted_metrics find_gauge)
    (fun b g -> Buffer.add_string b (json_float (Gauge.value g)));
  Buffer.add_string b ",\"histograms\":";
  buf_object b
    (sorted_metrics find_histogram)
    (fun b h ->
       Buffer.add_string b
         (Printf.sprintf
            "{\"count\":%d,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\
             \"max\":%s}"
            (Histogram.count h)
            (json_float (Histogram.mean h))
            (json_float (Histogram.p50 h))
            (json_float (Histogram.p90 h))
            (json_float (Histogram.p99 h))
            (json_float (Histogram.max_value h))));
  Buffer.add_string b ",\"series\":";
  buf_object b (sorted_metrics find_series) buf_series;
  Buffer.add_string b ",\"trace\":[";
  List.iteri
    (fun i (e : Hop_trace.event) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf
            "{\"uid\":%d,\"time\":%s,\"node\":%d,\"event\":\"%s\"}"
            e.Hop_trace.uid
            (json_float e.Hop_trace.time)
            e.Hop_trace.node
            (json_escape e.Hop_trace.label)))
    (Hop_trace.recent (trace ()) trace_events);
  Buffer.add_string b "],\"events\":";
  Buffer.add_string b (Event_log.json_entries ~limit:event_entries (events ()));
  Buffer.add_char b '}';
  Buffer.contents b

let pp ?(trace_events = 0) ppf () =
  let counters = sorted_metrics find_counter in
  let gauges = sorted_metrics find_gauge in
  let histograms = sorted_metrics find_histogram in
  let width =
    List.fold_left
      (fun acc (n, _) -> Stdlib.max acc (String.length n))
      0
      (List.map (fun (n, c) -> (n, Counter c)) counters
       @ List.map (fun (n, g) -> (n, Gauge g)) gauges
       @ List.map (fun (n, h) -> (n, Histogram h)) histograms)
  in
  if counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (n, c) ->
         Format.fprintf ppf "  %-*s %d@." width n (Counter.value c))
      counters
  end;
  if gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (n, g) ->
         Format.fprintf ppf "  %-*s %.6g@." width n (Gauge.value g))
      gauges
  end;
  if histograms <> [] then begin
    Format.fprintf ppf "histograms:@.";
    List.iter
      (fun (n, h) ->
         Format.fprintf ppf
           "  %-*s n=%-8d mean=%-10.4g p50=%-10.4g p90=%-10.4g \
            p99=%-10.4g max=%.4g@."
           width n (Histogram.count h) (Histogram.mean h) (Histogram.p50 h)
           (Histogram.p90 h) (Histogram.p99 h) (Histogram.max_value h))
      histograms
  end;
  let ser =
    List.filter (fun (_, s) -> Timeseries.length s > 0)
      (sorted_metrics find_series)
  in
  if ser <> [] then begin
    Format.fprintf ppf "series:@.";
    List.iter
      (fun (n, s) -> Format.fprintf ppf "  %-*s %a@." width n Timeseries.pp s)
      ser
  end;
  if trace_events > 0 then begin
    Format.fprintf ppf "trace (last %d events):@." trace_events;
    List.iter
      (fun e -> Format.fprintf ppf "  %a@." Hop_trace.pp_event e)
      (Hop_trace.recent (trace ()) trace_events)
  end;
  if Event_log.recorded (events ()) > 0 then begin
    Format.fprintf ppf "events:@.";
    List.iter
      (fun e -> Format.fprintf ppf "  %a@." Event_log.pp_entry e)
      (Event_log.entries (events ()))
  end
