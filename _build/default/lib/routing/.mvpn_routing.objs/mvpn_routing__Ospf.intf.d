lib/routing/ospf.mli: Mvpn_net Mvpn_sim
