(* E6 — the end-to-end deployment chain (Fig. 3/4, §5, claim C6).

   "The customer premises device could use technologies such as CBQ to
   classify traffic and DiffServ/ToS to mark it [...]. The network edge
   will then map the CPE-specified DiffServ/ToS service level
   specification into the QoS field of the MPLS header, providing a way
   to protect the service level definition on an end-to-end basis."

   Three deployments of the same congested network, removing one link
   of the chain at a time:
     full      — CBQ marking at the CPE + DSCP->EXP mapping at the PE;
     no-exp    — CPE marks, but the edge writes EXP 0 (labelled packets
                 are indistinguishable inside the core);
     no-mark   — the CPE never marks (everything enters best-effort).
   Congestion lives in the core, where only the EXP bits are visible. *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Flow = Mvpn_net.Flow
module Dscp = Mvpn_net.Dscp
module Sla = Mvpn_qos.Sla
module Cbq = Mvpn_qos.Cbq
module Classifier = Mvpn_qos.Classifier

let pairs = 3
let core_bandwidth = 10e6
let access_bandwidth = 5e6
let duration = 25.0

let make_cpe () =
  Cbq.create
    ~classes:
      [| { Cbq.name = "voice"; rate_bps = 128_000.0; burst_bytes = 4_000.0;
           dscp = Dscp.ef; exceed = Cbq.Police_drop; borrow = false };
         { Cbq.name = "business"; rate_bps = 500_000.0;
           burst_bytes = 20_000.0; dscp = Dscp.af 3 1;
           exceed = Cbq.Remark (Dscp.af 3 3); borrow = false } |]
    ~rules:
      [ Classifier.rule ~proto:Flow.Udp ~dst_port:(5060, 5061) 0;
        Classifier.rule ~proto:Flow.Udp ~dst_port:(1433, 1433) 1 ]
    ()

let run_variant ?slo ?failure ~cpe_marks ~map_dscp_to_exp () =
  let bb = Backbone.build ~pops:3 ~core_bandwidth ~chords:[] () in
  let mk_sites pop base =
    List.init pairs (fun i ->
        Backbone.attach_site ~access_bandwidth bb ~id:(base + i)
          ~name:(Printf.sprintf "s%d" (base + i)) ~vpn:1
          ~prefix:(Prefix.make (Ipv4.of_octets 10 (base + i) 0 0) 16)
          ~pop)
  in
  let senders = mk_sites 0 0 and receivers = mk_sites 1 100 in
  let engine = Engine.create () in
  let net =
    Network.create
      ~policy:(Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched)
      engine (Backbone.topology bb)
  in
  let vpn =
    Mpls_vpn.deploy ~map_dscp_to_exp ~net ~backbone:bb
      ~sites:(senders @ receivers) ()
  in
  (* Optional SLA conformance tracking: stock per-band objectives for
     the one tenant, plus a span sampler. *)
  (match slo with
   | Some s ->
     for band = 0 to Qos_mapping.band_count - 1 do
       Mvpn_telemetry.Slo.declare s ~vpn:1 ~band
         (Qos_mapping.default_objective band)
     done;
     Network.set_slo net (Some s);
     Network.set_span_sampler net (Some (Mvpn_telemetry.Span.sampler ()))
   | None -> ());
  (* Optional core failure/repair churn between pop0 and pop1. *)
  (match failure with
   | Some (fail_at, repair_at) ->
     let pops = Backbone.pops bb in
     let set up =
       Mvpn_sim.Topology.set_duplex_state (Backbone.topology bb) pops.(0)
         pops.(1) up
     in
     Engine.schedule_at engine ~time:fail_at (fun () -> set false);
     Engine.schedule_at engine ~time:repair_at (fun () ->
         set true;
         ignore (Mpls_vpn.reconverge vpn))
   | None -> ());
  let registry = Traffic.registry engine in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (Traffic.sink registry))
    (senders @ receivers);
  List.iteri
    (fun i (a : Site.t) ->
       let b = List.nth receivers i in
       let cbq = if cpe_marks then Some (make_cpe ()) else None in
       let mk label port rate size =
         let emit =
           Traffic.sender registry ~net ~src_node:a.Site.ce_node
             ~flow:(Flow.make ~proto:Flow.Udp ~dst_port:port
                      (Site.host a 1) (Site.host b 1))
             ~dscp:Dscp.best_effort ~vpn:1 ?cbq
             ~collector:(Traffic.collector registry label)
             ()
         in
         Traffic.cbr engine ~start:0.0 ~stop:duration ~rate_bps:rate
           ~packet_bytes:size emit
       in
       mk "voice" 5060 64_000.0 200;
       mk "transactional" 1433 200_000.0 512;
       mk "bulk" 20 3_300_000.0 1500)
    senders;
  Engine.run ~until:(duration +. 5.0) engine;
  (match slo with
   | Some s -> Mvpn_telemetry.Slo.advance s ~time:(Engine.now engine)
   | None -> ());
  ( Traffic.report registry "voice",
    Traffic.report registry "transactional" )

let rec run () =
  Tables.heading
    "E6: CPE CBQ marking + edge DSCP->EXP mapping, core congested at 104%";
  let widths = [10; 9; 11; 11; 9; 11; 9; 6] in
  Tables.row widths
    [ "CPE marks"; "EXP map"; "voice mean"; "voice p99"; "v loss";
      "trans mean"; "t loss"; "SLA" ];
  Tables.rule widths;
  List.iter
    (fun (cpe_marks, map_exp) ->
       let voice, trans =
         run_variant ~cpe_marks ~map_dscp_to_exp:map_exp ()
       in
       Tables.row widths
         [ string_of_bool cpe_marks;
           string_of_bool map_exp;
           Tables.ms voice.Sla.mean_delay;
           Tables.ms voice.Sla.p99_delay;
           Tables.pct voice.Sla.loss;
           Tables.ms trans.Sla.mean_delay;
           Tables.pct trans.Sla.loss;
           (if Sla.complies Sla.voice_spec voice then "ok" else "VIOL") ])
    [(true, true); (true, false); (false, true)];
  Tables.note
    "\nExpected shape (paper C6): only the full chain (marks + mapping)\n\
     protects voice end-to-end. Remove the edge mapping and labelled\n\
     voice drowns in the congested core despite correct CPE marking;\n\
     remove CPE marking and the mapping has nothing to carry.";
  Telemetry_report.section
    ~title:
      "E6b: full-chain telemetry (marks + mapping, congested core)"
    (fun () ->
       ignore (run_variant ~cpe_marks:true ~map_dscp_to_exp:true ()));
  e6c ()

(* E6c — SLA conformance under failure: the full chain again, with the
   pop0<->pop1 core link failed at t=10s and repaired (plus
   reconvergence) at t=12s, per-(vpn, band) SLOs watching. The
   conformance gauges and violation counts land in
   BENCH_telemetry.json. *)
and e6c () =
  Tables.heading
    "E6c: SLA conformance under failure (full chain, core link down \
     10s-12s)";
  let module T = Mvpn_telemetry in
  let snap = T.Registry.snapshot () in
  T.Registry.reset ();
  let slo = T.Slo.create () in
  T.Control.with_enabled (fun () ->
      ignore
        (run_variant ~slo ~failure:(10.0, 12.0) ~cpe_marks:true
           ~map_dscp_to_exp:true ()));
  let events = T.Registry.events () in
  let violations = T.Event_log.count_kind events "slo_violation" in
  let recoveries = T.Event_log.count_kind events "slo_recovered" in
  let widths = [14; 8; 8; 8; 10; 10; 10] in
  Tables.row widths
    ["vpn/band"; "total"; "bad"; "drops"; "budget"; "burn fast"; "state"];
  Tables.rule widths;
  List.iter
    (fun (r : T.Slo.report) ->
       if r.T.Slo.total > 0 then
         Tables.row widths
           [ Printf.sprintf "v%d %s" r.T.Slo.vpn
               (Qos_mapping.band_name r.T.Slo.band);
             string_of_int r.T.Slo.total;
             string_of_int r.T.Slo.bad;
             string_of_int r.T.Slo.drops;
             Printf.sprintf "%.0f%%" (100.0 *. r.T.Slo.budget_remaining);
             Printf.sprintf "%.2g" r.T.Slo.burn_fast;
             (if r.T.Slo.in_budget then "ok" else "OVER") ])
    (T.Slo.reports slo);
  Tables.note
    "\n%d slo_violation and %d slo_recovered events across the outage\n\
     (every class suffers while the ring is cut; budgets show which\n\
     classes spent the failure affordably)." violations recoveries;
  T.Registry.restore snap;
  (* Publish after the restore so the gauges reach the harness JSON. *)
  T.Control.with_enabled (fun () ->
      T.Slo.publish_gauges ~prefix:"e6c.slo" slo;
      T.Gauge.set
        (T.Registry.gauge "e6c.slo.violations")
        (float_of_int violations);
      T.Gauge.set
        (T.Registry.gauge "e6c.slo.recovered")
        (float_of_int recoveries))
