lib/core/planning.ml: Array Float Fun Hashtbl List Mvpn_routing Mvpn_sim Option
