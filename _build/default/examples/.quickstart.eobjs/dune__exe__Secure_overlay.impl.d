examples/secure_overlay.ml: Backbone List Mvpn_core Mvpn_ipsec Mvpn_net Mvpn_qos Mvpn_sim Network Overlay Printf Qos_mapping Site Traffic
