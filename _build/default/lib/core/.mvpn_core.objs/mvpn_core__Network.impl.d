lib/core/network.ml: Array Hashtbl List Mvpn_mpls Mvpn_net Mvpn_qos Mvpn_sim Printf Qos_mapping String
