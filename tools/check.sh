#!/bin/sh
# Repository gate: everything must build (libraries, binaries, benches,
# examples) and the full test suite must pass. lib/telemetry is built
# with warnings as errors (see lib/telemetry/dune).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "ok"
