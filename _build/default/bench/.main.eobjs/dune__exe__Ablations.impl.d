bench/ablations.ml: Array Backbone Float List Mpls_vpn Mvpn_core Mvpn_mpls Mvpn_net Mvpn_qos Mvpn_routing Mvpn_sim Network Printf Qos_mapping Scenario Site Tables Traffic
