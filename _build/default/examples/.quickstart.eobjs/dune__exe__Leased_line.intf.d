examples/leased_line.mli:
