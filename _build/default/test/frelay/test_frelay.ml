open Mvpn_frelay

(* --- Frame -------------------------------------------------------------- *)

let test_frame_validation () =
  Alcotest.check_raises "reserved dlci"
    (Invalid_argument "Frame.make: dlci 0 outside 16-1007") (fun () ->
      ignore (Frame.make ~dlci:0 ~payload:100));
  Alcotest.check_raises "dlci too big"
    (Invalid_argument "Frame.make: dlci 1008 outside 16-1007") (fun () ->
      ignore (Frame.make ~dlci:1008 ~payload:100));
  let f = Frame.make ~dlci:100 ~payload:1500 in
  Alcotest.(check int) "wire bytes" 1506 (Frame.wire_bytes f);
  Alcotest.(check bool) "clean bits" false
    (f.Frame.de || f.Frame.fecn || f.Frame.becn)

(* --- Pvc ---------------------------------------------------------------- *)

let test_pvc_committed_then_excess_then_drop () =
  (* CIR 8 kb/s, Bc 8000 bits (1000 B), Be 8000 bits. *)
  let pvc =
    Pvc.create { Pvc.cir_bps = 8_000.0; bc_bits = 8_000.0; be_bits = 8_000.0 }
  in
  let frame () = Frame.make ~dlci:100 ~payload:(1000 - Frame.overhead_bytes) in
  let f1 = frame () in
  Alcotest.(check bool) "committed" true
    (Pvc.police pvc ~now:0.0 f1 = Pvc.Committed);
  Alcotest.(check bool) "not de" false f1.Frame.de;
  let f2 = frame () in
  Alcotest.(check bool) "excess" true
    (Pvc.police pvc ~now:0.0 f2 = Pvc.Excess);
  Alcotest.(check bool) "de marked" true f2.Frame.de;
  let f3 = frame () in
  Alcotest.(check bool) "dropped" true
    (Pvc.police pvc ~now:0.0 f3 = Pvc.Dropped);
  Alcotest.(check (triple int int int)) "stats" (1, 1, 1) (Pvc.stats pvc)

let test_pvc_refill () =
  let pvc =
    Pvc.create { Pvc.cir_bps = 8_000.0; bc_bits = 8_000.0; be_bits = 0.0 }
  in
  let frame () = Frame.make ~dlci:100 ~payload:(1000 - Frame.overhead_bytes) in
  Alcotest.(check bool) "burst spent" true
    (Pvc.police pvc ~now:0.0 (frame ()) = Pvc.Committed);
  Alcotest.(check bool) "empty now" true
    (Pvc.police pvc ~now:0.0 (frame ()) = Pvc.Dropped);
  (* 1 second at 8 kb/s earns exactly one more 1000-byte frame. *)
  Alcotest.(check bool) "refilled" true
    (Pvc.police pvc ~now:1.0 (frame ()) = Pvc.Committed)

(* The paper-relevant equivalence: FR's CIR/Bc/Be contract and the
   DiffServ srTCM meter make the same three-way decision. *)
let pvc_matches_srtcm =
  QCheck.Test.make ~name:"fr policing agrees with srTCM coloring" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (int_range 100 1494))
    (fun sizes ->
       let cir = 64_000.0 and burst_bits = 32_000.0 in
       let pvc =
         Pvc.create
           { Pvc.cir_bps = cir; bc_bits = burst_bits; be_bits = burst_bits }
       in
       let meter =
         Mvpn_qos.Meter.srtcm ~cir_bps:cir ~cbs_bytes:(burst_bits /. 8.0)
           ~ebs_bytes:(burst_bits /. 8.0)
       in
       let step = 0.005 in
       List.for_all
         (fun (i, payload) ->
            let now = float_of_int i *. step in
            let f = Frame.make ~dlci:20 ~payload in
            let fr = Pvc.police pvc ~now f in
            let color =
              Mvpn_qos.Meter.meter meter ~now ~bytes:(Frame.wire_bytes f)
            in
            match fr, color with
            | Pvc.Committed, Mvpn_qos.Meter.Green
            | Pvc.Excess, Mvpn_qos.Meter.Yellow
            | Pvc.Dropped, Mvpn_qos.Meter.Red -> true
            | _ -> false)
         (List.mapi (fun i s -> (i, s)) sizes))

let pvc_stats_conservation =
  QCheck.Test.make ~name:"pvc verdict counts are conserved" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (int_range 64 1500))
    (fun sizes ->
       let pvc = Pvc.create (Pvc.default_contract ~cir_bps:128_000.0) in
       List.iteri
         (fun i payload ->
            ignore
              (Pvc.police pvc
                 ~now:(float_of_int i *. 0.01)
                 (Frame.make ~dlci:50 ~payload)))
         sizes;
       let c, e, d = Pvc.stats pvc in
       c + e + d = List.length sizes)

(* --- Frswitch ----------------------------------------------------------- *)

let test_frswitch_rewrite () =
  let sw = Frswitch.create () in
  (match Frswitch.cross_connect sw ~in_dlci:100 ~out_dlci:200 ~next_hop:3 with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Frswitch.submit sw (Frame.make ~dlci:100 ~payload:500) with
   | Frswitch.Forwarded { frame; next_hop } ->
     Alcotest.(check int) "dlci rewritten" 200 frame.Frame.dlci;
     Alcotest.(check int) "next hop" 3 next_hop
   | _ -> Alcotest.fail "expected forward");
  match Frswitch.submit sw (Frame.make ~dlci:999 ~payload:500) with
  | Frswitch.Unknown_dlci -> ()
  | _ -> Alcotest.fail "unknown dlci must be rejected"

let test_frswitch_congestion_contract () =
  let sw = Frswitch.create ~congestion_threshold:4 ~queue_capacity:8 () in
  ignore (Frswitch.cross_connect sw ~in_dlci:100 ~out_dlci:100 ~next_hop:1);
  (* Fill to the congestion threshold with clean frames. *)
  for _ = 1 to 4 do
    match Frswitch.submit sw (Frame.make ~dlci:100 ~payload:100) with
    | Frswitch.Forwarded { frame; _ } ->
      Alcotest.(check bool) "no fecn below threshold" false frame.Frame.fecn
    | _ -> Alcotest.fail "should queue"
  done;
  (* Past the threshold: clean frames get FECN, DE frames are shed. *)
  (match Frswitch.submit sw (Frame.make ~dlci:100 ~payload:100) with
   | Frswitch.Forwarded { frame; _ } ->
     Alcotest.(check bool) "fecn set" true frame.Frame.fecn
   | _ -> Alcotest.fail "clean frame should still queue");
  let de_frame = Frame.make ~dlci:100 ~payload:100 in
  de_frame.Frame.de <- true;
  (match Frswitch.submit sw de_frame with
   | Frswitch.Discarded_de -> ()
   | _ -> Alcotest.fail "DE frame should be shed under congestion");
  Alcotest.(check int) "discard counted" 1 (Frswitch.de_discards sw);
  (* Fill to capacity: even clean frames eventually refused. *)
  let rec fill n =
    if n > 20 then Alcotest.fail "queue never filled"
    else
      match Frswitch.submit sw (Frame.make ~dlci:100 ~payload:100) with
      | Frswitch.Queue_full -> ()
      | Frswitch.Forwarded _ -> fill (n + 1)
      | _ -> Alcotest.fail "unexpected"
  in
  fill 0

let test_frswitch_drain_order () =
  let sw = Frswitch.create () in
  ignore (Frswitch.cross_connect sw ~in_dlci:100 ~out_dlci:101 ~next_hop:1);
  ignore (Frswitch.submit sw (Frame.make ~dlci:100 ~payload:111));
  ignore (Frswitch.submit sw (Frame.make ~dlci:100 ~payload:222));
  (match Frswitch.drain sw with
   | Some (f, _) -> Alcotest.(check int) "fifo" 111 f.Frame.payload
   | None -> Alcotest.fail "empty");
  (match Frswitch.drain sw with
   | Some (f, _) -> Alcotest.(check int) "fifo 2" 222 f.Frame.payload
   | None -> Alcotest.fail "empty");
  Alcotest.(check bool) "drained" true (Frswitch.drain sw = None)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "frelay"
    [ ("frame", [ Alcotest.test_case "validation" `Quick test_frame_validation ]);
      ("pvc",
       [ Alcotest.test_case "committed/excess/drop" `Quick
           test_pvc_committed_then_excess_then_drop;
         Alcotest.test_case "refill" `Quick test_pvc_refill;
         qt pvc_matches_srtcm;
         qt pvc_stats_conservation ]);
      ("switch",
       [ Alcotest.test_case "rewrite" `Quick test_frswitch_rewrite;
         Alcotest.test_case "congestion contract" `Quick
           test_frswitch_congestion_contract;
         Alcotest.test_case "drain order" `Quick test_frswitch_drain_order ]) ]
