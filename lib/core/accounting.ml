module Packet = Mvpn_net.Packet
module Telemetry = Mvpn_telemetry

type key = int * int  (* vpn, band *)

(* Each cell mirrors its running totals into registry gauges
   ([acct.vpn<N>.band<B>.{bytes,packets}]) so invoices and `mvpn
   stats` agree; the cell stays authoritative (gauge writes are gated
   on the global telemetry switch, the cell counts regardless). *)
type cell = {
  mutable packets : int;
  mutable bytes : int;
  g_packets : Telemetry.Gauge.t;
  g_bytes : Telemetry.Gauge.t;
}

type t = { table : (key, cell) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }

let observe t packet =
  let vpn = Option.value ~default:0 packet.Packet.vpn in
  let band = Qos_mapping.band_of_dscp packet.Packet.inner.Packet.dscp in
  let cell =
    match Hashtbl.find_opt t.table (vpn, band) with
    | Some c -> c
    | None ->
      let g suffix =
        Telemetry.Registry.gauge
          (Printf.sprintf "acct.vpn%d.band%d.%s" vpn band suffix)
      in
      let c =
        { packets = 0; bytes = 0; g_packets = g "packets";
          g_bytes = g "bytes" }
      in
      Hashtbl.replace t.table (vpn, band) c;
      c
  in
  cell.packets <- cell.packets + 1;
  cell.bytes <- cell.bytes + packet.Packet.size;
  Telemetry.Gauge.set cell.g_packets (float_of_int cell.packets);
  Telemetry.Gauge.set cell.g_bytes (float_of_int cell.bytes)

let sink t inner packet =
  observe t packet;
  inner packet

type usage = {
  vpn : int;
  band : int;
  packets : int;
  bytes : int;
}

let usage t =
  Hashtbl.fold
    (fun (vpn, band) (c : cell) acc ->
       { vpn; band; packets = c.packets; bytes = c.bytes } :: acc)
    t.table []
  |> List.sort (fun a b ->
      match Int.compare a.vpn b.vpn with
      | 0 -> Int.compare a.band b.band
      | c -> c)

type tariff = { per_gb : float array }

let default_tariff = { per_gb = [| 8.0; 4.0; 2.0; 0.5 |] }

let line_cost tariff u =
  let rate =
    if u.band < Array.length tariff.per_gb then tariff.per_gb.(u.band)
    else tariff.per_gb.(Array.length tariff.per_gb - 1)
  in
  float_of_int u.bytes /. 1e9 *. rate

let invoice ?(tariff = default_tariff) t ~vpn =
  let lines =
    List.filter_map
      (fun u -> if u.vpn = vpn then Some (u, line_cost tariff u) else None)
      (usage t)
  in
  (lines, List.fold_left (fun acc (_, c) -> acc +. c) 0.0 lines)

let pp_invoice ?tariff ppf t ~vpn =
  let lines, total = invoice ?tariff t ~vpn in
  Format.fprintf ppf "VPN %d usage:@." vpn;
  List.iter
    (fun (u, cost) ->
       Format.fprintf ppf "  %-6s %10d pkts %12d bytes  %8.4f@."
         (Qos_mapping.band_name u.band) u.packets u.bytes cost)
    lines;
  Format.fprintf ppf "  total %8.4f@." total
