module Topology = Mvpn_sim.Topology
module Prefix = Mvpn_net.Prefix
module Fib = Mvpn_net.Fib
module Dscp = Mvpn_net.Dscp
module Packet = Mvpn_net.Packet
module Ospf = Mvpn_routing.Ospf
module Mpbgp = Mvpn_routing.Mpbgp
module Spf = Mvpn_routing.Spf
module Ldp = Mvpn_mpls.Ldp
module Plane = Mvpn_mpls.Plane
module Lfib = Mvpn_mpls.Lfib
module Label = Mvpn_mpls.Label
module Fec = Mvpn_mpls.Fec
module Rsvp_te = Mvpn_mpls.Rsvp_te

let provider_asn = 65000

let m_fallback_packets =
  Mvpn_telemetry.Registry.counter "resilience.fallback.packets"
let m_fallback_engaged =
  Mvpn_telemetry.Registry.counter "resilience.fallback.engaged"
let m_fallback_restored =
  Mvpn_telemetry.Registry.counter "resilience.fallback.restored"

type t = {
  net : Network.t;
  backbone : Backbone.t;
  membership : Membership.t;
  ospf : Ospf.t;
  ldp : Ldp.t;
  mpbgp : Mpbgp.t;
  te : Rsvp_te.t option;
  te_bandwidth : float;
  vrf_table : (int * int, Vrf.t) Hashtbl.t;  (* (pe node, vpn) -> vrf *)
  ce_vrf : (int, Vrf.t) Hashtbl.t;  (* ce node -> its vrf *)
  site_state : (int, Site.t * int) Hashtbl.t;  (* site id -> site, label *)
  (* PE-pair tables consulted once per forwarded VPN packet: keyed by
     the packed pair [pe_key] (node ids fit 20 bits) so the per-packet
     lookup hashes an immediate int instead of allocating a tuple. *)
  pe_tunnels : (int, int) Hashtbl.t;  (* pe_key (src, dst pe) -> tunnel *)
  pe_next_hop : (int, int) Hashtbl.t;
  (* (pe, vpn label) pairs that re-export another carrier's prefixes:
     excluded from group replication (multicast is intra-provider). *)
  external_labels : (int * int, unit) Hashtbl.t;
  map_dscp_to_exp : bool;
  domain : int -> bool;
  (* Graceful degradation: when no labelled transport reaches the
     egress PE, tunnel the VPN label inside plain IP toward the egress
     loopback instead of dropping. Off by default; the resilience
     layer and the chaos benches switch it on. *)
  mutable ip_fallback : bool;
  (* (ingress, egress) PE pairs currently degraded to IP: drives the
     once-per-episode engage/restore events and counters. *)
  fallback_active : (int, unit) Hashtbl.t;  (* pe_key (ingress, egress) *)
  (* Per-PE-pair transport-label memo (see {!outer_transport}): the
     FTN answer is a pure function of the ingress node's FTN table and
     the TE tunnel map, so it is cached under those two generation
     stamps and recomputed only after LDP/RSVP-TE churn. *)
  transport_memo : (int, transport_memo) Hashtbl.t;  (* pe_key *)
  mutable tunnels_gen : int;  (* bumped on every pe_tunnels update *)
  mutable touches : int;
}

and transport_memo = {
  mutable tm_ftn_gen : int;
  mutable tm_tun_gen : int;
  mutable tm_ans : Plane.ftn_entry option;
}

let pe_key a b = (a lsl 20) lor b

let membership t = t.membership
let set_ip_fallback t flag = t.ip_fallback <- flag
let ip_fallback t = t.ip_fallback
let mpbgp t = t.mpbgp
let ospf t = t.ospf
let ldp t = t.ldp
let te t = t.te

let vrf t ~pe ~vpn = Hashtbl.find_opt t.vrf_table (pe, vpn)

let vrfs t = Hashtbl.fold (fun _ v acc -> v :: acc) t.vrf_table []

let rd_of_vpn vpn = { Mpbgp.rd_asn = provider_asn; rd_assigned = vpn }

let rt_of_vpn vpn = { Mpbgp.rt_asn = provider_asn; rt_value = vpn }

(* --- control-plane helpers -------------------------------------------- *)

let domain_link t (l : Topology.link) =
  l.Topology.up && t.domain l.Topology.src && t.domain l.Topology.dst

let refresh_fibs t =
  let topo = Network.topology t.net in
  for node = 0 to Topology.node_count topo - 1 do
    if t.domain node then begin
      ignore (Fib.clear_source (Network.fib t.net node) Fib.Igp);
      Network.install_fib t.net node (Ospf.fib t.ospf node)
    end
  done

let refresh_pe_next_hops t =
  Hashtbl.reset t.pe_next_hop;
  let topo = Network.topology t.net in
  let pops = Backbone.pops t.backbone in
  Array.iter
    (fun src ->
       let tree = Spf.dijkstra ~usable:(domain_link t) topo ~src in
       Array.iter
         (fun dst ->
            if dst <> src && tree.Spf.first_hop.(dst) >= 0 then
              Hashtbl.replace t.pe_next_hop (pe_key src dst)
                tree.Spf.first_hop.(dst))
         pops)
    pops

let ensure_vrf t (site : Site.t) =
  let key = (site.Site.pe_node, site.Site.vpn) in
  match Hashtbl.find_opt t.vrf_table key with
  | Some v -> v
  | None ->
    let v =
      Vrf.create ~pe:site.Site.pe_node ~vpn:site.Site.vpn
        ~rd:(rd_of_vpn site.Site.vpn)
        ~import_rts:[rt_of_vpn site.Site.vpn]
        ~export_rts:[rt_of_vpn site.Site.vpn]
    in
    Hashtbl.replace t.vrf_table key v;
    v

(* Static routing on the access leg: the CE default-routes to its PE
   and owns its own prefix. *)
let multicast_range =
  Prefix.make (Mvpn_net.Ipv4.of_octets 224 0 0 0) 4

let provision_ce_routing t (site : Site.t) =
  let ce_fib = Network.fib t.net site.Site.ce_node in
  Fib.add ce_fib Prefix.default
    { Fib.next_hop = site.Site.pe_node; cost = 1; source = Fib.Static };
  Fib.add ce_fib site.Site.prefix
    { Fib.next_hop = Fib.local_delivery; cost = 0; source = Fib.Connected };
  (* Group traffic replicated to this site terminates at the CE... *)
  Fib.add ce_fib multicast_range
    { Fib.next_hop = Fib.local_delivery; cost = 0; source = Fib.Connected };
  (* ...but group traffic originated at this site must go up to the PE
     (the FIB alone cannot tell the directions apart). *)
  Dataplane.add_interceptor (Network.dataplane t.net) site.Site.ce_node
    (fun ~from packet ->
      let dst = (Packet.visible_header packet).Packet.dst in
      if from = None && Mvpn_net.Ipv4.is_multicast dst then begin
        Network.transmit t.net ~from:site.Site.ce_node
          ~to_:site.Site.pe_node packet;
        Dataplane.Consumed
      end
      else Dataplane.Continue)

(* Bind a site into the data and control planes: VRF local route, a VPN
   label at the PE whose LFIB pops straight to the CE, and the VPNv4
   export. *)
let provision_site t (site : Site.t) =
  let v = ensure_vrf t site in
  Vrf.add_local v site;
  let label =
    Label.Allocator.alloc (Plane.allocator (Network.plane t.net) site.Site.pe_node)
  in
  Lfib.install
    (Plane.lfib (Network.plane t.net) site.Site.pe_node)
    ~in_label:label
    { Lfib.op = Lfib.Pop_and_ip; next_hop = site.Site.ce_node };
  Mpbgp.export_route t.mpbgp
    { Mpbgp.rd = Vrf.rd v; prefix = site.Site.prefix;
      next_hop_pe = site.Site.pe_node; vpn_label = label;
      export_rts = Vrf.export_rts v; site = site.Site.id };
  Hashtbl.replace t.site_state site.Site.id (site, label);
  provision_ce_routing t site;
  t.touches <- t.touches + 1

let reimport_all t =
  Hashtbl.iter
    (fun (pe, _) v ->
       ignore (Vrf.clear_remote v);
       List.iter
         (fun (r : Mpbgp.vpnv4_route) ->
            if r.Mpbgp.next_hop_pe <> pe then
              Vrf.install_remote v ~prefix:r.Mpbgp.prefix
                ~pe:r.Mpbgp.next_hop_pe ~vpn_label:r.Mpbgp.vpn_label)
         (Mpbgp.import t.mpbgp ~pe ~import_rts:(Vrf.import_rts v)))
    t.vrf_table

(* --- data plane --------------------------------------------------------- *)

(* Transport label selection: TE tunnel FTN if one is pinned for the
   pair, else the LDP FTN toward the egress loopback. The uncached
   walk allocates (a FEC, a loopback prefix) and pays a structural
   hash per call, so the verdict is memoized per PE pair under the
   ingress node's FTN generation and the tunnel-map generation — the
   only inputs the answer depends on. *)
let outer_transport_slow t ~ingress_pe ~egress_pe =
  let dp = Network.dataplane t.net in
  let te_ftn =
    match Hashtbl.find_opt t.pe_tunnels (pe_key ingress_pe egress_pe) with
    | Some tunnel_id ->
      Dataplane.find_ftn dp ingress_pe (Fec.Tunnel_fec tunnel_id)
    | None -> None
  in
  match te_ftn with
  | Some e -> Some e
  | None ->
    (match Backbone.pop_of_node t.backbone egress_pe with
     | Some pop ->
       Dataplane.find_ftn dp ingress_pe
         (Fec.Prefix_fec (Backbone.loopback t.backbone ~pop))
     | None -> None)

let outer_transport t ~ingress_pe ~egress_pe =
  let fgen = Plane.ftn_generation (Network.plane t.net) ingress_pe in
  let k = pe_key ingress_pe egress_pe in
  match Hashtbl.find t.transport_memo k with
  | m when m.tm_ftn_gen = fgen && m.tm_tun_gen = t.tunnels_gen -> m.tm_ans
  | m ->
    let ans = outer_transport_slow t ~ingress_pe ~egress_pe in
    m.tm_ftn_gen <- fgen;
    m.tm_tun_gen <- t.tunnels_gen;
    m.tm_ans <- ans;
    ans
  | exception Not_found ->
    let ans = outer_transport_slow t ~ingress_pe ~egress_pe in
    Hashtbl.add t.transport_memo k
      { tm_ftn_gen = fgen; tm_tun_gen = t.tunnels_gen; tm_ans = ans };
    ans

(* A PE egress hop still delivers when its link is up — or when a
   fast-reroute bypass currently covers it (the transmit-time switch in
   {!Network.transmit} will detour the packet). Link state flips with
   no generation to stamp, so this stays a live check — but through the
   dense link-id matrix, not the option-returning [find_link]. *)
let egress_usable t pe nh =
  let topo = Network.topology t.net in
  let id = Topology.find_link_id topo pe nh in
  id >= 0
  && (let l = Topology.link topo id in
      l.Topology.up
      || (match
            Lfib.protection (Plane.lfib (Network.plane t.net) pe) ~next_hop:nh
          with
          | Some pr -> pr.Lfib.usable ()
          | None -> false))

(* The labelled transport works again for this PE pair: close any open
   degradation episode — the make-before-break return to the LSP. *)
let note_transport_ok t ~ingress ~egress =
  let k = pe_key ingress egress in
  if Hashtbl.mem t.fallback_active k then begin
    Hashtbl.remove t.fallback_active k;
    Mvpn_telemetry.Counter.incr m_fallback_restored;
    if !Mvpn_telemetry.Control.enabled then
      Mvpn_telemetry.Event_log.record
        (Mvpn_telemetry.Registry.events ())
        (Mvpn_telemetry.Event_log.Lsp_restored { ingress; egress })
  end

let fallback_overhead = 24  (* outer IPv4 (20 B) + GRE shim (4 B) *)

(* Graceful degradation (RFC 4023 in spirit): no labelled transport
   reaches the egress PE, so carry the VPN label inside a best-effort
   IP tunnel between PE loopbacks — the outer header rides the global
   FIBs that OSPF keeps converging even while LDP/RSVP-TE state is
   gone. The label travels in the GRE key (the outer [src_port]); the
   egress PE's interceptor restores it. Best effort by construction:
   [copy_tos:false] leaves the outer DSCP at BE, so the core cannot
   see the tenant's class — degraded, counted, never silent. *)
let send_fallback t ~ingress ~egress ~vpn_label packet =
  match
    (Backbone.pop_of_node t.backbone ingress,
     Backbone.pop_of_node t.backbone egress)
  with
  | Some ipop, Some epop ->
    let src = Prefix.network (Backbone.loopback t.backbone ~pop:ipop) in
    let dst = Prefix.network (Backbone.loopback t.backbone ~pop:epop) in
    Packet.encapsulate packet ~src ~dst ~proto:Mvpn_net.Flow.Gre
      ~overhead:fallback_overhead ~copy_tos:false;
    (Packet.visible_header packet).Packet.src_port <- vpn_label;
    let k = pe_key ingress egress in
    if not (Hashtbl.mem t.fallback_active k) then begin
      Hashtbl.replace t.fallback_active k ();
      Mvpn_telemetry.Counter.incr m_fallback_engaged;
      if !Mvpn_telemetry.Control.enabled then
        Mvpn_telemetry.Event_log.record
          (Mvpn_telemetry.Registry.events ())
          (Mvpn_telemetry.Event_log.Fallback_engaged { ingress; egress })
    end;
    Mvpn_telemetry.Counter.incr m_fallback_packets;
    Network.forward_ip t.net ingress packet
  | _ -> Network.drop_packet ~node:ingress ~packet t.net "pe-unreachable"

(* Forward a packet out of a PE along one VRF route: hairpin to a
   local CE, plain IP over an Option-A border, or — the §5 edge
   function — push the VPN label with the CPE-marked DSCP in the EXP
   bits of the whole stack and hand it to the transport LSP. When no
   labelled transport survives (FTN gone or its egress link dead and
   unprotected), degrade to the IP tunnel if enabled, else drop
   ["pe-unreachable"]. *)
let pe_forward_to t pe packet nh =
  let hdr = Packet.visible_header packet in
  let relay to_ =
    if hdr.Packet.ttl <= 1 then
      Network.drop_packet ~node:pe ~packet t.net "ip-ttl"
    else begin
      hdr.Packet.ttl <- hdr.Packet.ttl - 1;
      Network.transmit t.net ~from:pe ~to_ packet
    end
  in
  match nh with
  | Vrf.Local_site s -> relay s.Site.ce_node
  | Vrf.Via_neighbor nbr -> relay nbr
  | Vrf.Remote_pe { pe = egress_pe; vpn_label } ->
    let exp =
      if t.map_dscp_to_exp then Dscp.to_exp (Packet.visible_dscp packet)
      else 0
    in
    let ttl = hdr.Packet.ttl in
    let labelled_send e =
      note_transport_ok t ~ingress:pe ~egress:egress_pe;
      Packet.push_label packet ~label:vpn_label ~exp ~ttl;
      (match e with
       | Some (e : Plane.ftn_entry) ->
         if e.Plane.push <> Label.explicit_null then
           Packet.push_label packet ~label:e.Plane.push ~exp ~ttl;
         Network.transmit t.net ~from:pe ~to_:e.Plane.next_hop packet
       | None ->
         (* Adjacent PHP egress: the inner label alone travels. *)
         (match Hashtbl.find_opt t.pe_next_hop (pe_key pe egress_pe) with
          | Some nh -> Network.transmit t.net ~from:pe ~to_:nh packet
          | None -> assert false))
    in
    (match outer_transport t ~ingress_pe:pe ~egress_pe with
     | Some e when egress_usable t pe e.Plane.next_hop ->
       labelled_send (Some e)
     | Some _ | None ->
       (* No usable transport LSP. Single-label PHP only works when the
          egress PE is literally the next hop; a missing FTN toward a
          distant PE (an LDP session loss, say) is a transport outage,
          not an implicit-null. *)
       (match Hashtbl.find_opt t.pe_next_hop (pe_key pe egress_pe) with
        | Some nh when nh = egress_pe && egress_usable t pe nh ->
          labelled_send None
        | Some _ | None ->
          if t.ip_fallback then
            send_fallback t ~ingress:pe ~egress:egress_pe ~vpn_label packet
          else Network.drop_packet ~node:pe ~packet t.net "pe-unreachable"))

(* Group communication (the abstract's "users who want to specify group
   communication"): ingress replication — one copy per VRF route, each
   forwarded exactly like a unicast packet to that destination. The
   sending site does not receive its own copy. *)
let pe_multicast t pe v ~from packet =
  Vrf.iter_routes v (fun prefix nh ->
      let replicate =
        match nh with
        (* Never back to the sending site. *)
        | Vrf.Local_site s -> Some s.Site.ce_node <> from
        | Vrf.Remote_pe { pe = p; vpn_label } ->
          not (Hashtbl.mem t.external_labels (p, vpn_label))
        (* Group delivery is intra-provider: per-prefix replication
           across an Option-A border would both duplicate (the far
           carrier re-replicates every copy) and, without care, loop.
           Inter-AS multicast VPN needs P2MP machinery out of scope
           here. *)
        | Vrf.Via_neighbor _ -> false
      in
      if replicate && not (Prefix.equal prefix multicast_range) then begin
        Network.note_fork t.net;
        pe_forward_to t pe (Packet.copy packet) nh
      end);
  (* Only the replicas travel; the original has served its purpose. *)
  Network.note_consume t.net packet;
  Packet.release packet

let pe_ingress t pe v ~from packet =
  let hdr = Packet.visible_header packet in
  if Mvpn_net.Ipv4.is_multicast hdr.Packet.dst then
    pe_multicast t pe v ~from packet
  else
    match Vrf.lookup v hdr.Packet.dst with
    | None -> Network.drop_packet ~node:pe ~packet t.net "vrf-no-route"
    | Some nh -> pe_forward_to t pe packet nh

let install_pe_interceptor t pe =
  let own_loopback =
    match Backbone.pop_of_node t.backbone pe with
    | Some pop -> Some (Prefix.network (Backbone.loopback t.backbone ~pop))
    | None -> None
  in
  Dataplane.set_interceptor (Network.dataplane t.net) pe (fun ~from packet ->
      if
        Packet.has_outer packet
        && from <> None
        && not (Packet.labelled packet)
        &&
        let o = Packet.outer_header packet in
        o.Packet.proto = Mvpn_net.Flow.Gre
        && (match own_loopback with
            | Some lo -> Mvpn_net.Ipv4.equal o.Packet.dst lo
            | None -> false)
      then begin
        (* Terminate a degraded-mode tunnel: strip the outer header,
           restore the VPN label from the GRE key and let the normal
           pipeline pop it toward the CE. *)
        let o = Packet.outer_header packet in
        let vpn_label = o.Packet.src_port in
        let outer_ttl = o.Packet.ttl in
        Packet.decapsulate packet;
        Packet.push_label packet ~label:vpn_label
          ~exp:
            (if t.map_dscp_to_exp then
               Dscp.to_exp (Packet.visible_dscp packet)
             else 0)
          ~ttl:outer_ttl;
        Dataplane.Continue
      end
      else
        match from with
        | Some prev when not (Packet.labelled packet) ->
          (match Hashtbl.find_opt t.ce_vrf prev with
           | Some v when Vrf.pe v = pe ->
             pe_ingress t pe v ~from packet;
             Dataplane.Consumed
           | Some _ | None -> Dataplane.Continue)
        | Some _ | None -> Dataplane.Continue)

(* --- deployment --------------------------------------------------------- *)

let signal_te_mesh t =
  match t.te with
  | None -> ()
  | Some te ->
    let pe_nodes =
      List.sort_uniq Int.compare
        (Hashtbl.fold (fun (pe, _) _ acc -> pe :: acc) t.vrf_table [])
    in
    List.iter
      (fun src ->
         List.iter
           (fun dst ->
              if src <> dst
              && not (Hashtbl.mem t.pe_tunnels (pe_key src dst)) then
                match
                  Rsvp_te.signal te ~src ~dst ~bandwidth:t.te_bandwidth
                with
                | Ok tn ->
                  Hashtbl.replace t.pe_tunnels (pe_key src dst) tn.Rsvp_te.id;
                  t.tunnels_gen <- t.tunnels_gen + 1
                | Error _ -> ())
           pe_nodes)
      pe_nodes

let deploy ?(mechanism = Membership.Directory) ?(session_mode = Mpbgp.Full_mesh)
    ?(use_te = false) ?(te_bandwidth = 1e6) ?(map_dscp_to_exp = true)
    ?(domain = fun _ -> true) ~net ~backbone ~sites () =
  let topo = Network.topology net in
  let membership =
    Membership.create ~mechanism ~pe_count:(Backbone.pop_count backbone) ()
  in
  let ospf = Ospf.create ~members:domain topo in
  Array.iteri
    (fun pop node -> Ospf.attach_prefix ospf node (Backbone.loopback backbone ~pop))
    (Backbone.pops backbone);
  ignore (Ospf.converge ospf);
  let fecs =
    Array.to_list
      (Array.mapi
         (fun pop node -> (Backbone.loopback backbone ~pop, node))
         (Backbone.pops backbone))
  in
  let usable (l : Topology.link) =
    l.Topology.up && domain l.Topology.src && domain l.Topology.dst
  in
  let ldp = Ldp.distribute ~usable topo (Network.plane net) ~fecs in
  let mpbgp = Mpbgp.create ~mode:session_mode () in
  Array.iter (fun node -> Mpbgp.add_pe mpbgp node) (Backbone.pops backbone);
  let te = if use_te then Some (Rsvp_te.create topo (Network.plane net)) else None in
  let t =
    { net; backbone; membership; ospf; ldp; mpbgp; te; te_bandwidth;
      vrf_table = Hashtbl.create 16; ce_vrf = Hashtbl.create 16;
      site_state = Hashtbl.create 16; pe_tunnels = Hashtbl.create 16;
      pe_next_hop = Hashtbl.create 64;
      external_labels = Hashtbl.create 16; map_dscp_to_exp; domain;
      ip_fallback = false; fallback_active = Hashtbl.create 8;
      transport_memo = Hashtbl.create 64; tunnels_gen = 0;
      touches = 0 }
  in
  refresh_fibs t;
  refresh_pe_next_hops t;
  List.iter
    (fun site ->
       Membership.join membership site;
       provision_site t site;
       Hashtbl.replace t.ce_vrf site.Site.ce_node (ensure_vrf t site))
    sites;
  ignore (Mpbgp.run mpbgp);
  reimport_all t;
  signal_te_mesh t;
  Array.iter (fun node -> install_pe_interceptor t node) (Backbone.pops backbone);
  t

let add_site t site =
  Membership.join t.membership site;
  provision_site t site;
  Hashtbl.replace t.ce_vrf site.Site.ce_node (ensure_vrf t site);
  ignore (Mpbgp.run t.mpbgp);
  reimport_all t;
  signal_te_mesh t

(* --- inter-provider (Option A) borders --------------------------------- *)

let attach_vrf_neighbor t ~pe ~vpn ~neighbor =
  let key = (pe, vpn) in
  let v =
    match Hashtbl.find_opt t.vrf_table key with
    | Some v -> v
    | None ->
      let v =
        Vrf.create ~pe ~vpn ~rd:(rd_of_vpn vpn)
          ~import_rts:[rt_of_vpn vpn] ~export_rts:[rt_of_vpn vpn]
      in
      Hashtbl.replace t.vrf_table key v;
      v
  in
  Hashtbl.replace t.ce_vrf neighbor v;
  install_pe_interceptor t pe

let add_external_route t ~pe ~vpn ~prefix ~via ~site_id =
  attach_vrf_neighbor t ~pe ~vpn ~neighbor:via;
  let v =
    match Hashtbl.find_opt t.vrf_table (pe, vpn) with
    | Some v -> v
    | None -> assert false  (* attach_vrf_neighbor just created it *)
  in
  Vrf.install_via v ~prefix ~neighbor:via;
  let label =
    Label.Allocator.alloc (Plane.allocator (Network.plane t.net) pe)
  in
  Lfib.install
    (Plane.lfib (Network.plane t.net) pe)
    ~in_label:label
    { Lfib.op = Lfib.Pop_and_ip; next_hop = via };
  Hashtbl.replace t.external_labels (pe, label) ();
  Mpbgp.export_route t.mpbgp
    { Mpbgp.rd = rd_of_vpn vpn; prefix; next_hop_pe = pe; vpn_label = label;
      export_rts = [rt_of_vpn vpn]; site = site_id };
  ignore (Mpbgp.run t.mpbgp);
  reimport_all t;
  t.touches <- t.touches + 1

let remove_site t ~site_id =
  match Hashtbl.find_opt t.site_state site_id with
  | None -> false
  | Some (site, label) ->
    ignore (Membership.leave t.membership ~site_id);
    (match vrf t ~pe:site.Site.pe_node ~vpn:site.Site.vpn with
     | Some v -> ignore (Vrf.remove v site.Site.prefix)
     | None -> ());
    ignore
      (Lfib.uninstall
         (Plane.lfib (Network.plane t.net) site.Site.pe_node)
         ~in_label:label);
    ignore (Mpbgp.withdraw_site t.mpbgp ~pe:site.Site.pe_node ~site:site_id);
    Hashtbl.remove t.site_state site_id;
    Hashtbl.remove t.ce_vrf site.Site.ce_node;
    ignore (Mpbgp.run t.mpbgp);
    reimport_all t;
    t.touches <- t.touches + 1;
    true

let reconverge t =
  let rounds = Ospf.converge t.ospf in
  refresh_fibs t;
  Ldp.refresh t.ldp;
  refresh_pe_next_hops t;
  (match t.te with
   | Some te ->
     ignore (Rsvp_te.handle_link_failure te);
     ignore (Rsvp_te.reroute_down te)
   | None -> ());
  rounds

type state_metrics = {
  sites : int;
  vpns : int;
  bgp_sessions : int;
  vpnv4_routes : int;
  lfib_entries : int;
  labels_allocated : int;
  vrf_count : int;
  control_messages : int;
  provisioning_touches : int;
}

let metrics t =
  let plane = Network.plane t.net in
  { sites = Membership.site_count t.membership;
    vpns = List.length (Membership.vpn_ids t.membership);
    bgp_sessions = Mpbgp.session_count t.mpbgp;
    vpnv4_routes = Mpbgp.total_routes t.mpbgp;
    lfib_entries = Plane.total_lfib_entries plane;
    labels_allocated = Plane.total_labels_allocated plane;
    vrf_count = Hashtbl.length t.vrf_table;
    control_messages =
      Membership.messages t.membership
      + Mpbgp.messages_sent t.mpbgp
      + Ldp.messages t.ldp;
    provisioning_touches = t.touches }
