module Mpbgp = Mvpn_routing.Mpbgp
module Qos_mapping = Mvpn_core.Qos_mapping
module Prefix = Mvpn_net.Prefix

type tier = Gold | Silver | Bronze

type topology = Any_to_any | Hub_spoke | Extranet of int

type role = Hub | Spoke

type site_spec = { sid : int; pe : int; role : role }

type customer = {
  id : int;
  name : string;
  topology : topology;
  tier : tier;
  sites : site_spec list;
}

let tier_name = function
  | Gold -> "gold"
  | Silver -> "silver"
  | Bronze -> "bronze"

let topology_name = function
  | Any_to_any -> "any-to-any"
  | Hub_spoke -> "hub-spoke"
  | Extranet g -> Printf.sprintf "extranet-%d" g

let role_name = function Hub -> "hub" | Spoke -> "spoke"

let band_of_tier = function Gold -> 0 | Silver -> 1 | Bronze -> 2

let objective_of_tier tier =
  Qos_mapping.default_objective (band_of_tier tier)

let default_role topology ~sid =
  match topology with
  | Hub_spoke when sid = 0 -> Hub
  | Hub_spoke | Any_to_any | Extranet _ -> Spoke

let site_prefix ~sid =
  if sid < 0 || sid > 0xffff then
    invalid_arg (Printf.sprintf "Service.site_prefix: sid %d out of range" sid);
  Prefix.of_string_exn
    (Printf.sprintf "10.%d.%d.0/24" (sid lsr 8) (sid land 0xff))

let global_site_id ~customer ~sid =
  if customer < 1 || customer > 0x3fff then
    invalid_arg
      (Printf.sprintf "Service.global_site_id: customer %d out of range"
         customer);
  if sid < 0 || sid > 0xffff then
    invalid_arg
      (Printf.sprintf "Service.global_site_id: sid %d out of range" sid);
  (customer lsl 16) lor sid

(* 16 skips the reserved label range; a pure function of the global
   site id, so an incremental add and a from-scratch compile can never
   disagree on the label an egress PE allocated. *)
let vpn_label_of_site gsid = 16 + gsid

let site_name ~customer ~sid = Printf.sprintf "c%d-s%d" customer sid

module Pool = struct
  (* RT value layout, all disjoint by construction: customer RTs use
     4c / 4c+1 / 4c+2 (any / hub / spoke) and extranet groups use
     4g+3 — memoization makes every allocator idempotent, and the
     tables double as the allocation ledger. *)
  type t = {
    asn : int;
    rds : (int, Mpbgp.rd) Hashtbl.t;
    rts : (int, Mpbgp.rt) Hashtbl.t;
  }

  let create ?(asn = 65000) () =
    { asn; rds = Hashtbl.create 64; rts = Hashtbl.create 64 }

  let asn t = t.asn

  let rd t ~customer =
    match Hashtbl.find_opt t.rds customer with
    | Some rd -> rd
    | None ->
      let rd = { Mpbgp.rd_asn = t.asn; rd_assigned = customer } in
      Hashtbl.replace t.rds customer rd;
      rd

  let rt_value t v =
    match Hashtbl.find_opt t.rts v with
    | Some rt -> rt
    | None ->
      let rt = { Mpbgp.rt_asn = t.asn; rt_value = v } in
      Hashtbl.replace t.rts v rt;
      rt

  let rt_any t ~customer = rt_value t (4 * customer)
  let rt_hub t ~customer = rt_value t ((4 * customer) + 1)
  let rt_spoke t ~customer = rt_value t ((4 * customer) + 2)
  let rt_extranet t ~group = rt_value t ((4 * group) + 3)

  let rds_allocated t = Hashtbl.length t.rds
  let rts_allocated t = Hashtbl.length t.rts
end

let export_rts pool ~topology ~customer ~role =
  match (topology, role) with
  | Any_to_any, _ -> [Pool.rt_any pool ~customer]
  | Hub_spoke, Hub -> [Pool.rt_hub pool ~customer]
  | Hub_spoke, Spoke -> [Pool.rt_spoke pool ~customer]
  | Extranet group, _ ->
    [Pool.rt_any pool ~customer; Pool.rt_extranet pool ~group]

let import_rts pool ~topology ~customer ~role =
  match (topology, role) with
  | Any_to_any, _ -> [Pool.rt_any pool ~customer]
  | Hub_spoke, Hub -> [Pool.rt_spoke pool ~customer]
  | Hub_spoke, Spoke -> [Pool.rt_hub pool ~customer]
  | Extranet group, _ ->
    [Pool.rt_any pool ~customer; Pool.rt_extranet pool ~group]
