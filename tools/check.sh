#!/bin/sh
# Repository gate: everything must build (libraries, binaries, benches,
# examples) and the full test suite must pass. lib/telemetry is built
# with warnings as errors (see lib/telemetry/dune).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== E0 bench smoke (forwarding race + telemetry dump)"
dune exec bench/main.exe -- --only E0 > /dev/null
./_build/default/tools/json_lint.exe --require-schema < BENCH_telemetry.json
for g in e0.rate.cached_pps e0.rate.uncached_pps; do
  grep -q "\"$g\"" BENCH_telemetry.json || {
    echo "missing gauge $g in BENCH_telemetry.json" >&2
    exit 1
  }
done

echo "== E6 bench smoke (SLA conformance + event log)"
dune exec bench/main.exe -- --only E6 > /dev/null
./_build/default/tools/json_lint.exe --require-schema < BENCH_telemetry.json
grep -q '"e6c\.slo\.vpn' BENCH_telemetry.json || {
  echo "no per-(vpn, band) conformance gauges after the E6 smoke" >&2
  exit 1
}
grep -q '"kind":"slo_' BENCH_telemetry.json || {
  echo "no slo events in the event log after the E6 smoke" >&2
  exit 1
}
# Accounting gauges must only name known bands (0..3).
if grep -Eo '"acct\.vpn[0-9]+\.band[0-9]+' BENCH_telemetry.json \
   | grep -Ev 'band[0-3]$' | grep -q .; then
  echo "unknown-band accounting gauge in BENCH_telemetry.json" >&2
  exit 1
fi

echo "== mvpn slo --json well-formed"
slo_json=$(dune exec bin/mvpn.exe -- slo --json --duration 5) || {
  echo "mvpn slo reports out of budget on a healthy run" >&2
  exit 1
}
printf '%s' "$slo_json" | ./_build/default/tools/json_lint.exe --require-schema
printf '%s' "$slo_json" | grep -q '"objectives":\[{"vpn":' || {
  echo "no slo records in mvpn slo --json" >&2
  exit 1
}
printf '%s' "$slo_json" | grep -q '"events":\[{"seq":' || {
  echo "empty event log in mvpn slo --json" >&2
  exit 1
}

echo "== E15 bench smoke (chaos: FRR on vs off, resilience gauges)"
dune exec bench/main.exe -- --only E15 > /dev/null
./_build/default/tools/json_lint.exe --require-schema < BENCH_telemetry.json
for g in e15.frr.lost e15.nofrr.lost e15.frr_gain_packets \
         e15.frr.resilience.frr.switched resilience.chaos.faults; do
  grep -q "\"$g\"" BENCH_telemetry.json || {
    echo "missing resilience metric $g in BENCH_telemetry.json" >&2
    exit 1
  }
done

echo "== mvpn chaos --json deterministic and well-formed"
chaos_a=$(dune exec bin/mvpn.exe -- chaos --seed 42 --duration 10 --json)
chaos_b=$(dune exec bin/mvpn.exe -- chaos --seed 42 --duration 10 --json)
printf '%s' "$chaos_a" | ./_build/default/tools/json_lint.exe --require-schema
[ "$chaos_a" = "$chaos_b" ] || {
  echo "mvpn chaos --seed 42 --json differs between two runs" >&2
  exit 1
}
printf '%s' "$chaos_a" | grep -q '"plan":\[{"kind":' || {
  echo "no fault plan in mvpn chaos --json" >&2
  exit 1
}
printf '%s' "$chaos_a" | grep -q '"resilience.chaos.faults":12' || {
  echo "chaos fault counter missing or wrong in mvpn chaos --json" >&2
  exit 1
}

echo "== mvpn stats --json well-formed"
stats_json=$(dune exec bin/mvpn.exe -- stats --json --duration 2)
printf '%s' "$stats_json" | ./_build/default/tools/json_lint.exe --require-schema
for c in fib.cache.hit fib.cache.miss ftn.cache.hit ftn.cache.miss; do
  printf '%s' "$stats_json" | grep -q "\"$c\"" || {
    echo "missing counter $c in mvpn stats --json" >&2
    exit 1
  }
done

echo "== json_lint rejects non-finite numbers"
for bad in '{"x":inf}' '{"x":-inf}' '{"x":nan}' '{"x":Infinity}'; do
  if printf '%s' "$bad" | ./_build/default/tools/json_lint.exe 2>/dev/null
  then
    echo "json_lint accepted non-finite JSON: $bad" >&2
    exit 1
  fi
done

echo "== json_lint --require-schema rejects unversioned dumps"
for bad in '{"x":1}' '[1,2]' '{"schema":"1"}'; do
  if printf '%s' "$bad" \
     | ./_build/default/tools/json_lint.exe --require-schema 2>/dev/null
  then
    echo "json_lint --require-schema accepted: $bad" >&2
    exit 1
  fi
done

echo "== E16 bench smoke (parallel runner rates + speedups)"
dune exec bench/main.exe -- --only E16 > /dev/null
./_build/default/tools/json_lint.exe --require-schema < BENCH_telemetry.json
for g in e16.rate.seq_pps e16.rate.seq_heap_pps e16.rate.seq_calendar_pps \
         e16.rate.k2_pps e16.rate.k4_pps \
         e16.rate.k8_pps e16.speedup.k2 e16.speedup.k4 e16.speedup.k8; do
  grep -q "\"$g\"" BENCH_telemetry.json || {
    echo "missing parallel-runner gauge $g in BENCH_telemetry.json" >&2
    exit 1
  }
done

echo "== flat-packet allocation gate (sim.gc.minor_words_per_event <= 24)"
grep -q '"sim\.gc\.minor_words_per_event"' BENCH_telemetry.json || {
  echo "missing sim.gc.minor_words_per_event gauge in BENCH_telemetry.json" >&2
  exit 1
}
wpe=$(grep -o '"sim\.gc\.minor_words_per_event":[0-9.eE+-]*' \
  BENCH_telemetry.json | cut -d: -f2)
awk -v w="$wpe" 'BEGIN { exit !(w+0 > 0 && w+0 <= 24) }' || {
  echo "minor words/event out of budget: $wpe (gate: > 0 and <= 24)" >&2
  exit 1
}

echo "== flat-packet speed gate (seq_pps vs the PR 6 baseline)"
# PR 6 seq-calendar baseline measured on this container: 155694 pps.
# The flat-packet PR targets 2x; observed steady state is ~1.35x
# (208-227k pps — the residual cost is event dispatch, not allocation;
# see EXPERIMENTS.md E16). Gated at 1.15x so real regressions fail
# while single-core scheduling noise (~±10%) does not.
seq_pps=$(grep -o '"e16\.rate\.seq_pps":[0-9.eE+-]*' \
  BENCH_telemetry.json | cut -d: -f2)
awk -v s="$seq_pps" 'BEGIN { exit !(s+0 >= 1.15 * 155694) }' || {
  echo "e16.rate.seq_pps regressed: $seq_pps < 1.15x the PR 6 baseline" >&2
  exit 1
}

echo "== Packet.pp smoke (label stack rendering)"
./_build/default/tools/pp_smoke.exe > /dev/null

echo "== calendar queue at least matches the heap (same-process race)"
heap_pps=$(grep -o '"e16\.rate\.seq_heap_pps":[0-9.eE+-]*' \
  BENCH_telemetry.json | cut -d: -f2)
cal_pps=$(grep -o '"e16\.rate\.seq_calendar_pps":[0-9.eE+-]*' \
  BENCH_telemetry.json | cut -d: -f2)
awk -v h="$heap_pps" -v c="$cal_pps" 'BEGIN { exit !(c+0 >= h+0) }' || {
  echo "calendar backend slower than heap: $cal_pps < $heap_pps pps" >&2
  exit 1
}

echo "== sampler overhead gate (seq_sampler_pps >= 0.95x seq_pps)"
sam_pps=$(grep -o '"e16\.rate\.seq_sampler_pps":[0-9.eE+-]*' \
  BENCH_telemetry.json | cut -d: -f2)
awk -v s="$seq_pps" -v t="$sam_pps" 'BEGIN { exit !(t+0 >= 0.95 * s) }' || {
  echo "timeline sampler overhead out of budget:" \
       "$sam_pps < 0.95 x $seq_pps pps" >&2
  exit 1
}

echo "== dispatch-cost ledger published (sim.profile.* gauges)"
for g in sim.profile.pop_s sim.profile.handler_s sim.profile.flush_s \
         sim.profile.events sim.profile.kind.port.tx \
         sim.profile.kind.port.propagate sim.profile.kind.traffic.src; do
  grep -q "\"$g\"" BENCH_telemetry.json || {
    echo "missing profiler gauge $g in BENCH_telemetry.json" >&2
    exit 1
  }
done
prof_ev=$(grep -o '"sim\.profile\.events":[0-9.eE+-]*' \
  BENCH_telemetry.json | cut -d: -f2)
awk -v e="$prof_ev" 'BEGIN { exit !(e+0 > 0) }' || {
  echo "sim.profile.events is zero — the profiled drain never ran" >&2
  exit 1
}

echo "== mvpn timeline --json deterministic, shard-invariant, well-formed"
tl_a=$(dune exec bin/mvpn.exe -- timeline --duration 5 --json)
tl_b=$(dune exec bin/mvpn.exe -- timeline --duration 5 --json)
tl_k4=$(dune exec bin/mvpn.exe -- timeline --duration 5 --shards 4 --json)
printf '%s' "$tl_a" | ./_build/default/tools/json_lint.exe --require-schema
[ "$tl_a" = "$tl_b" ] || {
  echo "mvpn timeline --json differs between two runs" >&2
  exit 1
}
[ "$tl_a" = "$tl_k4" ] || {
  echo "mvpn timeline --json differs between --shards 1 and --shards 4" >&2
  exit 1
}
printf '%s' "$tl_a" | grep -q '"ts\.link\.0\.util"' || {
  echo "no link-utilization series in mvpn timeline --json" >&2
  exit 1
}
printf '%s' "$tl_a" | grep -q '"ts\.slo\.v1\.b0\.burn"' || {
  echo "no derived burn series in mvpn timeline --json" >&2
  exit 1
}

echo "== mvpn par --json deterministic and well-formed"
par_a=$(dune exec bin/mvpn.exe -- par --shards 4 --duration 2 --json)
par_b=$(dune exec bin/mvpn.exe -- par --shards 4 --duration 2 --json)
printf '%s' "$par_a" | ./_build/default/tools/json_lint.exe --require-schema
[ "$par_a" = "$par_b" ] || {
  echo "mvpn par --shards 4 --json differs between two runs" >&2
  exit 1
}

echo "== mvpn par totals match mvpn stats (same seed/scenario)"
par_counters=$(printf '%s' "$par_a" \
  | grep -o '"counters":{[^}]*}' | head -n 1)
stats_counters=$(printf '%s' "$stats_json" \
  | grep -o '"counters":{[^}]*}' | head -n 1)
[ -n "$par_counters" ] && [ "$par_counters" = "$stats_counters" ] || {
  echo "mvpn par counters diverge from the sequential mvpn stats run" >&2
  exit 1
}

echo "== E18 bench smoke (audited soak gauges)"
dune exec bench/main.exe -- --only E18 > /dev/null
./_build/default/tools/json_lint.exe --require-schema < BENCH_telemetry.json
for g in e18.events e18.rate.base_pps e18.rate.audit_pps e18.rate.chaos_pps \
         e18.overhead.audit e18.audit.ticks e18.audit.violations \
         audit.ticks audit.check.conservation audit.check.loops \
         audit.check.frr audit.check.slo audit.check.queues \
         audit.check.heap audit.check.pool; do
  grep -q "\"$g\"" BENCH_telemetry.json || {
    echo "missing audited-soak metric $g in BENCH_telemetry.json" >&2
    exit 1
  }
done

echo "== audited soak is big enough (e18.events >= 1e6)"
e18_ev=$(grep -o '"e18\.events":[0-9.eE+-]*' BENCH_telemetry.json \
  | cut -d: -f2)
awk -v e="$e18_ev" 'BEGIN { exit !(e+0 >= 1000000) }' || {
  echo "audited soak too small: $e18_ev events < 1e6" >&2
  exit 1
}

echo "== audit soundness gate (e18.audit.violations == 0)"
e18_viol=$(grep -o '"e18\.audit\.violations":[0-9.eE+-]*' \
  BENCH_telemetry.json | cut -d: -f2)
awk -v v="$e18_viol" 'BEGIN { exit !(v+0 == 0) }' || {
  echo "invariant violations in the audited soak: $e18_viol" >&2
  exit 1
}

echo "== audit overhead gate (e18.overhead.audit >= 0.95)"
# CPU-seconds ratio of the unaudited vs audited sequential soak, best
# of two interleaved runs each — per-tick checks cost ~150us, so the
# true ratio sits around 0.98.
e18_oh=$(grep -o '"e18\.overhead\.audit":[0-9.eE+-]*' BENCH_telemetry.json \
  | cut -d: -f2)
awk -v o="$e18_oh" 'BEGIN { exit !(o+0 >= 0.95) }' || {
  echo "invariant auditor overhead out of budget: $e18_oh < 0.95" >&2
  exit 1
}

echo "== mvpn soak --json deterministic, shard-invariant, well-formed"
soak_a=$(dune exec bin/mvpn.exe -- soak --hours 0.002 --chaos 7 --json) || {
  echo "mvpn soak reported invariant violations on a healthy run" >&2
  exit 1
}
soak_b=$(dune exec bin/mvpn.exe -- soak --hours 0.002 --chaos 7 --json)
soak_k4=$(dune exec bin/mvpn.exe -- soak --hours 0.002 --chaos 7 \
  --shards 4 --json) || {
  echo "mvpn soak --shards 4 reported invariant violations" >&2
  exit 1
}
printf '%s' "$soak_a" | ./_build/default/tools/json_lint.exe --require-schema
[ "$soak_a" = "$soak_b" ] || {
  echo "mvpn soak --json differs between two runs" >&2
  exit 1
}
[ "$soak_a" = "$soak_k4" ] || {
  echo "mvpn soak --json differs between --shards 1 and --shards 4" >&2
  exit 1
}
printf '%s' "$soak_a" | grep -q '"chaos":{"seed":7,"plan":\[{"kind":' || {
  echo "no replayable chaos plan in mvpn soak --json" >&2
  exit 1
}
printf '%s' "$soak_a" \
  | grep -q '"audit":{"interval":[0-9.eE+-]*,"ticks":[1-9]' || {
  echo "auditor never ticked in mvpn soak --json" >&2
  exit 1
}
printf '%s' "$soak_a" \
  | grep -q '"audit":{"interval":[0-9.eE+-]*,"ticks":[0-9]*,"violations":0}' \
  || {
  echo "audit violations in mvpn soak --json" >&2
  exit 1
}

echo "== mvpn provision --json deterministic, oracle-validated, well-formed"
prov_a=$(dune exec bin/mvpn.exe -- provision --customers 300 --churn 50 \
  --json) || {
  echo "mvpn provision churn diverged from the from-scratch oracle" >&2
  exit 1
}
prov_b=$(dune exec bin/mvpn.exe -- provision --customers 300 --churn 50 \
  --json)
printf '%s' "$prov_a" | ./_build/default/tools/json_lint.exe --require-schema
[ "$prov_a" = "$prov_b" ] || {
  echo "mvpn provision --json differs between two runs" >&2
  exit 1
}
printf '%s' "$prov_a" | grep -q '"oracle_match":true' || {
  echo "incremental provisioning does not match the oracle" >&2
  exit 1
}
printf '%s' "$prov_a" | grep -q '"per_pe":\[{"pe":0,' || {
  echo "no per-PE state table in mvpn provision --json" >&2
  exit 1
}

echo "== E19 bench smoke (provisioning at scale: 10k VPNs, C1)"
dune exec bench/main.exe -- --only E19 > /dev/null
./_build/default/tools/json_lint.exe --require-schema < BENCH_telemetry.json
for g in e19.sites e19.routes e19.vrfs e19.state.routes_per_pe \
         e19.state.growth e19.mem.bytes_per_route e19.converge.p99_ms \
         e19.converge.full_ms e19.converge.speedup; do
  grep -q "\"$g\"" BENCH_telemetry.json || {
    echo "missing provisioning gauge $g in BENCH_telemetry.json" >&2
    exit 1
  }
done

echo "== E19 scale gate (e19.routes >= 1e5)"
e19_routes=$(grep -o '"e19\.routes":[0-9.eE+-]*' BENCH_telemetry.json \
  | cut -d: -f2)
awk -v r="$e19_routes" 'BEGIN { exit !(r+0 >= 100000) }' || {
  echo "E19 too small: $e19_routes routes < 1e5" >&2
  exit 1
}

echo "== incremental convergence gate (e19.converge.speedup >= 10)"
# A single delta at 10k VPNs must converge at least 10x faster (p99)
# than a from-scratch recompile of the same portfolio; measured
# headroom is ~50x, gated at 10x to absorb scheduling noise.
e19_speedup=$(grep -o '"e19\.converge\.speedup":[0-9.eE+-]*' \
  BENCH_telemetry.json | cut -d: -f2)
awk -v s="$e19_speedup" 'BEGIN { exit !(s+0 >= 10) }' || {
  echo "incremental convergence too slow: ${e19_speedup}x < 10x" >&2
  exit 1
}

echo "== exit-code contract: slo/soak report through status codes"
# 0 = clean, 1 = out of budget / invariants violated, 124 = usage error
# (cmdliner). Pinned here so scripts and CI can rely on them.
if dune exec bin/mvpn.exe -- slo --chaos 2 --duration 20 \
   > /dev/null 2>&1; then
  echo "mvpn slo --chaos 2 should exit 1 (out of budget) but exited 0" >&2
  exit 1
else
  rc=$?
  [ "$rc" -eq 1 ] || {
    echo "mvpn slo --chaos 2 exited $rc, want 1" >&2
    exit 1
  }
fi
for bad_cmd in "slo --bogus-flag" "soak --hours -1" "soak --hours nan" \
               "soak --hours 0.001 --audit-interval 0" \
               "provision --customers 0" "provision --bogus-flag" \
               "provision --pops 99" "provision --churn -1"; do
  if dune exec bin/mvpn.exe -- $bad_cmd > /dev/null 2>&1; then
    echo "mvpn $bad_cmd should fail with a usage error but exited 0" >&2
    exit 1
  else
    rc=$?
    [ "$rc" -eq 124 ] || {
      echo "mvpn $bad_cmd exited $rc, want 124 (cmdliner usage error)" >&2
      exit 1
    }
  fi
done

echo "ok"
