module Prefix = Mvpn_net.Prefix

type rd = { rd_asn : int; rd_assigned : int }

type rt = { rt_asn : int; rt_value : int }

let rd_to_string rd = Printf.sprintf "%d:%d" rd.rd_asn rd.rd_assigned

let rt_to_string rt = Printf.sprintf "%d:%d" rt.rt_asn rt.rt_value

let rt_equal a b = a.rt_asn = b.rt_asn && a.rt_value = b.rt_value

type vpnv4_route = {
  rd : rd;
  prefix : Mvpn_net.Prefix.t;
  next_hop_pe : int;
  vpn_label : int;
  export_rts : rt list;
  site : int;
}

type session_mode = Full_mesh | Route_reflector of int

type key = rd * int * int * int  (* rd, network, length, pe *)

let key_of (r : vpnv4_route) : key =
  ( r.rd,
    Mvpn_net.Ipv4.to_int (Prefix.network r.prefix),
    Prefix.length r.prefix,
    r.next_hop_pe )

(* One route record lives once, in the interned store; every table that
   holds it — the owner's exports, every remote PE's Adj-RIB-In, any
   VRF route group built on top — keeps only its integer id. At 100k+
   routes times a dozen importing PEs this is the difference between a
   dozen copies of every announcement and one. *)

type pe_state = {
  pe : int;
  exported : (key, int) Hashtbl.t;  (* logical announcement -> route id *)
  received : (int, unit) Hashtbl.t;  (* interned ids, store shared *)
}

(* What a dirty route needs at the next {!run}: [New] has never been
   propagated (deliver everywhere, count per table that gains it),
   [Update] changed content in place (everyone already has the id, count
   one UPDATE per session the mode implies), [Retract] must leave every
   Adj-RIB-In it reached (count per removal). *)
type pending = New | Update | Retract

type t = {
  mode : session_mode;
  mutable pes : pe_state list;  (* insertion order preserved via append *)
  by_pe : (int, pe_state) Hashtbl.t;
  mutable messages : int;
  mutable store : vpnv4_route option array;  (* id -> interned route *)
  mutable next_id : int;
  pending : (int, pending) Hashtbl.t;  (* dirty journal since last run *)
  mutable fresh : int list;  (* PEs added since last run, to back-fill *)
}

let create ?(mode = Full_mesh) () =
  { mode; pes = []; by_pe = Hashtbl.create 16; messages = 0;
    store = Array.make 64 None; next_id = 0;
    pending = Hashtbl.create 64; fresh = [] }

let find_pe t pe = Hashtbl.find_opt t.by_pe pe

let add_pe t pe =
  if find_pe t pe <> None then
    invalid_arg (Printf.sprintf "Mpbgp.add_pe: duplicate PE %d" pe);
  let s = { pe; exported = Hashtbl.create 32; received = Hashtbl.create 64 } in
  t.pes <- t.pes @ [s];
  Hashtbl.replace t.by_pe pe s;
  t.fresh <- pe :: t.fresh

let pe_count t = List.length t.pes

let session_count t =
  let n = pe_count t in
  match t.mode with
  | Full_mesh -> n * (n - 1) / 2
  | Route_reflector _ -> max 0 (n - 1)

let get_pe t pe =
  match find_pe t pe with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Mpbgp: unknown PE %d" pe)

let alloc t r =
  if t.next_id = Array.length t.store then begin
    let bigger = Array.make (2 * Array.length t.store) None in
    Array.blit t.store 0 bigger 0 t.next_id;
    t.store <- bigger
  end;
  let id = t.next_id in
  t.store.(id) <- Some r;
  t.next_id <- id + 1;
  id

let export t route =
  let s = get_pe t route.next_hop_pe in
  let k = key_of route in
  match Hashtbl.find_opt s.exported k with
  | Some id ->
    (match t.store.(id) with
     | Some old when old = route -> id
     | old ->
       (* Same announcement, new content: patch the shared record in
          place. Only label/RT changes are UPDATE-worthy on the wire;
          diagnostic fields ride along silently. *)
       let noisy =
         match old with
         | Some o ->
           o.vpn_label <> route.vpn_label || o.export_rts <> route.export_rts
         | None -> true
       in
       t.store.(id) <- Some route;
       if noisy && not (Hashtbl.mem t.pending id) then
         Hashtbl.replace t.pending id Update;
       id)
  | None ->
    let id = alloc t route in
    Hashtbl.replace s.exported k id;
    Hashtbl.replace t.pending id New;
    id

let export_route t route = ignore (export t route)

let withdraw_site t ~pe ~site =
  let s = get_pe t pe in
  let victims =
    Hashtbl.fold
      (fun k id acc ->
         match t.store.(id) with
         | Some r when r.site = site -> (k, id) :: acc
         | _ -> acc)
      s.exported []
  in
  List.iter
    (fun (k, id) ->
       Hashtbl.remove s.exported k;
       match Hashtbl.find_opt t.pending id with
       | Some New ->
         (* Announced and retracted between runs: nobody ever saw it. *)
         Hashtbl.remove t.pending id;
         t.store.(id) <- None
       | _ -> Hashtbl.replace t.pending id Retract)
    victims;
  List.length victims

(* Who receives an announcement from [src] under the session mode:
   full mesh sends to every other PE; with a route reflector, clients
   send one copy to the RR which reflects to the remaining clients. *)
let targets t src f =
  match t.mode with
  | Full_mesh -> List.iter (fun d -> if d.pe <> src then f d) t.pes
  | Route_reflector rr ->
    if src = rr then List.iter (fun d -> if d.pe <> rr then f d) t.pes
    else begin
      f (get_pe t rr);
      List.iter (fun d -> if d.pe <> src && d.pe <> rr then f d) t.pes
    end

let run t =
  let sent = ref 0 in
  let deliver ~changed dst id =
    if Hashtbl.mem dst.received id then begin
      if changed then incr sent
    end else begin
      Hashtbl.replace dst.received id ();
      incr sent
    end
  in
  (* Late-joining PEs first: back-fill the full current table, one
     UPDATE per route the newcomer gains. Routes already in the journal
     are skipped — the journal pass below reaches the newcomer too. *)
  List.iter
    (fun pe ->
       List.iter
         (fun src ->
            if src.pe <> pe then
              Hashtbl.iter
                (fun _ id ->
                   if not (Hashtbl.mem t.pending id) then
                     targets t src.pe (fun d ->
                         if d.pe = pe then deliver ~changed:false d id))
                src.exported)
         t.pes)
    t.fresh;
  t.fresh <- [];
  let entries = Hashtbl.fold (fun id p acc -> (id, p) :: acc) t.pending [] in
  Hashtbl.reset t.pending;
  List.iter
    (fun (id, p) ->
       match p with
       | Retract ->
         List.iter
           (fun d ->
              if Hashtbl.mem d.received id then begin
                Hashtbl.remove d.received id;
                incr sent
              end)
           t.pes;
         t.store.(id) <- None
       | New | Update ->
         (match t.store.(id) with
          | None -> ()
          | Some r ->
            targets t r.next_hop_pe (fun d ->
                deliver ~changed:(p = Update) d id)))
    entries;
  t.messages <- t.messages + !sent;
  !sent

let find_route t id =
  if id < 0 || id >= t.next_id then None else t.store.(id)

let iter_exported t f =
  List.iter
    (fun s ->
       Hashtbl.iter
         (fun _ id ->
            match t.store.(id) with Some r -> f id r | None -> ())
         s.exported)
    t.pes

let routes_at t pe =
  let s = get_pe t pe in
  let own =
    Hashtbl.fold
      (fun _ id acc ->
         match t.store.(id) with Some r -> r :: acc | None -> acc)
      s.exported []
  in
  Hashtbl.fold
    (fun id () acc ->
       match t.store.(id) with Some r -> r :: acc | None -> acc)
    s.received own

let rts_intersect a b =
  List.exists (fun x -> List.exists (rt_equal x) b) a

let import t ~pe ~import_rts =
  let s = get_pe t pe in
  Hashtbl.fold
    (fun id () acc ->
       match t.store.(id) with
       | Some r when rts_intersect r.export_rts import_rts -> r :: acc
       | _ -> acc)
    s.received []

let import_ids t ~pe ~import_rts =
  let s = get_pe t pe in
  Hashtbl.fold
    (fun id () acc ->
       match t.store.(id) with
       | Some r when rts_intersect r.export_rts import_rts -> id :: acc
       | _ -> acc)
    s.received []

let total_routes t =
  List.fold_left (fun acc s -> acc + Hashtbl.length s.exported) 0 t.pes

let store_size t = t.next_id

let messages_sent t = t.messages
