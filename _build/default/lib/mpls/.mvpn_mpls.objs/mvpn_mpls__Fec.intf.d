lib/mpls/fec.mli: Format Mvpn_net
