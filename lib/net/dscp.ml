type t = int

type phb =
  | Default
  | Ef
  | Af of int * int
  | Cs of int

let of_int_exn v =
  if v < 0 || v > 63 then
    invalid_arg (Printf.sprintf "Dscp.of_int_exn: %d out of range" v);
  v

let to_int d = d

let of_phb = function
  | Default -> 0
  | Ef -> 46
  | Af (cls, prec) ->
    if cls < 1 || cls > 4 || prec < 1 || prec > 3 then
      invalid_arg (Printf.sprintf "Dscp.of_phb: AF%d%d out of range" cls prec);
    (cls * 8) + (prec * 2)
  | Cs n ->
    if n < 0 || n > 7 then
      invalid_arg (Printf.sprintf "Dscp.of_phb: CS%d out of range" n);
    n * 8

let to_phb d =
  if d = 0 then Default
  else if d = 46 then Ef
  else if d land 0b111 = 0 then Cs (d lsr 3)
  else
    let cls = d lsr 3 and low = d land 0b111 in
    if cls >= 1 && cls <= 4 && low land 1 = 0 && low >= 2 && low <= 6 then
      Af (cls, low lsr 1)
    else Cs (d lsr 3)

let best_effort = 0
let ef = 46
let af cls prec = of_phb (Af (cls, prec))
let cs n = of_phb (Cs n)

(* [to_phb] materializes a PHB constructor per call; the two per-packet
   projections below compute the same answers on raw bits instead. For
   every codepoint except EF the EXP value is the class selector bits
   (Default = CS0, AF's class = its top three bits, CS trivially), so
   the whole table collapses to one test and a shift. *)
let to_exp d = if d = 46 then 5 else d lsr 3

let of_exp e =
  if e < 0 || e > 7 then
    invalid_arg (Printf.sprintf "Dscp.of_exp: %d out of range" e);
  match e with
  | 0 -> best_effort
  | 5 -> ef
  | 1 | 2 | 3 | 4 -> af e 1
  | n -> cs n

(* Only a well-formed AF codepoint carries a drop precedence; the bit
   tests mirror [to_phb]'s AF validity check (EF's low bits fail the
   even-and-in-range test, so it needs no special case). *)
let drop_precedence d =
  let cls = d lsr 3 and low = d land 0b111 in
  if cls >= 1 && cls <= 4 && low land 1 = 0 && low >= 2 && low <= 6
  then low lsr 1
  else 1

let pp ppf d =
  match to_phb d with
  | Default -> Format.pp_print_string ppf "BE"
  | Ef -> Format.pp_print_string ppf "EF"
  | Af (c, p) -> Format.fprintf ppf "AF%d%d" c p
  | Cs n -> Format.fprintf ppf "CS%d" n

let compare = Int.compare
let equal = Int.equal
