module Packet = Mvpn_net.Packet
module Ipv4 = Mvpn_net.Ipv4
module Flow = Mvpn_net.Flow

let m_encap = Mvpn_telemetry.Registry.counter "ipsec.encap"
let m_encap_bytes = Mvpn_telemetry.Registry.counter "ipsec.encap_bytes"
let m_decap = Mvpn_telemetry.Registry.counter "ipsec.decap"
let m_replay_drop = Mvpn_telemetry.Registry.counter "ipsec.replay_drop"

type t = {
  copy_tos : bool;
  cipher : Crypto.cipher;
  local : Ipv4.t;
  remote : Ipv4.t;
  out_sa : Sa.t;
  in_sa : Sa.t;
  (* ESP sequence number travelling with each in-flight packet, keyed
     by packet uid (the simulation's stand-in for the ESP header
     field). *)
  in_flight_seq : (int, int) Hashtbl.t;
  mutable sent : int;
  mutable replay_dropped : int;
}

let create ?(copy_tos = false) ~cipher ~local ~remote ~key () =
  { copy_tos; cipher; local; remote;
    out_sa = Sa.create ~spi:0x1001 ~cipher ~key;
    in_sa = Sa.create ~spi:0x1002 ~cipher ~key;
    in_flight_seq = Hashtbl.create 64; sent = 0; replay_dropped = 0 }

let copy_tos t = t.copy_tos

let cipher t = t.cipher

let encapsulate t packet =
  let payload = packet.Packet.size in
  let overhead = Esp.overhead t.cipher ~payload in
  Packet.encapsulate packet ~src:t.local ~dst:t.remote ~proto:Flow.Esp
    ~overhead ~copy_tos:t.copy_tos;
  packet.Packet.encrypted <- t.cipher <> Crypto.Null;
  let seq = Sa.next_seq t.out_sa in
  Hashtbl.replace t.in_flight_seq packet.Packet.uid seq;
  Sa.account t.out_sa ~bytes:payload;
  t.sent <- t.sent + 1;
  Mvpn_telemetry.Counter.incr m_encap;
  Mvpn_telemetry.Counter.add m_encap_bytes payload;
  Crypto.processing_delay t.cipher ~bytes:payload

let packets_sent t = t.sent

let replay_drops t = t.replay_dropped

type decap_result =
  | Decapsulated of float
  | Replayed
  | Not_ours

let decapsulate t packet =
  if not (Packet.has_outer packet) then Not_ours
  else
    let outer = Packet.outer_header packet in
    if not (Ipv4.equal outer.Packet.dst t.remote) then Not_ours
    else begin
      let seq =
        match Hashtbl.find_opt t.in_flight_seq packet.Packet.uid with
        | Some s -> s
        | None -> 1  (* unknown provenance: treat as the oldest *)
      in
      match Sa.check_replay t.in_sa seq with
      | Replay.Duplicate | Replay.Too_old ->
        t.replay_dropped <- t.replay_dropped + 1;
        Mvpn_telemetry.Counter.incr m_replay_drop;
        Replayed
      | Replay.Accepted ->
        let payload = packet.Packet.size - packet.Packet.encap_bytes in
        Packet.decapsulate packet;
        Sa.account t.in_sa ~bytes:payload;
        Mvpn_telemetry.Counter.incr m_decap;
        Decapsulated (Crypto.processing_delay t.cipher ~bytes:payload)
    end
