lib/core/qos_mapping.mli: Mvpn_net Mvpn_qos Mvpn_sim
