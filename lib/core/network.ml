module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Rng = Mvpn_sim.Rng
module Packet = Mvpn_net.Packet
module Fib = Mvpn_net.Fib
module Prefix = Mvpn_net.Prefix
module Plane = Mvpn_mpls.Plane
module Lfib = Mvpn_mpls.Lfib
module Fec = Mvpn_mpls.Fec
module Port = Mvpn_qos.Port
module Telemetry = Mvpn_telemetry

let m_drops = Telemetry.Registry.counter "net.drops"
let m_delivered = Telemetry.Registry.counter "net.delivered"

(* Per-class sojourn histograms, created on first delivery of each
   codepoint ("net.sojourn.EF", "net.sojourn.AF31", "net.sojourn.BE"). *)
let sojourn_hists : (int, Telemetry.Histogram.t) Hashtbl.t = Hashtbl.create 8

let sojourn_hist dscp =
  let key = Mvpn_net.Dscp.to_int dscp in
  match Hashtbl.find_opt sojourn_hists key with
  | Some h -> h
  | None ->
    let name = Format.asprintf "net.sojourn.%a" Mvpn_net.Dscp.pp dscp in
    let h = Telemetry.Registry.histogram ~lo:1e-6 name in
    Hashtbl.add sojourn_hists key h;
    h

type verdict = Consumed | Continue

type trace_action =
  | Trace_receive of int option
  | Trace_transmit of int
  | Trace_deliver
  | Trace_drop of string

type trace_event = {
  trace_time : float;
  trace_node : int;
  trace_uid : int;
  trace_labels : int list;
  trace_action : trace_action;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  plane : Plane.t;
  policy : Qos_mapping.policy;
  fibs : Fib.t array;
  ports : Port.t option array;  (* indexed by link id *)
  interceptors :
    (from:int option -> Packet.t -> verdict) list array;
  sinks : (Packet.t -> unit) array;
  drop_table : (string, int ref) Hashtbl.t;
  link_tx_bytes : Telemetry.Counter.t array;  (* indexed by link id *)
  mutable auto_ftn : bool;
  mutable tracer : (trace_event -> unit) option;
}

let record_hop t ~node ?packet label =
  if !Telemetry.Control.enabled then
    match packet with
    | Some (p : Packet.t) ->
      Telemetry.Hop_trace.record (Telemetry.Registry.trace ())
        ~uid:p.Packet.uid ~time:(Engine.now t.engine) ~node label
    | None -> ()

let set_tracer t tracer = t.tracer <- tracer

let labels_of packet =
  List.map (fun (s : Packet.shim) -> s.Packet.label) packet.Packet.labels

let emit t ~node ?packet action =
  match t.tracer with
  | None -> ()
  | Some f ->
    f
      { trace_time = Engine.now t.engine;
        trace_node = node;
        trace_uid =
          (match packet with Some p -> p.Packet.uid | None -> -1);
        trace_labels =
          (match packet with Some p -> labels_of p | None -> []);
        trace_action = action }

let drop ?(node = -1) ?packet t reason =
  emit t ~node ?packet (Trace_drop reason);
  Telemetry.Counter.incr m_drops;
  if !Telemetry.Control.enabled then begin
    Telemetry.Counter.incr (Telemetry.Registry.counter ("net.drop." ^ reason));
    record_hop t ~node ?packet ("drop:" ^ reason)
  end;
  match Hashtbl.find_opt t.drop_table reason with
  | Some r -> incr r
  | None -> Hashtbl.add t.drop_table reason (ref 1)

let engine t = t.engine
let topology t = t.topo
let plane t = t.plane
let policy t = t.policy

let fib t node = t.fibs.(node)

let set_auto_ftn t flag = t.auto_ftn <- flag

let set_interceptor t node f = t.interceptors.(node) <- [f]

let add_interceptor t node f =
  t.interceptors.(node) <- f :: t.interceptors.(node)

let clear_interceptor t node = t.interceptors.(node) <- []

let set_sink t node f = t.sinks.(node) <- f

let port t ~link_id =
  if link_id < 0 || link_id >= Array.length t.ports then
    invalid_arg (Printf.sprintf "Network.port: unknown link %d" link_id);
  match t.ports.(link_id) with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Network.port: unknown link %d" link_id)

let transmit t ~from ~to_ packet =
  match Topology.find_link t.topo from to_ with
  | None -> drop ~node:from ~packet t "no-link"
  | Some l ->
    (match t.ports.(l.Topology.id) with
     | Some p ->
       emit t ~node:from ~packet (Trace_transmit to_);
       Telemetry.Counter.add t.link_tx_bytes.(l.Topology.id)
         packet.Packet.size;
       record_hop t ~node:from ~packet "tx";
       Port.send p packet
     | None -> drop ~node:from ~packet t "no-link")

(* Plain IP forwarding at [node]: FIB lookup on the visible
   destination, local delivery, optional FTN label push, or relay. *)
let rec forward_ip t node packet =
  let hdr = Packet.visible_header packet in
  match Fib.lookup t.fibs.(node) hdr.Packet.dst with
  | None -> drop ~node ~packet t "no-route"
  | Some (_, route) when route.Fib.next_hop = Fib.local_delivery ->
    emit t ~node ~packet Trace_deliver;
    Telemetry.Counter.incr m_delivered;
    if !Telemetry.Control.enabled then begin
      record_hop t ~node ~packet "deliver";
      Telemetry.Histogram.observe
        (sojourn_hist (Packet.visible_dscp packet))
        (Engine.now t.engine -. packet.Packet.created_at)
    end;
    t.sinks.(node) packet
  | Some (prefix, route) ->
    if hdr.Packet.ttl <= 1 then drop ~node ~packet t "ip-ttl"
    else begin
      hdr.Packet.ttl <- hdr.Packet.ttl - 1;
      let pushed =
        t.auto_ftn
        && (match Plane.find_ftn t.plane node (Fec.Prefix_fec prefix) with
            | Some e ->
              Packet.push_label packet ~label:e.Plane.push
                ~exp:(Mvpn_net.Dscp.to_exp (Packet.visible_dscp packet))
                ~ttl:hdr.Packet.ttl;
              transmit t ~from:node ~to_:e.Plane.next_hop packet;
              true
            | None -> false)
      in
      if not pushed then transmit t ~from:node ~to_:route.Fib.next_hop packet
    end

and receive t node ~from packet =
  emit t ~node ~packet (Trace_receive from);
  record_hop t ~node ~packet "rx";
  let intercepted =
    List.exists (fun f -> f ~from packet = Consumed) t.interceptors.(node)
  in
  if not intercepted then begin
    if Packet.top_label packet <> None then
      match Lfib.step (Plane.lfib t.plane node) packet with
      | Lfib.Forward nh -> transmit t ~from:node ~to_:nh packet
      | Lfib.Ip_continue nh ->
        if nh = Lfib.local then forward_ip t node packet
        else transmit t ~from:node ~to_:nh packet
      | Lfib.No_binding _ -> drop ~node ~packet t "no-label-binding"
      | Lfib.Ttl_expired -> drop ~node ~packet t "label-ttl"
    else forward_ip t node packet
  end

let inject t node packet = receive t node ~from:None packet

let inject_after t ~delay node packet =
  Engine.schedule t.engine ~delay (fun () -> inject t node packet)

let create ?(policy = Qos_mapping.Best_effort) ?buffer_bytes ?wred
    ?(seed = 7) engine topo =
  let nodes = Topology.node_count topo in
  let master_rng = Rng.create seed in
  let links = Topology.links topo in
  let n_links = Topology.link_count topo in
  (* Ports capture the network record in their delivery callbacks, so
     the record is built first with empty port slots. *)
  let net =
    { engine; topo; plane = Plane.create ~nodes; policy;
      fibs = Array.init nodes (fun _ -> Fib.create ());
      ports = Array.make (max 1 n_links) None;
      interceptors = Array.make nodes [];
      sinks = Array.make nodes (fun _ -> ());
      drop_table = Hashtbl.create 16;
      link_tx_bytes =
        Array.init (max 1 n_links) (fun i ->
            Telemetry.Registry.counter
              (Printf.sprintf "net.link%d.tx_bytes" i));
      auto_ftn = false; tracer = None }
  in
  (* Default sinks count unclaimed deliveries. *)
  for v = 0 to nodes - 1 do
    net.sinks.(v) <- (fun packet -> drop ~node:v ~packet net "no-sink")
  done;
  List.iter
    (fun (l : Topology.link) ->
       let qdisc =
         Qos_mapping.make_qdisc ~rng:(Rng.split master_rng) ?buffer_bytes
           ?wred policy
       in
       let p =
         Port.create engine ~link:l ~qdisc
           ~classify:(Qos_mapping.classify policy)
           ~on_deliver:(fun packet ->
               receive net l.Topology.dst ~from:(Some l.Topology.src) packet)
       in
       net.ports.(l.Topology.id) <- Some p)
    links;
  net

let drop_packet t reason = drop t reason

let install_fib t node source =
  Fib.iter (fun p r -> Fib.add t.fibs.(node) p r) source

let drop_counts t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.drop_table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let drops t = Hashtbl.fold (fun _ v acc -> acc + !v) t.drop_table 0
