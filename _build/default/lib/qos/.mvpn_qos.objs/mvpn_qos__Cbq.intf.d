lib/qos/cbq.mli: Classifier Mvpn_net
