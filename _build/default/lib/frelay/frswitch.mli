(** Frame Relay switching: DLCI cross-connects with congestion
    signalling.

    DLCIs are link-local (like MPLS labels, unlike global addresses):
    each switch rewrites the DLCI per its table. When a port's queue
    passes the congestion threshold the switch sets FECN on frames
    riding through and BECN on frames of the reverse direction, and
    under pressure drops DE-marked frames first — the frame relay
    congestion contract that DiffServ's WRED drop precedences
    generalize. *)

type t

val create : ?congestion_threshold:int -> ?queue_capacity:int -> unit -> t
(** Thresholds are in queued frames: congestion signalling starts at
    [congestion_threshold] (default 16); the queue holds at most
    [queue_capacity] (default 64) frames, with DE frames refused first
    once past the threshold. *)

val cross_connect : t -> in_dlci:int -> out_dlci:int -> next_hop:int ->
  (unit, string) result
(** @raise nothing; duplicate in-DLCIs are an [Error]. *)

type forward_result =
  | Forwarded of { frame : Frame.t; next_hop : int }
  | Discarded_de  (** DE frame shed by congestion *)
  | Queue_full
  | Unknown_dlci

val submit : t -> Frame.t -> forward_result
(** Switch one frame: DLCI rewrite + congestion marking + queueing
    policy. The returned frame (on success) is the same mutable frame
    with the outgoing DLCI and possibly FECN set. *)

val drain : t -> (Frame.t * int) option
(** Serve the next queued (frame, next hop), if any. *)

val queue_depth : t -> int

val de_discards : t -> int
