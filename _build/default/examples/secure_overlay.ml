(* Secure overlay VPN (§2.3): the IPSec full-mesh baseline, its crypto
   cost, its replay protection, and the ToS-copy knob that decides
   whether the provider can still see service classes.

   Run with:  dune exec examples/secure_overlay.exe *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Flow = Mvpn_net.Flow
module Crypto = Mvpn_ipsec.Crypto
module Sla = Mvpn_qos.Sla

let run ~cipher ~copy_tos =
  let bb = Backbone.build ~pops:6 () in
  let sites =
    List.init 4 (fun i ->
        Backbone.attach_site bb ~id:(i + 1)
          ~name:(Printf.sprintf "site-%d" (i + 1)) ~vpn:1
          ~prefix:(Prefix.make (Mvpn_net.Ipv4.of_octets 10 i 0 0) 16)
          ~pop:(i * 3 mod 6))
  in
  let engine = Engine.create () in
  let net =
    Network.create
      ~policy:(Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched)
      engine (Backbone.topology bb)
  in
  let ov = Overlay.deploy ~cipher ~copy_tos ~net ~sites () in
  let registry = Traffic.registry engine in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (Traffic.sink registry))
    sites;
  let a = List.nth sites 0 and b = List.nth sites 1 in
  (* An EF voice stream and a bulk stream between the same two sites. *)
  let mk label dscp port =
    Traffic.sender registry ~net ~src_node:a.Site.ce_node
      ~flow:(Flow.make ~proto:Flow.Udp ~dst_port:port (Site.host a 1)
               (Site.host b 1))
      ~dscp ~vpn:1
      ~collector:(Traffic.collector registry label)
      ()
  in
  Traffic.cbr engine ~start:0.0 ~stop:20.0 ~rate_bps:64_000.0
    ~packet_bytes:200
    (mk "voice" Mvpn_net.Dscp.ef 5060);
  (* Enough bulk to saturate the 2 Mb/s access link (plus ESP
     overhead): the EF queue only helps if the EF marking is visible. *)
  Traffic.cbr engine ~start:0.0 ~stop:20.0 ~rate_bps:2_400_000.0
    ~packet_bytes:1500
    (mk "bulk" Mvpn_net.Dscp.best_effort 20);
  Engine.run engine;
  (Traffic.report registry "voice", Overlay.metrics ov)

let () =
  Printf.printf "== IPSec overlay: cipher cost and the ToS-copy knob ==\n\n";
  Printf.printf "Voice sharing a 2 Mb/s access with 2.4 Mb/s of bulk:\n\n";
  Printf.printf "%-8s %-9s %10s %10s %8s\n" "cipher" "tos-copy" "mean(ms)"
    "p99(ms)" "loss%";
  List.iter
    (fun (cipher, copy_tos) ->
       let voice, _ = run ~cipher ~copy_tos in
       Printf.printf "%-8s %-9b %10.2f %10.2f %8.2f\n"
         (Crypto.cipher_to_string cipher)
         copy_tos
         (voice.Sla.mean_delay *. 1e3)
         (voice.Sla.p99_delay *. 1e3)
         (voice.Sla.loss *. 100.0))
    [ (Crypto.Null, true); (Crypto.Des, false); (Crypto.Des, true);
      (Crypto.Des3, false); (Crypto.Des3, true) ];
  let _, m = run ~cipher:Crypto.Des ~copy_tos:true in
  Printf.printf
    "\nMesh for %d sites: %d virtual circuits (%d directional tunnels),\n\
     %d IKE handshake messages.\n" m.Overlay.sites m.Overlay.vcs
    m.Overlay.tunnels m.Overlay.control_messages;
  Printf.printf
    "\nWithout tos-copy the ESP outer header hides the EF marking, so\n\
     the backbone's DiffServ queues see only best effort and voice\n\
     waits behind the bulk transfer; copying the ToS byte to the outer\n\
     header restores the end-to-end service class.\n"
