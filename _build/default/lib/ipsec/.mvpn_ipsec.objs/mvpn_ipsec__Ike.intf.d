lib/ipsec/ike.mli:
