examples/te_backbone.ml: Array Backbone Float List Mvpn_core Mvpn_mpls Mvpn_sim Printf
