lib/qos/sla.ml: Float Format Hashtbl List Mvpn_net Mvpn_sim Printf
