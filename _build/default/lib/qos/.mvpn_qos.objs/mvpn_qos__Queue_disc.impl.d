lib/qos/queue_disc.ml: Array Float Mvpn_net Mvpn_sim Printf Queue
