lib/core/backbone.ml: Array List Mvpn_net Mvpn_sim Printf Site
