(** Path-vector exterior routing (BGP-like).

    A small BGP: speakers belong to autonomous systems, peer over
    configured sessions, advertise IPv4 prefixes with an AS-path, and
    apply the standard loop check (reject routes whose AS-path already
    contains the local AS) and decision process (longest prefix is the
    FIB's job; among candidates for one prefix: highest local-pref, then
    shortest AS-path, then lowest peer id). Propagation runs in
    synchronous rounds until quiescent.

    This is the "cooperative service provider boundaries" substrate of
    §5: VPNs spanning multiple carriers exchange reachability over eBGP
    while each carrier runs its own IGP. *)

type t

val create : unit -> t

val add_speaker : t -> asn:int -> int
(** Returns the new speaker's id. *)

val speaker_count : t -> int

val asn_of : t -> int -> int

val peer : t -> int -> int -> unit
(** Create a bidirectional session. Sessions between speakers of the
    same AS are iBGP (routes learned from one iBGP peer are not
    re-advertised to another — the full-mesh rule); different AS, eBGP.
    @raise Invalid_argument on unknown speakers, self-peering or a
    duplicate session. *)

val originate : t -> int -> Mvpn_net.Prefix.t -> unit
(** Speaker locally originates a prefix. *)

val run : t -> int
(** Propagate to quiescence; returns the number of rounds. *)

val messages_sent : t -> int
(** Cumulative UPDATE count across all {!run} calls. *)

type route = {
  prefix : Mvpn_net.Prefix.t;
  as_path : int list;  (** nearest AS first; [] for local routes *)
  learned_from : int;  (** speaker id; -1 for local routes *)
  local_pref : int;
}

val best_routes : t -> int -> route list
(** A speaker's selected best route per prefix, in prefix order. *)

val lookup : t -> int -> Mvpn_net.Ipv4.t -> route option
(** Longest-prefix match over a speaker's best routes. *)

val set_local_pref : t -> int -> neighbor:int -> int -> unit
(** Policy knob: local-pref applied to routes [speaker] learns from
    [neighbor]. Takes effect on routes processed in later rounds. *)
