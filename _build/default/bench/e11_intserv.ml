(* E11 — per-flow IntServ vs aggregated state (§2.2, §5).

   "A number of activities, including work on RSVP, have been directed
   at adding QoS selectivity, but... users question the size of the
   administration task."

   Reserve N flows across the backbone with IntServ and count the
   per-router state, against DiffServ's constant per-router class count
   and the MPLS VPN's per-route scale. *)

open Mvpn_core
module Topology = Mvpn_sim.Topology
module Flow = Mvpn_net.Flow
module Ipv4 = Mvpn_net.Ipv4
module Rng = Mvpn_sim.Rng
module Intserv = Mvpn_qos.Intserv

let run_intserv ~flows =
  let bb = Backbone.build ~pops:12 ~core_bandwidth:622e6 () in
  let topo = Backbone.topology bb in
  let is = Intserv.create topo in
  let pops = Backbone.pops bb in
  let rng = Rng.create 31 in
  let admitted = ref 0 in
  for i = 1 to flows do
    let src = Rng.int rng (Array.length pops) in
    let dst =
      (src + 1 + Rng.int rng (Array.length pops - 1)) mod Array.length pops
    in
    let flow =
      Flow.make ~src_port:i
        (Ipv4.of_octets 10 (i lsr 8) (i land 0xFF) 1)
        (Ipv4.of_octets 10 (i lsr 8) (i land 0xFF) 2)
    in
    match
      Intserv.reserve is ~src:pops.(src) ~dst:pops.(dst) flow
        { Intserv.rate_bps = 256e3; bucket_bytes = 8_000.0 }
    with
    | Ok _ -> incr admitted
    | Error _ -> ()
  done;
  let max_state =
    Array.fold_left
      (fun acc node -> max acc (Intserv.flow_state_at is node))
      0 pops
  in
  (!admitted, max_state, Intserv.total_flow_state is)

let run () =
  Tables.heading
    "E11: per-flow (IntServ) vs per-class (DiffServ) vs per-route (MPLS VPN) state";
  let widths = [8; 10; 16; 14; 16; 14] in
  Tables.row widths
    [ "flows"; "admitted"; "max state/router"; "total state";
      "diffserv/router"; "mvpn routes" ];
  Tables.rule widths;
  List.iter
    (fun flows ->
       let admitted, max_state, total = run_intserv ~flows in
       (* DiffServ: 4 bands per router regardless of flows. An MPLS VPN
          with one route per site scales with sites, not flows. *)
       Tables.row widths
         [ string_of_int flows; string_of_int admitted;
           string_of_int max_state; string_of_int total;
           string_of_int Qos_mapping.band_count;
           "O(sites)" ])
    [100; 1_000; 5_000; 20_000];
  Tables.note
    "\nExpected shape: IntServ router state grows linearly with flows\n\
     (thousands of classifier entries per core router at modest scale —\n\
     the 'administration task' §2.2 worries about), while DiffServ's\n\
     per-router cost is a constant 4 bands and the MPLS VPN's grows\n\
     only with provisioned routes. This is the aggregation argument\n\
     for the paper's DiffServ-over-MPLS choice."
