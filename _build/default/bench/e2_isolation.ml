(* E2 — isolation with overlapping address spaces (Fig. 1, §4.2).

   Eight VPNs share one provider network and every one of them numbers
   its sites from the same 10.k/16 plan. Probe every intra-VPN site
   pair and count where packets actually land. *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow
module Prefix = Mvpn_net.Prefix

let vpns = 8
let sites_per_vpn = 4

let run () =
  Tables.heading
    (Printf.sprintf
       "E2: %d VPNs, identical 10.k/16 address plans, full intra-VPN probe"
       vpns);
  let sc =
    Scenario.build ~pops:12 ~vpns ~sites_per_vpn
      (Scenario.Mpls_deployment
         { policy = Qos_mapping.Best_effort; use_te = false })
  in
  let net = Scenario.network sc in
  let engine = Scenario.engine sc in
  let sites = Array.to_list (Scenario.sites sc) in
  (* Sinks that check provenance. *)
  let delivered_ok = ref 0 and leaked = ref 0 in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (fun p ->
           match p.Packet.vpn with
           | Some v when v = s.Site.vpn -> incr delivered_ok
           | Some _ | None -> incr leaked))
    sites;
  let probes = ref 0 in
  List.iter
    (fun (a : Site.t) ->
       List.iter
         (fun (b : Site.t) ->
            if a.Site.vpn = b.Site.vpn && a.Site.id <> b.Site.id then begin
              incr probes;
              let p =
                Packet.make ~vpn:a.Site.vpn ~now:(Engine.now engine)
                  (Flow.make
                     (Prefix.nth_host a.Site.prefix 1)
                     (Prefix.nth_host b.Site.prefix 1))
              in
              Network.inject net a.Site.ce_node p
            end)
         sites)
    sites;
  (* Plus probes to addresses no VPN announced. *)
  let unknown = ref 0 in
  List.iter
    (fun (a : Site.t) ->
       incr unknown;
       let p =
         Packet.make ~vpn:a.Site.vpn ~now:(Engine.now engine)
           (Flow.make
              (Prefix.nth_host a.Site.prefix 1)
              (Mvpn_net.Ipv4.of_string_exn "192.0.2.1"))
       in
       Network.inject net a.Site.ce_node p)
    sites;
  Engine.run engine;
  let widths = [34; 10] in
  Tables.row widths ["measure"; "count"];
  Tables.rule widths;
  Tables.row widths ["intra-VPN probes sent"; string_of_int !probes];
  Tables.row widths ["delivered to the right VPN"; string_of_int !delivered_ok];
  Tables.row widths ["cross-VPN leaks"; string_of_int !leaked];
  Tables.row widths ["unroutable probes sent"; string_of_int !unknown];
  Tables.row widths
    [ "refused by VRF (vrf-no-route)";
      string_of_int
        (try List.assoc "vrf-no-route" (Network.drop_counts net)
         with Not_found -> 0) ];
  Tables.note
    "\nExpected shape: every intra-VPN probe delivered to its own VPN,\n\
     zero leaks despite %d VPNs sharing one routing system and one\n\
     address plan (the paper's RD/RT isolation argument), and traffic\n\
     to unannounced space refused at the ingress VRF." vpns
