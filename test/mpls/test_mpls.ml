open Mvpn_mpls
module Topology = Mvpn_sim.Topology
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow

let pfx = Prefix.of_string_exn
let ip = Ipv4.of_string_exn

(* --- Label ------------------------------------------------------------ *)

let test_label_constants () =
  Alcotest.(check bool) "implicit null reserved" true
    (Label.is_reserved Label.implicit_null);
  Alcotest.(check bool) "16 not reserved" false (Label.is_reserved 16);
  Alcotest.(check bool) "max valid" true (Label.valid Label.max_label);
  Alcotest.(check bool) "2^20 invalid" false (Label.valid (Label.max_label + 1));
  Alcotest.(check bool) "negative invalid" false (Label.valid (-1))

let test_label_allocator () =
  let a = Label.Allocator.create () in
  let l1 = Label.Allocator.alloc a in
  let l2 = Label.Allocator.alloc a in
  Alcotest.(check int) "starts at 16" Label.first_unreserved l1;
  Alcotest.(check bool) "distinct" true (l1 <> l2);
  Alcotest.(check int) "count" 2 (Label.Allocator.allocated a)

(* --- Fec -------------------------------------------------------------- *)

let test_fec_compare () =
  let a = Fec.Prefix_fec (pfx "10.0.0.0/8") in
  let b = Fec.Tunnel_fec 3 in
  let c = Fec.Vpn_fec { vpn = 1; prefix = pfx "10.0.0.0/8" } in
  let c' = Fec.Vpn_fec { vpn = 2; prefix = pfx "10.0.0.0/8" } in
  Alcotest.(check bool) "self equal" true (Fec.equal a a);
  Alcotest.(check bool) "kinds differ" false (Fec.equal a b);
  Alcotest.(check bool) "vpn id distinguishes" false (Fec.equal c c');
  Alcotest.(check bool) "ordering total" true
    (Fec.compare a b = -Fec.compare b a)

(* --- Lfib ------------------------------------------------------------- *)

let test_lfib_install_lookup () =
  let l = Lfib.create () in
  Lfib.install l ~in_label:100 { Lfib.op = Lfib.Swap 200; next_hop = 5 };
  (match Lfib.lookup l 100 with
   | Some e -> Alcotest.(check int) "next hop" 5 e.Lfib.next_hop
   | None -> Alcotest.fail "missing entry");
  Alcotest.(check bool) "unknown label" true (Lfib.lookup l 101 = None);
  Alcotest.(check int) "size" 1 (Lfib.size l);
  Alcotest.(check bool) "uninstall" true (Lfib.uninstall l ~in_label:100);
  Alcotest.(check int) "empty" 0 (Lfib.size l)

let test_lfib_rejects_reserved () =
  let l = Lfib.create () in
  Alcotest.check_raises "reserved"
    (Invalid_argument "Lfib.install: reserved label 3") (fun () ->
      Lfib.install l ~in_label:3 { Lfib.op = Lfib.Pop; next_hop = 1 })

let labelled_packet ?(ttl = 64) label =
  let p = Packet.make ~now:0.0 (Flow.make (ip "10.0.0.1") (ip "10.1.0.1")) in
  Packet.push_label p ~label ~exp:0 ~ttl;
  p

let test_lfib_step_swap () =
  let l = Lfib.create () in
  Lfib.install l ~in_label:100 { Lfib.op = Lfib.Swap 200; next_hop = 7 };
  let p = labelled_packet 100 in
  (match Lfib.step l p with
   | Lfib.Forward nh -> Alcotest.(check int) "forwarded" 7 nh
   | _ -> Alcotest.fail "expected forward");
  match Packet.top_label p with
  | Some s ->
    Alcotest.(check int) "label swapped" 200 s.Packet.label;
    Alcotest.(check int) "ttl decremented" 63 s.Packet.ttl
  | None -> Alcotest.fail "label vanished"

let test_lfib_step_pop_to_ip () =
  let l = Lfib.create () in
  Lfib.install l ~in_label:100 { Lfib.op = Lfib.Pop; next_hop = 7 };
  let p = labelled_packet 100 in
  (match Lfib.step l p with
   | Lfib.Ip_continue nh -> Alcotest.(check int) "ip at next hop" 7 nh
   | _ -> Alcotest.fail "expected ip continue");
  Alcotest.(check bool) "stack empty" true (Packet.top_label p = None)

let test_lfib_step_pop_inner_remains () =
  let l = Lfib.create () in
  Lfib.install l ~in_label:200 { Lfib.op = Lfib.Pop; next_hop = 7 };
  let p = labelled_packet 300 in
  Packet.push_label p ~label:200 ~exp:0 ~ttl:64;
  (match Lfib.step l p with
   | Lfib.Forward nh -> Alcotest.(check int) "forward with inner" 7 nh
   | _ -> Alcotest.fail "expected forward");
  match Packet.top_label p with
  | Some s -> Alcotest.(check int) "inner label exposed" 300 s.Packet.label
  | None -> Alcotest.fail "inner label missing"

(* RFC 3443 uniform model: popping charges the hop against the shim TTL
   and propagates the decremented value inward, so time-to-live spent
   inside the LSP is not forgotten at the pop point. *)
let test_lfib_pop_ttl_reaches_ip_header () =
  let l = Lfib.create () in
  Lfib.install l ~in_label:100 { Lfib.op = Lfib.Pop; next_hop = 7 };
  let p = labelled_packet ~ttl:9 100 in
  (match Lfib.step l p with
   | Lfib.Ip_continue 7 -> ()
   | _ -> Alcotest.fail "expected ip continue");
  Alcotest.(check int) "ip ttl = shim ttl - 1" 8
    (Packet.visible_header p).Packet.ttl

let test_lfib_pop_ttl_reaches_inner_shim () =
  let l = Lfib.create () in
  Lfib.install l ~in_label:200 { Lfib.op = Lfib.Pop; next_hop = 7 };
  let p = labelled_packet ~ttl:64 300 in
  Packet.push_label p ~label:200 ~exp:0 ~ttl:5;
  (match Lfib.step l p with
   | Lfib.Forward 7 -> ()
   | _ -> Alcotest.fail "expected forward with inner label");
  match Packet.top_label p with
  | Some s -> Alcotest.(check int) "inner ttl = outer ttl - 1" 4 s.Packet.ttl
  | None -> Alcotest.fail "inner label missing"

let test_lfib_pop_never_raises_inner_ttl () =
  (* An inner TTL already lower than the popped shim's must stay put. *)
  let l = Lfib.create () in
  Lfib.install l ~in_label:200 { Lfib.op = Lfib.Pop; next_hop = 7 };
  let p = labelled_packet ~ttl:3 300 in
  Packet.push_label p ~label:200 ~exp:0 ~ttl:64;
  (match Lfib.step l p with
   | Lfib.Forward _ -> ()
   | _ -> Alcotest.fail "expected forward");
  match Packet.top_label p with
  | Some s -> Alcotest.(check int) "inner ttl unchanged" 3 s.Packet.ttl
  | None -> Alcotest.fail "inner label missing"

let test_lfib_pop_and_ip_ttl () =
  let l = Lfib.create () in
  Lfib.install l ~in_label:100 { Lfib.op = Lfib.Pop_and_ip; next_hop = 7 };
  let p = labelled_packet ~ttl:9 100 in
  (match Lfib.step l p with
   | Lfib.Ip_continue 7 -> ()
   | _ -> Alcotest.fail "expected ip continue");
  Alcotest.(check int) "ip ttl = shim ttl - 1" 8
    (Packet.visible_header p).Packet.ttl

let test_lfib_pop_ttl_boundary () =
  (* Shim TTL 2: the pop itself succeeds exposing TTL 1, and the next
     label hop must then expire the packet. *)
  let l = Lfib.create () in
  Lfib.install l ~in_label:200 { Lfib.op = Lfib.Pop; next_hop = 7 };
  let p = labelled_packet ~ttl:64 300 in
  Packet.push_label p ~label:200 ~exp:0 ~ttl:2;
  (match Lfib.step l p with
   | Lfib.Forward 7 -> ()
   | _ -> Alcotest.fail "pop at ttl 2 should still forward");
  (match Packet.top_label p with
   | Some s -> Alcotest.(check int) "exposed ttl" 1 s.Packet.ttl
   | None -> Alcotest.fail "inner label missing");
  let next = Lfib.create () in
  Lfib.install next ~in_label:300 { Lfib.op = Lfib.Swap 301; next_hop = 8 };
  match Lfib.step next p with
  | Lfib.Ttl_expired -> ()
  | _ -> Alcotest.fail "next hop should expire the packet"

let test_lfib_step_ttl () =
  let l = Lfib.create () in
  Lfib.install l ~in_label:100 { Lfib.op = Lfib.Swap 200; next_hop = 7 };
  let p = labelled_packet ~ttl:1 100 in
  match Lfib.step l p with
  | Lfib.Ttl_expired -> ()
  | _ -> Alcotest.fail "expected ttl expiry"

let test_lfib_step_no_binding () =
  let l = Lfib.create () in
  let p = labelled_packet 999 in
  match Lfib.step l p with
  | Lfib.No_binding 999 -> ()
  | _ -> Alcotest.fail "expected no binding"

(* Generation counters: every ILM mutation that can change a lookup
   answer bumps; failed uninstalls do not (route caches key on this). *)
let test_lfib_generation () =
  let l = Lfib.create () in
  let g0 = Lfib.generation l in
  Lfib.install l ~in_label:100 { Lfib.op = Lfib.Swap 200; next_hop = 7 };
  let g1 = Lfib.generation l in
  Alcotest.(check bool) "install bumps" true (g1 > g0);
  Alcotest.(check bool) "uninstall miss" false (Lfib.uninstall l ~in_label:101);
  Alcotest.(check int) "no-op uninstall does not bump" g1 (Lfib.generation l);
  Alcotest.(check bool) "uninstall hit" true (Lfib.uninstall l ~in_label:100);
  let g2 = Lfib.generation l in
  Alcotest.(check bool) "uninstall bumps" true (g2 > g1);
  Lfib.install l ~in_label:100 { Lfib.op = Lfib.Pop; next_hop = 7 };
  Lfib.clear l;
  Alcotest.(check bool) "clear bumps" true (Lfib.generation l > g2)

(* --- Ldp -------------------------------------------------------------- *)

(* Line: 0 - 1 - 2 - 3; FEC egress at 3. *)
let line4 () =
  let t = Topology.create () in
  let ids = Topology.line t 4 ~bandwidth:1e9 ~delay:0.001 in
  (t, ids)

let test_ldp_end_to_end_php () =
  let topo, n = line4 () in
  let plane = Plane.create ~nodes:4 in
  let dest = pfx "10.3.0.0/16" in
  let ldp = Ldp.distribute topo plane ~fecs:[(dest, n.(3))] in
  (* Ingress at 0 pushes toward 1. *)
  let l0 =
    match Ldp.ingress_label ldp ~router:n.(0) dest with
    | Some l -> l
    | None -> Alcotest.fail "no ingress label at 0"
  in
  let p =
    Packet.make ~now:0.0 (Flow.make (ip "10.0.0.1") (ip "10.3.0.1"))
  in
  Packet.push_label p ~label:l0 ~exp:0 ~ttl:64;
  (* Walk the LSP: node 1 swaps, node 2 (penultimate) pops. *)
  (match Lfib.step (Plane.lfib plane n.(1)) p with
   | Lfib.Forward nh -> Alcotest.(check int) "1 -> 2" n.(2) nh
   | _ -> Alcotest.fail "node 1 should forward");
  (match Lfib.step (Plane.lfib plane n.(2)) p with
   | Lfib.Ip_continue nh ->
     Alcotest.(check int) "php: ip continues at 3" n.(3) nh
   | _ -> Alcotest.fail "node 2 should pop (php)");
  Alcotest.(check bool) "unlabelled at egress" true
    (Packet.top_label p = None)

let test_ldp_no_php_egress_pops () =
  let topo, n = line4 () in
  let plane = Plane.create ~nodes:4 in
  let dest = pfx "10.3.0.0/16" in
  let ldp = Ldp.distribute ~php:false topo plane ~fecs:[(dest, n.(3))] in
  Alcotest.(check bool) "egress has a real binding" true
    (match Ldp.local_binding ldp ~router:n.(3) dest with
     | Some l -> l >= Label.first_unreserved
     | None -> false);
  let p =
    Packet.make ~now:0.0 (Flow.make (ip "10.0.0.1") (ip "10.3.0.1"))
  in
  let l2 =
    match Ldp.local_binding ldp ~router:n.(2) dest with
    | Some l -> l
    | None -> Alcotest.fail "no binding at 2"
  in
  Packet.push_label p ~label:l2 ~exp:0 ~ttl:64;
  (match Lfib.step (Plane.lfib plane n.(2)) p with
   | Lfib.Forward nh -> Alcotest.(check int) "2 swaps to 3" n.(3) nh
   | _ -> Alcotest.fail "node 2 should swap without php");
  match Lfib.step (Plane.lfib plane n.(3)) p with
  | Lfib.Ip_continue nh ->
    Alcotest.(check int) "egress pops locally" Lfib.local nh
  | _ -> Alcotest.fail "egress should pop"

let test_ldp_php_egress_binding_is_implicit_null () =
  let topo, n = line4 () in
  let plane = Plane.create ~nodes:4 in
  let dest = pfx "10.3.0.0/16" in
  let ldp = Ldp.distribute topo plane ~fecs:[(dest, n.(3))] in
  Alcotest.(check (option int)) "implicit null" (Some Label.implicit_null)
    (Ldp.local_binding ldp ~router:n.(3) dest)

let test_ldp_refresh_after_failure () =
  (* Diamond so a detour exists. *)
  let topo = Topology.create () in
  let n = Array.init 4 (fun _ -> Topology.add_node topo) in
  ignore (Topology.connect topo n.(0) n.(1) ~bandwidth:1e9 ~delay:0.001);
  ignore (Topology.connect topo n.(1) n.(3) ~bandwidth:1e9 ~delay:0.001);
  ignore (Topology.connect topo n.(0) n.(2) ~bandwidth:1e9 ~delay:0.001);
  ignore
    (Topology.connect ~cost:2 topo n.(2) n.(3) ~bandwidth:1e9 ~delay:0.001);
  let plane = Plane.create ~nodes:4 in
  let dest = pfx "10.3.0.0/16" in
  let ldp = Ldp.distribute topo plane ~fecs:[(dest, n.(3))] in
  let fec = Fec.Prefix_fec dest in
  (match Plane.find_ftn plane n.(0) fec with
   | Some e -> Alcotest.(check int) "before: via 1" n.(1) e.Plane.next_hop
   | None -> Alcotest.fail "no ftn before failure");
  Topology.set_duplex_state topo n.(0) n.(1) false;
  Ldp.refresh ldp;
  match Plane.find_ftn plane n.(0) fec with
  | Some e -> Alcotest.(check int) "after: via 2" n.(2) e.Plane.next_hop
  | None -> Alcotest.fail "no ftn after refresh"

(* An LDP re-splice must be visible to FTN caches: refresh goes through
   {!Plane.install_ftn}/{!Plane.remove_ftn}, so the ingress node's FTN
   generation moves whenever its binding does. *)
let test_plane_ftn_generation_tracks_refresh () =
  let topo = Topology.create () in
  let n = Array.init 4 (fun _ -> Topology.add_node topo) in
  ignore (Topology.connect topo n.(0) n.(1) ~bandwidth:1e9 ~delay:0.001);
  ignore (Topology.connect topo n.(1) n.(3) ~bandwidth:1e9 ~delay:0.001);
  ignore (Topology.connect topo n.(0) n.(2) ~bandwidth:1e9 ~delay:0.001);
  ignore
    (Topology.connect ~cost:2 topo n.(2) n.(3) ~bandwidth:1e9 ~delay:0.001);
  let plane = Plane.create ~nodes:4 in
  let dest = pfx "10.3.0.0/16" in
  let g0 = Plane.ftn_generation plane n.(0) in
  let ldp = Ldp.distribute topo plane ~fecs:[(dest, n.(3))] in
  let g1 = Plane.ftn_generation plane n.(0) in
  Alcotest.(check bool) "distribute bumps ingress" true (g1 > g0);
  Topology.set_duplex_state topo n.(0) n.(1) false;
  Ldp.refresh ldp;
  Alcotest.(check bool) "refresh bumps ingress" true
    (Plane.ftn_generation plane n.(0) > g1);
  (* Direct FTN surgery counts too. *)
  let g2 = Plane.ftn_generation plane n.(1) in
  Plane.install_ftn plane n.(1) (Fec.Prefix_fec dest)
    { Plane.push = 77; next_hop = n.(3) };
  let g3 = Plane.ftn_generation plane n.(1) in
  Alcotest.(check bool) "install_ftn bumps" true (g3 > g2);
  Alcotest.(check bool) "remove hit" true
    (Plane.remove_ftn plane n.(1) (Fec.Prefix_fec dest));
  let g4 = Plane.ftn_generation plane n.(1) in
  Alcotest.(check bool) "remove_ftn bumps" true (g4 > g3);
  Alcotest.(check bool) "remove miss" false
    (Plane.remove_ftn plane n.(1) (Fec.Prefix_fec dest));
  Alcotest.(check int) "no-op remove does not bump" g4
    (Plane.ftn_generation plane n.(1))

let test_ldp_refresh_removes_unreachable () =
  (* Partition the egress: refresh must withdraw the FTN entries of
     routers that lost reachability. *)
  let topo, n = line4 () in
  let plane = Plane.create ~nodes:4 in
  let dest = pfx "10.3.0.0/16" in
  let ldp = Ldp.distribute topo plane ~fecs:[(dest, n.(3))] in
  let fec = Fec.Prefix_fec dest in
  Alcotest.(check bool) "ftn before" true
    (Plane.find_ftn plane n.(0) fec <> None);
  Topology.set_duplex_state topo n.(1) n.(2) false;
  Ldp.refresh ldp;
  Alcotest.(check bool) "node 0 withdrawn" true
    (Plane.find_ftn plane n.(0) fec = None);
  Alcotest.(check bool) "node 1 withdrawn" true
    (Plane.find_ftn plane n.(1) fec = None);
  (* Repair and refresh: reachability returns with the same binding. *)
  let before =
    match Ldp.local_binding ldp ~router:n.(0) dest with
    | Some l -> l
    | None -> Alcotest.fail "binding lost"
  in
  Topology.set_duplex_state topo n.(1) n.(2) true;
  Ldp.refresh ldp;
  (match Plane.find_ftn plane n.(0) fec with
   | Some _ -> ()
   | None -> Alcotest.fail "ftn not restored");
  Alcotest.(check (option int)) "binding stable" (Some before)
    (Ldp.local_binding ldp ~router:n.(0) dest)

let test_ldp_messages_and_state () =
  let topo, n = line4 () in
  let plane = Plane.create ~nodes:4 in
  let ldp =
    Ldp.distribute topo plane
      ~fecs:[(pfx "10.3.0.0/16", n.(3)); (pfx "10.0.0.0/16", n.(0))]
  in
  Alcotest.(check int) "fecs" 2 (Ldp.fec_count ldp);
  Alcotest.(check bool) "messages counted" true (Ldp.messages ldp > 0);
  Alcotest.(check bool) "lfib state exists" true
    (Plane.total_lfib_entries plane > 0)

let ldp_lsp_always_reaches_egress =
  QCheck.Test.make ~name:"ldp lsp from any ingress reaches the egress"
    ~count:40
    QCheck.(pair (int_range 3 10) small_int)
    (fun (n, seed) ->
       let topo = Topology.create () in
       let rng = Mvpn_sim.Rng.create (seed * 31 + 1) in
       let ids =
         Topology.random_connected topo rng ~n ~extra_links:3
           ~bandwidth:1e9 ~delay:0.001
       in
       let plane = Plane.create ~nodes:(Topology.node_count topo) in
       let dest = pfx "10.99.0.0/16" in
       let egress = ids.(n - 1) in
       let ldp = Ldp.distribute topo plane ~fecs:[(dest, egress)] in
       ignore ldp;
       let fec = Fec.Prefix_fec dest in
       Array.for_all
         (fun ingress ->
            if ingress = egress then true
            else begin
              let p =
                Packet.make ~now:0.0
                  (Flow.make (ip "10.0.0.1") (ip "10.99.0.1"))
              in
              match Plane.find_ftn plane ingress fec with
              | None ->
                (* Next hop is the PHP egress: traffic goes unlabelled,
                   which counts as reaching it. *)
                (match
                   Mvpn_routing.Spf.shortest_path topo ~src:ingress
                     ~dst:egress
                 with
                 | Some [_; e] -> e = egress
                 | Some _ | None -> false)
              | Some e ->
                Packet.push_label p ~label:e.Plane.push ~exp:0 ~ttl:64;
                let rec walk at hops =
                  if hops > 50 then false
                  else if Packet.top_label p = None then at = egress
                  else
                    match Lfib.step (Plane.lfib plane at) p with
                    | Lfib.Forward nh -> walk nh (hops + 1)
                    | Lfib.Ip_continue nh ->
                      (nh = egress)
                      || (nh = Lfib.local && at = egress)
                    | Lfib.No_binding _ | Lfib.Ttl_expired -> false
                in
                walk e.Plane.next_hop 0
            end)
         ids)

(* LDP splice property: on random topologies, every router's outgoing
   label for a FEC equals its next hop's local binding — the invariant
   label distribution exists to establish. *)
let ldp_splice_consistency =
  QCheck.Test.make ~name:"ldp: pushed label = next hop's local binding"
    ~count:40
    QCheck.(pair (int_range 3 10) small_int)
    (fun (n, seed) ->
       let topo = Topology.create () in
       let rng = Mvpn_sim.Rng.create (seed * 13 + 5) in
       let ids =
         Topology.random_connected topo rng ~n ~extra_links:2
           ~bandwidth:1e9 ~delay:0.001
       in
       let plane = Plane.create ~nodes:(Topology.node_count topo) in
       let dest = pfx "10.50.0.0/16" in
       let egress = ids.(0) in
       let ldp = Ldp.distribute topo plane ~fecs:[(dest, egress)] in
       Array.for_all
         (fun r ->
            if r = egress then true
            else
              match Plane.find_ftn plane r (Fec.Prefix_fec dest) with
              | None -> true  (* adjacent-to-egress PHP case *)
              | Some e ->
                (match Ldp.local_binding ldp ~router:e.Plane.next_hop dest with
                 | Some binding -> binding = e.Plane.push
                 | None -> false))
         ids)

(* --- Cspf ------------------------------------------------------------- *)

let test_cspf_avoids_reserved () =
  let topo = Topology.create () in
  let n = Array.init 4 (fun _ -> Topology.add_node topo) in
  (* Short path 0-1-3 at low capacity, long path 0-2-3 at high. *)
  let ab, _ = Topology.connect topo n.(0) n.(1) ~bandwidth:50.0 ~delay:0.001 in
  ignore (Topology.connect topo n.(1) n.(3) ~bandwidth:50.0 ~delay:0.001);
  ignore
    (Topology.connect ~cost:5 topo n.(0) n.(2) ~bandwidth:1000.0
       ~delay:0.001);
  ignore
    (Topology.connect ~cost:5 topo n.(2) n.(3) ~bandwidth:1000.0
       ~delay:0.001);
  ignore ab;
  Alcotest.(check (option (list int))) "small demand takes short path"
    (Some [0; 1; 3])
    (Cspf.path topo ~src:n.(0) ~dst:n.(3) (Cspf.with_bandwidth 40.0));
  Alcotest.(check (option (list int))) "big demand detours"
    (Some [0; 2; 3])
    (Cspf.path topo ~src:n.(0) ~dst:n.(3) (Cspf.with_bandwidth 100.0));
  Alcotest.(check (option (list int))) "impossible demand" None
    (Cspf.path topo ~src:n.(0) ~dst:n.(3) (Cspf.with_bandwidth 5000.0));
  (* igp path ignores resources *)
  Alcotest.(check (option (list int))) "igp blind" (Some [0; 1; 3])
    (Cspf.igp_path topo ~src:n.(0) ~dst:n.(3))

let test_cspf_avoid_node () =
  let topo = Topology.create () in
  let n = Array.init 4 (fun _ -> Topology.add_node topo) in
  ignore (Topology.connect topo n.(0) n.(1) ~bandwidth:1e9 ~delay:0.001);
  ignore (Topology.connect topo n.(1) n.(3) ~bandwidth:1e9 ~delay:0.001);
  ignore (Topology.connect ~cost:3 topo n.(0) n.(2) ~bandwidth:1e9 ~delay:0.001);
  ignore (Topology.connect ~cost:3 topo n.(2) n.(3) ~bandwidth:1e9 ~delay:0.001);
  let c = { Cspf.no_constraints with Cspf.avoid_nodes = [n.(1)] } in
  Alcotest.(check (option (list int))) "avoids node 1" (Some [0; 2; 3])
    (Cspf.path topo ~src:n.(0) ~dst:n.(3) c)

let test_cspf_max_hops () =
  let topo = Topology.create () in
  let ids = Topology.line topo 5 ~bandwidth:1e9 ~delay:0.001 in
  let c = { Cspf.no_constraints with Cspf.max_hops = Some 2 } in
  Alcotest.(check (option (list int))) "too many hops" None
    (Cspf.path topo ~src:ids.(0) ~dst:ids.(4) c);
  let c2 = { Cspf.no_constraints with Cspf.max_hops = Some 4 } in
  Alcotest.(check bool) "within limit" true
    (Cspf.path topo ~src:ids.(0) ~dst:ids.(4) c2 <> None)

(* --- Rsvp_te ---------------------------------------------------------- *)

let te_topo () =
  (* Diamond with equal costs both ways: 0-1-3 and 0-2-3, capacity 100. *)
  let topo = Topology.create () in
  let n = Array.init 4 (fun _ -> Topology.add_node topo) in
  ignore (Topology.connect topo n.(0) n.(1) ~bandwidth:100.0 ~delay:0.001);
  ignore (Topology.connect topo n.(1) n.(3) ~bandwidth:100.0 ~delay:0.001);
  ignore
    (Topology.connect ~cost:2 topo n.(0) n.(2) ~bandwidth:100.0 ~delay:0.001);
  ignore
    (Topology.connect ~cost:2 topo n.(2) n.(3) ~bandwidth:100.0 ~delay:0.001);
  (topo, n)

let test_te_signal_reserves_and_installs () =
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  let te = Rsvp_te.create topo plane in
  (match Rsvp_te.signal te ~src:n.(0) ~dst:n.(3) ~bandwidth:60.0 with
   | Ok tn ->
     Alcotest.(check (list int)) "short path" [0; 1; 3] tn.Rsvp_te.path;
     (match Topology.find_link topo n.(0) n.(1) with
      | Some l ->
        Alcotest.(check (float 1e-9)) "reserved" 60.0 l.Topology.reserved
      | None -> Alcotest.fail "link missing");
     Alcotest.(check bool) "ingress ftn installed" true
       (Plane.find_ftn plane n.(0) (Rsvp_te.ingress_fec tn) <> None)
   | Error e -> Alcotest.failf "signal failed: %s" e);
  (* Second tunnel does not fit on the short path -> detours. *)
  match Rsvp_te.signal te ~src:n.(0) ~dst:n.(3) ~bandwidth:60.0 with
  | Ok tn ->
    Alcotest.(check (list int)) "spread to long path" [0; 2; 3]
      tn.Rsvp_te.path
  | Error e -> Alcotest.failf "second signal failed: %s" e

let test_te_admission_refusal () =
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  let te = Rsvp_te.create topo plane in
  (match Rsvp_te.signal te ~src:n.(0) ~dst:n.(3) ~bandwidth:80.0 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "first: %s" e);
  (match Rsvp_te.signal te ~src:n.(0) ~dst:n.(3) ~bandwidth:80.0 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "second: %s" e);
  (* Both paths now hold 80/100; a third 80 must be refused. *)
  match Rsvp_te.signal te ~src:n.(0) ~dst:n.(3) ~bandwidth:80.0 with
  | Ok _ -> Alcotest.fail "should have been refused"
  | Error _ -> ()

let test_te_igp_only_overcommits () =
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  let te = Rsvp_te.create topo plane in
  for _ = 1 to 3 do
    match
      Rsvp_te.signal te ~admission:Rsvp_te.Igp_only ~src:n.(0) ~dst:n.(3)
        ~bandwidth:60.0
    with
    | Ok tn ->
      Alcotest.(check (list int)) "always the igp path" [0; 1; 3]
        tn.Rsvp_te.path
    | Error e -> Alcotest.failf "igp admission refused: %s" e
  done;
  let over = Rsvp_te.overcommitted_links te in
  Alcotest.(check bool) "links overcommitted" true (List.length over > 0);
  let _, excess = List.hd over in
  Alcotest.(check (float 1e-9)) "excess" 80.0 excess

let test_te_teardown_releases () =
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  let te = Rsvp_te.create topo plane in
  match Rsvp_te.signal te ~src:n.(0) ~dst:n.(3) ~bandwidth:60.0 with
  | Error e -> Alcotest.failf "signal: %s" e
  | Ok tn ->
    Alcotest.(check bool) "teardown" true (Rsvp_te.teardown te tn.Rsvp_te.id);
    (match Topology.find_link topo n.(0) n.(1) with
     | Some l ->
       Alcotest.(check (float 1e-9)) "released" 0.0 l.Topology.reserved
     | None -> Alcotest.fail "link missing");
    Alcotest.(check bool) "idempotent" false
      (Rsvp_te.teardown te tn.Rsvp_te.id)

let test_te_preemption () =
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  let te = Rsvp_te.create topo plane in
  (* Fill both paths with low-priority tunnels. *)
  (match
     Rsvp_te.signal te ~setup_priority:7 ~hold_priority:7 ~src:n.(0)
       ~dst:n.(3) ~bandwidth:80.0
   with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "lp1: %s" e);
  (match
     Rsvp_te.signal te ~setup_priority:7 ~hold_priority:7 ~src:n.(0)
       ~dst:n.(3) ~bandwidth:80.0
   with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "lp2: %s" e);
  (* High-priority tunnel preempts. *)
  match
    Rsvp_te.signal te ~setup_priority:0 ~hold_priority:0 ~allow_preempt:true
      ~src:n.(0) ~dst:n.(3) ~bandwidth:80.0
  with
  | Ok tn ->
    Alcotest.(check bool) "up" true tn.Rsvp_te.up;
    let down =
      List.filter (fun t -> not t.Rsvp_te.up) (Rsvp_te.tunnels te)
    in
    Alcotest.(check int) "one victim" 1 (List.length down)
  | Error e -> Alcotest.failf "preemption failed: %s" e

let test_te_failure_and_reroute () =
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  let te = Rsvp_te.create topo plane in
  (match Rsvp_te.signal te ~src:n.(0) ~dst:n.(3) ~bandwidth:60.0 with
   | Ok tn ->
     Alcotest.(check (list int)) "initial path" [0; 1; 3] tn.Rsvp_te.path
   | Error e -> Alcotest.failf "signal: %s" e);
  Topology.set_duplex_state topo n.(1) n.(3) false;
  Alcotest.(check int) "one tunnel down" 1 (Rsvp_te.handle_link_failure te);
  let restored, still_down = Rsvp_te.reroute_down te in
  Alcotest.(check int) "restored" 1 restored;
  Alcotest.(check int) "none stuck" 0 still_down;
  match Rsvp_te.tunnels te with
  | [tn] ->
    Alcotest.(check (list int)) "detour path" [0; 2; 3] tn.Rsvp_te.path
  | _ -> Alcotest.fail "expected one tunnel"

(* A reroute that failed against topology generation G is not retried
   until the topology moves past G — backoff loops may call
   reroute_down freely without re-running CSPF against a graph that
   cannot have changed the answer. *)
let test_te_reroute_skips_unchanged_generation () =
  Mvpn_telemetry.Control.enable ();
  Fun.protect ~finally:Mvpn_telemetry.Control.disable @@ fun () ->
  let counter = Mvpn_telemetry.Registry.counter_value in
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  let te = Rsvp_te.create topo plane in
  (match Rsvp_te.signal te ~src:n.(0) ~dst:n.(3) ~bandwidth:60.0 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "signal: %s" e);
  (* Sever both ways to node 3: the reroute has nowhere to go. *)
  Topology.set_duplex_state topo n.(1) n.(3) false;
  Topology.set_duplex_state topo n.(2) n.(3) false;
  Alcotest.(check int) "tunnel down" 1 (Rsvp_te.handle_link_failure te);
  let a0 = counter "rsvp.reroute.attempt" in
  let s0 = counter "rsvp.reroute.skipped" in
  let restored, still_down = Rsvp_te.reroute_down te in
  Alcotest.(check (pair int int)) "first try fails" (0, 1)
    (restored, still_down);
  Alcotest.(check int) "one CSPF attempt" (a0 + 1)
    (counter "rsvp.reroute.attempt");
  (* Nothing moved: retries are skipped, not re-signalled. *)
  let restored, still_down = Rsvp_te.reroute_down te in
  Alcotest.(check (pair int int)) "skipped still counts down" (0, 1)
    (restored, still_down);
  let _, _ = Rsvp_te.reroute_down te in
  Alcotest.(check int) "no further attempts" (a0 + 1)
    (counter "rsvp.reroute.attempt");
  Alcotest.(check int) "both retries skipped" (s0 + 2)
    (counter "rsvp.reroute.skipped");
  (* The topology moves: the next call attempts and restores. *)
  Topology.set_duplex_state topo n.(2) n.(3) true;
  let restored, still_down = Rsvp_te.reroute_down te in
  Alcotest.(check (pair int int)) "restored after change" (1, 0)
    (restored, still_down);
  Alcotest.(check int) "one more attempt" (a0 + 2)
    (counter "rsvp.reroute.attempt")

let test_te_explicit_path () =
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  let te = Rsvp_te.create topo plane in
  match
    Rsvp_te.signal te ~explicit_path:[n.(0); n.(2); n.(3)] ~src:n.(0)
      ~dst:n.(3) ~bandwidth:10.0
  with
  | Ok tn ->
    Alcotest.(check (list int)) "operator route honoured" [0; 2; 3]
      tn.Rsvp_te.path
  | Error e -> Alcotest.failf "explicit: %s" e

let test_te_subpool_caps_premium () =
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  (* Links are 100; premium capped at 40%. *)
  let te = Rsvp_te.create ~subpool_fraction:0.4 topo plane in
  (match
     Rsvp_te.signal te ~class_type:Rsvp_te.Subpool ~src:n.(0) ~dst:n.(3)
       ~bandwidth:30.0
   with
   | Ok tn -> Alcotest.(check (list int)) "short path" [0; 1; 3] tn.Rsvp_te.path
   | Error e -> Alcotest.failf "first premium: %s" e);
  (* A second premium 30 exceeds the 40-unit sub-pool on the short
     path: it must detour even though global capacity remains. *)
  (match
     Rsvp_te.signal te ~class_type:Rsvp_te.Subpool ~src:n.(0) ~dst:n.(3)
       ~bandwidth:30.0
   with
   | Ok tn ->
     Alcotest.(check (list int)) "premium detours" [0; 2; 3] tn.Rsvp_te.path
   | Error e -> Alcotest.failf "second premium: %s" e);
  (* Global-pool traffic still fits on the short path. *)
  (match
     Rsvp_te.signal te ~src:n.(0) ~dst:n.(3) ~bandwidth:60.0
   with
   | Ok tn ->
     Alcotest.(check (list int)) "global pool unaffected" [0; 1; 3]
       tn.Rsvp_te.path
   | Error e -> Alcotest.failf "global: %s" e);
  match Topology.find_link topo n.(0) n.(1) with
  | Some l ->
    Alcotest.(check (float 1e-9)) "subpool accounted" 30.0
      (Rsvp_te.subpool_reserved te l)
  | None -> Alcotest.fail "link missing"

let test_te_subpool_released_on_teardown () =
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  let te = Rsvp_te.create ~subpool_fraction:0.4 topo plane in
  match
    Rsvp_te.signal te ~class_type:Rsvp_te.Subpool ~src:n.(0) ~dst:n.(3)
      ~bandwidth:40.0
  with
  | Error e -> Alcotest.failf "signal: %s" e
  | Ok tn ->
    ignore (Rsvp_te.teardown te tn.Rsvp_te.id);
    (match Topology.find_link topo n.(0) n.(1) with
     | Some l ->
       Alcotest.(check (float 1e-9)) "subpool empty" 0.0
         (Rsvp_te.subpool_reserved te l)
     | None -> Alcotest.fail "link missing")

(* Reservation conservation: after random signal/teardown churn, every
   link's reserved bandwidth equals the sum over up tunnels crossing
   it. *)
let te_reservation_conservation =
  QCheck.Test.make ~name:"rsvp-te: link reservations = sum of up tunnels"
    ~count:30
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 5 25) bool))
    (fun (seed, ops) ->
       let topo = Topology.create () in
       let rng = Mvpn_sim.Rng.create (seed + 77) in
       let ids =
         Topology.random_connected topo rng ~n:8 ~extra_links:4
           ~bandwidth:100.0 ~delay:0.001
       in
       let plane = Plane.create ~nodes:(Topology.node_count topo) in
       let te = Rsvp_te.create topo plane in
       let live = ref [] in
       List.iter
         (fun signal_new ->
            if signal_new || !live = [] then begin
              let src = ids.(Mvpn_sim.Rng.int rng 8) in
              let dst = ids.(Mvpn_sim.Rng.int rng 8) in
              if src <> dst then
                match
                  Rsvp_te.signal te ~src ~dst
                    ~bandwidth:(float_of_int (Mvpn_sim.Rng.int_in rng 5 30))
                with
                | Ok tn -> live := tn.Rsvp_te.id :: !live
                | Error _ -> ()
            end
            else begin
              match !live with
              | id :: rest ->
                ignore (Rsvp_te.teardown te id);
                live := rest
              | [] -> ()
            end)
         ops;
       (* Check conservation per link. *)
       let expected = Hashtbl.create 32 in
       List.iter
         (fun tn ->
            if tn.Rsvp_te.up then begin
              let rec pairs = function
                | a :: (b :: _ as rest) -> (a, b) :: pairs rest
                | [_] | [] -> []
              in
              List.iter
                (fun (a, b) ->
                   match Topology.find_link topo a b with
                   | Some l ->
                     let cur =
                       Option.value ~default:0.0
                         (Hashtbl.find_opt expected l.Topology.id)
                     in
                     Hashtbl.replace expected l.Topology.id
                       (cur +. tn.Rsvp_te.bandwidth)
                   | None -> ())
                (pairs tn.Rsvp_te.path)
            end)
         (Rsvp_te.tunnels te);
       List.for_all
         (fun (l : Topology.link) ->
            let want =
              Option.value ~default:0.0
                (Hashtbl.find_opt expected l.Topology.id)
            in
            Float.abs (l.Topology.reserved -. want) < 1e-9)
         (Topology.links topo))

let test_te_labels_walk () =
  let topo, n = te_topo () in
  let plane = Plane.create ~nodes:4 in
  let te = Rsvp_te.create topo plane in
  match Rsvp_te.signal te ~src:n.(0) ~dst:n.(3) ~bandwidth:10.0 with
  | Error e -> Alcotest.failf "signal: %s" e
  | Ok tn ->
    let p =
      Packet.make ~now:0.0 (Flow.make (ip "10.0.0.1") (ip "10.3.0.1"))
    in
    (match Plane.find_ftn plane n.(0) (Rsvp_te.ingress_fec tn) with
     | None -> Alcotest.fail "no ingress entry"
     | Some e ->
       Packet.push_label p ~label:e.Plane.push ~exp:5 ~ttl:64;
       (* Node 1 is penultimate: pops, delivers IP to 3. *)
       (match Lfib.step (Plane.lfib plane e.Plane.next_hop) p with
        | Lfib.Ip_continue nh -> Alcotest.(check int) "egress" n.(3) nh
        | _ -> Alcotest.fail "expected php pop at node 1"))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mpls"
    [ ("label",
       [ Alcotest.test_case "constants" `Quick test_label_constants;
         Alcotest.test_case "allocator" `Quick test_label_allocator ]);
      ("fec", [ Alcotest.test_case "compare" `Quick test_fec_compare ]);
      ("lfib",
       [ Alcotest.test_case "install/lookup" `Quick
           test_lfib_install_lookup;
         Alcotest.test_case "rejects reserved" `Quick
           test_lfib_rejects_reserved;
         Alcotest.test_case "step swap" `Quick test_lfib_step_swap;
         Alcotest.test_case "step pop to ip" `Quick test_lfib_step_pop_to_ip;
         Alcotest.test_case "step pop inner remains" `Quick
           test_lfib_step_pop_inner_remains;
         Alcotest.test_case "pop ttl reaches ip header" `Quick
           test_lfib_pop_ttl_reaches_ip_header;
         Alcotest.test_case "pop ttl reaches inner shim" `Quick
           test_lfib_pop_ttl_reaches_inner_shim;
         Alcotest.test_case "pop never raises inner ttl" `Quick
           test_lfib_pop_never_raises_inner_ttl;
         Alcotest.test_case "pop-and-ip ttl" `Quick test_lfib_pop_and_ip_ttl;
         Alcotest.test_case "pop ttl=2 boundary" `Quick
           test_lfib_pop_ttl_boundary;
         Alcotest.test_case "ttl expiry" `Quick test_lfib_step_ttl;
         Alcotest.test_case "no binding" `Quick test_lfib_step_no_binding;
         Alcotest.test_case "generation" `Quick test_lfib_generation ]);
      ("ldp",
       [ Alcotest.test_case "end to end php" `Quick test_ldp_end_to_end_php;
         Alcotest.test_case "no php egress pops" `Quick
           test_ldp_no_php_egress_pops;
         Alcotest.test_case "php binding" `Quick
           test_ldp_php_egress_binding_is_implicit_null;
         Alcotest.test_case "refresh after failure" `Quick
           test_ldp_refresh_after_failure;
         Alcotest.test_case "refresh withdraws unreachable" `Quick
           test_ldp_refresh_removes_unreachable;
         Alcotest.test_case "messages and state" `Quick
           test_ldp_messages_and_state;
         qt ldp_lsp_always_reaches_egress;
         qt ldp_splice_consistency;
         Alcotest.test_case "ftn generation tracks refresh" `Quick
           test_plane_ftn_generation_tracks_refresh ]);
      ("cspf",
       [ Alcotest.test_case "avoids reserved" `Quick
           test_cspf_avoids_reserved;
         Alcotest.test_case "avoid node" `Quick test_cspf_avoid_node;
         Alcotest.test_case "max hops" `Quick test_cspf_max_hops ]);
      ("rsvp-te",
       [ Alcotest.test_case "signal reserves and installs" `Quick
           test_te_signal_reserves_and_installs;
         Alcotest.test_case "admission refusal" `Quick
           test_te_admission_refusal;
         Alcotest.test_case "igp-only overcommits" `Quick
           test_te_igp_only_overcommits;
         Alcotest.test_case "teardown releases" `Quick
           test_te_teardown_releases;
         Alcotest.test_case "preemption" `Quick test_te_preemption;
         Alcotest.test_case "failure and reroute" `Quick
           test_te_failure_and_reroute;
         Alcotest.test_case "reroute skips unchanged generation" `Quick
           test_te_reroute_skips_unchanged_generation;
         Alcotest.test_case "explicit path" `Quick test_te_explicit_path;
         Alcotest.test_case "ds-te subpool caps premium" `Quick
           test_te_subpool_caps_premium;
         Alcotest.test_case "ds-te subpool released" `Quick
           test_te_subpool_released_on_teardown;
         qt te_reservation_conservation;
         Alcotest.test_case "labels walk" `Quick test_te_labels_walk ]) ]
