(* Smoke test for the human-facing packet printer, run by tools/check.sh.
   Builds a doubly-labelled, EF-marked packet and checks the rendered
   line carries the pieces operators grep for in traces: uid, addresses,
   the DSCP name, the wire size and the label stack top-first as
   [100(exp=5);200(exp=3)]. Exits non-zero with the offending render on
   any mismatch. *)

module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow
module Ipv4 = Mvpn_net.Ipv4
module Dscp = Mvpn_net.Dscp

let () =
  let flow =
    Flow.make ~proto:Flow.Udp ~src_port:4000 ~dst_port:4001
      (Ipv4.of_string_exn "10.1.0.1")
      (Ipv4.of_string_exn "10.2.0.1")
  in
  let p = Packet.make ~dscp:Dscp.ef ~now:0.0 flow in
  (* Bottom first: transport label 200 under VPN label 100, so the
     render shows the top of the stack first. *)
  Packet.push_label p ~label:200 ~exp:3 ~ttl:64;
  Packet.push_label p ~label:100 ~exp:5 ~ttl:64;
  let s = Format.asprintf "%a" Packet.pp p in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  let fail what =
    Printf.eprintf "pp_smoke: %s missing from render:\n  %s\n" what s;
    exit 1
  in
  if not (contains "[100(exp=5);200(exp=3)]") then fail "label stack";
  if not (contains "10.1.0.1") then fail "source address";
  if not (contains "10.2.0.1") then fail "destination address";
  if not (contains "EF") then fail "DSCP name";
  if not (contains "520B") then fail "wire size (512B + 2 shims)";
  print_endline s
