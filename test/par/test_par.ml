open Mvpn_par
module Topology = Mvpn_sim.Topology
module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow
module Ipv4 = Mvpn_net.Ipv4
module T = Mvpn_telemetry

(* --- Partition --------------------------------------------------------- *)

let ring_topo n =
  let topo = Topology.create () in
  ignore (Topology.ring topo n ~bandwidth:1e9 ~delay:1e-3);
  topo

let test_partition_k1_identity () =
  let topo = ring_topo 9 in
  let p = Partition.compute topo ~shards:1 in
  Alcotest.(check int) "one shard" 1 p.Partition.shards;
  Array.iter (fun o -> Alcotest.(check int) "owner 0" 0 o) p.Partition.owner;
  Alcotest.(check int) "no cut links" 0 (List.length p.Partition.cut)

let test_partition_clamp () =
  let topo = ring_topo 4 in
  let p = Partition.compute topo ~shards:100 in
  Alcotest.(check bool) "clamped to node count" true
    (p.Partition.shards <= 4);
  Array.iter
    (fun s -> Alcotest.(check bool) "no empty shard" true (s > 0))
    (Partition.sizes p);
  Alcotest.check_raises "zero shards rejected"
    (Invalid_argument "Partition.compute: shards < 1") (fun () ->
      ignore (Partition.compute topo ~shards:0))

let test_partition_isolated_nodes () =
  let topo = Topology.create () in
  for _ = 0 to 5 do
    ignore (Topology.add_node topo)
  done;
  ignore (Topology.connect topo 0 1 ~bandwidth:1e9 ~delay:1e-3);
  ignore (Topology.connect topo 1 2 ~bandwidth:1e9 ~delay:1e-3);
  (* nodes 3, 4, 5 have no links at all *)
  let p = Partition.compute topo ~shards:3 in
  Array.iteri
    (fun node o ->
       if o < 0 || o >= p.Partition.shards then
         Alcotest.failf "node %d unowned (owner %d)" node o)
    p.Partition.owner;
  Alcotest.(check int) "sizes cover every node" 6
    (Array.fold_left ( + ) 0 (Partition.sizes p))

let test_partition_cut_is_exact () =
  let topo = Topology.create () in
  ignore
    (Topology.ring_with_chords topo 16
       ~chords:[ (0, 8); (2, 10); (4, 12); (6, 14); (1, 9) ]
       ~bandwidth:1e9 ~delay:1e-3);
  let p = Partition.compute topo ~shards:4 in
  let owner = p.Partition.owner in
  let cut_ids =
    List.map (fun (l : Topology.link) -> l.Topology.id) p.Partition.cut
  in
  Alcotest.(check int) "each cut link listed once"
    (List.length cut_ids)
    (List.length (List.sort_uniq Int.compare cut_ids));
  List.iter
    (fun (l : Topology.link) ->
       Alcotest.(check bool) "cut endpoints in different shards" true
         (owner.(l.Topology.src) <> owner.(l.Topology.dst)))
    p.Partition.cut;
  (* ... and every cross-shard link of the topology is in the cut. *)
  List.iter
    (fun (l : Topology.link) ->
       if owner.(l.Topology.src) <> owner.(l.Topology.dst) then
         Alcotest.(check bool)
           (Printf.sprintf "link %d in cut" l.Topology.id)
           true
           (List.mem l.Topology.id cut_ids))
    (Topology.links topo)

let partition_covers =
  QCheck.Test.make ~name:"partition always covers every node" ~count:60
    QCheck.(triple (int_range 2 24) (int_bound 12) (int_range 1 9))
    (fun (n, extra, shards) ->
      let topo = Topology.create () in
      ignore
        (Topology.random_connected topo
           (Mvpn_sim.Rng.create (n + extra))
           ~n ~extra_links:extra ~bandwidth:1e9 ~delay:1e-3);
      let p = Partition.compute topo ~shards in
      Array.for_all (fun o -> o >= 0 && o < p.Partition.shards)
        p.Partition.owner
      && Array.fold_left ( + ) 0 (Partition.sizes p) = n
      && Array.for_all (fun s -> s > 0) (Partition.sizes p)
      && List.for_all
           (fun (l : Topology.link) ->
             p.Partition.owner.(l.Topology.src)
             <> p.Partition.owner.(l.Topology.dst))
           p.Partition.cut)

(* --- Exchange ----------------------------------------------------------- *)

let dummy_packet =
  let flow =
    Flow.make (Ipv4.of_octets 10 0 0 1) (Ipv4.of_octets 10 0 0 2)
  in
  fun () -> Packet.make ~now:0.0 flow

let test_exchange_channels () =
  let ex = Exchange.create ~shards:3 () in
  Alcotest.(check (list (pair int int))) "starts empty" []
    (Exchange.channels ex);
  Exchange.open_channel ex ~src:2 ~dst:0;
  Exchange.open_channel ex ~src:0 ~dst:1;
  Exchange.open_channel ex ~src:0 ~dst:1;
  Alcotest.(check (list (pair int int))) "sorted, idempotent"
    [ (0, 1); (2, 0) ]
    (Exchange.channels ex);
  Alcotest.check_raises "send needs an open channel"
    (Invalid_argument "Exchange.send: no channel 1 -> 2") (fun () ->
      Exchange.send ex ~src:1 ~dst:2 ~arrival:1.0 ~sent:0.5 ~src_node:0
        ~dst_node:1 (dummy_packet ()))

let test_exchange_drain_order () =
  let ex = Exchange.create ~shards:3 () in
  Exchange.open_channel ex ~src:0 ~dst:2;
  Exchange.open_channel ex ~src:1 ~dst:2;
  let send src arrival =
    Exchange.send ex ~src ~dst:2 ~arrival ~sent:(arrival -. 0.1)
      ~src_node:src ~dst_node:9 (dummy_packet ())
  in
  send 1 5.0;
  send 0 3.0;
  send 0 1.0;
  send 1 2.0;
  let got = Exchange.drain ex ~dst:2 in
  Alcotest.(check (list (pair int int)))
    "groups by ascending source, send order within each"
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]
    (List.map
       (fun (m : Exchange.msg) -> (m.Exchange.src_shard, m.Exchange.seq))
       got);
  Alcotest.(check int) "drain empties" 0
    (List.length (Exchange.drain ex ~dst:2))

let test_exchange_overflow_soft () =
  let ex = Exchange.create ~capacity:2 ~shards:2 () in
  Exchange.open_channel ex ~src:0 ~dst:1;
  for i = 1 to 5 do
    Exchange.send ex ~src:0 ~dst:1 ~arrival:(float_of_int i) ~sent:0.0
      ~src_node:0 ~dst_node:1 (dummy_packet ())
  done;
  Alcotest.(check int) "overflows counted" 3 (Exchange.overflows ex);
  (* soft bound: nothing is dropped or blocked *)
  Alcotest.(check int) "all messages kept" 5
    (List.length (Exchange.drain ex ~dst:1))

(* --- Clock -------------------------------------------------------------- *)

let test_clock_single_shard () =
  let c = Clock.create ~shards:1 ~horizon:10.0 ~inbound:[| [] |] in
  Alcotest.(check bool) "lookahead" true (Clock.lookahead c);
  Alcotest.(check (float 0.0)) "no inbound -> horizon" 10.0
    (Clock.next_bound c ~shard:0 ~completed:0.0)

let test_clock_zero_delay_disables_lookahead () =
  let c =
    Clock.create ~shards:2 ~horizon:10.0 ~inbound:[| [ (1, 0.0) ]; [] |]
  in
  Alcotest.(check bool) "barrier mode" false (Clock.lookahead c)

let test_clock_lookahead_windows () =
  let c =
    Clock.create ~shards:2 ~horizon:10.0
      ~inbound:[| []; [ (0, 0.5) ] |]
  in
  (* shard 1's first window: neighbor published nothing (0.0), so the
     bound is 0 + 0.5. *)
  Alcotest.(check (float 1e-9)) "first window" 0.5
    (Clock.next_bound c ~shard:1 ~completed:0.0);
  (* next_bound blocks until the neighbor publishes past the completed
     point; publish from another domain and watch it wake. *)
  let waiter =
    Domain.spawn (fun () -> Clock.next_bound c ~shard:1 ~completed:0.5)
  in
  Clock.publish c ~shard:0 2.0;
  Alcotest.(check (float 1e-9)) "window follows publication" 2.5
    (Domain.join waiter);
  (* publications are monotone: an older value cannot move the bound
     backwards. *)
  Clock.publish c ~shard:0 1.0;
  Alcotest.(check (float 1e-9)) "monotone" 2.5
    (Clock.next_bound c ~shard:1 ~completed:0.5);
  Clock.publish c ~shard:0 100.0;
  Alcotest.(check (float 1e-9)) "clamped to horizon" 10.0
    (Clock.next_bound c ~shard:1 ~completed:2.5)

let test_clock_barrier_and_min_next () =
  let c =
    Clock.create ~shards:2 ~horizon:10.0
      ~inbound:[| [ (1, 0.0) ]; [ (0, 0.0) ] |]
  in
  let flag = Atomic.make 0 in
  let worker () =
    Atomic.incr flag;
    Clock.barrier c;
    let seen = Atomic.get flag in
    (* both increments happened before anyone left the barrier *)
    let m1 = Clock.min_next c ~shard:1 3.0 in
    let m2 = Clock.min_next c ~shard:1 7.0 in
    (seen, m1, m2)
  in
  let d = Domain.spawn worker in
  Atomic.incr flag;
  Clock.barrier c;
  let m1 = Clock.min_next c ~shard:0 5.0 in
  let m2 = Clock.min_next c ~shard:0 4.0 in
  let seen, w1, w2 = Domain.join d in
  Alcotest.(check int) "barrier separates" 2 seen;
  Alcotest.(check (float 0.0)) "min of both (round 1)" 3.0 m1;
  Alcotest.(check (float 0.0)) "agreed" 3.0 w1;
  Alcotest.(check (float 0.0)) "min of both (round 2)" 4.0 m2;
  Alcotest.(check (float 0.0)) "agreed (round 2)" 4.0 w2

(* --- Runner: the headline invariant ------------------------------------- *)

let totals (o : Runner.outcome) =
  ( o.Runner.delivered, o.Runner.dropped, o.Runner.events,
    o.Runner.scheduled, o.Runner.classes, T.Slo.in_budget o.Runner.slo,
    T.Slo.violation_count o.Runner.slo )

let with_telemetry f =
  T.Control.enable ();
  Fun.protect ~finally:T.Control.disable f

let small_cfg ~pops ~vpns ~sites ~seed =
  { Runner.default_config with
    Runner.pops; vpns; sites_per_vpn = sites; load = 0.7; duration = 2.0;
    seed }

let runner_matches_sequential =
  QCheck.Test.make ~name:"parallel totals equal sequential for K=1,2,4"
    ~count:5
    QCheck.(
      quad (int_range 4 8) (int_range 1 2) (int_range 2 3) (int_range 1 1000))
    (fun (pops, vpns, sites, seed) ->
      let cfg = small_cfg ~pops ~vpns ~sites ~seed in
      with_telemetry (fun () ->
          let base = totals (Runner.run_sequential cfg) in
          List.for_all
            (fun k ->
              totals (Runner.run_parallel { cfg with Runner.shards = k })
              = base)
            [ 1; 2; 4 ]))

let test_runner_k8_deterministic () =
  let cfg =
    { (small_cfg ~pops:10 ~vpns:2 ~sites:3 ~seed:77) with Runner.shards = 8 }
  in
  with_telemetry (fun () ->
      let a = Runner.run_parallel cfg in
      let b = Runner.run_parallel cfg in
      Alcotest.(check bool) "same totals" true (totals a = totals b);
      Alcotest.(check int) "same exchanges" a.Runner.exchanged
        b.Runner.exchanged;
      Alcotest.(check int) "same leftovers" a.Runner.leftover
        b.Runner.leftover;
      Alcotest.(check bool) "same partition" true
        (a.Runner.sizes = b.Runner.sizes
        && a.Runner.cut_links = b.Runner.cut_links);
      Alcotest.(check bool) "matches sequential" true
        (totals (Runner.run_sequential cfg) = totals a))

let test_runner_barrier_mode_parity () =
  (* Zero core propagation delay kills every cut link's lookahead; the
     runner must fall back to epoch barriers and still land on the
     sequential totals. *)
  let cfg =
    { (small_cfg ~pops:8 ~vpns:2 ~sites:2 ~seed:5) with
      Runner.shards = 4; core_delay = Some 0.0 }
  in
  with_telemetry (fun () ->
      let par = Runner.run_parallel cfg in
      Alcotest.(check bool) "barrier fallback engaged" false
        par.Runner.lookahead;
      Alcotest.(check bool) "totals still match" true
        (totals (Runner.run_sequential cfg) = totals par))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "par"
    [ ("partition",
       [ Alcotest.test_case "K=1 identity" `Quick test_partition_k1_identity;
         Alcotest.test_case "clamps shard count" `Quick test_partition_clamp;
         Alcotest.test_case "isolated nodes owned" `Quick
           test_partition_isolated_nodes;
         Alcotest.test_case "cut is exactly the cross links" `Quick
           test_partition_cut_is_exact;
         qt partition_covers ]);
      ("exchange",
       [ Alcotest.test_case "channels" `Quick test_exchange_channels;
         Alcotest.test_case "drain order" `Quick test_exchange_drain_order;
         Alcotest.test_case "soft overflow" `Quick
           test_exchange_overflow_soft ]);
      ("clock",
       [ Alcotest.test_case "single shard" `Quick test_clock_single_shard;
         Alcotest.test_case "zero delay -> barrier mode" `Quick
           test_clock_zero_delay_disables_lookahead;
         Alcotest.test_case "lookahead windows" `Quick
           test_clock_lookahead_windows;
         Alcotest.test_case "barrier and min_next" `Quick
           test_clock_barrier_and_min_next ]);
      ("runner",
       [ qt runner_matches_sequential;
         Alcotest.test_case "K=8 deterministic" `Quick
           test_runner_k8_deterministic;
         Alcotest.test_case "barrier-mode parity" `Quick
           test_runner_barrier_mode_parity ]) ]
