bench/e9_atm.ml: Aal5 Cell List Mvpn_atm Mvpn_sim Switch Tables
