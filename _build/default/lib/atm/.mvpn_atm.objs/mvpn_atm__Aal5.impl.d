lib/atm/aal5.ml: Cell List
