type color = Green | Yellow | Red

let m_green = Mvpn_telemetry.Registry.counter "meter.green"
let m_yellow = Mvpn_telemetry.Registry.counter "meter.yellow"
let m_red = Mvpn_telemetry.Registry.counter "meter.red"

let count_color = function
  | Green -> Mvpn_telemetry.Counter.incr m_green
  | Yellow -> Mvpn_telemetry.Counter.incr m_yellow
  | Red -> Mvpn_telemetry.Counter.incr m_red

let color_to_string = function
  | Green -> "green"
  | Yellow -> "yellow"
  | Red -> "red"

let color_to_drop_precedence = function Green -> 1 | Yellow -> 2 | Red -> 3

(* srTCM per RFC 2697: one token stream at CIR fills the committed
   bucket first and only its overflow tops up the excess bucket. *)
type srtcm_state = {
  cir_bytes_per_s : float;
  cbs : float;
  ebs : float;
  mutable tc : float;
  mutable te : float;
  mutable last : float;
}

type t =
  | Srtcm of srtcm_state
  | Trtcm of { committed : Token_bucket.t; peak : Token_bucket.t }

let srtcm ~cir_bps ~cbs_bytes ~ebs_bytes =
  if cir_bps <= 0.0 then invalid_arg "Meter.srtcm: CIR must be positive";
  if cbs_bytes <= 0.0 then invalid_arg "Meter.srtcm: CBS must be positive";
  if ebs_bytes < 0.0 then invalid_arg "Meter.srtcm: EBS must not be negative";
  Srtcm
    { cir_bytes_per_s = cir_bps /. 8.0; cbs = cbs_bytes; ebs = ebs_bytes;
      tc = cbs_bytes; te = ebs_bytes; last = 0.0 }

let trtcm ~cir_bps ~cbs_bytes ~pir_bps ~pbs_bytes =
  if pir_bps < cir_bps then
    invalid_arg "Meter.trtcm: peak rate below committed rate";
  Trtcm
    { committed = Token_bucket.create ~rate_bps:cir_bps ~burst_bytes:cbs_bytes;
      peak = Token_bucket.create ~rate_bps:pir_bps ~burst_bytes:pbs_bytes }

let srtcm_refill s ~now =
  if now > s.last then begin
    let earned = (now -. s.last) *. s.cir_bytes_per_s in
    let to_committed = Float.min earned (s.cbs -. s.tc) in
    s.tc <- s.tc +. to_committed;
    s.te <- Float.min s.ebs (s.te +. (earned -. to_committed));
    s.last <- now
  end

let meter t ~now ~bytes =
  let color =
    match t with
    | Srtcm s ->
      srtcm_refill s ~now;
      let need = float_of_int bytes in
      if s.tc >= need then begin
        s.tc <- s.tc -. need;
        Green
      end
      else if s.te >= need then begin
        s.te <- s.te -. need;
        Yellow
      end
      else Red
    | Trtcm { committed; peak } ->
      if not (Token_bucket.take peak ~now ~bytes) then Red
      else if Token_bucket.take committed ~now ~bytes then Green
      else Yellow
  in
  count_color color;
  color
