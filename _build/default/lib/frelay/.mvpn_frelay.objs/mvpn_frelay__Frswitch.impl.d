lib/frelay/frswitch.ml: Frame Hashtbl Printf Queue
