(** Frame Relay frames.

    The paper benchmarks the whole VPN effort against frame relay: the
    overlay model it criticizes is an FR PVC mesh, and the goal is
    "services with performance characteristics rivaling those of frame
    relay solutions but with the added benefit of being standards-
    based". This library models the FR data plane: variable-length
    frames addressed by DLCI, with the DE (discard eligibility), FECN
    and BECN bits that implement its congestion contract. *)

val header_bytes : int
(** 2 — the Q.922 address field (2-byte default format). *)

val flag_and_fcs_bytes : int
(** 4 — opening/closing flags shared, plus the 2-byte FCS. *)

val overhead_bytes : int
(** Total per-frame overhead: header + flags + FCS (6). *)

type t = {
  dlci : int;  (** data link connection identifier, 16–1007 usable *)
  payload : int;  (** bytes *)
  mutable de : bool;  (** discard eligible (marked by CIR policing) *)
  mutable fecn : bool;  (** forward explicit congestion notification *)
  mutable becn : bool;  (** backward ECN *)
}

val make : dlci:int -> payload:int -> t
(** @raise Invalid_argument for a reserved/out-of-range DLCI or
    non-positive payload. *)

val wire_bytes : t -> int

val pp : Format.formatter -> t -> unit
