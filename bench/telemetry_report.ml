(* Shared rendering of the telemetry registry for experiment
   breakdowns: per-band queue verdicts and per-class sojourn quantiles
   (E4c, E6b). *)

module T = Mvpn_telemetry
module Qos_mapping = Mvpn_core.Qos_mapping

let band_verdicts () =
  let widths = [12; 10; 10; 10; 10] in
  Tables.row widths ["band"; "enqueued"; "dequeued"; "tail-drop"; "red-drop"];
  Tables.rule widths;
  for b = 0 to Qos_mapping.band_count - 1 do
    let v kind =
      string_of_int
        (T.Registry.counter_value (Printf.sprintf "qdisc.band%d.%s" b kind))
    in
    Tables.row widths
      [ Printf.sprintf "%d (%s)" b (Qos_mapping.band_name b);
        v "enqueued"; v "dequeued"; v "tail_drop"; v "red_drop" ]
  done

let sojourn_quantiles () =
  let prefix = "net.sojourn." in
  let classes =
    List.filter_map
      (fun n ->
         let pl = String.length prefix in
         if String.length n > pl && String.sub n 0 pl = prefix then
           Some (String.sub n pl (String.length n - pl))
         else None)
      (T.Registry.names ())
  in
  let widths = [12; 10; 10; 10; 10] in
  Tables.row widths ["class"; "packets"; "p50 ms"; "p99 ms"; "max ms"];
  Tables.rule widths;
  List.iter
    (fun cls ->
       match T.Registry.find_histogram (prefix ^ cls) with
       | None -> ()
       | Some h ->
         Tables.row widths
           [ cls;
             string_of_int (T.Histogram.count h);
             Tables.ms (T.Histogram.p50 h);
             Tables.ms (T.Histogram.p99 h);
             Tables.ms (T.Histogram.max_value h) ])
    classes

(* Run [work] against a zeroed registry with telemetry on, print both
   tables, then put the pre-section values back — the section reads its
   own numbers without wiping what the harness accumulated before it
   (metrics first created inside [work] keep their section values). *)
let section ~title work =
  Tables.heading title;
  let snap = T.Registry.snapshot () in
  T.Registry.reset ();
  T.Control.with_enabled work;
  band_verdicts ();
  Printf.printf "\n";
  sojourn_quantiles ();
  T.Registry.restore snap
