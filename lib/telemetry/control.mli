(** Global telemetry switch.

    All metric mutation ({!Counter.incr}, {!Histogram.observe},
    {!Hop_trace.record}, …) is a no-op while disabled — the check is a
    single ref load, so instrumentation can live on per-packet hot paths
    without a measurable cost when off. Telemetry starts disabled. *)

val enabled : bool ref
(** The raw flag, exposed so metric implementations pay exactly one ref
    load on the disabled path. Prefer {!enable}/{!disable} to mutate. *)

val enable : unit -> unit

val disable : unit -> unit

val is_enabled : unit -> bool

val with_enabled : (unit -> 'a) -> 'a
(** Run with telemetry on, restoring the previous state afterwards. *)

val with_disabled : (unit -> 'a) -> 'a
(** Run with telemetry off (e.g. around a microbenchmark), restoring the
    previous state afterwards. *)
