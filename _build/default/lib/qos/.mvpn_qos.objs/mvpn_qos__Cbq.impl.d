lib/qos/cbq.ml: Array Classifier Float Mvpn_net Printf Token_bucket
