bench/e8_admission.ml: Array Backbone List Mvpn_core Mvpn_mpls Mvpn_sim Printf Tables
