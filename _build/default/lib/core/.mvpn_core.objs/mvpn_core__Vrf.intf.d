lib/core/vrf.mli: Mvpn_net Mvpn_routing Site
