(** Forwarding equivalence classes.

    A FEC names a set of packets that get identical MPLS treatment
    ("flows that have common routing and service level requirements
    typically take the same path", §5). Labels are bound to FECs, never
    to individual flows. *)

type t =
  | Prefix_fec of Mvpn_net.Prefix.t
      (** destination-prefix FEC — what LDP binds hop by hop, including
          the /32 loopbacks of the PEs that BGP next-hops resolve to *)
  | Tunnel_fec of int
      (** a traffic-engineered tunnel, by tunnel id (RSVP-TE) *)
  | Vpn_fec of { vpn : int; prefix : Mvpn_net.Prefix.t }
      (** a customer route within VPN [vpn] — the inner label of the
          RFC 2547 two-level stack *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
