(* Allocation and phase-time probe for the E16 sequential workload.

   Runs the same scenario as bench/e16_parallel.ml's sequential rows
   and prints, for each phase (scenario build, workload arming, engine
   run, SLO replay, registry JSON), the wall time and the minor-heap
   words allocated — plus the headline words-per-event figure for the
   engine phase. Use it to find where the run loop still allocates
   before reaching for a profiler. *)

module Engine = Mvpn_sim.Engine
module Runner = Mvpn_par.Runner
module Scenario = Mvpn_core.Scenario
module Network = Mvpn_core.Network
module Packet = Mvpn_net.Packet
module Registry = Mvpn_telemetry.Registry

let phase name f =
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  Printf.printf "%-16s %8.3f s  %14.0f minor words\n%!" name dt dw;
  (r, dt, dw)

let () =
  let duration =
    match Sys.getenv_opt "MVPN_PROBE_DUR" with
    | Some s -> float_of_string s
    | None -> 40.0
  in
  let cfg =
    { Runner.default_config with
      Runner.shards = 1; pops = 16; vpns = 4; sites_per_vpn = 8;
      load = 0.9; duration; seed = 11;
      backend = Engine.Calendar }
  in
  (* The bench runs with the telemetry switch on (bench/main.ml
     enables it); measure under the same conditions unless
     MVPN_PROBE_NOTELEM asks for the dark path. *)
  Mvpn_telemetry.Control.enable ();
  let prev = Packet.pooling () in
  Packet.set_pooling true;
  let horizon = cfg.Runner.duration +. 5.0 in
  let sc, _, _ =
    phase "build" (fun () ->
        Scenario.build ~backend:cfg.Runner.backend ~pops:cfg.Runner.pops
          ~vpns:cfg.Runner.vpns ~sites_per_vpn:cfg.Runner.sites_per_vpn
          ~seed:cfg.Runner.seed
          (Scenario.Mpls_deployment
             { policy = cfg.Runner.policy; use_te = cfg.Runner.use_te }))
  in
  let (), _, _ =
    phase "arm" (fun () ->
        Scenario.add_mixed_workload ~load:cfg.Runner.load
          ~only:(fun _ _ -> true) sc
          ~pairs:(Scenario.default_pairs sc) ~duration:cfg.Runner.duration)
  in
  (* MVPN_PROBE_SAMPLE=1 turns on a poor-man's statistical profiler:
     an ITIMER_PROF tick captures the OCaml callstack and the top
     frames are tallied after the run. Coarse (handler runs at
     safepoints) but enough to rank hot functions without perf. *)
  let samples : Printexc.raw_backtrace list ref = ref [] in
  if Sys.getenv_opt "MVPN_PROBE_SAMPLE" = Some "1" then begin
    Sys.set_signal Sys.sigprof
      (Sys.Signal_handle
         (fun _ -> samples := Printexc.get_callstack 10 :: !samples));
    ignore
      (Unix.setitimer Unix.ITIMER_PROF
         { Unix.it_interval = 0.001; it_value = 0.001 })
  end;
  let e0 = Engine.processed (Scenario.engine sc) in
  (* MVPN_PROBE_NOTELEM=1 runs the engine with the telemetry switch
     off — the delta against a normal run prices the per-event
     telemetry (hop traces, histograms, SLO observations). *)
  let notelem = Sys.getenv_opt "MVPN_PROBE_NOTELEM" = Some "1" in
  let (), run_dt, run_dw =
    phase "engine-run" (fun () ->
        if notelem then
          Mvpn_telemetry.Control.with_disabled (fun () ->
              Engine.run ~until:horizon (Scenario.engine sc))
        else Engine.run ~until:horizon (Scenario.engine sc))
  in
  let events = Engine.processed (Scenario.engine sc) - e0 in
  let _, _, _ =
    phase "registry-json" (fun () -> Registry.to_json ~trace_events:0 ())
  in
  (* MVPN_PROBE_FULL=1 additionally times a whole
     [Runner.run_sequential] — build + arm + run + SLO replay +
     registry JSON — the exact span the E16 bench's pps figure is
     computed over, so the gap between it and the engine phase above
     prices the replay/report tail. *)
  if Sys.getenv_opt "MVPN_PROBE_FULL" = Some "1" then begin
    let o, full_dt, _ = phase "full-seq" (fun () -> Runner.run_sequential cfg) in
    Printf.printf "full-seq del=%d ev=%d pps %.0f\n"
      o.Runner.delivered o.Runner.events
      (float_of_int o.Runner.delivered /. full_dt)
  end;
  Packet.set_pooling prev;
  let net = Scenario.network sc in
  ignore (Network.topology net);
  Printf.printf "\nevents           %d\n" events;
  Printf.printf "words/event      %.2f\n" (run_dw /. float_of_int events);
  Printf.printf "events/s         %.0f\n" (float_of_int events /. run_dt);
  Printf.printf "pool size        %d\n" (Packet.pool_size ());
  if !samples <> [] then begin
    ignore
      (Unix.setitimer Unix.ITIMER_PROF
         { Unix.it_interval = 0.0; it_value = 0.0 });
    let tally = Hashtbl.create 64 in
    List.iter
      (fun bt ->
         match Printexc.backtrace_slots bt with
         | None -> ()
         | Some slots ->
           (* Skip the handler's own frames; credit the first simulator
              frame below them. *)
           (* Credit the innermost simulator frame; a stdlib frame is
              suffixed with its first non-stdlib caller so e.g.
              Stdlib__Float samples name the call site. *)
           let names =
             Array.to_list slots
             |> List.filter_map Printexc.Slot.name
             |> List.filter
                  (fun n ->
                     not (String.ends_with ~suffix:"Alloc_probe.(fun)" n))
           in
           let key =
             match names with
             | n :: rest when String.starts_with ~prefix:"Stdlib__" n ->
               (match
                  List.find_opt
                    (fun m -> not (String.starts_with ~prefix:"Stdlib__" m))
                    rest
                with
                | Some caller -> n ^ " <- " ^ caller
                | None -> n)
             | n :: _ -> n
             | [] -> ""
           in
           if key <> "" then
             Hashtbl.replace tally key
               (1 + Option.value ~default:0 (Hashtbl.find_opt tally key)))
      !samples;
    let rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    Printf.printf "\n%d profile samples, top frames:\n" (List.length !samples);
    List.iteri
      (fun i (name, n) -> if i < 25 then Printf.printf "%6d  %s\n" n name)
      rows
  end
