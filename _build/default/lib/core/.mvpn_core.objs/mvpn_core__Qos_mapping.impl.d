lib/core/qos_mapping.ml: List Mvpn_net Mvpn_qos
