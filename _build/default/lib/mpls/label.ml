let max_label = (1 lsl 20) - 1

let explicit_null = 0

let implicit_null = 3

let first_unreserved = 16

let is_reserved l = l >= 0 && l < first_unreserved

let valid l = l >= 0 && l <= max_label

module Allocator = struct
  type t = { mutable next : int }

  let create () = { next = first_unreserved }

  let alloc t =
    if t.next > max_label then failwith "Label.Allocator: label space exhausted";
    let l = t.next in
    t.next <- l + 1;
    l

  let allocated t = t.next - first_unreserved
end
