module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Rng = Mvpn_sim.Rng
module Plane = Mvpn_mpls.Plane
module Port = Mvpn_qos.Port
module Network = Mvpn_core.Network
module Telemetry = Mvpn_telemetry

let m_faults = Telemetry.Registry.counter "resilience.chaos.faults"

type fault =
  | Link_flap of { a : int; b : int; at : float; hold : float }
  | Node_down of { node : int; at : float; hold : float }
  | Loss_burst of {
      a : int;
      b : int;
      at : float;
      duration : float;
      loss : float;
    }
  | Corrupt_burst of {
      a : int;
      b : int;
      at : float;
      duration : float;
      corrupt : float;
    }
  | Session_drop of { node : int; at : float }

type plan = fault list

let fault_time = function
  | Link_flap { at; _ } | Node_down { at; _ } | Loss_burst { at; _ }
  | Corrupt_burst { at; _ } | Session_drop { at; _ } -> at

let pp_fault ppf = function
  | Link_flap { a; b; at; hold } ->
    Format.fprintf ppf "@ %.3fs link_flap %d-%d hold %.3fs" at a b hold
  | Node_down { node; at; hold } ->
    Format.fprintf ppf "@ %.3fs node_down %d hold %.3fs" at node hold
  | Loss_burst { a; b; at; duration; loss } ->
    Format.fprintf ppf "@ %.3fs loss_burst %d->%d %.0f%% for %.3fs" at a b
      (100.0 *. loss) duration
  | Corrupt_burst { a; b; at; duration; corrupt } ->
    Format.fprintf ppf "@ %.3fs corrupt_burst %d->%d %.0f%% for %.3fs" at a b
      (100.0 *. corrupt) duration
  | Session_drop { node; at } ->
    Format.fprintf ppf "@ %.3fs session_drop %d" at node

let fault_json f =
  let obj fields =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k v) fields)
    ^ "}"
  in
  (* Lossless float rendering: shortest decimal that parses back to
     the same double, so plan -> JSON -> plan is the identity and a
     parsed plan replays byte-identically. *)
  let fl x =
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x
  in
  match f with
  | Link_flap { a; b; at; hold } ->
    obj
      [ ("kind", {|"link_flap"|}); ("at", fl at); ("a", string_of_int a);
        ("b", string_of_int b); ("hold", fl hold) ]
  | Node_down { node; at; hold } ->
    obj
      [ ("kind", {|"node_down"|}); ("at", fl at);
        ("node", string_of_int node); ("hold", fl hold) ]
  | Loss_burst { a; b; at; duration; loss } ->
    obj
      [ ("kind", {|"loss_burst"|}); ("at", fl at); ("a", string_of_int a);
        ("b", string_of_int b); ("duration", fl duration); ("loss", fl loss) ]
  | Corrupt_burst { a; b; at; duration; corrupt } ->
    obj
      [ ("kind", {|"corrupt_burst"|}); ("at", fl at); ("a", string_of_int a);
        ("b", string_of_int b); ("duration", fl duration);
        ("corrupt", fl corrupt) ]
  | Session_drop { node; at } ->
    obj
      [ ("kind", {|"session_drop"|}); ("at", fl at);
        ("node", string_of_int node) ]

(* Pareto hold times (shape 1.5, scale 50 ms): most faults are blips,
   a few hold long enough to force full reconvergence — the tail is
   the interesting part. Capped at half the run so every fault heals
   on stage. *)
let sample_hold rng ~duration =
  Float.min (Rng.pareto rng ~shape:1.5 ~scale:0.05) (0.5 *. duration)

let random_plan ?(events = 12) ?(nodes = []) ~rng ~links ~duration () =
  if links = [] then invalid_arg "Chaos.random_plan: no links";
  let link () =
    let (a, b) = List.nth links (Rng.int rng (List.length links)) in
    (a, b)
  in
  let faults = ref [] in
  for _ = 1 to events do
    let at = Rng.float rng duration in
    let roll = Rng.int rng 100 in
    let f =
      if roll < 45 || (roll >= 75 && nodes = []) then
        let a, b = link () in
        Link_flap { a; b; at; hold = sample_hold rng ~duration }
      else if roll < 60 then
        let a, b = link () in
        Loss_burst
          { a; b; at;
            duration = sample_hold rng ~duration;
            loss = 0.05 +. 0.4 *. Rng.uniform rng }
      else if roll < 75 then
        let a, b = link () in
        Corrupt_burst
          { a; b; at;
            duration = sample_hold rng ~duration;
            corrupt = 0.05 +. 0.25 *. Rng.uniform rng }
      else if roll < 90 then
        let node = List.nth nodes (Rng.int rng (List.length nodes)) in
        Session_drop { node; at }
      else
        let node = List.nth nodes (Rng.int rng (List.length nodes)) in
        Node_down { node; at; hold = sample_hold rng ~duration }
    in
    faults := f :: !faults
  done;
  List.stable_sort
    (fun f g -> compare (fault_time f, f) (fault_time g, g))
    !faults

let plan_json plan =
  "[" ^ String.concat "," (List.map fault_json plan) ^ "]"

(* A minimal parser for exactly the shape [plan_json] emits — an array
   of flat objects whose values are numbers or strings. Floats are
   printed losslessly above, so [plan_of_json (plan_json p) = p] and a
   parsed plan replays byte-identically. *)
let plan_of_json s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg =
    failwith (Printf.sprintf "Chaos.plan_of_json: %s at offset %d" msg !pos)
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let peek () =
    skip_ws ();
    if !pos < n then Some s.[!pos] else None
  in
  let expect c =
    if peek () = Some c then incr pos
    else error (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then error "truncated escape";
          (match s.[!pos] with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | 'n' -> Buffer.add_char b '\n'
           | c -> error (Printf.sprintf "unsupported escape '\\%c'" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_scalar () =
    match peek () with
    | Some '"' -> `S (parse_string ())
    | _ ->
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false)
      do
        incr pos
      done;
      if !pos = start then error "expected a value";
      `N (String.sub s start (!pos - start))
  in
  let parse_obj () =
    expect '{';
    let fields = ref [] in
    (match peek () with
     | Some '}' -> incr pos
     | _ ->
       let rec go () =
         let k = parse_string () in
         expect ':';
         fields := (k, parse_scalar ()) :: !fields;
         match peek () with
         | Some ',' ->
           incr pos;
           go ()
         | Some '}' -> incr pos
         | _ -> error "expected ',' or '}'"
       in
       go ());
    List.rev !fields
  in
  let str fields k =
    match List.assoc_opt k fields with
    | Some (`S v) -> v
    | _ -> error (Printf.sprintf "missing string field %S" k)
  in
  let num fields k =
    match List.assoc_opt k fields with
    | Some (`N v) ->
      (try float_of_string v
       with Failure _ -> error (Printf.sprintf "bad number in %S" k))
    | _ -> error (Printf.sprintf "missing numeric field %S" k)
  in
  let int_field fields k =
    match List.assoc_opt k fields with
    | Some (`N v) ->
      (try int_of_string v
       with Failure _ -> error (Printf.sprintf "bad integer in %S" k))
    | _ -> error (Printf.sprintf "missing integer field %S" k)
  in
  let fault_of fields =
    match str fields "kind" with
    | "link_flap" ->
      Link_flap
        { a = int_field fields "a"; b = int_field fields "b";
          at = num fields "at"; hold = num fields "hold" }
    | "node_down" ->
      Node_down
        { node = int_field fields "node"; at = num fields "at";
          hold = num fields "hold" }
    | "loss_burst" ->
      Loss_burst
        { a = int_field fields "a"; b = int_field fields "b";
          at = num fields "at"; duration = num fields "duration";
          loss = num fields "loss" }
    | "corrupt_burst" ->
      Corrupt_burst
        { a = int_field fields "a"; b = int_field fields "b";
          at = num fields "at"; duration = num fields "duration";
          corrupt = num fields "corrupt" }
    | "session_drop" ->
      Session_drop { node = int_field fields "node"; at = num fields "at" }
    | k -> error (Printf.sprintf "unknown fault kind %S" k)
  in
  expect '[';
  let faults = ref [] in
  (match peek () with
   | Some ']' -> incr pos
   | _ ->
     let rec go () =
       faults := fault_of (parse_obj ()) :: !faults;
       match peek () with
       | Some ',' ->
         incr pos;
         go ()
       | Some ']' -> incr pos
       | _ -> error "expected ',' or ']'"
     in
     go ());
  skip_ws ();
  if !pos <> n then error "trailing input";
  List.rev !faults

(* Topology-only storms for sharded soaks: link flaps, session drops
   and node outages replicate byte-identically across shard replicas,
   while per-packet loss/corrupt bursts key their verdicts on packet
   uids — whose allocation order is nondeterministic across domains —
   and so stay sequential-only (see Packet.uid_counter). *)
let random_topology_plan ?(events = 12) ~nodes ~rng ~links ~duration () =
  if links = [] then invalid_arg "Chaos.random_topology_plan: no links";
  if nodes = [] then invalid_arg "Chaos.random_topology_plan: no nodes";
  let faults = ref [] in
  for _ = 1 to events do
    let at = Rng.float rng duration in
    let roll = Rng.int rng 100 in
    let f =
      if roll < 60 then
        let a, b = List.nth links (Rng.int rng (List.length links)) in
        Link_flap { a; b; at; hold = sample_hold rng ~duration }
      else if roll < 85 then
        let node = List.nth nodes (Rng.int rng (List.length nodes)) in
        Session_drop { node; at }
      else
        let node = List.nth nodes (Rng.int rng (List.length nodes)) in
        Node_down { node; at; hold = sample_hold rng ~duration }
    in
    faults := f :: !faults
  done;
  List.stable_sort
    (fun f g -> compare (fault_time f, f) (fault_time g, g))
    !faults

(* Per-burst fault seed, derived from the burst coordinates only — the
   same plan always arms ports with the same seeds, independent of how
   the plan was produced. *)
let burst_seed a b at =
  (((a * 1_000_003) + b) * 8191) lxor int_of_float (at *. 1e6)

let record ~fault ~a ~b ~param =
  Telemetry.Counter.incr m_faults;
  if !Telemetry.Control.enabled then
    Telemetry.Event_log.record
      (Telemetry.Registry.events ())
      (Telemetry.Event_log.Fault_injected { fault; a; b; param })

let schedule net plan =
  let engine = Network.engine net in
  let topo = Network.topology net in
  let set_node_links node up =
    List.iter
      (fun (nb, _) -> Topology.set_duplex_state topo node nb up)
      (Topology.neighbors topo node)
  in
  let port_of a b =
    match Topology.find_link topo a b with
    | Some l -> Some (Network.port net ~link_id:l.Topology.id)
    | None -> None
  in
  List.iter
    (fun f ->
       match f with
       | Link_flap { a; b; at; hold } ->
         Engine.schedule_at engine ~time:at (fun () ->
             record ~fault:"link_flap" ~a ~b ~param:hold;
             Topology.set_duplex_state topo a b false);
         Engine.schedule_at engine ~time:(at +. hold) (fun () ->
             Topology.set_duplex_state topo a b true)
       | Node_down { node; at; hold } ->
         Engine.schedule_at engine ~time:at (fun () ->
             record ~fault:"node_down" ~a:node ~b:(-1) ~param:hold;
             set_node_links node false);
         Engine.schedule_at engine ~time:(at +. hold) (fun () ->
             set_node_links node true)
       | Loss_burst { a; b; at; duration; loss } ->
         Engine.schedule_at engine ~time:at (fun () ->
             record ~fault:"loss_burst" ~a ~b ~param:loss;
             match port_of a b with
             | Some p ->
               Port.set_fault p ~loss ~seed:(burst_seed a b at) ()
             | None -> ());
         Engine.schedule_at engine ~time:(at +. duration) (fun () ->
             match port_of a b with
             | Some p -> Port.clear_fault p
             | None -> ())
       | Corrupt_burst { a; b; at; duration; corrupt } ->
         Engine.schedule_at engine ~time:at (fun () ->
             record ~fault:"corrupt_burst" ~a ~b ~param:corrupt;
             match port_of a b with
             | Some p ->
               Port.set_fault p ~corrupt ~seed:(burst_seed a b at) ()
             | None -> ());
         Engine.schedule_at engine ~time:(at +. duration) (fun () ->
             match port_of a b with
             | Some p -> Port.clear_fault p
             | None -> ())
       | Session_drop { node; at } ->
         Engine.schedule_at engine ~time:at (fun () ->
             record ~fault:"session_drop" ~a:node ~b:(-1) ~param:0.0;
             Plane.clear_ftn (Network.plane net) node))
    plan
