lib/routing/mpbgp.mli: Mvpn_net
