(** Cipher cost model and a toy Feistel cipher.

    The paper's security concern (§2.3/§3.1) has two measurable halves:
    DES/3DES processing is expensive ("users want to know that security
    gear will not slow network connections"), and encryption hides the
    headers QoS needs. The cost model captures the first with per-packet
    and per-byte latencies calibrated to the well-known software ratio
    (3DES ≈ 3× DES); the Feistel network makes the second real — an
    encrypted byte string genuinely reveals nothing until decrypted.

    Substitution note (DESIGN.md): the real DES S-boxes are irrelevant to
    both claims, so the block transform is a generic 16-round Feistel
    keyed by a 64-bit key. It is NOT cryptographically secure and exists
    to make "the classifier cannot read this" true by construction. *)

type cipher = Null | Des | Des3

val cipher_to_string : cipher -> string

val processing_delay : cipher -> bytes:int -> float
(** Seconds of CPU per packet: per-packet overhead plus per-byte cost.
    [Null] is free; [Des3] costs three times [Des] per byte. Calibrated
    to ≈20 MB/s DES on the era's CPE hardware. *)

val throughput_bps : cipher -> float
(** Asymptotic crypto throughput implied by the per-byte cost. *)

val encrypt_block : key:int64 -> int64 -> int64
val decrypt_block : key:int64 -> int64 -> int64
(** 16-round Feistel permutation on a 64-bit block; [decrypt_block] is
    the exact inverse. *)

val encrypt_bytes : key:int64 -> Bytes.t -> Bytes.t
(** ECB over 8-byte blocks, zero-padded to a block multiple (output may
    be longer than the input). *)

val decrypt_bytes : key:int64 -> Bytes.t -> Bytes.t
(** Inverse of {!encrypt_bytes} up to the zero padding.
    @raise Invalid_argument if the length is not a block multiple. *)
