lib/frelay/pvc.ml: Float Frame
