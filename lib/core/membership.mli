(** VPN membership and discovery (§4.1).

    "Members can join and leave the VPN service network and those
    changes need to be known by all remaining members. [...] The
    discovery of membership in one VPN must not allow members of other
    VPNs to be discovered."

    The registry tracks which sites belong to which VPN and models the
    two discovery mechanisms the paper lists, differing in control
    traffic: [Directory] (client–server: a join costs one registration
    plus one notification per existing member) and [Flooded]
    (piggybacked on routing: a join is advertised to every PE in the
    provider network regardless of VPN — cheaper to run, noisier). *)

type mechanism = Directory | Flooded

type t

val create : ?mechanism:mechanism -> pe_count:int -> unit -> t

val join : t -> Site.t -> unit
(** @raise Invalid_argument if the site id is already a member. *)

val join_all : t -> Site.t list -> unit
(** Bulk join for mass provisioning, in list order. The notification
    bill is identical to joining one at a time ([messages] grows by
    exactly the per-join sum — pinned by a regression test), but the
    batch is validated up front and rejected atomically: on any
    duplicate — against existing members or within the batch — no site
    has joined.
    @raise Invalid_argument on the first duplicate site id. *)

val leave : t -> site_id:int -> bool
(** [false] if the site was not a member. *)

val members : t -> vpn:int -> Site.t list
(** Sites of one VPN, in join order. *)

val discover : t -> asking:Site.t -> Site.t list
(** What a member may learn: its own VPN's other members, never anyone
    else's (the isolation property, enforced by construction and
    verified by tests). *)

val vpn_ids : t -> int list

val site_count : t -> int

val messages : t -> int
(** Cumulative discovery/notification messages — the E3 metric. *)

val pe_attachment_count : t -> pe:int -> int
(** Number of member sites attached at one PE — per-PE provisioning
    state. *)
