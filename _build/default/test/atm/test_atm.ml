open Mvpn_atm

(* --- Cell --------------------------------------------------------------- *)

let test_cell_constants () =
  Alcotest.(check int) "53 bytes" 53 Cell.cell_bytes;
  Alcotest.(check int) "5 header" 5 Cell.header_bytes;
  Alcotest.(check int) "48 payload" 48 Cell.payload_bytes

let test_cell_validation () =
  Alcotest.check_raises "vpi range"
    (Invalid_argument "Cell.make: vpi 256 out of range") (fun () ->
      ignore
        (Cell.make ~vpi:256 ~vci:1 ~frame_id:0 ~index:0 ~last_of_frame:true
           ()));
  Alcotest.check_raises "vci range"
    (Invalid_argument "Cell.make: vci 65536 out of range") (fun () ->
      ignore
        (Cell.make ~vpi:0 ~vci:65536 ~frame_id:0 ~index:0
           ~last_of_frame:true ()))

(* --- Aal5 --------------------------------------------------------------- *)

let test_aal5_cell_counts () =
  (* 40 + 8 = 48 -> 1 cell; 41 + 8 = 49 -> 2 cells. *)
  Alcotest.(check int) "exact fit" 1 (Aal5.cells_for ~payload:40);
  Alcotest.(check int) "one over" 2 (Aal5.cells_for ~payload:41);
  (* 1500-byte packet: 1508/48 = 31.4 -> 32 cells. *)
  Alcotest.(check int) "mtu frame" 32 (Aal5.cells_for ~payload:1500);
  Alcotest.(check int) "wire bytes" (32 * 53) (Aal5.wire_bytes ~payload:1500)

let test_aal5_cell_tax () =
  (* 1500B: 1696 wire -> ~11.6% tax. 40B (voice): 53 wire -> 24.5%. *)
  let tax1500 = Aal5.overhead_fraction ~payload:1500 in
  let tax40 = Aal5.overhead_fraction ~payload:40 in
  Alcotest.(check bool) "mtu tax ~11-12%" true
    (tax1500 > 0.11 && tax1500 < 0.12);
  Alcotest.(check bool) "small packets taxed harder" true (tax40 > tax1500)

let test_aal5_segment_shape () =
  let cells = Aal5.segment ~vpi:1 ~vci:100 ~frame_id:7 ~payload:1500 in
  Alcotest.(check int) "count" 32 (List.length cells);
  let last = List.nth cells 31 in
  Alcotest.(check bool) "eom flagged" true last.Cell.last_of_frame;
  Alcotest.(check bool) "only the last" true
    (List.for_all
       (fun (c : Cell.t) ->
          c.Cell.last_of_frame = (c.Cell.index = 31))
       cells);
  Alcotest.(check bool) "indices sequential" true
    (List.mapi (fun i (c : Cell.t) -> c.Cell.index = i) cells
     |> List.for_all Fun.id)

let test_reassembler_clean_frames () =
  let r = Aal5.Reassembler.create () in
  let feed frame_id =
    List.iter
      (fun c -> ignore (Aal5.Reassembler.push r c))
      (Aal5.segment ~vpi:0 ~vci:1 ~frame_id ~payload:500)
  in
  feed 1;
  feed 2;
  Alcotest.(check int) "two frames" 2 (Aal5.Reassembler.frames_ok r);
  Alcotest.(check int) "no corruption" 0 (Aal5.Reassembler.frames_corrupt r)

let test_reassembler_one_lost_cell_kills_frame () =
  let r = Aal5.Reassembler.create () in
  let cells = Aal5.segment ~vpi:0 ~vci:1 ~frame_id:1 ~payload:1500 in
  (* Drop cell #10. *)
  List.iteri
    (fun i c -> if i <> 10 then ignore (Aal5.Reassembler.push r c))
    cells;
  Alcotest.(check int) "frame corrupt" 1 (Aal5.Reassembler.frames_corrupt r);
  Alcotest.(check int) "nothing delivered" 0 (Aal5.Reassembler.frames_ok r)

let test_reassembler_lost_eom () =
  let r = Aal5.Reassembler.create () in
  let frame1 = Aal5.segment ~vpi:0 ~vci:1 ~frame_id:1 ~payload:500 in
  (* Lose the last (EOM) cell of frame 1, then send frame 2 cleanly. *)
  List.iteri
    (fun i c ->
       if i < List.length frame1 - 1 then
         ignore (Aal5.Reassembler.push r c))
    frame1;
  List.iter
    (fun c -> ignore (Aal5.Reassembler.push r c))
    (Aal5.segment ~vpi:0 ~vci:1 ~frame_id:2 ~payload:500);
  Alcotest.(check int) "frame1 corrupt" 1
    (Aal5.Reassembler.frames_corrupt r);
  Alcotest.(check int) "frame2 ok" 1 (Aal5.Reassembler.frames_ok r)

let reassembler_loss_amplification =
  QCheck.Test.make
    ~name:"random cell loss never yields a frame with missing cells"
    ~count:100
    QCheck.(pair small_int (int_range 1 9000))
    (fun (seed, payload) ->
       let rng = Mvpn_sim.Rng.create (seed + 1) in
       let r = Aal5.Reassembler.create () in
       let sent = ref 0 and delivered_cells = ref 0 in
       for frame_id = 1 to 20 do
         incr sent;
         List.iter
           (fun c ->
              if not (Mvpn_sim.Rng.bool rng 0.05) then
                match Aal5.Reassembler.push r c with
                | Aal5.Reassembler.Frame { cells; _ } ->
                  delivered_cells := !delivered_cells + cells
                | Aal5.Reassembler.Incomplete
                | Aal5.Reassembler.Corrupt _ -> ())
           (Aal5.segment ~vpi:0 ~vci:1 ~frame_id ~payload)
       done;
       (* Delivered frames are exactly whole: cells accounted = frames *
          cells_for payload. *)
       !delivered_cells
       = Aal5.Reassembler.frames_ok r * Aal5.cells_for ~payload)

let aal5_wire_bounds =
  QCheck.Test.make ~name:"aal5 wire size bounds and monotonicity" ~count:300
    QCheck.(int_range 1 9000)
    (fun payload ->
       let wire = Aal5.wire_bytes ~payload in
       wire >= payload + Aal5.trailer_bytes
       && wire <= payload + Aal5.trailer_bytes + Cell.payload_bytes - 1
                  + (Aal5.cells_for ~payload * Cell.header_bytes)
       && Aal5.cells_for ~payload:(payload + 48) = Aal5.cells_for ~payload + 1)

(* --- Switch ------------------------------------------------------------- *)

let test_switch_cross_connect () =
  let sw = Switch.create ~line_rate_bps:155e6 in
  (match
     Switch.admit sw ~in_vpi:1 ~in_vci:100 ~out_vpi:2 ~out_vci:200
       ~next_hop:9 (Switch.Cbr { pcr = 1000.0 })
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "admit: %s" e);
  let c = Cell.make ~vpi:1 ~vci:100 ~frame_id:0 ~index:0 ~last_of_frame:true () in
  (match Switch.switch sw c with
   | Some (c', nh) ->
     Alcotest.(check int) "vpi rewritten" 2 c'.Cell.vpi;
     Alcotest.(check int) "vci rewritten" 200 c'.Cell.vci;
     Alcotest.(check int) "next hop" 9 nh
   | None -> Alcotest.fail "switching failed");
  Alcotest.(check bool) "unknown vc dropped" true
    (Switch.switch sw
       (Cell.make ~vpi:9 ~vci:9 ~frame_id:0 ~index:0 ~last_of_frame:true ())
     = None)

let test_switch_admission_limits () =
  (* Line rate 1.06 Mb/s = 2500 cells/s. *)
  let sw = Switch.create ~line_rate_bps:(2500.0 *. 53.0 *. 8.0) in
  (match
     Switch.admit sw ~in_vpi:0 ~in_vci:1 ~out_vpi:0 ~out_vci:2 ~next_hop:1
       (Switch.Cbr { pcr = 2000.0 })
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "first: %s" e);
  (match
     Switch.admit sw ~in_vpi:0 ~in_vci:3 ~out_vpi:0 ~out_vci:4 ~next_hop:1
       (Switch.Cbr { pcr = 1000.0 })
   with
   | Ok () -> Alcotest.fail "should refuse: over line rate"
   | Error _ -> ());
  (* VBR reserves only SCR, so statistical gain admits more. *)
  (match
     Switch.admit sw ~in_vpi:0 ~in_vci:3 ~out_vpi:0 ~out_vci:4 ~next_hop:1
       (Switch.Vbr { scr = 400.0; pcr = 1500.0; mbs = 100 })
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "vbr: %s" e);
  (* UBR always fits. *)
  (match
     Switch.admit sw ~in_vpi:0 ~in_vci:5 ~out_vpi:0 ~out_vci:6 ~next_hop:1
       Switch.Ubr
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "ubr: %s" e);
  Alcotest.(check int) "three vcs" 3 (Switch.vc_count sw);
  Alcotest.(check bool) "reservation fraction sane" true
    (Switch.reserved_fraction sw > 0.9
     && Switch.reserved_fraction sw <= 1.0)

let test_switch_release () =
  let sw = Switch.create ~line_rate_bps:155e6 in
  ignore
    (Switch.admit sw ~in_vpi:0 ~in_vci:1 ~out_vpi:0 ~out_vci:2 ~next_hop:1
       (Switch.Cbr { pcr = 1000.0 }));
  Alcotest.(check bool) "released" true (Switch.release sw ~in_vpi:0 ~in_vci:1);
  Alcotest.(check (float 1e-9)) "reservation returned" 0.0
    (Switch.reserved_fraction sw);
  Alcotest.(check bool) "double release" false
    (Switch.release sw ~in_vpi:0 ~in_vci:1)

let test_switch_duplicate_and_validation () =
  let sw = Switch.create ~line_rate_bps:155e6 in
  ignore
    (Switch.admit sw ~in_vpi:0 ~in_vci:1 ~out_vpi:0 ~out_vci:2 ~next_hop:1
       Switch.Ubr);
  (match
     Switch.admit sw ~in_vpi:0 ~in_vci:1 ~out_vpi:3 ~out_vci:4 ~next_hop:1
       Switch.Ubr
   with
   | Ok () -> Alcotest.fail "duplicate admitted"
   | Error _ -> ());
  match
    Switch.admit sw ~in_vpi:0 ~in_vci:9 ~out_vpi:0 ~out_vci:9 ~next_hop:1
      (Switch.Vbr { scr = 100.0; pcr = 50.0; mbs = 10 })
  with
  | Ok () -> Alcotest.fail "invalid vbr admitted"
  | Error _ -> ()

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "atm"
    [ ("cell",
       [ Alcotest.test_case "constants" `Quick test_cell_constants;
         Alcotest.test_case "validation" `Quick test_cell_validation ]);
      ("aal5",
       [ Alcotest.test_case "cell counts" `Quick test_aal5_cell_counts;
         Alcotest.test_case "cell tax" `Quick test_aal5_cell_tax;
         Alcotest.test_case "segment shape" `Quick test_aal5_segment_shape;
         Alcotest.test_case "clean frames" `Quick
           test_reassembler_clean_frames;
         Alcotest.test_case "one lost cell kills frame" `Quick
           test_reassembler_one_lost_cell_kills_frame;
         Alcotest.test_case "lost eom" `Quick test_reassembler_lost_eom;
         qt reassembler_loss_amplification;
         qt aal5_wire_bounds ]);
      ("switch",
       [ Alcotest.test_case "cross connect" `Quick
           test_switch_cross_connect;
         Alcotest.test_case "admission limits" `Quick
           test_switch_admission_limits;
         Alcotest.test_case "release" `Quick test_switch_release;
         Alcotest.test_case "duplicates and validation" `Quick
           test_switch_duplicate_and_validation ]) ]
