lib/routing/spf.ml: Array Float Int List Mvpn_sim Printf
