lib/qos/classifier.ml: List Mvpn_net
