(** Conservative synchronization for the sharded runner.

    {b Lookahead mode} (every cut link has positive propagation delay):
    shard [i] may safely simulate every event strictly before

    {[ bound(i) = min(horizon,
                      min over inbound cut sources j of
                        published(j) + min_delay(j → i)) ]}

    because any packet shard [j] has not yet sent toward [i] was sent
    at or after [published(j)] and cannot arrive before
    [published(j) + min_delay(j → i)]. Each shard repeatedly waits
    until its bound exceeds what it has completed, ingests, runs to the
    bound ({!Mvpn_sim.Engine.run_before}), and publishes the bound. The
    shard with the globally minimal publication always has
    [bound > published] (delays are positive), so some shard can always
    advance — no deadlock, no null messages.

    {b Barrier mode} (some cut link has zero delay — zero lookahead):
    synchronous epochs. All shards rendezvous, exchange their next
    pending event times, and everyone runs inclusively to the global
    minimum; repeat until the minimum passes the horizon.

    All state is guarded by one mutex + condition; publications
    broadcast so waiting shards re-evaluate their bounds. *)

type t

val create : shards:int -> horizon:float -> inbound:(int * float) list array -> t
(** [inbound.(i)] lists [(source shard j, min propagation delay j→i)]
    over the cut links into shard [i]. A shard with no inbound entries
    is bounded only by the horizon.
    @raise Invalid_argument if [shards < 1] or lengths disagree. *)

val horizon : t -> float

val lookahead : t -> bool
(** True when every inbound delay is positive (lookahead mode). *)

val next_bound : t -> shard:int -> completed:float -> float
(** Lookahead mode: block until [bound(shard) > completed], then return
    the bound (≤ horizon). Returns immediately with the horizon once
    every inbound source has published the horizon. *)

val publish : t -> shard:int -> float -> unit
(** Announce that [shard] has completed every event strictly before the
    given time (monotone; clamped up). Wakes waiting shards. *)

val barrier : t -> unit
(** Rendezvous of all shards (reusable, sense-reversing). *)

val min_next : t -> shard:int -> float -> float
(** Barrier mode: contribute this shard's next pending event time
    (or [infinity]) and return the minimum over all shards. Contains
    two internal barriers; every shard must call it the same number of
    times. *)
