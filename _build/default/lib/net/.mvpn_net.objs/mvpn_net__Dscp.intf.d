lib/net/dscp.mli: Format
