(** Security association: one direction of an IPSec tunnel.

    Carries the SPI, cipher, key, outbound sequence counter, inbound
    anti-replay window and usage accounting. A tunnel owns two SAs, one
    per direction. *)

type t

val create : spi:int -> cipher:Crypto.cipher -> key:int64 -> t

val spi : t -> int
val cipher : t -> Crypto.cipher
val key : t -> int64

val next_seq : t -> int
(** Outbound: the next ESP sequence number (starts at 1, increments). *)

val check_replay : t -> int -> Replay.verdict
(** Inbound: run the anti-replay window. *)

val account : t -> bytes:int -> unit
val bytes_processed : t -> int
val packets_processed : t -> int
