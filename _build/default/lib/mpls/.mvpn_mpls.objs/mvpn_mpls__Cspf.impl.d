lib/mpls/cspf.ml: List Mvpn_routing Mvpn_sim
