(** The partitioned parallel simulation runner.

    Spawns one domain per shard, each holding a full replica of the
    scenario but executing only its owned nodes' events
    (see {!Shard}), synchronized conservatively through {!Clock} and
    exchanging cut-link packets through {!Exchange}. After the domains
    join, per-shard telemetry snapshots merge associatively into the
    calling domain's registry cells, post-horizon cross-shard packets
    are re-scheduled for bookkeeping parity, and the time-sorted merge
    of every shard's packet fates replays into one SLO engine.

    The headline invariant: for a given config, {!run_parallel} at any
    shard count and {!run_sequential} produce identical delivered /
    dropped / scheduled / executed-event totals, identical per-class
    sent / received sums and identical SLO conformance — partitioning
    changes wall-clock, not results.

    Telemetry must be enabled ({!Mvpn_telemetry.Control.enable}) around
    either entry point; totals are counted through the registry. *)

type config = {
  shards : int;  (** requested; clamped to the region count *)
  pops : int;
  vpns : int;
  sites_per_vpn : int;
  policy : Mvpn_core.Qos_mapping.policy;
  use_te : bool;
  load : float;
  duration : float;  (** workload seconds; the engines run 5 s longer *)
  seed : int;
  core_delay : float option;
      (** POP–POP propagation override; [Some 0.] forces the
          epoch-barrier fallback *)
  backend : Mvpn_sim.Engine.backend;
      (** event-queue backend for every replica engine (default
          {!Mvpn_sim.Engine.Calendar}); results are backend-invariant,
          wall-clock is not *)
  sample_interval : float option;
      (** when set, arm a {!Mvpn_core.Sampler} timeline sampler at this
          sim-second interval — on the sequential replica, and on every
          shard replica of a parallel run, whose sim-scope series merge
          to the sequential series byte-for-byte (default [None]) *)
  profile : bool;
      (** enable the engine's dispatch-cost ledger and publish
          [sim.profile.*] gauges after the run; {!run_sequential} only
          — shard wall times are not meaningfully mergeable (default
          [false]) *)
  prepare_replica : (Mvpn_core.Scenario.t -> unit) option;
      (** run on every replica — the sequential scenario, and each
          shard's — after the timeline sampler is armed and before the
          workload: the soak driver's hook for arming chaos storms and
          the invariant auditor identically everywhere. Must schedule
          the same events in the same order on every replica (e.g.
          {!Mvpn_resilience.Chaos.random_topology_plan}-based storms,
          never uid-dependent faults), or determinism across shard
          counts is forfeit (default [None]) *)
  diurnal : int option;
      (** [Some segments] replaces the flat mixed workload with
          {!Mvpn_core.Scenario.add_diurnal_workload}: a raised-cosine
          day/night load envelope peaking at [load], in [segments]
          windows over [duration] (default [None]) *)
}

val default_config : config
(** The [mvpn] demo defaults: 4 shards, 12 POPs, 2 VPNs × 4 sites,
    DiffServ policy, load 0.9, 30 s, seed 11. *)

type outcome = {
  shards : int;  (** effective shard count *)
  sizes : int array;  (** nodes owned per shard *)
  cut_links : int;
  lookahead : bool;  (** false when the barrier fallback ran *)
  delivered : int;
  dropped : int;
  events : int;  (** executed simulation events, all shards *)
  scheduled : int;  (** scheduled events, including leftover parity *)
  exchanged : int;  (** packets carried across shards *)
  leftover : int;  (** cross-shard packets arriving past the horizon *)
  overflow : int;  (** exchange soft-bound overflows *)
  classes : (string * int * int) list;
      (** per service class: label, sent, received *)
  slo : Mvpn_telemetry.Slo.t;  (** replayed conformance engine *)
  registry_json : string;
      (** merged registry snapshot, captured {e before} the SLO replay
          so the counters object matches a sequential [mvpn stats] run
          byte for byte *)
  horizon : float;
}

val run_parallel : config -> outcome
(** @raise Invalid_argument if [config.shards < 1]. *)

val run_sequential : config -> outcome
(** Single-domain baseline on the identical build/workload path
    (ignores [config.shards]); totals are diffed against the registry
    state at entry, so a dirty registry does not skew them. *)
