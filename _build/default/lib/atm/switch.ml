type category =
  | Cbr of { pcr : float }
  | Vbr of { scr : float; pcr : float; mbs : int }
  | Ubr

type cross_connect = {
  out_vpi : int;
  out_vci : int;
  next_hop : int;
  category : category;
}

type t = {
  line_cell_rate : float;
  table : (int * int, cross_connect) Hashtbl.t;
  mutable reserved : float;  (* cells per second *)
}

let create ~line_rate_bps =
  if line_rate_bps <= 0.0 then
    invalid_arg "Switch.create: line rate must be positive";
  { line_cell_rate = line_rate_bps /. (float_of_int Cell.cell_bytes *. 8.0);
    table = Hashtbl.create 64; reserved = 0.0 }

let line_cell_rate t = t.line_cell_rate

let reservation_of = function
  | Cbr { pcr } -> pcr
  | Vbr { scr; _ } -> scr
  | Ubr -> 0.0

let validate_category = function
  | Cbr { pcr } ->
    if pcr <= 0.0 then Error "CBR peak cell rate must be positive" else Ok ()
  | Vbr { scr; pcr; mbs } ->
    if scr <= 0.0 then Error "VBR sustained cell rate must be positive"
    else if pcr < scr then Error "VBR peak below sustained rate"
    else if mbs < 1 then Error "VBR burst size must be at least 1"
    else Ok ()
  | Ubr -> Ok ()

let admit t ~in_vpi ~in_vci ~out_vpi ~out_vci ~next_hop category =
  match validate_category category with
  | Error _ as e -> e
  | Ok () ->
    if Hashtbl.mem t.table (in_vpi, in_vci) then
      Error
        (Printf.sprintf "VC %d/%d already cross-connected" in_vpi in_vci)
    else begin
      let demand = reservation_of category in
      if t.reserved +. demand > t.line_cell_rate then
        Error "insufficient line capacity"
      else begin
        t.reserved <- t.reserved +. demand;
        Hashtbl.replace t.table (in_vpi, in_vci)
          { out_vpi; out_vci; next_hop; category };
        Ok ()
      end
    end

let release t ~in_vpi ~in_vci =
  match Hashtbl.find_opt t.table (in_vpi, in_vci) with
  | None -> false
  | Some cc ->
    t.reserved <- Float.max 0.0 (t.reserved -. reservation_of cc.category);
    Hashtbl.remove t.table (in_vpi, in_vci);
    true

let switch t (c : Cell.t) =
  match Hashtbl.find_opt t.table (c.Cell.vpi, c.Cell.vci) with
  | None -> None
  | Some cc ->
    Some
      ( { c with Cell.vpi = cc.out_vpi; vci = cc.out_vci }, cc.next_hop )

let reserved_fraction t =
  if t.line_cell_rate <= 0.0 then 0.0 else t.reserved /. t.line_cell_rate

let vc_count t = Hashtbl.length t.table
