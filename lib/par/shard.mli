(** One domain's slice of the partitioned run.

    A shard holds a {e full replica} of the scenario — topology, FIBs,
    label bindings and flow registrations are all built identically from
    the same seed in every domain — but only {e executes} the events of
    the nodes it owns: traffic sources are armed solely for the site
    pairs whose sending CE the shard owns, and a packet reaching a cut
    link leaves through {!Exchange} instead of the port's local
    propagation event. Replication keeps every replica's control plane
    and RNG substreams byte-identical to the sequential run's, which is
    what makes the merged counters independent of the shard count.

    All functions must be called from the shard's own domain (telemetry
    cells are domain-local); {!collect}'s result is read by the runner
    after joining the domain. *)

type fate = {
  f_time : float;
  f_vpn : int;
  f_band : int;
  f_dropped : bool;
  f_latency : float;  (** 0 for drops *)
  f_seq : int;  (** per-shard observation order *)
}

type result = {
  r_id : int;
  r_snapshot : Mvpn_telemetry.Registry.snapshot;
      (** this domain's metric cells *)
  r_fates : fate list;  (** in observation order *)
  r_leftover : Exchange.msg list;
      (** cross-shard packets arriving after the horizon, in
          deterministic {!ingest} order *)
  r_sent : int;  (** messages pushed to other shards *)
  r_ingested : int;  (** messages scheduled into the local heap *)
  r_scenario : Mvpn_core.Scenario.t;
      (** the replica, for post-join traffic reports *)
}

type t

val create :
  id:int ->
  part:Partition.t ->
  exchange:Exchange.t ->
  build:(unit -> Mvpn_core.Scenario.t) ->
  ?prepare:
    (Mvpn_core.Scenario.t ->
     (time:float -> vpn:int -> band:int -> dropped:bool ->
      latency:float -> unit)
     option) ->
  arm:
    (Mvpn_core.Scenario.t ->
     only:(Mvpn_core.Site.t -> Mvpn_core.Site.t -> bool) ->
     unit) ->
  unit ->
  t
(** Builds the replica, zeroes this domain's metric cells for every
    shard but 0 (so build-time counters — label allocations, FIB
    installs — are counted exactly once across the merge), arms the
    workload for owned source sites only, installs the cut-port
    handoffs and the packet-fate hook. Shard 0 is the canonical replica
    whose build telemetry survives.

    [prepare] runs on the replica after the reset and before arming —
    the hook point where the runner starts a per-replica timeline
    sampler. Its optional return value is a fate tap, chained in front
    of the shard's own fate recording. *)

val id : t -> int

val engine : t -> Mvpn_sim.Engine.t

val ingest : t -> bound:float -> inclusive:bool -> unit
(** Drain inbound exchange channels into the sorted pending inbox, then
    schedule every message with arrival below [bound] (at or below,
    when [inclusive]) as a receive event on the local engine. Equal-
    arrival messages always fall into the same window (a window bound
    beyond an arrival implies every such message is already visible),
    and are ordered by (arrival, send time, source shard, channel
    sequence) — so heap insertion order, and therefore FIFO tie-breaks,
    are independent of cross-domain timing. *)

val run_before : t -> before:float -> unit
(** Execute local events strictly below the window bound. *)

val run_to : t -> until:float -> unit
(** Execute local events up to and including [until] (the final,
    inclusive pass — mirrors the sequential [Engine.run ~until]). *)

val peek : t -> float option
(** Next local event time, for the epoch-barrier fallback. *)

val collect : t -> result
(** Snapshot this domain's cells and hand everything to the runner.
    Call once, after the last event has run. *)
