lib/qos/port.mli: Mvpn_net Mvpn_sim Queue_disc
