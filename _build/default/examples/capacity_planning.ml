(* Capacity planning and monitoring: the provider-side tooling of §5 —
   "measure, monitor, and meet different service level requirements
   across their backbones".

   First plan a demand matrix offline three ways (SPF, ECMP, capacity-
   aware), then run the worst case live with link monitoring attached.

   Run with:  dune exec examples/capacity_planning.exe *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Rng = Mvpn_sim.Rng

let () =
  Printf.printf "== Offline planning, then live monitoring ==\n\n";
  let bb = Backbone.build ~pops:10 () in
  let topo = Backbone.topology bb in
  let pops = Backbone.pops bb in
  let rng = Rng.create 2026 in
  let demands =
    List.init 14 (fun _ ->
        let src = Rng.int rng 10 in
        let dst = (src + 1 + Rng.int rng 9) mod 10 in
        { Planning.src = pops.(src); dst = pops.(dst);
          bandwidth = 15e6 })
  in
  Printf.printf "14 demands of 15 Mb/s over a 10-POP, 45 Mb/s backbone:\n\n";
  Printf.printf "%-18s %8s %10s %10s %10s\n" "placement" "routed"
    "max util" "hot links" "upgrades";
  let report name p =
    Printf.printf "%-18s %8d %9.1f%% %10d %10d\n" name (Planning.routed p)
      (Planning.max_utilization p *. 100.0)
      (List.length (Planning.hot_links p))
      (List.length (Planning.upgrades_needed p))
  in
  report "shortest-path" (Planning.route_spf topo demands);
  report "ecmp" (Planning.route_ecmp topo demands);
  report "capacity-aware" (Planning.route_capacity_aware topo demands);

  Printf.printf
    "\nNow watch the shortest-path plan's worst link under live load:\n";
  let engine = Engine.create () in
  let net = Network.create engine topo in
  (* Static routes per demand path (the planning view made live). *)
  let spf = Planning.route_spf topo demands in
  ignore spf;
  (* Find the busiest planned link and monitor every core link. *)
  let link_ids =
    List.map (fun (l : Topology.link) -> l.Topology.id) (Topology.links topo)
  in
  let mon = Monitor.start ~interval:0.5 net ~link_ids in
  (* Drive traffic along each demand's shortest path using per-hop
     static routes toward a unique destination prefix per demand. *)
  let registry = Traffic.registry engine in
  List.iteri
    (fun i (d : Planning.demand) ->
       let prefix =
         Mvpn_net.Prefix.make
           (Mvpn_net.Ipv4.of_octets 10 100 i 0) 24
       in
       (match
          Mvpn_routing.Spf.shortest_path topo ~src:d.Planning.src
            ~dst:d.Planning.dst
        with
        | Some path ->
          let rec install = function
            | a :: (b :: _ as rest) ->
              Mvpn_net.Fib.add (Network.fib net a) prefix
                { Mvpn_net.Fib.next_hop = b; cost = 1;
                  source = Mvpn_net.Fib.Static };
              install rest
            | [last] ->
              Mvpn_net.Fib.add (Network.fib net last) prefix
                { Mvpn_net.Fib.next_hop = Mvpn_net.Fib.local_delivery;
                  cost = 0; source = Mvpn_net.Fib.Connected };
              Network.set_sink net last (Traffic.sink registry)
            | [] -> ()
          in
          install path
        | None -> ());
       let emit =
         Traffic.sender registry ~net ~src_node:d.Planning.src
           ~flow:(Mvpn_net.Flow.make
                    (Mvpn_net.Ipv4.of_octets 10 99 i 1)
                    (Mvpn_net.Prefix.nth_host prefix 1))
           ~dscp:Mvpn_net.Dscp.best_effort
           ~collector:(Traffic.collector registry (Printf.sprintf "d%d" i))
           ()
       in
       Traffic.cbr engine ~start:0.0 ~stop:10.0
         ~rate_bps:d.Planning.bandwidth ~packet_bytes:1500 emit)
    demands;
  Engine.run ~until:10.0 engine;
  Monitor.stop mon;
  Printf.printf "\n  worst observed links (live, 0.5 s samples):\n";
  List.iteri
    (fun i (link_id, peak) ->
       if i < 4 then begin
         let l = Topology.link topo link_id in
         Printf.printf "    %s -> %s  peak %.1f%%  max backlog %d B\n"
           (Topology.node_name topo l.Topology.src)
           (Topology.node_name topo l.Topology.dst)
           (peak *. 100.0)
           (int_of_float
              (Mvpn_sim.Stats.Timeseries.max_value
                 (Monitor.backlog_series mon ~link_id)))
       end)
    (Monitor.peak_utilization mon);
  Printf.printf
    "\nThe offline plan's hot spots are exactly where the live run\n\
     queues — the planning arithmetic is the monitoring arithmetic run\n\
     forward.\n"
