lib/mpls/ldp.ml: Array Fec Float Label Lfib List Mvpn_net Mvpn_routing Mvpn_sim Plane Printf
