(** Label forwarding information base: the ILM → NHLFE map of one LSR.

    Lookup is a dense array index on the 20-bit label — constant time,
    no header parsing, no prefix walk. This is the mechanical heart of
    the paper's forwarding claim (C2): contrast with
    {!Mvpn_net.Radix.lookup}, which walks a trie on the destination
    address for every packet. The E0 microbenchmark races the two. *)

(** What to do with a matching packet. *)
type op =
  | Swap of int  (** rewrite the top label and forward *)
  | Pop  (** remove the top label and forward (PHP or egress) *)
  | Pop_and_ip  (** remove the label; the packet leaves the LSP here and
                    continues by IP lookup *)

type entry = {
  op : op;
  next_hop : int;
      (** node to hand the packet to; for [Pop_and_ip] the node doing
          the IP lookup (usually this router: use {!local}) *)
}

val local : int
(** Pseudo next-hop (-1): process locally after the op. *)

(** A facility-backup NHLFE: when the link toward the protected next
    hop is down, push [push] over whatever the primary op produced and
    forward to [via] instead — the packet tunnels around the failure
    and merges back at the protected next hop, which sees exactly the
    stack it would have received. [usable] reports whether every link
    of the bypass path is currently up. *)
type protection = { push : int; via : int; usable : unit -> bool }

type t

val create : unit -> t

val install : t -> in_label:int -> entry -> unit
(** Bind an incoming label.
    @raise Invalid_argument on an invalid or reserved label. *)

val uninstall : t -> in_label:int -> bool

val lookup : t -> int -> entry option
(** Constant-time ILM lookup. Out-of-range labels return [None]. *)

val size : t -> int
(** Number of installed entries — per-LSR MPLS state (E1). *)

val generation : t -> int
(** Monotonic mutation counter, bumped by {!install}, successful
    {!uninstall} and {!clear}. LDP refresh after a failure re-installs
    entries, so a generation mismatch tells compiled dataplane state
    that label bindings moved underneath it. *)

val clear : t -> unit

(** {2 Fast-reroute protection}

    Backup NHLFEs installed by the resilience layer
    ([Mvpn_resilience.Frr]) and consulted by the network I/O shell at
    transmit time when the primary link is down. They live beside the
    ILM so the point of local repair owns its own backup state, but
    {!step} never reads them and they do not participate in
    {!generation} — protection switches packets the instant a link
    dies without recompiling anything. *)

val set_protection :
  t -> next_hop:int -> push:int -> via:int -> usable:(unit -> bool) -> unit
(** Bind (or replace) the facility backup protecting this node's link
    toward [next_hop]. @raise Invalid_argument on an invalid label. *)

val protection : t -> next_hop:int -> protection option

val remove_protection : t -> next_hop:int -> bool

val clear_protections : t -> unit

val protected_next_hops : t -> int list
(** Sorted next hops with a protection bound (inspection/tests). *)

(** Result of running one labelled packet through an LSR. *)
type step_result =
  | Forward of int  (** send to this node; label stack already rewritten *)
  | Ip_continue of int
      (** label(s) popped; continue with IP forwarding at this node
          ([local] means here) *)
  | No_binding of int  (** unknown incoming label — drop *)
  | Ttl_expired

val step_packed : t -> Mvpn_net.Packet.t -> int
(** Allocation-free {!step}: the result packed as
    [((arg + 1) lsl 2) lor tag] — an immediate int, no constructor
    block per hop. Decode with {!packed_tag} / {!packed_arg}; [arg] is
    the next hop ({!tag_forward}, {!tag_ip_continue} — where it may be
    {!local}) or the unknown label ({!tag_no_binding}). *)

val tag_forward : int
val tag_ip_continue : int
val tag_no_binding : int
val tag_ttl_expired : int
val packed_tag : int -> int
val packed_arg : int -> int

val step : t -> Mvpn_net.Packet.t -> step_result
(** Apply the ILM entry for the packet's top label, mutating the packet
    (swap/pop, TTL decrement). TTL follows the RFC 3443 uniform model:
    every op counts as one hop, and a pop copies the decremented shim
    TTL onto the newly exposed shim or IP header (never increasing an
    inner TTL), so looping packets expire on pop paths too.
    @raise Invalid_argument if the packet carries no label. *)
