lib/core/membership.mli: Site
