(** Multi-carrier VPNs (§5).

    "This cross-network SLA capability allows the building of VPNs
    using multiple carriers as necessary, an option not available with
    most frame relay offerings."

    Two providers, each with its own backbone, IGP, label distribution
    and MP-BGP, share one simulated internetwork joined by a border
    link. A VPN spans both: each provider carries its own sites
    natively and learns the other's prefixes over a per-VRF eBGP
    session between the border PEs (inter-AS Option A — the neighbor
    carrier's edge router is treated as a CE). DiffServ markings cross
    the border in the IP header, so the end-to-end service level
    survives the hand-off. *)

type t

val build :
  ?pops_per_provider:int ->
  ?core_bandwidth:float ->
  ?border_bandwidth:float ->
  ?attach:(Backbone.t -> Backbone.t -> unit) ->
  net_of:(Mvpn_sim.Topology.t -> Network.t) ->
  unit -> t
(** Creates both backbones in one topology and the border link between
    provider A's POP 0 and provider B's POP 0, calls [attach] (where
    customer sites should be attached, so their access links exist),
    then [net_of] to wrap the finished topology in a network.
    {!deploy_vpn} packages the common case. *)

val backbone_a : t -> Backbone.t
val backbone_b : t -> Backbone.t
val network : t -> Network.t
val vpn_a : t -> Mpls_vpn.t
(** Provider A's VPN service (after {!deploy_vpn}). *)

val vpn_b : t -> Mpls_vpn.t

val border : t -> int * int
(** (provider A border PE node, provider B border PE node). *)

val ebgp_messages : t -> int
(** UPDATEs exchanged on the per-VRF eBGP border sessions. *)

(** One-call construction: two providers, one VPN spanning both, sites
    given as (provider, pop, prefix) triples. *)
val deploy_vpn :
  ?pops_per_provider:int ->
  ?core_bandwidth:float ->
  ?access_bandwidth:float ->
  ?policy:Qos_mapping.policy ->
  vpn:int ->
  sites_a:(int * Mvpn_net.Prefix.t) list ->
  sites_b:(int * Mvpn_net.Prefix.t) list ->
  unit -> t * Mvpn_sim.Engine.t * Site.t list * Site.t list
(** Returns the internetwork, its engine, and the site lists of each
    provider. After this call any A site can reach any B site of the
    same VPN and vice versa, and isolation against other VPNs holds
    across the border. *)
