(** Cross-shard packet exchange: one mutex-guarded channel per ordered
    (source shard, destination shard) pair that owns at least one cut
    link.

    A packet finishing serialization on a cut-link port is pushed with
    its send-derived arrival stamp ([tx end + propagation delay]) and a
    per-channel sequence number; the destination shard drains its
    inbound channels at window boundaries and re-inserts the packets
    into its own event heap in a deterministic order (see
    {!Shard.ingest}).

    Channels are bounded with {e soft} backpressure: a push over
    capacity is counted ([par.exchange.overflow]) rather than blocked —
    a sender blocking mid-window on a receiver that is itself waiting
    for this shard's clock publication would deadlock the conservative
    synchronization, so window sizing (lookahead), not blocking, is the
    real flow control. *)

type msg = {
  arrival : float;  (** send time + link propagation delay *)
  sent : float;  (** serialization end on the source shard *)
  src_shard : int;
  seq : int;  (** per-channel send sequence *)
  src_node : int;
  dst_node : int;
  packet : Mvpn_net.Packet.t;
}

type t

val create : ?capacity:int -> shards:int -> unit -> t
(** [capacity] (default 65536 messages) is the per-channel soft bound.
    No channels exist until {!open_channel}. *)

val open_channel : t -> src:int -> dst:int -> unit
(** Idempotent. The runner opens exactly one channel per ordered shard
    pair that has a cut link. *)

val channels : t -> (int * int) list
(** Open (src, dst) pairs, sorted. *)

val send :
  t -> src:int -> dst:int -> arrival:float -> sent:float -> src_node:int ->
  dst_node:int -> Mvpn_net.Packet.t -> unit
(** Called from the source shard's domain.
    @raise Invalid_argument if the channel was never opened. *)

val drain : t -> dst:int -> msg list
(** Pop everything currently queued toward [dst], in channel order then
    send order (the caller merges and sorts by arrival). Called from
    the destination shard's domain; safe against concurrent sends. *)

val overflows : t -> int
(** Total pushes that found a channel over capacity. *)
