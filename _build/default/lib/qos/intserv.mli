(** IntServ: per-flow RSVP reservations (the paper's "additional
    initiatives include IntServ (Integrated Services)", §5 — and the
    §2.2 worry that "users question the size of the administration
    task").

    A reservation pins one flow's token-bucket TSpec onto every router
    along its IGP path: admission succeeds only if each link has
    unreserved capacity (up to a reservable fraction of line rate), and
    every router on the path must then hold per-flow classifier and
    scheduler state. That per-flow state is exactly what DiffServ's
    class aggregation (4 bands, constant per router) and the MPLS VPN's
    per-route label state avoid — experiment E11 counts it. *)

type tspec = {
  rate_bps : float;  (** token rate the flow requests *)
  bucket_bytes : float;  (** burst allowance *)
}

type t

val create :
  ?reservable_fraction:float -> Mvpn_sim.Topology.t -> t
(** [reservable_fraction] (default 0.75) caps how much of each link
    IntServ may promise away.
    @raise Invalid_argument if outside (0, 1]. *)

val reserve :
  t -> src:int -> dst:int -> Mvpn_net.Flow.t -> tspec ->
  (int, string) result
(** PATH/RESV along the current shortest path: returns a reservation id
    or the refusal reason. The same 5-tuple cannot reserve twice. *)

val release : t -> int -> bool

val reservation_count : t -> int

val flow_state_at : t -> int -> int
(** Per-flow entries a given router holds — the administration-size
    metric. *)

val total_flow_state : t -> int
(** Sum over all routers. *)

val reserved_on : t -> Mvpn_sim.Topology.link -> float
(** Bits per second IntServ has promised on a link. *)

val path_of : t -> int -> int list option
(** The node path of a live reservation. *)
