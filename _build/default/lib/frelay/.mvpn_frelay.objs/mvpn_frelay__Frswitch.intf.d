lib/frelay/frswitch.mli: Frame
