(** The simulated packet network: the I/O shell around {!Dataplane}.

    Ties everything together at the data plane. Every topology node
    becomes a router with one egress {!Mvpn_qos.Port} per outgoing link
    (queue discipline chosen by the {!Qos_mapping.policy}), an IP FIB,
    and a share of the MPLS {!Mvpn_mpls.Plane}. The per-packet decision
    path (interceptor dispatch, LFIB step, FIB longest-prefix match,
    FTN push) lives in the node's compiled {!Dataplane} pipeline; this
    module owns what surrounds it — ports and links, local sinks, drop
    accounting, tracing — and hands the dataplane its hooks.

    All progress happens on the discrete-event engine; queueing,
    serialization and propagation delays come from the ports. *)

type t

type verdict = Dataplane.verdict = Consumed | Continue

val create :
  ?policy:Qos_mapping.policy ->
  ?buffer_bytes:int ->
  ?wred:bool ->
  ?route_cache:bool ->
  ?seed:int ->
  Mvpn_sim.Engine.t -> Mvpn_sim.Topology.t -> t
(** Builds ports for every link present in the topology. [policy]
    defaults to [Best_effort]; [wred] (default true) arms WRED on the
    AF bands of DiffServ ports; [route_cache] (default true) arms the
    dataplane's generation-invalidated route/FTN caches. Links added to
    the topology afterwards are unknown to the network. *)

val engine : t -> Mvpn_sim.Engine.t
val topology : t -> Mvpn_sim.Topology.t
val plane : t -> Mvpn_mpls.Plane.t
val policy : t -> Qos_mapping.policy

val dataplane : t -> Dataplane.t
(** The compiled forwarding pipelines. Services register interceptors
    and make cached FTN queries through this. *)

val fib : t -> int -> Mvpn_net.Fib.t
(** The node's IP FIB (mutable; provisioning fills it). *)

val set_auto_ftn : t -> bool -> unit
(** When on, an IP-forwarded packet whose matched FIB prefix has an FTN
    binding at this node gets the label pushed (plain MPLS ingress). *)

val set_route_cache : t -> bool -> unit
(** Toggle the dataplane caches (flushes compiled state). E0 races the
    two settings; behavior is observationally identical either way. *)

val route_cache : t -> bool

val set_interceptor : t -> int -> Dataplane.interceptor -> unit
(** Replace the node's interceptor chain with this single function.
    (Convenience for {!Dataplane.set_interceptor}.) *)

val add_interceptor : t -> int -> Dataplane.interceptor -> unit
(** Prepend to the node's interceptor chain: interceptors run in
    prepend order and the first [Consumed] wins — how several services
    (an L3 VPN's PE function, an L2 pseudowire demux) share one edge
    router. *)

val clear_interceptor : t -> int -> unit

val set_sink : t -> int -> (Mvpn_net.Packet.t -> unit) -> unit
(** Local-delivery handler; default counts the packet as drop
    ["no-sink"]. *)

val inject : t -> int -> Mvpn_net.Packet.t -> unit
(** Hand a packet to a node as if originated there (runs the full
    receive path, interceptor included). *)

val receive : t -> int -> from:(int option) -> Mvpn_net.Packet.t -> unit
(** Run the node's receive path for a packet arriving from the given
    neighbor (the continuation a port's propagation event invokes).
    Exposed so the parallel runner can re-inject packets that crossed a
    cut link from another shard; [inject] is [receive ~from:None]. *)

val inject_after : t -> delay:float -> int -> Mvpn_net.Packet.t -> unit
(** Schedule [inject] after a processing delay (crypto cost, CPU). *)

val forward_ip : t -> int -> Mvpn_net.Packet.t -> unit
(** Skip the interceptor and run plain IP forwarding at a node — for
    interceptors that have finished their own processing. *)

val transmit : t -> from:int -> to_:int -> Mvpn_net.Packet.t -> unit
(** Queue a packet on the from→to link's port.
    Counts a ["no-link"] drop if no such link exists.

    Fast reroute: when the from→to link is down and the sender's LFIB
    holds a usable {!Mvpn_mpls.Lfib.protection} for [to_], the bypass
    label is pushed and the packet leaves toward the bypass neighbor
    instead — same-tick protection switching, counted under
    [resilience.frr.switched] with one [Frr_switchover] event per
    failure episode. A down link with no usable bypass counts
    [resilience.frr.unprotected] and the port's link-down accounting
    names the loss. *)

val port : t -> link_id:int -> Mvpn_qos.Port.t
(** @raise Invalid_argument on an unknown link id. *)

val drop_packet :
  ?node:int -> ?packet:Mvpn_net.Packet.t -> t -> string -> unit
(** Count a drop under a reason — for interceptors that discard. Pass
    the packet so the fate reaches tracing, SLO conformance and span
    sampling; without it the drop is counted but unattributed. *)

(** {2 Tracing}

    A tracer observes every forwarding step — the hop-by-hop,
    label-by-label journey of Figure 4. Tracing never affects
    forwarding. *)

type trace_action =
  | Trace_receive of int option  (** packet arrived (from which node) *)
  | Trace_transmit of int  (** queued toward this next hop *)
  | Trace_deliver  (** handed to the local sink *)
  | Trace_drop of string

type trace_event = {
  trace_time : float;
  trace_node : int;  (** -1 when the node is unknown (rare drop paths) *)
  trace_uid : int;  (** packet uid; -1 when no packet is in hand *)
  trace_labels : int list;  (** label stack snapshot, top first *)
  trace_action : trace_action;
}

val set_tracer : t -> (trace_event -> unit) option -> unit

(** {2 SLA conformance}

    An attached {!Mvpn_telemetry.Slo} engine is fed every terminal
    packet fate — deliveries (with their end-to-end latency), drops
    from the drop table {e and} port discards (queue refusals,
    link-down losses) — keyed by (vpn, inner-header band), the same
    view {!Accounting} invoices by; un-tenanted traffic books under
    vpn 0. An attached {!Mvpn_telemetry.Span.sampler} is offered the
    same fates and reconstructs sampled packets' hop-by-hop spans from
    the global trace ring. Both observations happen only while
    {!Mvpn_telemetry.Control} is enabled and never affect
    forwarding. *)

val set_slo : t -> Mvpn_telemetry.Slo.t option -> unit

val slo : t -> Mvpn_telemetry.Slo.t option

val set_span_sampler : t -> Mvpn_telemetry.Span.sampler option -> unit

val span_sampler : t -> Mvpn_telemetry.Span.sampler option

val set_fate_hook :
  t ->
  (time:float -> vpn:int -> band:int -> dropped:bool -> latency:float ->
   unit)
    option ->
  unit
(** Observe every terminal packet fate — the same stream an attached
    {!Mvpn_telemetry.Slo} sees, as plain data: deliveries carry their
    end-to-end latency, drops carry [latency = 0]. The parallel runner
    collects fates per shard and replays the time-sorted merge into one
    SLO engine, so conformance totals are identical for every shard
    count. Fires only while {!Mvpn_telemetry.Control} is enabled. *)

val install_fib : t -> int -> Mvpn_net.Fib.t -> unit
(** Merge every route of the given table into the node's FIB
    (provisioning helper: copy an OSPF-computed table in). *)

val drop_counts : t -> (string * int) list
(** Per-reason drop counters, sorted by reason. The per-network drop
    table is the single authority; the [net.drop.<reason>] and
    [net.drops] telemetry counters mirror it (set, not independently
    incremented), so the two views agree whenever telemetry is on. *)

val drops : t -> int
(** Total drops across all reasons (not counting port queue drops —
    read those from the port counters). *)

(** {2 Conservation ledger}

    Always-on packet accounting the runtime invariant auditor
    ({!Mvpn_resilience.Audit}) balances every tick:

    {[ injected + imported + forked
       = delivered + table_drops + port_drops + exported + consumed
         + live ]}

    where [port_drops] is {!port_drop_total}. [live] is maintained
    independently of the fate counters through the packet's [fated]
    flag, so a lost or double-counted fate unbalances the equation
    instead of cancelling. The books cover unicast and PE-replicated
    traffic; packets a test abandons without handing them to the
    network (unattributed {!drop_packet} calls) retire one live packet
    against the drop table. *)

type flow_totals = {
  injected : int;  (** packets handed in via {!inject} *)
  imported : int;  (** packets received from another shard *)
  exported : int;  (** packets handed off to another shard *)
  forked : int;  (** replication copies spawned (PE multicast) *)
  consumed : int;  (** replicated originals absorbed at the PE *)
  delivered : int;  (** packets handed to a sink *)
  table_drops : int;  (** same total as {!drops} *)
  unattributed : int;  (** packet-less {!drop_packet} calls *)
  live : int;  (** packets currently held (queues, links, events) *)
}

val flow_totals : t -> flow_totals

val port_drop_total : t -> int
(** Port discards summed over every link's port: queue refusals,
    link-down and fault losses (the drops {!drops} excludes). *)

val iter_ports : t -> (link_id:int -> Mvpn_qos.Port.t -> unit) -> unit
(** Visit every armed port (queue-depth audits, depth telemetry). *)

val note_import : t -> unit
val note_export : t -> unit
(** Ledger entries for shard-boundary hand-offs: the parallel runner's
    exchange moves packets between replicas without [inject]/[deliver];
    export retires the packet from this network's live count, import
    adds it to the receiver's. *)

val note_fork : t -> unit
(** A replication copy entered circulation (PE multicast ingress). *)

val note_consume : t -> Mvpn_net.Packet.t -> unit
(** A replicated original was absorbed without a terminal delivery or
    drop (the PE released it after fanning copies out). Idempotent per
    incarnation. *)

val set_drop_leak : t -> int -> unit
(** Test-only sabotage: make the next [n] table drops skip the
    authoritative count (the packet is still released and retired from
    [live]) — a deliberately injected conservation bug the auditor must
    catch. Never call outside tests. *)
