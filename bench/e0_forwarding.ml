(* E0 — forwarding cost (§3, claim C2).

   "The labels enable routers and switches to forward traffic based on
   information in the labels instead of having to inspect the various
   fields deep within each and every packet."

   Races the per-packet work of a conventional IP router (longest-
   prefix match over a Patricia trie) against an LSR (constant-time
   label index), at several FIB sizes, using Bechamel. *)

open Bechamel
module Radix = Mvpn_net.Radix
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Lfib = Mvpn_mpls.Lfib
module Rng = Mvpn_sim.Rng

let probe_count = 4096

let build_fib n =
  let rng = Rng.create 42 in
  let t = Radix.create () in
  let added = ref 0 in
  while !added < n do
    let addr = Ipv4.of_int32_exn (Rng.int rng 0xFFFF_FFF * 16) in
    let len = Rng.int_in rng 12 24 in
    let p = Prefix.make addr len in
    if Radix.find t p = None then begin
      Radix.add t p !added;
      incr added
    end
  done;
  t

let build_lfib n =
  let t = Lfib.create () in
  for i = 0 to n - 1 do
    Lfib.install t ~in_label:(16 + i) { Lfib.op = Lfib.Swap (16 + i); next_hop = 1 }
  done;
  t

let probes =
  let rng = Rng.create 77 in
  Array.init probe_count (fun _ -> Ipv4.of_int32_exn (Rng.int rng 0xFFFF_FFF * 16))

let label_probes n =
  let rng = Rng.create 99 in
  Array.init probe_count (fun _ -> 16 + Rng.int rng n)

let lpm_test name n =
  let fib = build_fib n in
  let i = ref 0 in
  Test.make ~name (Staged.stage (fun () ->
      let a = probes.(!i land (probe_count - 1)) in
      incr i;
      Sys.opaque_identity (Radix.lookup fib a)))

let lfib_test name n =
  let lfib = build_lfib n in
  let ps = label_probes n in
  let i = ref 0 in
  Test.make ~name (Staged.stage (fun () ->
      let l = ps.(!i land (probe_count - 1)) in
      incr i;
      Sys.opaque_identity (Lfib.lookup lfib l)))

let run () =
  Tables.heading "E0: label swap lookup vs IP longest-prefix match (Bechamel)";
  let tests =
    Test.make_grouped ~name:"forwarding"
      [ lpm_test "ip-lpm-1k-prefixes" 1_000;
        lpm_test "ip-lpm-10k-prefixes" 10_000;
        lpm_test "ip-lpm-100k-prefixes" 100_000;
        lfib_test "mpls-lfib-1k-labels" 1_000;
        lfib_test "mpls-lfib-100k-labels" 100_000 ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  (* Measure the production fast path: telemetry off, whatever the
     harness set globally. *)
  let raw =
    Mvpn_telemetry.Control.with_disabled (fun () ->
        Benchmark.all cfg Toolkit.Instance.[monotonic_clock] tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let ns name =
    match Hashtbl.fold (fun k v acc ->
        if String.length k >= String.length name
        && String.sub k (String.length k - String.length name)
             (String.length name) = name
        then Some v else acc)
        results None
    with
    | Some o ->
      (match Analyze.OLS.estimates o with
       | Some (e :: _) -> e
       | Some [] | None -> nan)
    | None -> nan
  in
  let widths = [26; 12] in
  Tables.row widths ["lookup"; "ns/packet"];
  Tables.rule widths;
  let names =
    [ "ip-lpm-1k-prefixes"; "ip-lpm-10k-prefixes"; "ip-lpm-100k-prefixes";
      "mpls-lfib-1k-labels"; "mpls-lfib-100k-labels" ]
  in
  List.iter (fun n -> Tables.row widths [n; Tables.f1 (ns n)]) names;
  let ratio = ns "ip-lpm-100k-prefixes" /. ns "mpls-lfib-100k-labels" in
  Tables.note
    "\nAt 100k routes, label indexing is %.1fx cheaper per packet than\n\
     the longest-prefix match (paper C2: labels avoid inspecting fields\n\
     deep within each packet; expected shape: integer-factor advantage\n\
     that grows with table size)." ratio
