(* Replacing a leased line with an emulated circuit (§1: the essence of
   a VPN is using the shared backbone "to supplement or replace costly
   long-distance leased or dial-up links").

   A point-to-point pseudowire carries an opaque stream between two
   offices across the label-switched backbone; the SLA report shows the
   leased-line-like service it received while sharing the network with
   everyone else.

   Run with:  dune exec examples/leased_line.exe *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow
module Sla = Mvpn_qos.Sla

let () =
  Printf.printf "== An emulated leased line over the MPLS backbone ==\n\n";
  let bb = Backbone.build ~pops:8 () in
  let engine = Engine.create () in
  let net =
    Network.create
      ~policy:(Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched)
      engine (Backbone.topology bb)
  in
  let l2 = L2vpn.deploy ~net ~backbone:bb in
  let pops = Backbone.pops bb in

  let collector = Mvpn_qos.Sla.collector () in
  let pw =
    match
      L2vpn.create_pw l2
        ~a:{ L2vpn.pe = pops.(0); on_deliver = (fun _ -> ()) }
        ~b:
          { L2vpn.pe = pops.(4);
            on_deliver =
              (fun p -> Sla.on_receive collector ~now:(Engine.now engine) p) }
    with
    | Ok id -> id
    | Error e -> failwith e
  in
  Printf.printf
    "Pseudowire up between POP 0 and POP 4 (%d circuit provisioned).\n"
    (L2vpn.pw_count l2);

  (* A 512 kb/s "leased line" stream, marked EF so the backbone's
     DiffServ machinery treats it like the circuit it replaces. *)
  let seq = ref 0 in
  let emit size =
    incr seq;
    let now = Engine.now engine in
    let p =
      Packet.make ~seq:!seq ~dscp:Mvpn_net.Dscp.ef ~size ~now
        (Flow.make (Mvpn_net.Ipv4.of_string_exn "192.168.0.1")
           (Mvpn_net.Ipv4.of_string_exn "192.168.0.2"))
    in
    Sla.on_send collector ~now ~bytes:size;
    L2vpn.send l2 ~pw ~from_a:true p
  in
  Traffic.cbr engine ~start:0.0 ~stop:30.0 ~rate_bps:512_000.0
    ~packet_bytes:512 emit;
  Engine.run engine;

  let r = Sla.report collector in
  Printf.printf "\n30 s of 512 kb/s over the circuit:\n  ";
  Format.printf "%a@." Sla.pp_report r;
  Printf.printf "Misordered frames: %d\n" (L2vpn.misordered l2 ~pw);
  Printf.printf
    "\nThe stream crossed the label-switched backbone with circuit-like\n\
     constancy (zero loss, sub-microsecond jitter) — a leased line's\n\
     behaviour at a shared backbone's cost, which is §1's pitch.\n"
