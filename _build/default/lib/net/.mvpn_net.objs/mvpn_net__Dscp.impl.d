lib/net/dscp.ml: Format Int Printf
