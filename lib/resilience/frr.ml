module Topology = Mvpn_sim.Topology
module Spf = Mvpn_routing.Spf
module Plane = Mvpn_mpls.Plane
module Lfib = Mvpn_mpls.Lfib
module Label = Mvpn_mpls.Label
module Network = Mvpn_core.Network
module Telemetry = Mvpn_telemetry

let m_protected = Telemetry.Registry.counter "resilience.frr.protected_links"
let m_unprotected_links =
  Telemetry.Registry.counter "resilience.frr.unprotected_links"

type stats = { protected_links : int; unprotected_links : int }

type t = {
  net : Network.t;
  links : (int * int) list;  (* directed (plr, next hop) pairs *)
  (* Bypass ILM entries installed at transit LSRs, so rearm can retire
     the previous generation before signalling fresh paths. *)
  mutable installed : (int * int) list;  (* (node, in_label) *)
  mutable stats : stats;
}

let stats t = t.stats

(* Facility backup for the directed link a→b: a CSPF path from a to b
   that excludes the protected link in both directions, one bypass
   label per hop, PHP at the penultimate bypass hop so b — the merge
   point — receives exactly the stack the dead link would have
   delivered. The PLR's protection record captures the bypass links,
   so [usable] reads live state: a bypass that later loses one of its
   own links stops being offered. *)
let protect_one t a b =
  let topo = Network.topology t.net in
  let plane = Network.plane t.net in
  let usable (l : Topology.link) =
    l.Topology.up
    && not
         ((l.Topology.src = a && l.Topology.dst = b)
          || (l.Topology.src = b && l.Topology.dst = a))
  in
  match Spf.shortest_path ~usable topo ~src:a ~dst:b with
  | None | Some ([] | [_]) -> false
  | Some path ->
    let hops = Array.of_list (List.tl path) in  (* n1 .. nk, b *)
    let n = Array.length hops in
    (* n >= 2: a direct hop would need the excluded link. *)
    let labels =
      Array.init (n - 1) (fun i ->
          Label.Allocator.alloc (Plane.allocator plane hops.(i)))
    in
    for i = 0 to n - 2 do
      let entry =
        if i = n - 2 then { Lfib.op = Lfib.Pop; next_hop = hops.(n - 1) }
        else { Lfib.op = Lfib.Swap labels.(i + 1); next_hop = hops.(i + 1) }
      in
      Lfib.install (Plane.lfib plane hops.(i)) ~in_label:labels.(i) entry;
      t.installed <- (hops.(i), labels.(i)) :: t.installed
    done;
    let bypass_links =
      let rec go acc = function
        | x :: (y :: _ as rest) ->
          (match Topology.find_link topo x y with
           | Some l -> go (l :: acc) rest
           | None -> acc)
        | _ -> acc
      in
      go [] path
    in
    let usable () =
      List.for_all (fun (l : Topology.link) -> l.Topology.up) bypass_links
    in
    Lfib.set_protection (Plane.lfib plane a) ~next_hop:b ~push:labels.(0)
      ~via:hops.(0) ~usable;
    true

let install t =
  let ok, missing =
    List.fold_left
      (fun (ok, missing) (a, b) ->
         if protect_one t a b then (ok + 1, missing) else (ok, missing + 1))
      (0, 0) t.links
  in
  t.stats <- { protected_links = ok; unprotected_links = missing };
  Telemetry.Counter.set m_protected ok;
  Telemetry.Counter.set m_unprotected_links missing

let all_directed_links net =
  List.map
    (fun (l : Topology.link) -> (l.Topology.src, l.Topology.dst))
    (Topology.links (Network.topology net))

let arm ?links net =
  let links = match links with Some l -> l | None -> all_directed_links net in
  let t =
    { net; links; installed = [];
      stats = { protected_links = 0; unprotected_links = 0 } }
  in
  install t;
  t

let rearm t =
  let plane = Network.plane t.net in
  List.iter
    (fun (node, label) ->
       ignore (Lfib.uninstall (Plane.lfib plane node) ~in_label:label))
    t.installed;
  t.installed <- [];
  List.iter
    (fun (a, _) -> Lfib.clear_protections (Plane.lfib plane a))
    t.links;
  install t
