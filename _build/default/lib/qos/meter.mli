(** Traffic meters: single-rate and two-rate three-color markers
    (RFC 2697 srTCM, RFC 2698 trTCM).

    The provider edge meters each customer class against its contracted
    rate; the color drives remarking (drop precedence) or policing. This
    is how a DiffServ SLA is enforced at the trust boundary before
    traffic enters the label-switched backbone. *)

type color = Green | Yellow | Red

val color_to_string : color -> string

val color_to_drop_precedence : color -> int
(** Green → 1, Yellow → 2, Red → 3 — the AF drop-precedence encoding. *)

type t

val srtcm : cir_bps:float -> cbs_bytes:float -> ebs_bytes:float -> t
(** Single-rate (RFC 2697): one token stream at CIR fills the committed
    bucket first, overflow tops up the excess bucket. Green while
    within CBS, Yellow within EBS, Red beyond.
    @raise Invalid_argument on non-positive CIR/CBS or negative EBS. *)

val trtcm : cir_bps:float -> cbs_bytes:float -> pir_bps:float ->
  pbs_bytes:float -> t
(** Two-rate: Red above peak rate, Yellow above committed rate, Green
    otherwise. @raise Invalid_argument if [pir_bps < cir_bps]. *)

val meter : t -> now:float -> bytes:int -> color
(** Color one packet and update the meter state (color-blind mode). *)
