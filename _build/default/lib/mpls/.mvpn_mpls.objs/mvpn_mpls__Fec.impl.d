lib/mpls/fec.ml: Format Hashtbl Int Mvpn_net Printf
