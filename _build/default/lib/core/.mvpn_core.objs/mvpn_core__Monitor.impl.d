lib/core/monitor.ml: Float Hashtbl List Mvpn_qos Mvpn_sim Network Stdlib
