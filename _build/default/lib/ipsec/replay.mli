(** Anti-replay sliding window (RFC 2401 §B).

    "The network drops a packet if it identifies the packet as being
    identical to one previously received" (§2.3). The receiver tracks a
    window of recent ESP sequence numbers; duplicates and packets older
    than the window are rejected. *)

type t

val create : ?window:int -> unit -> t
(** [window] defaults to 62 (RFC suggests 64; the bitmap lives in one
    OCaml int, which caps it at 62).
    @raise Invalid_argument if outside 1..62. *)

type verdict = Accepted | Duplicate | Too_old

val check : t -> int -> verdict
(** [check t seq] accepts and records a fresh sequence number, or
    rejects it. Sequence numbers start at 1.
    @raise Invalid_argument if [seq < 1]. *)

val highest_seen : t -> int
(** 0 before any acceptance. *)
