(* Quickstart: provision an MPLS VPN across a small provider backbone
   and send traffic between two customer sites.

   Run with:  dune exec examples/quickstart.exe *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Flow = Mvpn_net.Flow
module Packet = Mvpn_net.Packet

let () =
  Printf.printf "== MPLS VPN quickstart ==\n\n";

  (* 1. A provider backbone: 6 POPs in a ring with an express chord. *)
  let bb = Backbone.build ~pops:6 () in
  Printf.printf "Built a %d-POP backbone (%d unidirectional links).\n"
    (Backbone.pop_count bb)
    (Mvpn_sim.Topology.link_count (Backbone.topology bb));

  (* 2. One customer VPN with two sites on opposite sides of the ring.
        Private addressing: 10.0/16 at headquarters, 10.1/16 at the
        branch. *)
  let hq =
    Backbone.attach_site bb ~id:1 ~name:"headquarters" ~vpn:1
      ~prefix:(Prefix.of_string_exn "10.0.0.0/16") ~pop:0
  in
  let branch =
    Backbone.attach_site bb ~id:2 ~name:"branch" ~vpn:1
      ~prefix:(Prefix.of_string_exn "10.1.0.0/16") ~pop:3
  in

  (* 3. The simulated network and the VPN service on top of it. *)
  let engine = Engine.create () in
  let net =
    Network.create
      ~policy:(Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched)
      engine (Backbone.topology bb)
  in
  let vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites:[hq; branch] () in
  let m = Mpls_vpn.metrics vpn in
  Printf.printf
    "Deployed: %d sites, %d VRFs, %d VPNv4 routes, %d LFIB entries,\n\
    \          %d BGP sessions, %d control messages.\n\n"
    m.Mpls_vpn.sites m.Mpls_vpn.vrf_count m.Mpls_vpn.vpnv4_routes
    m.Mpls_vpn.lfib_entries m.Mpls_vpn.bgp_sessions
    m.Mpls_vpn.control_messages;

  (* 4. Measured traffic: a 10-second CBR stream from HQ to branch. *)
  let registry = Traffic.registry engine in
  Network.set_sink net branch.Site.ce_node (Traffic.sink registry);
  Network.set_sink net hq.Site.ce_node (Traffic.sink registry);
  let flow =
    Flow.make ~proto:Flow.Udp ~dst_port:4000 (Site.host hq 1)
      (Site.host branch 1)
  in
  let collector = Traffic.collector registry "hq->branch" in
  let emit =
    Traffic.sender registry ~net ~src_node:hq.Site.ce_node ~flow
      ~dscp:(Mvpn_net.Dscp.af 3 1) ~vpn:1 ~collector ()
  in
  Traffic.cbr engine ~start:0.0 ~stop:10.0 ~rate_bps:400_000.0
    ~packet_bytes:1000 emit;
  Engine.run engine;

  (* 5. What happened. *)
  let r = Traffic.report registry "hq->branch" in
  Printf.printf "Traffic report (hq -> branch):\n";
  Format.printf "  %a@." Mvpn_qos.Sla.pp_report r;
  Printf.printf "Network drops: %d\n" (Network.drops net);
  Printf.printf
    "\nThe stream crossed the backbone on a two-level label stack:\n\
     an LDP-learned transport label to the egress PE and a VPN label\n\
     selecting the customer route, with the AF31 marking carried in\n\
     the EXP bits of both.\n"
