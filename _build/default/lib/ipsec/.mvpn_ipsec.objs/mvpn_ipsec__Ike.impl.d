lib/ipsec/ike.ml: Int64
