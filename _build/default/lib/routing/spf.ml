module Topology = Mvpn_sim.Topology
module Heap = Mvpn_sim.Heap

type tree = {
  src : int;
  dist : float array;
  first_hop : int array;
  parent : int array;
}

let default_usable (l : Topology.link) = l.Topology.up

let default_metric (l : Topology.link) = float_of_int l.Topology.cost

let dijkstra ?(usable = default_usable) ?(metric = default_metric) topo ~src =
  let n = Topology.node_count topo in
  if src < 0 || src >= n then
    invalid_arg (Printf.sprintf "Spf.dijkstra: unknown source %d" src);
  let dist = Array.make n infinity in
  let first_hop = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
      if not settled.(v) && d <= dist.(v) then begin
        settled.(v) <- true;
        let relax (nbr, l) =
          if usable l && not settled.(nbr) then begin
            let nd = dist.(v) +. metric l in
            (* Strict improvement, or same cost through a lower parent:
               deterministic tie-breaking for reproducible routing. *)
            if nd < dist.(nbr)
            || (nd = dist.(nbr) && parent.(nbr) > v)
            then begin
              dist.(nbr) <- nd;
              parent.(nbr) <- v;
              first_hop.(nbr) <- (if v = src then nbr else first_hop.(v));
              Heap.push heap nd nbr
            end
          end
        in
        (* Sort neighbors for deterministic relax order. *)
        let nbrs =
          List.sort (fun (a, _) (b, _) -> Int.compare a b)
            (Topology.neighbors topo v)
        in
        List.iter relax nbrs
      end;
      drain ()
  in
  drain ();
  { src; dist; first_hop; parent }

let path_of_tree tree dst =
  if dst = tree.src then Some [dst]
  else if dst < 0 || dst >= Array.length tree.dist then None
  else if Float.is_finite tree.dist.(dst) then begin
    let rec build v acc =
      if v = tree.src then v :: acc else build tree.parent.(v) (v :: acc)
    in
    Some (build dst [])
  end else None

let shortest_path ?usable ?metric topo ~src ~dst =
  path_of_tree (dijkstra ?usable ?metric topo ~src) dst

(* Widest path: Dijkstra variant maximizing bottleneck available
   bandwidth. *)
let widest_path topo ~src ~dst =
  let n = Topology.node_count topo in
  if src < 0 || src >= n || dst < 0 || dst >= n then None
  else begin
    let width = Array.make n neg_infinity in
    let parent = Array.make n (-1) in
    let settled = Array.make n false in
    let heap = Heap.create () in
    width.(src) <- infinity;
    (* Negate so the min-heap pops the widest candidate first. *)
    Heap.push heap neg_infinity src;
    let rec drain () =
      match Heap.pop heap with
      | None -> ()
      | Some (_, v) ->
        if not settled.(v) then begin
          settled.(v) <- true;
          List.iter
            (fun (nbr, l) ->
               if l.Topology.up && not settled.(nbr) then begin
                 let w = Float.min width.(v) (Topology.available l) in
                 if w > width.(nbr) then begin
                   width.(nbr) <- w;
                   parent.(nbr) <- v;
                   Heap.push heap (-.w) nbr
                 end
               end)
            (Topology.neighbors topo v)
        end;
        drain ()
    in
    drain ();
    if not settled.(dst) then None
    else begin
      let rec build v acc =
        if v = src then v :: acc else build parent.(v) (v :: acc)
      in
      Some (build dst [], width.(dst))
    end
  end

let path_cost ?(metric = default_metric) topo path =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      (match Topology.find_link topo a b with
       | Some l -> go (acc +. metric l) rest
       | None -> None)
    | [_] | [] -> Some acc
  in
  go 0.0 path

let k_shortest ?(k = 3) ?(usable = default_usable) topo ~src ~dst =
  match shortest_path ~usable topo ~src ~dst with
  | None -> []
  | Some first ->
    let paths = ref [first] in
    let candidates = ref [] in
    let path_cost_exn p =
      match path_cost topo p with Some c -> c | None -> infinity
    in
    let add_candidate p =
      if not (List.mem p !candidates) && not (List.mem p !paths) then
        candidates := p :: !candidates
    in
    let rec take_prefix n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take_prefix (n - 1) rest
    in
    (try
       for _ = 2 to k do
         let last = List.hd !paths in
         (* Spur from every node of the previous path except the last. *)
         List.iteri
           (fun i spur_node ->
              if i < List.length last - 1 then begin
                let root = take_prefix (i + 1) last in
                (* Links to exclude: the edge each known path with the
                   same root takes out of the spur node. *)
                let banned_edges =
                  List.filter_map
                    (fun p ->
                       if List.length p > i + 1
                       && take_prefix (i + 1) p = root then
                         Some (List.nth p i, List.nth p (i + 1))
                       else None)
                    (!paths @ !candidates)
                in
                let banned_nodes =
                  List.filteri (fun j _ -> j < i) root
                in
                let usable' l =
                  usable l
                  && (not
                        (List.mem
                           (l.Topology.src, l.Topology.dst)
                           banned_edges))
                  && (not (List.mem l.Topology.src banned_nodes))
                  && not (List.mem l.Topology.dst banned_nodes)
                in
                match shortest_path ~usable:usable' topo ~src:spur_node ~dst
                with
                | Some spur when List.length spur > 1 ->
                  let total = root @ List.tl spur in
                  add_candidate total
                | Some _ | None -> ()
              end)
           last;
         match
           List.sort
             (fun a b -> Float.compare (path_cost_exn a) (path_cost_exn b))
             !candidates
         with
         | [] -> raise Exit
         | best :: rest ->
           paths := best :: !paths;
           candidates := rest
       done
     with Exit -> ());
    List.rev !paths
