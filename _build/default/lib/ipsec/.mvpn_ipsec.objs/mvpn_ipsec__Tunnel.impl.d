lib/ipsec/tunnel.ml: Crypto Esp Hashtbl Mvpn_net Replay Sa
