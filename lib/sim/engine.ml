let m_events = Mvpn_telemetry.Registry.counter "sim.events"
let m_scheduled = Mvpn_telemetry.Registry.counter "sim.scheduled"

type backend = Binary_heap | Calendar

(* Monomorphic variant dispatch: one predictable branch per queue op,
   no closure indirection on the hot path. *)
type queue =
  | Q_heap of (unit -> unit) Heap.t
  | Q_cal of (unit -> unit) Calendar.t

(* Key handed over through a floatarray cell: on the calendar backend
   (the default) the key never crosses a call boundary as a float
   argument, so a schedule in steady state boxes nothing. The heap
   backend re-reads the cell into an argument — one box, same as
   before. *)
let q_push_at q kcell v =
  match q with
  | Q_heap h -> Heap.push h (Float.Array.get kcell 0) v
  | Q_cal c -> Calendar.push_at c kcell v

let q_pop q =
  match q with
  | Q_heap h -> Heap.pop h
  | Q_cal c -> Calendar.pop c

let q_peek q =
  match q with
  | Q_heap h -> Heap.peek h
  | Q_cal c -> Calendar.peek c

let q_size q =
  match q with
  | Q_heap h -> Heap.size h
  | Q_cal c -> Calendar.size c

(* Physical-identity sentinel for [pop_due]: a static closure no user
   event can alias (every runtime-constructed closure is a distinct
   block). *)
let null_event : unit -> unit = fun () -> ()

let q_pop_due q ~bound ~strict ~key_out =
  match q with
  | Q_heap h -> Heap.pop_due h ~bound ~strict ~default:null_event ~key_out
  | Q_cal c -> Calendar.pop_due c ~bound ~strict ~default:null_event ~key_out

type t = {
  queue : queue;
  mutable now : float;
  mutable processed : int;
  mutable stopped : bool;
  (* Batched telemetry: inside a [run]/[run_before] window the
     sim.events / sim.scheduled counters accumulate in these plain ints
     and flush once at window exit, instead of paying a DLS counter
     write per event. Outside a window, writes stay immediate so tests
     that schedule or step by hand observe exact counters. *)
  mutable in_batch : bool;
  mutable batch_events : int;
  mutable batch_scheduled : int;
  mutable flush_hooks : (unit -> unit) list;
  (* Out-parameter cell for [pop_due]: popped keys cross the queue
     call unboxed, so the run loop allocates nothing per event. *)
  key_cell : floatarray;
  (* In-parameter cell for [q_push_at] — separate from [key_cell],
     which holds the in-flight event's key while its closure (and any
     schedule it performs) runs. *)
  push_cell : floatarray;
  (* Dispatch-cost ledger (see profile.ml). Disabled by default; the
     run loops pick a profiled or plain drain once per window, so the
     per-event path is untouched until [Profile.enable]. *)
  prof : Profile.t;
}

let create ?(backend = Calendar) () =
  let queue =
    match backend with
    | Binary_heap -> Q_heap (Heap.create ())
    | Calendar -> Q_cal (Calendar.create ())
  in
  { queue; now = 0.0; processed = 0; stopped = false;
    in_batch = false; batch_events = 0; batch_scheduled = 0;
    flush_hooks = []; key_cell = Float.Array.create 1;
    push_cell = Float.Array.create 1; prof = Profile.create () }

let now e = e.now

let profiler e = e.prof

let in_batch e = e.in_batch

let on_flush e f = e.flush_hooks <- f :: e.flush_hooks

(* Accumulation is gated on the telemetry switch at event time (same
   observable semantics as an immediate Counter.incr); the flush write
   itself is forced on, since the switch may have been toggled between
   accumulation and window exit. *)
let flush_body e =
  List.iter (fun f -> f ()) e.flush_hooks;
  if e.batch_events <> 0 || e.batch_scheduled <> 0 then
    Mvpn_telemetry.Control.with_enabled (fun () ->
        Mvpn_telemetry.Counter.add m_events e.batch_events;
        Mvpn_telemetry.Counter.add m_scheduled e.batch_scheduled);
  e.batch_events <- 0;
  e.batch_scheduled <- 0

(* The flush is already amortized once per batch window, so timing it
   costs two clock reads per window, not per event. *)
let flush_batch e =
  if Profile.enabled e.prof then begin
    let t0 = Profile.now_ns () in
    flush_body e;
    Profile.note_flush e.prof (Profile.now_ns () - t0)
  end
  else flush_body e

let note_scheduled e =
  if e.in_batch then begin
    if !Mvpn_telemetry.Control.enabled then
      e.batch_scheduled <- e.batch_scheduled + 1
  end
  else Mvpn_telemetry.Counter.incr m_scheduled

let check_finite what v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Engine.%s: time not finite" what)

(* [x -. x = 0.0] is [Float.is_finite] unfolded (nan and the two
   infinities fail it) — the cross-module call, and the argument box
   it forces, stay off the per-event path. *)
let schedule e ~delay f =
  if not (delay -. delay = 0.0) then check_finite "schedule" delay;
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  note_scheduled e;
  Float.Array.set e.push_cell 0 (e.now +. delay);
  q_push_at e.queue e.push_cell f

let schedule_at e ~time f =
  if not (time -. time = 0.0) then check_finite "schedule_at" time;
  if time < e.now then invalid_arg "Engine.schedule_at: time in the past";
  note_scheduled e;
  Float.Array.set e.push_cell 0 time;
  q_push_at e.queue e.push_cell f

(* [schedule] plus a per-kind count in the dispatch ledger. The kind
   is only consulted when profiling is on, so tagged call sites cost
   one predictable branch otherwise. *)
let schedule_kind e ~kind ~delay f =
  if Profile.enabled e.prof then Profile.note_kind e.prof kind;
  schedule e ~delay f

let schedule_kind_at e ~kind ~time f =
  if Profile.enabled e.prof then Profile.note_kind e.prof kind;
  schedule_at e ~time f

let step e =
  match q_pop e.queue with
  | None -> false
  | Some (time, f) ->
    e.now <- time;
    e.processed <- e.processed + 1;
    if e.in_batch then begin
      if !Mvpn_telemetry.Control.enabled then
        e.batch_events <- e.batch_events + 1
    end
    else Mvpn_telemetry.Counter.incr m_events;
    f ();
    true

(* Run [body] as one batch window. Nested windows flush only at the
   outermost exit; the flush survives an exception from an event so no
   accumulated counts are lost. *)
let in_window e body =
  if e.in_batch then body ()
  else begin
    e.in_batch <- true;
    Fun.protect
      ~finally:(fun () ->
          e.in_batch <- false;
          flush_batch e)
      body
  end

(* The drains below bypass [step]'s peek/pop option churn: one
   [pop_due] per event returns the closure or the [null_event]
   sentinel, with the key through [key_cell] — zero allocation per
   event. [in_batch] is known true inside the window, so the batched
   counter branch is inlined. The profiled twin adds three monotonic
   clock reads per event (pop and handler deltas); a window picks its
   drain once, so the plain loop never tests the profiler. *)
let plain_drain e ~bound ~strict =
  let rec loop () =
    if not e.stopped then begin
      let f = q_pop_due e.queue ~bound ~strict ~key_out:e.key_cell in
      if f != null_event then begin
        e.now <- Float.Array.get e.key_cell 0;
        e.processed <- e.processed + 1;
        if !Mvpn_telemetry.Control.enabled then
          e.batch_events <- e.batch_events + 1;
        f ();
        loop ()
      end
    end
  in
  loop ()

let profiled_drain e ~bound ~strict =
  let p = e.prof in
  let rec loop () =
    if not e.stopped then begin
      let t0 = Profile.now_ns () in
      let f = q_pop_due e.queue ~bound ~strict ~key_out:e.key_cell in
      if f != null_event then begin
        e.now <- Float.Array.get e.key_cell 0;
        e.processed <- e.processed + 1;
        if !Mvpn_telemetry.Control.enabled then
          e.batch_events <- e.batch_events + 1;
        let t1 = Profile.now_ns () in
        f ();
        let t2 = Profile.now_ns () in
        Profile.note_event p ~pop_ns:(t1 - t0) ~handler_ns:(t2 - t1);
        loop ()
      end
      else
        (* The unproductive final pop still cost a queue walk. *)
        Profile.note_pop p (Profile.now_ns () - t0)
    end
  in
  loop ()

let drain e ~bound ~strict =
  if Profile.enabled e.prof then profiled_drain e ~bound ~strict
  else plain_drain e ~bound ~strict

let run ?until e =
  e.stopped <- false;
  let horizon = match until with Some t -> t | None -> infinity in
  in_window e (fun () ->
      drain e ~bound:horizon ~strict:false;
      if (not e.stopped) && Float.is_finite horizon && horizon > e.now then
        e.now <- horizon)

let peek_time e = Option.map fst (q_peek e.queue)

(* Bounded-horizon drain for the parallel runner: process events with
   time strictly below [before], but do not advance [now] to the bound
   itself — the window bound is a synchronization artifact, not a
   simulated instant, and a later window (or the final inclusive [run])
   owns the events at the bound. *)
let run_before e ~before =
  e.stopped <- false;
  in_window e (fun () -> drain e ~bound:before ~strict:true)

let pending e = q_size e.queue

let processed e = e.processed

let stop e = e.stopped <- true
