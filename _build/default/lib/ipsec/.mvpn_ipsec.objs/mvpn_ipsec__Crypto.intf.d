lib/ipsec/crypto.mli: Bytes
