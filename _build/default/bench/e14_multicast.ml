(* E14 — group communication (abstract: "users who want to specify
   group communication").

   Group delivery by ingress replication: the ingress PE sends one copy
   per member site. Measures the replication cost (packets on the wire
   per group send) and delivery correctness as the group grows — the
   known linear-ingress-cost tradeoff of the simplest multicast VPN
   design. *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow
module Port = Mvpn_qos.Port

let run_size n_sites =
  let bb = Backbone.build ~pops:12 () in
  let sites =
    List.init n_sites (fun i ->
        Backbone.attach_site bb ~id:i ~name:(Printf.sprintf "s%d" i) ~vpn:1
          ~prefix:(Prefix.make (Ipv4.of_octets 10 i 0 0) 16)
          ~pop:(i mod 12))
  in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let _vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites () in
  let received = ref 0 in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (fun _ -> incr received))
    sites;
  let sender = List.hd sites in
  let sends = 10 in
  for _ = 1 to sends do
    Network.inject net sender.Site.ce_node
      (Packet.make ~vpn:1 ~size:500 ~now:(Engine.now engine)
         (Flow.make (Prefix.nth_host sender.Site.prefix 1)
            (Ipv4.of_string_exn "239.0.0.1")))
  done;
  Engine.run engine;
  (* Wire cost: packets offered to the sender PE's core-facing ports. *)
  let pe = sender.Site.pe_node in
  let core_tx =
    List.fold_left
      (fun acc (l : Topology.link) ->
         if l.Topology.src = pe
         && Backbone.pop_of_node bb l.Topology.dst <> None then
           acc + (Port.counters (Network.port net ~link_id:l.Topology.id)).Port.offered
         else acc)
      0
      (Topology.links (Backbone.topology bb))
  in
  (sends, !received, core_tx, Network.drops net)

let run () =
  Tables.heading
    "E14: group communication by ingress replication (10 group sends)";
  let widths = [8; 10; 12; 16; 8] in
  Tables.row widths
    ["sites"; "expected"; "delivered"; "copies into core"; "drops"];
  Tables.rule widths;
  List.iter
    (fun n ->
       let sends, received, core_tx, drops = run_size n in
       Tables.row widths
         [ string_of_int n;
           string_of_int (sends * (n - 1));
           string_of_int received;
           string_of_int core_tx;
           string_of_int drops ])
    [2; 4; 8; 16; 24];
  Tables.note
    "\nEvery member site receives each group send exactly once, never\n\
     the sender or another VPN. The cost of this simplest multicast VPN\n\
     design is visible in the copies column: the ingress PE emits\n\
     O(sites) copies per send — the tradeoff later P2MP LSP designs\n\
     eliminate."
