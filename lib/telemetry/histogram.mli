(** Log-bucketed histogram for latencies and sizes.

    Buckets are powers of two above a configurable floor, so recording
    is O(1) with no per-sample allocation, and quantiles (p50/p90/p99)
    are estimated by interpolating inside the crossing bucket — bounded
    relative error, clamped to the exact observed min/max. Recording is
    a no-op while {!Control} is disabled.

    Domain-safe like {!Counter}: bucket geometry is shared, mutable
    state is domain-local; merge per-domain partials with
    {!snapshot} + {!absorb}. *)

type t

val make : ?lo:float -> ?buckets:int -> string -> t
(** [make name] with bucket 0 starting at [lo] (default [1e-9], fitting
    sub-nanosecond to multi-hour latencies in the default 96 buckets).
    {!Registry.histogram} is the usual entry point.
    @raise Invalid_argument if [lo <= 0] or [buckets < 1]. *)

val name : t -> string

val observe : t -> float -> unit

val observe_int : t -> int -> unit
(** Integer convenience (trie depths, byte sizes); the int→float
    conversion is skipped entirely while telemetry is disabled. *)

val count : t -> int

val sum : t -> float

val mean : t -> float

val min_value : t -> float

val max_value : t -> float
(** Exact observed extrema (0 when empty). *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]; 0 when empty.
    @raise Invalid_argument outside [0, 1]. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val reset : t -> unit

type snapshot

val snapshot : t -> snapshot
(** Capture counts and extrema for a later {!restore}. *)

val restore : t -> snapshot -> unit
(** Overwrite the histogram's state with the snapshot, unconditionally
    (like {!reset}, this is a harness operation, not instrumentation).
    A snapshot from a histogram with a different bucket count restores
    what fits. *)

val absorb : t -> snapshot -> unit
(** Merge the snapshot into the histogram: bucket counts and totals
    add, extrema widen. Associative and commutative, so per-domain
    partials can be folded in any order. Unconditional, like
    {!restore}. *)

val pp : Format.formatter -> t -> unit
