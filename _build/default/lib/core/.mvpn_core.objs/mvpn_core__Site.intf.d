lib/core/site.mli: Format Mvpn_net
