lib/atm/cell.ml: Format Printf
