lib/core/interprovider.mli: Backbone Mpls_vpn Mvpn_net Mvpn_sim Network Qos_mapping Site
