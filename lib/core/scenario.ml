module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Rng = Mvpn_sim.Rng
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Flow = Mvpn_net.Flow
module Dscp = Mvpn_net.Dscp
module Sla = Mvpn_qos.Sla
module Port = Mvpn_qos.Port
module Crypto = Mvpn_ipsec.Crypto

type deployment =
  | Mpls_deployment of { policy : Qos_mapping.policy; use_te : bool }
  | Overlay_deployment of {
      policy : Qos_mapping.policy;
      cipher : Crypto.cipher;
      copy_tos : bool;
    }

type t = {
  engine : Engine.t;
  backbone : Backbone.t;
  net : Network.t;
  registry : Traffic.registry;
  sites : Site.t array;
  access_bandwidth : float;
  mpls : Mpls_vpn.t option;
  overlay : Overlay.t option;
  core_link_ids : int list;
  rng : Rng.t;
}

let engine t = t.engine
let network t = t.net
let backbone t = t.backbone
let registry t = t.registry
let mpls t = t.mpls
let overlay t = t.overlay
let sites t = t.sites

let site t ~vpn ~idx =
  match
    Array.find_opt
      (fun (s : Site.t) ->
         s.Site.vpn = vpn
         && s.Site.id mod 1000 = idx)
      t.sites
  with
  | Some s -> s
  | None -> raise Not_found

let site_id ~vpn ~idx = (vpn * 1000) + idx

let build ?backend ?(pops = 12) ?(core_bandwidth = 45e6) ?core_delay
    ?(access_bandwidth = 2e6) ?(vpns = 2) ?(sites_per_vpn = 4) ?(seed = 11)
    ?wred ?te_bandwidth deployment =
  let bb = Backbone.build ~pops ~core_bandwidth ?core_delay () in
  let site_list = ref [] in
  for v = 1 to vpns do
    for k = 0 to sites_per_vpn - 1 do
      (* Identical prefix plan in every VPN: isolation by construction
         or not at all. *)
      let prefix = Prefix.make (Ipv4.of_octets 10 k 0 0) 16 in
      let pop = (v + (k * 3)) mod pops in
      let s =
        Backbone.attach_site ~access_bandwidth bb ~id:(site_id ~vpn:v ~idx:k)
          ~name:(Printf.sprintf "v%d-s%d" v k) ~vpn:v ~prefix ~pop
      in
      site_list := s :: !site_list
    done
  done;
  let all_sites = List.rev !site_list in
  let engine = Engine.create ?backend () in
  let policy =
    match deployment with
    | Mpls_deployment { policy; _ } -> policy
    | Overlay_deployment { policy; _ } -> policy
  in
  let net =
    Network.create ~policy ?wred ~seed engine (Backbone.topology bb)
  in
  let core_link_ids =
    List.filter_map
      (fun (l : Topology.link) ->
         let is_pop v = Backbone.pop_of_node bb v <> None in
         if is_pop l.Topology.src && is_pop l.Topology.dst then
           Some l.Topology.id
         else None)
      (Topology.links (Backbone.topology bb))
  in
  let mpls_t, overlay_t =
    match deployment with
    | Mpls_deployment { use_te; _ } ->
      ( Some
          (Mpls_vpn.deploy ~use_te ?te_bandwidth ~net ~backbone:bb
             ~sites:all_sites ()),
        None )
    | Overlay_deployment { cipher; copy_tos; _ } ->
      (None, Some (Overlay.deploy ~cipher ~copy_tos ~net ~sites:all_sites ()))
  in
  let registry = Traffic.registry engine in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (Traffic.sink registry))
    all_sites;
  (* Overlay CEs intercept before the sink; re-install the interceptors
     (deploy already did) and keep the sink for decapsulated traffic. *)
  { engine; backbone = bb; net; registry; sites = Array.of_list all_sites;
    access_bandwidth; mpls = mpls_t; overlay = overlay_t; core_link_ids;
    rng = Rng.create (seed * 131) }

let service_classes =
  [ ("voice", Dscp.ef, Sla.voice_spec);
    ("transactional", Dscp.af 3 1, Sla.transactional_spec);
    ("bulk", Dscp.best_effort, Sla.best_effort_spec) ]

let voice_rate = 64_000.0
let transactional_rate = 200_000.0

(* [armed = false] creates the senders (so flows are registered for
   sink-side measurement — the receive end of a pair may live in
   another shard) and performs every RNG draw of the armed path, but
   starts no arrival process: a partitioned run arms only the pairs a
   shard owns, yet each pair's substreams must be byte-identical to the
   sequential run's, so draw order cannot depend on the ownership
   filter. *)
let add_pair_workload t ~armed ~load ~start ~stop rng (a : Site.t)
    (b : Site.t) =
  let make_sender ~label ~dscp ~port =
    let flow =
      Flow.make ~proto:Flow.Udp ~src_port:port ~dst_port:port
        (Prefix.nth_host a.Site.prefix 1)
        (Prefix.nth_host b.Site.prefix 1)
    in
    Traffic.sender t.registry ~net:t.net ~src_node:a.Site.ce_node ~flow
      ~dscp ~vpn:a.Site.vpn
      ~collector:(Traffic.collector t.registry label)
      ()
  in
  let voice = make_sender ~label:"voice" ~dscp:Dscp.ef ~port:5060 in
  let r_voice = Rng.fork rng in
  if armed then
    Traffic.onoff t.engine r_voice ~start ~stop ~on_mean:1.0
      ~off_mean:1.35 ~rate_bps:voice_rate ~packet_bytes:200 voice;
  let transactional =
    make_sender ~label:"transactional" ~dscp:(Dscp.af 3 1) ~port:1433
  in
  let r_transactional = Rng.fork rng in
  if armed then
    Traffic.poisson t.engine r_transactional ~start ~stop
      ~rate_pps:(transactional_rate /. (512.0 *. 8.0))
      ~packet_bytes:512 transactional;
  let bulk = make_sender ~label:"bulk" ~dscp:Dscp.best_effort ~port:20 in
  let bulk_rate =
    Float.max 0.0
      ((load *. t.access_bandwidth) -. voice_rate -. transactional_rate)
  in
  if bulk_rate > 0.0 then begin
    let r_bulk = Rng.fork rng in
    if armed then begin
      let mean_burst_bytes = 30_000.0 in
      Traffic.pareto_bursts t.engine r_bulk ~start ~stop
        ~burst_rate:(bulk_rate /. (mean_burst_bytes *. 8.0))
        ~mean_burst_bytes bulk
    end
  end

let add_mixed_workload ?(load = 0.9) ?(start = 0.0) ?rng_seed ?only t ~pairs
    ~duration =
  let rng =
    match rng_seed with Some s -> Rng.create s | None -> Rng.fork t.rng
  in
  List.iter
    (fun (a, b) ->
       let armed = match only with None -> true | Some f -> f a b in
       add_pair_workload t ~armed ~load ~start ~stop:(start +. duration) rng
         a b)
    pairs

(* Diurnal envelope for long soaks: [segments] equal windows across the
   duration, each a mixed workload whose load follows a raised-cosine
   day curve — trough at the edges, peak mid-run. One shared rng forked
   exactly once per segment regardless of the ownership filter, so a
   partitioned soak draws the identical stream per replica. *)
let add_diurnal_workload ?(peak_load = 0.9) ?(floor_load = 0.3)
    ?(segments = 8) ?only t ~pairs ~duration =
  if segments < 1 then
    invalid_arg "Scenario.add_diurnal_workload: segments must be >= 1";
  if not (Float.is_finite duration && duration > 0.0) then
    invalid_arg
      "Scenario.add_diurnal_workload: duration must be finite and positive";
  let rng = Rng.fork t.rng in
  let seg = duration /. float_of_int segments in
  for i = 0 to segments - 1 do
    let phase =
      2.0 *. Float.pi *. (float_of_int i +. 0.5) /. float_of_int segments
    in
    let load =
      floor_load
      +. (peak_load -. floor_load) *. 0.5 *. (1.0 -. Float.cos phase)
    in
    let start = float_of_int i *. seg in
    List.iter
      (fun (a, b) ->
         let armed = match only with None -> true | Some f -> f a b in
         add_pair_workload t ~armed ~load ~start ~stop:(start +. seg) rng a
           b)
      pairs
  done

let default_pairs t =
  let pairs = ref [] in
  Array.iteri
    (fun i a ->
       if i mod 2 = 0 && i + 1 < Array.length t.sites then
         pairs := (a, t.sites.(i + 1)) :: !pairs)
    t.sites;
  !pairs

(* Node → POP region, for partitioning: a POP node maps to its own
   index, a CE to its PE's POP, so a region (POP plus homed sites) is
   never split across shards and every cut is a core link. *)
let region_hint t =
  let topo = Backbone.topology t.backbone in
  let n = Topology.node_count topo in
  let hint = Array.init n (fun v -> Backbone.pop_of_node t.backbone v) in
  Array.iter
    (fun (s : Site.t) ->
       if s.Site.ce_node < n then
         hint.(s.Site.ce_node) <- Backbone.pop_of_node t.backbone s.Site.pe_node)
    t.sites;
  fun v -> if v >= 0 && v < n then hint.(v) else None

(* Declare the stock per-band objectives for every VPN with sites in
   this scenario (plus vpn 0, where un-tenanted traffic books) and
   attach the engine and a span sampler to the network. *)
let attach_slo ?slo ?(sample_every = 64) t =
  let slo =
    match slo with
    | Some s -> s
    | None -> Mvpn_telemetry.Slo.create ()
  in
  let vpns =
    Array.fold_left
      (fun acc (s : Site.t) ->
         if List.mem s.Site.vpn acc then acc else s.Site.vpn :: acc)
      [ 0 ] t.sites
    |> List.sort_uniq Int.compare
  in
  List.iter
    (fun vpn ->
       for band = 0 to Qos_mapping.band_count - 1 do
         Mvpn_telemetry.Slo.declare slo ~vpn ~band
           (Qos_mapping.default_objective band)
       done)
    vpns;
  Network.set_slo t.net (Some slo);
  Network.set_span_sampler t.net
    (Some (Mvpn_telemetry.Span.sampler ~every:sample_every ()));
  slo

let run t ~duration =
  Engine.run ~until:duration t.engine;
  (* Close out the conformance windows at the horizon so the final
     seconds are evaluated even if no packet lands after them. *)
  match Network.slo t.net with
  | Some slo -> Mvpn_telemetry.Slo.advance slo ~time:(Engine.now t.engine)
  | None -> ()

let class_report t label = Traffic.report t.registry label

let class_reports t =
  List.map (fun label -> (label, Traffic.report t.registry label))
    (Traffic.labels t.registry)

let core_link_ids t = t.core_link_ids

let core_links t =
  let is_pop v = Backbone.pop_of_node t.backbone v <> None in
  List.sort_uniq compare
    (List.filter_map
       (fun (l : Topology.link) ->
          if is_pop l.Topology.src && is_pop l.Topology.dst
          && l.Topology.src < l.Topology.dst
          then Some (l.Topology.src, l.Topology.dst)
          else None)
       (Topology.links (Backbone.topology t.backbone)))

let max_core_utilization t =
  let now = Engine.now t.engine in
  List.fold_left
    (fun acc link_id ->
       Float.max acc (Port.utilization (Network.port t.net ~link_id) ~now))
    0.0 t.core_link_ids

let core_loss_fraction t =
  let offered, dropped =
    List.fold_left
      (fun (o, d) link_id ->
         let c = Port.counters (Network.port t.net ~link_id) in
         (o + c.Port.offered, d + c.Port.dropped_queue))
      (0, 0) t.core_link_ids
  in
  if offered = 0 then 0.0 else float_of_int dropped /. float_of_int offered
