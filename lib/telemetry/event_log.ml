(* Bounded ring of typed, timestamped operational events — the "what
   happened" companion to the metric registry's "how much". Recording
   overwrites the oldest entry and is a no-op while {!Control} is
   disabled; reading scans the ring (a forensics surface, not a hot
   path). Timestamps come from a pluggable clock so producers that do
   not own an engine (topology link flaps, dataplane recompiles) can
   still stamp simulation time. *)

type event =
  | Slo_violation of {
      vpn : int;
      band : int;
      dimension : string;
      value : float;
      bound : float;
    }
  | Slo_recovered of {
      vpn : int;
      band : int;
      dimension : string;
      value : float;
      bound : float;
    }
  | Alert_fire of { vpn : int; band : int; burn_fast : float; burn_slow : float }
  | Alert_clear of { vpn : int; band : int; burn_fast : float }
  | Link_down of { src : int; dst : int }
  | Link_up of { src : int; dst : int }
  | Recompile of { node : int }
  | Fault_injected of { fault : string; a : int; b : int; param : float }
  | Frr_switchover of { src : int; dst : int }
  | Fallback_engaged of { ingress : int; egress : int }
  | Lsp_restored of { ingress : int; egress : int }
  | Flap_damped of { src : int; dst : int; flaps : int }
  | Flap_released of { src : int; dst : int }
  | Resignal of { attempt : int; restored : int; still_down : int }
  | Invariant_violated of { invariant : string; detail : string }
  | Note of string

type entry = { seq : int; time : float; event : event }

let dummy = { seq = -1; time = 0.0; event = Note "" }

type t = {
  data : entry array;
  mutable pos : int;  (* next slot to overwrite *)
  mutable recorded : int;  (* total ever recorded *)
  mutable clock : unit -> float;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Event_log.create: capacity must be positive";
  { data = Array.make capacity dummy; pos = 0; recorded = 0;
    clock = (fun () -> 0.0) }

let set_clock t clock = t.clock <- clock

let capacity t = Array.length t.data

let recorded t = t.recorded

let record t ?time event =
  if !Control.enabled then begin
    let time = match time with Some x -> x | None -> t.clock () in
    t.data.(t.pos) <- { seq = t.recorded; time; event };
    t.pos <- (t.pos + 1) mod Array.length t.data;
    t.recorded <- t.recorded + 1
  end

(* Oldest-first fold over live entries. *)
let fold f t init =
  let cap = Array.length t.data in
  let live = min t.recorded cap in
  let start = (t.pos - live + cap) mod cap in
  let acc = ref init in
  for i = 0 to live - 1 do
    acc := f !acc t.data.((start + i) mod cap)
  done;
  !acc

let entries t = List.rev (fold (fun acc e -> e :: acc) t [])

let recent t n =
  let all = entries t in
  let live = List.length all in
  if live <= n then all
  else List.filteri (fun i _ -> i >= live - n) all

let kind = function
  | Slo_violation _ -> "slo_violation"
  | Slo_recovered _ -> "slo_recovered"
  | Alert_fire _ -> "alert_fire"
  | Alert_clear _ -> "alert_clear"
  | Link_down _ -> "link_down"
  | Link_up _ -> "link_up"
  | Recompile _ -> "recompile"
  | Fault_injected _ -> "fault_injected"
  | Frr_switchover _ -> "frr_switchover"
  | Fallback_engaged _ -> "fallback_engaged"
  | Lsp_restored _ -> "lsp_restored"
  | Flap_damped _ -> "flap_damped"
  | Flap_released _ -> "flap_released"
  | Resignal _ -> "resignal"
  | Invariant_violated _ -> "invariant_violated"
  | Note _ -> "note"

let count_kind t k =
  fold (fun acc e -> if String.equal (kind e.event) k then acc + 1 else acc)
    t 0

let clear t =
  Array.fill t.data 0 (Array.length t.data) dummy;
  t.pos <- 0;
  t.recorded <- 0

(* --- export ------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v else "0"

let entry_to_json e =
  let detail =
    match e.event with
    | Slo_violation { vpn; band; dimension; value; bound }
    | Slo_recovered { vpn; band; dimension; value; bound } ->
      Printf.sprintf
        "\"vpn\":%d,\"band\":%d,\"dimension\":\"%s\",\"value\":%s,\"bound\":%s"
        vpn band (json_escape dimension) (json_float value) (json_float bound)
    | Alert_fire { vpn; band; burn_fast; burn_slow } ->
      Printf.sprintf
        "\"vpn\":%d,\"band\":%d,\"burn_fast\":%s,\"burn_slow\":%s" vpn band
        (json_float burn_fast) (json_float burn_slow)
    | Alert_clear { vpn; band; burn_fast } ->
      Printf.sprintf "\"vpn\":%d,\"band\":%d,\"burn_fast\":%s" vpn band
        (json_float burn_fast)
    | Link_down { src; dst } | Link_up { src; dst }
    | Frr_switchover { src; dst } | Flap_released { src; dst } ->
      Printf.sprintf "\"src\":%d,\"dst\":%d" src dst
    | Recompile { node } -> Printf.sprintf "\"node\":%d" node
    | Fault_injected { fault; a; b; param } ->
      Printf.sprintf "\"fault\":\"%s\",\"a\":%d,\"b\":%d,\"param\":%s"
        (json_escape fault) a b (json_float param)
    | Fallback_engaged { ingress; egress } | Lsp_restored { ingress; egress } ->
      Printf.sprintf "\"ingress\":%d,\"egress\":%d" ingress egress
    | Flap_damped { src; dst; flaps } ->
      Printf.sprintf "\"src\":%d,\"dst\":%d,\"flaps\":%d" src dst flaps
    | Resignal { attempt; restored; still_down } ->
      Printf.sprintf "\"attempt\":%d,\"restored\":%d,\"still_down\":%d"
        attempt restored still_down
    | Invariant_violated { invariant; detail } ->
      Printf.sprintf "\"invariant\":\"%s\",\"detail\":\"%s\""
        (json_escape invariant) (json_escape detail)
    | Note text -> Printf.sprintf "\"text\":\"%s\"" (json_escape text)
  in
  Printf.sprintf "{\"seq\":%d,\"time\":%s,\"kind\":\"%s\",%s}" e.seq
    (json_float e.time) (kind e.event) detail

let json_entries ?limit t =
  let es = match limit with Some n -> recent t n | None -> entries t in
  "[" ^ String.concat "," (List.map entry_to_json es) ^ "]"

let pp_event ppf = function
  | Slo_violation { vpn; band; dimension; value; bound } ->
    Format.fprintf ppf "slo_violation vpn=%d band=%d %s=%.6g bound=%.6g" vpn
      band dimension value bound
  | Slo_recovered { vpn; band; dimension; value; bound } ->
    Format.fprintf ppf "slo_recovered vpn=%d band=%d %s=%.6g bound=%.6g" vpn
      band dimension value bound
  | Alert_fire { vpn; band; burn_fast; burn_slow } ->
    Format.fprintf ppf "alert_fire vpn=%d band=%d burn=%.3g/%.3g" vpn band
      burn_fast burn_slow
  | Alert_clear { vpn; band; burn_fast } ->
    Format.fprintf ppf "alert_clear vpn=%d band=%d burn=%.3g" vpn band
      burn_fast
  | Link_down { src; dst } -> Format.fprintf ppf "link_down %d<->%d" src dst
  | Link_up { src; dst } -> Format.fprintf ppf "link_up %d<->%d" src dst
  | Recompile { node } -> Format.fprintf ppf "recompile node=%d" node
  | Fault_injected { fault; a; b; param } ->
    Format.fprintf ppf "fault %s %d<->%d param=%.3g" fault a b param
  | Frr_switchover { src; dst } ->
    Format.fprintf ppf "frr_switchover %d->%d" src dst
  | Fallback_engaged { ingress; egress } ->
    Format.fprintf ppf "fallback_engaged pe%d->pe%d" ingress egress
  | Lsp_restored { ingress; egress } ->
    Format.fprintf ppf "lsp_restored pe%d->pe%d" ingress egress
  | Flap_damped { src; dst; flaps } ->
    Format.fprintf ppf "flap_damped %d<->%d after %d flaps" src dst flaps
  | Flap_released { src; dst } ->
    Format.fprintf ppf "flap_released %d<->%d" src dst
  | Resignal { attempt; restored; still_down } ->
    Format.fprintf ppf "resignal attempt=%d restored=%d still_down=%d"
      attempt restored still_down
  | Invariant_violated { invariant; detail } ->
    Format.fprintf ppf "invariant_violated %s: %s" invariant detail
  | Note text -> Format.fprintf ppf "note %s" text

let pp_entry ppf e =
  Format.fprintf ppf "%.6f #%d %a" e.time e.seq pp_event e.event
