lib/mpls/label.mli:
