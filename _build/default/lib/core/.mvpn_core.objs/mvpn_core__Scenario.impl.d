lib/core/scenario.ml: Array Backbone Float List Mpls_vpn Mvpn_ipsec Mvpn_net Mvpn_qos Mvpn_sim Network Overlay Printf Qos_mapping Site Traffic
