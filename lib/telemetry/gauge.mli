(** Last-value gauge (queue depth, utilization, table size). Mutation is
    a no-op while {!Control} is disabled.

    Domain-safe like {!Counter}: the value cell is domain-local, and
    [Registry.absorb] merges per-domain partials by addition (the
    gauges that accumulate across shards — accounting mirrors — are
    additive; purely last-value gauges are only ever set from one
    domain). *)

type t

val make : string -> t
(** Bare gauge; {!Registry.gauge} is the usual entry point. *)

val name : t -> string

val set : t -> float -> unit

val value : t -> float

val reset : t -> unit

val pp : Format.formatter -> t -> unit
