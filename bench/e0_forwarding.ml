(* E0 — forwarding cost (§3, claim C2).

   "The labels enable routers and switches to forward traffic based on
   information in the labels instead of having to inspect the various
   fields deep within each and every packet."

   Races the per-packet work of a conventional IP router (longest-
   prefix match over a Patricia trie) against an LSR (constant-time
   label index), at several FIB sizes, using Bechamel. *)

open Bechamel
module Radix = Mvpn_net.Radix
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Lfib = Mvpn_mpls.Lfib
module Rng = Mvpn_sim.Rng

let probe_count = 4096

let build_fib n =
  let rng = Rng.create 42 in
  let t = Radix.create () in
  let added = ref 0 in
  while !added < n do
    let addr = Ipv4.of_int32_exn (Rng.int rng 0xFFFF_FFF * 16) in
    let len = Rng.int_in rng 12 24 in
    let p = Prefix.make addr len in
    if Radix.find t p = None then begin
      Radix.add t p !added;
      incr added
    end
  done;
  t

let build_lfib n =
  let t = Lfib.create () in
  for i = 0 to n - 1 do
    Lfib.install t ~in_label:(16 + i) { Lfib.op = Lfib.Swap (16 + i); next_hop = 1 }
  done;
  t

let probes =
  let rng = Rng.create 77 in
  Array.init probe_count (fun _ -> Ipv4.of_int32_exn (Rng.int rng 0xFFFF_FFF * 16))

let label_probes n =
  let rng = Rng.create 99 in
  Array.init probe_count (fun _ -> 16 + Rng.int rng n)

let lpm_test name n =
  let fib = build_fib n in
  let i = ref 0 in
  Test.make ~name (Staged.stage (fun () ->
      let a = probes.(!i land (probe_count - 1)) in
      incr i;
      Sys.opaque_identity (Radix.lookup fib a)))

let lfib_test name n =
  let lfib = build_lfib n in
  let ps = label_probes n in
  let i = ref 0 in
  Test.make ~name (Staged.stage (fun () ->
      let l = ps.(!i land (probe_count - 1)) in
      incr i;
      Sys.opaque_identity (Lfib.lookup lfib l)))

(* ---- E0b: full data path, route cache armed vs disabled -------------

   The Bechamel race above isolates one lookup; this section pushes a
   mixed IP + labelled stream through the complete per-hop decision
   path — interceptor dispatch, LFIB step, longest-prefix match, TTL —
   across a line of LSRs, by driving {!Dataplane.receive} directly with
   synchronous hooks (each transmit hands the packet straight to the
   next hop, no event engine between hops). Same tables, same packets;
   the only difference is whether each hop's route lookup hits the
   compiled pipeline's direct-mapped cache or walks the trie. *)

module Dataplane = Mvpn_core.Dataplane
module Fib = Mvpn_net.Fib
module Plane = Mvpn_mpls.Plane
module Packet = Mvpn_net.Packet
module Flow = Mvpn_net.Flow

let rate_nodes = 8
let rate_fill = 40_000 (* filler routes per node FIB *)
let rate_packets = 200_000
let rate_dsts = 256 (* distinct probe dsts: all fit the 512-slot cache *)

(* Filler fills 10/8 densely so the probe lookups walk a deep trie,
   but skips the 10.9/16 block entirely; with lengths >= 17 no filler
   prefix can contain a 10.9.x.y probe, so filler never diverts the
   stream — it only makes the longest-prefix match work for its
   answer. *)
let fill_fib fib ~next_hop =
  let rng = Rng.create 17 in
  let added = ref 0 in
  while !added < rate_fill do
    let addr = Ipv4.of_int32_exn (0x0A00_0000 lor (Rng.int rng 0xFF_FFFF)) in
    let p = Prefix.make addr (Rng.int_in rng 17 28) in
    if (Ipv4.to_int (Prefix.network p) lsr 16) land 0xFF <> 0x09
    && Fib.find fib p = None
    then begin
      Fib.add fib p { Fib.next_hop; cost = 10; source = Fib.Static };
      incr added
    end
  done

let rate_run ~cache =
  let nodes = rate_nodes in
  let last = nodes - 1 in
  let plane = Plane.create ~nodes in
  let fibs = Array.init nodes (fun _ -> Fib.create ()) in
  for i = 0 to last do
    fill_fib fibs.(i) ~next_hop:(min (i + 1) last);
    Fib.add fibs.(i)
      (Prefix.make (Ipv4.of_octets 10 9 0 0) 16)
      { Fib.next_hop = (if i < last then i + 1 else Fib.local_delivery);
        cost = 1; source = Fib.Static }
  done;
  (* Swap chain for the labelled quarter of the stream; PHP-style
     pop-and-continue-by-IP at the penultimate hop. *)
  for i = 0 to last - 1 do
    Lfib.install (Plane.lfib plane i) ~in_label:(200 + i)
      (if i < last - 1 then
         { Lfib.op = Lfib.Swap (200 + i + 1); next_hop = i + 1 }
       else { Lfib.op = Lfib.Pop_and_ip; next_hop = Lfib.local })
  done;
  let dp = Dataplane.create ~cache ~nodes ~plane ~fibs () in
  let delivered = ref 0 in
  let dropped = ref 0 in
  Dataplane.set_hooks dp
    { Dataplane.transmit =
        (fun ~from ~to_ p -> Dataplane.receive dp to_ ~from:(Some from) p);
      deliver = (fun ~node:_ _ -> incr delivered);
      drop = (fun ~node:_ _ _ -> incr dropped);
      notify_receive = (fun ~node:_ ~from:_ _ -> ()) };
  let src = Ipv4.of_octets 172 31 255 254 in
  let inject k =
    let d = k * 0x9E37 land (rate_dsts - 1) in
    let dst = Ipv4.of_octets 10 9 (d lsr 5) (d land 31) in
    let p = Packet.make ~now:0.0 (Flow.make src dst) in
    if k land 3 = 3 then Packet.push_label p ~label:200 ~exp:0 ~ttl:64;
    Dataplane.receive dp 0 ~from:None p
  in
  (* Warmup batch: fills the caches (when armed) and the allocator, so
     neither setting pays one-time costs inside the timed region. *)
  for k = 0 to (rate_packets / 4) - 1 do inject k done;
  delivered := 0;
  let t0 = Unix.gettimeofday () in
  for k = 0 to rate_packets - 1 do inject k done;
  let dt = Unix.gettimeofday () -. t0 in
  if !dropped > 0 then Tables.note "WARNING: %d drops in rate race" !dropped;
  (!delivered, dt)

let rate_race () =
  Tables.heading "E0b: dataplane forwarding rate, route cache on vs off";
  (* Production fast path: telemetry off for the timed region. *)
  let (d_on, t_on), (d_off, t_off) =
    Mvpn_telemetry.Control.with_disabled (fun () ->
        (rate_run ~cache:true, rate_run ~cache:false))
  in
  let pps d t = float_of_int d /. t in
  let on_pps = pps d_on t_on and off_pps = pps d_off t_off in
  let widths = [26; 12; 12; 12] in
  Tables.row widths ["dataplane"; "delivered"; "wall s"; "kpkt/s"];
  Tables.rule widths;
  Tables.row widths
    [ "route cache on"; string_of_int d_on; Printf.sprintf "%.3f" t_on;
      Tables.f1 (on_pps /. 1e3) ];
  Tables.row widths
    [ "route cache off"; string_of_int d_off; Printf.sprintf "%.3f" t_off;
      Tables.f1 (off_pps /. 1e3) ];
  if d_on <> d_off then
    Tables.note "WARNING: delivery counts differ (%d vs %d)" d_on d_off;
  let speedup = on_pps /. off_pps in
  Tables.note
    "\nMixed workload (3:1 IP:labelled, %d routes/node, %d-node line):\n\
     the compiled pipeline's route cache forwards %.2fx faster than\n\
     per-packet trie walks — the architectural point of C2 reproduced\n\
     inside one router's software path." rate_fill rate_nodes speedup;
  (* Later sections bracket the registry with snapshot/restore, so
     these survive to BENCH_telemetry.json without re-application. *)
  List.iter
    (fun (name, v) ->
       Mvpn_telemetry.Gauge.set (Mvpn_telemetry.Registry.gauge name) v)
    [ ("e0.rate.cached_pps", on_pps);
      ("e0.rate.uncached_pps", off_pps);
      ("e0.rate.speedup", speedup) ]

let run () =
  Tables.heading "E0: label swap lookup vs IP longest-prefix match (Bechamel)";
  let tests =
    Test.make_grouped ~name:"forwarding"
      [ lpm_test "ip-lpm-1k-prefixes" 1_000;
        lpm_test "ip-lpm-10k-prefixes" 10_000;
        lpm_test "ip-lpm-100k-prefixes" 100_000;
        lfib_test "mpls-lfib-1k-labels" 1_000;
        lfib_test "mpls-lfib-100k-labels" 100_000 ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  (* Measure the production fast path: telemetry off, whatever the
     harness set globally. *)
  let raw =
    Mvpn_telemetry.Control.with_disabled (fun () ->
        Benchmark.all cfg Toolkit.Instance.[monotonic_clock] tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let ns name =
    match Hashtbl.fold (fun k v acc ->
        if String.length k >= String.length name
        && String.sub k (String.length k - String.length name)
             (String.length name) = name
        then Some v else acc)
        results None
    with
    | Some o ->
      (match Analyze.OLS.estimates o with
       | Some (e :: _) -> e
       | Some [] | None -> nan)
    | None -> nan
  in
  let widths = [26; 12] in
  Tables.row widths ["lookup"; "ns/packet"];
  Tables.rule widths;
  let names =
    [ "ip-lpm-1k-prefixes"; "ip-lpm-10k-prefixes"; "ip-lpm-100k-prefixes";
      "mpls-lfib-1k-labels"; "mpls-lfib-100k-labels" ]
  in
  List.iter (fun n -> Tables.row widths [n; Tables.f1 (ns n)]) names;
  let ratio = ns "ip-lpm-100k-prefixes" /. ns "mpls-lfib-100k-labels" in
  Tables.note
    "\nAt 100k routes, label indexing is %.1fx cheaper per packet than\n\
     the longest-prefix match (paper C2: labels avoid inspecting fields\n\
     deep within each packet; expected shape: integer-factor advantage\n\
     that grows with table size)." ratio;
  rate_race ()
