(* E3 — VPN service procedures (§4, Fig. 2).

   The three functions: membership discovery, reachability exchange and
   data carriage. Measures (a) control-message cost of joins under the
   two discovery mechanisms and two BGP session layouts, and (b) IGP
   convergence as the backbone grows. *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Mpbgp = Mvpn_routing.Mpbgp
module Ospf = Mvpn_routing.Ospf

let pops = 12

let join_sweep ~mechanism ~session_mode n =
  let bb = Backbone.build ~pops () in
  let all_sites =
    List.init n (fun i ->
        Backbone.attach_site bb ~id:i ~name:(Printf.sprintf "s%d" i) ~vpn:1
          ~prefix:(Prefix.make (Ipv4.of_octets 10 (i lsr 8) (i land 0xFF) 0) 24)
          ~pop:(i mod pops))
  in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  match all_sites with
  | [] -> (0, 0)
  | first :: rest ->
    let m =
      Mpls_vpn.deploy ~mechanism ~session_mode ~net ~backbone:bb
        ~sites:[first] ()
    in
    List.iter (fun s -> Mpls_vpn.add_site m s) rest;
    let metrics = Mpls_vpn.metrics m in
    ( Membership.messages (Mpls_vpn.membership m),
      metrics.Mpls_vpn.control_messages )

let convergence_sweep () =
  List.map
    (fun n ->
       let bb = Backbone.build ~pops:n () in
       let topo = Backbone.topology bb in
       let ospf = Ospf.create topo in
       Array.iteri
         (fun pop node ->
            Ospf.attach_prefix ospf node (Backbone.loopback bb ~pop))
         (Backbone.pops bb);
       let rounds = Ospf.converge ospf in
       (* Fail a ring link and measure reconvergence. *)
       let pops_arr = Backbone.pops bb in
       Mvpn_sim.Topology.set_duplex_state topo pops_arr.(0) pops_arr.(1)
         false;
       let rounds' = Ospf.converge ospf in
       (n, rounds, rounds', Ospf.messages_sent ospf))
    [4; 8; 12; 16; 24]

let run () =
  Tables.heading "E3a: membership/reachability control cost of N joins";
  let widths = [6; 16; 16; 16; 16] in
  Tables.row widths
    ["N"; "directory+mesh"; "flooded+mesh"; "directory+RR"; "flooded+RR"];
  Tables.row widths
    ["(sites)"; "memb/total"; "memb/total"; "memb/total"; "memb/total"];
  Tables.rule widths;
  List.iter
    (fun n ->
       let cell mechanism session_mode =
         let memb, total = join_sweep ~mechanism ~session_mode n in
         Printf.sprintf "%d/%d" memb total
       in
       Tables.row widths
         [ string_of_int n;
           cell Membership.Directory Mpbgp.Full_mesh;
           cell Membership.Flooded Mpbgp.Full_mesh;
           cell Membership.Directory (Mpbgp.Route_reflector 0);
           cell Membership.Flooded (Mpbgp.Route_reflector 0) ])
    [4; 8; 16; 32];
  Tables.note
    "\nDirectory discovery costs O(members-in-VPN) per join; flooding\n\
     costs O(PEs) per join regardless of VPN size. Route-reflector\n\
     sessions add one reflection hop of UPDATEs but cut sessions from\n\
     N(N-1)/2 to N-1 (E1's session column).";

  Tables.heading "E3b: link-state convergence vs backbone size";
  let widths = [8; 14; 18; 14] in
  Tables.row widths
    ["POPs"; "initial rounds"; "reconverge rounds"; "LSA copies"];
  Tables.rule widths;
  List.iter
    (fun (n, r0, r1, msgs) ->
       Tables.row widths
         [ string_of_int n; string_of_int r0; string_of_int r1;
           string_of_int msgs ])
    (convergence_sweep ());
  Tables.note
    "\nFlooding rounds track the ring diameter (O(N) on a ring, cut by\n\
     the express chords); reconvergence after a failure repeats the\n\
     same flood. LSA copies grow with both size and rounds."
