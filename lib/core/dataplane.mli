(** The compiled per-node forwarding pipeline.

    This is the forwarding half of what used to be [Network]: the
    per-packet decision path (interceptor dispatch → LFIB step → FIB
    longest-prefix match → FTN label push), separated from the I/O
    shell (ports, links, sinks, tracing) that [Network] keeps.

    The paper's C2 claim (§3) is that label swapping wins because the
    device stops re-inspecting fields deep within each packet. This
    module applies the same idea to the simulator's own hot path: for
    each node it {e compiles} a forwarding pipeline from the node's
    FIB, LFIB, FTN map and interceptor chain —

    - the interceptor chain becomes one prebuilt dispatcher instead of
      a per-packet [List.exists] over closures;
    - [Fib.lookup] is fronted by a direct-mapped dst → (prefix, route)
      cache (negative results cached too);
    - [Plane.find_ftn] is fronted by a FEC → FTN memo.

    Correctness rides on monotonic generation counters: the compiled
    state records the generations of {!Mvpn_net.Fib},
    {!Mvpn_mpls.Lfib}, the plane's FTN map
    ({!Mvpn_mpls.Plane.ftn_generation}) and the interceptor chain it
    was built from, and every packet re-checks them (four int
    comparisons). Reconvergence — [Fib.clear_source], [Ldp.refresh],
    interceptor changes — bumps a generation, so the next packet
    recompiles instead of being served a stale next hop.

    Cache effectiveness is observable as the telemetry counters
    [fib.cache.hit]/[fib.cache.miss] and
    [ftn.cache.hit]/[ftn.cache.miss] (gated by the global telemetry
    switch, like all hot-path metrics). *)

type verdict = Consumed | Continue

type interceptor = from:int option -> Mvpn_net.Packet.t -> verdict

(** The I/O shell's callbacks. The dataplane decides; the hooks act
    (queue on a port, hand to a sink, count a drop) and observe (trace
    a reception). *)
type hooks = {
  transmit : from:int -> to_:int -> Mvpn_net.Packet.t -> unit;
      (** queue toward a neighbor (drops ["no-link"] itself) *)
  deliver : node:int -> Mvpn_net.Packet.t -> unit;
      (** local delivery: telemetry + the node's sink *)
  drop : node:int -> Mvpn_net.Packet.t -> string -> unit;
      (** count a drop under a reason *)
  notify_receive : node:int -> from:int option -> Mvpn_net.Packet.t -> unit;
      (** observation point on every reception (tracer, hop trace) *)
}

type t

val create :
  ?cache:bool ->
  nodes:int ->
  plane:Mvpn_mpls.Plane.t ->
  fibs:Mvpn_net.Fib.t array ->
  unit -> t
(** [cache] (default [true]) arms the route/FTN caches; when off every
    packet walks the live tables — the reference path the equivalence
    property races against. Hooks default to no-ops; set them before
    the first packet. *)

val set_hooks : t -> hooks -> unit

val set_cache : t -> bool -> unit
(** Toggle the caches; flushes all compiled per-node state. *)

val cache_enabled : t -> bool

val set_auto_ftn : t -> bool -> unit
(** When on, an IP-forwarded packet whose matched FIB prefix has an FTN
    binding at the node gets the label pushed (plain MPLS ingress). *)

val set_interceptor : t -> int -> interceptor -> unit
(** Replace the node's chain with this single interceptor. *)

val add_interceptor : t -> int -> interceptor -> unit
(** Prepend to the node's chain: interceptors run in prepend order and
    the first [Consumed] wins. *)

val clear_interceptor : t -> int -> unit

val interceptor_generation : t -> int -> int
(** Bumped by every chain change at the node. *)

val receive : t -> int -> from:int option -> Mvpn_net.Packet.t -> unit
(** Run the node's compiled pipeline on one packet: notify, dispatch
    the interceptor chain, then LFIB step (labelled) or IP forwarding
    (unlabelled). *)

val forward_ip : t -> int -> Mvpn_net.Packet.t -> unit
(** Plain IP forwarding at the node, skipping the interceptor chain —
    for interceptors that finished their own processing. Cached FIB
    lookup, local delivery, optional FTN push, or relay. *)

val find_ftn :
  t -> int -> Mvpn_mpls.Fec.t -> Mvpn_mpls.Plane.ftn_entry option
(** Generation-checked cached FTN query — what services (PE ingress,
    pseudowire send) use instead of raw [Plane.find_ftn] so transport
    label selection shares the compiled state and its invalidation. *)

val recompiles : t -> int
(** How many per-node pipeline (re)compilations happened — one per
    node warm-up plus one per generation-detected invalidation. *)
