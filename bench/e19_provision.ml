(* E19 — provisioning at scale (§2.1, claim C1, quantified).

   E1 counts state for one VPN as N grows; the paper could only argue
   the fleet-level consequence. E19 measures it: compile portfolios of
   1k and 10k customer VPNs (heavy-tail Pareto site counts, ~10 sites
   mean, 100k+ routes at 10k), and report

   - per-PE state and its growth between the two scales (linear in
     attached sites if C1 holds — an overlay needs N(N-1)/2 circuits);
   - resident bytes per route with the interned store and shared group
     tables (Gc live-word delta across the compile);
   - incremental convergence: single-delta p99 versus a from-scratch
     recompile of the same final portfolio, validated by canonical
     fingerprint against the oracle. *)

module P = Mvpn_provision
module T = Mvpn_telemetry

let seed = 11
let pops = 12
let churn_ops = 200

type row = {
  n : int;
  sites : int;
  overlay : int;
  m : P.Compile.metrics;
  per_pe : (int * int) array;
  compile_s : float;
  bytes_per_route : float;
  state : P.Compile.t;
  portfolio : P.Portfolio.t;
}

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let compile_row n =
  let portfolio =
    P.Portfolio.generate ~dist:P.Portfolio.Pareto ~pe_count:pops ~seed
      ~customers:n ()
  in
  let w0 = live_words () in
  let t0 = Unix.gettimeofday () in
  let state = P.Compile.compile portfolio in
  let compile_s = Unix.gettimeofday () -. t0 in
  let w1 = live_words () in
  let m = P.Compile.metrics state in
  { n; sites = P.Portfolio.site_count portfolio;
    overlay = P.Portfolio.overlay_circuits portfolio; m;
    per_pe = P.Compile.per_pe state; compile_s;
    bytes_per_route =
      float_of_int ((w1 - w0) * 8) /. float_of_int (max 1 m.P.Compile.routes);
    state; portfolio }

let mean_entries r =
  Array.fold_left (fun acc (_, e) -> acc +. float_of_int e) 0.0 r.per_pe
  /. float_of_int (Array.length r.per_pe)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let run () =
  Tables.heading
    "E19: provisioning at scale — C1 measured at 1k / 10k customer VPNs";
  let rows = List.map compile_row [ 1000; 10000 ] in
  let widths = [ 9; 9; 9; 9; 11; 11; 12; 10 ] in
  Tables.row widths
    [ "VPNs"; "sites"; "routes"; "VRFs"; "stored"; "logical"; "overlay VCs";
      "compile s" ];
  Tables.rule widths;
  List.iter
    (fun r ->
       Tables.row widths
         [ string_of_int r.n; string_of_int r.sites;
           string_of_int r.m.P.Compile.routes;
           string_of_int r.m.P.Compile.vrfs;
           string_of_int r.m.P.Compile.shared_entries;
           string_of_int r.m.P.Compile.table_entries;
           string_of_int r.overlay;
           Printf.sprintf "%.2f" r.compile_s ])
    rows;
  let small = List.nth rows 0 and big = List.nth rows 1 in
  if big.m.P.Compile.routes < 100_000 then
    failwith
      (Printf.sprintf "E19: expected 100k+ routes at 10k VPNs, got %d"
         big.m.P.Compile.routes);

  (* Per-PE linearity: logical entries track attached sites, and the
     10k/1k state ratio tracks the site ratio (1.0 = perfectly linear;
     an overlay would grow with the square of per-VPN sites). *)
  Printf.printf "\nper-PE state at %d VPNs (C1 linearity):\n" big.n;
  let w2 = [ 6; 9; 11; 13 ] in
  Tables.row w2 [ "PE"; "sites"; "entries"; "entries/site" ];
  Tables.rule w2;
  Array.iteri
    (fun pe (s, e) ->
       Tables.row w2
         [ string_of_int pe; string_of_int s; string_of_int e;
           Printf.sprintf "%.1f" (float_of_int e /. float_of_int (max 1 s)) ])
    big.per_pe;
  let growth =
    mean_entries big /. mean_entries small
    /. (float_of_int big.sites /. float_of_int small.sites)
  in
  Printf.printf
    "\nstate growth 1k -> 10k: %.2fx per site ratio (1.0 = linear)\n" growth;
  Printf.printf "bytes/route (interned store + shared tables): %.0f\n"
    big.bytes_per_route;

  (* Incremental convergence on the 10k state: per-delta wall time vs a
     from-scratch compile of the exact final portfolio, then the
     fingerprint referee. *)
  let ops = P.Portfolio.churn big.portfolio ~seed:(seed + 1) ~ops:churn_ops in
  let touched = ref 0 in
  let samples =
    Array.of_list
      (List.map
         (fun op ->
            let t0 = Unix.gettimeofday () in
            touched := !touched + P.Delta.apply big.state op;
            Unix.gettimeofday () -. t0)
         ops)
  in
  Array.sort compare samples;
  let p99_ms = 1e3 *. percentile samples 0.99 in
  let final = P.Portfolio.apply_all big.portfolio ops in
  let t0 = Unix.gettimeofday () in
  let oracle = P.Compile.compile final in
  let full_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
  if not (P.Compile.equal big.state oracle) then
    failwith "E19: incremental state diverged from the from-scratch oracle";
  let speedup = full_ms /. p99_ms in
  Printf.printf
    "\nconvergence at %d VPNs over %d deltas (oracle fingerprints match):\n"
    big.n churn_ops;
  Printf.printf "  delta p50 / p99      %.4f / %.4f ms\n"
    (1e3 *. percentile samples 0.50) p99_ms;
  Printf.printf "  mean VRFs touched    %.1f\n"
    (float_of_int !touched /. float_of_int churn_ops);
  Printf.printf "  full recompile       %.1f ms\n" full_ms;
  Printf.printf "  p99 speedup          %.0fx\n" speedup;

  let g name v = T.Gauge.set (T.Registry.gauge name) v in
  g "e19.sites" (float_of_int big.sites);
  g "e19.routes" (float_of_int big.m.P.Compile.routes);
  g "e19.vrfs" (float_of_int big.m.P.Compile.vrfs);
  g "e19.overlay_circuits" (float_of_int big.overlay);
  g "e19.state.routes_per_pe" (mean_entries big);
  g "e19.state.growth" growth;
  g "e19.state.dedup"
    (float_of_int big.m.P.Compile.table_entries
     /. float_of_int (max 1 big.m.P.Compile.shared_entries));
  g "e19.mem.bytes_per_route" big.bytes_per_route;
  g "e19.converge.p99_ms" p99_ms;
  g "e19.converge.full_ms" full_ms;
  g "e19.converge.speedup" speedup;
  g "e19.delta.touched_mean"
    (float_of_int !touched /. float_of_int churn_ops)
