let m_events = Mvpn_telemetry.Registry.counter "sim.events"
let m_scheduled = Mvpn_telemetry.Registry.counter "sim.scheduled"

type t = {
  queue : (unit -> unit) Heap.t;
  mutable now : float;
  mutable processed : int;
  mutable stopped : bool;
}

let create () =
  { queue = Heap.create (); now = 0.0; processed = 0; stopped = false }

let now e = e.now

let check_finite what v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Engine.%s: time not finite" what)

let schedule e ~delay f =
  check_finite "schedule" delay;
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Mvpn_telemetry.Counter.incr m_scheduled;
  Heap.push e.queue (e.now +. delay) f

let schedule_at e ~time f =
  check_finite "schedule_at" time;
  if time < e.now then invalid_arg "Engine.schedule_at: time in the past";
  Mvpn_telemetry.Counter.incr m_scheduled;
  Heap.push e.queue time f

let step e =
  match Heap.pop e.queue with
  | None -> false
  | Some (time, f) ->
    e.now <- time;
    e.processed <- e.processed + 1;
    Mvpn_telemetry.Counter.incr m_events;
    f ();
    true

let run ?until e =
  e.stopped <- false;
  let horizon = match until with Some t -> t | None -> infinity in
  let rec loop () =
    if not e.stopped then
      match Heap.peek e.queue with
      | Some (time, _) when time <= horizon ->
        if step e then loop ()
      | Some _ | None ->
        if Float.is_finite horizon && horizon > e.now then e.now <- horizon
  in
  loop ()

let peek_time e = Option.map fst (Heap.peek e.queue)

(* Bounded-horizon drain for the parallel runner: process events with
   time strictly below [before], but do not advance [now] to the bound
   itself — the window bound is a synchronization artifact, not a
   simulated instant, and a later window (or the final inclusive [run])
   owns the events at the bound. *)
let run_before e ~before =
  e.stopped <- false;
  let rec loop () =
    if not e.stopped then
      match Heap.peek e.queue with
      | Some (time, _) when time < before -> if step e then loop ()
      | Some _ | None -> ()
  in
  loop ()

let pending e = Heap.size e.queue

let processed e = e.processed

let stop e = e.stopped <- true
