lib/qos/shaper.mli: Mvpn_net Mvpn_sim
