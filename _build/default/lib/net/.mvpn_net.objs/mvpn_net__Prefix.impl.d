lib/net/prefix.ml: Format Hashtbl Int Ipv4 List Printf Result String
