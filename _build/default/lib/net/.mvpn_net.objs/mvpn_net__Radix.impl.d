lib/net/radix.ml: Ipv4 List Option Prefix
