open Mvpn_routing
module Topology = Mvpn_sim.Topology
module Rng = Mvpn_sim.Rng
module Prefix = Mvpn_net.Prefix
module Fib = Mvpn_net.Fib
module Ipv4 = Mvpn_net.Ipv4

let pfx = Prefix.of_string_exn
let ip = Ipv4.of_string_exn

(* A diamond: 0 -1- 1 -1- 3, 0 -1- 2 -2- 3 (costs on edges). *)
let diamond () =
  let t = Topology.create () in
  let n = Array.init 4 (fun _ -> Topology.add_node t) in
  let bw = 1e9 and delay = 0.001 in
  ignore (Topology.connect ~cost:1 t n.(0) n.(1) ~bandwidth:bw ~delay);
  ignore (Topology.connect ~cost:1 t n.(1) n.(3) ~bandwidth:bw ~delay);
  ignore (Topology.connect ~cost:1 t n.(0) n.(2) ~bandwidth:bw ~delay);
  ignore (Topology.connect ~cost:2 t n.(2) n.(3) ~bandwidth:bw ~delay);
  (t, n)

(* --- Spf -------------------------------------------------------------- *)

let test_spf_shortest () =
  let t, n = diamond () in
  (match Spf.shortest_path t ~src:n.(0) ~dst:n.(3) with
   | Some path -> Alcotest.(check (list int)) "via 1" [0; 1; 3] path
   | None -> Alcotest.fail "no path");
  Alcotest.(check (option (list int))) "self" (Some [0])
    (Spf.shortest_path t ~src:0 ~dst:0)

let test_spf_respects_down_links () =
  let t, n = diamond () in
  Topology.set_duplex_state t n.(0) n.(1) false;
  match Spf.shortest_path t ~src:n.(0) ~dst:n.(3) with
  | Some path -> Alcotest.(check (list int)) "detour via 2" [0; 2; 3] path
  | None -> Alcotest.fail "no path"

let test_spf_unreachable () =
  let t = Topology.create () in
  let a = Topology.add_node t and b = Topology.add_node t in
  Alcotest.(check (option (list int))) "disconnected" None
    (Spf.shortest_path t ~src:a ~dst:b)

let test_spf_custom_metric () =
  let t, n = diamond () in
  (* Make the 0-1 hop expensive via a custom metric: path flips. *)
  let metric (l : Topology.link) =
    if (l.Topology.src = 0 && l.Topology.dst = 1)
    || (l.Topology.src = 1 && l.Topology.dst = 0)
    then 10.0
    else float_of_int l.Topology.cost
  in
  match Spf.shortest_path ~metric t ~src:n.(0) ~dst:n.(3) with
  | Some path -> Alcotest.(check (list int)) "via 2 now" [0; 2; 3] path
  | None -> Alcotest.fail "no path"

let test_spf_tree_first_hops () =
  let t, n = diamond () in
  let tree = Spf.dijkstra t ~src:n.(0) in
  Alcotest.(check int) "first hop to 3" 1 tree.Spf.first_hop.(3);
  Alcotest.(check int) "first hop to 2" 2 tree.Spf.first_hop.(2);
  Alcotest.(check (float 1e-9)) "distance" 2.0 tree.Spf.dist.(3)

let test_spf_path_cost () =
  let t, _ = diamond () in
  Alcotest.(check (option (float 1e-9))) "cost" (Some 3.0)
    (Spf.path_cost t [0; 2; 3]);
  Alcotest.(check (option (float 1e-9))) "no link" None
    (Spf.path_cost t [0; 3])

let test_widest_path () =
  let t = Topology.create () in
  let n = Array.init 4 (fun _ -> Topology.add_node t) in
  (* 0->1->3 narrow (10), 0->2->3 wide (100). *)
  ignore (Topology.connect t n.(0) n.(1) ~bandwidth:10.0 ~delay:0.001);
  ignore (Topology.connect t n.(1) n.(3) ~bandwidth:10.0 ~delay:0.001);
  ignore (Topology.connect t n.(0) n.(2) ~bandwidth:100.0 ~delay:0.001);
  ignore (Topology.connect t n.(2) n.(3) ~bandwidth:100.0 ~delay:0.001);
  match Spf.widest_path t ~src:n.(0) ~dst:n.(3) with
  | Some (path, width) ->
    Alcotest.(check (list int)) "wide route" [0; 2; 3] path;
    Alcotest.(check (float 1e-9)) "bottleneck" 100.0 width
  | None -> Alcotest.fail "no path"

let test_widest_path_sees_reservations () =
  let t = Topology.create () in
  let n = Array.init 3 (fun _ -> Topology.add_node t) in
  let ab, _ = Topology.connect t n.(0) n.(1) ~bandwidth:100.0 ~delay:0.001 in
  ignore (Topology.connect t n.(1) n.(2) ~bandwidth:100.0 ~delay:0.001);
  ignore (Topology.reserve ab 80.0);
  match Spf.widest_path t ~src:n.(0) ~dst:n.(2) with
  | Some (_, width) -> Alcotest.(check (float 1e-9)) "bottleneck" 20.0 width
  | None -> Alcotest.fail "no path"

let test_k_shortest () =
  let t, n = diamond () in
  let paths = Spf.k_shortest ~k:3 t ~src:n.(0) ~dst:n.(3) in
  Alcotest.(check int) "two distinct paths" 2 (List.length paths);
  Alcotest.(check (list int)) "best first" [0; 1; 3] (List.hd paths);
  Alcotest.(check (list int)) "second" [0; 2; 3] (List.nth paths 1)

let k_shortest_sorted =
  QCheck.Test.make ~name:"k-shortest paths are cost-sorted and loop-free"
    ~count:50
    QCheck.(pair (int_range 4 12) small_int)
    (fun (n, seed) ->
       let t = Topology.create () in
       let rng = Rng.create (seed + 1) in
       let ids =
         Topology.random_connected t rng ~n ~extra_links:n ~bandwidth:1e9
           ~delay:0.001
       in
       let paths = Spf.k_shortest ~k:4 t ~src:ids.(0) ~dst:ids.(n - 1) in
       let costs =
         List.map
           (fun p ->
              match Spf.path_cost t p with Some c -> c | None -> nan)
           paths
       in
       let sorted = List.sort Float.compare costs in
       costs = sorted
       && List.for_all
            (fun p ->
               List.length (List.sort_uniq Int.compare p) = List.length p)
            paths)

let spf_triangle_inequality =
  QCheck.Test.make ~name:"spf distances satisfy the triangle inequality"
    ~count:40
    QCheck.(pair (int_range 3 12) small_int)
    (fun (n, seed) ->
       let t = Topology.create () in
       let rng = Rng.create (seed * 17 + 11) in
       let ids =
         Topology.random_connected t rng ~n ~extra_links:4 ~bandwidth:1e9
           ~delay:0.001
       in
       let trees = Array.map (fun src -> Spf.dijkstra t ~src) ids in
       (* d(a,c) <= d(a,b) + d(b,c) for all triples (indices into ids). *)
       let d i j = trees.(i).Spf.dist.(ids.(j)) in
       let ok = ref true in
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           for k = 0 to n - 1 do
             if Float.is_finite (d i j) && Float.is_finite (d j k)
             && d i k > d i j +. d j k +. 1e-9
             then ok := false
           done
         done
       done;
       !ok)

let spf_symmetric_on_duplex =
  QCheck.Test.make ~name:"spf distance is symmetric on duplex links"
    ~count:40
    QCheck.(pair (int_range 3 12) small_int)
    (fun (n, seed) ->
       let t = Topology.create () in
       let rng = Rng.create (seed * 23 + 7) in
       let ids =
         Topology.random_connected t rng ~n ~extra_links:3 ~bandwidth:1e9
           ~delay:0.001
       in
       Array.for_all
         (fun a ->
            let ta = Spf.dijkstra t ~src:a in
            Array.for_all
              (fun b ->
                 let tb = Spf.dijkstra t ~src:b in
                 Float.abs (ta.Spf.dist.(b) -. tb.Spf.dist.(a)) < 1e-9)
              ids)
         ids)

(* --- Ospf ------------------------------------------------------------- *)

let test_ospf_domain_restriction () =
  (* Two islands joined by a link; routers restricted to their island
     must not learn the other island's prefixes even though the link is
     up. *)
  let t = Topology.create () in
  let left = Topology.line t 3 ~bandwidth:1e9 ~delay:0.001 in
  let right = Topology.line t 3 ~bandwidth:1e9 ~delay:0.001 in
  ignore (Topology.connect t left.(2) right.(0) ~bandwidth:1e9 ~delay:0.001);
  let members v = Array.exists (fun x -> x = v) left in
  let o = Ospf.create ~members t in
  Ospf.attach_prefix o left.(0) (pfx "10.1.0.0/16");
  ignore (Ospf.converge o);
  Alcotest.(check (option int)) "intra-domain route" (Some left.(1))
    (Fib.next_hop (Ospf.fib o left.(2)) (ip "10.1.0.1"));
  (* The right island is outside the domain: its routers got nothing,
     and left-side LSAs never flooded there. *)
  Alcotest.(check int) "outside empty" 0 (Fib.size (Ospf.fib o right.(0)))

let test_ospf_convergence () =
  let t, n = diamond () in
  let o = Ospf.create t in
  Ospf.attach_prefix o n.(3) (pfx "10.3.0.0/16");
  let rounds = Ospf.converge o in
  Alcotest.(check bool) "some rounds" true (rounds > 0);
  Alcotest.(check bool) "converged" true (Ospf.converged o);
  Alcotest.(check (option int)) "fib route at 0" (Some 1)
    (Fib.next_hop (Ospf.fib o n.(0)) (ip "10.3.1.1"));
  (* Idempotent: nothing changed, zero extra rounds. *)
  Alcotest.(check int) "steady state" 0 (Ospf.converge o)

let test_ospf_local_delivery () =
  let t, n = diamond () in
  let o = Ospf.create t in
  Ospf.attach_prefix o n.(2) (pfx "10.2.0.0/16");
  ignore (Ospf.converge o);
  Alcotest.(check (option int)) "local" (Some Fib.local_delivery)
    (Fib.next_hop (Ospf.fib o n.(2)) (ip "10.2.0.1"))

let test_ospf_reconvergence_after_failure () =
  let t, n = diamond () in
  let o = Ospf.create t in
  Ospf.attach_prefix o n.(3) (pfx "10.3.0.0/16");
  ignore (Ospf.converge o);
  Alcotest.(check (option int)) "before failure via 1" (Some 1)
    (Fib.next_hop (Ospf.fib o n.(0)) (ip "10.3.1.1"));
  Topology.set_duplex_state t n.(1) n.(3) false;
  let rounds = Ospf.converge o in
  Alcotest.(check bool) "reflooding happened" true (rounds > 0);
  Alcotest.(check (option int)) "rerouted via 2" (Some 2)
    (Fib.next_hop (Ospf.fib o n.(0)) (ip "10.3.1.1"))

let test_ospf_partition () =
  let t = Topology.create () in
  let a = Topology.add_node t and b = Topology.add_node t in
  ignore (Topology.connect t a b ~bandwidth:1e9 ~delay:0.001);
  let c = Topology.add_node t and d = Topology.add_node t in
  ignore (Topology.connect t c d ~bandwidth:1e9 ~delay:0.001);
  let o = Ospf.create t in
  Ospf.attach_prefix o d (pfx "10.4.0.0/16");
  ignore (Ospf.converge o);
  (* a cannot know d's prefix: different partition. *)
  Alcotest.(check (option int)) "no route across partition" None
    (Fib.next_hop (Ospf.fib o a) (ip "10.4.0.1"));
  Alcotest.(check (option int)) "partition-local route" (Some d)
    (Fib.next_hop (Ospf.fib o c) (ip "10.4.0.1"))

let test_ospf_distance () =
  let t, n = diamond () in
  let o = Ospf.create t in
  ignore (Ospf.converge o);
  Alcotest.(check (float 1e-9)) "distance 0->3" 2.0
    (Ospf.distance o ~src:n.(0) ~dst:n.(3));
  Alcotest.(check (option int)) "next hop" (Some 1)
    (Ospf.next_hop_to_router o ~src:n.(0) ~dst:n.(3))

let test_ospf_messages_counted () =
  let t, _ = diamond () in
  let o = Ospf.create t in
  ignore (Ospf.converge o);
  Alcotest.(check bool) "lsa copies flowed" true (Ospf.messages_sent o > 0)

let ospf_agrees_with_spf =
  QCheck.Test.make ~name:"ospf fib next hops agree with global spf"
    ~count:30
    QCheck.(pair (int_range 3 10) small_int)
    (fun (n, seed) ->
       let t = Topology.create () in
       let rng = Rng.create (seed * 7 + 3) in
       let ids =
         Topology.random_connected t rng ~n ~extra_links:2 ~bandwidth:1e9
           ~delay:0.001
       in
       let o = Ospf.create t in
       let prefix_of i =
         Prefix.make (Ipv4.of_octets 10 i 0 0) 16
       in
       Array.iteri (fun i id -> Ospf.attach_prefix o id (prefix_of i)) ids;
       ignore (Ospf.converge o);
       (* For every src/dst pair, the OSPF next hop must lie on some
          shortest path: dist(src,dst) = cost(src,nh) + dist(nh,dst). *)
       Array.for_all
         (fun src ->
            Array.for_all
              (fun dst ->
                 src = dst
                 ||
                 let addr = Prefix.nth_host (prefix_of dst) 1 in
                 let _ = addr in
                 let tree = Spf.dijkstra t ~src in
                 match
                   Fib.next_hop (Ospf.fib o src)
                     (Prefix.nth_host
                        (prefix_of
                           (let rec idx i =
                              if ids.(i) = dst then i else idx (i + 1)
                            in
                            idx 0))
                        1)
                 with
                 | None -> not (Float.is_finite tree.Spf.dist.(dst))
                 | Some nh when nh = Fib.local_delivery -> src = dst
                 | Some nh ->
                   let nh_tree = Spf.dijkstra t ~src:nh in
                   (match Topology.find_link t src nh with
                    | None -> false
                    | Some l ->
                      Float.abs
                        (tree.Spf.dist.(dst)
                         -. (float_of_int l.Topology.cost
                             +. nh_tree.Spf.dist.(dst)))
                      < 1e-9))
              ids)
         ids)

(* --- Bgp -------------------------------------------------------------- *)

let test_bgp_ebgp_propagation () =
  let b = Bgp.create () in
  let s0 = Bgp.add_speaker b ~asn:100 in
  let s1 = Bgp.add_speaker b ~asn:200 in
  let s2 = Bgp.add_speaker b ~asn:300 in
  Bgp.peer b s0 s1;
  Bgp.peer b s1 s2;
  Bgp.originate b s0 (pfx "203.0.113.0/24");
  ignore (Bgp.run b);
  (match Bgp.lookup b s2 (ip "203.0.113.7") with
   | Some r ->
     Alcotest.(check (list int)) "as path" [200; 100] r.Bgp.as_path
   | None -> Alcotest.fail "route did not propagate");
  Alcotest.(check bool) "messages counted" true (Bgp.messages_sent b > 0)

let test_bgp_loop_prevention () =
  let b = Bgp.create () in
  (* Triangle of three ASes; the route must not loop forever. *)
  let s0 = Bgp.add_speaker b ~asn:100 in
  let s1 = Bgp.add_speaker b ~asn:200 in
  let s2 = Bgp.add_speaker b ~asn:300 in
  Bgp.peer b s0 s1;
  Bgp.peer b s1 s2;
  Bgp.peer b s2 s0;
  Bgp.originate b s0 (pfx "203.0.113.0/24");
  let rounds = Bgp.run b in
  Alcotest.(check bool) "terminates quickly" true (rounds <= 4);
  match Bgp.lookup b s1 (ip "203.0.113.1") with
  | Some r ->
    Alcotest.(check (list int)) "direct path wins" [100] r.Bgp.as_path
  | None -> Alcotest.fail "no route"

let test_bgp_ibgp_no_transit () =
  let b = Bgp.create () in
  (* AS 100: s0; AS 200: s1 - s2 - s3 in a line of iBGP sessions.
     s1 learns from eBGP and must pass to its iBGP peers... but s2 must
     NOT re-advertise to s3 (full-mesh rule). *)
  let s0 = Bgp.add_speaker b ~asn:100 in
  let s1 = Bgp.add_speaker b ~asn:200 in
  let s2 = Bgp.add_speaker b ~asn:200 in
  let s3 = Bgp.add_speaker b ~asn:200 in
  Bgp.peer b s0 s1;
  Bgp.peer b s1 s2;
  Bgp.peer b s2 s3;
  Bgp.originate b s0 (pfx "198.51.100.0/24");
  ignore (Bgp.run b);
  Alcotest.(check bool) "s2 has the route" true
    (Bgp.lookup b s2 (ip "198.51.100.1") <> None);
  Alcotest.(check bool) "s3 must not (needs full mesh)" true
    (Bgp.lookup b s3 (ip "198.51.100.1") = None)

let test_bgp_decision_shortest_as_path () =
  let b = Bgp.create () in
  (* Two paths from s3 to s0's prefix: via s1 (1 AS) and via s2 (2 ASes
     chained). *)
  let s0 = Bgp.add_speaker b ~asn:100 in
  let s1 = Bgp.add_speaker b ~asn:200 in
  let s2a = Bgp.add_speaker b ~asn:300 in
  let s2b = Bgp.add_speaker b ~asn:400 in
  let s3 = Bgp.add_speaker b ~asn:500 in
  Bgp.peer b s0 s1;
  Bgp.peer b s1 s3;
  Bgp.peer b s0 s2a;
  Bgp.peer b s2a s2b;
  Bgp.peer b s2b s3;
  Bgp.originate b s0 (pfx "203.0.113.0/24");
  ignore (Bgp.run b);
  match Bgp.lookup b s3 (ip "203.0.113.1") with
  | Some r ->
    Alcotest.(check (list int)) "short path chosen" [200; 100] r.Bgp.as_path
  | None -> Alcotest.fail "no route"

let test_bgp_local_pref_overrides () =
  let b = Bgp.create () in
  let s0 = Bgp.add_speaker b ~asn:100 in
  let s1 = Bgp.add_speaker b ~asn:200 in
  let s2a = Bgp.add_speaker b ~asn:300 in
  let s2b = Bgp.add_speaker b ~asn:400 in
  let s3 = Bgp.add_speaker b ~asn:500 in
  Bgp.peer b s0 s1;
  Bgp.peer b s1 s3;
  Bgp.peer b s0 s2a;
  Bgp.peer b s2a s2b;
  Bgp.peer b s2b s3;
  (* Prefer the long way via policy. *)
  Bgp.set_local_pref b s3 ~neighbor:s2b 200;
  Bgp.originate b s0 (pfx "203.0.113.0/24");
  ignore (Bgp.run b);
  match Bgp.lookup b s3 (ip "203.0.113.1") with
  | Some r ->
    Alcotest.(check (list int)) "policy wins over length" [400; 300; 100]
      r.Bgp.as_path
  | None -> Alcotest.fail "no route"

(* --- Mpbgp ------------------------------------------------------------ *)

let rd n : Mpbgp.rd = { Mpbgp.rd_asn = 65000; rd_assigned = n }
let rt n : Mpbgp.rt = { Mpbgp.rt_asn = 65000; rt_value = n }

let vpn_route ?(site = 0) ~rd:r ~pe ~label ~rts prefix =
  { Mpbgp.rd = r; prefix = pfx prefix; next_hop_pe = pe; vpn_label = label;
    export_rts = rts; site }

let test_mpbgp_distribution () =
  let m = Mpbgp.create () in
  List.iter (Mpbgp.add_pe m) [1; 2; 3];
  Mpbgp.export_route m
    (vpn_route ~rd:(rd 1) ~pe:1 ~label:100 ~rts:[rt 1] "10.0.0.0/16");
  ignore (Mpbgp.run m);
  let at2 = Mpbgp.import m ~pe:2 ~import_rts:[rt 1] in
  Alcotest.(check int) "pe2 imports" 1 (List.length at2);
  let r = List.hd at2 in
  Alcotest.(check int) "label carried" 100 r.Mpbgp.vpn_label;
  Alcotest.(check int) "next hop pe" 1 r.Mpbgp.next_hop_pe

let test_mpbgp_rt_filtering () =
  let m = Mpbgp.create () in
  List.iter (Mpbgp.add_pe m) [1; 2];
  Mpbgp.export_route m
    (vpn_route ~rd:(rd 1) ~pe:1 ~label:100 ~rts:[rt 1] "10.0.0.0/16");
  Mpbgp.export_route m
    (vpn_route ~rd:(rd 2) ~pe:1 ~label:200 ~rts:[rt 2] "10.0.0.0/16");
  ignore (Mpbgp.run m);
  let green = Mpbgp.import m ~pe:2 ~import_rts:[rt 1] in
  Alcotest.(check int) "only vpn 1 routes" 1 (List.length green);
  Alcotest.(check int) "right label" 100 (List.hd green).Mpbgp.vpn_label

let test_mpbgp_overlapping_prefixes () =
  (* The same 10.0.0.0/16 in two VPNs is kept distinct by the RD. *)
  let m = Mpbgp.create () in
  List.iter (Mpbgp.add_pe m) [1; 2];
  Mpbgp.export_route m
    (vpn_route ~rd:(rd 1) ~pe:1 ~label:100 ~rts:[rt 1] "10.0.0.0/16");
  Mpbgp.export_route m
    (vpn_route ~rd:(rd 2) ~pe:1 ~label:200 ~rts:[rt 2] "10.0.0.0/16");
  ignore (Mpbgp.run m);
  Alcotest.(check int) "both survive" 2 (Mpbgp.total_routes m);
  Alcotest.(check int) "pe2 sees both" 2
    (List.length
       (List.filter
          (fun r -> r.Mpbgp.next_hop_pe = 1)
          (Mpbgp.routes_at m 2)))

let test_mpbgp_withdraw () =
  let m = Mpbgp.create () in
  List.iter (Mpbgp.add_pe m) [1; 2];
  Mpbgp.export_route m
    (vpn_route ~site:7 ~rd:(rd 1) ~pe:1 ~label:100 ~rts:[rt 1]
       "10.0.0.0/16");
  ignore (Mpbgp.run m);
  Alcotest.(check int) "withdrawn" 1 (Mpbgp.withdraw_site m ~pe:1 ~site:7);
  ignore (Mpbgp.run m);
  Alcotest.(check int) "gone at pe2" 0
    (List.length (Mpbgp.import m ~pe:2 ~import_rts:[rt 1]))

let test_mpbgp_session_counts () =
  let mesh = Mpbgp.create () in
  List.iter (Mpbgp.add_pe mesh) [1; 2; 3; 4; 5];
  Alcotest.(check int) "full mesh" 10 (Mpbgp.session_count mesh);
  let rr = Mpbgp.create ~mode:(Mpbgp.Route_reflector 1) () in
  List.iter (Mpbgp.add_pe rr) [1; 2; 3; 4; 5];
  Alcotest.(check int) "route reflector" 4 (Mpbgp.session_count rr)

let test_mpbgp_rr_delivers_everywhere () =
  let m = Mpbgp.create ~mode:(Mpbgp.Route_reflector 1) () in
  List.iter (Mpbgp.add_pe m) [1; 2; 3];
  Mpbgp.export_route m
    (vpn_route ~rd:(rd 1) ~pe:2 ~label:300 ~rts:[rt 1] "10.7.0.0/16");
  ignore (Mpbgp.run m);
  Alcotest.(check int) "pe3 got it via rr" 1
    (List.length (Mpbgp.import m ~pe:3 ~import_rts:[rt 1]));
  Alcotest.(check int) "rr itself has it" 1
    (List.length (Mpbgp.import m ~pe:1 ~import_rts:[rt 1]))

let test_mpbgp_run_idempotent () =
  let m = Mpbgp.create () in
  List.iter (Mpbgp.add_pe m) [1; 2];
  Mpbgp.export_route m
    (vpn_route ~rd:(rd 1) ~pe:1 ~label:1 ~rts:[rt 1] "10.0.0.0/16");
  let first = Mpbgp.run m in
  Alcotest.(check bool) "work on first run" true (first > 0);
  Alcotest.(check int) "second run is a no-op" 0 (Mpbgp.run m)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "routing"
    [ ("spf",
       [ Alcotest.test_case "shortest" `Quick test_spf_shortest;
         Alcotest.test_case "down links" `Quick
           test_spf_respects_down_links;
         Alcotest.test_case "unreachable" `Quick test_spf_unreachable;
         Alcotest.test_case "custom metric" `Quick test_spf_custom_metric;
         Alcotest.test_case "tree first hops" `Quick
           test_spf_tree_first_hops;
         Alcotest.test_case "path cost" `Quick test_spf_path_cost;
         Alcotest.test_case "widest path" `Quick test_widest_path;
         Alcotest.test_case "widest sees reservations" `Quick
           test_widest_path_sees_reservations;
         Alcotest.test_case "k shortest" `Quick test_k_shortest;
         qt k_shortest_sorted;
         qt spf_triangle_inequality;
         qt spf_symmetric_on_duplex ]);
      ("ospf",
       [ Alcotest.test_case "convergence" `Quick test_ospf_convergence;
         Alcotest.test_case "domain restriction" `Quick
           test_ospf_domain_restriction;
         Alcotest.test_case "local delivery" `Quick
           test_ospf_local_delivery;
         Alcotest.test_case "reconvergence" `Quick
           test_ospf_reconvergence_after_failure;
         Alcotest.test_case "partition" `Quick test_ospf_partition;
         Alcotest.test_case "distance" `Quick test_ospf_distance;
         Alcotest.test_case "messages counted" `Quick
           test_ospf_messages_counted;
         qt ospf_agrees_with_spf ]);
      ("bgp",
       [ Alcotest.test_case "ebgp propagation" `Quick
           test_bgp_ebgp_propagation;
         Alcotest.test_case "loop prevention" `Quick
           test_bgp_loop_prevention;
         Alcotest.test_case "ibgp no transit" `Quick
           test_bgp_ibgp_no_transit;
         Alcotest.test_case "shortest as path" `Quick
           test_bgp_decision_shortest_as_path;
         Alcotest.test_case "local pref" `Quick
           test_bgp_local_pref_overrides ]);
      ("mpbgp",
       [ Alcotest.test_case "distribution" `Quick test_mpbgp_distribution;
         Alcotest.test_case "rt filtering" `Quick test_mpbgp_rt_filtering;
         Alcotest.test_case "overlapping prefixes" `Quick
           test_mpbgp_overlapping_prefixes;
         Alcotest.test_case "withdraw" `Quick test_mpbgp_withdraw;
         Alcotest.test_case "session counts" `Quick
           test_mpbgp_session_counts;
         Alcotest.test_case "route reflector" `Quick
           test_mpbgp_rr_delivers_everywhere;
         Alcotest.test_case "run idempotent" `Quick
           test_mpbgp_run_idempotent ]) ]
