(** Monotonic event counter. Mutation is a no-op while {!Control} is
    disabled.

    Domain-safe: the handle is shared, but the count lives in
    domain-local storage, so domains bump private partials and never
    lose increments. [value]/[reset] act on the calling domain's
    partial; partials are combined with [Registry.snapshot] (taken in
    the owning domain) + [Registry.absorb] (counters add). *)

type t

val make : string -> t
(** Bare counter; {!Registry.counter} is the usual entry point. *)

val name : t -> string

val incr : t -> unit

val add : t -> int -> unit
(** [add t n] bumps by [n] (e.g. bytes forwarded). *)

val set : t -> int -> unit
(** [set t n] overwrites the count — for counters mirroring an
    always-on authoritative source (e.g. the network's per-reason drop
    table), so the exported value cannot drift from the source when
    telemetry is toggled mid-run. *)

val value : t -> int

val reset : t -> unit

val pp : Format.formatter -> t -> unit
