module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Packet = Mvpn_net.Packet

(* Dispatch-ledger kinds for the two wire-path events — the pair
   ROADMAP's tx->propagate fusion lever would collapse. *)
let k_tx = Mvpn_sim.Profile.register_kind "port.tx"

let k_propagate = Mvpn_sim.Profile.register_kind "port.propagate"

type fault = { loss : float; corrupt : float; seed : int }

(* A pooled propagation event: the closure [d_fire] is built once per
   cell and captures the cell itself, so scheduling a delivery is a
   packet-slot store plus an [Engine.schedule] — no per-packet closure.
   Cells link through [d_next] into a per-port free list terminated by
   the global [nil_dcell] sentinel; a port grows as many cells as its
   delay line ever holds concurrently and then recycles them forever. *)
type dcell = {
  mutable d_pkt : Packet.t;
  mutable d_next : dcell;
  d_fire : unit -> unit;
}

let rec nil_dcell =
  { d_pkt = Packet.null; d_next = nil_dcell; d_fire = (fun () -> ()) }

type t = {
  engine : Engine.t;
  link : Topology.link;
  qdisc : Queue_disc.t;
  classify : Packet.t -> int;
  on_deliver : Packet.t -> unit;
  on_txstart : Packet.t -> unit;
  on_drop : reason:string -> Packet.t -> unit;
  mutable busy : bool;
  mutable fault : fault option;
  mutable handoff : (arrival:float -> Packet.t -> unit) option;
  mutable offered : int;
  mutable delivered : int;
  mutable dropped_queue : int;
  mutable dropped_link_down : int;
  mutable dropped_fault : int;
  mutable bytes_delivered : int;
  (* busy-time accumulator and a copy of the link bandwidth live in
     floatarray cells so the per-packet service-time update is unboxed
     arithmetic plus an unboxed store, not a boxed-field chase and a
     fresh float box. The expression itself stays size *. 8.0 /. bw —
     bit-identical to the original — only the operand load changes. *)
  acc : floatarray;
  bw : floatarray;
  (* The port serves one packet at a time, so a single pre-built
     tx-complete closure and one in-flight packet slot cover the whole
     serialization path. [tx_pkt] is [Packet.null] when idle. *)
  mutable tx_pkt : Packet.t;
  mutable tx_fire : unit -> unit;
  mutable d_free : dcell;
}

type counters = {
  offered : int;
  delivered : int;
  dropped_queue : int;
  dropped_link_down : int;
  dropped_fault : int;
  bytes_delivered : int;
  busy_seconds : float;
}

let nop_txstart (_ : Packet.t) = ()
let nop_drop ~reason:(_ : string) (_ : Packet.t) = ()

let set_fault t ?(loss = 0.0) ?(corrupt = 0.0) ~seed () =
  if loss < 0.0 || loss > 1.0 || corrupt < 0.0 || corrupt > 1.0 then
    invalid_arg "Port.set_fault: probabilities must be within [0, 1]";
  t.fault <- Some { loss; corrupt; seed }

let clear_fault t = t.fault <- None

let set_handoff t h = t.handoff <- h

let faulty t = t.fault <> None

(* Stateless per-packet fault decision: a splitmix64 finalizer over
   (uid, seed, salt) mapped to [0, 1). Keyed on the packet uid rather
   than drawn from a stream so the verdict for a given packet does not
   depend on how many other packets happened to cross the port first —
   what makes seeded chaos runs comparable across FRR on/off. *)
let fault_uniform ~uid ~seed ~salt =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int uid) 0x9E3779B97F4A7C15L)
      (Int64.add (Int64.mul (Int64.of_int seed) 0xBF58476D1CE4E5B9L)
         (Int64.of_int salt))
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53

let fault_verdict t (packet : Packet.t) =
  match t.fault with
  | None -> None
  | Some { loss; corrupt; seed } ->
    if loss > 0.0
    && fault_uniform ~uid:packet.Packet.uid ~seed ~salt:1 < loss then
      Some "chaos-loss"
    else if corrupt > 0.0
         && fault_uniform ~uid:packet.Packet.uid ~seed ~salt:2 < corrupt then
      Some "chaos-corrupt"
    else None

let link t = t.link

let qdisc t = t.qdisc

(* Fire a pooled propagation event: take the packet out, park the cell
   back on the free list (before delivery, so a re-entrant send on the
   same port can reuse it), deliver. *)
let fire_dcell t cell =
  let packet = cell.d_pkt in
  cell.d_pkt <- Packet.null;
  cell.d_next <- t.d_free;
  t.d_free <- cell;
  t.on_deliver packet

let make_dcell t =
  let rec cell =
    { d_pkt = Packet.null; d_next = nil_dcell;
      d_fire = (fun () -> fire_dcell t cell) }
  in
  cell

let schedule_delivery t packet =
  let cell =
    if t.d_free != nil_dcell then begin
      let c = t.d_free in
      t.d_free <- c.d_next;
      c.d_next <- nil_dcell;
      c
    end
    else make_dcell t
  in
  cell.d_pkt <- packet;
  Engine.schedule_kind t.engine ~kind:k_propagate
    ~delay:t.link.Topology.delay cell.d_fire

(* Serve the head-of-line packet: serialize for size*8/bandwidth
   seconds, then hand it to propagation and start on the next packet.
   The serialization event is the pre-built [tx_fire] closure; the
   in-flight packet travels through the [tx_pkt] slot. *)
let rec start_service (t : t) =
  let packet = Queue_disc.dequeue_null t.qdisc in
  if packet == Packet.null then t.busy <- false
  else begin
    t.busy <- true;
    t.on_txstart packet;
    let tx =
      float_of_int packet.Packet.size *. 8.0 /. Float.Array.get t.bw 0
    in
    Float.Array.set t.acc 0 (Float.Array.get t.acc 0 +. tx);
    t.tx_pkt <- packet;
    Engine.schedule_kind t.engine ~kind:k_tx ~delay:tx t.tx_fire
  end

and tx_complete (t : t) =
  let packet = t.tx_pkt in
  t.tx_pkt <- Packet.null;
  (if t.link.Topology.up then begin
     t.delivered <- t.delivered + 1;
     t.bytes_delivered <- t.bytes_delivered + packet.Packet.size;
     match t.handoff with
     | Some hand ->
       (* Propagation is owned elsewhere (a cut link of a partitioned
          run): hand over the packet stamped with its arrival time
          instead of scheduling locally. *)
       hand ~arrival:(Engine.now t.engine +. t.link.Topology.delay) packet
     | None -> schedule_delivery t packet
   end
   else begin
     t.dropped_link_down <- t.dropped_link_down + 1;
     t.on_drop ~reason:"link-down" packet
   end);
  start_service t

let create ?(on_txstart = nop_txstart) ?(on_drop = nop_drop) engine ~link
    ~qdisc ~classify ~on_deliver =
  let t =
    { engine; link; qdisc; classify; on_deliver; on_txstart; on_drop;
      busy = false; fault = None; handoff = None; offered = 0;
      delivered = 0; dropped_queue = 0; dropped_link_down = 0;
      dropped_fault = 0; bytes_delivered = 0;
      acc = Float.Array.make 1 0.0;
      bw = Float.Array.make 1 link.Topology.bandwidth;
      tx_pkt = Packet.null;
      tx_fire = (fun () -> ()); d_free = nil_dcell }
  in
  t.tx_fire <- (fun () -> tx_complete t);
  t

let send (t : t) packet =
  t.offered <- t.offered + 1;
  if not t.link.Topology.up then begin
    t.dropped_link_down <- t.dropped_link_down + 1;
    t.on_drop ~reason:"link-down" packet
  end
  else begin
    match fault_verdict t packet with
    | Some reason ->
      t.dropped_fault <- t.dropped_fault + 1;
      t.on_drop ~reason packet
    | None ->
    match Queue_disc.enqueue t.qdisc ~cls:(t.classify packet) packet with
    | Error Queue_disc.Tail_drop ->
      t.dropped_queue <- t.dropped_queue + 1;
      t.on_drop ~reason:"queue-tail" packet
    | Error Queue_disc.Red_drop ->
      t.dropped_queue <- t.dropped_queue + 1;
      t.on_drop ~reason:"queue-red" packet
    | Ok () -> if not t.busy then start_service t
  end

let counters (t : t) =
  { offered = t.offered; delivered = t.delivered;
    dropped_queue = t.dropped_queue;
    dropped_link_down = t.dropped_link_down;
    dropped_fault = t.dropped_fault;
    bytes_delivered = t.bytes_delivered;
    busy_seconds = Float.Array.get t.acc 0 }

let utilization (t : t) ~now =
  if now <= 0.0 then 0.0 else Float.Array.get t.acc 0 /. now
