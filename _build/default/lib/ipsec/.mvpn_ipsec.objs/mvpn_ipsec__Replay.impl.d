lib/ipsec/replay.ml:
