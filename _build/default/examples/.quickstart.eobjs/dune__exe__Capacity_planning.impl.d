examples/capacity_planning.ml: Array Backbone List Monitor Mvpn_core Mvpn_net Mvpn_routing Mvpn_sim Network Planning Printf Traffic
