module Packet = Mvpn_net.Packet

type op = Swap of int | Pop | Pop_and_ip

type entry = { op : op; next_hop : int }

let local = -1

type t = {
  mutable table : entry option array;
  mutable count : int;
}

let create () = { table = [||]; count = 0 }

let ensure t label =
  let cap = Array.length t.table in
  if label >= cap then begin
    let ncap = max 64 (max (label + 1) (2 * cap)) in
    let ntable = Array.make ncap None in
    Array.blit t.table 0 ntable 0 cap;
    t.table <- ntable
  end

let install t ~in_label entry =
  if not (Label.valid in_label) then
    invalid_arg (Printf.sprintf "Lfib.install: invalid label %d" in_label);
  if Label.is_reserved in_label then
    invalid_arg (Printf.sprintf "Lfib.install: reserved label %d" in_label);
  ensure t in_label;
  if t.table.(in_label) = None then t.count <- t.count + 1;
  t.table.(in_label) <- Some entry

let uninstall t ~in_label =
  if in_label >= 0 && in_label < Array.length t.table
  && t.table.(in_label) <> None
  then begin
    t.table.(in_label) <- None;
    t.count <- t.count - 1;
    true
  end else false

let lookup t label =
  if label >= 0 && label < Array.length t.table then t.table.(label)
  else None

let size t = t.count

let clear t =
  t.table <- [||];
  t.count <- 0

type step_result =
  | Forward of int
  | Ip_continue of int
  | No_binding of int
  | Ttl_expired

let step t packet =
  match Packet.top_label packet with
  | None -> invalid_arg "Lfib.step: unlabelled packet"
  | Some shim ->
    if shim.Packet.ttl <= 1 then Ttl_expired
    else begin
      match lookup t shim.Packet.label with
      | None -> No_binding shim.Packet.label
      | Some { op; next_hop } ->
        match op with
        | Swap out ->
          Packet.swap_label packet ~label:out;
          Forward next_hop
        | Pop ->
          ignore (Packet.pop_label packet);
          if Packet.top_label packet <> None then Forward next_hop
          else Ip_continue next_hop
        | Pop_and_ip ->
          ignore (Packet.pop_label packet);
          Ip_continue next_hop
    end
