module Dscp = Mvpn_net.Dscp
module Packet = Mvpn_net.Packet
module Queue_disc = Mvpn_qos.Queue_disc

type policy =
  | Best_effort
  | Diffserv of Queue_disc.sched

let band_count = 4

let band_of_exp = function
  | 5 | 6 | 7 -> 0  (* EF and network control *)
  | 3 | 4 -> 1  (* AF3 / AF4 *)
  | 1 | 2 -> 2  (* AF1 / AF2 *)
  | _ -> 3  (* best effort *)

let band_of_dscp d = band_of_exp (Dscp.to_exp d)

let band_of_packet p =
  let top = Packet.top_packed p in
  if top >= 0 then band_of_exp (Packet.Shim.exp top)
  else band_of_dscp (Packet.visible_dscp p)

let band_name = function
  | 0 -> "EF"
  | 1 -> "AF-hi"
  | 2 -> "AF-lo"
  | _ -> "BE"

let default_diffserv_sched = Queue_disc.Wfq [| 8.0; 4.0; 2.0; 1.0 |]

let strict_sched = Queue_disc.Strict

let make_qdisc ?rng ?(buffer_bytes = 262_144) ?(wred = true) policy =
  match policy with
  | Best_effort -> Queue_disc.fifo ~capacity_bytes:buffer_bytes
  | Diffserv sched ->
    (* EF gets a short queue (delay bound beats buffering); AF classes
       get the bulk of the buffer with WRED; BE gets a plain tail-drop
       share. *)
    let ef_cap = buffer_bytes / 8 in
    let af_cap = buffer_bytes * 5 / 16 in
    let be_cap = buffer_bytes / 4 in
    let af_band cap =
      { Queue_disc.capacity_bytes = cap;
        red =
          (if wred then
             Some (Queue_disc.default_wred ~avg_capacity:(float_of_int cap))
           else None) }
    in
    Queue_disc.create ?rng ~sched
      [| Queue_disc.plain_band ef_cap;
         af_band af_cap;
         af_band af_cap;
         Queue_disc.plain_band be_cap |]

(* Default per-band SLOs, derived from the SLA templates in
   {!Mvpn_qos.Sla}: EF inherits the voice spec's p99/loss bounds, the
   AF bands the transactional spec's (AF-lo relaxed), BE promises only
   that it is not a permanent blackout. *)
let default_objective band =
  let open Mvpn_telemetry.Slo in
  match band with
  | 0 -> spec ~latency_p99:0.200 ~loss_ratio:0.01 ~availability:0.99 0.99
  | 1 -> spec ~latency_p99:0.500 ~loss_ratio:0.05 ~availability:0.95 0.98
  | 2 -> spec ~latency_p99:1.0 ~loss_ratio:0.10 ~availability:0.90 0.95
  | _ -> spec ~loss_ratio:0.50 ~availability:0.50 0.50

let classify policy p =
  match policy with
  | Best_effort -> 0
  | Diffserv _ -> band_of_packet p

let mark_exp_from_dscp p =
  Packet.set_exp_all p ~exp:(Dscp.to_exp p.Packet.inner.Packet.dscp)
