(** Offline capacity planning.

    Provider-side "what if" arithmetic over a demand matrix: route the
    demands on paper — shortest-path as the IGP would, or
    capacity-aware as TE would place them — and read off per-link
    loads, hot spots, and the upgrades a pure-IGP network would need.
    Pure functions over the topology; nothing is reserved or installed.
    This is the planning counterpart of experiment E7. *)

type demand = { src : int; dst : int; bandwidth : float }

type placement

val route_spf : Mvpn_sim.Topology.t -> demand list -> placement
(** Every demand follows its current shortest path (capacity-blind, as
    §2.2 routing does). Unreachable demands are counted unrouted. *)

val route_ecmp : Mvpn_sim.Topology.t -> demand list -> placement
(** Equal-cost multipath: each demand splits fractionally and equally
    over every shortest next hop at every node (the hash-splitting
    ideal). Still capacity-blind — ECMP spreads ties, it cannot see
    load. *)

val route_capacity_aware :
  ?headroom:float -> Mvpn_sim.Topology.t -> demand list -> placement
(** Sequential CSPF-style placement: each demand takes the cheapest
    path whose links still have room for it under planned load ×
    [headroom] (default 1.0 = plan to line rate). Demands that fit
    nowhere are unrouted. *)

val routed : placement -> int
val unrouted : placement -> int

val link_load : placement -> Mvpn_sim.Topology.link -> float
(** Planned bits per second over one link. *)

val max_utilization : placement -> float
(** Highest planned load ÷ capacity across links. *)

val hot_links : ?threshold:float -> placement -> (Mvpn_sim.Topology.link * float) list
(** Links whose planned utilization exceeds [threshold] (default 1.0),
    with their utilization, worst first. *)

val upgrades_needed : placement -> (Mvpn_sim.Topology.link * float) list
(** For overloaded links, the extra capacity (bps) that would bring
    them to 100%: the IGP network's upgrade bill. *)
