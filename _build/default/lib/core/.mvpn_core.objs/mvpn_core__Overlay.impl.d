lib/core/overlay.ml: Float Hashtbl Int Int64 List Mvpn_ipsec Mvpn_net Mvpn_routing Mvpn_sim Network Site
