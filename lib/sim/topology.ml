type link = {
  id : int;
  src : int;
  dst : int;
  bandwidth : float;
  delay : float;
  mutable cost : int;
  mutable up : bool;
  mutable reserved : float;
}

type t = {
  mutable names : string array;
  mutable nodes : int;
  mutable link_arr : link array;
  mutable link_n : int;
  mutable adj : (int * int) list array;  (* node -> (neighbor, link id) *)
  mutable generation : int;
  mutable duplex_hooks : (a:int -> b:int -> up:bool -> unit) list;
  (* Dense (src, dst) -> link-id matrix backing {!find_link_id}: built
     lazily on the first lookup (for topologies up to [mat_threshold]
     nodes), patched in place when a link is added at the same node
     count, and rebuilt when the node count moved. [mat_nodes] is the
     node count the matrix was built for; a mismatch marks it stale. *)
  mutable mat : int array;
  mutable mat_nodes : int;
}

let mat_threshold = 1024

let create () =
  { names = [||]; nodes = 0; link_arr = [||]; link_n = 0; adj = [||];
    generation = 0; duplex_hooks = []; mat = [||]; mat_nodes = -1 }

let generation t = t.generation

let on_duplex_change t hook = t.duplex_hooks <- t.duplex_hooks @ [hook]

let grow_to arr n fill =
  let cap = Array.length arr in
  if n <= cap then arr
  else begin
    let narr = Array.make (max 16 (max n (2 * cap))) fill in
    Array.blit arr 0 narr 0 cap;
    narr
  end

let add_node ?name t =
  let id = t.nodes in
  let name = match name with Some n -> n | None -> Printf.sprintf "n%d" id in
  t.names <- grow_to t.names (id + 1) "";
  t.adj <- grow_to t.adj (id + 1) [];
  t.names.(id) <- name;
  t.adj.(id) <- [];
  t.nodes <- id + 1;
  id

let node_count t = t.nodes

let check_node t v =
  if v < 0 || v >= t.nodes then
    invalid_arg (Printf.sprintf "Topology: unknown node %d" v)

let node_name t v =
  check_node t v;
  t.names.(v)

let find_node t name =
  let rec go i =
    if i >= t.nodes then None
    else if String.equal t.names.(i) name then Some i
    else go (i + 1)
  in
  go 0

let link_count t = t.link_n

let link t id =
  if id < 0 || id >= t.link_n then
    invalid_arg (Printf.sprintf "Topology.link: unknown link %d" id);
  t.link_arr.(id)

(* Adjacency-list walk: the fallback for huge topologies and the
   mutation path (no matrix rebuild on every duplicate check). *)
let scan_link_id t a b =
  let rec go = function
    | [] -> -1
    | (nbr, lid) :: rest -> if nbr = b then lid else go rest
  in
  go t.adj.(a)

let build_mat t =
  let n = t.nodes in
  let m = Array.make (n * n) (-1) in
  for a = 0 to n - 1 do
    List.iter (fun (b, lid) -> m.(a * n + b) <- lid) t.adj.(a)
  done;
  t.mat <- m;
  t.mat_nodes <- n

let find_link_id t a b =
  if a < 0 || a >= t.nodes || b < 0 || b >= t.nodes then -1
  else if t.nodes <= mat_threshold then begin
    if t.mat_nodes <> t.nodes then build_mat t;
    t.mat.(a * t.mat_nodes + b)
  end
  else scan_link_id t a b

let find_link t a b =
  let id = find_link_id t a b in
  if id < 0 then None else Some t.link_arr.(id)

let add_oneway ?(cost = 1) t a b ~bandwidth ~delay =
  check_node t a;
  check_node t b;
  if a = b then invalid_arg "Topology.connect: self-loop";
  if scan_link_id t a b >= 0 then
    invalid_arg (Printf.sprintf "Topology.connect: duplicate link %d->%d" a b);
  let l =
    { id = t.link_n; src = a; dst = b; bandwidth; delay; cost; up = true;
      reserved = 0.0 }
  in
  t.link_arr <- grow_to t.link_arr (t.link_n + 1) l;
  t.link_arr.(t.link_n) <- l;
  t.link_n <- t.link_n + 1;
  t.adj.(a) <- (b, l.id) :: t.adj.(a);
  if t.mat_nodes = t.nodes then t.mat.(a * t.mat_nodes + b) <- l.id;
  t.generation <- t.generation + 1;
  l

let connect ?cost t a b ~bandwidth ~delay =
  let ab = add_oneway ?cost t a b ~bandwidth ~delay in
  let ba = add_oneway ?cost t b a ~bandwidth ~delay in
  (ab, ba)

let links t = List.init t.link_n (fun i -> t.link_arr.(i))

let neighbors t v =
  check_node t v;
  List.rev_map (fun (nbr, lid) -> (nbr, t.link_arr.(lid))) t.adj.(v)

let up_neighbors t v =
  List.filter (fun (_, l) -> l.up) (neighbors t v)

(* Idempotent: a call that re-asserts the current state is a no-op —
   no events, no generation bump, no hook firing — so callers (retry
   loops, chaos replays) can re-assert freely without provoking
   spurious reconvergence. *)
let set_duplex_state t a b up =
  match find_link t a b, find_link t b a with
  | Some ab, Some ba ->
    let changed = ab.up <> up || ba.up <> up in
    if changed then begin
      ab.up <- up;
      ba.up <- up;
      t.generation <- t.generation + 1;
      if !Mvpn_telemetry.Control.enabled then
        Mvpn_telemetry.Event_log.record
          (Mvpn_telemetry.Registry.events ())
          (if up then Mvpn_telemetry.Event_log.Link_up { src = a; dst = b }
           else Mvpn_telemetry.Event_log.Link_down { src = a; dst = b });
      List.iter (fun hook -> hook ~a ~b ~up) t.duplex_hooks
    end
  | _ ->
    invalid_arg
      (Printf.sprintf "Topology.set_duplex_state: no connection %d<->%d" a b)

let available l = Float.max 0.0 (l.bandwidth -. l.reserved)

let reserve l bw =
  if bw <= available l then begin
    l.reserved <- l.reserved +. bw;
    true
  end else false

let release l bw = l.reserved <- Float.max 0.0 (l.reserved -. bw)

(* --- Builders --------------------------------------------------------- *)

let fresh_nodes t n = Array.init n (fun _ -> add_node t)

let line t n ~bandwidth ~delay =
  let ids = fresh_nodes t n in
  for i = 0 to n - 2 do
    ignore (connect t ids.(i) ids.(i + 1) ~bandwidth ~delay)
  done;
  ids

let ring t n ~bandwidth ~delay =
  if n < 3 then invalid_arg "Topology.ring: need at least 3 nodes";
  let ids = fresh_nodes t n in
  for i = 0 to n - 1 do
    ignore (connect t ids.(i) ids.((i + 1) mod n) ~bandwidth ~delay)
  done;
  ids

let star t n ~bandwidth ~delay =
  let hub = add_node t in
  let leaves = fresh_nodes t n in
  Array.iter (fun leaf -> ignore (connect t hub leaf ~bandwidth ~delay))
    leaves;
  (hub, leaves)

let full_mesh t n ~bandwidth ~delay =
  let ids = fresh_nodes t n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      ignore (connect t ids.(i) ids.(j) ~bandwidth ~delay)
    done
  done;
  ids

let ring_with_chords t n ~chords ~bandwidth ~delay =
  let ids = ring t n ~bandwidth ~delay in
  List.iter
    (fun (i, j) ->
       if i < 0 || i >= n || j < 0 || j >= n then
         invalid_arg "Topology.ring_with_chords: chord index out of range";
       ignore (connect t ids.(i) ids.(j) ~bandwidth ~delay))
    chords;
  ids

let random_connected t rng ~n ~extra_links ~bandwidth ~delay =
  if n < 1 then invalid_arg "Topology.random_connected: need nodes";
  let ids = fresh_nodes t n in
  (* Random spanning tree: attach each new node to a random earlier one. *)
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    ignore (connect t ids.(i) ids.(j) ~bandwidth ~delay)
  done;
  let added = ref 0 and attempts = ref 0 in
  while !added < extra_links && !attempts < extra_links * 20 do
    incr attempts;
    let i = Rng.int rng n and j = Rng.int rng n in
    if i <> j && find_link t ids.(i) ids.(j) = None then begin
      ignore (connect t ids.(i) ids.(j) ~bandwidth ~delay);
      incr added
    end
  done;
  ids
