(** Process-wide metric registry.

    Instrumented modules create metrics by name at load time
    ([Registry.counter "lfib.swap"]) and keep the returned handle;
    look-ups after creation are never on the hot path. Exports render
    every registered metric sorted by name, as JSON or pretty text,
    together with the tail of the global {!Hop_trace} ring. *)

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

val counter : string -> Counter.t
(** Get or create. @raise Invalid_argument if the name is registered
    with a different metric kind. *)

val gauge : string -> Gauge.t

val histogram : ?lo:float -> ?buckets:int -> string -> Histogram.t
(** [lo]/[buckets] apply only on first creation. *)

val trace : unit -> Hop_trace.t
(** The global hop-trace ring buffer. *)

val find : string -> metric option

val find_counter : string -> Counter.t option

val find_gauge : string -> Gauge.t option

val find_histogram : string -> Histogram.t option

val counter_value : string -> int
(** 0 when absent — convenient for report code. *)

val names : unit -> string list
(** Sorted metric names. *)

val cardinal : unit -> int

val reset : unit -> unit
(** Zero every metric and clear the hop trace, keeping registrations
    (instrumented modules hold direct handles). *)

val to_json : ?trace_events:int -> unit -> string
(** One JSON object: [{"counters":{...},"gauges":{...},
    "histograms":{...},"trace":[...]}]. [trace_events] bounds the trace
    tail (default 64). *)

val pp : ?trace_events:int -> Format.formatter -> unit -> unit
(** Pretty-printed dump; [trace_events] > 0 appends the trace tail. *)
