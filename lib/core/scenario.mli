(** Canned experiment scenarios: backbone + deployment + workload.

    The experiments (E2, E4–E7) and the examples all need the same
    skeleton — build a POP backbone, attach VPN sites with (deliberately
    overlapping) private prefixes, deploy either the MPLS VPN service or
    the overlay baseline, wire CE sinks to SLA collectors, start a mixed
    voice/transactional/bulk workload, run, and read per-class reports.
    This module is that skeleton. *)

type deployment =
  | Mpls_deployment of { policy : Qos_mapping.policy; use_te : bool }
  | Overlay_deployment of {
      policy : Qos_mapping.policy;
      cipher : Mvpn_ipsec.Crypto.cipher;
      copy_tos : bool;
    }

type t

val build :
  ?backend:Mvpn_sim.Engine.backend ->
  ?pops:int ->
  ?core_bandwidth:float ->
  ?core_delay:float ->
  ?access_bandwidth:float ->
  ?vpns:int ->
  ?sites_per_vpn:int ->
  ?seed:int ->
  ?wred:bool ->
  ?te_bandwidth:float ->
  deployment -> t
(** Defaults: 12 POPs at 45 Mb/s, 2 Mb/s access, 2 VPNs × 4 sites.
    VPN [v]'s site [k] uses prefix 10.k.0.0/16 — the same in every VPN,
    so isolation is exercised constantly. Sites spread round-robin over
    POPs with an offset per VPN. [core_delay] overrides the POP–POP
    propagation delay (the parallel runner's lookahead; 0 forces its
    epoch-barrier fallback). [backend] selects the engine's event
    queue (default {!Mvpn_sim.Engine.Calendar}). *)

val engine : t -> Mvpn_sim.Engine.t
val network : t -> Network.t
val backbone : t -> Backbone.t
val registry : t -> Traffic.registry
val mpls : t -> Mpls_vpn.t option
val overlay : t -> Overlay.t option

val sites : t -> Site.t array
(** All sites; VPNs interleaved in build order. *)

val site : t -> vpn:int -> idx:int -> Site.t
(** @raise Not_found if absent. *)

(** The three service classes of the paper's motivation, with their
    SLAs: voice (EF), transactional (AF31), bulk (best effort). *)
val service_classes : (string * Mvpn_net.Dscp.t * Mvpn_qos.Sla.spec) list

val add_mixed_workload :
  ?load:float ->
  ?start:float ->
  ?rng_seed:int ->
  ?only:(Site.t -> Site.t -> bool) ->
  t -> pairs:(Site.t * Site.t) list -> duration:float -> unit
(** Per site pair: one on/off EF voice call (64 kb/s, 200-byte
    packets), Poisson AF31 transactions (200 kb/s mean, 512-byte), and
    Pareto-bursty best-effort bulk sized so the pair's total offered
    load is [load] × the access rate (default 0.9). Collectors are the
    class names from {!service_classes}.

    [only] filters which pairs actually start sources; filtered pairs
    still perform every RNG draw, so the armed pairs' substreams are
    byte-identical to an unfiltered run — how a partitioned run arms
    each pair in exactly one shard without perturbing the others. *)

val add_diurnal_workload :
  ?peak_load:float ->
  ?floor_load:float ->
  ?segments:int ->
  ?only:(Site.t -> Site.t -> bool) ->
  t -> pairs:(Site.t * Site.t) list -> duration:float -> unit
(** The soak workload: [segments] (default 8) equal windows over
    [duration], each a {!add_mixed_workload} whose load follows a
    raised-cosine diurnal curve from [floor_load] (default 0.3) at the
    edges to [peak_load] (default 0.9) mid-run. [only] filters exactly
    as in {!add_mixed_workload} — every RNG draw happens regardless, so
    partitioned soaks stay byte-identical to sequential.
    @raise Invalid_argument on [segments < 1] or a non-finite or
    non-positive [duration]. *)

val default_pairs : t -> (Site.t * Site.t) list
(** The demo workload pairing used by [mvpn]: consecutive sites
    (0→1, 2→3, …) in build order. Exposed so the sequential and
    partitioned entry points drive byte-identical workloads. *)

val region_hint : t -> int -> int option
(** Node → POP region for {!Mvpn_par.Partition}: a POP node maps to its
    own index, a CE to its PE's POP, so a region (POP plus homed sites)
    is never split across shards and every cut is a core link. [None]
    for nodes outside any region. *)

val attach_slo :
  ?slo:Mvpn_telemetry.Slo.t -> ?sample_every:int -> t ->
  Mvpn_telemetry.Slo.t
(** Attach SLA conformance tracking to the scenario's network: declares
    the stock {!Qos_mapping.default_objective} for every band of every
    VPN with sites here (and vpn 0, where un-tenanted traffic books) on
    [slo] (default: a fresh engine), plus a 1-in-[sample_every] span
    sampler. Returns the engine for reporting. *)

val run : t -> duration:float -> unit
(** Drive the engine to [duration] seconds, then close out any attached
    SLO's conformance windows at the horizon. *)

val class_report : t -> string -> Mvpn_qos.Sla.report

val class_reports : t -> (string * Mvpn_qos.Sla.report) list
(** One report per class that generated traffic, in class order. *)

val core_link_ids : t -> int list
(** Directed link ids of the backbone's core (POP–POP) links, in
    topology order — the sampling points for {!Sampler}. *)

val core_links : t -> (int * int) list
(** The backbone's core (POP–POP) duplex links as sorted (src, dst)
    node pairs with src < dst — the fault targets chaos scenarios flap
    (CE access links excluded). *)

val max_core_utilization : t -> float
(** Highest port utilization over backbone core links (CE access links
    excluded) at the current engine time. *)

val core_loss_fraction : t -> float
(** Queue drops ÷ offered over core-link ports. *)
