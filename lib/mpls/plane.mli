(** Per-node MPLS forwarding state for a whole network.

    One label space, one LFIB and one FTN (FEC-to-NHLFE) map per node.
    LDP and RSVP-TE both install into a plane; the data path reads from
    it: an ingress LSR consults the FTN to push the first label, transit
    LSRs consult the LFIB. *)

type ftn_entry = {
  push : int;  (** label to push *)
  next_hop : int;  (** node to forward to after the push *)
}

type t

val create : nodes:int -> t

val node_count : t -> int

val allocator : t -> int -> Label.Allocator.t
(** The node's label space. @raise Invalid_argument on a bad node. *)

val lfib : t -> int -> Lfib.t

val install_ftn : t -> int -> Fec.t -> ftn_entry -> unit
(** Bind a FEC at an ingress node (replaces an existing binding). *)

val remove_ftn : t -> int -> Fec.t -> bool

val find_ftn : t -> int -> Fec.t -> ftn_entry option

val clear_ftn : t -> int -> unit
(** Drop every FTN binding at a node (bumps the generation when any
    existed) — what a control-plane session loss does to an ingress
    until LDP/RSVP-TE re-installs. *)

val ftn_generation : t -> int -> int
(** Monotonic mutation counter of the node's FTN map, bumped by
    {!install_ftn} and successful {!remove_ftn} — including every
    binding {!Ldp.distribute}/{!Ldp.refresh} or RSVP-TE (re)installs.
    FEC → FTN caches compare it to detect that an ingress binding moved
    (e.g. after a failure re-splice).
    @raise Invalid_argument on a bad node. *)

val ftn_size : t -> int -> int

val total_lfib_entries : t -> int
(** Sum of LFIB sizes over all nodes — network-wide label state (E1). *)

val total_labels_allocated : t -> int
