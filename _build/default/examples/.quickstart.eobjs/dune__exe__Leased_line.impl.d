examples/leased_line.ml: Array Backbone Format L2vpn Mvpn_core Mvpn_net Mvpn_qos Mvpn_sim Network Printf Qos_mapping Traffic
