module Topology = Mvpn_sim.Topology
module Packet = Mvpn_net.Packet
module Ldp = Mvpn_mpls.Ldp
module Plane = Mvpn_mpls.Plane
module Label = Mvpn_mpls.Label
module Fec = Mvpn_mpls.Fec
module Spf = Mvpn_routing.Spf

type endpoint = {
  pe : int;
  on_deliver : Packet.t -> unit;
}

let control_word_bytes = 4

type side = {
  endpoint : endpoint;
  label : int;  (* the label this side's PE expects for inbound frames *)
  mutable seq_out : int;  (* next sequence number when sending from here *)
  mutable expected_in : int;  (* receiver window position *)
}

type pw = {
  id : int;
  side_a : side;
  side_b : side;
  mutable delivered : int;
  mutable misordered : int;
}

type t = {
  net : Network.t;
  backbone : Backbone.t;
  ldp : Ldp.t;
  (* (pe node, pseudowire label) -> which pseudowire side receives *)
  demux : (int * int, pw * bool (* toward side a *)) Hashtbl.t;
  pws : (int, pw) Hashtbl.t;
  (* In-flight sequence numbers, keyed by packet uid (the control
     word's contents in the model). *)
  in_flight : (int, int) Hashtbl.t;
  mutable next_id : int;
}

let pe_loopback t pe =
  match Backbone.pop_of_node t.backbone pe with
  | Some pop -> Backbone.loopback t.backbone ~pop
  | None -> invalid_arg (Printf.sprintf "L2vpn: node %d is not a PE" pe)

let receive_side t pw ~toward_a packet =
  let side = if toward_a then pw.side_a else pw.side_b in
  ignore (Packet.pop_packed packet);
  packet.Packet.size <- packet.Packet.size - control_word_bytes;
  (match Hashtbl.find_opt t.in_flight packet.Packet.uid with
   | Some seq ->
     Hashtbl.remove t.in_flight packet.Packet.uid;
     if seq < side.expected_in then pw.misordered <- pw.misordered + 1
     else side.expected_in <- seq + 1
   | None -> ());
  pw.delivered <- pw.delivered + 1;
  side.endpoint.on_deliver packet

let install_demux t pe =
  Dataplane.add_interceptor (Network.dataplane t.net) pe (fun ~from packet ->
      ignore from;
      let top = Packet.top_packed packet in
      if top < 0 then Dataplane.Continue
      else
        match Hashtbl.find_opt t.demux (pe, Packet.Shim.label top) with
        | Some (pw, toward_a) ->
          receive_side t pw ~toward_a packet;
          Dataplane.Consumed
        | None -> Dataplane.Continue)

let deploy ~net ~backbone =
  let topo = Network.topology net in
  let fecs =
    Array.to_list
      (Array.mapi
         (fun pop node -> (Backbone.loopback backbone ~pop, node))
         (Backbone.pops backbone))
  in
  let ldp = Ldp.distribute topo (Network.plane net) ~fecs in
  let t =
    { net; backbone; ldp; demux = Hashtbl.create 32;
      pws = Hashtbl.create 16; in_flight = Hashtbl.create 64; next_id = 1 }
  in
  Array.iter (fun pe -> install_demux t pe) (Backbone.pops backbone);
  t

let create_pw t ~a ~b =
  let topo = Network.topology t.net in
  (* Both directions must be reachable before we commit labels. *)
  if a.pe <> b.pe
  && (Spf.shortest_path topo ~src:a.pe ~dst:b.pe = None
      || Spf.shortest_path topo ~src:b.pe ~dst:a.pe = None)
  then Error "PEs cannot reach each other"
  else begin
    let plane = Network.plane t.net in
    let label_a = Label.Allocator.alloc (Plane.allocator plane a.pe) in
    let label_b = Label.Allocator.alloc (Plane.allocator plane b.pe) in
    let pw =
      { id = t.next_id;
        side_a = { endpoint = a; label = label_a; seq_out = 1; expected_in = 1 };
        side_b = { endpoint = b; label = label_b; seq_out = 1; expected_in = 1 };
        delivered = 0; misordered = 0 }
    in
    t.next_id <- pw.id + 1;
    Hashtbl.replace t.demux (a.pe, label_a) (pw, true);
    Hashtbl.replace t.demux (b.pe, label_b) (pw, false);
    Hashtbl.replace t.pws pw.id pw;
    Ok pw.id
  end

let find_pw t pw_id =
  match Hashtbl.find_opt t.pws pw_id with
  | Some pw -> pw
  | None -> invalid_arg (Printf.sprintf "L2vpn: unknown pseudowire %d" pw_id)

let send t ~pw ~from_a packet =
  let pw = find_pw t pw in
  let src_side = if from_a then pw.side_a else pw.side_b in
  let dst_side = if from_a then pw.side_b else pw.side_a in
  let seq = src_side.seq_out in
  src_side.seq_out <- seq + 1;
  Hashtbl.replace t.in_flight packet.Packet.uid seq;
  if src_side.endpoint.pe = dst_side.endpoint.pe then begin
    (* Local switching: both attachment circuits on one PE. *)
    Hashtbl.remove t.in_flight packet.Packet.uid;
    (if seq < dst_side.expected_in then pw.misordered <- pw.misordered + 1
     else dst_side.expected_in <- seq + 1);
    pw.delivered <- pw.delivered + 1;
    dst_side.endpoint.on_deliver packet
  end
  else begin
    packet.Packet.size <- packet.Packet.size + control_word_bytes;
    let exp = Mvpn_net.Dscp.to_exp (Packet.visible_dscp packet) in
    Packet.push_label packet ~label:dst_side.label ~exp ~ttl:64;
    let transport =
      Dataplane.find_ftn (Network.dataplane t.net) src_side.endpoint.pe
        (Fec.Prefix_fec (pe_loopback t dst_side.endpoint.pe))
    in
    match transport with
    | Some e ->
      Packet.push_label packet ~label:e.Plane.push ~exp ~ttl:64;
      Network.transmit t.net ~from:src_side.endpoint.pe ~to_:e.Plane.next_hop
        packet
    | None ->
      (* Adjacent PE under PHP: the pseudowire label travels alone. *)
      (match
         Spf.shortest_path (Network.topology t.net)
           ~src:src_side.endpoint.pe ~dst:dst_side.endpoint.pe
       with
       | Some (_ :: nh :: _) ->
         Network.transmit t.net ~from:src_side.endpoint.pe ~to_:nh packet
       | Some _ | None -> Network.drop_packet t.net "pw-unreachable")
  end

let misordered t ~pw = (find_pw t pw).misordered

let delivered t ~pw = (find_pw t pw).delivered

let pw_count t = Hashtbl.length t.pws
