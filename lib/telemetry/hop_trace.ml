(* Fixed-capacity ring of per-packet hop events keyed on the packet uid.
   Recording overwrites the oldest entry; reading scans the ring (it is
   a debugging/forensics surface, not a hot path).

   Storage is four parallel arrays rather than an array of event
   records: recording happens for every instrumented hop of every
   packet, and the unboxed layout makes it four stores with no
   allocation (the float array is flat), where a record ring would
   allocate and initialize a box per hop. The public [event] record is
   reconstructed only on the cold read paths. *)

type event = { uid : int; time : float; node : int; label : string }

type t = {
  uids : int array;
  times : float array;
  nodes : int array;
  labels : string array;
  mutable pos : int;  (* next slot to overwrite *)
  mutable recorded : int;  (* total ever recorded *)
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Hop_trace.create: capacity must be positive";
  { uids = Array.make capacity (-1);
    times = Array.make capacity 0.0;
    nodes = Array.make capacity (-1);
    labels = Array.make capacity "";
    pos = 0;
    recorded = 0 }

let capacity t = Array.length t.uids

let recorded t = t.recorded

let record t ~uid ~time ~node label =
  if !Control.enabled then begin
    let p = t.pos in
    t.uids.(p) <- uid;
    t.times.(p) <- time;
    t.nodes.(p) <- node;
    t.labels.(p) <- label;
    let p = p + 1 in
    t.pos <- (if p = Array.length t.uids then 0 else p);
    t.recorded <- t.recorded + 1
  end

(* Oldest-first fold over live entries. *)
let fold f t init =
  let cap = Array.length t.uids in
  let live = min t.recorded cap in
  let start = (t.pos - live + cap) mod cap in
  let acc = ref init in
  for i = 0 to live - 1 do
    let j = (start + i) mod cap in
    acc :=
      f !acc
        { uid = t.uids.(j); time = t.times.(j); node = t.nodes.(j);
          label = t.labels.(j) }
  done;
  !acc

let trace t ~uid =
  List.rev (fold (fun acc e -> if e.uid = uid then e :: acc else acc) t [])

let recent t n =
  let all = List.rev (fold (fun acc e -> e :: acc) t []) in
  let live = List.length all in
  if live <= n then all
  else List.filteri (fun i _ -> i >= live - n) all

let clear t =
  Array.fill t.uids 0 (Array.length t.uids) (-1);
  Array.fill t.times 0 (Array.length t.times) 0.0;
  Array.fill t.nodes 0 (Array.length t.nodes) (-1);
  Array.fill t.labels 0 (Array.length t.labels) "";
  t.pos <- 0;
  t.recorded <- 0

let pp_event ppf e =
  Format.fprintf ppf "%.6f uid=%d node=%d %s" e.time e.uid e.node e.label
