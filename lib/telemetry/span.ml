(* End-to-end span reconstruction over the {!Hop_trace} ring.

   The ring records flat per-packet hop events ("rx", "tx", "txstart",
   "deliver", "drop:<reason>"); a span folds one packet's chronological
   events into contiguous segments, each attributing its dwell time to
   a stage of the forwarding path:

     rx -> tx            processing (decision path at the node)
     tx -> txstart       queueing   (waiting in the egress qdisc)
     txstart -> rx       transmission (serialization + propagation)
     rx -> deliver       delivery   (hand-off to the local sink)

   Because segments pair consecutive events, their dwells sum exactly
   to last-event time minus first-event time — the packet's end-to-end
   delay when the first event is its ingress "rx". *)

type kind = Processing | Queueing | Transmission | Delivery | Other

type segment = {
  node : int;  (* where the segment starts *)
  next_node : int;  (* where it ends (same as [node] unless on the wire) *)
  kind : kind;
  start_time : float;
  dwell : float;
  from_label : string;
  to_label : string;
}

type outcome = Delivered | Dropped of string | In_flight

type t = {
  uid : int;
  vpn : int;
  band : int;
  start_time : float;
  end_time : float;
  outcome : outcome;
  segments : segment list;
}

let kind_name = function
  | Processing -> "processing"
  | Queueing -> "queueing"
  | Transmission -> "transmission"
  | Delivery -> "delivery"
  | Other -> "other"

let is_drop label =
  String.length label >= 5 && String.sub label 0 5 = "drop:"

let kind_of_pair ~from_label ~to_label =
  match (from_label, to_label) with
  | "rx", "tx" -> Processing
  | "tx", "txstart" -> Queueing
  | "txstart", "rx" -> Transmission
  | "rx", "deliver" -> Delivery
  | from_label, _ ->
    (* Terminal drops and unexpected sequences classify by where the
       packet last was: after "rx" it was being processed, after "tx"
       it sat in a queue, after "txstart" it was on the wire. *)
    (match from_label with
     | "rx" -> Processing
     | "tx" -> Queueing
     | "txstart" -> Transmission
     | _ -> Other)

let of_trace ?(vpn = -1) ?(band = -1) (events : Hop_trace.event list) =
  match events with
  | [] -> None
  | first :: _ ->
    let rec pairs acc = function
      | (a : Hop_trace.event) :: (b :: _ as rest) ->
        let seg =
          { node = a.node;
            next_node = b.node;
            kind = kind_of_pair ~from_label:a.label ~to_label:b.label;
            start_time = a.time;
            dwell = b.time -. a.time;
            from_label = a.label;
            to_label = b.label }
        in
        pairs (seg :: acc) rest
      | [ last ] -> (acc, last)
      | [] -> (acc, first)
    in
    let rev_segments, last = pairs [] events in
    let outcome =
      if String.equal last.label "deliver" then Delivered
      else if is_drop last.label then
        Dropped (String.sub last.label 5 (String.length last.label - 5))
      else In_flight
    in
    Some
      { uid = first.uid;
        vpn;
        band;
        start_time = first.time;
        end_time = last.time;
        outcome;
        segments = List.rev rev_segments }

let total t = t.end_time -. t.start_time

let by_kind t =
  let add acc k d =
    match List.assoc_opt k acc with
    | Some prev -> (k, prev +. d) :: List.remove_assoc k acc
    | None -> (k, d) :: acc
  in
  List.rev
    (List.fold_left (fun acc s -> add acc s.kind s.dwell) [] t.segments)

let dwell_of_kind t k =
  List.fold_left
    (fun acc s -> if s.kind = k then acc +. s.dwell else acc)
    0.0 t.segments

(* --- sampler ----------------------------------------------------------- *)

(* Per-(vpn, band) head sampling: the 1st, (every+1)th, ... delivery of
   each key is reconstructed and kept; drops are always kept. Both
   retention rings are bounded, newest first. *)
type sampler = {
  every : int;
  keep : int;
  counts : (int, int ref) Hashtbl.t;  (* key = vpn lsl 4 lor band *)
  mutable delivered : t list;
  mutable dropped : t list;
  mutable n_offered : int;
  mutable n_kept : int;
}

let sampler ?(every = 64) ?(keep = 32) () =
  if every < 1 then invalid_arg "Span.sampler: every must be positive";
  if keep < 1 then invalid_arg "Span.sampler: keep must be positive";
  { every; keep; counts = Hashtbl.create 16; delivered = []; dropped = [];
    n_offered = 0; n_kept = 0 }

let truncate n l =
  let rec go i = function
    | [] -> []
    | _ when i >= n -> []
    | x :: rest -> x :: go (i + 1) rest
  in
  go 0 l

let key ~vpn ~band = (vpn lsl 4) lor (band land 0xF)

let offer s trace ~uid ~vpn ~band ~dropped =
  if !Control.enabled then begin
    s.n_offered <- s.n_offered + 1;
    let keep_it =
      if dropped then true
      else begin
        let k = key ~vpn ~band in
        let c =
          match Hashtbl.find_opt s.counts k with
          | Some c -> c
          | None ->
            let c = ref 0 in
            Hashtbl.add s.counts k c;
            c
        in
        let hit = !c mod s.every = 0 in
        incr c;
        hit
      end
    in
    if keep_it then
      match of_trace ~vpn ~band (Hop_trace.trace trace ~uid) with
      | None -> ()
      | Some span ->
        s.n_kept <- s.n_kept + 1;
        if dropped then s.dropped <- truncate s.keep (span :: s.dropped)
        else s.delivered <- truncate s.keep (span :: s.delivered)
  end

let delivered_spans s = List.rev s.delivered
let dropped_spans s = List.rev s.dropped
let offered s = s.n_offered
let kept s = s.n_kept

let clear s =
  Hashtbl.reset s.counts;
  s.delivered <- [];
  s.dropped <- [];
  s.n_offered <- 0;
  s.n_kept <- 0

(* --- export ------------------------------------------------------------ *)

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v else "0"

let outcome_name = function
  | Delivered -> "delivered"
  | Dropped reason -> "dropped:" ^ reason
  | In_flight -> "in_flight"

let segment_to_json (s : segment) =
  Printf.sprintf
    "{\"node\":%d,\"next_node\":%d,\"kind\":\"%s\",\"start\":%s,\"dwell\":%s}"
    s.node s.next_node (kind_name s.kind) (json_float s.start_time)
    (json_float s.dwell)

let to_json t =
  Printf.sprintf
    "{\"uid\":%d,\"vpn\":%d,\"band\":%d,\"start\":%s,\"end\":%s,\
     \"outcome\":\"%s\",\"segments\":[%s]}"
    t.uid t.vpn t.band (json_float t.start_time) (json_float t.end_time)
    (outcome_name t.outcome)
    (String.concat "," (List.map segment_to_json t.segments))

let sampler_to_json s =
  "["
  ^ String.concat ","
      (List.map to_json (delivered_spans s @ dropped_spans s))
  ^ "]"

let pp_segment ppf (s : segment) =
  Format.fprintf ppf "%s@%d%s %.6fs (%s->%s)" (kind_name s.kind) s.node
    (if s.next_node <> s.node then Printf.sprintf "->%d" s.next_node else "")
    s.dwell s.from_label s.to_label

let pp ppf t =
  Format.fprintf ppf "span uid=%d vpn=%d band=%d %s total=%.6fs@." t.uid
    t.vpn t.band (outcome_name t.outcome) (total t);
  List.iter (fun s -> Format.fprintf ppf "  %a@." pp_segment s) t.segments
