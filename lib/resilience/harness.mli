(** One-stop chaos harness: scenario + FRR + recovery + fault plan.

    [mvpn chaos], [mvpn slo --chaos], bench E15 and the property tests
    all run the same stack; this module is that stack, so a seed means
    the same fault timeline everywhere. {!arm} bolts the resilience
    machinery onto an existing scenario (the [slo --chaos] path);
    {!build} also constructs the scenario and its mixed workload (the
    [mvpn chaos] path). Equal seeds give byte-identical
    {!summary_json}. *)

type t

val arm :
  ?events:int ->
  ?plan:Chaos.plan ->
  ?recovery_config:Recovery.config ->
  frr:bool ->
  fallback:bool ->
  seed:int ->
  duration:float ->
  Mvpn_core.Scenario.t ->
  t
(** Arm IP fallback, facility-backup FRR over every core link (when
    [frr]), backoff-driven recovery whose repair burst reconverges the
    control plane and re-plumbs bypasses, and a seeded {!Chaos.plan}
    of [events] faults (default 12) over [0, duration). An explicit
    [plan] (e.g. one parsed back from {!Chaos.plan_of_json}, or a
    sharding-safe {!Chaos.random_topology_plan}) replaces the seeded
    draw; session-drop refreshes are still scheduled over it. Does not
    add workload and does not run.
    @raise Invalid_argument if the scenario has no MPLS deployment. *)

val build :
  ?pops:int ->
  ?vpns:int ->
  ?sites_per_vpn:int ->
  ?events:int ->
  ?recovery_config:Recovery.config ->
  ?load:float ->
  frr:bool ->
  fallback:bool ->
  seed:int ->
  duration:float ->
  unit ->
  t
(** {!Mvpn_core.Scenario.build} an MPLS deployment (diffserv policy,
    no TE), {!arm} it, and add the stock mixed workload at [load]
    (default 0.5) between consecutive site pairs. *)

val run : t -> unit
(** Drive the engine [duration] plus a 5 s drain, closing out SLO
    windows if one is attached. *)

val scenario : t -> Mvpn_core.Scenario.t
val plan : t -> Chaos.plan
val frr : t -> Frr.t option
val recovery : t -> Recovery.t

type port_totals = {
  port_offered : int;
  port_queue : int;
  port_link_down : int;
  port_fault : int;
}

val port_totals : t -> port_totals
(** Terminal port fates summed over every link. *)

val summary_json : t -> string
(** Single-line JSON: seed, the full fault plan, delivered count, the
    per-reason drop table, port fates, every [resilience.*] counter and
    typed-event counts. Deterministic — same seed, same bytes. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable rendering of the same facts. *)
