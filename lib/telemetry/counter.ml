(* The handle is shared across domains; the count lives in domain-local
   storage, so concurrent domains bump private cells and never lose
   increments to a read-modify-write race. Each domain therefore holds a
   partial count: [value] reads the calling domain's partial, and a
   harness combines partials with [Registry.snapshot] (taken inside the
   domain) + [Registry.absorb] (counters add).

   [Domain.DLS.get] per bump is measurable in instrumented hot loops
   (LFIB step, qdisc, per-hop counters), so the handle memoizes the
   last resolved (domain id, cell) pair. The pair is one immutable
   block behind a single mutable field: a racing reader sees either
   the old or the new pair whole, and uses it only when the stored
   domain id is its own — a hit always yields the caller's private
   cell, so the DLS partial-count guarantee is untouched. *)

type cache = { did : int; cell : int ref }

type t = {
  name : string;
  key : int ref Domain.DLS.key;
  mutable last : cache;
}

(* No real domain has id -1, so the first access always misses. *)
let empty_cache = { did = -1; cell = ref 0 }

let make name =
  { name; key = Domain.DLS.new_key (fun () -> ref 0); last = empty_cache }

let name t = t.name

let cell t =
  let did = (Domain.self () :> int) in
  let l = t.last in
  if l.did = did then l.cell
  else begin
    let c = Domain.DLS.get t.key in
    t.last <- { did; cell = c };
    c
  end

let incr t =
  if !Control.enabled then begin
    let c = cell t in
    c := !c + 1
  end

let add t n =
  if !Control.enabled then begin
    let c = cell t in
    c := !c + n
  end

let set t n = if !Control.enabled then cell t := n

let value t = !(cell t)

let reset t = cell t := 0

let pp ppf t = Format.fprintf ppf "%s = %d" t.name (value t)
