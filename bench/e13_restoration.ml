(* E13 — restoration after a core failure (§3: "avoid congested,
   constrained or disabled links"; the carrier-grade requirement behind
   the paper's backbone deployment).

   A steady voice stream crosses the ring; at t=10s the link under it
   dies. Three restoration regimes:
     none          — the network never repairs (all subsequent loss);
     igp           — detection (1s hold) plus flooding at 200ms a round,
                     then FIBs/LSPs reconverge;
     frr           — a pre-signalled bypass switches over in 50 ms.
   Lost packets tell the story. *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Flow = Mvpn_net.Flow
module Sla = Mvpn_qos.Sla

let duration = 30.0
let fail_at = 10.0
let igp_detection = 1.0
let igp_round = 0.2
let frr_switchover = 0.050

type regime = No_repair | Igp | Frr

module T = Mvpn_telemetry

let run_regime regime =
  let bb = Backbone.build ~pops:6 ~chords:[] () in
  let a =
    Backbone.attach_site bb ~id:1 ~name:"a" ~vpn:1
      ~prefix:(Mvpn_net.Prefix.of_string_exn "10.0.0.0/16") ~pop:0
  in
  let b =
    Backbone.attach_site bb ~id:2 ~name:"b" ~vpn:1
      ~prefix:(Mvpn_net.Prefix.of_string_exn "10.1.0.0/16") ~pop:2
  in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites:[a; b] () in
  (* The voice stream's SLA, watched live: EF objective for the one
     tenant, so the failure shows up as slo_violation/slo_recovered
     events and burn-rate alerts in the harness event log. *)
  let slo = T.Slo.create () in
  T.Slo.declare slo ~vpn:1 ~band:0 (Qos_mapping.default_objective 0);
  Network.set_slo net (Some slo);
  let registry = Traffic.registry engine in
  Network.set_sink net b.Site.ce_node (Traffic.sink registry);
  let emit =
    Traffic.sender registry ~net ~src_node:a.Site.ce_node
      ~flow:(Flow.make ~proto:Flow.Udp ~dst_port:5060 (Site.host a 1)
               (Site.host b 1))
      ~dscp:Mvpn_net.Dscp.ef ~vpn:1
      ~collector:(Traffic.collector registry "voice")
      ()
  in
  (* 50 packets per second: one per 20 ms, the usual voice cadence. *)
  Traffic.cbr engine ~start:0.0 ~stop:duration ~rate_bps:80_000.0
    ~packet_bytes:200 emit;
  let pops = Backbone.pops bb in
  Engine.schedule_at engine ~time:fail_at (fun () ->
      Topology.set_duplex_state (Backbone.topology bb) pops.(0) pops.(1)
        false);
  (match regime with
   | No_repair -> ()
   | Igp ->
     (* Detection hold-down, then one reconvergence whose cost we model
        as rounds x the flooding interval: reconverge runs instantly in
        the simulator, so schedule it at the time it would complete. *)
     let probe_rounds =
       (* Dry-run on a twin topology to learn the round count. *)
       3
     in
     Engine.schedule_at engine
       ~time:(fail_at +. igp_detection +. (float_of_int probe_rounds *. igp_round))
       (fun () -> ignore (Mpls_vpn.reconverge vpn))
   | Frr ->
     Engine.schedule_at engine ~time:(fail_at +. frr_switchover) (fun () ->
         ignore (Mpls_vpn.reconverge vpn)));
  Engine.run ~until:(duration +. 2.0) engine;
  T.Slo.advance slo ~time:(Engine.now engine);
  (Traffic.report registry "voice", slo)

let run () =
  Tables.heading "E13: voice loss across a core link failure at t=10s";
  let widths = [12; 8; 8; 8; 14; 6; 6; 9] in
  Tables.row widths
    [ "regime"; "sent"; "recv"; "lost"; "outage (est)"; "viol"; "recov";
      "budget" ];
  Tables.rule widths;
  List.iter
    (fun (name, tag, regime, outage) ->
       let events = T.Registry.events () in
       let before k = T.Event_log.count_kind events k in
       let v0 = before "slo_violation" and r0 = before "slo_recovered" in
       let r, slo = run_regime regime in
       let viol = before "slo_violation" - v0 in
       let recov = before "slo_recovered" - r0 in
       let budget =
         match T.Slo.reports slo with
         | rep :: _ -> rep.T.Slo.budget_remaining
         | [] -> 1.0
       in
       T.Slo.publish_gauges ~prefix:("e13.slo." ^ tag) slo;
       T.Gauge.set
         (T.Registry.gauge (Printf.sprintf "e13.slo.%s.violations" tag))
         (float_of_int viol);
       T.Gauge.set
         (T.Registry.gauge (Printf.sprintf "e13.slo.%s.recovered" tag))
         (float_of_int recov);
       Tables.row widths
         [ name; string_of_int r.Sla.sent; string_of_int r.Sla.received;
           string_of_int (r.Sla.sent - r.Sla.received); outage;
           string_of_int viol; string_of_int recov;
           Printf.sprintf "%.0f%%" (100.0 *. budget) ])
    [ ("no repair", "none", No_repair, "forever");
      ("igp", "igp", Igp, "~1.6 s");
      ("frr 50ms", "frr", Frr, "~50 ms") ];
  Tables.note
    "\nAt 50 packets/s: no repair loses every packet after the failure\n\
     (~1000), IGP reconvergence loses ~80 (1.6 s of detection plus\n\
     flooding), and a pre-signalled bypass loses ~2-3. The SLO engine\n\
     sees the same story live: each regime fires a loss violation at\n\
     the failure; only the repairing regimes also log the recovery,\n\
     and FRR barely dents the EF error budget."
