(** AAL5 segmentation and reassembly.

    An IP packet rides ATM as an AAL5 frame: payload plus an 8-byte
    trailer, padded to a multiple of 48, carried in ⌈(payload+8)/48⌉
    cells of 53 bytes. Two consequences the E9 experiment measures:

    - the {e cell tax}: 5 bytes of header per 48 of payload plus
      padding — ~10–20% of the wire for typical packets, against the
      4-byte MPLS shim;
    - {e loss amplification}: one lost cell destroys the whole frame
      (the reassembler cannot checksum a hole), so frame loss ≈
      1 − (1−p)^cells for cell-loss rate p. *)

val trailer_bytes : int
(** 8 — the AAL5 trailer (length + CRC-32). *)

val cells_for : payload:int -> int
(** Number of cells an AAL5 frame of [payload] bytes occupies.
    @raise Invalid_argument if payload is not positive. *)

val wire_bytes : payload:int -> int
(** Total bytes on the wire: [cells_for payload * 53]. *)

val overhead_fraction : payload:int -> float
(** [1 - payload / wire_bytes] — the cell tax. *)

val segment :
  vpi:int -> vci:int -> frame_id:int -> payload:int -> Cell.t list
(** The cell sequence for one frame, in order, last cell flagged. *)

(** Per-VC reassembly state machine. *)
module Reassembler : sig
  type t

  val create : unit -> t

  type event =
    | Incomplete  (** cell absorbed, frame still in progress *)
    | Frame of { frame_id : int; cells : int }  (** a frame completed *)
    | Corrupt of { frame_id : int }
        (** end-of-message arrived but cells were missing: the whole
            frame is discarded (CRC failure) *)

  val push : t -> Cell.t -> event
  (** Feed the next arriving cell of this VC. *)

  val frames_ok : t -> int
  val frames_corrupt : t -> int
end
