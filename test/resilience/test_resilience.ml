(* Resilience: fast reroute, IP fallback, backoff recovery, chaos.

   The acceptance properties of the chaos work live here:
   - a link failure under facility backup switches the same tick, with
     (next to) no loss and no silent drops;
   - a control-plane session loss degrades to accounted IP fallback and
     logs the LSP restoration;
   - a flap storm damps the link after K flaps with at most one
     re-signal burst;
   - a seeded chaos run is deterministic fault-for-fault and
     fate-for-fate;
   - under any seeded storm, FRR delivery is a superset of no-FRR
     delivery, and every undelivered packet lands in exactly one
     drop counter (qcheck). *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Rng = Mvpn_sim.Rng
module Flow = Mvpn_net.Flow
module Packet = Mvpn_net.Packet
module Prefix = Mvpn_net.Prefix
module Dscp = Mvpn_net.Dscp
module Plane = Mvpn_mpls.Plane
module Port = Mvpn_qos.Port
module Frr = Mvpn_resilience.Frr
module Chaos = Mvpn_resilience.Chaos
module Recovery = Mvpn_resilience.Recovery
module Harness = Mvpn_resilience.Harness
module T = Mvpn_telemetry

let cv = T.Registry.counter_value

let with_telemetry f () =
  T.Control.enable ();
  Fun.protect ~finally:T.Control.disable f

(* --- a two-site rig on the 6-POP ring ---------------------------------- *)

type rig = {
  bb : Backbone.t;
  engine : Engine.t;
  net : Network.t;
  vpn : Mpls_vpn.t;
  a : Site.t;
  b : Site.t;
  registry : Traffic.registry;
  delivered : (int, unit) Hashtbl.t;  (* uid -> () at b's CE *)
}

let build_rig () =
  Packet.reset_uid_counter ();
  let bb = Backbone.build ~pops:6 ~chords:[] () in
  let a =
    Backbone.attach_site bb ~id:1 ~name:"a" ~vpn:1
      ~prefix:(Prefix.of_string_exn "10.0.0.0/16") ~pop:0
  in
  let b =
    Backbone.attach_site bb ~id:2 ~name:"b" ~vpn:1
      ~prefix:(Prefix.of_string_exn "10.1.0.0/16") ~pop:2
  in
  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites:[a; b] () in
  let registry = Traffic.registry engine in
  let delivered = Hashtbl.create 512 in
  Network.set_sink net b.Site.ce_node (fun p ->
      Hashtbl.replace delivered p.Packet.uid ();
      Traffic.sink registry p);
  { bb; engine; net; vpn; a; b; registry; delivered }

let voice r ~stop =
  let emit =
    Traffic.sender r.registry ~net:r.net ~src_node:r.a.Site.ce_node
      ~flow:(Flow.make ~proto:Flow.Udp ~dst_port:5060 (Site.host r.a 1)
               (Site.host r.b 1))
      ~dscp:Dscp.ef ~vpn:1
      ~collector:(Traffic.collector r.registry "voice")
      ()
  in
  Traffic.cbr r.engine ~start:0.0 ~stop ~rate_bps:80_000.0 ~packet_bytes:200
    emit

let core_directed bb =
  let is_pop v = Backbone.pop_of_node bb v <> None in
  List.filter_map
    (fun (l : Topology.link) ->
       if is_pop l.Topology.src && is_pop l.Topology.dst then
         Some (l.Topology.src, l.Topology.dst)
       else None)
    (Topology.links (Backbone.topology bb))

let core_duplex bb =
  List.filter (fun (x, y) -> x < y) (core_directed bb)

let port_drops r =
  List.fold_left
    (fun acc (l : Topology.link) ->
       let c = Port.counters (Network.port r.net ~link_id:l.Topology.id) in
       acc + c.Port.dropped_queue + c.Port.dropped_link_down
       + c.Port.dropped_fault)
    0
    (Topology.links (Backbone.topology r.bb))

let net_drops r =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (Network.drop_counts r.net)

(* Every sent packet ends delivered or in exactly one drop counter. *)
let check_accounting ?(msg = "accounting") r =
  let sent = (Traffic.report r.registry "voice").Mvpn_qos.Sla.sent in
  Alcotest.(check int) msg sent
    (Hashtbl.length r.delivered + port_drops r + net_drops r)

(* --- FRR: same-tick switchover ----------------------------------------- *)

let test_frr_switchover () =
  let r = build_rig () in
  let f = Frr.arm ~links:(core_directed r.bb) r.net in
  let s = Frr.stats f in
  Alcotest.(check int) "every core link protected" 0
    s.Frr.unprotected_links;
  let switched0 = cv "resilience.frr.switched" in
  voice r ~stop:10.0;
  let pops = Backbone.pops r.bb in
  (* Kill the link under the LSP mid-run; nobody reconverges. *)
  Engine.schedule_at r.engine ~time:5.0 (fun () ->
      Topology.set_duplex_state (Network.topology r.net) pops.(0) pops.(1)
        false);
  Engine.run r.engine;
  let rep = Traffic.report r.registry "voice" in
  Alcotest.(check bool) "bypass carries the stream" true
    (rep.Mvpn_qos.Sla.sent - rep.Mvpn_qos.Sla.received <= 3);
  Alcotest.(check bool) "switchovers counted" true
    (cv "resilience.frr.switched" - switched0 > 100);
  Alcotest.(check int) "one switchover event this episode" 1
    (T.Event_log.count_kind (T.Registry.events ()) "frr_switchover");
  check_accounting r

(* --- fallback: session loss degrades to IP, restoration logged --------- *)

let test_fallback_and_restore () =
  let r = build_rig () in
  Mpls_vpn.set_ip_fallback r.vpn true;
  let fb0 = cv "resilience.fallback.packets" in
  let rs0 = cv "resilience.fallback.restored" in
  voice r ~stop:10.0;
  let pops = Backbone.pops r.bb in
  (* LDP/BGP session loss at the ingress PE: label bindings vanish. *)
  Engine.schedule_at r.engine ~time:5.0 (fun () ->
      Plane.clear_ftn (Network.plane r.net) pops.(0));
  Engine.schedule_at r.engine ~time:7.0 (fun () ->
      ignore (Mpls_vpn.reconverge r.vpn));
  Engine.run r.engine;
  let rep = Traffic.report r.registry "voice" in
  Alcotest.(check int) "nothing lost: fallback carried the gap"
    rep.Mvpn_qos.Sla.sent rep.Mvpn_qos.Sla.received;
  Alcotest.(check bool) "fallback packets counted" true
    (cv "resilience.fallback.packets" - fb0 > 50);
  Alcotest.(check int) "restoration counted" 1
    (cv "resilience.fallback.restored" - rs0);
  check_accounting r

let test_fallback_off_drops_accounted () =
  let r = build_rig () in
  voice r ~stop:8.0;
  let pops = Backbone.pops r.bb in
  Engine.schedule_at r.engine ~time:4.0 (fun () ->
      Plane.clear_ftn (Network.plane r.net) pops.(0));
  Engine.run r.engine;
  let rep = Traffic.report r.registry "voice" in
  Alcotest.(check bool) "loss without fallback" true
    (rep.Mvpn_qos.Sla.received < rep.Mvpn_qos.Sla.sent);
  check_accounting r ~msg:"never silent"

(* --- flap damping: a storm earns at most one burst --------------------- *)

let test_flap_storm_damps () =
  let r = build_rig () in
  let bursts = ref 0 in
  let rec_t =
    Recovery.arm ~seed:5 r.net ~repair:(fun () ->
        incr bursts;
        ignore (Mpls_vpn.reconverge r.vpn);
        let down =
          List.length
            (List.filter
               (fun (l : Topology.link) ->
                  (not l.Topology.up) && l.Topology.src < l.Topology.dst)
               (Topology.links (Network.topology r.net)))
        in
        (0, down))
  in
  let damped0 = cv "resilience.recovery.damped" in
  let supp0 = cv "resilience.recovery.suppressed" in
  voice r ~stop:10.0;
  let pops = Backbone.pops r.bb in
  let topo = Network.topology r.net in
  (* Six downs in 120 ms — well past 5-in-2s — then it stays down. *)
  for i = 0 to 5 do
    let at = 5.0 +. (0.02 *. float_of_int i) in
    Engine.schedule_at r.engine ~time:at (fun () ->
        Topology.set_duplex_state topo pops.(0) pops.(1) false);
    if i < 5 then
      Engine.schedule_at r.engine ~time:(at +. 0.01) (fun () ->
          Topology.set_duplex_state topo pops.(0) pops.(1) true)
  done;
  Engine.run r.engine;
  Alcotest.(check bool) "at most one re-signal burst" true (!bursts <= 1);
  Alcotest.(check int) "link damped" 1
    (cv "resilience.recovery.damped" - damped0);
  Alcotest.(check bool) "damped query" true
    (Recovery.damped rec_t pops.(0) pops.(1));
  Alcotest.(check bool) "pending burst suppressed, not fired" true
    (cv "resilience.recovery.suppressed" - supp0 >= 1);
  Alcotest.(check int) "typed damping event" 1
    (T.Event_log.count_kind (T.Registry.events ()) "flap_damped");
  check_accounting r ~msg:"zero unaccounted drops under the storm"

(* A damped link that holds up is released and repair resumes. *)
let test_flap_release_after_hold () =
  let r = build_rig () in
  let rec_t =
    Recovery.arm ~seed:9 r.net ~repair:(fun () ->
        ignore (Mpls_vpn.reconverge r.vpn);
        (0, 0))
  in
  let rel0 = cv "resilience.recovery.released" in
  let pops = Backbone.pops r.bb in
  let topo = Network.topology r.net in
  for i = 0 to 4 do
    let at = 1.0 +. (0.02 *. float_of_int i) in
    Engine.schedule_at r.engine ~time:at (fun () ->
        Topology.set_duplex_state topo pops.(0) pops.(1) false);
    Engine.schedule_at r.engine ~time:(at +. 0.01) (fun () ->
        Topology.set_duplex_state topo pops.(0) pops.(1) true)
  done;
  Engine.run r.engine;
  Alcotest.(check bool) "released after holding up" true
    (cv "resilience.recovery.released" - rel0 >= 1);
  Alcotest.(check bool) "no longer damped" false
    (Recovery.damped rec_t pops.(0) pops.(1));
  Alcotest.(check int) "typed release event" 1
    (T.Event_log.count_kind (T.Registry.events ()) "flap_released")

(* --- chaos: same seed, same faults, same fates ------------------------- *)

let chaos_fates seed =
  Packet.reset_uid_counter ();
  let d0 = cv "net.delivered" in
  let h =
    Harness.build ~pops:6 ~vpns:1 ~sites_per_vpn:2 ~events:8 ~frr:true
      ~fallback:true ~seed ~duration:5.0 ()
  in
  Harness.run h;
  let net = Scenario.network (Harness.scenario h) in
  ( String.concat "," (List.map Chaos.fault_json (Harness.plan h)),
    cv "net.delivered" - d0,
    Harness.port_totals h,
    Network.drop_counts net )

let test_chaos_deterministic () =
  let p1, d1, t1, dr1 = chaos_fates 42 in
  let p2, d2, t2, dr2 = chaos_fates 42 in
  Alcotest.(check string) "same plan" p1 p2;
  Alcotest.(check int) "same deliveries" d1 d2;
  Alcotest.(check bool) "same port fates" true (t1 = t2);
  Alcotest.(check (list (pair string int))) "same drop table" dr1 dr2;
  let p3, _, _, _ = chaos_fates 43 in
  Alcotest.(check bool) "different seed, different plan" true (p1 <> p3)

(* --- qcheck: FRR delivery is a superset, every loss accounted ---------- *)

(* One seeded storm (link faults only), one voice stream, FRR on or
   off; packet uids align across regimes because generation is
   identical and fault verdicts are stateless hashes of uid. *)
let storm_run ~frr seed =
  Packet.reset_uid_counter ();
  let r = build_rig () in
  let f =
    if frr then Some (Frr.arm ~links:(core_directed r.bb) r.net) else None
  in
  ignore
    (Recovery.arm ~seed:((seed * 3) + 1) r.net ~repair:(fun () ->
         ignore (Mpls_vpn.reconverge r.vpn);
         (match f with Some f -> Frr.rearm f | None -> ());
         let down =
           List.length
             (List.filter
                (fun (l : Topology.link) ->
                   (not l.Topology.up) && l.Topology.src < l.Topology.dst)
                (Topology.links (Network.topology r.net)))
         in
         (0, down)));
  let plan =
    Chaos.random_plan ~events:6 ~rng:(Rng.create seed)
      ~links:(core_duplex r.bb) ~duration:6.0 ()
  in
  Chaos.schedule r.net plan;
  voice r ~stop:6.0;
  Engine.run r.engine;
  let sent = (Traffic.report r.registry "voice").Mvpn_qos.Sla.sent in
  let accounted =
    Hashtbl.length r.delivered + port_drops r + net_drops r
  in
  (r.delivered, sent, accounted)

let superset_property =
  QCheck.Test.make ~count:6 ~name:"chaos: frr delivery superset + accounted"
    QCheck.(int_range 0 1000)
    (fun seed ->
       let base, base_sent, base_acct = storm_run ~frr:false seed in
       let with_frr, frr_sent, frr_acct = storm_run ~frr:true seed in
       let subset =
         Hashtbl.fold
           (fun uid () ok -> ok && Hashtbl.mem with_frr uid)
           base true
       in
       if not subset then
         QCheck.Test.fail_report "a packet delivered without FRR was lost \
                                  with it";
       if base_sent <> base_acct || frr_sent <> frr_acct then
         QCheck.Test.fail_reportf
           "unaccounted drops: base %d/%d, frr %d/%d" base_acct base_sent
           frr_acct frr_sent;
       true)

(* --- chaos plan JSON round-trip ---------------------------------------- *)

(* Mantissa-rich floats (quotients of awkward integers) so the property
   actually exercises the lossless %.17g fallback, not just short
   decimals. *)
let fault_gen =
  let open QCheck.Gen in
  let t =
    map2
      (fun a b -> float_of_int a /. (1.0 +. float_of_int b))
      (int_range 0 100000) (int_range 0 997)
  in
  let frac = map (fun n -> float_of_int n /. 977.0) (int_range 0 977) in
  let node = int_range 0 31 in
  oneof
    [ map3
        (fun (a, b) at hold -> Chaos.Link_flap { a; b; at; hold })
        (pair node node) t t;
      map3 (fun node at hold -> Chaos.Node_down { node; at; hold }) node t t;
      map3
        (fun (a, b) at (duration, loss) ->
           Chaos.Loss_burst { a; b; at; duration; loss })
        (pair node node) t (pair t frac);
      map3
        (fun (a, b) at (duration, corrupt) ->
           Chaos.Corrupt_burst { a; b; at; duration; corrupt })
        (pair node node) t (pair t frac);
      map2 (fun node at -> Chaos.Session_drop { node; at }) node t ]

let plan_roundtrip_property =
  QCheck.Test.make ~count:200 ~name:"chaos: plan -> json -> plan is identity"
    (QCheck.make ~print:Chaos.plan_json
       QCheck.Gen.(list_size (int_range 0 10) fault_gen))
    (fun plan -> Chaos.plan_of_json (Chaos.plan_json plan) = plan)

(* A plan that went through JSON drives the exact same storm: arm the
   harness on identical scenarios with the original and the re-parsed
   plan and require byte-identical summaries, fate for fate. *)
let test_plan_replay_identity () =
  let deployment =
    Scenario.Mpls_deployment
      { policy = Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched;
        use_te = false }
  in
  let run plan_override =
    T.Registry.reset ();
    Packet.reset_uid_counter ();
    let sc = Scenario.build ~pops:6 ~vpns:1 ~sites_per_vpn:2 ~seed:5
        deployment
    in
    let h =
      Harness.arm ?plan:plan_override ~frr:true ~fallback:true ~seed:9
        ~duration:8.0 sc
    in
    Scenario.add_mixed_workload ~load:0.5 sc
      ~pairs:(Scenario.default_pairs sc) ~duration:8.0;
    Harness.run h;
    (Harness.plan h, Harness.summary_json h)
  in
  let plan, s1 = run None in
  let parsed = Chaos.plan_of_json (Chaos.plan_json plan) in
  Alcotest.(check bool) "parsed plan equals the drawn plan" true
    (parsed = plan);
  let _, s2 = run (Some parsed) in
  Alcotest.(check string) "replay of the parsed plan is byte-identical" s1 s2

(* --- invariant auditor -------------------------------------------------- *)

module Audit = Mvpn_resilience.Audit

let audit_scenario () =
  Packet.reset_uid_counter ();
  Scenario.build ~pops:6 ~vpns:1 ~sites_per_vpn:2 ~seed:3
    (Scenario.Mpls_deployment
       { policy = Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched;
         use_te = false })

(* The acceptance bug: a drop table that silently loses increments.
   [set_drop_leak] swallows the next N table bookings while the packet
   is still retired from the live count, so the conservation equation
   genuinely unbalances — and the auditor must say so. The control run
   takes the identical path with the leak disarmed and must stay
   silent. *)
let test_audit_catches_drop_leak () =
  let run ~leak =
    T.Registry.reset ();
    let sc = audit_scenario () in
    let net = Scenario.network sc in
    let eng = Scenario.engine sc in
    if leak then Network.set_drop_leak net 1;
    let a = Audit.start ~interval:1.0 ~until:6.0 sc in
    Scenario.add_mixed_workload ~load:0.4 sc
      ~pairs:(Scenario.default_pairs sc) ~duration:5.0;
    Engine.schedule eng ~delay:0.5 (fun () ->
        let site = Scenario.site sc ~vpn:1 ~idx:0 in
        let p =
          Packet.make ~vpn:1 ~now:(Engine.now eng)
            (Flow.make (Site.host site 1) (Site.host site 2))
        in
        Network.drop_packet ~packet:p net "test-intercept");
    Scenario.run sc ~duration:6.0;
    Audit.stop a;
    (Audit.violations a, Audit.recent_violations a)
  in
  let clean, _ = run ~leak:false in
  Alcotest.(check int) "clean run audits clean" 0 clean;
  let bad, recent = run ~leak:true in
  if bad = 0 then Alcotest.fail "leaked drop booking went unnoticed";
  Alcotest.(check bool) "violation names conservation" true
    (List.exists (fun (inv, _) -> inv = "conservation") recent)

(* Audited run under a seeded storm: every invariant holds end to end,
   and the audit publishes its tick/check counters. *)
let test_audit_clean_under_storm () =
  T.Registry.reset ();
  let sc = audit_scenario () in
  let h = Harness.arm ~frr:true ~fallback:true ~seed:21 ~duration:8.0 sc in
  let a =
    Audit.start ~interval:0.5 ~until:13.0 ?frr:(Harness.frr h) sc
  in
  Scenario.add_mixed_workload ~load:0.6 sc
    ~pairs:(Scenario.default_pairs sc) ~duration:8.0;
  Harness.run h;
  Alcotest.(check int) "no violations under the storm" 0
    (Audit.violations a);
  Alcotest.(check bool) "auditor actually ticked" true (Audit.ticks a > 10);
  Alcotest.(check int) "counter mirrors ticks" (Audit.ticks a)
    (cv "audit.ticks");
  Alcotest.(check int) "conservation checked every tick" (Audit.ticks a)
    (cv "audit.check.conservation")

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_audit_start_validation () =
  let sc = audit_scenario () in
  List.iter
    (fun (name, bad) ->
       expect_invalid name (fun () ->
           ignore (Audit.start ~interval:bad sc)))
    [ ("nan interval", Float.nan); ("zero interval", 0.0);
      ("negative interval", -1.0); ("infinite interval", infinity) ];
  expect_invalid "nan until" (fun () ->
      ignore (Audit.start ~until:Float.nan sc));
  expect_invalid "negative until" (fun () ->
      ignore (Audit.start ~until:(-1.0) sc));
  expect_invalid "max_hops < 1" (fun () ->
      ignore (Audit.start ~max_hops:0 sc));
  expect_invalid "heap_slack < 1" (fun () ->
      ignore (Audit.start ~heap_slack:0.5 sc))

let qt t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "resilience"
    [ ("frr",
       [ Alcotest.test_case "same-tick switchover" `Quick
           (with_telemetry test_frr_switchover) ]);
      ("fallback",
       [ Alcotest.test_case "session loss degrades and restores" `Quick
           (with_telemetry test_fallback_and_restore);
         Alcotest.test_case "fallback off still accounted" `Quick
           (with_telemetry test_fallback_off_drops_accounted) ]);
      ("recovery",
       [ Alcotest.test_case "flap storm damps" `Quick
           (with_telemetry test_flap_storm_damps);
         Alcotest.test_case "damped link released after hold" `Quick
           (with_telemetry test_flap_release_after_hold) ]);
      ("chaos",
       [ Alcotest.test_case "seeded runs deterministic" `Quick
           (with_telemetry test_chaos_deterministic);
         qt superset_property ]);
      ("plan-json",
       [ qt plan_roundtrip_property;
         Alcotest.test_case "parsed plan replays byte-identically" `Quick
           (with_telemetry test_plan_replay_identity) ]);
      ("audit",
       [ Alcotest.test_case "clean under a seeded storm" `Quick
           (with_telemetry test_audit_clean_under_storm);
         Alcotest.test_case "catches a leaky drop table" `Quick
           (with_telemetry test_audit_catches_drop_leak);
         Alcotest.test_case "start validates its knobs" `Quick
           test_audit_start_validation ]) ]
