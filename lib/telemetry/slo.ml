(* Streaming SLO engine: sliding-window conformance, error budgets and
   multi-window burn-rate alerts per (vpn, band) objective.

   Time is divided into one-second (configurable) buckets kept in a
   ring of [slow_buckets]. Each delivery/drop observation lands in the
   open bucket; when an observation (or an explicit {!advance}) moves
   time past a bucket boundary the closed bucket is evaluated: window
   statistics are recomputed, per-dimension violation state is
   re-derived (firing [Slo_violation]/[Slo_recovered] events on
   transitions) and the burn-rate alert updated ([Alert_fire] when both
   the fast and the slow window burn the error budget faster than the
   threshold, [Alert_clear] when the fast window cools down).

   A packet is "good" when it is delivered within the objective's
   latency bound; drops and late deliveries spend error budget. *)

type spec = {
  target : float;  (* required good fraction, e.g. 0.99 *)
  latency_p99 : float option;  (* seconds; also the per-packet good bound *)
  loss_ratio : float option;
  availability : float option;  (* min fraction of available seconds *)
}

let spec ?latency_p99 ?loss_ratio ?availability target =
  if target <= 0.0 || target >= 1.0 then
    invalid_arg "Slo.spec: target must be in (0, 1)";
  { target; latency_p99; loss_ratio; availability }

(* Per-bucket latency sketch: log buckets above 1 us, like {!Histogram}
   but flat ints so the whole bucket clears with one fill. *)
let lat_buckets = 40
let lat_lo = 1e-6

(* floor(log2 (v / lat_lo)), clamped: the IEEE exponent field read via
   [Int64.bits_of_float] (an unboxed external) — same result as the
   [Float.frexp] formulation but without allocating its result pair on
   every delivery. The [v < lat_lo] guard keeps the ratio normal. *)
let lat_index v =
  if v < lat_lo then 0
  else
    let e =
      Int64.to_int
        (Int64.logand
           (Int64.shift_right_logical (Int64.bits_of_float (v /. lat_lo)) 52)
           0x7FFL)
      - 1023
    in
    min (lat_buckets - 1) (max 0 e)

type bucket = {
  mutable total : int;
  mutable bad : int;
  mutable drops : int;
  mutable lat_max : float;
  lat : int array;  (* deliveries by latency bucket *)
}

let new_bucket () =
  { total = 0; bad = 0; drops = 0; lat_max = 0.0;
    lat = Array.make lat_buckets 0 }

let clear_bucket b =
  b.total <- 0;
  b.bad <- 0;
  b.drops <- 0;
  b.lat_max <- 0.0;
  Array.fill b.lat 0 lat_buckets 0

type objective = {
  vpn : int;
  band : int;
  spec : spec;
  buckets : bucket array;
  mutable cur : int;  (* absolute index of the open bucket *)
  mutable cum_total : int;
  mutable cum_bad : int;
  mutable cum_drops : int;
  (* Violation state per dimension, re-derived at every bucket close. *)
  mutable viol_latency : bool;
  mutable viol_loss : bool;
  mutable viol_avail : bool;
  mutable alerting : bool;
  (* Last evaluated window statistics, for reports. *)
  mutable last_p99 : float;
  mutable last_loss : float;
  mutable last_avail : float;
  mutable burn_fast : float;
  mutable burn_slow : float;
}

type t = {
  bucket_width : float;
  fast_n : int;
  slow_n : int;
  burn_threshold : float;
  min_samples : int;
  objectives : (int, objective) Hashtbl.t;  (* key = vpn lsl 4 lor band *)
  events : Event_log.t;
}

let m_violation = Registry.counter "slo.violation"
let m_recovered = Registry.counter "slo.recovered"
let m_alert_fire = Registry.counter "slo.alert_fire"
let m_alert_clear = Registry.counter "slo.alert_clear"

let create ?(bucket_width = 1.0) ?(fast_buckets = 5) ?(slow_buckets = 60)
    ?(burn_threshold = 2.0) ?(min_samples = 5) ?events () =
  if bucket_width <= 0.0 then
    invalid_arg "Slo.create: bucket_width must be positive";
  if fast_buckets < 1 || slow_buckets < fast_buckets then
    invalid_arg "Slo.create: need 1 <= fast_buckets <= slow_buckets";
  let events =
    match events with Some e -> e | None -> Registry.events ()
  in
  { bucket_width; fast_n = fast_buckets; slow_n = slow_buckets;
    burn_threshold; min_samples; objectives = Hashtbl.create 16; events }

let key ~vpn ~band = (vpn lsl 4) lor (band land 0xF)

let declare t ~vpn ~band spec =
  let k = key ~vpn ~band in
  if not (Hashtbl.mem t.objectives k) then
    Hashtbl.add t.objectives k
      { vpn; band; spec;
        buckets = Array.init t.slow_n (fun _ -> new_bucket ());
        cur = 0; cum_total = 0; cum_bad = 0; cum_drops = 0;
        viol_latency = false; viol_loss = false; viol_avail = false;
        alerting = false; last_p99 = 0.0; last_loss = 0.0;
        last_avail = 1.0; burn_fast = 0.0; burn_slow = 0.0 }

(* --- window evaluation ------------------------------------------------- *)

(* Sum the last [k] buckets ending at absolute index [upto]
   (inclusive); valid for k <= slow_n since older slots have been
   recycled. *)
let window_fold t obj ~upto ~k f init =
  let acc = ref init in
  for b = max 0 (upto - k + 1) to upto do
    acc := f !acc obj.buckets.(b mod t.slow_n)
  done;
  !acc

let window_p99 t obj ~upto ~k =
  let merged = Array.make lat_buckets 0 in
  let n, vmax =
    window_fold t obj ~upto ~k
      (fun (n, vmax) b ->
         Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) b.lat;
         (n + b.total - b.drops, Float.max vmax b.lat_max))
      (0, 0.0)
  in
  if n = 0 then (0, 0.0)
  else begin
    let target = Stdlib.max 1 (int_of_float (ceil (0.99 *. float_of_int n))) in
    let rec walk i cum =
      if i >= lat_buckets then vmax
      else begin
        let cum' = cum + merged.(i) in
        if cum' >= target && merged.(i) > 0 then
          Float.min vmax (lat_lo *. Float.pow 2.0 (float_of_int (i + 1)))
        else walk (i + 1) cum'
      end
    in
    (n, walk 0 0)
  end

let burn_of ~target ~bad ~total =
  if total = 0 then 0.0
  else
    let frac = float_of_int bad /. float_of_int total in
    frac /. Float.max (1.0 -. target) 1e-9

let transition t obj ~time ~dimension ~value ~bound ~was ~now =
  (match (was, now) with
   | false, true ->
     Counter.incr m_violation;
     Event_log.record t.events ~time
       (Event_log.Slo_violation
          { vpn = obj.vpn; band = obj.band; dimension; value; bound })
   | true, false ->
     Counter.incr m_recovered;
     Event_log.record t.events ~time
       (Event_log.Slo_recovered
          { vpn = obj.vpn; band = obj.band; dimension; value; bound })
   | _ -> ());
  now

(* Evaluate objective state as of the close of absolute bucket
   [closing] (windows end at that bucket). *)
let evaluate t obj ~closing =
  let bucket_end = float_of_int (closing + 1) *. t.bucket_width in
  let fast_bad, fast_total =
    window_fold t obj ~upto:closing ~k:t.fast_n
      (fun (b, n) bk -> (b + bk.bad, n + bk.total))
      (0, 0)
  in
  let slow_bad, slow_total =
    window_fold t obj ~upto:closing ~k:t.slow_n
      (fun (b, n) bk -> (b + bk.bad, n + bk.total))
      (0, 0)
  in
  obj.burn_fast <- burn_of ~target:obj.spec.target ~bad:fast_bad ~total:fast_total;
  obj.burn_slow <- burn_of ~target:obj.spec.target ~bad:slow_bad ~total:slow_total;
  (* latency p99 over the fast window *)
  (match obj.spec.latency_p99 with
   | None -> ()
   | Some bound ->
     let n, p99 = window_p99 t obj ~upto:closing ~k:t.fast_n in
     if n >= t.min_samples then begin
       obj.last_p99 <- p99;
       obj.viol_latency <-
         transition t obj ~time:bucket_end ~dimension:"latency_p99"
           ~value:p99 ~bound ~was:obj.viol_latency ~now:(p99 > bound)
     end
     else if n = 0 && obj.viol_latency then
       (* No traffic in the window: latency conformance is moot. *)
       obj.viol_latency <-
         transition t obj ~time:bucket_end ~dimension:"latency_p99"
           ~value:0.0 ~bound ~was:true ~now:false);
  (* loss ratio over the fast window *)
  (match obj.spec.loss_ratio with
   | None -> ()
   | Some bound ->
     let drops, total =
       window_fold t obj ~upto:closing ~k:t.fast_n
         (fun (d, n) bk -> (d + bk.drops, n + bk.total))
         (0, 0)
     in
     if total >= t.min_samples then begin
       let ratio = float_of_int drops /. float_of_int total in
       obj.last_loss <- ratio;
       obj.viol_loss <-
         transition t obj ~time:bucket_end ~dimension:"loss" ~value:ratio
           ~bound ~was:obj.viol_loss ~now:(ratio > bound)
     end
     else if total = 0 && obj.viol_loss then
       obj.viol_loss <-
         transition t obj ~time:bucket_end ~dimension:"loss" ~value:0.0
           ~bound ~was:true ~now:false);
  (* availability over the slow window: a second with traffic counts as
     down when every packet in it was dropped *)
  (match obj.spec.availability with
   | None -> ()
   | Some bound ->
     let down, with_traffic =
       window_fold t obj ~upto:closing ~k:t.slow_n
         (fun (d, n) bk ->
            if bk.total = 0 then (d, n)
            else ((if bk.drops = bk.total then d + 1 else d), n + 1))
         (0, 0)
     in
     if with_traffic > 0 then begin
       let avail =
         1.0 -. (float_of_int down /. float_of_int with_traffic)
       in
       obj.last_avail <- avail;
       obj.viol_avail <-
         transition t obj ~time:bucket_end ~dimension:"availability"
           ~value:avail ~bound ~was:obj.viol_avail ~now:(avail < bound)
     end);
  (* multi-window burn-rate alert *)
  if (not obj.alerting)
  && obj.burn_fast >= t.burn_threshold
  && obj.burn_slow >= t.burn_threshold
  then begin
    obj.alerting <- true;
    Counter.incr m_alert_fire;
    Event_log.record t.events ~time:bucket_end
      (Event_log.Alert_fire
         { vpn = obj.vpn; band = obj.band; burn_fast = obj.burn_fast;
           burn_slow = obj.burn_slow })
  end
  else if obj.alerting && obj.burn_fast < t.burn_threshold then begin
    obj.alerting <- false;
    Counter.incr m_alert_clear;
    Event_log.record t.events ~time:bucket_end
      (Event_log.Alert_clear
         { vpn = obj.vpn; band = obj.band; burn_fast = obj.burn_fast })
  end

let advance_obj t obj ~target_bucket =
  if target_bucket > obj.cur then begin
    (* A jump past the whole ring leaves only empty history; evaluate
       the transition once from just before the gap's end rather than
       spinning through millions of identical empty closes. *)
    if target_bucket - obj.cur > t.slow_n then begin
      Array.iter clear_bucket obj.buckets;
      obj.cur <- target_bucket - t.slow_n
    end;
    while obj.cur < target_bucket do
      evaluate t obj ~closing:obj.cur;
      obj.cur <- obj.cur + 1;
      clear_bucket obj.buckets.(obj.cur mod t.slow_n)
    done
  end

let bucket_of t time = int_of_float (time /. t.bucket_width)

let advance t ~time =
  if !Control.enabled then
    let target_bucket = bucket_of t time in
    Hashtbl.iter (fun _ obj -> advance_obj t obj ~target_bucket)
      t.objectives

let find t ~vpn ~band = Hashtbl.find_opt t.objectives (key ~vpn ~band)

let observe_with t ~vpn ~band ~time f =
  match find t ~vpn ~band with
  | None -> ()
  | Some obj ->
    advance_obj t obj ~target_bucket:(bucket_of t time);
    let bk = obj.buckets.(obj.cur mod t.slow_n) in
    f obj bk

let observe_delivery t ~vpn ~band ~time ~latency =
  if !Control.enabled then
    observe_with t ~vpn ~band ~time (fun obj bk ->
        bk.total <- bk.total + 1;
        let li = lat_index latency in
        bk.lat.(li) <- bk.lat.(li) + 1;
        if latency > bk.lat_max then bk.lat_max <- latency;
        obj.cum_total <- obj.cum_total + 1;
        let late =
          match obj.spec.latency_p99 with
          | Some bound -> latency > bound
          | None -> false
        in
        if late then begin
          bk.bad <- bk.bad + 1;
          obj.cum_bad <- obj.cum_bad + 1
        end)

let observe_drop t ~vpn ~band ~time =
  if !Control.enabled then
    observe_with t ~vpn ~band ~time (fun obj bk ->
        bk.total <- bk.total + 1;
        bk.bad <- bk.bad + 1;
        bk.drops <- bk.drops + 1;
        obj.cum_total <- obj.cum_total + 1;
        obj.cum_bad <- obj.cum_bad + 1;
        obj.cum_drops <- obj.cum_drops + 1)

(* --- reporting --------------------------------------------------------- *)

type report = {
  vpn : int;
  band : int;
  target : float;
  total : int;
  bad : int;
  drops : int;
  budget_allowed : float;
  budget_spent : float;
  budget_remaining : float;  (* fraction of the budget left, <= 1 *)
  latency_p99 : float;
  loss_ratio : float;
  availability : float;
  burn_fast : float;
  burn_slow : float;
  violations : string list;
  alerting : bool;
  in_budget : bool;
}

let report_of obj =
  let allowed = (1.0 -. obj.spec.target) *. float_of_int obj.cum_total in
  let spent = float_of_int obj.cum_bad in
  let remaining =
    if allowed <= 0.0 then (if obj.cum_bad = 0 then 1.0 else 0.0)
    else Float.max 0.0 (1.0 -. (spent /. allowed))
  in
  let violations =
    List.filter_map
      (fun (flag, name) -> if flag then Some name else None)
      [ (obj.viol_latency, "latency_p99"); (obj.viol_loss, "loss");
        (obj.viol_avail, "availability") ]
  in
  { vpn = obj.vpn; band = obj.band; target = obj.spec.target;
    total = obj.cum_total; bad = obj.cum_bad; drops = obj.cum_drops;
    budget_allowed = allowed; budget_spent = spent;
    budget_remaining = remaining; latency_p99 = obj.last_p99;
    loss_ratio = obj.last_loss; availability = obj.last_avail;
    burn_fast = obj.burn_fast; burn_slow = obj.burn_slow; violations;
    alerting = obj.alerting;
    in_budget = spent <= allowed || obj.cum_total = 0 }

let reports t =
  Hashtbl.fold (fun _ obj acc -> report_of obj :: acc) t.objectives []
  |> List.sort (fun a b -> compare (a.vpn, a.band) (b.vpn, b.band))

let in_budget t =
  List.for_all (fun r -> r.in_budget) (reports t)

let violation_count t =
  Event_log.count_kind t.events "slo_violation"

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v else "0"

let report_to_json r =
  Printf.sprintf
    "{\"vpn\":%d,\"band\":%d,\"target\":%s,\"total\":%d,\"bad\":%d,\
     \"drops\":%d,\"budget_allowed\":%s,\"budget_spent\":%s,\
     \"budget_remaining\":%s,\"latency_p99\":%s,\"loss_ratio\":%s,\
     \"availability\":%s,\"burn_fast\":%s,\"burn_slow\":%s,\
     \"violations\":[%s],\"alerting\":%b,\"in_budget\":%b}"
    r.vpn r.band (json_float r.target) r.total r.bad r.drops
    (json_float r.budget_allowed) (json_float r.budget_spent)
    (json_float r.budget_remaining) (json_float r.latency_p99)
    (json_float r.loss_ratio) (json_float r.availability)
    (json_float r.burn_fast) (json_float r.burn_slow)
    (String.concat "," (List.map (Printf.sprintf "\"%s\"") r.violations))
    r.alerting r.in_budget

let to_json t =
  "[" ^ String.concat "," (List.map report_to_json (reports t)) ^ "]"

let publish_gauges ?(prefix = "slo") t =
  List.iter
    (fun r ->
       let g suffix v =
         Gauge.set
           (Registry.gauge
              (Printf.sprintf "%s.vpn%d.band%d.%s" prefix r.vpn r.band
                 suffix))
           v
       in
       g "budget_remaining" r.budget_remaining;
       g "burn_fast" r.burn_fast;
       g "burn_slow" r.burn_slow;
       g "in_budget" (if r.in_budget then 1.0 else 0.0))
    (reports t)

let pp ppf t =
  List.iter
    (fun r ->
       Format.fprintf ppf
         "vpn=%d band=%d target=%.3g total=%d bad=%d drops=%d \
          budget=%.1f%% burn=%.2g/%.2g%s%s@."
         r.vpn r.band r.target r.total r.bad r.drops
         (100.0 *. r.budget_remaining) r.burn_fast r.burn_slow
         (if r.violations = [] then ""
          else " VIOLATED:" ^ String.concat "," r.violations)
         (if r.alerting then " ALERTING" else ""))
    (reports t)
