(** Streaming runtime invariant auditor.

    A cheap self-rescheduling engine event (the {!Mvpn_core.Sampler}
    pattern): every [interval] sim-seconds it re-proves the properties
    the paper's steady-state QoS claims rest on, while the run — hours
    of simulated chaos, sequential or sharded — is still going:

    - {b conservation}: [injected + imported + forked = delivered +
      table drops + port drops + exported + consumed + live], from
      {!Mvpn_core.Network.flow_totals}. The live count is maintained
      independently of the fate counters (a per-packet [fated] flag),
      so a lost or double-counted fate unbalances the books instead of
      cancelling — the deliberately injected
      {!Mvpn_core.Network.set_drop_leak} bug is caught this way.
    - {b pool}: with pooling on (main domain, no cross-shard traffic),
      [Packet.allocated - live - pool_size] — records neither
      circulating nor retired — must stay constant: a leak witness.
    - {b loops}: no packet incarnation appears as ["rx"] in the
      hop-trace ring more than [max_hops] times (default 2 x TTL).
    - {b frr}: the protection superset (protected + unprotected armed
      links) never changes, and the switchover counter only grows.
    - {b slo}: cumulative per-(vpn, band) [budget_spent] of the
      network-attached SLO engine is non-decreasing — error budget is
      spent, never refunded.
    - {b queues}: per-band cumulative counters only grow and implied
      standing depth is never negative, over every port.
    - {b heap}: the live major heap stays within [heap_slack] x an
      early-tick baseline (plus a fixed allowance) — bounded residency
      over long horizons.

    Each tick counts [audit.ticks] and one [audit.check.<name>] per
    check that ran; each violation counts [audit.violations] and
    [audit.violation.<name>], emits a typed
    {!Mvpn_telemetry.Event_log.Invariant_violated} event, and — with
    [fail_fast] — raises {!Violation}. Counter and event writes follow
    {!Mvpn_telemetry.Control} like all telemetry; the in-record
    {!ticks}/{!violations} accessors are always live.

    Scope: the conservation books cover unicast and PE-replicated
    (ingress multicast) traffic through the MPLS data plane — every
    audited scenario here. The overlay deployment's replay paths
    re-inject retained packets outside the ledger and are not audited.
    Checks read plain fields and bounded rings, so the audited rate
    stays within a few percent of baseline (E18 gates >= 0.95x). *)

type t

exception Violation of string * string
(** [(invariant, detail)] — raised on violation only under
    [fail_fast]. *)

val default_interval : float
(** 1.0 sim-second. *)

val default_max_hops : int
(** [2 x Packet.default_ttl]. *)

val start :
  ?interval:float ->
  ?until:float ->
  ?fail_fast:bool ->
  ?max_hops:int ->
  ?heap_slack:float ->
  ?frr:Frr.t ->
  Mvpn_core.Scenario.t ->
  t
(** Schedule the first tick at [interval]; each tick re-schedules the
    next until [until] (default unbounded) or {!stop}. Arm before the
    run starts, after any {!Harness.arm} (pass its {!Harness.frr}
    handle to audit protection coverage). The SLO check reads whatever
    engine is attached to the network at each tick.
    @raise Invalid_argument on a non-finite or non-positive interval,
    a negative/NaN [until], [max_hops < 1] or [heap_slack < 1]. *)

val stop : t -> unit

val ticks : t -> int

val violations : t -> int

val recent_violations : t -> (string * string) list
(** Most recent violations, oldest first, capped at 16. *)
