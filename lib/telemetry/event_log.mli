(** Bounded ring of typed, timestamped operational events.

    Where the registry's counters say {e how much}, the event log says
    {e what happened and when}: SLO violations and recoveries, alert
    transitions, link failures/repairs, dataplane recompiles. The ring
    keeps the most recent [capacity] entries; recording is a no-op
    while {!Control} is disabled. Producers that do not own an engine
    handle (topology, dataplane) rely on the pluggable clock set by
    whoever does — see {!set_clock}. *)

type event =
  | Slo_violation of {
      vpn : int;
      band : int;
      dimension : string;  (** ["latency_p99"], ["loss"], ["availability"] *)
      value : float;
      bound : float;
    }
  | Slo_recovered of {
      vpn : int;
      band : int;
      dimension : string;
      value : float;
      bound : float;
    }
  | Alert_fire of { vpn : int; band : int; burn_fast : float; burn_slow : float }
  | Alert_clear of { vpn : int; band : int; burn_fast : float }
  | Link_down of { src : int; dst : int }
  | Link_up of { src : int; dst : int }
  | Recompile of { node : int }
  | Fault_injected of { fault : string; a : int; b : int; param : float }
      (** chaos-engine injection; [fault] is the fault kind
          (["link_flap"], ["node_down"], ["loss_burst"],
          ["corrupt_burst"], ["session_drop"]), [a]/[b] the nodes (or
          link endpoints) involved, [param] the hold time, duration or
          probability of the fault. *)
  | Frr_switchover of { src : int; dst : int }
      (** first packet deflected onto the facility bypass protecting
          the src→dst link in this failure episode *)
  | Fallback_engaged of { ingress : int; egress : int }
      (** the ingress PE started tunnelling this PE-pair's traffic as
          best-effort MPLS-in-IP because the label path is gone *)
  | Lsp_restored of { ingress : int; egress : int }
      (** make-before-break: the PE-pair's traffic returned to a
          re-signalled LSP after a fallback episode *)
  | Flap_damped of { src : int; dst : int; flaps : int }
      (** the link flapped more than the damping threshold inside the
          window; re-signalling on its account is suppressed *)
  | Flap_released of { src : int; dst : int }
      (** a damped link held up long enough; suppression lifted *)
  | Resignal of { attempt : int; restored : int; still_down : int }
      (** one control-plane recovery burst (backoff attempt number,
          tunnels restored, tunnels still down) *)
  | Invariant_violated of { invariant : string; detail : string }
      (** the runtime auditor caught a broken invariant ([invariant]
          names the check, e.g. ["conservation"]; [detail] carries the
          numbers that disagreed) *)
  | Note of string

type entry = { seq : int; time : float; event : event }
(** [seq] is the total-order position (monotonic even after the ring
    wraps); [time] is simulation time. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 1024 entries.
    @raise Invalid_argument if [capacity < 1]. *)

val set_clock : t -> (unit -> float) -> unit
(** Source of default timestamps for {!record} calls that omit [?time].
    Starts as [fun () -> 0.0]; {!Mvpn_core.Network.create} points it at
    its engine's [now]. *)

val capacity : t -> int

val recorded : t -> int
(** Total entries ever recorded (>= live entries once wrapped). *)

val record : t -> ?time:float -> event -> unit
(** Append an entry, overwriting the oldest once full. [?time] defaults
    to the clock set by {!set_clock}. No-op while {!Control} is
    disabled. *)

val entries : t -> entry list
(** Live entries, oldest first. *)

val recent : t -> int -> entry list
(** The last [n] entries, oldest first. *)

val fold : ('a -> entry -> 'a) -> t -> 'a -> 'a

val kind : event -> string
(** Stable snake_case tag, e.g. ["slo_violation"] — also the JSON
    ["kind"] field. *)

val count_kind : t -> string -> int
(** Live entries whose {!kind} matches. *)

val clear : t -> unit

val entry_to_json : entry -> string

val json_entries : ?limit:int -> t -> string
(** JSON array of live entries (last [limit] when given). *)

val pp_event : Format.formatter -> event -> unit

val pp_entry : Format.formatter -> entry -> unit
