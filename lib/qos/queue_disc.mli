(** Queue disciplines for an egress port: the per-hop behaviours.

    A discipline owns one packet queue ("band") per traffic class and a
    scheduler that picks which band sends next. The schedulers offered
    are the ones the DiffServ+MPLS architecture needs:

    - {b Strict priority}: the EF per-hop behaviour — lowest band index
      always wins; a congested low band starves (the ablation point).
    - {b WRR / DRR}: weighted sharing by packet count or by bytes
      (deficit round robin) — the AF classes.
    - {b WFQ}: start-time fair queueing with weighted virtual finish
      tags — the "granular SLA" scheduler of §3.1.

    Bands optionally run RED/WRED: the drop probability ramps with the
    EWMA of the backlog, with per-drop-precedence thresholds so that
    out-of-profile (remarked) packets die first. *)

type sched =
  | Strict
  | Wrr of int array  (** packets per round, one weight per band *)
  | Drr of int array  (** quantum in bytes per band *)
  | Wfq of float array  (** rate weights per band *)

type red_params = {
  ewma_weight : float;  (** averaging weight for the queue estimate *)
  thresholds : (float * float * float) array;
      (** per drop precedence 1..3: min threshold (bytes), max threshold
          (bytes), max drop probability *)
}

val default_wred : avg_capacity:float -> red_params
(** Conventional WRED tuning: precedence 1 protected up to 50–90% of
    [avg_capacity], precedence 2 up to 30–70%, precedence 3 up to
    20–50%. *)

type band_cfg = { capacity_bytes : int; red : red_params option }

val plain_band : int -> band_cfg
(** A tail-drop band with the given byte capacity. *)

type drop_reason = Tail_drop | Red_drop

type t

val create : ?rng:Mvpn_sim.Rng.t -> sched:sched -> band_cfg array -> t
(** @raise Invalid_argument on zero bands, a scheduler weight array of
    the wrong length, or non-positive weights/quanta. [rng] drives RED's
    probabilistic drops (defaults to a fixed-seed generator). *)

val fifo : capacity_bytes:int -> t
(** Single tail-drop band — the best-effort router. *)

val band_count : t -> int

val enqueue : t -> cls:int -> Mvpn_net.Packet.t -> (unit, drop_reason) result
(** Queue a packet on band [cls] (clamped to the last band). *)

val dequeue : t -> Mvpn_net.Packet.t option
(** Next packet per the scheduler; [None] when all bands are empty. *)

val dequeue_null : t -> Mvpn_net.Packet.t
(** [dequeue] without the option box: returns {!Mvpn_net.Packet.null}
    (compare with [==]) when all bands are empty. The port service
    loop calls this once per transmitted packet. *)

val is_empty : t -> bool

val backlog_bytes : t -> int
val backlog_packets : t -> int

type band_stats = {
  enqueued : int;
  dequeued : int;
  tail_dropped : int;
  red_dropped : int;
  bytes_sent : int;
}

val stats : t -> band_stats array
(** Per-band counters since creation. *)
