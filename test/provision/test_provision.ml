open Mvpn_provision
module Mpbgp = Mvpn_routing.Mpbgp
module Membership = Mvpn_core.Membership
module Mpls_vpn = Mvpn_core.Mpls_vpn

let gsid ~customer ~sid = Service.global_site_id ~customer ~sid

let site sid pe role = { Service.sid; pe; role }

let cust id topology tier sites =
  { Service.id; name = Printf.sprintf "c%d" id; topology; tier; sites }

let table_sites t ~pe ~customer ~role =
  List.sort compare
    (List.map
       (fun (r : Mpbgp.vpnv4_route) -> r.Mpbgp.site)
       (Compile.vrf_table t ~pe ~customer ~role))

(* --- Service.Pool -------------------------------------------------------- *)

let test_pool_idempotent_and_distinct () =
  let p = Service.Pool.create () in
  let rd1 = Service.Pool.rd p ~customer:1 in
  Alcotest.(check bool) "rd memoized" true (rd1 = Service.Pool.rd p ~customer:1);
  let rts =
    [ Service.Pool.rt_any p ~customer:1; Service.Pool.rt_hub p ~customer:1;
      Service.Pool.rt_spoke p ~customer:1; Service.Pool.rt_any p ~customer:2;
      Service.Pool.rt_extranet p ~group:3 ]
  in
  let values =
    List.sort_uniq compare (List.map (fun r -> r.Mpbgp.rt_value) rts)
  in
  Alcotest.(check int) "all RT values distinct" (List.length rts)
    (List.length values);
  Alcotest.(check bool) "extranet RT shared" true
    (Service.Pool.rt_extranet p ~group:3
     = Service.Pool.rt_extranet p ~group:3);
  Alcotest.(check int) "rd ledger" 1 (Service.Pool.rds_allocated p);
  Alcotest.(check int) "rt ledger" 5 (Service.Pool.rts_allocated p)

let test_pure_identifiers () =
  let g = gsid ~customer:3 ~sid:7 in
  Alcotest.(check int) "global site id" ((3 lsl 16) lor 7) g;
  Alcotest.(check int) "label is a pure function" (16 + g)
    (Service.vpn_label_of_site g)

(* --- generator determinism (Rng.split substream hygiene) ----------------- *)

let test_generator_order_independence () =
  let p = Portfolio.generate ~pe_count:8 ~seed:42 ~customers:20 () in
  (* Regenerating each customer alone, in reverse order, must reproduce
     the portfolio byte for byte: customer [id] depends only on
     (seed, id), never on who was generated before it. *)
  List.iter
    (fun id ->
       let c =
         Portfolio.generate_customer ~pe_count:8 ~seed:42 ~id ()
       in
       Alcotest.(check bool)
         (Printf.sprintf "customer %d reproducible out of order" id)
         true
         (c = p.Portfolio.customers.(id - 1)))
    (List.rev (List.init 20 (fun i -> i + 1)));
  let p' = Portfolio.generate ~pe_count:8 ~seed:42 ~customers:20 () in
  Alcotest.(check bool) "portfolio replay identical" true
    (p.Portfolio.customers = p'.Portfolio.customers)

let test_churn_replay_deterministic () =
  let p = Portfolio.generate ~pe_count:6 ~seed:7 ~customers:12 () in
  let ops1 = Portfolio.churn p ~seed:99 ~ops:40 in
  let ops2 = Portfolio.churn p ~seed:99 ~ops:40 in
  Alcotest.(check bool) "same ops" true (ops1 = ops2);
  let ops3 = Portfolio.churn p ~seed:100 ~ops:40 in
  Alcotest.(check bool) "different seed diverges" true (ops1 <> ops3)

(* --- topology-class semantics -------------------------------------------- *)

let test_hub_spoke_tables () =
  let c =
    cust 1 Service.Hub_spoke Service.Gold
      [ site 0 0 Service.Hub; site 1 1 Service.Spoke; site 2 2 Service.Spoke;
        site 3 1 Service.Spoke ]
  in
  let p = Portfolio.of_customers ~pe_count:3 ~seed:0 [ c ] in
  let t = Compile.compile p in
  let hub = gsid ~customer:1 ~sid:0 in
  (* Spokes see only the hub; spoke-to-spoke reachability must transit
     it. The hub sees every spoke. *)
  Alcotest.(check (list int)) "spoke VRF on pe1" [ hub ]
    (table_sites t ~pe:1 ~customer:1 ~role:Service.Spoke);
  Alcotest.(check (list int)) "spoke VRF on pe2" [ hub ]
    (table_sites t ~pe:2 ~customer:1 ~role:Service.Spoke);
  Alcotest.(check (list int)) "hub VRF sees all spokes"
    [ gsid ~customer:1 ~sid:1; gsid ~customer:1 ~sid:2;
      gsid ~customer:1 ~sid:3 ]
    (table_sites t ~pe:0 ~customer:1 ~role:Service.Hub)

let test_any_to_any_tables () =
  let c =
    cust 1 Service.Any_to_any Service.Silver
      [ site 0 0 Service.Spoke; site 1 1 Service.Spoke;
        site 2 2 Service.Spoke ]
  in
  let p = Portfolio.of_customers ~pe_count:3 ~seed:0 [ c ] in
  let t = Compile.compile p in
  (* Every VRF sees every remote site of its own VPN — and not its own
     locals, whose next hop is the VRF's PE. *)
  Alcotest.(check (list int)) "pe0 sees 1 and 2"
    [ gsid ~customer:1 ~sid:1; gsid ~customer:1 ~sid:2 ]
    (table_sites t ~pe:0 ~customer:1 ~role:Service.Spoke);
  Alcotest.(check (list int)) "pe2 sees 0 and 1"
    [ gsid ~customer:1 ~sid:0; gsid ~customer:1 ~sid:1 ]
    (table_sites t ~pe:2 ~customer:1 ~role:Service.Spoke)

let test_extranet_cross_customer_visibility () =
  let partners g =
    [ cust 1 (Service.Extranet g) Service.Gold
        [ site 0 0 Service.Spoke; site 1 1 Service.Spoke ];
      cust 2 (Service.Extranet g) Service.Bronze [ site 0 2 Service.Spoke ];
      cust 3 Service.Any_to_any Service.Silver
        [ site 0 0 Service.Spoke; site 1 2 Service.Spoke ] ]
  in
  let p = Portfolio.of_customers ~pe_count:3 ~seed:0 (partners 5) in
  let t = Compile.compile p in
  (* Extranet partners reach each other across customer boundaries... *)
  Alcotest.(check (list int)) "c1 pe0 sees its own remote and c2"
    [ gsid ~customer:1 ~sid:1; gsid ~customer:2 ~sid:0 ]
    (table_sites t ~pe:0 ~customer:1 ~role:Service.Spoke);
  Alcotest.(check (list int)) "c2 sees both c1 sites"
    [ gsid ~customer:1 ~sid:0; gsid ~customer:1 ~sid:1 ]
    (table_sites t ~pe:2 ~customer:2 ~role:Service.Spoke);
  (* ...while the plain any-to-any bystander is isolated from them. *)
  Alcotest.(check (list int)) "c3 sees only c3"
    [ gsid ~customer:3 ~sid:1 ]
    (table_sites t ~pe:0 ~customer:3 ~role:Service.Spoke)

let test_qos_policy_follows_tier () =
  let p =
    Portfolio.of_customers ~pe_count:2 ~seed:0
      [ cust 1 Service.Any_to_any Service.Gold [ site 0 0 Service.Spoke ];
        cust 2 Service.Any_to_any Service.Bronze [ site 0 1 Service.Spoke ] ]
  in
  let t = Compile.compile p in
  let band c = fst (Compile.qos_policy t ~customer:c) in
  Alcotest.(check int) "gold rides band 0" 0 (band 1);
  Alcotest.(check int) "bronze rides band 2" 2 (band 2);
  ignore (Delta.apply t (Portfolio.Change_tier { customer = 2; tier = Service.Gold }));
  Alcotest.(check int) "retier flips the band" 0 (band 2)

(* --- incremental vs oracle ----------------------------------------------- *)

let test_delta_converges_to_oracle () =
  let p = Portfolio.generate ~pe_count:6 ~seed:21 ~customers:40 () in
  let t = Compile.compile p in
  let ops = Portfolio.churn p ~seed:22 ~ops:60 in
  let st = Delta.apply_all t ops in
  Alcotest.(check int) "op count" 60 st.Delta.ops;
  let oracle = Delta.oracle p ops in
  Alcotest.(check bool) "fingerprints converge" true (Delta.validate t oracle);
  Alcotest.(check string) "fingerprint is the canonical digest"
    (Compile.fingerprint oracle) (Compile.fingerprint t)

let test_delta_converges_under_route_reflector () =
  let p = Portfolio.generate ~pe_count:5 ~seed:31 ~customers:25 () in
  let mode = Mpbgp.Route_reflector 0 in
  let t = Compile.compile ~mode p in
  let ops = Portfolio.churn p ~seed:32 ~ops:40 in
  ignore (Delta.apply_all t ops);
  Alcotest.(check bool) "RR mode converges too" true
    (Delta.validate t (Delta.oracle ~mode p ops))

let prop_random_interleavings_converge =
  QCheck.Test.make ~name:"random delta interleavings converge to the oracle"
    ~count:40
    QCheck.(triple (int_range 1 8) (int_range 0 25) small_int)
    (fun (customers, ops, seed) ->
       let p =
         Portfolio.generate ~dist:Portfolio.Uniform ~pe_count:4 ~seed
           ~customers ()
       in
       let t = Compile.compile p in
       let ops = Portfolio.churn p ~seed:(seed + 1000) ~ops in
       ignore (Delta.apply_all t ops);
       Delta.validate t (Delta.oracle p ops))

(* --- state accounting ----------------------------------------------------- *)

let test_metrics_accounting () =
  let p = Portfolio.generate ~pe_count:6 ~seed:4 ~customers:30 () in
  let t = Compile.compile p in
  let m = Compile.metrics t in
  Alcotest.(check int) "one route per site" m.Compile.sites m.Compile.routes;
  Alcotest.(check int) "per-PE sites sum to the portfolio"
    m.Compile.sites
    (Array.fold_left (fun a (s, _) -> a + s) 0 (Compile.per_pe t));
  Alcotest.(check bool) "sharing never exceeds the logical view" true
    (m.Compile.shared_entries <= m.Compile.table_entries);
  Alcotest.(check int) "customers per band sum up"
    m.Compile.customers
    (Array.fold_left ( + ) 0 m.Compile.bands)

let test_materialize_agrees_with_compile () =
  (* Mpls_vpn provisions one any-to-any RT per VPN, so the deployable
     reference and the design compiler must count the same state on an
     any-to-any-only portfolio. *)
  let customers =
    List.init 5 (fun i ->
        cust (i + 1) Service.Any_to_any Service.Silver
          (List.init (2 + i) (fun sid -> site sid (sid mod 4) Service.Spoke)))
  in
  let p = Portfolio.of_customers ~pe_count:4 ~seed:0 customers in
  let t = Compile.compile p in
  let m = Compile.metrics t in
  let d = Compile.materialize p in
  let dm = Mpls_vpn.metrics d.Compile.mpls in
  Alcotest.(check int) "same sites" m.Compile.sites dm.Mpls_vpn.sites;
  Alcotest.(check int) "same VPNv4 announcements" m.Compile.routes
    dm.Mpls_vpn.vpnv4_routes;
  Alcotest.(check int) "same VRF count" m.Compile.vrfs dm.Mpls_vpn.vrf_count

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "provision"
    [ ("service",
       [ Alcotest.test_case "pool idempotent, distinct" `Quick
           test_pool_idempotent_and_distinct;
         Alcotest.test_case "pure identifiers" `Quick test_pure_identifiers ]);
      ("portfolio",
       [ Alcotest.test_case "generator order independence" `Quick
           test_generator_order_independence;
         Alcotest.test_case "churn replay deterministic" `Quick
           test_churn_replay_deterministic ]);
      ("compile",
       [ Alcotest.test_case "hub-spoke tables" `Quick test_hub_spoke_tables;
         Alcotest.test_case "any-to-any tables" `Quick
           test_any_to_any_tables;
         Alcotest.test_case "extranet visibility" `Quick
           test_extranet_cross_customer_visibility;
         Alcotest.test_case "qos policy follows tier" `Quick
           test_qos_policy_follows_tier;
         Alcotest.test_case "metrics accounting" `Quick
           test_metrics_accounting;
         Alcotest.test_case "materialize agreement" `Quick
           test_materialize_agrees_with_compile ]);
      ("delta",
       [ Alcotest.test_case "converges to oracle" `Quick
           test_delta_converges_to_oracle;
         Alcotest.test_case "converges under RR" `Quick
           test_delta_converges_under_route_reflector;
         qt prop_random_interleavings_converge ]) ]
