lib/frelay/pvc.mli: Frame
