examples/quickstart.ml: Backbone Format Mpls_vpn Mvpn_core Mvpn_net Mvpn_qos Mvpn_sim Network Printf Qos_mapping Site Traffic
