lib/core/scenario.mli: Backbone Mpls_vpn Mvpn_ipsec Mvpn_net Mvpn_qos Mvpn_sim Network Overlay Qos_mapping Site Traffic
