lib/atm/cell.mli: Format
