(** Measurement plane: running moments, exact percentiles, histograms
    and time series.

    The SLA compliance machinery (delay bounds, jitter, loss ratios) is
    built on these; they never influence forwarding. *)

(** Running mean/variance in one pass (Welford's algorithm), with min
    and max. Constant space — used for per-class delay accounting that
    may see millions of packets. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance (the n−1 estimator, matching what
      {!merge}'s parallel combination preserves); 0 with fewer than two
      samples. *)

  val stddev : t -> float
  (** Square root of {!variance}. *)

  val min : t -> float
  (** 0 when empty, like {!mean} — never a non-finite sentinel. *)

  val max : t -> float
  (** 0 when empty, like {!mean} — never a non-finite sentinel. *)

  val merge : t -> t -> t
  (** Combine two summaries as if all samples were added to one. *)

  val pp : Format.formatter -> t -> unit
end

(** Exact percentiles over a stored sample set. Linear space; use for
    bounded-cardinality measurements (per-flow delays). *)
module Samples : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile s q] for [q] in [0, 1], by linear interpolation
      between order statistics. 0 when empty.
      @raise Invalid_argument if [q] is outside [0, 1]. *)

  val median : t -> float
  val mean : t -> float
  val to_array : t -> float array
  (** A sorted copy of the samples. *)
end

(** Fixed-edge histogram. *)
module Hist : sig
  type t

  val create : float array -> t
  (** [create edges] has buckets (-inf, e0], (e0, e1], ..., (en, inf).
      Edges must be strictly increasing.
      @raise Invalid_argument otherwise. *)

  val add : t -> float -> unit
  val counts : t -> int array
  (** Length is [Array.length edges + 1]. *)

  val total : t -> int
  val pp : Format.formatter -> t -> unit
end

(** Append-only (time, value) series, e.g. link utilization over time. *)
module Timeseries : sig
  type t

  val create : unit -> t
  val add : t -> float -> float -> unit
  (** [add ts time v]; times must be non-decreasing.
      @raise Invalid_argument otherwise. *)

  val length : t -> int
  val to_list : t -> (float * float) list
  val last : t -> (float * float) option
  val mean_value : t -> float
  val max_value : t -> float
end
