module Prefix = Mvpn_net.Prefix

type rd = { rd_asn : int; rd_assigned : int }

type rt = { rt_asn : int; rt_value : int }

let rd_to_string rd = Printf.sprintf "%d:%d" rd.rd_asn rd.rd_assigned

let rt_to_string rt = Printf.sprintf "%d:%d" rt.rt_asn rt.rt_value

let rt_equal a b = a.rt_asn = b.rt_asn && a.rt_value = b.rt_value

type vpnv4_route = {
  rd : rd;
  prefix : Mvpn_net.Prefix.t;
  next_hop_pe : int;
  vpn_label : int;
  export_rts : rt list;
  site : int;
}

type session_mode = Full_mesh | Route_reflector of int

type key = rd * int * int * int  (* rd, network, length, pe *)

let key_of (r : vpnv4_route) : key =
  ( r.rd,
    Mvpn_net.Ipv4.to_int (Prefix.network r.prefix),
    Prefix.length r.prefix,
    r.next_hop_pe )

type pe_state = {
  pe : int;
  exported : (key, vpnv4_route) Hashtbl.t;
  received : (key, vpnv4_route) Hashtbl.t;
}

type t = {
  mode : session_mode;
  mutable pes : pe_state list;  (* insertion order preserved via append *)
  mutable messages : int;
}

let create ?(mode = Full_mesh) () = { mode; pes = []; messages = 0 }

let find_pe t pe = List.find_opt (fun s -> s.pe = pe) t.pes

let add_pe t pe =
  if find_pe t pe <> None then
    invalid_arg (Printf.sprintf "Mpbgp.add_pe: duplicate PE %d" pe);
  t.pes <-
    t.pes @ [{ pe; exported = Hashtbl.create 32; received = Hashtbl.create 64 }]

let pe_count t = List.length t.pes

let session_count t =
  let n = pe_count t in
  match t.mode with
  | Full_mesh -> n * (n - 1) / 2
  | Route_reflector _ -> max 0 (n - 1)

let get_pe t pe =
  match find_pe t pe with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Mpbgp: unknown PE %d" pe)

let export_route t route =
  let s = get_pe t route.next_hop_pe in
  Hashtbl.replace s.exported (key_of route) route

let withdraw_site t ~pe ~site =
  let s = get_pe t pe in
  let victims =
    Hashtbl.fold
      (fun k r acc -> if r.site = site then k :: acc else acc)
      s.exported []
  in
  List.iter (Hashtbl.remove s.exported) victims;
  List.length victims

let run t =
  let sent = ref 0 in
  let deliver dst route =
    let k = key_of route in
    match Hashtbl.find_opt dst.received k with
    | Some have when have.vpn_label = route.vpn_label
                  && have.export_rts = route.export_rts -> ()
    | Some _ | None ->
      Hashtbl.replace dst.received k route;
      incr sent
  in
  let withdraw_stale dst all_keys =
    (* Remove received routes no longer exported by anyone. *)
    let stale =
      Hashtbl.fold
        (fun k _ acc -> if Hashtbl.mem all_keys k then acc else k :: acc)
        dst.received []
    in
    List.iter
      (fun k ->
         Hashtbl.remove dst.received k;
         incr sent)
      stale
  in
  let all_keys : (key, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun src ->
       Hashtbl.iter (fun k _ -> Hashtbl.replace all_keys k ()) src.exported)
    t.pes;
  (match t.mode with
   | Full_mesh ->
     List.iter
       (fun src ->
          Hashtbl.iter
            (fun _ route ->
               List.iter
                 (fun dst -> if dst.pe <> src.pe then deliver dst route)
                 t.pes)
            src.exported)
       t.pes
   | Route_reflector rr ->
     let rr_state = get_pe t rr in
     (* Clients send to the RR; the RR reflects to every other client.
        Message count: one to the RR plus one per reflected copy. *)
     List.iter
       (fun src ->
          Hashtbl.iter
            (fun _ route ->
               if src.pe <> rr then begin
                 deliver rr_state route;
                 List.iter
                   (fun dst ->
                      if dst.pe <> src.pe && dst.pe <> rr then
                        deliver dst route)
                   t.pes
               end else
                 List.iter
                   (fun dst -> if dst.pe <> rr then deliver dst route)
                   t.pes)
            src.exported)
       t.pes);
  List.iter (fun dst -> withdraw_stale dst all_keys) t.pes;
  t.messages <- t.messages + !sent;
  !sent

let routes_at t pe =
  let s = get_pe t pe in
  let own = Hashtbl.fold (fun _ r acc -> r :: acc) s.exported [] in
  let received = Hashtbl.fold (fun _ r acc -> r :: acc) s.received [] in
  own @ received

let rts_intersect a b =
  List.exists (fun x -> List.exists (rt_equal x) b) a

let import t ~pe ~import_rts =
  let s = get_pe t pe in
  Hashtbl.fold
    (fun _ r acc ->
       if rts_intersect r.export_rts import_rts then r :: acc else acc)
    s.received []

let total_routes t =
  List.fold_left (fun acc s -> acc + Hashtbl.length s.exported) 0 t.pes

let messages_sent t = t.messages
