let m_events = Mvpn_telemetry.Registry.counter "sim.events"
let m_scheduled = Mvpn_telemetry.Registry.counter "sim.scheduled"

type backend = Binary_heap | Calendar

(* Monomorphic variant dispatch: one predictable branch per queue op,
   no closure indirection on the hot path. *)
type queue =
  | Q_heap of (unit -> unit) Heap.t
  | Q_cal of (unit -> unit) Calendar.t

let q_push q k v =
  match q with
  | Q_heap h -> Heap.push h k v
  | Q_cal c -> Calendar.push c k v

let q_pop q =
  match q with
  | Q_heap h -> Heap.pop h
  | Q_cal c -> Calendar.pop c

let q_peek q =
  match q with
  | Q_heap h -> Heap.peek h
  | Q_cal c -> Calendar.peek c

let q_size q =
  match q with
  | Q_heap h -> Heap.size h
  | Q_cal c -> Calendar.size c

type t = {
  queue : queue;
  mutable now : float;
  mutable processed : int;
  mutable stopped : bool;
  (* Batched telemetry: inside a [run]/[run_before] window the
     sim.events / sim.scheduled counters accumulate in these plain ints
     and flush once at window exit, instead of paying a DLS counter
     write per event. Outside a window, writes stay immediate so tests
     that schedule or step by hand observe exact counters. *)
  mutable in_batch : bool;
  mutable batch_events : int;
  mutable batch_scheduled : int;
  mutable flush_hooks : (unit -> unit) list;
}

let create ?(backend = Calendar) () =
  let queue =
    match backend with
    | Binary_heap -> Q_heap (Heap.create ())
    | Calendar -> Q_cal (Calendar.create ())
  in
  { queue; now = 0.0; processed = 0; stopped = false;
    in_batch = false; batch_events = 0; batch_scheduled = 0;
    flush_hooks = [] }

let now e = e.now

let in_batch e = e.in_batch

let on_flush e f = e.flush_hooks <- f :: e.flush_hooks

(* Accumulation is gated on the telemetry switch at event time (same
   observable semantics as an immediate Counter.incr); the flush write
   itself is forced on, since the switch may have been toggled between
   accumulation and window exit. *)
let flush_batch e =
  List.iter (fun f -> f ()) e.flush_hooks;
  if e.batch_events <> 0 || e.batch_scheduled <> 0 then
    Mvpn_telemetry.Control.with_enabled (fun () ->
        Mvpn_telemetry.Counter.add m_events e.batch_events;
        Mvpn_telemetry.Counter.add m_scheduled e.batch_scheduled);
  e.batch_events <- 0;
  e.batch_scheduled <- 0

let note_scheduled e =
  if e.in_batch then begin
    if !Mvpn_telemetry.Control.enabled then
      e.batch_scheduled <- e.batch_scheduled + 1
  end
  else Mvpn_telemetry.Counter.incr m_scheduled

let check_finite what v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Engine.%s: time not finite" what)

let schedule e ~delay f =
  check_finite "schedule" delay;
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  note_scheduled e;
  q_push e.queue (e.now +. delay) f

let schedule_at e ~time f =
  check_finite "schedule_at" time;
  if time < e.now then invalid_arg "Engine.schedule_at: time in the past";
  note_scheduled e;
  q_push e.queue time f

let step e =
  match q_pop e.queue with
  | None -> false
  | Some (time, f) ->
    e.now <- time;
    e.processed <- e.processed + 1;
    if e.in_batch then begin
      if !Mvpn_telemetry.Control.enabled then
        e.batch_events <- e.batch_events + 1
    end
    else Mvpn_telemetry.Counter.incr m_events;
    f ();
    true

(* Run [body] as one batch window. Nested windows flush only at the
   outermost exit; the flush survives an exception from an event so no
   accumulated counts are lost. *)
let in_window e body =
  if e.in_batch then body ()
  else begin
    e.in_batch <- true;
    Fun.protect
      ~finally:(fun () ->
          e.in_batch <- false;
          flush_batch e)
      body
  end

let run ?until e =
  e.stopped <- false;
  let horizon = match until with Some t -> t | None -> infinity in
  in_window e (fun () ->
      let rec loop () =
        if not e.stopped then
          match q_peek e.queue with
          | Some (time, _) when time <= horizon -> if step e then loop ()
          | Some _ | None ->
            if Float.is_finite horizon && horizon > e.now then e.now <- horizon
      in
      loop ())

let peek_time e = Option.map fst (q_peek e.queue)

(* Bounded-horizon drain for the parallel runner: process events with
   time strictly below [before], but do not advance [now] to the bound
   itself — the window bound is a synchronization artifact, not a
   simulated instant, and a later window (or the final inclusive [run])
   owns the events at the bound. *)
let run_before e ~before =
  e.stopped <- false;
  in_window e (fun () ->
      let rec loop () =
        if not e.stopped then
          match q_peek e.queue with
          | Some (time, _) when time < before -> if step e then loop ()
          | Some _ | None -> ()
      in
      loop ())

let pending e = q_size e.queue

let processed e = e.processed

let stop e = e.stopped <- true
