examples/multi_carrier.ml: Format Interprovider List Mvpn_core Mvpn_net Mvpn_qos Mvpn_sim Network Printf Qos_mapping Site String Traffic
