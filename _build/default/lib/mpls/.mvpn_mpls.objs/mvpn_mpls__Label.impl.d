lib/mpls/label.ml:
