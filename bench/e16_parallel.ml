(* E16 — partitioned parallel runner: the multi-region backbone split
   across OCaml 5 domains, sequential baseline vs K = 2 / 4 / 8 shards
   (ARCHITECTURE.md "Parallel runner").

   Every run — sequential and each shard count — must land on the same
   fingerprint: delivered / dropped / executed / scheduled totals,
   per-class sent/received sums, and the replayed SLO verdict. The
   bench aborts loudly if any shard count diverges; determinism is the
   headline invariant, the speedup is the bonus.

   Rates are delivered packets per wall-clock second, so the speedup
   gauges are honest: on a single-core container every K runs the same
   work through one core plus synchronization overhead and the speedup
   sits at or below 1; on an N-core machine the shards run
   concurrently and the same gauges climb with the core count. *)

open Mvpn_par
module T = Mvpn_telemetry

let cfg k =
  { Runner.default_config with
    Runner.shards = k; pops = 16; vpns = 4; sites_per_vpn = 8;
    load = 0.9; duration = 40.0; seed = 11 }

type sample = {
  tag : string;
  outcome : Runner.outcome;
  wall : float;  (* seconds *)
  minor_w : float;
      (* minor-heap words allocated by this domain across the run;
         nan for parallel runs, whose shard domains allocate out of
         sight of the main domain's [Gc.minor_words] counter *)
}

let fingerprint (o : Runner.outcome) =
  ( o.Runner.delivered, o.Runner.dropped, o.Runner.events,
    o.Runner.scheduled, o.Runner.classes,
    T.Slo.in_budget o.Runner.slo, T.Slo.violation_count o.Runner.slo )

let timed tag c run =
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  let outcome = run c in
  let minor_w = Gc.minor_words () -. w0 in
  { tag; outcome; wall = Unix.gettimeofday () -. t0; minor_w }

let timed_par k =
  let t0 = Unix.gettimeofday () in
  let outcome = Runner.run_parallel (cfg k) in
  { tag = Printf.sprintf "K=%d" k; outcome;
    wall = Unix.gettimeofday () -. t0; minor_w = Float.nan }

let check_fingerprint ~baseline s =
  if fingerprint s.outcome <> fingerprint baseline.outcome then begin
    Printf.eprintf
      "E16: FINGERPRINT MISMATCH %s vs %s\n\
      \  %s: delivered=%d dropped=%d events=%d scheduled=%d\n\
      \  %s: delivered=%d dropped=%d events=%d scheduled=%d\n"
      s.tag baseline.tag baseline.tag baseline.outcome.Runner.delivered
      baseline.outcome.Runner.dropped baseline.outcome.Runner.events
      baseline.outcome.Runner.scheduled s.tag s.outcome.Runner.delivered
      s.outcome.Runner.dropped s.outcome.Runner.events
      s.outcome.Runner.scheduled;
    failwith "E16: parallel run diverged from the sequential baseline"
  end

let rate s = float_of_int s.outcome.Runner.delivered /. Float.max 1e-9 s.wall

let run () =
  let c = cfg 1 in
  Tables.heading
    (Printf.sprintf
       "E16: partitioned parallel runner (%d POPs, %d VPNs x %d sites, \
        %.0fs, seed %d) — seq vs K=2/4/8 (%d cores)"
       c.Runner.pops c.Runner.vpns c.Runner.sites_per_vpn
       c.Runner.duration c.Runner.seed (Domain.recommended_domain_count ()));
  let widths = [6; 7; 5; 10; 9; 9; 10; 9; 8; 8; 9; 6] in
  Tables.row widths
    [ "run"; "shards"; "cut"; "delivered"; "dropped"; "events";
      "exchanged"; "wall"; "pps"; "speedup"; "alloc_mw"; "w/ev" ];
  Tables.rule widths;
  (* Same process, back to back: the heap oracle vs the calendar-queue
     fast path. Sharing the process cancels machine noise, so the rate
     ratio is trustworthy — and the fingerprint comparison proves the
     calendar executes the exact heap schedule. *)
  let seq_heap =
    timed "seq-heap"
      { (cfg 1) with Runner.backend = Mvpn_sim.Engine.Binary_heap }
      Runner.run_sequential
  in
  let seq =
    timed "seq-cal"
      { (cfg 1) with Runner.backend = Mvpn_sim.Engine.Calendar }
      Runner.run_sequential
  in
  check_fingerprint ~baseline:seq seq_heap;
  let seq_rate = rate seq in
  let report s =
    Tables.row widths
      [ s.tag; string_of_int s.outcome.Runner.shards;
        string_of_int s.outcome.Runner.cut_links;
        string_of_int s.outcome.Runner.delivered;
        string_of_int s.outcome.Runner.dropped;
        string_of_int s.outcome.Runner.events;
        string_of_int s.outcome.Runner.exchanged;
        Printf.sprintf "%.2f s" s.wall;
        Printf.sprintf "%.0f" (rate s);
        Printf.sprintf "%.2fx" (rate s /. seq_rate);
        (if Float.is_nan s.minor_w then "-"
         else Printf.sprintf "%.1f" (s.minor_w /. 1e6));
        (if Float.is_nan s.minor_w then "-"
         else
           Printf.sprintf "%.1f"
             (s.minor_w /. float_of_int (max 1 s.outcome.Runner.events))) ]
  in
  report seq_heap;
  report seq;
  T.Gauge.set (T.Registry.gauge "e16.rate.seq_heap_pps") (rate seq_heap);
  T.Gauge.set (T.Registry.gauge "e16.rate.seq_calendar_pps") seq_rate;
  T.Gauge.set (T.Registry.gauge "e16.rate.seq_pps") seq_rate;
  (* Minor-heap words per executed event across the whole sequential
     calendar run — build, arming, the event loop and replay. The flat
     packet representation's headline allocation metric; check.sh gates
     it at <= 24 words/event. *)
  T.Gauge.set
    (T.Registry.gauge "sim.gc.minor_words_per_event")
    (seq.minor_w /. float_of_int (max 1 seq.outcome.Runner.events));
  (* Observability overhead: the identical sequential calendar run with
     the default-interval timeline sampler armed, back to back with the
     unsampled baseline (before the parallel rows churn the heap) so
     the ratio is a same-process race, not a drift measurement. Sampler
     ticks are engine events, so the full fingerprint is not comparable
     — but the traffic totals must not move, and check.sh gates the
     rate at >= 0.95x the unsampled run. *)
  let seq_tl =
    timed "seq-tl"
      { (cfg 1) with
        Runner.sample_interval = Some Mvpn_core.Sampler.default_interval }
      Runner.run_sequential
  in
  if
    seq_tl.outcome.Runner.delivered <> seq.outcome.Runner.delivered
    || seq_tl.outcome.Runner.dropped <> seq.outcome.Runner.dropped
  then failwith "E16: arming the timeline sampler changed traffic totals";
  report seq_tl;
  T.Gauge.set (T.Registry.gauge "e16.rate.seq_sampler_pps") (rate seq_tl);
  T.Gauge.set (T.Registry.gauge "e16.overhead.sampler")
    (rate seq_tl /. seq_rate);
  (* Dispatch-cost ledger: the same run again with the engine profiler
     on. Publishes the sim.profile.* gauges — the pop / handler / flush
     wall-time split and per-kind dispatch counts check.sh asserts on.
     Profiling never touches the schedule, so the full fingerprint must
     hold. *)
  let seq_prof =
    timed "seq-prof" { (cfg 1) with Runner.profile = true }
      Runner.run_sequential
  in
  check_fingerprint ~baseline:seq seq_prof;
  report seq_prof;
  T.Gauge.set (T.Registry.gauge "e16.rate.seq_profiled_pps")
    (rate seq_prof);
  List.iter
    (fun k ->
       let s = timed_par k in
       check_fingerprint ~baseline:seq s;
       report s;
       let r = rate s in
       T.Gauge.set
         (T.Registry.gauge (Printf.sprintf "e16.rate.k%d_pps" k)) r;
       T.Gauge.set
         (T.Registry.gauge (Printf.sprintf "e16.speedup.k%d" k))
         (r /. seq_rate))
    [ 2; 4; 8 ];
  Tables.note
    "\nEvery row carries the same fingerprint — delivered, dropped,\n\
     executed and scheduled events, per-class sums and the SLO verdict\n\
     are byte-identical from the seq-heap oracle through K=8 (the\n\
     bench aborts on any divergence). seq-heap and seq-cal run the\n\
     same schedule through the binary-heap oracle and the\n\
     calendar-queue fast path in one process, so their rate ratio is\n\
     immune to machine noise. Shards exchange cut-link packets through\n\
     bounded channels and advance under conservative lookahead\n\
     windows, so the schedule each shard executes is the sequential\n\
     schedule projected onto its nodes. The pps and speedup columns\n\
     are wall-clock delivered-packet rates: bounded by the machine's\n\
     core count, at or below 1x on a single core (synchronization is\n\
     pure overhead there), scaling with cores on real multicore\n\
     hosts. alloc_mw / w/ev are minor-heap words (millions, and per\n\
     executed event) allocated by the run's own domain — the flat\n\
     packet representation keeps the per-event figure in single\n\
     digits; parallel rows show '-' because shard domains allocate\n\
     outside the main domain's GC counters. seq-tl re-runs the\n\
     sequential baseline with the 1 Hz timeline sampler armed (same\n\
     traffic totals, bounded-ring series, gated at >= 0.95x the\n\
     unsampled rate) and seq-prof with the dispatch-cost ledger on\n\
     (identical fingerprint; publishes the sim.profile.* split)."
