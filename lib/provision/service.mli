(** The service-design model: customer intent, before it becomes state.

    A customer buys a VPN as a contract — a set of sites, a topology
    class and an SLA tier — not as VRFs and route targets. This module
    is the vocabulary of that contract plus the deterministic resource
    allocators ({!Pool}) that turn it into protocol identifiers:

    - {e topology class} fixes the RT import/export scheme (RFC 4364
      §4.3.5): [Any_to_any] is one RT both ways; [Hub_spoke] splits
      into a hub RT (exported by the hub, imported by spokes) and a
      spoke RT (the reverse), so spoke–spoke traffic must transit the
      hub; [Extranet] is any-to-any plus a shared group RT that lets
      distinct customers in the same extranet group reach each other.
    - {e SLA tier} picks the forwarding band and SLO objective via
      {!Mvpn_core.Qos_mapping} (Gold = EF, Silver = AF-hi,
      Bronze = AF-lo).
    - {e allocators} are memoized pure functions of customer/group id —
      calling them in any order, any number of times, from a bulk
      compile or an incremental delta, yields the same RD/RT/label,
      which is what makes incremental provisioning byte-equivalent to a
      from-scratch compile. *)

type tier = Gold | Silver | Bronze

type topology =
  | Any_to_any
  | Hub_spoke
  | Extranet of int  (** extranet group shared across customers *)

type role = Hub | Spoke
(** A site's role inside its topology. Only meaningful under
    [Hub_spoke]; every site of the other classes is a [Spoke]. *)

type site_spec = { sid : int; pe : int; role : role }
(** A site as designed: customer-local id, attachment PE index
    [0 .. pe_count-1], role. *)

type customer = {
  id : int;  (** 1-based; doubles as the VPN id *)
  name : string;
  topology : topology;
  tier : tier;
  sites : site_spec list;  (** ascending [sid] *)
}

val tier_name : tier -> string
val topology_name : topology -> string
val role_name : role -> string

val band_of_tier : tier -> int
(** Gold 0 (EF), Silver 1 (AF-hi), Bronze 2 (AF-lo). *)

val objective_of_tier : tier -> Mvpn_telemetry.Slo.spec
(** The stock SLO for the tier's band
    ({!Mvpn_core.Qos_mapping.default_objective}). *)

val default_role : topology -> sid:int -> role
(** The role a freshly designed site gets: site 0 of a hub-and-spoke
    customer is the hub, everything else is a spoke. Used by both the
    generator and delta application so they can never disagree. *)

val site_prefix : sid:int -> Mvpn_net.Prefix.t
(** [10.x.y.0/24] derived from the customer-local site id — unique
    within a customer, deliberately overlapping across customers so the
    RD machinery is exercised for real.
    @raise Invalid_argument if [sid] is outside [0, 65535]. *)

val global_site_id : customer:int -> sid:int -> int
(** Globally unique site id: [customer lsl 16 lor sid].
    @raise Invalid_argument if either component is out of range. *)

val vpn_label_of_site : int -> int
(** The VPN label for a global site id — a pure function, so labels
    allocated incrementally and from scratch always agree. *)

val site_name : customer:int -> sid:int -> string

(** Deterministic, idempotent RD/RT allocation. *)
module Pool : sig
  type t

  val create : ?asn:int -> unit -> t
  (** [asn] defaults to 65000 — the provider AS every RD/RT carries. *)

  val asn : t -> int

  val rd : t -> customer:int -> Mvpn_routing.Mpbgp.rd
  (** One route distinguisher per customer, memoized. *)

  val rt_any : t -> customer:int -> Mvpn_routing.Mpbgp.rt
  val rt_hub : t -> customer:int -> Mvpn_routing.Mpbgp.rt
  val rt_spoke : t -> customer:int -> Mvpn_routing.Mpbgp.rt

  val rt_extranet : t -> group:int -> Mvpn_routing.Mpbgp.rt
  (** The shared RT of an extranet group — the same value for every
      customer in the group, by construction. *)

  val rds_allocated : t -> int
  val rts_allocated : t -> int
  (** Distinct identifiers handed out so far — the provisioning-state
      ledger E19 reports. *)
end

val export_rts :
  Pool.t -> topology:topology -> customer:int -> role:role ->
  Mvpn_routing.Mpbgp.rt list
(** What a site's routes are tagged with on export. *)

val import_rts :
  Pool.t -> topology:topology -> customer:int -> role:role ->
  Mvpn_routing.Mpbgp.rt list
(** What a VRF hosting sites of this role imports. Hub VRFs import the
    spoke RT and vice versa; extranet VRFs import their own RT plus the
    group RT. *)
