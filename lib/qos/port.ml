module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Packet = Mvpn_net.Packet

type t = {
  engine : Engine.t;
  link : Topology.link;
  qdisc : Queue_disc.t;
  classify : Packet.t -> int;
  on_deliver : Packet.t -> unit;
  on_txstart : Packet.t -> unit;
  on_drop : reason:string -> Packet.t -> unit;
  mutable busy : bool;
  mutable offered : int;
  mutable delivered : int;
  mutable dropped_queue : int;
  mutable dropped_link_down : int;
  mutable bytes_delivered : int;
  mutable busy_seconds : float;
}

type counters = {
  offered : int;
  delivered : int;
  dropped_queue : int;
  dropped_link_down : int;
  bytes_delivered : int;
  busy_seconds : float;
}

let nop_txstart (_ : Packet.t) = ()
let nop_drop ~reason:(_ : string) (_ : Packet.t) = ()

let create ?(on_txstart = nop_txstart) ?(on_drop = nop_drop) engine ~link
    ~qdisc ~classify ~on_deliver =
  { engine; link; qdisc; classify; on_deliver; on_txstart; on_drop;
    busy = false; offered = 0; delivered = 0; dropped_queue = 0;
    dropped_link_down = 0; bytes_delivered = 0; busy_seconds = 0.0 }

let link t = t.link

let qdisc t = t.qdisc

(* Serve the head-of-line packet: serialize for size*8/bandwidth
   seconds, then hand it to propagation and start on the next packet. *)
let rec start_service (t : t) =
  match Queue_disc.dequeue t.qdisc with
  | None -> t.busy <- false
  | Some packet ->
    t.busy <- true;
    t.on_txstart packet;
    let tx =
      float_of_int packet.Packet.size *. 8.0 /. t.link.Topology.bandwidth
    in
    t.busy_seconds <- t.busy_seconds +. tx;
    Engine.schedule t.engine ~delay:tx (fun () ->
        if t.link.Topology.up then begin
          t.delivered <- t.delivered + 1;
          t.bytes_delivered <- t.bytes_delivered + packet.Packet.size;
          Engine.schedule t.engine ~delay:t.link.Topology.delay (fun () ->
              t.on_deliver packet)
        end
        else begin
          t.dropped_link_down <- t.dropped_link_down + 1;
          t.on_drop ~reason:"link-down" packet
        end;
        start_service t)

let send (t : t) packet =
  t.offered <- t.offered + 1;
  if not t.link.Topology.up then begin
    t.dropped_link_down <- t.dropped_link_down + 1;
    t.on_drop ~reason:"link-down" packet
  end
  else begin
    match Queue_disc.enqueue t.qdisc ~cls:(t.classify packet) packet with
    | Error Queue_disc.Tail_drop ->
      t.dropped_queue <- t.dropped_queue + 1;
      t.on_drop ~reason:"queue-tail" packet
    | Error Queue_disc.Red_drop ->
      t.dropped_queue <- t.dropped_queue + 1;
      t.on_drop ~reason:"queue-red" packet
    | Ok () -> if not t.busy then start_service t
  end

let counters (t : t) =
  { offered = t.offered; delivered = t.delivered;
    dropped_queue = t.dropped_queue;
    dropped_link_down = t.dropped_link_down;
    bytes_delivered = t.bytes_delivered; busy_seconds = t.busy_seconds }

let utilization (t : t) ~now =
  if now <= 0.0 then 0.0 else t.busy_seconds /. now
