lib/ipsec/sa.ml: Crypto Replay
