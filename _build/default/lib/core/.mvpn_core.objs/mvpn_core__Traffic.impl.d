lib/core/traffic.ml: Float Hashtbl List Mvpn_net Mvpn_qos Mvpn_sim Network
