module Packet = Mvpn_net.Packet
module Telemetry = Mvpn_telemetry

let m_swap = Telemetry.Registry.counter "lfib.swap"
let m_pop = Telemetry.Registry.counter "lfib.pop"
let m_pop_and_ip = Telemetry.Registry.counter "lfib.pop_and_ip"
let m_no_binding = Telemetry.Registry.counter "lfib.no_binding"
let m_ttl_expired = Telemetry.Registry.counter "lfib.ttl_expired"

type op = Swap of int | Pop | Pop_and_ip

type entry = { op : op; next_hop : int }

type protection = { push : int; via : int; usable : unit -> bool }

let local = -1

type t = {
  mutable table : entry option array;
  mutable count : int;
  (* Monotonic mutation counter: bumped by install, successful
     uninstall and clear, so compiled forwarding state built over this
     LFIB can detect staleness in O(1). *)
  mutable gen : int;
  (* Facility-backup NHLFEs, keyed by the protected next hop. Consulted
     by the I/O shell when the primary link is down; never by [step],
     so the per-packet decision path is untouched while links are
     healthy. Not generation-tracked: compiled caches never capture
     protection decisions. *)
  protections : (int, protection) Hashtbl.t;
}

let create () =
  { table = [||]; count = 0; gen = 0; protections = Hashtbl.create 4 }

let generation t = t.gen

let ensure t label =
  let cap = Array.length t.table in
  if label >= cap then begin
    let ncap = max 64 (max (label + 1) (2 * cap)) in
    let ntable = Array.make ncap None in
    Array.blit t.table 0 ntable 0 cap;
    t.table <- ntable
  end

let install t ~in_label entry =
  if not (Label.valid in_label) then
    invalid_arg (Printf.sprintf "Lfib.install: invalid label %d" in_label);
  if Label.is_reserved in_label then
    invalid_arg (Printf.sprintf "Lfib.install: reserved label %d" in_label);
  ensure t in_label;
  if t.table.(in_label) = None then t.count <- t.count + 1;
  t.table.(in_label) <- Some entry;
  t.gen <- t.gen + 1

let uninstall t ~in_label =
  if in_label >= 0 && in_label < Array.length t.table
  && t.table.(in_label) <> None
  then begin
    t.table.(in_label) <- None;
    t.count <- t.count - 1;
    t.gen <- t.gen + 1;
    true
  end else false

let lookup t label =
  if label >= 0 && label < Array.length t.table then t.table.(label)
  else None

let size t = t.count

let clear t =
  t.table <- [||];
  t.count <- 0;
  t.gen <- t.gen + 1

let set_protection t ~next_hop ~push ~via ~usable =
  if not (Label.valid push) then
    invalid_arg (Printf.sprintf "Lfib.set_protection: invalid label %d" push);
  Hashtbl.replace t.protections next_hop { push; via; usable }

let protection t ~next_hop = Hashtbl.find_opt t.protections next_hop

let remove_protection t ~next_hop =
  if Hashtbl.mem t.protections next_hop then begin
    Hashtbl.remove t.protections next_hop;
    true
  end else false

let clear_protections t = Hashtbl.reset t.protections

let protected_next_hops t =
  List.sort Int.compare
    (Hashtbl.fold (fun nh _ acc -> nh :: acc) t.protections [])

type step_result =
  | Forward of int
  | Ip_continue of int
  | No_binding of int
  | Ttl_expired

(* RFC 3443 uniform model: the outermost shim carries the packet's real
   TTL, so a pop is still a hop — decrement the popped shim's TTL and
   copy it onto whatever the pop exposed (the next shim or the IP
   header), never increasing an inner TTL. Everything below works on
   packed shims (immediate ints), so a step never allocates. *)
let pop_and_propagate_ttl packet popped =
  ignore (Packet.pop_packed packet);
  let ttl = Packet.Shim.ttl popped - 1 in
  let inner = Packet.top_packed packet in
  if inner >= 0 then begin
    if ttl < Packet.Shim.ttl inner then
      Packet.set_top packet (Packet.Shim.with_ttl inner ttl)
  end
  else begin
    let hdr = Packet.visible_header packet in
    hdr.Packet.ttl <- min hdr.Packet.ttl ttl
  end

(* Packed step result: [(arg + 1) lsl 2 lor tag], tags below. The +1
   keeps [local] (-1) encodable; labels and node ids are well inside
   the remaining bits. An immediate int instead of a [step_result]
   constructor, so the per-hop forwarding decision allocates nothing. *)
let tag_forward = 0
let tag_ip_continue = 1
let tag_no_binding = 2
let tag_ttl_expired = 3

let packed_tag r = r land 3
let packed_arg r = (r lsr 2) - 1

let pack tag arg = ((arg + 1) lsl 2) lor tag

let step_packed t packet =
  let shim = Packet.top_packed packet in
  if shim < 0 then invalid_arg "Lfib.step: unlabelled packet";
  if Packet.Shim.ttl shim <= 1 then begin
    Mvpn_telemetry.Counter.incr m_ttl_expired;
    pack tag_ttl_expired 0
  end
  else begin
    match lookup t (Packet.Shim.label shim) with
    | None ->
      Mvpn_telemetry.Counter.incr m_no_binding;
      pack tag_no_binding (Packet.Shim.label shim)
    | Some { op; next_hop } ->
      match op with
      | Swap out ->
        Mvpn_telemetry.Counter.incr m_swap;
        Packet.swap_label packet ~label:out;
        pack tag_forward next_hop
      | Pop ->
        Mvpn_telemetry.Counter.incr m_pop;
        pop_and_propagate_ttl packet shim;
        if Packet.labelled packet then pack tag_forward next_hop
        else pack tag_ip_continue next_hop
      | Pop_and_ip ->
        Mvpn_telemetry.Counter.incr m_pop_and_ip;
        pop_and_propagate_ttl packet shim;
        pack tag_ip_continue next_hop
  end

let step t packet =
  let r = step_packed t packet in
  let arg = packed_arg r in
  let tag = packed_tag r in
  if tag = tag_forward then Forward arg
  else if tag = tag_ip_continue then Ip_continue arg
  else if tag = tag_no_binding then No_binding arg
  else Ttl_expired
