module Topology = Mvpn_sim.Topology
module Prefix = Mvpn_net.Prefix
module Spf = Mvpn_routing.Spf

type fec_state = {
  prefix : Prefix.t;
  egress : int;
  bindings : int array;  (* per-router local label; -2 = none *)
}

type t = {
  topo : Topology.t;
  plane : Plane.t;
  php : bool;
  usable : Topology.link -> bool;
  fec_states : fec_state list;
  mutable messages : int;
}

let no_binding = -2

let fec_of_state fs = Fec.Prefix_fec fs.prefix

(* Allocate local labels for one FEC: implicit null at the egress under
   PHP, a real label everywhere (reachability is re-checked at install
   time, so allocate eagerly — liberal label retention). *)
let allocate_bindings topo plane ~php (prefix, egress) =
  let n = Topology.node_count topo in
  if egress < 0 || egress >= n then
    invalid_arg (Printf.sprintf "Ldp.distribute: unknown egress %d" egress);
  let bindings = Array.make n no_binding in
  for r = 0 to n - 1 do
    if r = egress then
      bindings.(r) <-
        (if php then Label.implicit_null
         else Label.Allocator.alloc (Plane.allocator plane r))
    else bindings.(r) <- Label.Allocator.alloc (Plane.allocator plane r)
  done;
  { prefix; egress; bindings }

(* Install LFIB and FTN entries for one FEC from every router's current
   shortest path toward the egress. Returns the number of mapping
   advertisements this binding round represents. *)
let install t fs =
  let n = Topology.node_count t.topo in
  let fec = fec_of_state fs in
  (* One SPF rooted at the egress gives every router's distance; next
     hops still need per-router trees, but first_hop from each router is
     what we need, so compute per-router trees lazily via one reverse
     tree: for symmetric-cost duplex links the shortest path from r to
     egress is the reverse of egress to r, and the next hop of r is its
     parent in the egress-rooted tree. *)
  let tree = Spf.dijkstra ~usable:t.usable t.topo ~src:fs.egress in
  let advertisements = ref 0 in
  for r = 0 to n - 1 do
    let lfib = Plane.lfib t.plane r in
    (* Drop any stale entry for this FEC's local binding. *)
    if fs.bindings.(r) >= Label.first_unreserved then
      ignore (Lfib.uninstall lfib ~in_label:fs.bindings.(r));
    ignore (Plane.remove_ftn t.plane r fec)
  done;
  for r = 0 to n - 1 do
    if r = fs.egress then begin
      if not t.php then
        Lfib.install (Plane.lfib t.plane r) ~in_label:fs.bindings.(r)
          { Lfib.op = Lfib.Pop_and_ip; next_hop = Lfib.local };
      (* The egress also "advertises" its binding to each neighbor. *)
      advertisements :=
        !advertisements + List.length (Topology.up_neighbors t.topo r)
    end
    else if Float.is_finite tree.Spf.dist.(r) then begin
      let nh = tree.Spf.parent.(r) in
      (* parent in the egress-rooted tree = next hop toward the egress
         (duplex links with symmetric costs). *)
      let out = fs.bindings.(nh) in
      let entry =
        if out = Label.implicit_null then
          { Lfib.op = Lfib.Pop; next_hop = nh }
        else { Lfib.op = Lfib.Swap out; next_hop = nh }
      in
      Lfib.install (Plane.lfib t.plane r) ~in_label:fs.bindings.(r) entry;
      if out <> Label.implicit_null then
        Plane.install_ftn t.plane r fec { Plane.push = out; next_hop = nh };
      advertisements :=
        !advertisements + List.length (Topology.up_neighbors t.topo r)
    end
  done;
  !advertisements

let distribute ?(php = true) ?(usable = fun (l : Topology.link) -> l.Topology.up)
    topo plane ~fecs =
  let fec_states = List.map (allocate_bindings topo plane ~php) fecs in
  let t = { topo; plane; php; usable; fec_states; messages = 0 } in
  List.iter (fun fs -> t.messages <- t.messages + install t fs) t.fec_states;
  t

let refresh t =
  List.iter (fun fs -> t.messages <- t.messages + install t fs) t.fec_states

let find_state t prefix =
  List.find_opt (fun fs -> Prefix.equal fs.prefix prefix) t.fec_states

let local_binding t ~router prefix =
  match find_state t prefix with
  | None -> None
  | Some fs ->
    if router < 0 || router >= Array.length fs.bindings then None
    else if fs.bindings.(router) = no_binding then None
    else Some fs.bindings.(router)

let ingress_label t ~router prefix =
  match find_state t prefix with
  | None -> None
  | Some fs ->
    (match Plane.find_ftn t.plane router (fec_of_state fs) with
     | Some e -> Some e.Plane.push
     | None -> None)

let messages t = t.messages

let fec_count t = List.length t.fec_states
