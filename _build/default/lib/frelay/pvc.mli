(** Frame Relay PVCs: the CIR/Bc/Be traffic contract.

    A PVC commits a CIR (committed information rate) with burst
    allowances Bc (committed) and Be (excess). Per interval T = Bc/CIR,
    traffic within Bc passes untouched, traffic within Bc+Be is marked
    discard-eligible, and beyond that it is dropped — the exact
    ancestor of the srTCM green/yellow/red meter in {!Mvpn_qos.Meter},
    which is the comparison experiment E12 draws. *)

type contract = {
  cir_bps : float;  (** committed information rate *)
  bc_bits : float;  (** committed burst per interval *)
  be_bits : float;  (** excess burst per interval *)
}

val default_contract : cir_bps:float -> contract
(** Bc = CIR × 1 s, Be = Bc (a common provisioning rule). *)

type t

val create : contract -> t
(** @raise Invalid_argument on non-positive CIR or Bc, or negative
    Be. *)

type verdict =
  | Committed  (** within Bc: forwarded as-is *)
  | Excess  (** within Be: forwarded with DE set *)
  | Dropped  (** beyond Bc+Be *)

val police : t -> now:float -> Frame.t -> verdict
(** Classify one frame against the contract, setting its DE bit when
    [Excess]. Time drives the leaky refill. *)

val stats : t -> int * int * int
(** (committed, excess, dropped) frame counts. *)
