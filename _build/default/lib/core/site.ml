module Prefix = Mvpn_net.Prefix

type t = {
  id : int;
  name : string;
  vpn : int;
  prefix : Prefix.t;
  ce_node : int;
  pe_node : int;
}

let make ~id ~name ~vpn ~prefix ~ce_node ~pe_node =
  { id; name; vpn; prefix; ce_node; pe_node }

let host t i = Prefix.nth_host t.prefix (i + 1)

let pp ppf t =
  Format.fprintf ppf "site %d (%s) vpn %d %a ce=%d pe=%d" t.id t.name t.vpn
    Prefix.pp t.prefix t.ce_node t.pe_node
