module Packet = Mvpn_net.Packet
module Dscp = Mvpn_net.Dscp
module Rng = Mvpn_sim.Rng
module Telemetry = Mvpn_telemetry

(* Global per-band counters, aggregated across every qdisc instance
   (bands beyond the last tracked index share its counters). *)
let max_tracked_bands = 8

let band_counter stem =
  Array.init max_tracked_bands (fun i ->
      Telemetry.Registry.counter (Printf.sprintf "qdisc.band%d.%s" i stem))

let m_enqueued = band_counter "enqueued"
let m_dequeued = band_counter "dequeued"
let m_tail_drop = band_counter "tail_drop"
let m_red_drop = band_counter "red_drop"

let tracked i = min i (max_tracked_bands - 1)

type sched =
  | Strict
  | Wrr of int array
  | Drr of int array
  | Wfq of float array

type red_params = {
  ewma_weight : float;
  thresholds : (float * float * float) array;
}

let default_wred ~avg_capacity =
  { ewma_weight = 0.1;
    thresholds =
      [| (0.5 *. avg_capacity, 0.9 *. avg_capacity, 0.05);
         (0.3 *. avg_capacity, 0.7 *. avg_capacity, 0.2);
         (0.2 *. avg_capacity, 0.5 *. avg_capacity, 0.5) |] }

type band_cfg = { capacity_bytes : int; red : red_params option }

let plain_band capacity_bytes = { capacity_bytes; red = None }

type drop_reason = Tail_drop | Red_drop

type band_stats = {
  enqueued : int;
  dequeued : int;
  tail_dropped : int;
  red_dropped : int;
  bytes_sent : int;
}

type band = {
  cfg : band_cfg;
  idx : int;  (* position in the qdisc, for per-band telemetry *)
  q : (Packet.t * float) Queue.t;  (* packet, WFQ finish tag *)
  mutable bytes : int;
  mutable avg : float;  (* RED EWMA of backlog bytes *)
  mutable red_count : int;  (* packets since the last RED drop *)
  mutable deficit : int;  (* DRR *)
  mutable last_finish : float;  (* WFQ *)
  mutable s_enqueued : int;
  mutable s_dequeued : int;
  mutable s_tail_dropped : int;
  mutable s_red_dropped : int;
  mutable s_bytes_sent : int;
}

type t = {
  sched : sched;
  bands : band array;
  rng : Rng.t;
  mutable vtime : float;  (* WFQ virtual time *)
  mutable rr_pos : int;  (* WRR / DRR cursor *)
  mutable wrr_credit : int;  (* packets left for the current WRR band *)
}

let check_weights name n arr pos =
  if Array.length arr <> n then
    invalid_arg
      (Printf.sprintf "Queue_disc.create: %s needs %d weights" name n);
  Array.iter
    (fun w ->
       if w <= pos then
         invalid_arg
           (Printf.sprintf "Queue_disc.create: %s weights must be positive"
              name))
    arr

let create ?rng ~sched cfgs =
  let n = Array.length cfgs in
  if n = 0 then invalid_arg "Queue_disc.create: need at least one band";
  (match sched with
   | Strict -> ()
   | Wrr w -> check_weights "wrr" n w 0
   | Drr q -> check_weights "drr" n q 0
   | Wfq w ->
     if Array.length w <> n then
       invalid_arg (Printf.sprintf "Queue_disc.create: wfq needs %d weights" n);
     Array.iter
       (fun x ->
          if x <= 0.0 then
            invalid_arg "Queue_disc.create: wfq weights must be positive")
       w);
  Array.iter
    (fun c ->
       if c.capacity_bytes <= 0 then
         invalid_arg "Queue_disc.create: band capacity must be positive")
    cfgs;
  { sched;
    bands =
      Array.mapi
        (fun idx cfg ->
           { cfg; idx; q = Queue.create (); bytes = 0; avg = 0.0;
             red_count = 0; deficit = 0; last_finish = 0.0; s_enqueued = 0;
             s_dequeued = 0; s_tail_dropped = 0; s_red_dropped = 0;
             s_bytes_sent = 0 })
        cfgs;
    rng = (match rng with Some r -> r | None -> Rng.create 0x52ED);
    vtime = 0.0; rr_pos = 0; wrr_credit = 0 }

let fifo ~capacity_bytes =
  create ~sched:Strict [| plain_band capacity_bytes |]

let band_count t = Array.length t.bands

(* RED drop test for one arriving packet. *)
let red_drops t band (p : Packet.t) =
  match band.cfg.red with
  | None -> false
  | Some red ->
    band.avg <-
      ((1.0 -. red.ewma_weight) *. band.avg)
      +. (red.ewma_weight *. float_of_int band.bytes);
    let prec = Dscp.drop_precedence (Packet.visible_dscp p) in
    let idx = min (max (prec - 1) 0) (Array.length red.thresholds - 1) in
    let min_th, max_th, max_p = red.thresholds.(idx) in
    if band.avg < min_th then begin
      band.red_count <- 0;
      false
    end
    else if band.avg >= max_th then begin
      band.red_count <- 0;
      true
    end
    else begin
      let pb = max_p *. ((band.avg -. min_th) /. (max_th -. min_th)) in
      (* Count-based spacing (RFC 2309 style): probability grows with
         packets accepted since the last drop. *)
      let pa =
        let denom = 1.0 -. (float_of_int band.red_count *. pb) in
        if denom <= 0.0 then 1.0 else pb /. denom
      in
      if Rng.bool t.rng pa then begin
        band.red_count <- 0;
        true
      end else begin
        band.red_count <- band.red_count + 1;
        false
      end
    end

let wfq_weight t cls =
  match t.sched with
  | Wfq w -> w.(cls)
  | Strict | Wrr _ | Drr _ -> 1.0

let enqueue t ~cls packet =
  let cls = min (max cls 0) (Array.length t.bands - 1) in
  let band = t.bands.(cls) in
  if red_drops t band packet then begin
    band.s_red_dropped <- band.s_red_dropped + 1;
    Telemetry.Counter.incr m_red_drop.(tracked cls);
    Error Red_drop
  end
  else if band.bytes + packet.Packet.size > band.cfg.capacity_bytes then begin
    band.s_tail_dropped <- band.s_tail_dropped + 1;
    Telemetry.Counter.incr m_tail_drop.(tracked cls);
    Error Tail_drop
  end
  else begin
    let tag =
      match t.sched with
      | Wfq _ ->
        let start = Float.max t.vtime band.last_finish in
        let finish =
          start
          +. (float_of_int packet.Packet.size /. wfq_weight t cls)
        in
        band.last_finish <- finish;
        finish
      | Strict | Wrr _ | Drr _ -> 0.0
    in
    Queue.add (packet, tag) band.q;
    band.bytes <- band.bytes + packet.Packet.size;
    band.s_enqueued <- band.s_enqueued + 1;
    Telemetry.Counter.incr m_enqueued.(tracked cls);
    Ok ()
  end

let take_from band =
  let packet, _tag = Queue.pop band.q in
  band.bytes <- band.bytes - packet.Packet.size;
  band.s_dequeued <- band.s_dequeued + 1;
  band.s_bytes_sent <- band.s_bytes_sent + packet.Packet.size;
  Telemetry.Counter.incr m_dequeued.(tracked band.idx);
  packet

let is_empty t = Array.for_all (fun b -> Queue.is_empty b.q) t.bands

let dequeue_strict t =
  let n = Array.length t.bands in
  let rec go i =
    if i >= n then None
    else if Queue.is_empty t.bands.(i).q then go (i + 1)
    else Some (take_from t.bands.(i))
  in
  go 0

let dequeue_wrr t weights =
  if is_empty t then None
  else begin
    let n = Array.length t.bands in
    (* Spend remaining credit on the current band, else rotate. *)
    let rec go guard =
      if guard > 2 * n then None
      else begin
        let band = t.bands.(t.rr_pos) in
        if t.wrr_credit > 0 && not (Queue.is_empty band.q) then begin
          t.wrr_credit <- t.wrr_credit - 1;
          Some (take_from band)
        end else begin
          t.rr_pos <- (t.rr_pos + 1) mod n;
          t.wrr_credit <- weights.(t.rr_pos);
          go (guard + 1)
        end
      end
    in
    go 0
  end

let dequeue_drr t quanta =
  if is_empty t then None
  else begin
    let n = Array.length t.bands in
    let rec go () =
      let band = t.bands.(t.rr_pos) in
      if Queue.is_empty band.q then begin
        band.deficit <- 0;
        t.rr_pos <- (t.rr_pos + 1) mod n;
        go ()
      end else begin
        let head, _ = Queue.peek band.q in
        if band.deficit >= head.Packet.size then begin
          band.deficit <- band.deficit - head.Packet.size;
          Some (take_from band)
        end else begin
          band.deficit <- band.deficit + quanta.(t.rr_pos);
          t.rr_pos <- (t.rr_pos + 1) mod n;
          go ()
        end
      end
    in
    go ()
  end

let dequeue_wfq t =
  let best = ref None in
  Array.iter
    (fun band ->
       if not (Queue.is_empty band.q) then begin
         let _, tag = Queue.peek band.q in
         match !best with
         | Some (_, best_tag) when best_tag <= tag -> ()
         | Some _ | None -> best := Some (band, tag)
       end)
    t.bands;
  match !best with
  | None -> None
  | Some (band, tag) ->
    t.vtime <- Float.max t.vtime tag;
    Some (take_from band)

let dequeue t =
  match t.sched with
  | Strict -> dequeue_strict t
  | Wrr w -> dequeue_wrr t w
  | Drr q -> dequeue_drr t q
  | Wfq _ -> dequeue_wfq t

let backlog_bytes t = Array.fold_left (fun acc b -> acc + b.bytes) 0 t.bands

let backlog_packets t =
  Array.fold_left (fun acc b -> acc + Queue.length b.q) 0 t.bands

let stats t =
  Array.map
    (fun b ->
       { enqueued = b.s_enqueued; dequeued = b.s_dequeued;
         tail_dropped = b.s_tail_dropped; red_dropped = b.s_red_dropped;
         bytes_sent = b.s_bytes_sent })
    t.bands
