lib/ipsec/esp.mli: Crypto
