lib/core/interprovider.ml: Array Backbone Hashtbl List Mpls_vpn Mvpn_net Mvpn_routing Mvpn_sim Network Printf Qos_mapping Site
