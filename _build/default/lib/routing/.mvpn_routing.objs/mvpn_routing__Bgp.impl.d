lib/routing/bgp.ml: Array Hashtbl List Mvpn_net Printf
