bench/e0_forwarding.ml: Analyze Array Bechamel Benchmark Hashtbl List Measure Mvpn_mpls Mvpn_net Mvpn_sim Staged String Sys Tables Test Time Toolkit
